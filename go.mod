module spritelynfs

go 1.22
