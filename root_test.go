package spritelynfs

// Facade-level tests: the public API a downstream user sees.

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	pm := DefaultParams()
	world := NewWorld(SNFS, true, pm)
	err := world.Run(func(p *Proc) error {
		if err := world.NS.Mkdir(p, "/data/dir", 0o755); err != nil {
			return err
		}
		f, err := world.NS.Open(p, "/data/dir/file", WriteOnly|Create, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(p, 0, []byte("public api")); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		g, err := world.NS.Open(p, "/data/dir/file", ReadOnly, 0)
		if err != nil {
			return err
		}
		data, err := g.ReadAt(p, 0, 100)
		if err != nil {
			return err
		}
		if string(data) != "public api" {
			t.Errorf("read %q", data)
		}
		return g.Close(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if world.ClientOps().Total() == 0 {
		t.Error("no RPCs counted")
	}
}

func TestPublicAPIMultiClient(t *testing.T) {
	pm := DefaultParams()
	world := NewWorld(SNFS, true, pm)
	_, otherNS := world.AddSNFSClient("other", SNFSClientOptions{})
	err := world.Run(func(p *Proc) error {
		if err := world.NS.WriteFile(p, "/data/x", 10000, 8192); err != nil {
			return err
		}
		n, err := otherNS.ReadFile(p, "/data/x", 8192)
		if err != nil {
			return err
		}
		if n != 10000 {
			t.Errorf("other client read %d bytes", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExperimentEntryPoints(t *testing.T) {
	pm := DefaultParams()
	pm.Andrew.Dirs = 1
	pm.Andrew.FilesPerDir = 3
	pm.SortSizes = []int{128 * 1024}
	if _, _, err := Table53(pm); err != nil {
		t.Errorf("Table53: %v", err)
	}
	if _, err := RunSort(RFS, 128*1024, true, pm); err != nil {
		t.Errorf("RunSort(RFS): %v", err)
	}
	run, err := RunAndrew(SNFS, true, pm, false)
	if err != nil {
		t.Errorf("RunAndrew: %v", err)
	}
	if Seconds(run.Result.Total) <= 0 {
		t.Error("no simulated time elapsed")
	}
}
