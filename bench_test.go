package spritelynfs

// One benchmark per table and figure of the paper's evaluation (§5).
// Each iteration rebuilds the simulated testbed and replays the full
// workload deterministically; the reported custom metrics are the
// simulated results (elapsed simulated seconds, RPC counts), while the
// standard ns/op measures the cost of running the simulation itself.

import (
	"testing"

	"spritelynfs/internal/harness"
)

func benchParams() harness.Params { return harness.Default() }

// BenchmarkTable5_1 regenerates the Andrew elapsed-time table.
func BenchmarkTable5_1_Andrew(b *testing.B) {
	pm := benchParams()
	var runs []harness.AndrewRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, _, err = harness.Table51(pm)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range runs {
		b.ReportMetric(r.Result.Total.Seconds(), "simsec-"+shortLabel(r))
	}
}

func shortLabel(r harness.AndrewRun) string {
	switch {
	case r.Proto == harness.Local:
		return "local"
	case r.TmpRemote:
		return r.Proto.String() + "-tmpremote"
	default:
		return r.Proto.String() + "-tmplocal"
	}
}

// BenchmarkTable5_2 regenerates the Andrew RPC-count table.
func BenchmarkTable5_2_AndrewRPCs(b *testing.B) {
	pm := benchParams()
	var runs []harness.AndrewRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, _, err = harness.Table52(pm)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range runs {
		b.ReportMetric(float64(r.Ops.Total()), "rpcs-"+shortLabel(r))
	}
}

// BenchmarkFig5_1 regenerates the NFS server-utilization time series.
func BenchmarkFig5_1_NFSServerLoad(b *testing.B) {
	pm := benchParams()
	var f harness.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = harness.RunFigure(harness.NFS, pm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.Run.CPUUtil, "cpu-util")
	b.ReportMetric(f.Run.Result.Total.Seconds(), "simsec")
}

// BenchmarkFig5_2 regenerates the SNFS server-utilization time series.
func BenchmarkFig5_2_SNFSServerLoad(b *testing.B) {
	pm := benchParams()
	var f harness.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = harness.RunFigure(harness.SNFS, pm)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.Run.CPUUtil, "cpu-util")
	b.ReportMetric(f.Run.Result.Total.Seconds(), "simsec")
}

// BenchmarkTable5_3 regenerates the sort elapsed-time table.
func BenchmarkTable5_3_Sort(b *testing.B) {
	pm := benchParams()
	var runs map[harness.Proto][]harness.SortRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, _, err = harness.Table53(pm)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(pm.SortSizes) - 1
	b.ReportMetric(runs[harness.Local][last].Result.Elapsed.Seconds(), "simsec-local")
	b.ReportMetric(runs[harness.NFS][last].Result.Elapsed.Seconds(), "simsec-NFS")
	b.ReportMetric(runs[harness.SNFS][last].Result.Elapsed.Seconds(), "simsec-SNFS")
}

// BenchmarkTable5_4 regenerates the sort RPC-count table.
func BenchmarkTable5_4_SortRPCs(b *testing.B) {
	pm := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table54(pm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5_5 regenerates the infinite-write-delay sort table.
func BenchmarkTable5_5_SortNoUpdate(b *testing.B) {
	pm := benchParams()
	var runs map[harness.Proto][]harness.SortRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, _, err = harness.Table55(pm)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(pm.SortSizes) - 1
	b.ReportMetric(runs[harness.Local][last].Result.Elapsed.Seconds(), "simsec-local")
	b.ReportMetric(runs[harness.SNFS][last].Result.Elapsed.Seconds(), "simsec-SNFS")
}

// BenchmarkTable5_6 regenerates the update-daemon RPC-count table.
func BenchmarkTable5_6_SortUpdateRPCs(b *testing.B) {
	pm := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table56(pm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroPatterns measures the §5.1 factor analysis.
func BenchmarkMicroPatterns(b *testing.B) {
	pm := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.MicroBenchmarks(pm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations measures the design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	pm := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Ablations(pm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteShare measures the §5 write-sharing trade-off experiment.
func BenchmarkWriteShare(b *testing.B) {
	pm := benchParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.WriteShareExperiment(pm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRFSComparison measures the §2.5 three-protocol comparison.
func BenchmarkRFSComparison(b *testing.B) {
	pm := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RFSExperiment(pm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScale8Clients measures the §2.3 scale point at 8 clients.
func BenchmarkScale8Clients(b *testing.B) {
	pm := benchParams()
	var nfs, snfs harness.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		if nfs, err = harness.RunScale(harness.NFS, 8, pm); err != nil {
			b.Fatal(err)
		}
		if snfs, err = harness.RunScale(harness.SNFS, 8, pm); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nfs.Elapsed.Seconds(), "simsec-NFS")
	b.ReportMetric(snfs.Elapsed.Seconds(), "simsec-SNFS")
}

// BenchmarkProbeSweep measures the §2.1 probe-compromise experiment.
func BenchmarkProbeSweep(b *testing.B) {
	pm := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.ProbeSweep(pm); err != nil {
			b.Fatal(err)
		}
	}
}
