// Package spritelynfs reproduces "Spritely NFS: Experiments with
// Cache-Consistency Protocols" (V. Srinivasan and Jeffrey C. Mogul,
// SOSP 1989) as a runnable system: an NFS client/server pair with the
// reference-port consistency behaviour, a Spritely NFS pair with the
// paper's explicit open/close/callback consistency protocol and server
// state table, a deterministic discrete-event testbed (network, disks,
// CPUs) calibrated to the paper's hardware, and the complete benchmark
// harness that regenerates every table and figure of the evaluation.
//
// Quick start:
//
//	pm := spritelynfs.DefaultParams()
//	world := spritelynfs.NewWorld(spritelynfs.SNFS, true, pm)
//	err := world.Run(func(p *sim.Proc) error {
//	    if err := world.NS.WriteFile(p, "/data/hello", 4096, 8192); err != nil {
//	        return err
//	    }
//	    _, err := world.NS.ReadFile(p, "/data/hello", 8192)
//	    return err
//	})
//
// The experiment entry points (Table51 .. Table56, RunFigure) each build
// fresh worlds and return both raw measurements and a rendered table;
// cmd/snfs-bench wraps them, and bench_test.go exposes them as Go
// benchmarks. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-vs-measured notes.
package spritelynfs

import (
	"spritelynfs/internal/client"
	"spritelynfs/internal/harness"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// Proto selects the file system under test.
type Proto = harness.Proto

// The three configurations the paper compares, plus RFS (the §2.5
// related-work protocol: NFS's write policy with Sprite's consistency).
const (
	Local = harness.Local
	NFS   = harness.NFS
	SNFS  = harness.SNFS
	RFS   = harness.RFS
)

// Params is the calibrated testbed parameter set.
type Params = harness.Params

// World is an assembled testbed (client host, namespace, and — for the
// remote protocols — a server host across the simulated Ethernet).
type World = harness.World

// AndrewRun, SortRun and Figure carry experiment measurements.
type (
	AndrewRun = harness.AndrewRun
	SortRun   = harness.SortRun
	Figure    = harness.Figure
)

// DefaultParams returns the calibrated parameters (Titan-class hosts,
// 10 Mbit/s Ethernet, RA81-class disks, 8 KB transfers, 4 KB server
// blocks, the paper's cache sizes and client policies).
func DefaultParams() Params { return harness.Default() }

// NewWorld builds a testbed for the given protocol; tmpRemote selects
// whether /tmp and /usr/tmp live on the server (the Table 5-1 axis).
func NewWorld(pr Proto, tmpRemote bool, pm Params) *World {
	return harness.Build(pr, tmpRemote, pm)
}

// Experiment entry points, one per table/figure of the paper.
var (
	Table51    = harness.Table51
	Table52    = harness.Table52
	Table53    = harness.Table53
	Table54    = harness.Table54
	Table55    = harness.Table55
	Table56    = harness.Table56
	RunFigure  = harness.RunFigure
	RunAndrew  = harness.RunAndrew
	RunSort    = harness.RunSort
	Micro      = harness.MicroBenchmarks
	Ablations  = harness.Ablations
	WriteShare = harness.WriteShareExperiment
	Scale      = harness.ScaleExperiment
	RFSCompare = harness.RFSExperiment
)

// Seconds converts simulated time to float seconds (re-exported for
// benchmark reporting).
func Seconds(d sim.Duration) float64 { return d.Seconds() }

// Re-exports for building custom topologies (extra client hosts, hybrid
// servers, tuned policies) without reaching into internal packages.
type (
	// Proc is the handle workload code receives inside World.Run.
	Proc = sim.Proc
	// Duration and Time are simulated-clock units (microseconds).
	Duration = sim.Duration
	Time     = sim.Time
	// Namespace is a mount table with the Unix-like file API.
	Namespace = vfs.Namespace
	// File is an open file.
	File = vfs.File
	// Flags control Namespace.Open.
	Flags = vfs.Flags
	// NFSClientOptions and SNFSClientOptions tune the client policies.
	NFSClientOptions  = client.NFSOptions
	SNFSClientOptions = client.SNFSOptions
	// SNFSServerOptions tunes the stateful server (hybrid coexistence,
	// state-table limit, recovery grace period).
	SNFSServerOptions = server.SNFSOptions
	// BuildOptions carries per-world overrides for NewWorldOpt.
	BuildOptions = harness.BuildOptions
)

// Open flags.
const (
	ReadOnly  = vfs.ReadOnly
	WriteOnly = vfs.WriteOnly
	ReadWrite = vfs.ReadWrite
	Create    = vfs.Create
	Truncate  = vfs.Truncate
)

// Simulated-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
)

// NewWorldOpt is NewWorld with overrides (hybrid server, read-ahead).
func NewWorldOpt(pr Proto, tmpRemote bool, pm Params, opt BuildOptions) *World {
	return harness.BuildOpt(pr, tmpRemote, pm, opt)
}
