// Command snfscli is a command-line client for snfsd: it speaks the NFS
// and Spritely NFS procedures over TCP and services callbacks, acting as
// an (uncached) client host.
//
// Usage:
//
//	snfscli -addr localhost:2049 ls /
//	snfscli -addr localhost:2049 cat /demo/file0.txt
//	snfscli -addr localhost:2049 put /demo/new.txt "contents"
//	snfscli -addr localhost:2049 stat /demo/file0.txt
//	snfscli -addr localhost:2049 mkdir /dir
//	snfscli -addr localhost:2049 rm /demo/new.txt
//	snfscli -addr localhost:2049 state /demo/file0.txt   (SNFS open/close round trip)
//	snfscli -addr localhost:2049 stats                   (server metrics, Prometheus text)
//	snfscli -addr localhost:2049 stats -watch 2s         (live deltas and rates)
//	snfscli -addr localhost:2049 audit                   (protocol-audit report)
//	snfscli -addr localhost:2049 shardmap                (federation shard map, if sharded)
//	snfscli -http localhost:9090 top                     (top-style watch over /vars)
//	snfscli -http localhost:9090 slowops                 (critical-path breakdown + slowest ops)
//	snfscli -http localhost:9090 slowops 17              (span tree of captured op 17)
//	snfscli -http localhost:9090 view                    (per-shard view: primary, backup, repl lag)
//
// stats -watch polls the metrics RPC and renders per-interval deltas and
// rates. top needs snfsd -http: it polls the observability plane's /vars
// endpoint and renders a refreshing load screen (no NFS connection).
//
// Pointed at a member of a sharded federation (snfsd -shard-map), stats
// renders a per-shard section instead: each member is dialed for its own
// metrics, summarized as state-table occupancy and CPU/disk utilization.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/span"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/xdr"
)

type cli struct {
	c *rpc.TCPClient
}

func main() {
	addr := flag.String("addr", "localhost:2049", "snfsd address")
	httpAddr := flag.String("http", "localhost:9090", "snfsd observability-plane address (for top)")
	watch := flag.Duration("watch", 0, "with stats: refresh every interval, showing deltas and rates")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// top and slowops talk HTTP only — no NFS connection to make or
	// keep alive.
	if args[0] == "top" {
		interval := *watch
		if interval <= 0 {
			interval = 2 * time.Second
		}
		top(*httpAddr, interval)
		return
	}
	if args[0] == "slowops" {
		slowops(*httpAddr, args[1:])
		return
	}
	if args[0] == "view" {
		viewCmd(*httpAddr)
		return
	}

	conn, err := rpc.DialTCP(*addr)
	if err != nil {
		fatal("connect: %v", err)
	}
	defer conn.Close()
	// Service callbacks: we cache nothing, so every callback succeeds
	// trivially.
	conn.OnCall = func(prog, proc uint32, body []byte) ([]byte, rpc.Status) {
		if prog == proto.ProgCallback {
			return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
		}
		return nil, rpc.StatusProcUnavail
	}
	c := &cli{c: conn}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ls":
		c.ls(arg(rest, 0, "/"))
	case "cat":
		c.cat(need(rest, 0, "path"))
	case "put":
		c.put(need(rest, 0, "path"), need(rest, 1, "contents"))
	case "stat":
		c.stat(need(rest, 0, "path"))
	case "mkdir":
		c.mkdir(need(rest, 0, "path"))
	case "rm":
		c.rm(need(rest, 0, "path"))
	case "state":
		c.state(need(rest, 0, "path"))
	case "dump":
		c.dump()
	case "stats":
		w := *watch
		if len(rest) > 0 {
			sub := flag.NewFlagSet("stats", flag.ExitOnError)
			sw := sub.Duration("watch", w, "refresh every interval, showing deltas and rates")
			sub.Parse(rest)
			w = *sw
		}
		if w > 0 {
			c.statsWatch(w)
		} else {
			c.stats()
		}
	case "audit":
		c.audit()
	case "shardmap":
		c.shardmap()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: snfscli [-addr host:port] [-http host:port] [-watch interval] ls|cat|put|stat|mkdir|rm|state|dump|stats|audit|shardmap|view|top|slowops <args>")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snfscli: "+format+"\n", args...)
	os.Exit(1)
}

func arg(args []string, i int, def string) string {
	if i < len(args) {
		return args[i]
	}
	return def
}

func need(args []string, i int, what string) string {
	if i >= len(args) {
		fatal("missing %s argument", what)
	}
	return args[i]
}

func (c *cli) call(procNum uint32, m proto.Message) []byte {
	body, err := c.c.Call(proto.ProgNFS, proto.VersNFS, procNum, proto.Marshal(m))
	if err != nil {
		fatal("%s: %v", proto.ProcName(proto.ProgNFS, procNum), err)
	}
	return body
}

func (c *cli) root() proto.Handle {
	body, err := c.c.Call(proto.ProgNFS, proto.VersNFS, proto.ProcMountRoot, nil)
	if err != nil {
		fatal("mountroot: %v", err)
	}
	r := proto.DecodeHandleReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		fatal("mountroot: %v", r.Status)
	}
	return r.Handle
}

// walk resolves an absolute path, one lookup per component.
func (c *cli) walk(path string) (proto.Handle, proto.Fattr) {
	h := c.root()
	var attr proto.Fattr
	attr.Type = 2
	for _, comp := range strings.Split(strings.Trim(path, "/"), "/") {
		if comp == "" {
			continue
		}
		body := c.call(proto.ProcLookup, &proto.DirOpArgs{Dir: h, Name: comp})
		r := proto.DecodeHandleReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			fatal("lookup %q: %v", comp, r.Status)
		}
		h = r.Handle
		attr = r.Attr
	}
	return h, attr
}

func (c *cli) walkParent(path string) (proto.Handle, string) {
	trimmed := strings.Trim(path, "/")
	idx := strings.LastIndex(trimmed, "/")
	if idx < 0 {
		return c.root(), trimmed
	}
	h, _ := c.walk(trimmed[:idx])
	return h, trimmed[idx+1:]
}

func (c *cli) ls(path string) {
	h, _ := c.walk(path)
	body := c.call(proto.ProcReaddir, &proto.HandleArgs{Handle: h})
	r := proto.DecodeReaddirReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		fatal("readdir: %v", r.Status)
	}
	for _, e := range r.Entries {
		fmt.Printf("%10d  %s\n", e.Fileid, e.Name)
	}
}

func (c *cli) cat(path string) {
	h, attr := c.walk(path)
	var off int64
	for off < attr.Size {
		body := c.call(proto.ProcRead, &proto.ReadArgs{Handle: h, Offset: off, Count: 8192})
		r := proto.DecodeReadReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			fatal("read: %v", r.Status)
		}
		if len(r.Data) == 0 {
			break
		}
		os.Stdout.Write(r.Data)
		off += int64(len(r.Data))
	}
}

func (c *cli) put(path, contents string) {
	dir, name := c.walkParent(path)
	body := c.call(proto.ProcCreate, &proto.CreateArgs{Dir: dir, Name: name, Mode: 0o644})
	r := proto.DecodeHandleReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		fatal("create: %v", r.Status)
	}
	wbody := c.call(proto.ProcWrite, &proto.WriteArgs{Handle: r.Handle, Offset: 0, Data: []byte(contents)})
	wr := proto.DecodeWriteReply(xdr.NewDecoder(wbody))
	if wr.Status != proto.OK {
		fatal("write: %v", wr.Status)
	}
	fmt.Printf("wrote %d bytes to %s\n", len(contents), path)
}

func (c *cli) stat(path string) {
	_, attr := c.walk(path)
	kind := "file"
	if attr.IsDir() {
		kind = "dir"
	}
	fmt.Printf("%s: %s ino=%d gen=%d size=%d mode=%o nlink=%d mtime=%dus\n",
		path, kind, attr.Fileid, attr.Gen, attr.Size, attr.Mode, attr.Nlink, attr.Mtime)
}

func (c *cli) mkdir(path string) {
	dir, name := c.walkParent(path)
	body := c.call(proto.ProcMkdir, &proto.CreateArgs{Dir: dir, Name: name, Mode: 0o755})
	r := proto.DecodeHandleReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		fatal("mkdir: %v", r.Status)
	}
	fmt.Printf("created %s\n", path)
}

func (c *cli) rm(path string) {
	dir, name := c.walkParent(path)
	body := c.call(proto.ProcRemove, &proto.DirOpArgs{Dir: dir, Name: name})
	r := proto.DecodeStatusReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		fatal("remove: %v", r.Status)
	}
	fmt.Printf("removed %s\n", path)
}

// state exercises the SNFS extension procedures: open for read, report
// the consistency reply, close.
func (c *cli) state(path string) {
	h, _ := c.walk(path)
	body, err := c.c.Call(proto.ProgNFS, proto.VersNFS, proto.ProcOpen,
		proto.Marshal(&proto.OpenArgs{Handle: h}))
	if err == rpc.ErrProcUnavail {
		fmt.Println("server speaks plain NFS (open unavailable); a hybrid client would fall back")
		return
	}
	if err != nil {
		fatal("open: %v", err)
	}
	r := proto.DecodeOpenReply(xdr.NewDecoder(body))
	if r.Status != proto.OK && r.Status != proto.ErrInconsistent {
		fatal("open: %v", r.Status)
	}
	fmt.Printf("open %s: cacheEnabled=%v version=%d prevVersion=%d status=%v\n",
		path, r.CacheEnabled, r.Version, r.PrevVersion, r.Status)
	cbody, err := c.c.Call(proto.ProgNFS, proto.VersNFS, proto.ProcClose,
		proto.Marshal(&proto.CloseArgs{Handle: h}))
	if err != nil {
		fatal("close: %v", err)
	}
	cr := proto.DecodeStatusReply(xdr.NewDecoder(cbody))
	fmt.Printf("close %s: %v\n", path, cr.Status)
}

// fetchShardMap asks the server for its federation map; a plain (old or
// unsharded) server yields the zero map.
func (c *cli) fetchShardMap() proto.ShardMap {
	body, err := c.c.Call(proto.ProgNFS, proto.VersNFS, proto.ProcShardMap,
		proto.Marshal(&proto.ShardMapArgs{}))
	if err != nil {
		return proto.ShardMap{}
	}
	r := proto.DecodeShardMapReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return proto.ShardMap{}
	}
	return r.Map
}

// shardmap prints the server's federation map.
func (c *cli) shardmap() {
	m := c.fetchShardMap()
	if m.IsZero() {
		fmt.Println("server is not sharded")
		return
	}
	fmt.Printf("shard map v%d: %d shards\n", m.Version, len(m.Servers))
	for i, addr := range m.Servers {
		fmt.Printf("  shard %d  %-24s %s\n", i, addr, strings.Join(shardPrefixes(m, i), " "))
	}
}

// shardPrefixes lists the root-level prefixes assigned to shard i (shard
// 0 also owns every unassigned name).
func shardPrefixes(m proto.ShardMap, i int) []string {
	var out []string
	for _, a := range m.Assignments {
		if int(a.Shard) == i {
			out = append(out, a.Prefix)
		}
	}
	if i == 0 {
		out = append(out, "(default)")
	}
	return out
}

// viewCmd renders the failover plane's per-shard view rows from the
// observability plane's /view endpoint: view number, primary, backup,
// and replication lag.
func viewCmd(addr string) {
	url := "http://" + addr + "/view"
	var rows []struct {
		Shard   uint32 `json:"shard"`
		View    uint64 `json:"view"`
		Primary string `json:"primary"`
		Backup  string `json:"backup"`
		Synced  bool   `json:"synced"`
		Lag     uint32 `json:"lag"`
	}
	if err := fetchJSON(url, &rows); err != nil {
		fatal("view: %v (is snfsd running with -http?)", err)
	}
	if len(rows) == 0 {
		fmt.Println("no view plane (server runs without replication)")
		return
	}
	fmt.Printf("%-6s %-6s %-24s %-24s %-7s %s\n", "SHARD", "VIEW", "PRIMARY", "BACKUP", "SYNCED", "LAG")
	for _, r := range rows {
		backup := r.Backup
		if backup == "" {
			backup = "-"
		}
		fmt.Printf("%-6d %-6d %-24s %-24s %-7v %d\n", r.Shard, r.View, r.Primary, backup, r.Synced, r.Lag)
	}
}

// stats prints the server's metrics registry (Prometheus text format):
// per-procedure serve-latency histograms, CPU gauges, and (for SNFS)
// state-table gauges. Against a sharded federation, it instead dials
// every member and renders one summary section per shard.
func (c *cli) stats() {
	if m := c.fetchShardMap(); !m.IsZero() {
		c.clusterStats(m)
		return
	}
	text, ok := c.metricsText()
	if !ok {
		fmt.Println("server does not export metrics")
		return
	}
	os.Stdout.WriteString(text)
	attrCacheSection(text)
}

// metricsText fetches the server's Prometheus text dump; ok is false
// when the server does not export metrics at all.
func (c *cli) metricsText() (string, bool) {
	body, err := c.c.Call(proto.ProgNFS, proto.VersNFS, proto.ProcMetrics, nil)
	if err == rpc.ErrProcUnavail {
		return "", false
	}
	if err != nil {
		fatal("metrics: %v", err)
	}
	r := proto.DecodeMetricsReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		fatal("metrics: %v", r.Status)
	}
	return r.Text, true
}

// statsWatch polls the metrics RPC every interval and renders the deltas:
// for each sample that moved, its current value, the change over the
// window, and the per-second rate. Ctrl-C to stop.
func (c *cli) statsWatch(interval time.Duration) {
	var prev map[string]float64
	prevAt := time.Now()
	for {
		text, ok := c.metricsText()
		if !ok {
			fatal("server does not export metrics")
		}
		cur := parseProm(text)
		now := time.Now()
		if prev != nil {
			renderWatch(prev, cur, now.Sub(prevAt))
		} else {
			fmt.Printf("watching %d samples; first window closes in %s\n", len(cur), interval)
		}
		prev, prevAt = cur, now
		time.Sleep(interval)
	}
}

func renderWatch(prev, cur map[string]float64, dt time.Duration) {
	fmt.Printf("\x1b[H\x1b[2J%s  (%.1fs window; changed samples only)\n\n",
		time.Now().Format("15:04:05"), dt.Seconds())
	fmt.Printf("%-64s %14s %12s %12s\n", "metric", "value", "delta", "rate/s")
	quiet := 0
	for _, n := range sortedKeys(cur) {
		d := cur[n] - prev[n]
		if d == 0 {
			quiet++
			continue
		}
		fmt.Printf("%-64s %14.6g %+12.6g %12.6g\n", n, cur[n], d, d/dt.Seconds())
	}
	fmt.Printf("\n%d samples unchanged\n", quiet)
}

// parseProm flattens Prometheus text output into sample -> value,
// keeping labeled samples distinct and skipping comment lines.
func parseProm(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// top renders a refreshing load screen from the observability plane's
// /vars endpoint: the server gauges, the busiest counters by rate over
// the window, and the latency histograms. Needs snfsd -http.
func top(addr string, interval time.Duration) {
	url := "http://" + addr + "/vars"
	var prev tsdb.Vars
	prevAt := time.Now()
	first := true
	for {
		v, err := fetchVars(url)
		if err != nil {
			fatal("top: %v (is snfsd running with -http?)", err)
		}
		now := time.Now()
		if !first {
			renderTop(addr, prev, v, now.Sub(prevAt))
		} else {
			fmt.Printf("snfs top: polling %s every %s\n", url, interval)
		}
		prev, prevAt, first = v, now, false
		time.Sleep(interval)
	}
}

func fetchVars(url string) (tsdb.Vars, error) {
	var v tsdb.Vars
	return v, fetchJSON(url, &v)
}

func fetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// slowops fetches the span-derived critical-path breakdown and slowest-
// operations capture from the observability plane (/slowops), or one
// captured span tree (/spans/<op>) when an op ID is given. Needs snfsd
// running with -spans and -http.
func slowops(addr string, args []string) {
	if len(args) > 0 {
		var so span.SlowOp
		if err := fetchJSON("http://"+addr+"/spans/"+args[0], &so); err != nil {
			fatal("slowops: %v (is snfsd running with -spans and -http?)", err)
		}
		renderSpanTree(so)
		return
	}
	var s span.Summary
	if err := fetchJSON("http://"+addr+"/slowops", &s); err != nil {
		fatal("slowops: %v (is snfsd running with -spans and -http?)", err)
	}
	if s.Ops == 0 && s.BackgroundRoots == 0 {
		fmt.Println("no operations recorded yet (is snfsd running with -spans?)")
		return
	}
	s.Render(os.Stdout)
	if len(s.SlowOps) > 0 {
		fmt.Println("\nslowest operations (snfscli slowops <op> for the span tree):")
		for _, so := range s.SlowOps {
			fmt.Printf("  op %-8d %-10s %-10s %10.3fms  %d spans\n",
				so.Op, so.Host, so.Name, float64(so.DurUS)/1000, len(so.Spans))
		}
	}
}

// renderSpanTree prints one captured operation as an indented tree with
// per-span durations and offsets from the root.
func renderSpanTree(so span.SlowOp) {
	fmt.Printf("op %d: %s/%s %.3fms\n", so.Op, so.Host, so.Name, float64(so.DurUS)/1000)
	for _, sp := range so.Spans {
		fmt.Printf("  %s%-10s %-12s %-10s +%9.3fms %9.3fms\n",
			strings.Repeat("  ", sp.Depth), sp.Kind, sp.Name, sp.Host,
			float64(sp.StartUS-so.StartUS)/1000, float64(sp.EndUS-sp.StartUS)/1000)
	}
	if len(so.CatsUS) > 0 {
		fmt.Println("attribution:")
		for _, k := range sortedKeys(so.CatsUS) {
			fmt.Printf("  %-12s %9.3fms\n", k, float64(so.CatsUS[k])/1000)
		}
	}
}

func renderTop(addr string, prev, cur tsdb.Vars, dt time.Duration) {
	fmt.Printf("\x1b[H\x1b[2Jsnfs top — %s — %s (%.1fs window)\n\n",
		addr, time.Now().Format("15:04:05"), dt.Seconds())
	fmt.Println("gauges:")
	for _, n := range sortedKeys(cur.Gauges) {
		fmt.Printf("  %-62s %14.6g\n", n, cur.Gauges[n])
	}
	type rated struct {
		name string
		cur  int64
		rate float64
	}
	var rates []rated
	for n, v := range cur.Counters {
		if r := float64(v-prev.Counters[n]) / dt.Seconds(); r > 0 {
			rates = append(rates, rated{n, v, r})
		}
	}
	sort.Slice(rates, func(i, j int) bool { return rates[i].rate > rates[j].rate })
	fmt.Println("\nbusiest counters:")
	if len(rates) == 0 {
		fmt.Println("  (idle)")
	}
	for i, r := range rates {
		if i == 15 {
			fmt.Printf("  ... and %d more\n", len(rates)-i)
			break
		}
		fmt.Printf("  %-62s %12d %9.1f/s\n", r.name, r.cur, r.rate)
	}
	fmt.Println("\nlatency histograms (cumulative, µs):")
	for _, n := range sortedKeys(cur.Histograms) {
		h := cur.Histograms[n]
		fmt.Printf("  %-62s n=%-8d +%-6d p50=%-8.0f p99=%.0f\n",
			n, h.Count, h.Count-prev.Histograms[n].Count, h.P50, h.P99)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// attrCacheSection summarizes the unified attribute-cache counters when
// the registry exports them (simulated worlds share one registry between
// clients and server; a plain snfsd has no client-side gauges, so the
// section is simply absent).
func attrCacheSection(text string) {
	rows := []struct{ metric, label string }{
		{"snfs_client_attrcache_hits_total", "hits"},
		{"snfs_client_attrcache_misses_total", "misses"},
		{"snfs_client_attrcache_expiries_total", "lease expiries"},
		{"snfs_client_attrcache_ingests_total", "piggyback ingests"},
		{"snfs_client_attrcache_shared_drops_total", "write-shared drops"},
	}
	var lines []string
	for _, r := range rows {
		if v, ok := promGauge(text, r.metric); ok {
			lines = append(lines, fmt.Sprintf("  %-18s %.0f", r.label, v))
		}
	}
	if len(lines) == 0 {
		return
	}
	fmt.Println("\nattribute cache:")
	for _, l := range lines {
		fmt.Println(l)
	}
}

// clusterStats renders one summary section per federation member,
// dialing each for its own metrics. A member that cannot be reached is
// reported, not fatal — the rest of the cluster still renders.
func (c *cli) clusterStats(m proto.ShardMap) {
	fmt.Printf("cluster: %d shards, map v%d\n", len(m.Servers), m.Version)
	for i, addr := range m.Servers {
		fmt.Printf("\nshard %d @ %s  owns: %s\n", i, addr, strings.Join(shardPrefixes(m, i), " "))
		conn, err := rpc.DialTCP(addr)
		if err != nil {
			fmt.Printf("  unreachable: %v\n", err)
			continue
		}
		conn.OnCall = func(prog, proc uint32, body []byte) ([]byte, rpc.Status) {
			if prog == proto.ProgCallback {
				return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
			}
			return nil, rpc.StatusProcUnavail
		}
		body, err := conn.Call(proto.ProgNFS, proto.VersNFS, proto.ProcMetrics, nil)
		if err != nil {
			fmt.Printf("  metrics: %v\n", err)
			conn.Close()
			continue
		}
		r := proto.DecodeMetricsReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			fmt.Printf("  metrics: %v\n", r.Status)
			conn.Close()
			continue
		}
		if v, ok := promGauge(r.Text, "snfs_server_state_table_size"); ok {
			fmt.Printf("  state table: %.0f entries\n", v)
		}
		if v, ok := promGauge(r.Text, "snfs_server_cpu_utilization"); ok {
			fmt.Printf("  cpu: %.1f%% busy\n", v*100)
		}
		if v, ok := promGauge(r.Text, "snfs_server_disk_utilization"); ok {
			fmt.Printf("  disk: %.1f%% busy\n", v*100)
		}
		conn.Close()
	}
}

// promGauge extracts the first sample of a metric from Prometheus text
// output, tolerating labels ("name{host="x"} 0.25") and bare samples.
func promGauge(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		if i := strings.LastIndexByte(rest, ' '); i >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest[i+1:]), 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// audit prints the server's protocol-audit report: events witnessed,
// per-invariant violation counts, and the most recent violations. Requires
// snfsd to be started with -audit-journal (the auditor is off otherwise).
func (c *cli) audit() {
	body, err := c.c.Call(proto.ProgNFS, proto.VersNFS, proto.ProcAudit, nil)
	if err == rpc.ErrProcUnavail {
		fmt.Println("server speaks plain NFS: no protocol auditor")
		return
	}
	if err != nil {
		fatal("audit: %v", err)
	}
	r := proto.DecodeAuditReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		fatal("audit: %v", r.Status)
	}
	os.Stdout.WriteString(r.Text)
}

// dump prints the server's consistency state table.
func (c *cli) dump() {
	body, err := c.c.Call(proto.ProgNFS, proto.VersNFS, proto.ProcDumpState, nil)
	if err == rpc.ErrProcUnavail {
		fmt.Println("server speaks plain NFS: no state table to dump")
		return
	}
	if err != nil {
		fatal("dumpstate: %v", err)
	}
	r := proto.DecodeDumpStateReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		fatal("dumpstate: %v", r.Status)
	}
	fmt.Printf("server epoch %d, %d state-table entries\n", r.Epoch, len(r.Entries))
	for _, e := range r.Entries {
		inc := ""
		if e.Inconsistent {
			inc = " INCONSISTENT"
		}
		lw := ""
		if e.LastWriter != "" {
			lw = " lastWriter=" + e.LastWriter
		}
		fmt.Printf("  %-16s %-14s v%-4d%s%s\n", e.Handle, e.StateName, e.Version, lw, inc)
		for _, cl := range e.Clients {
			fmt.Printf("    client %-12s readers=%d writers=%d caching=%v\n",
				cl.Client, cl.Readers, cl.Writers, cl.Caching)
		}
	}
}
