// Command snfs-bench regenerates the tables and figures of the paper's
// evaluation section (§5) in simulation, plus the micro-benchmarks,
// ablations, and extension experiments.
//
// Usage:
//
//	snfs-bench -run all
//	snfs-bench -run table5.1
//	snfs-bench -run table5.2,table5.3 -o results/
//	snfs-bench -run fig5.1
//	snfs-bench -run micro,writeshare,rfs,scale,ablation
//	snfs-bench -run clusterscale -shards 1,2,4 -csv -o results/
//	snfs-bench -run clustersmoke -audit -o results/
//	snfs-bench -run failover -o results/
//	snfs-bench -run scale,rpc,latency -spans -o results/
//	snfs-bench -run trace
//
// Absolute times are simulated; the shapes (who wins, by what factor,
// where the crossovers fall) are the reproduction target. See
// EXPERIMENTS.md for paper-vs-measured notes. With -o, each experiment's
// output is also written to <dir>/<name>.txt.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"spritelynfs/internal/harness"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/span"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/vfs"
	"spritelynfs/internal/workload"
)

var (
	outDir     string
	chromePath string
	csvOut     bool
	shardsFlag string

	scenarioClientsFlag string
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiments: table4.1 table5.1 table5.2 table5.2ss fig5.1 fig5.2 table5.3 table5.4 table5.5 table5.6 micro writeshare rfs probes ablation scale rpc clusterscale clustersmoke failover scenario latency trace all")
	seed := flag.Int64("seed", 1, "simulation random seed")
	auditFlag := flag.Bool("audit", false, "arm the protocol auditor on SNFS worlds; any invariant violation fails the experiment")
	auditJournal := flag.String("audit-journal", "", "write the audit journal (JSONL, one event or violation per line) to this path")
	traceCap := flag.Int("trace-cap", 0, "trace ring capacity for traced experiments (0 = 200000 events)")
	flag.StringVar(&outDir, "o", "", "also write each experiment's output to this directory")
	flag.StringVar(&chromePath, "chrome", "", "Chrome trace-event JSON output path for the latency experiment (default <o>/andrew-trace.json)")
	flag.BoolVar(&csvOut, "csv", false, "write scale/clusterscale measurement points as CSV under -o (default results/)")
	flag.StringVar(&shardsFlag, "shards", "1,2,4", "shard counts for the clusterscale experiment")
	flag.StringVar(&scenarioClientsFlag, "scenario-clients", "16,1000,2000,4000", "client populations for the scenario knee sweep")
	timelineFlag := flag.Bool("timeline", false, "sample metric timelines on the sim clock (500ms) during the scale, clusterscale, and rpc experiments; written as timeline*.json under -o (default results/)")
	spansFlag := flag.Bool("spans", false, "arm causal span tracing during the scale, rpc, and latency experiments; critical-path breakdowns are printed and written as spans*.json under -o (default results/)")
	flag.Parse()

	pm := harness.Default()
	pm.Seed = *seed
	pm.Audit = *auditFlag
	pm.TraceCapacity = *traceCap
	if *timelineFlag {
		pm.SampleInterval = 500 * sim.Millisecond
	}
	pm.Spans = *spansFlag
	var journal *os.File
	if *auditJournal != "" {
		pm.Audit = true
		if dir := filepath.Dir(*auditJournal); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail("audit-journal", err)
			}
		}
		var err error
		journal, err = os.Create(*auditJournal)
		if err != nil {
			fail("audit-journal", err)
		}
		defer journal.Close()
		pm.AuditSink = journal
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0
	should := func(name string) bool {
		if all && name == "trace" {
			return false // trace is a demo, opt-in only
		}
		return all || want[name]
	}

	type experiment struct {
		name string
		run  func(w io.Writer) error
	}
	experiments := []experiment{
		{"table4.1", func(w io.Writer) error {
			harness.Table41().Render(w)
			return nil
		}},
		{"table5.1", func(w io.Writer) error {
			_, t, err := harness.Table51(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"table5.2", func(w io.Writer) error {
			runs, t, err := harness.Table52(pm)
			if err == nil {
				t.Render(w)
				fmt.Fprintln(w)
				harness.LatencyTable(runs).Render(w)
			}
			return err
		}},
		{"table5.2ss", func(w io.Writer) error {
			_, t, err := harness.Table52SteadyState(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"fig5.1", func(w io.Writer) error {
			f, err := harness.RunFigure(harness.NFS, pm)
			if err == nil {
				f.Render(w, "Figure 5-1: Server utilization and call rates, NFS")
			}
			return err
		}},
		{"fig5.2", func(w io.Writer) error {
			f, err := harness.RunFigure(harness.SNFS, pm)
			if err == nil {
				f.Render(w, "Figure 5-2: Server utilization and call rates, SNFS")
			}
			return err
		}},
		{"table5.3", func(w io.Writer) error {
			_, t, err := harness.Table53(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"table5.4", func(w io.Writer) error {
			t, err := harness.Table54(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"table5.5", func(w io.Writer) error {
			_, t, err := harness.Table55(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"table5.6", func(w io.Writer) error {
			t, err := harness.Table56(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"micro", func(w io.Writer) error {
			t, err := harness.MicroBenchmarks(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"writeshare", func(w io.Writer) error {
			_, t, err := harness.WriteShareExperiment(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"rfs", func(w io.Writer) error {
			t, err := harness.RFSExperiment(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"scale", func(w io.Writer) error {
			out, t, err := harness.ScaleExperiment(pm, nil)
			if err != nil {
				return err
			}
			t.Render(w)
			fmt.Fprintln(w)
			for _, pr := range []harness.Proto{harness.NFS, harness.SNFS} {
				n := harness.SustainableClients(out[pr], scaleKnee)
				fmt.Fprintf(w, "%s: sustains %d active clients within %.2fx of single-client time\n",
					pr, n, scaleKnee)
			}
			spansDoc := map[string]*span.Summary{}
			for _, pr := range []harness.Proto{harness.NFS, harness.SNFS} {
				if s := lastSpans(out[pr]); s != nil {
					fmt.Fprintf(w, "\n%s, largest point (%d clients):\n", pr, s.Clients)
					s.Render(w)
					spansDoc[pr.String()] = s
				}
			}
			if len(spansDoc) > 0 {
				if err := writeSpansFile(w, "spans-scale.json", spansDoc); err != nil {
					return err
				}
			}
			if tl := lastTimeline(out[harness.SNFS]); tl != nil {
				if err := writeTimelineFile(w, "timeline.json", tl); err != nil {
					return err
				}
			}
			if tl := lastTimeline(out[harness.NFS]); tl != nil {
				if err := writeTimelineFile(w, "timeline-nfs.json", tl); err != nil {
					return err
				}
			}
			if csvOut {
				if err := writeCSVFile(w, "scale.csv", func(f io.Writer) error {
					if _, err := fmt.Fprintln(f, harness.ScaleCSVHeader); err != nil {
						return err
					}
					if err := harness.AppendScaleCSV(f, "NFS", out[harness.NFS]); err != nil {
						return err
					}
					return harness.AppendScaleCSV(f, "SNFS", out[harness.SNFS])
				}); err != nil {
					return err
				}
				return writeCSVFile(w, "BENCH_scale.json", func(f io.Writer) error {
					return writeScaleJSON(f, out)
				})
			}
			return nil
		}},
		{"rpc", func(w io.Writer) error { return rpcExperiment(w, pm) }},
		{"wire", func(w io.Writer) error { return wireExperiment(w) }},
		{"clusterscale", func(w io.Writer) error { return clusterScaleExperiment(w, pm) }},
		{"clustersmoke", func(w io.Writer) error { return clusterSmoke(w, pm) }},
		{"failover", func(w io.Writer) error { return failoverExperiment(w, pm) }},
		{"scenario", func(w io.Writer) error { return scenarioExperiment(w, pm) }},
		{"ablation", func(w io.Writer) error {
			t, err := harness.Ablations(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"probes", func(w io.Writer) error {
			t, err := harness.ProbeSweep(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"latency", func(w io.Writer) error { return latencyExperiment(w, pm) }},
		{"trace", func(w io.Writer) error { return traceDemo(w, pm) }},
	}

	for _, ex := range experiments {
		if !should(ex.name) {
			continue
		}
		out := io.Writer(os.Stdout)
		var file *os.File
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				fail(ex.name, err)
			}
			var err error
			file, err = os.Create(filepath.Join(outDir, ex.name+".txt"))
			if err != nil {
				fail(ex.name, err)
			}
			out = io.MultiWriter(os.Stdout, file)
		}
		if err := ex.run(out); err != nil {
			fail(ex.name, err)
		}
		fmt.Fprintln(out)
		if file != nil {
			file.Close()
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "snfs-bench: no experiment matched %q\n", *runFlag)
		os.Exit(2)
	}
}

func fail(what string, err error) {
	fmt.Fprintf(os.Stderr, "snfs-bench: %s: %v\n", what, err)
	os.Exit(1)
}

// latencyExperiment runs one traced Andrew benchmark (SNFS, /tmp remote),
// prints the per-procedure latency percentiles next to the op counts, and
// writes the RPC serve timeline as Chrome trace-event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev).
func latencyExperiment(w io.Writer, pm harness.Params) error {
	run, tr, err := harness.RunAndrewTraced(harness.SNFS, true, pm)
	if err != nil {
		return err
	}
	runs := []harness.AndrewRun{run}
	fmt.Fprintf(w, "Andrew benchmark, %s: %.1f simulated seconds, %d RPC calls\n\n",
		run.Label(), run.Result.Total.Seconds(), run.Ops.Total())
	harness.LatencyTable(runs).Render(w)

	path := chromePath
	if path == "" {
		path = "andrew-trace.json"
		if outDir != "" {
			path = filepath.Join(outDir, "andrew-trace.json")
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nChrome trace written to %s (%d events recorded, %d dropped)\n",
		path, tr.Total(), tr.Dropped())
	if run.Spans != nil {
		fmt.Fprintln(w)
		run.Spans.Render(w)
		if err := writeSpansFile(w, "spans-latency.json", run.Spans); err != nil {
			return err
		}
		// The captured trees also export as a nested Chrome trace: each
		// slow op becomes a process track with one row per tree depth.
		dir := outDir
		if dir == "" {
			dir = "results"
		}
		spath := filepath.Join(dir, "andrew-spans-trace.json")
		sf, err := os.Create(spath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeSpans(sf, run.Spans.SlowOps); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "nested span trace written to %s\n", spath)
		return nil
	}
	return nil
}

// parseCounts parses a comma-separated list of positive integers.
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no counts in %q", s)
	}
	return out, nil
}

// scaleKnee is the slowdown bound defining the "sustainable" client
// count of the scale sweeps (the knee of the load curve). The CI
// scale-regression job checks the knees in BENCH_scale.json against it.
const scaleKnee = 1.5

// scaleJSON is the machine-readable summary of the scale sweep
// (results/BENCH_scale.json), consumed by the CI scale-regression job.
type scaleJSON struct {
	Experiment  string                    `json:"experiment"`
	MaxSlowdown float64                   `json:"max_slowdown"`
	Protocols   map[string]scaleProtoJSON `json:"protocols"`
}

type scaleProtoJSON struct {
	// UnstableWrites reports whether the sweep armed the unstable
	// WRITE + COMMIT pipeline for this protocol (the NFS-side answer
	// to the disk-arm bottleneck; SNFS keeps its measured delayed
	// write-back configuration).
	UnstableWrites     bool             `json:"unstable_writes"`
	SustainableClients int              `json:"sustainable_clients"`
	Points             []scalePointJSON `json:"points"`
}

type scalePointJSON struct {
	Clients    int     `json:"clients"`
	ElapsedS   float64 `json:"elapsed_s"`
	Slowdown   float64 `json:"slowdown"`
	ServerCPU  float64 `json:"server_cpu"`
	ServerDisk float64 `json:"server_disk"`
	TotalRPCs  int64   `json:"total_rpcs"`
}

func writeScaleJSON(f io.Writer, out map[harness.Proto][]harness.ScalePoint) error {
	doc := scaleJSON{
		Experiment:  "scale",
		MaxSlowdown: scaleKnee,
		Protocols:   map[string]scaleProtoJSON{},
	}
	for _, pr := range []harness.Proto{harness.NFS, harness.SNFS} {
		pj := scaleProtoJSON{
			UnstableWrites:     pr == harness.NFS,
			SustainableClients: harness.SustainableClients(out[pr], scaleKnee),
		}
		for _, pt := range out[pr] {
			pj.Points = append(pj.Points, scalePointJSON{
				Clients:    pt.Clients,
				ElapsedS:   pt.Elapsed.Seconds(),
				Slowdown:   pt.Slowdown,
				ServerCPU:  pt.ServerCPU,
				ServerDisk: pt.ServerDisk,
				TotalRPCs:  pt.TotalRPCs,
			})
		}
		doc.Protocols[pr.String()] = pj
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// writeCSVFile creates name under -o (default results/), fills it via
// fn, and notes the path on the experiment's output.
func writeCSVFile(w io.Writer, name string, fn func(f io.Writer) error) error {
	dir := outDir
	if dir == "" {
		dir = "results"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nCSV written to %s\n", path)
	return nil
}

// rpcMinReduction is the acceptance floor for the attribute-piggybacking
// extensions: the armed Andrew run must cut NFS getattr+lookup traffic by
// at least this fraction. The CI rpc-regression job checks
// BENCH_rpc.json against it.
const rpcMinReduction = 0.30

// rpcJSON is the machine-readable summary of the RPC-count experiment
// (results/BENCH_rpc.json), consumed by the CI rpc-regression job.
type rpcJSON struct {
	Experiment   string                  `json:"experiment"`
	MinReduction float64                 `json:"min_reduction"`
	Protocols    map[string]rpcProtoJSON `json:"protocols"`
}

type rpcProtoJSON struct {
	Vintage rpcRunJSON `json:"vintage"`
	Armed   rpcRunJSON `json:"armed"`
	// Reduction is the fractional drop in attribute RPCs
	// (getattr + lookup + lookuppath) from vintage to armed.
	Reduction float64 `json:"attr_rpc_reduction"`
}

type rpcRunJSON struct {
	TotalRPCs    int64 `json:"total_rpcs"`
	Getattr      int64 `json:"getattr"`
	Lookup       int64 `json:"lookup"`
	LookupPath   int64 `json:"lookuppath"`
	ReaddirAttrs int64 `json:"readdirattrs"`
	AttrRPCs     int64 `json:"attr_rpcs"`
}

func rpcCounts(run harness.AndrewRun) rpcRunJSON {
	o := run.Ops
	j := rpcRunJSON{
		TotalRPCs:    o.Total(),
		Getattr:      o.Get("getattr"),
		Lookup:       o.Get("lookup"),
		LookupPath:   o.Get("lookuppath"),
		ReaddirAttrs: o.Get("readdirattrs"),
	}
	j.AttrRPCs = j.Getattr + j.Lookup + j.LookupPath
	return j
}

// rpcExperiment measures what the attribute-piggybacking and
// compound-lookup extensions save: the Andrew benchmark runs vintage and
// armed for each remote protocol and the per-procedure call counts are
// compared. The armed SNFS run carries the full protocol auditor, so the
// savings are certified consistency-preserving. Self-checking: the armed
// NFS run must cut attribute RPCs (getattr + lookup) by at least
// rpcMinReduction, and attribute traffic must not rise for either
// protocol.
func rpcExperiment(w io.Writer, pm harness.Params) error {
	doc := rpcJSON{
		Experiment:   "rpc",
		MinReduction: rpcMinReduction,
		Protocols:    map[string]rpcProtoJSON{},
	}
	fmt.Fprintln(w, "RPC-count experiment: Andrew benchmark, vintage vs armed")
	fmt.Fprintln(w, "(armed = post-op attribute piggybacking + READDIRPLUS-style readdir + compound lookup)")
	fmt.Fprintln(w)
	for _, pr := range []harness.Proto{harness.NFS, harness.SNFS} {
		vrun, err := harness.RunAndrew(pr, true, pm, false)
		if err != nil {
			return fmt.Errorf("%s vintage: %w", pr, err)
		}
		armedPM := pm
		armedPM.AttrPiggyback = true
		armedPM.LookupPath = true
		if pr == harness.SNFS {
			armedPM.Audit = true // certify the savings break nothing
		}
		arun, err := harness.RunAndrew(pr, true, armedPM, false)
		if err != nil {
			return fmt.Errorf("%s armed: %w", pr, err)
		}
		pj := rpcProtoJSON{Vintage: rpcCounts(vrun), Armed: rpcCounts(arun)}
		if pj.Vintage.AttrRPCs > 0 {
			pj.Reduction = 1 - float64(pj.Armed.AttrRPCs)/float64(pj.Vintage.AttrRPCs)
		}
		doc.Protocols[pr.String()] = pj
		fmt.Fprintf(w, "%-4s attr RPCs %5d -> %4d (%+.1f%%)   total %5d -> %5d\n",
			pr, pj.Vintage.AttrRPCs, pj.Armed.AttrRPCs, -100*pj.Reduction,
			pj.Vintage.TotalRPCs, pj.Armed.TotalRPCs)
		fmt.Fprintf(w, "     getattr %d -> %d, lookup %d -> %d (+%d lookuppath), readdirattrs %d\n",
			pj.Vintage.Getattr, pj.Armed.Getattr, pj.Vintage.Lookup, pj.Armed.Lookup,
			pj.Armed.LookupPath, pj.Armed.ReaddirAttrs)
		if pj.Reduction < 0 {
			return fmt.Errorf("%s: armed run RAISED attribute traffic (%d -> %d)",
				pr, pj.Vintage.AttrRPCs, pj.Armed.AttrRPCs)
		}
		if pr == harness.NFS && pj.Reduction < rpcMinReduction {
			return fmt.Errorf("NFS attribute-RPC reduction %.1f%% below the %.0f%% floor",
				100*pj.Reduction, 100*rpcMinReduction)
		}
		if pr == harness.SNFS && arun.Timeline != nil {
			if err := writeTimelineFile(w, "timeline-rpc.json", arun.Timeline); err != nil {
				return err
			}
		}
		if pr == harness.SNFS && arun.Spans != nil {
			fmt.Fprintf(w, "\narmed %s run:\n", pr)
			arun.Spans.Render(w)
			if err := writeSpansFile(w, "spans-rpc.json", arun.Spans); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(w, "\narmed SNFS run audited: zero protocol violations\n")
	return writeCSVFile(w, "BENCH_rpc.json", func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}

// clusterScaleExperiment sweeps client counts across the -shards shard
// counts and verifies the central claim of the federation: the knee of
// the load curve (the sustainable active-client count) moves out
// monotonically as shards are added.
func clusterScaleExperiment(w io.Writer, pm harness.Params) error {
	shardCounts, err := parseCounts(shardsFlag)
	if err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	out, t, err := harness.ClusterScaleExperiment(pm, shardCounts, nil)
	if err != nil {
		return err
	}
	t.Render(w)
	fmt.Fprintln(w)
	const knee = 1.5
	prev := -1
	for _, m := range shardCounts {
		n := harness.SustainableClients(out[m], knee)
		fmt.Fprintf(w, "%d shard(s): sustains %d active clients within %.2fx of single-client time\n", m, n, knee)
		if prev >= 0 && n < prev {
			return fmt.Errorf("knee moved in: %d shards sustain %d clients, down from %d", m, n, prev)
		}
		prev = n
	}
	if tl := lastTimeline(out[shardCounts[len(shardCounts)-1]]); tl != nil {
		if err := writeTimelineFile(w, "timeline-cluster.json", tl); err != nil {
			return err
		}
	}
	if csvOut {
		return writeCSVFile(w, "cluster-scale.csv", func(f io.Writer) error {
			if _, err := fmt.Fprintln(f, harness.ScaleCSVHeader); err != nil {
				return err
			}
			for _, m := range shardCounts {
				if err := harness.AppendScaleCSV(f, "SNFS", out[m]); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return nil
}

// lastTimeline returns the sampled timeline of the largest-client-count
// point of a sweep, nil when sampling was off (-timeline unset).
func lastTimeline(pts []harness.ScalePoint) *tsdb.Timeline {
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].Timeline != nil {
			return pts[i].Timeline
		}
	}
	return nil
}

// lastSpans returns the span summary of the largest-client-count point
// of a sweep, nil when span tracing was off (-spans unset).
func lastSpans(pts []harness.ScalePoint) *span.Summary {
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].Spans != nil {
			return pts[i].Spans
		}
	}
	return nil
}

// writeSpansFile writes a span summary document as JSON under -o
// (default results/).
func writeSpansFile(w io.Writer, name string, v any) error {
	dir := outDir
	if dir == "" {
		dir = "results"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "span breakdown written to %s\n", path)
	return nil
}

// writeTimelineFile writes a sampled timeline as JSON under -o (default
// results/).
func writeTimelineFile(w io.Writer, name string, tl *tsdb.Timeline) error {
	dir := outDir
	if dir == "" {
		dir = "results"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "timeline written to %s\n", path)
	return nil
}

// clusterSmoke is the CI gate for the federation: an audited 3-shard run
// with a mid-workload rebalance, failing on any audit violation, on a
// redirect loop, or if the rebalance converges without a single NOTHOME
// redirect being exercised. With -o it writes the per-shard audit
// journals and the final shard map.
func clusterSmoke(w io.Writer, pm harness.Params) error {
	const nshards = 3
	pm.Audit = true
	sinks := make([]*os.File, nshards)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		for i := range sinks {
			f, err := os.Create(filepath.Join(outDir, fmt.Sprintf("cluster-shard%d.jsonl", i)))
			if err != nil {
				return err
			}
			defer f.Close()
			sinks[i] = f
		}
		pm.AuditSinkFor = func(shard int) io.Writer {
			if shard < len(sinks) && sinks[shard] != nil {
				return sinks[shard]
			}
			return nil
		}
	}

	dirs := []string{"/u00", "/u01", "/u02"}
	cw, err := harness.BuildCluster(nshards, map[string]uint32{
		dirs[0]: 0, dirs[1]: 1, dirs[2]: 2,
	}, pm)
	if err != nil {
		return err
	}
	namespaces := make([]*vfs.Namespace, len(dirs))
	for i := range dirs {
		_, namespaces[i] = cw.AddRouter(simnet.Addr(fmt.Sprintf("client%d", i)))
	}

	work := func(p *sim.Proc, ns *vfs.Namespace, dir, phase string) error {
		for j := 0; j < 4; j++ {
			path := fmt.Sprintf("%s/%s%d.dat", dir, phase, j)
			if err := ns.WriteFile(p, path, 24*1024, pm.TransferSize); err != nil {
				return err
			}
			if _, err := ns.ReadFile(p, path, pm.TransferSize); err != nil {
				return err
			}
		}
		return nil
	}
	phase := func(p *sim.Proc, name string) error {
		wg := sim.NewWaitGroup(cw.K, len(dirs))
		errs := make([]error, len(dirs))
		for i := range dirs {
			i := i
			cw.K.Go(fmt.Sprintf("smoke-%s-%d", name, i), func(cp *sim.Proc) {
				defer wg.Done()
				errs[i] = work(cp, namespaces[i], dirs[i], name)
			})
		}
		wg.Wait(p)
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}
	err = cw.Run(func(p *sim.Proc) error {
		for i, dir := range dirs {
			if err := namespaces[i].Mkdir(p, dir, 0o755); err != nil {
				return err
			}
		}
		if err := phase(p, "pre"); err != nil {
			return err
		}
		// Move client 0's subtree under every router's feet: the stale
		// maps must converge through NOTHOME redirects, and the dirty
		// delayed writes quiesced by the move must survive it.
		if err := cw.Cluster.Rebalance(p, dirs[0], 1); err != nil {
			return err
		}
		if err := phase(p, "post"); err != nil {
			return err
		}
		if _, err := namespaces[2].ReadFile(p, dirs[0]+"/pre0.dat", pm.TransferSize); err != nil {
			return fmt.Errorf("pre-rebalance data after migration: %w", err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if cw.Redirects() < 1 {
		return fmt.Errorf("rebalance exercised no NOTHOME redirects")
	}
	m := cw.Cluster.Map()
	fmt.Fprintf(w, "cluster smoke: %d shards, map converged at v%d, %d redirects healed, audit clean\n",
		nshards, m.Version, cw.Redirects())
	for _, sh := range cw.Cluster.Shards() {
		fmt.Fprintf(w, "  shard %d: %d RPCs served, %d state-table entries\n",
			sh.ID, sh.Server.Ops().Total(), sh.Server.Table().Len())
	}
	if outDir != "" {
		blob, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "shardmap.json")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "shard map written to %s\n", path)
	}
	return nil
}

// failoverHealBound is the acceptance ceiling on the heal time of the
// kill-primary failover run: crash to the first client RPC served by the
// promoted backup must fit inside this many simulated seconds. The CI
// failover job checks BENCH_failover.json against it.
const failoverHealBound = 30.0

// failoverJSON is the machine-readable summary of the failover
// experiment (results/BENCH_failover.json), consumed by the CI failover
// job.
type failoverJSON struct {
	Experiment   string  `json:"experiment"`
	Clients      int     `json:"clients"`
	Shards       int     `json:"shards"`
	KillShard    int     `json:"kill_shard"`
	KillAtS      float64 `json:"kill_at_s"`
	BaselineS    float64 `json:"baseline_s"`
	ElapsedS     float64 `json:"elapsed_s"`
	PromotedView uint64  `json:"promoted_view"`
	ViewChanges  uint64  `json:"view_changes"`
	DetectS      float64 `json:"detect_s"`
	HealS        float64 `json:"heal_s"`
	HealBoundS   float64 `json:"heal_bound_s"`
	Redirects    int64   `json:"redirects"`
}

// failoverExperiment measures what replication buys over §2.4's
// crash-recovery story: an audited 3-shard federation runs one Andrew
// benchmark per client, the primary of shard 0 is killed mid-workload,
// and the run must complete with the backup promoted and every client
// healed through rerouting and map refetch — no reboot, no manual
// intervention. Reported against a no-kill baseline: the detection time
// (crash to promotion), the heal time (crash to the first client RPC
// served by the new primary), and the total slowdown. Self-checking:
// promotion must happen, the heal time must fit failoverHealBound, and
// any audit violation fails the run. With -o the viewservice transition
// log is written as view.log.
func failoverExperiment(w io.Writer, pm harness.Params) error {
	const (
		nclients = 3
		nshards  = 3
		kill     = 0
	)
	killAt := 30 * sim.Second
	pm.Audit = true // certify the takeover preserves consistency
	pm.Backups = true
	pm.ViewInterval = 100 * sim.Millisecond
	pm.ViewDeadPings = 5
	// Size the ring to hold the whole run (~11k events per shard), so the
	// promotion and heal records survive to the post-run dump.
	pm.FlightCapacity = 32768

	basePM := pm
	base, err := harness.RunClusterFailover(nclients, nshards, kill, "", 0, basePM)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}

	var viewLog strings.Builder
	pm.ViewLog = &viewLog
	pt, err := harness.RunClusterFailover(nclients, nshards, kill, "primary", killAt, pm)
	if err != nil {
		return fmt.Errorf("kill-primary: %w", err)
	}
	if pt.PromotedView < 2 {
		return fmt.Errorf("no promotion: shard %d still at view %d", kill, pt.PromotedView)
	}
	if pt.HealTime <= 0 {
		return fmt.Errorf("backup served no client RPC after the crash")
	}
	if pt.HealTime.Seconds() > failoverHealBound {
		return fmt.Errorf("heal time %.2fs exceeds the %.0fs bound",
			pt.HealTime.Seconds(), failoverHealBound)
	}

	fmt.Fprintf(w, "Failover experiment: %d shards x %d Andrew clients, kill shard %d primary at t=%.0fs (audited)\n\n",
		nshards, nclients, kill, killAt.Seconds())
	fmt.Fprintf(w, "baseline (no kill):  slowest client %8.1f s\n", base.Elapsed.Seconds())
	fmt.Fprintf(w, "kill-primary:        slowest client %8.1f s (+%.1f%%)\n",
		pt.Elapsed.Seconds(), 100*(pt.Elapsed.Seconds()/base.Elapsed.Seconds()-1))
	fmt.Fprintf(w, "detect (crash -> promotion):            %6.2f s\n", pt.DetectTime.Seconds())
	fmt.Fprintf(w, "heal   (crash -> first op on new primary): %.2f s\n", pt.HealTime.Seconds())
	fmt.Fprintf(w, "promoted under view %d after %d view change(s); %d NOTHOME redirects healed\n",
		pt.PromotedView, pt.ViewChanges, pt.Redirects)
	fmt.Fprintln(w, "audit clean: zero protocol violations across all shards")

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, "view.log")
		if err := os.WriteFile(path, []byte(viewLog.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "viewservice transition log written to %s\n", path)
		if pt.Flight != nil {
			fpath := filepath.Join(outDir, "failover-flight.txt")
			f, err := os.Create(fpath)
			if err != nil {
				return err
			}
			pt.Flight.WriteText(f, "failover")
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "killed shard's flight dump written to %s\n", fpath)
		}
	}
	doc := failoverJSON{
		Experiment:   "failover",
		Clients:      nclients,
		Shards:       nshards,
		KillShard:    kill,
		KillAtS:      killAt.Seconds(),
		BaselineS:    base.Elapsed.Seconds(),
		ElapsedS:     pt.Elapsed.Seconds(),
		PromotedView: pt.PromotedView,
		ViewChanges:  pt.ViewChanges,
		DetectS:      pt.DetectTime.Seconds(),
		HealS:        pt.HealTime.Seconds(),
		HealBoundS:   failoverHealBound,
		Redirects:    pt.Redirects,
	}
	return writeCSVFile(w, "BENCH_failover.json", func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}

// traceDemo runs the sequential write-sharing scenario with full tracing
// and prints the protocol timeline: the open, the CLOSED-DIRTY hit, the
// write-back callback, and the flush, in order.
func traceDemo(w io.Writer, pm harness.Params) error {
	world := harness.Build(harness.SNFS, true, pm)
	tr := world.EnableTrace(0)
	readerCli, readerNS := world.AddSNFSClient("reader", pm.SNFS)
	readerCli.SetTracer(tr)
	readerCli.Endpoint().Tracer = tr
	err := world.Run(func(p *sim.Proc) error {
		if err := world.NS.WriteFile(p, "/data/shared.txt", 24*1024, 8192); err != nil {
			return err
		}
		return workload.ReadQuickly(p, readerNS, "/data/shared.txt", 8192)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Protocol timeline: writer creates and writes a file (delayed write-back),")
	fmt.Fprintln(w, "then a second host reads it, forcing the CLOSED-DIRTY write-back callback:")
	fmt.Fprintln(w)
	tr.Dump(w)
	fmt.Fprintf(w, "\n%d events total; states and callbacks only:\n\n", tr.Total())
	tr.Dump(w, trace.State, trace.Callback)
	return nil
}
