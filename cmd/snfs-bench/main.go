// Command snfs-bench regenerates the tables and figures of the paper's
// evaluation section (§5) in simulation, plus the micro-benchmarks,
// ablations, and extension experiments.
//
// Usage:
//
//	snfs-bench -run all
//	snfs-bench -run table5.1
//	snfs-bench -run table5.2,table5.3 -o results/
//	snfs-bench -run fig5.1
//	snfs-bench -run micro,writeshare,rfs,scale,ablation
//	snfs-bench -run trace
//
// Absolute times are simulated; the shapes (who wins, by what factor,
// where the crossovers fall) are the reproduction target. See
// EXPERIMENTS.md for paper-vs-measured notes. With -o, each experiment's
// output is also written to <dir>/<name>.txt.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"spritelynfs/internal/harness"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/workload"
)

var (
	outDir     string
	chromePath string
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiments: table4.1 table5.1 table5.2 table5.2ss fig5.1 fig5.2 table5.3 table5.4 table5.5 table5.6 micro writeshare rfs probes ablation scale latency trace all")
	seed := flag.Int64("seed", 1, "simulation random seed")
	auditFlag := flag.Bool("audit", false, "arm the protocol auditor on SNFS worlds; any invariant violation fails the experiment")
	auditJournal := flag.String("audit-journal", "", "write the audit journal (JSONL, one event or violation per line) to this path")
	traceCap := flag.Int("trace-cap", 0, "trace ring capacity for traced experiments (0 = 200000 events)")
	flag.StringVar(&outDir, "o", "", "also write each experiment's output to this directory")
	flag.StringVar(&chromePath, "chrome", "", "Chrome trace-event JSON output path for the latency experiment (default <o>/andrew-trace.json)")
	flag.Parse()

	pm := harness.Default()
	pm.Seed = *seed
	pm.Audit = *auditFlag
	pm.TraceCapacity = *traceCap
	var journal *os.File
	if *auditJournal != "" {
		pm.Audit = true
		if dir := filepath.Dir(*auditJournal); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail("audit-journal", err)
			}
		}
		var err error
		journal, err = os.Create(*auditJournal)
		if err != nil {
			fail("audit-journal", err)
		}
		defer journal.Close()
		pm.AuditSink = journal
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0
	should := func(name string) bool {
		if all && name == "trace" {
			return false // trace is a demo, opt-in only
		}
		return all || want[name]
	}

	type experiment struct {
		name string
		run  func(w io.Writer) error
	}
	experiments := []experiment{
		{"table4.1", func(w io.Writer) error {
			harness.Table41().Render(w)
			return nil
		}},
		{"table5.1", func(w io.Writer) error {
			_, t, err := harness.Table51(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"table5.2", func(w io.Writer) error {
			runs, t, err := harness.Table52(pm)
			if err == nil {
				t.Render(w)
				fmt.Fprintln(w)
				harness.LatencyTable(runs).Render(w)
			}
			return err
		}},
		{"table5.2ss", func(w io.Writer) error {
			_, t, err := harness.Table52SteadyState(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"fig5.1", func(w io.Writer) error {
			f, err := harness.RunFigure(harness.NFS, pm)
			if err == nil {
				f.Render(w, "Figure 5-1: Server utilization and call rates, NFS")
			}
			return err
		}},
		{"fig5.2", func(w io.Writer) error {
			f, err := harness.RunFigure(harness.SNFS, pm)
			if err == nil {
				f.Render(w, "Figure 5-2: Server utilization and call rates, SNFS")
			}
			return err
		}},
		{"table5.3", func(w io.Writer) error {
			_, t, err := harness.Table53(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"table5.4", func(w io.Writer) error {
			t, err := harness.Table54(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"table5.5", func(w io.Writer) error {
			_, t, err := harness.Table55(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"table5.6", func(w io.Writer) error {
			t, err := harness.Table56(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"micro", func(w io.Writer) error {
			t, err := harness.MicroBenchmarks(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"writeshare", func(w io.Writer) error {
			_, t, err := harness.WriteShareExperiment(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"rfs", func(w io.Writer) error {
			t, err := harness.RFSExperiment(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"scale", func(w io.Writer) error {
			_, t, err := harness.ScaleExperiment(pm, nil)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"ablation", func(w io.Writer) error {
			t, err := harness.Ablations(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"probes", func(w io.Writer) error {
			t, err := harness.ProbeSweep(pm)
			if err == nil {
				t.Render(w)
			}
			return err
		}},
		{"latency", func(w io.Writer) error { return latencyExperiment(w, pm) }},
		{"trace", func(w io.Writer) error { return traceDemo(w, pm) }},
	}

	for _, ex := range experiments {
		if !should(ex.name) {
			continue
		}
		out := io.Writer(os.Stdout)
		var file *os.File
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				fail(ex.name, err)
			}
			var err error
			file, err = os.Create(filepath.Join(outDir, ex.name+".txt"))
			if err != nil {
				fail(ex.name, err)
			}
			out = io.MultiWriter(os.Stdout, file)
		}
		if err := ex.run(out); err != nil {
			fail(ex.name, err)
		}
		fmt.Fprintln(out)
		if file != nil {
			file.Close()
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "snfs-bench: no experiment matched %q\n", *runFlag)
		os.Exit(2)
	}
}

func fail(what string, err error) {
	fmt.Fprintf(os.Stderr, "snfs-bench: %s: %v\n", what, err)
	os.Exit(1)
}

// latencyExperiment runs one traced Andrew benchmark (SNFS, /tmp remote),
// prints the per-procedure latency percentiles next to the op counts, and
// writes the RPC serve timeline as Chrome trace-event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev).
func latencyExperiment(w io.Writer, pm harness.Params) error {
	run, tr, err := harness.RunAndrewTraced(harness.SNFS, true, pm)
	if err != nil {
		return err
	}
	runs := []harness.AndrewRun{run}
	fmt.Fprintf(w, "Andrew benchmark, %s: %.1f simulated seconds, %d RPC calls\n\n",
		run.Label(), run.Result.Total.Seconds(), run.Ops.Total())
	harness.LatencyTable(runs).Render(w)

	path := chromePath
	if path == "" {
		path = "andrew-trace.json"
		if outDir != "" {
			path = filepath.Join(outDir, "andrew-trace.json")
		}
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nChrome trace written to %s (%d events recorded, %d dropped)\n",
		path, tr.Total(), tr.Dropped())
	return nil
}

// traceDemo runs the sequential write-sharing scenario with full tracing
// and prints the protocol timeline: the open, the CLOSED-DIRTY hit, the
// write-back callback, and the flush, in order.
func traceDemo(w io.Writer, pm harness.Params) error {
	world := harness.Build(harness.SNFS, true, pm)
	tr := world.EnableTrace(0)
	readerCli, readerNS := world.AddSNFSClient("reader", pm.SNFS)
	readerCli.SetTracer(tr)
	readerCli.Endpoint().Tracer = tr
	err := world.Run(func(p *sim.Proc) error {
		if err := world.NS.WriteFile(p, "/data/shared.txt", 24*1024, 8192); err != nil {
			return err
		}
		return workload.ReadQuickly(p, readerNS, "/data/shared.txt", 8192)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Protocol timeline: writer creates and writes a file (delayed write-back),")
	fmt.Fprintln(w, "then a second host reads it, forcing the CLOSED-DIRTY write-back callback:")
	fmt.Fprintln(w)
	tr.Dump(w)
	fmt.Fprintf(w, "\n%d events total; states and callbacks only:\n\n", tr.Total())
	tr.Dump(w, trace.State, trace.Callback)
	return nil
}
