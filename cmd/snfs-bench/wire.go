package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/xdr"
)

// The wire experiment measures the host-side cost of the RPC wire path —
// the thing that bounds both a real mount's throughput and every
// simulator sweep's wall-clock. Two oracles:
//
//  1. An 8 KiB WRITE pushed through the full codec: pooled XDR encode →
//     record framing → record reading → zero-copy decode. The pooled
//     path must stay within wireMaxAllocs allocations per round trip
//     (the seed paid one allocation per field).
//  2. Pipelined TCP throughput over loopback against a server that
//     charges each call a concurrent wireServiceDelay (modeling a
//     network round trip): depth-8 pipelining must beat depth-1
//     lockstep by at least wireMinSpeedup. The ratio is
//     machine-independent, so CI can gate on it.
const (
	wireMaxAllocs    = 2
	wireMinSpeedup   = 3.0
	wireServiceDelay = 500 * time.Microsecond
	wirePipelineOps  = 1000
)

// wireJSON is the machine-readable summary (results/BENCH_wire.json),
// consumed by the CI wire-regression job.
type wireJSON struct {
	Experiment  string           `json:"experiment"`
	MaxAllocs   int64            `json:"max_allocs_per_op"`
	MinSpeedup  float64          `json:"min_pipeline_speedup"`
	RoundTrip8K wireRoundJSON    `json:"roundtrip_8k"`
	Pipeline    wirePipelineJSON `json:"pipeline"`
}

type wireRoundJSON struct {
	NsOp     int64   `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
	MBs      float64 `json:"mb_s"`
}

type wirePipelineJSON struct {
	ServiceDelayUs int64              `json:"service_delay_us"`
	Depths         map[string]float64 `json:"ops_s_by_depth"`
	Speedup8       float64            `json:"speedup_depth8"`
	Speedup32      float64            `json:"speedup_depth32"`
}

// wireRoundTrip benchmarks encode → frame → read → decode of an 8 KiB
// WRITE through the pooled/zero-copy path.
func wireRoundTrip() wireRoundJSON {
	msg := &proto.WriteArgs{
		Handle:   proto.Handle{Ino: 42, Gen: 7},
		Offset:   8192,
		Data:     bytes.Repeat([]byte{0xa5}, 8192),
		Unstable: true,
	}
	res := testing.Benchmark(func(b *testing.B) {
		var frame bytes.Buffer
		var br bytes.Reader
		rr := rpc.NewRecordReader(&br)
		var d xdr.Decoder
		b.SetBytes(8192)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc := xdr.GetEncoder()
			msg.Encode(enc)
			frame.Reset()
			rpc.WriteRecord(&frame, enc.Bytes())
			enc.Release()
			br.Reset(frame.Bytes())
			rec, err := rr.Next()
			if err != nil {
				b.Fatalf("read record: %v", err)
			}
			d.Reset(rec)
			got := proto.DecodeWriteArgs(&d)
			if d.Err() != nil || len(got.Data) != len(msg.Data) {
				b.Fatalf("decode: err=%v len=%d", d.Err(), len(got.Data))
			}
		}
	})
	nsOp := res.NsPerOp()
	mbs := 0.0
	if nsOp > 0 {
		mbs = 8192.0 / float64(nsOp) * 1e9 / 1e6
	}
	return wireRoundJSON{NsOp: nsOp, AllocsOp: res.AllocsPerOp(), MBs: mbs}
}

// wireServer answers each call OK after a concurrent wireServiceDelay,
// so a pipelined client overlaps the waits and a lockstep client pays
// them serially — a loopback stand-in for network latency.
func wireServer() (addr string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				rr := rpc.NewRecordReader(conn)
				var wmu sync.Mutex
				var d xdr.Decoder
				for {
					rec, err := rr.Next()
					if err != nil {
						return
					}
					d.Reset(rec)
					xid := d.Uint32()
					go func(xid uint32) {
						time.Sleep(wireServiceDelay)
						enc := xdr.GetEncoder()
						enc.Uint32(xid)
						enc.Uint32(1) // msgReply
						enc.Uint32(0) // StatusOK
						wmu.Lock()
						rpc.WriteRecord(conn, enc.Bytes())
						wmu.Unlock()
						enc.Release()
					}(xid)
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }, nil
}

// wireThroughput drives wirePipelineOps 8 KiB WRITEs at the given
// pipeline depth and returns the achieved ops/s.
func wireThroughput(addr string, depth int) (float64, error) {
	c, err := rpc.DialTCP(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	args := proto.Marshal(&proto.WriteArgs{Offset: 0, Data: make([]byte, 8192), Unstable: true})
	window := make([]*rpc.TCPPending, 0, depth)
	drain := func() error {
		for _, p := range window {
			if _, err := p.Wait(); err != nil {
				return err
			}
		}
		window = window[:0]
		return nil
	}
	start := time.Now()
	for i := 0; i < wirePipelineOps; i++ {
		p, err := c.Start(proto.ProgNFS, proto.VersNFS, proto.ProcWrite, args)
		if err != nil {
			return 0, err
		}
		window = append(window, p)
		if len(window) == depth {
			if err := drain(); err != nil {
				return 0, err
			}
		}
	}
	if err := drain(); err != nil {
		return 0, err
	}
	return float64(wirePipelineOps) / time.Since(start).Seconds(), nil
}

// wireExperiment runs both oracles, renders the table, self-checks the
// acceptance floors, and writes results/BENCH_wire.json.
func wireExperiment(w io.Writer) error {
	rt := wireRoundTrip()
	fmt.Fprintf(w, "8 KiB WRITE encode+frame+decode (pooled, zero-copy):\n")
	fmt.Fprintf(w, "  %8d ns/op  %d allocs/op  %.0f MB/s\n\n", rt.NsOp, rt.AllocsOp, rt.MBs)

	addr, stop, err := wireServer()
	if err != nil {
		return err
	}
	defer stop()
	depths := []int{1, 8, 32}
	ops := make(map[string]float64, len(depths))
	fmt.Fprintf(w, "pipelined 8 KiB WRITE over loopback TCP (%v concurrent service delay, %d ops):\n",
		wireServiceDelay, wirePipelineOps)
	for _, depth := range depths {
		v, err := wireThroughput(addr, depth)
		if err != nil {
			return fmt.Errorf("depth %d: %w", depth, err)
		}
		ops[fmt.Sprint(depth)] = v
		fmt.Fprintf(w, "  depth %2d: %8.0f ops/s\n", depth, v)
	}
	doc := wireJSON{
		Experiment:  "wire",
		MaxAllocs:   wireMaxAllocs,
		MinSpeedup:  wireMinSpeedup,
		RoundTrip8K: rt,
		Pipeline: wirePipelineJSON{
			ServiceDelayUs: wireServiceDelay.Microseconds(),
			Depths:         ops,
			Speedup8:       ops["8"] / ops["1"],
			Speedup32:      ops["32"] / ops["1"],
		},
	}
	fmt.Fprintf(w, "  speedup: depth8 %.2fx, depth32 %.2fx over lockstep\n",
		doc.Pipeline.Speedup8, doc.Pipeline.Speedup32)

	// Self-checks: the acceptance floors travel with the experiment.
	if rt.AllocsOp > wireMaxAllocs {
		return fmt.Errorf("wire: round trip costs %d allocs/op, want <= %d", rt.AllocsOp, wireMaxAllocs)
	}
	if doc.Pipeline.Speedup8 < wireMinSpeedup {
		return fmt.Errorf("wire: depth-8 pipelining only %.2fx over lockstep, want >= %.1fx",
			doc.Pipeline.Speedup8, wireMinSpeedup)
	}
	return writeCSVFile(w, "BENCH_wire.json", func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}
