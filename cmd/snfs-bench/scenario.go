package main

import (
	"encoding/json"
	"fmt"
	"io"

	"spritelynfs/internal/harness"
	"spritelynfs/internal/scenario"
	"spritelynfs/internal/sim"
)

// scenarioKnee is the slowdown bound defining the sustainable client
// count of the scenario sweep: the largest fleet whose mean op latency
// stays within this factor of the base point's. The CI scenario job
// checks the knees in BENCH_scenario.json against it.
const scenarioKnee = 1.5

// scenarioSweepThink is the per-client think-time mean used by the knee
// sweep. Fleet-scale populations are mostly idle — the server saturates
// on aggregate demand, so a thousand-client sweep needs each client
// asking rarely (the smoke presets keep their hotter per-scenario think
// times; the sweep measures population scaling, not per-client rate).
const scenarioSweepThink = 30 * sim.Second

// scenarioSweepOps is ops per client in the knee sweep.
const scenarioSweepOps = 20

type scenarioJSON struct {
	Experiment  string                       `json:"experiment"`
	Scenario    string                       `json:"scenario"`
	MaxSlowdown float64                      `json:"max_slowdown"`
	Smoke       []scenarioSmokeJSON          `json:"smoke"`
	Protocols   map[string]scenarioProtoJSON `json:"protocols"`
}

type scenarioSmokeJSON struct {
	Scenario string `json:"scenario"`
	Proto    string `json:"proto"`
	Clients  int    `json:"clients"`
	Ops      int64  `json:"ops"`
	Errors   int64  `json:"errors"`
	Audited  bool   `json:"audited"`
}

type scenarioProtoJSON struct {
	SustainableClients int                 `json:"sustainable_clients"`
	Points             []scenarioPointJSON `json:"points"`
}

type scenarioPointJSON struct {
	Clients       int     `json:"clients"`
	Ops           int64   `json:"ops"`
	Errors        int64   `json:"errors"`
	MeanLatencyUs float64 `json:"mean_latency_us"`
	P95LatencyUs  float64 `json:"p95_latency_us"`
	Slowdown      float64 `json:"slowdown"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	ServerCPU     float64 `json:"server_cpu"`
	CallsSent     int64   `json:"calls_sent"`
	Retransmits   int64   `json:"retransmits"`
	// ExecWorkers is the fleet's goroutine high-water mark — the
	// scaling evidence: thousands of clients, tens of goroutines.
	ExecWorkers int `json:"exec_workers"`
}

// scenarioExperiment is the fleet-scale load experiment: an audited
// small-N smoke pass over every named scenario under both protocols,
// then a web-asset knee sweep over -scenario-clients populations,
// NFS vs SNFS. Self-checking: every smoke run must complete all its
// ops with zero errors, and the sweep's base point must too.
func scenarioExperiment(w io.Writer, pm harness.Params) error {
	doc := scenarioJSON{
		Experiment:  "scenario",
		Scenario:    "web-asset",
		MaxSlowdown: scenarioKnee,
		Protocols:   map[string]scenarioProtoJSON{},
	}

	// Phase 1: audited smoke at small N, all scenarios, both protocols.
	fmt.Fprintln(w, "Scenario smoke (8 clients, audited SNFS):")
	for _, name := range scenario.Names() {
		for _, pr := range []harness.Proto{harness.NFS, harness.SNFS} {
			cfg, err := scenario.Named(name)
			if err != nil {
				return err
			}
			cfg.Clients, cfg.Ops = 8, 10
			spm := pm
			audited := pr == harness.SNFS
			if audited {
				spm.Audit = true
			}
			res, err := scenario.Run(pr, spm, cfg)
			if err != nil {
				return fmt.Errorf("smoke %s/%s: %w", name, pr, err)
			}
			if res.Errors != 0 {
				return fmt.Errorf("smoke %s/%s: %d op errors", name, pr, res.Errors)
			}
			if res.Ops != int64(cfg.Clients*cfg.Ops) {
				return fmt.Errorf("smoke %s/%s: %d of %d ops completed", name, pr, res.Ops, cfg.Clients*cfg.Ops)
			}
			doc.Smoke = append(doc.Smoke, scenarioSmokeJSON{
				Scenario: name, Proto: pr.String(), Clients: cfg.Clients,
				Ops: res.Ops, Errors: res.Errors, Audited: audited,
			})
			fmt.Fprintf(w, "  %-10s %-4s  %3d ops  mean %7.1f ms  p95 %7.1f ms\n",
				name, pr, res.Ops, res.MeanLatencyUs/1000, res.P95LatencyUs/1000)
		}
	}

	// Phase 2: the knee sweep. Same per-client demand at every
	// population; the knee is where aggregate demand outruns the
	// server.
	counts, err := parseCounts(scenarioClientsFlag)
	if err != nil {
		return fmt.Errorf("-scenario-clients: %w", err)
	}
	fmt.Fprintf(w, "\nweb-asset knee sweep (think %s, %d ops/client):\n",
		scenarioSweepThink, scenarioSweepOps)
	fmt.Fprintf(w, "%-5s %8s %12s %12s %10s %8s %8s %7s\n",
		"proto", "clients", "mean-lat", "p95-lat", "slowdown", "srv-cpu", "ops/s", "workers")
	for _, pr := range []harness.Proto{harness.NFS, harness.SNFS} {
		pj := scenarioProtoJSON{}
		var base float64
		for _, n := range counts {
			cfg, err := scenario.Named("web-asset")
			if err != nil {
				return err
			}
			cfg.Clients, cfg.Ops = n, scenarioSweepOps
			cfg.Gen.ThinkMean = scenarioSweepThink
			res, err := scenario.Run(pr, pm, cfg)
			if err != nil {
				return fmt.Errorf("sweep %s n=%d: %w", pr, n, err)
			}
			if base == 0 {
				base = res.MeanLatencyUs
				if res.Errors != 0 {
					return fmt.Errorf("sweep %s base point n=%d: %d op errors", pr, n, res.Errors)
				}
			}
			slow := res.MeanLatencyUs / base
			fmt.Fprintf(w, "%-5s %8d %10.1fms %10.1fms %9.2fx %7.0f%% %8.1f %7d\n",
				pr, n, res.MeanLatencyUs/1000, res.P95LatencyUs/1000, slow,
				100*res.ServerCPUUtil, res.OpsPerSec, res.ExecWorkers)
			pj.Points = append(pj.Points, scenarioPointJSON{
				Clients:       n,
				Ops:           res.Ops,
				Errors:        res.Errors,
				MeanLatencyUs: res.MeanLatencyUs,
				P95LatencyUs:  res.P95LatencyUs,
				Slowdown:      slow,
				OpsPerSec:     res.OpsPerSec,
				ServerCPU:     res.ServerCPUUtil,
				CallsSent:     res.CallsSent,
				Retransmits:   res.Retransmits,
				ExecWorkers:   res.ExecWorkers,
			})
			if slow <= scenarioKnee && n > pj.SustainableClients {
				pj.SustainableClients = n
			}
		}
		doc.Protocols[pr.String()] = pj
		fmt.Fprintf(w, "%s: sustains %d clients within %.2fx of the %d-client mean\n",
			pr, pj.SustainableClients, scenarioKnee, counts[0])
	}

	return writeCSVFile(w, "BENCH_scenario.json", func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}
