// Command snfsd is a standalone Spritely NFS (or plain NFS) server
// daemon: the same protocol stack the experiments measure, served over
// real TCP. Each connection becomes a client host; SNFS callbacks travel
// back over the same connection.
//
// Usage:
//
//	snfsd -addr :2049 -proto snfs
//	snfsd -addr :2049 -proto nfs -populate
//	snfsd -addr :2049 -http :9090 -flight 4096
//
// With -http the daemon serves a live observability plane: /metrics
// (Prometheus text), /healthz, /vars (JSON), /timeline (sampled metric
// series), /flight (the black-box event ring), /shardmap, /slowops (the
// span-derived critical-path breakdown and slowest-operations capture,
// with -spans), /spans/<op> (one captured span tree), and
// /debug/pprof. SIGUSR1 dumps metrics (to -metrics-dump if given),
// SIGUSR2 dumps the flight recorder (to -flight-dump if given), and an
// audit violation dumps the flight recorder automatically.
//
// A daemon can serve one shard of a federated namespace: give every
// member the same -shard-map and its own -shard-id, e.g.
//
//	snfsd -addr :2049 -shard-id 0 -shard-map "0=localhost:2049,1=localhost:2050,/src=1"
//	snfsd -addr :2050 -shard-id 1 -shard-map "0=localhost:2049,1=localhost:2050,/src=1"
//
// Root-level names owned by another shard are refused with NOTHOME so a
// routing client can follow the map (see internal/cluster).
//
// Use snfscli to talk to it.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"spritelynfs/internal/audit"
	"spritelynfs/internal/cluster"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/span"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/tsdb"
)

func main() {
	addr := flag.String("addr", ":2049", "TCP listen address")
	protoFlag := flag.String("proto", "snfs", "protocol to serve: snfs, nfs, or rfs")
	workers := flag.Int("workers", 8, "service thread pool size")
	populate := flag.Bool("populate", false, "create a small sample tree at startup")
	traceCap := flag.Int("trace-cap", 0, "attach a trace ring of this many events (0 = off); dumped with the metrics")
	auditJournal := flag.String("audit-journal", "", "arm the protocol auditor (snfs only) and write its JSONL journal here (\"-\" for stderr)")
	shardMap := flag.String("shard-map", "", "serve one shard of a federation: \"0=host:port,1=host:port,/prefix=1[,v=K]\"")
	shardID := flag.Uint("shard-id", 0, "this daemon's shard id within -shard-map")
	httpAddr := flag.String("http", "", "serve the HTTP observability plane (/metrics, /healthz, /vars, /timeline, /flight, /shardmap, /view, /debug/pprof) on this address")
	sampleEvery := flag.Duration("sample-interval", time.Second, "metric sampling interval behind /timeline (0 = off; needs -http)")
	flightCap := flag.Int("flight", 0, "flight-recorder capacity in events (0 = off); dumped on SIGUSR2 and on audit violations")
	spansCap := flag.Int("spans", 0, "arm causal span tracing, capturing this many slowest operations (0 = off); served at /slowops and /spans/<op>")
	flightDump := flag.String("flight-dump", "", "write flight-recorder dumps to this file (default stderr)")
	metricsDump := flag.String("metrics-dump", "", "SIGUSR1 writes the metrics dump to this file instead of stderr")
	flag.Parse()

	var smap proto.ShardMap
	if *shardMap != "" {
		var err error
		smap, err = cluster.ParseMapSpec(*shardMap)
		if err != nil {
			log.Fatalf("snfsd: -shard-map: %v", err)
		}
		if int(*shardID) >= len(smap.Servers) {
			log.Fatalf("snfsd: -shard-id %d out of range (map has %d servers)", *shardID, len(smap.Servers))
		}
	}

	k := sim.NewKernel(1)
	network := simnet.New(k, simnet.Config{}) // zero-latency internal fabric
	ep := rpc.NewEndpoint(k, network, "server", rpc.Options{Workers: *workers})
	store := localfs.NewStore(k.Now, 4096)
	// The daemon's "disk" is free: real I/O time is real already.
	d0 := disk.New(k, "d0", disk.Params{})
	media := localfs.NewMedia(store, d0, 1, 0)

	reg := metrics.New()
	var spans *span.Recorder
	if *spansCap > 0 {
		spans = span.NewRecorder(k.Now, *spansCap)
		spans.EnableMetrics(reg)
		ep.Spans = spans
		d0.Spans = spans
	}
	var tr *trace.Tracer
	if *traceCap > 0 {
		tr = trace.New(k.Now, *traceCap)
		ep.Tracer = tr
	}
	var flight *tsdb.FlightRecorder
	if *flightCap > 0 {
		flight = tsdb.NewFlightRecorder(k.Now, *flightCap)
	}
	// dumpFlight writes the black box to -flight-dump (or stderr), once
	// per trigger. Flight dumps are whole documents, so a file sink is
	// recreated each time: the file always holds the latest dump.
	dumpFlight := func(trigger string) {
		if flight == nil {
			log.Printf("snfsd: no flight recorder (-flight 0); dump for %q skipped", trigger)
			return
		}
		sink := io.Writer(os.Stderr)
		if *flightDump != "" {
			f, err := os.Create(*flightDump)
			if err != nil {
				log.Printf("snfsd: flight dump: %v", err)
				return
			}
			defer f.Close()
			sink = f
			log.Printf("snfsd: flight dump (%s) -> %s", trigger, *flightDump)
		}
		flight.WriteText(sink, trigger)
	}
	var auditor *audit.Auditor
	if *auditJournal != "" {
		sink := os.Stderr
		if *auditJournal != "-" {
			f, err := os.Create(*auditJournal)
			if err != nil {
				log.Fatalf("snfsd: audit journal: %v", err)
			}
			defer f.Close()
			sink = f
		}
		auditor = audit.New(k, sink)
		auditor.EnableMetrics(reg)
	}
	var rootInfo string
	var base *server.Base
	switch *protoFlag {
	case "snfs":
		s := server.NewSNFS(k, ep, media, server.Config{FSID: 1, CPUPerOp: 1, CPUPerKB: 0}, server.SNFSOptions{})
		s.EnableMetrics(reg)
		if tr != nil {
			s.SetTracer(tr)
			s.Table().Tracer = tr
		}
		if auditor != nil {
			s.SetAuditor(auditor)
		}
		rootInfo = s.RootHandle().String()
		base = s.Base
	case "nfs":
		s := server.NewNFS(k, ep, media, server.Config{FSID: 1, CPUPerOp: 1, CPUPerKB: 0})
		s.EnableMetrics(reg)
		if tr != nil {
			s.SetTracer(tr)
		}
		rootInfo = s.RootHandle().String()
		base = s.Base
	case "rfs":
		s := server.NewRFS(k, ep, media, server.Config{FSID: 1, CPUPerOp: 1, CPUPerKB: 0})
		s.EnableMetrics(reg)
		if tr != nil {
			s.SetTracer(tr)
		}
		rootInfo = s.RootHandle().String()
		base = s.Base
	default:
		fmt.Fprintf(os.Stderr, "snfsd: unknown protocol %q\n", *protoFlag)
		os.Exit(2)
	}
	if flight != nil {
		base.SetFlight(flight)
	}
	if spans != nil {
		base.SetSpans(spans)
	}
	if auditor != nil && flight != nil {
		// First violation dumps the black box: the protocol history that
		// led to it matters more than any later violation's.
		var dumped atomic.Bool
		auditor.OnViolation = func(v audit.Violation) {
			if dumped.Swap(true) {
				return
			}
			dumpFlight(fmt.Sprintf("audit violation op=%d %s: %s", v.Op, v.Invariant, v.Detail))
		}
	}
	if !smap.IsZero() {
		if *protoFlag == "rfs" {
			log.Fatalf("snfsd: -shard-map is not supported for rfs")
		}
		base.SetShardMap(smap, uint32(*shardID))
		log.Printf("snfsd: shard %d of %d (map v%d, %d assignments)",
			*shardID, len(smap.Servers), smap.Version, len(smap.Assignments))
	}
	if auditor != nil && *protoFlag != "snfs" {
		log.Printf("snfsd: -audit-journal only audits the snfs protocol; journal will stay empty")
	}

	if *populate {
		root := store.Root()
		dir, err := store.Mkdir(root, "demo", 0o755)
		if err != nil {
			log.Fatalf("populate: %v", err)
		}
		for i, content := range []string{"hello from snfsd\n", "spritely nfs demo\n"} {
			a, err := store.Create(dir.Ino, fmt.Sprintf("file%d.txt", i), 0o644)
			if err != nil {
				log.Fatalf("populate: %v", err)
			}
			if _, err := store.WriteAt(a.Ino, 0, []byte(content)); err != nil {
				log.Fatalf("populate: %v", err)
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("snfsd: %v", err)
	}
	log.Printf("snfsd: serving %s on %s (root %s, %d workers)", *protoFlag, ln.Addr(), rootInfo, *workers)

	gw := rpc.NewGateway(k, network, "server")
	go func() {
		if err := gw.Serve(ln); err != nil {
			log.Printf("snfsd: accept: %v", err)
		}
	}()

	// The HTTP observability plane. The sampler tick is a self-
	// rescheduling kernel event registered before RunRealtime, so samples
	// are taken inside the event loop — race-free against the serving
	// path — while the HTTP handlers read through the concurrency-safe
	// registry, timeline, and flight ring from their own goroutines.
	var healthy atomic.Bool
	healthy.Store(true)
	if *httpAddr != "" {
		var smp *tsdb.Sampler
		if *sampleEvery > 0 {
			smp = tsdb.NewSampler(0)
			smp.Watch("", reg)
			iv := sim.Duration((*sampleEvery).Microseconds())
			var tick func()
			tick = func() {
				smp.Sample(k.Now())
				k.After(iv, tick)
			}
			k.After(iv, tick)
		}
		plane := tsdb.NewHandler(tsdb.PlaneOptions{
			Registry: reg,
			Sampler:  smp,
			Flight:   flight,
			Spans:    spans,
			ShardMap: func() any {
				if smap.IsZero() {
					return nil
				}
				return smap
			},
			// The standalone daemon runs unreplicated: one degenerate
			// view row per known shard, no backup, no lag. The simulated
			// cluster's failover experiments report the live equivalent
			// (snfs-bench -run failover).
			View: func() any {
				type shardView struct {
					Shard   uint32 `json:"shard"`
					View    uint64 `json:"view"`
					Primary string `json:"primary"`
					Backup  string `json:"backup"`
					Synced  bool   `json:"synced"`
					Lag     uint32 `json:"lag"`
				}
				if smap.IsZero() {
					return []shardView{{Shard: 0, View: 1, Primary: *addr, Synced: true}}
				}
				out := make([]shardView, 0, len(smap.Servers))
				for i, s := range smap.Servers {
					out = append(out, shardView{Shard: uint32(i), View: 1, Primary: s, Synced: true})
				}
				return out
			},
			Healthy: healthy.Load,
		})
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("snfsd: -http: %v", err)
		}
		log.Printf("snfsd: observability plane on http://%s", hln.Addr())
		go func() {
			if err := http.Serve(hln, plane); err != nil {
				log.Printf("snfsd: http: %v", err)
			}
		}()
		defer hln.Close()
	}

	// SIGUSR1 dumps the metrics registry (Prometheus text format) to
	// -metrics-dump or stderr without disturbing service; snfscli stats
	// does the same over the wire. SIGUSR2 dumps the flight recorder.
	dump := make(chan os.Signal, 1)
	signal.Notify(dump, syscall.SIGUSR1, syscall.SIGUSR2)
	go func() {
		for s := range dump {
			if s == syscall.SIGUSR2 {
				dumpFlight("SIGUSR2")
				continue
			}
			sink := io.Writer(os.Stderr)
			if *metricsDump != "" {
				f, err := os.Create(*metricsDump)
				if err != nil {
					log.Printf("snfsd: metrics dump: %v", err)
					continue
				}
				sink = f
				log.Printf("snfsd: metrics dump (SIGUSR1) -> %s", *metricsDump)
			} else {
				log.Printf("snfsd: metrics dump (SIGUSR1)")
			}
			reg.WriteProm(sink)
			if tr != nil {
				tr.Dump(sink)
			}
			if auditor != nil {
				fmt.Fprint(sink, auditor.Summary())
			}
			if c, ok := sink.(io.Closer); ok {
				c.Close()
			}
		}
	}()

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Printf("snfsd: shutting down")
		healthy.Store(false)
		ln.Close()
		close(stop)
	}()
	k.RunRealtime(stop)
	log.Printf("snfsd: final metrics")
	reg.WriteProm(os.Stderr)
	if auditor != nil {
		fmt.Fprint(os.Stderr, auditor.Summary())
	}
}
