// Command snfsd is a standalone Spritely NFS (or plain NFS) server
// daemon: the same protocol stack the experiments measure, served over
// real TCP. Each connection becomes a client host; SNFS callbacks travel
// back over the same connection.
//
// Usage:
//
//	snfsd -addr :2049 -proto snfs
//	snfsd -addr :2049 -proto nfs -populate
//
// A daemon can serve one shard of a federated namespace: give every
// member the same -shard-map and its own -shard-id, e.g.
//
//	snfsd -addr :2049 -shard-id 0 -shard-map "0=localhost:2049,1=localhost:2050,/src=1"
//	snfsd -addr :2050 -shard-id 1 -shard-map "0=localhost:2049,1=localhost:2050,/src=1"
//
// Root-level names owned by another shard are refused with NOTHOME so a
// routing client can follow the map (see internal/cluster).
//
// Use snfscli to talk to it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"spritelynfs/internal/audit"
	"spritelynfs/internal/cluster"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/trace"
)

func main() {
	addr := flag.String("addr", ":2049", "TCP listen address")
	protoFlag := flag.String("proto", "snfs", "protocol to serve: snfs, nfs, or rfs")
	workers := flag.Int("workers", 8, "service thread pool size")
	populate := flag.Bool("populate", false, "create a small sample tree at startup")
	traceCap := flag.Int("trace-cap", 0, "attach a trace ring of this many events (0 = off); dumped with the metrics")
	auditJournal := flag.String("audit-journal", "", "arm the protocol auditor (snfs only) and write its JSONL journal here (\"-\" for stderr)")
	shardMap := flag.String("shard-map", "", "serve one shard of a federation: \"0=host:port,1=host:port,/prefix=1[,v=K]\"")
	shardID := flag.Uint("shard-id", 0, "this daemon's shard id within -shard-map")
	flag.Parse()

	var smap proto.ShardMap
	if *shardMap != "" {
		var err error
		smap, err = cluster.ParseMapSpec(*shardMap)
		if err != nil {
			log.Fatalf("snfsd: -shard-map: %v", err)
		}
		if int(*shardID) >= len(smap.Servers) {
			log.Fatalf("snfsd: -shard-id %d out of range (map has %d servers)", *shardID, len(smap.Servers))
		}
	}

	k := sim.NewKernel(1)
	network := simnet.New(k, simnet.Config{}) // zero-latency internal fabric
	ep := rpc.NewEndpoint(k, network, "server", rpc.Options{Workers: *workers})
	store := localfs.NewStore(k.Now, 4096)
	// The daemon's "disk" is free: real I/O time is real already.
	media := localfs.NewMedia(store, disk.New(k, "d0", disk.Params{}), 1, 0)

	reg := metrics.New()
	var tr *trace.Tracer
	if *traceCap > 0 {
		tr = trace.New(k.Now, *traceCap)
		ep.Tracer = tr
	}
	var auditor *audit.Auditor
	if *auditJournal != "" {
		sink := os.Stderr
		if *auditJournal != "-" {
			f, err := os.Create(*auditJournal)
			if err != nil {
				log.Fatalf("snfsd: audit journal: %v", err)
			}
			defer f.Close()
			sink = f
		}
		auditor = audit.New(k, sink)
		auditor.EnableMetrics(reg)
	}
	var rootInfo string
	var base *server.Base
	switch *protoFlag {
	case "snfs":
		s := server.NewSNFS(k, ep, media, server.Config{FSID: 1, CPUPerOp: 1, CPUPerKB: 0}, server.SNFSOptions{})
		s.EnableMetrics(reg)
		if tr != nil {
			s.SetTracer(tr)
			s.Table().Tracer = tr
		}
		if auditor != nil {
			s.SetAuditor(auditor)
		}
		rootInfo = s.RootHandle().String()
		base = s.Base
	case "nfs":
		s := server.NewNFS(k, ep, media, server.Config{FSID: 1, CPUPerOp: 1, CPUPerKB: 0})
		s.EnableMetrics(reg)
		if tr != nil {
			s.SetTracer(tr)
		}
		rootInfo = s.RootHandle().String()
		base = s.Base
	case "rfs":
		s := server.NewRFS(k, ep, media, server.Config{FSID: 1, CPUPerOp: 1, CPUPerKB: 0})
		s.EnableMetrics(reg)
		if tr != nil {
			s.SetTracer(tr)
		}
		rootInfo = s.RootHandle().String()
		base = s.Base
	default:
		fmt.Fprintf(os.Stderr, "snfsd: unknown protocol %q\n", *protoFlag)
		os.Exit(2)
	}
	if !smap.IsZero() {
		if *protoFlag == "rfs" {
			log.Fatalf("snfsd: -shard-map is not supported for rfs")
		}
		base.SetShardMap(smap, uint32(*shardID))
		log.Printf("snfsd: shard %d of %d (map v%d, %d assignments)",
			*shardID, len(smap.Servers), smap.Version, len(smap.Assignments))
	}
	if auditor != nil && *protoFlag != "snfs" {
		log.Printf("snfsd: -audit-journal only audits the snfs protocol; journal will stay empty")
	}

	if *populate {
		root := store.Root()
		dir, err := store.Mkdir(root, "demo", 0o755)
		if err != nil {
			log.Fatalf("populate: %v", err)
		}
		for i, content := range []string{"hello from snfsd\n", "spritely nfs demo\n"} {
			a, err := store.Create(dir.Ino, fmt.Sprintf("file%d.txt", i), 0o644)
			if err != nil {
				log.Fatalf("populate: %v", err)
			}
			if _, err := store.WriteAt(a.Ino, 0, []byte(content)); err != nil {
				log.Fatalf("populate: %v", err)
			}
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("snfsd: %v", err)
	}
	log.Printf("snfsd: serving %s on %s (root %s, %d workers)", *protoFlag, ln.Addr(), rootInfo, *workers)

	gw := rpc.NewGateway(k, network, "server")
	go func() {
		if err := gw.Serve(ln); err != nil {
			log.Printf("snfsd: accept: %v", err)
		}
	}()

	// SIGUSR1 dumps the metrics registry (Prometheus text format) to
	// stderr without disturbing service; snfscli stats does the same over
	// the wire.
	dump := make(chan os.Signal, 1)
	signal.Notify(dump, syscall.SIGUSR1)
	go func() {
		for range dump {
			log.Printf("snfsd: metrics dump (SIGUSR1)")
			reg.WriteProm(os.Stderr)
			if tr != nil {
				tr.Dump(os.Stderr)
			}
			if auditor != nil {
				fmt.Fprint(os.Stderr, auditor.Summary())
			}
		}
	}()

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		log.Printf("snfsd: shutting down")
		ln.Close()
		close(stop)
	}()
	k.RunRealtime(stop)
	log.Printf("snfsd: final metrics")
	reg.WriteProm(os.Stderr)
	if auditor != nil {
		fmt.Fprint(os.Stderr, auditor.Summary())
	}
}
