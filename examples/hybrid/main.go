// Hybrid: NFS and SNFS clients sharing one hybrid server (§6.1). The
// server treats plain-NFS accesses to files under SNFS state as implicit
// opens, so an NFS client reading a file whose dirty blocks still sit in
// an SNFS client's cache forces the write-back first and sees current
// data — while the SNFS client keeps its delayed-write performance.
//
//	go run ./examples/hybrid
package main

import (
	"bytes"
	"fmt"
	"log"

	snfs "spritelynfs"
)

func main() {
	pm := snfs.DefaultParams()
	world := snfs.NewWorldOpt(snfs.SNFS, true, pm, snfs.BuildOptions{
		Server: &snfs.SNFSServerOptions{Hybrid: true},
	})
	nfsCli, nfsNS := world.AddNFSClient("nfs-host", snfs.NFSClientOptions{})

	err := world.Run(func(p *snfs.Proc) error {
		// The SNFS client writes a file; its blocks stay dirty in the
		// client cache (delayed write-back).
		payload := bytes.Repeat([]byte("spritely "), 1000)
		f, err := world.NS.Open(p, "/data/report.txt", snfs.WriteOnly|snfs.Create, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(p, 0, payload); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		fmt.Printf("SNFS client wrote %d bytes; write RPCs so far: %d (delayed)\n",
			len(payload), world.ClientOps().Get("write"))

		// The plain NFS client reads the same file through the hybrid
		// server: the implicit open forces the SNFS client's
		// write-back before the read is served.
		got, err := nfsNS.ReadFile(p, "/data/report.txt", 8192)
		if err != nil {
			return err
		}
		fmt.Printf("NFS client read %d bytes (want %d)\n", got, len(payload))
		if int(got) != len(payload) {
			return fmt.Errorf("hybrid consistency failed: %d != %d", got, len(payload))
		}
		fmt.Printf("SNFS client write RPCs now: %d (callback forced write-back)\n",
			world.ClientOps().Get("write"))
		fmt.Printf("callbacks served by SNFS client: %d\n", world.SNFSCli.CallbacksServed)
		fmt.Printf("NFS client issued: %v\n", nfsCli.Ops())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhybrid coexistence works: stateless and stateful clients, one server, consistent data")
}
