// Recovery: the §2.4 crash-recovery design the paper sketched but did
// not implement. A client writes a file (delayed write-back: the only
// copy of the data is in its cache), the server crashes and reboots with
// an empty state table, the client's keepalive notices the new epoch and
// re-registers its state during the grace period — and then a second
// client's read still triggers the write-back callback, proving the
// reconstructed state protects consistency.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	snfs "spritelynfs"
)

func main() {
	pm := snfs.DefaultParams()
	pm.SNFS.KeepaliveInterval = 500 * snfs.Millisecond
	world := snfs.NewWorld(snfs.SNFS, true, pm)
	reader, readerNS := world.AddSNFSClient("reader", snfs.SNFSClientOptions{})

	err := world.Run(func(p *snfs.Proc) error {
		// The writer creates a file; its 32 KB of data stay dirty in
		// the client cache.
		if err := world.NS.WriteFile(p, "/data/journal.dat", 32<<10, 8192); err != nil {
			return err
		}
		fmt.Printf("writer holds %d dirty blocks; server has seen %d write RPCs\n",
			world.SNFSCli.Cache().DirtyCount(), world.ClientOps().Get("write"))
		p.Sleep(snfs.Second) // let the keepalive learn the first epoch

		fmt.Println("\n*** server crashes ***")
		world.SNFSSrv.Crash()
		p.Sleep(2 * snfs.Second)
		fmt.Println("*** server reboots (empty state table, grace period) ***")
		world.SNFSSrv.Reboot()
		fmt.Printf("epoch now %d, in grace: %v\n", world.SNFSSrv.Epoch(), world.SNFSSrv.InGrace())

		// The writer's keepalive detects the epoch change and sends
		// reopen RPCs re-registering its dirty state.
		p.Sleep(3 * snfs.Second)
		fmt.Printf("after recovery: state table has %d entries, writer sent %d reopen RPCs\n",
			world.SNFSSrv.Table().Len(), world.ClientOps().Get("reopen"))

		// The moment of truth: a second client reads the file. The
		// recovered CLOSED-DIRTY state must call the writer back for
		// its dirty blocks first.
		n, err := readerNS.ReadFile(p, "/data/journal.dat", 8192)
		if err != nil {
			return err
		}
		fmt.Printf("\nreader got %d bytes (want %d)\n", n, 32<<10)
		fmt.Printf("writer served %d callbacks; writer write RPCs now %d\n",
			world.SNFSCli.CallbacksServed, world.ClientOps().Get("write"))
		if reader.Inconsistencies != 0 {
			return fmt.Errorf("spurious inconsistency warning")
		}
		if n != 32<<10 {
			return fmt.Errorf("data lost across the crash")
		}
		fmt.Println("\nconsistency survived the server crash: state rebuilt from the clients (§2.4)")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
