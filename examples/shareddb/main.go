// Shareddb: why there were no shared-database applications on NFS.
//
// §2.3: "the weakness of NFS consistency may be responsible for the lack
// of shared-database applications." Two hosts run a tiny record store on
// one shared file: host A updates records, host B reads them back while
// holding the file open (as a database would). Under NFS the reader's
// cache serves stale records long after commits; under Spritely NFS the
// file becomes write-shared, caching turns off, and every lookup sees
// the latest committed record.
//
//	go run ./examples/shareddb
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	snfs "spritelynfs"
)

const (
	recordSize = 64
	records    = 16
)

// putRecord writes record id with a payload version stamp.
func putRecord(p *snfs.Proc, f snfs.File, id int, version uint32) error {
	rec := make([]byte, recordSize)
	binary.BigEndian.PutUint32(rec, uint32(id))
	binary.BigEndian.PutUint32(rec[4:], version)
	_, err := f.WriteAt(p, int64(id*recordSize), rec)
	return err
}

// getRecord reads record id and returns its version stamp.
func getRecord(p *snfs.Proc, f snfs.File, id int) (uint32, error) {
	rec, err := f.ReadAt(p, int64(id*recordSize), recordSize)
	if err != nil {
		return 0, err
	}
	if len(rec) < 8 {
		return 0, nil
	}
	return binary.BigEndian.Uint32(rec[4:]), nil
}

func runDB(pr snfs.Proto) (staleReads, totalReads int, err error) {
	pm := snfs.DefaultParams()
	world := snfs.NewWorld(pr, true, pm)
	var readerNS *snfs.Namespace
	switch pr {
	case snfs.NFS:
		_, readerNS = world.AddNFSClient("reader", snfs.NFSClientOptions{})
	case snfs.SNFS:
		_, readerNS = world.AddSNFSClient("reader", snfs.SNFSClientOptions{})
	}

	err = world.Run(func(p *snfs.Proc) error {
		// The "DBA" host initializes the database file.
		w, err := world.NS.Open(p, "/data/records.db", snfs.ReadWrite|snfs.Create, 0o644)
		if err != nil {
			return err
		}
		for id := 0; id < records; id++ {
			if err := putRecord(p, w, id, 1); err != nil {
				return err
			}
		}
		if err := w.Sync(p); err != nil {
			return err
		}

		// The reader host opens the database and keeps it open, as a
		// long-running database process would.
		r, err := readerNS.Open(p, "/data/records.db", snfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		defer r.Close(p)
		// Warm the reader's view.
		for id := 0; id < records; id++ {
			if _, err := getRecord(p, r, id); err != nil {
				return err
			}
		}

		// Commit/lookup rounds: the writer bumps a record's version,
		// then the reader looks it up.
		for round := uint32(2); round <= 11; round++ {
			id := int(round) % records
			if err := putRecord(p, w, id, round); err != nil {
				return err
			}
			if err := w.Sync(p); err != nil { // the commit
				return err
			}
			p.Sleep(100 * snfs.Millisecond)
			got, err := getRecord(p, r, id)
			if err != nil {
				return err
			}
			totalReads++
			if got != round {
				staleReads++
			}
		}
		return w.Close(p)
	})
	return staleReads, totalReads, err
}

func main() {
	fmt.Printf("a tiny record store shared by two hosts: 10 commit/lookup rounds\n\n")
	for _, pr := range []snfs.Proto{snfs.NFS, snfs.SNFS} {
		stale, total, err := runDB(pr)
		if err != nil {
			log.Fatalf("%v: %v", pr, err)
		}
		verdict := "every lookup saw the committed record"
		if stale > 0 {
			verdict = "lookups served STALE records"
		}
		fmt.Printf("%-5v  stale lookups %d/%d   — %s\n", pr, stale, total, verdict)
	}
	fmt.Println("\n§2.3: \"the weakness of NFS consistency may be responsible for the")
	fmt.Println("lack of shared-database applications\" — and this is what it looks like.")
}
