// Quickstart: build a Spritely NFS testbed, do some file I/O through the
// Unix-like namespace, and look at what crossed the wire.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	snfs "spritelynfs"
)

func main() {
	pm := snfs.DefaultParams()
	world := snfs.NewWorld(snfs.SNFS, true, pm)

	err := world.Run(func(p *snfs.Proc) error {
		ns := world.NS

		// Create a directory and a file; writes are delayed at the
		// client (no write RPCs yet).
		if err := ns.Mkdir(p, "/data/project", 0o755); err != nil {
			return err
		}
		f, err := ns.Open(p, "/data/project/notes.txt", snfs.WriteOnly|snfs.Create, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(p, 0, []byte("spritely nfs: consistency without write-through\n")); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		fmt.Printf("after write+close:  %v\n", world.ClientOps())

		// Read it back — served from the client cache, which survives
		// the close because the server knows nobody else has the file.
		g, err := ns.Open(p, "/data/project/notes.txt", snfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		data, err := g.ReadAt(p, 0, 4096)
		if err != nil {
			return err
		}
		g.Close(p)
		fmt.Printf("read back %d bytes: %q\n", len(data), string(data))
		fmt.Printf("after reopen+read:  %v\n", world.ClientOps())

		// The update daemon (or an explicit sync) pushes the delayed
		// blocks to the server.
		world.SNFSCli.SyncPass(p)
		fmt.Printf("after sync:         %v\n", world.ClientOps())

		// Server-side consistency state for the whole run.
		st := world.SNFSSrv.Table().Stats()
		fmt.Printf("server state table: opens=%d closes=%d callbacks=%d versionBumps=%d\n",
			st.Opens, st.Closes, st.CallbacksIssued, st.VersionBumps)
		fmt.Printf("simulated elapsed:  %v\n", p.Now())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
