// Sharing: the consistency demonstration at the heart of the paper.
//
// Two client hosts access one file. Under NFS, a reader that holds the
// file open keeps serving stale cached data until its next attribute
// probe (up to minutes later). Under Spritely NFS, the moment a second
// host opens the file for writing, the server calls the reader back and
// disables caching for both — every read sees the latest write.
//
//	go run ./examples/sharing
package main

import (
	"fmt"
	"log"

	snfs "spritelynfs"
)

func main() {
	fmt.Println("== NFS: the staleness window ==")
	if err := demoNFS(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("== Spritely NFS: guaranteed consistency ==")
	if err := demoSNFS(); err != nil {
		log.Fatal(err)
	}
}

func demoNFS() error {
	pm := snfs.DefaultParams()
	world := snfs.NewWorld(snfs.NFS, true, pm)
	writerCli, writerNS := world.AddNFSClient("writer", snfs.NFSClientOptions{})
	_ = writerCli

	return world.Run(func(p *snfs.Proc) error {
		readerNS := world.NS
		if err := writerNS.WriteFile(p, "/data/shared.txt", 64, 64); err != nil {
			return err
		}
		f, err := readerNS.Open(p, "/data/shared.txt", snfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		defer f.Close(p)
		first, _ := f.ReadAt(p, 0, 64)
		fmt.Printf("  reader opens and reads:        %d bytes (version 1)\n", len(first))

		// The writer overwrites while the reader holds the file open.
		if err := writerNS.WriteFile(p, "/data/shared.txt", 128, 128); err != nil {
			return err
		}
		fmt.Println("  writer rewrites the file (128 bytes, version 2)")

		stale, _ := f.ReadAt(p, 0, 256)
		fmt.Printf("  reader re-reads immediately:   %d bytes  <-- STALE (cached)\n", len(stale))

		p.Sleep(200 * snfs.Second)
		fresh, _ := f.ReadAt(p, 0, 256)
		fmt.Printf("  reader re-reads after 200s:    %d bytes  (probe finally noticed)\n", len(fresh))
		return nil
	})
}

func demoSNFS() error {
	pm := snfs.DefaultParams()
	world := snfs.NewWorld(snfs.SNFS, true, pm)
	writerCli, writerNS := world.AddSNFSClient("writer", snfs.SNFSClientOptions{})

	return world.Run(func(p *snfs.Proc) error {
		readerNS := world.NS
		if err := writerNS.WriteFile(p, "/data/shared.txt", 64, 64); err != nil {
			return err
		}
		f, err := readerNS.Open(p, "/data/shared.txt", snfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		defer f.Close(p)
		first, _ := f.ReadAt(p, 0, 64)
		fmt.Printf("  reader opens and reads:        %d bytes (version 1)\n", len(first))

		// The writer opens for write WHILE the reader holds the file:
		// the server makes the file write-shared, calls the reader
		// back, and everyone stops caching.
		g, err := writerNS.Open(p, "/data/shared.txt", snfs.WriteOnly|snfs.Truncate, 0)
		if err != nil {
			return err
		}
		if _, err := g.WriteAt(p, 0, make([]byte, 128)); err != nil {
			return err
		}
		fmt.Println("  writer opens for write and writes 128 bytes (write-shared now)")

		fresh, _ := f.ReadAt(p, 0, 256)
		fmt.Printf("  reader re-reads immediately:   %d bytes  <-- CURRENT (no staleness)\n", len(fresh))
		fmt.Printf("  callbacks served by reader:    %d\n", world.SNFSCli.CallbacksServed)
		fmt.Printf("  server write-share transitions: %d\n", world.SNFSSrv.Table().Stats().WriteShares)
		_ = writerCli
		return g.Close(p)
	})
}
