// Locking: consistency is not atomicity. §2.2 — "Readers are guaranteed
// consistency with writers, provided that some other mechanism (such as
// file locking) serializes the reads and writes."
//
// Two hosts each increment a shared counter 15 times with a
// read-modify-write. Spritely NFS guarantees every read sees the latest
// committed byte — but without serialization, two hosts can still read
// the same value and both write value+1, losing an update. With the
// advisory locking extension every increment lands.
//
//	go run ./examples/locking
package main

import (
	"fmt"
	"log"

	snfs "spritelynfs"
	"spritelynfs/internal/client"
	"spritelynfs/internal/sim"
)

const perClient = 15

func increment(cp *snfs.Proc, c *client.SNFSClient, useLock bool) error {
	if useLock {
		if err := c.Lock(cp, "data/counter", true); err != nil {
			return err
		}
		defer c.Unlock(cp, "data/counter")
	}
	f, err := c.Open(cp, "data/counter", snfs.ReadWrite, 0)
	if err != nil {
		return err
	}
	defer f.Close(cp)
	data, err := f.ReadAt(cp, 0, 1)
	if err != nil || len(data) != 1 {
		return fmt.Errorf("read: %v", err)
	}
	cp.Sleep(40 * snfs.Millisecond) // "compute" between read and write
	_, err = f.WriteAt(cp, 0, []byte{data[0] + 1})
	return err
}

func runRace(useLock bool) (final int, err error) {
	pm := snfs.DefaultParams()
	world := snfs.NewWorld(snfs.SNFS, true, pm)
	b, _ := world.AddSNFSClient("hostB", snfs.SNFSClientOptions{})

	err = world.Run(func(p *snfs.Proc) error {
		if err := world.NS.WriteFile(p, "/data/counter", 1, 1); err != nil {
			return err
		}
		world.SNFSCli.SyncPass(p)
		wg := sim.NewWaitGroup(world.K, 2)
		var errA, errB error
		world.K.Go("incrA", func(cp *snfs.Proc) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if errA = increment(cp, world.SNFSCli, useLock); errA != nil {
					return
				}
			}
		})
		world.K.Go("incrB", func(cp *snfs.Proc) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if errB = increment(cp, b, useLock); errB != nil {
					return
				}
			}
		})
		wg.Wait(p)
		if errA != nil {
			return errA
		}
		if errB != nil {
			return errB
		}
		f, err := world.NS.Open(p, "/data/counter", snfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		defer f.Close(p)
		data, err := f.ReadAt(p, 0, 1)
		if err != nil {
			return err
		}
		final = int(data[0])
		return nil
	})
	return final, err
}

func main() {
	fmt.Printf("two hosts x %d read-modify-write increments of one shared counter\n\n", perClient)
	for _, useLock := range []bool{false, true} {
		final, err := runRace(useLock)
		if err != nil {
			log.Fatal(err)
		}
		mode := "no locks   "
		if useLock {
			mode = "with locks "
		}
		verdict := fmt.Sprintf("%d updates LOST", 2*perClient-final)
		if final == 2*perClient {
			verdict = "every update landed"
		}
		fmt.Printf("%s final counter = %2d / %d   — %s\n", mode, final, 2*perClient, verdict)
	}
	fmt.Println("\nSNFS makes every read current; only locking makes read-modify-write atomic (§2.2).")
}
