// Tempfiles: the delete-before-writeback optimization (§4.2.3) that
// drives the sort benchmark's 2x result. Short-lived temporary files are
// created, used, and deleted; with NFS every byte is written through to
// the server's disk, while Spritely NFS cancels the delayed writes when
// the file dies — the data never crosses the network at all.
//
//	go run ./examples/tempfiles
package main

import (
	"fmt"
	"log"

	snfs "spritelynfs"
	"spritelynfs/internal/workload"
)

func main() {
	const (
		files = 25
		size  = 64 * 1024
	)
	fmt.Printf("churning %d temporary files of %dk each (create, write, read, delete)\n\n", files, size/1024)

	for _, pr := range []snfs.Proto{snfs.NFS, snfs.SNFS} {
		pm := snfs.DefaultParams()
		world := snfs.NewWorld(pr, true, pm)
		var elapsed snfs.Duration
		err := world.Run(func(p *snfs.Proc) error {
			start := p.Now()
			if err := workload.TempFileChurn(p, world.NS, "/usr/tmp", files, size, 8192); err != nil {
				return err
			}
			elapsed = p.Now().Sub(start)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		ops := world.ClientOps()
		fmt.Printf("%-5s  elapsed %6.2fs   write RPCs %4d   read RPCs %4d   server disk writes %d\n",
			pr, snfs.Seconds(elapsed), ops.Get("write"), ops.Get("read"),
			world.ServerDiskStats().Writes)
	}
	fmt.Println("\nSNFS writes nothing: the files were deleted before write-back.")
}
