package harness

import (
	"fmt"
	"io"

	"spritelynfs/internal/client"
	"spritelynfs/internal/cluster"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/vfs"
)

// The cluster scale experiment extends §2.3's single-server claim to a
// federation: SNFS consistency state is strictly per-file, so splitting
// the namespace across M shard servers splits the protocol with it, and
// the knee of the load curve should move out roughly with M. Each client
// works in its own root-level directory, assigned round-robin to shards,
// so the partition is balanced and no write sharing crosses shards.

// ClusterWorld is an assembled federation testbed: the shard servers
// plus one Router per client host.
type ClusterWorld struct {
	K       *sim.Kernel
	Cluster *cluster.Cluster
	Routers []*cluster.Router
	NSs     []*vfs.Namespace
}

// BuildCluster assembles an nshards-server federation under the given
// namespace partition, using the same calibrated cost model as the
// single-server worlds (every shard is a full Titan-class server with
// its own RA81 and nfsd pool).
func BuildCluster(nshards int, assignments map[string]uint32, pm Params) (*ClusterWorld, error) {
	k := sim.NewKernel(pm.Seed)
	net := simnet.New(k, pm.Net)
	sinkFor := pm.AuditSinkFor
	if sinkFor == nil && pm.AuditSink != nil {
		shared := pm.AuditSink
		sinkFor = func(int) io.Writer { return shared }
	}
	c, err := cluster.New(k, net, cluster.Config{
		Shards:           nshards,
		Assignments:      assignments,
		Server:           pm.Server,
		ServerWorkers:    pm.ServerWorkers,
		ServerCacheBytes: pm.ServerCacheBytes,
		ServerBlockSize:  pm.ServerBlockSize,
		Disk:             pm.ServerDisk,
		ClientConfig: client.Config{
			BlockSize:  pm.TransferSize,
			CacheBytes: pm.ClientCacheBytes,
			ReadAhead:  true,
		},
		ClientOpts:     pm.SNFS,
		Audit:          pm.Audit,
		AuditSinkFor:   sinkFor,
		FlightCapacity: pm.FlightCapacity,
		Backups:        pm.Backups,
		ViewInterval:   pm.ViewInterval,
		ViewDeadPings:  pm.ViewDeadPings,
		ViewLog:        pm.ViewLog,
	})
	if err != nil {
		return nil, err
	}
	if pm.FlightCapacity > 0 && pm.FlightSink != nil {
		for _, sh := range c.Shards() {
			if sh.Auditor != nil {
				wireFlightDump(sh.Auditor, sh.Flight, pm.FlightSink)
			}
		}
	}
	return &ClusterWorld{K: k, Cluster: c}, nil
}

// StartSampler arms the time-series sampler across the federation: every
// shard's registry is sampled on the sim clock at interval, its series
// prefixed "shard<i>/" so per-shard hot spots stay visible in one
// timeline — the measurement the load-driven rebalancing work consumes.
func (cw *ClusterWorld) StartSampler(interval sim.Duration, capacity int) *tsdb.Sampler {
	smp := tsdb.NewSampler(capacity)
	smp.LimitSeries(SamplerSeriesBudget)
	for i, sh := range cw.Cluster.Shards() {
		smp.Watch(fmt.Sprintf("shard%d/", i), sh.Metrics)
	}
	cw.K.Go("tsdb-sampler", func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			smp.Sample(p.Now())
		}
	})
	return smp
}

// AddRouter attaches a client host routing into the cluster and returns
// its namespace.
func (cw *ClusterWorld) AddRouter(name simnet.Addr) (*cluster.Router, *vfs.Namespace) {
	r := cw.Cluster.NewRouter(name)
	ns := &vfs.Namespace{}
	ns.Mount("/", r)
	cw.Routers = append(cw.Routers, r)
	cw.NSs = append(cw.NSs, ns)
	return r, ns
}

// Redirects sums NOTHOME bounces healed across all routers.
func (cw *ClusterWorld) Redirects() int64 {
	var n int64
	for _, r := range cw.Routers {
		n += r.Redirects()
	}
	return n
}

// Run executes fn as the main workload process, failing on workload
// errors or any shard's audit violations.
func (cw *ClusterWorld) Run(fn func(p *sim.Proc) error) error {
	var err error
	cw.K.Go("workload", func(p *sim.Proc) {
		defer cw.K.Stop()
		err = fn(p)
	})
	cw.K.Run()
	if err == nil {
		err = cw.Cluster.AuditErr()
	}
	return err
}

// clusterAssignments maps client i's directory /u<i> to shard i%M.
func clusterAssignments(nclients, nshards int) (map[string]uint32, []string) {
	assign := make(map[string]uint32, nclients)
	dirs := make([]string, nclients)
	for i := 0; i < nclients; i++ {
		dirs[i] = fmt.Sprintf("/u%02d", i)
		assign[dirs[i]] = uint32(i % nshards)
	}
	return assign, dirs
}

// RunClusterScale measures one (shard-count, client-count) point: every
// client runs the same compile-like workload as RunScale, in its own
// shard-assigned directory.
func RunClusterScale(nclients, nshards int, pm Params) (ScalePoint, error) {
	assign, dirs := clusterAssignments(nclients, nshards)
	cw, err := BuildCluster(nshards, assign, pm)
	if err != nil {
		return ScalePoint{}, err
	}
	pt := ScalePoint{Clients: nclients, Shards: nshards}
	for i := 0; i < nclients; i++ {
		cw.AddRouter(simnet.Addr(fmt.Sprintf("client%d", i)))
	}
	if pm.SampleInterval > 0 {
		pt.Timeline = cw.StartSampler(pm.SampleInterval, pm.SampleCapacity).Timeline()
	}

	var elapsed sim.Duration
	err = cw.Run(func(p *sim.Proc) error {
		wg := sim.NewWaitGroup(cw.K, nclients)
		errs := make([]error, nclients)
		start := p.Now()
		for i := range cw.NSs {
			i := i
			cw.K.Go(fmt.Sprintf("scale-client%d", i), func(cp *sim.Proc) {
				defer wg.Done()
				errs[i] = scaleWorkload(cp, cw.NSs[i], dirs[i], pm)
			})
		}
		wg.Wait(p)
		elapsed = p.Now().Sub(start)
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		return pt, err
	}
	pt.Elapsed = elapsed
	// The cluster's bottleneck is its busiest shard: the knee is set by
	// the max utilization, not the average.
	for _, sh := range cw.Cluster.Shards() {
		if u := sh.Server.Base.CPU().Utilization(); u > pt.ServerCPU {
			pt.ServerCPU = u
		}
		if u := sh.Media.Disk().Utilization(); u > pt.ServerDisk {
			pt.ServerDisk = u
		}
	}
	for _, r := range cw.Routers {
		pt.TotalRPCs += r.TotalOps()
	}
	return pt, nil
}

// ClusterScaleExperiment sweeps client counts across shard counts and
// renders the comparison. The first client count anchors each shard
// count's slowdown baseline.
func ClusterScaleExperiment(pm Params, shardCounts, clientCounts []int) (map[int][]ScalePoint, *stats.Table, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	if len(clientCounts) == 0 {
		// Out to 32 so the knee has room to move past the single-server
		// sweep's range when four shards carry the load.
		clientCounts = []int{1, 2, 4, 8, 16, 32}
	}
	cols := []string{"Clients"}
	for _, m := range shardCounts {
		cols = append(cols,
			fmt.Sprintf("%dsh elapsed", m),
			fmt.Sprintf("%dsh srvCPU", m),
			fmt.Sprintf("%dsh srvDisk", m))
	}
	t := stats.NewTable("Cluster scale: N active clients across M SNFS shards (per-client compile-like workload)", cols...)
	out := map[int][]ScalePoint{}
	base := map[int]float64{}
	for _, n := range clientCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range shardCounts {
			pt, err := RunClusterScale(n, m, pm)
			if err != nil {
				return nil, nil, fmt.Errorf("cluster scale m=%d n=%d: %w", m, n, err)
			}
			if n == clientCounts[0] {
				base[m] = pt.Elapsed.Seconds()
			}
			if base[m] > 0 {
				pt.Slowdown = pt.Elapsed.Seconds() / base[m]
			}
			out[m] = append(out[m], pt)
			row = append(row,
				fmt.Sprintf("%.1fs (x%.2f)", pt.Elapsed.Seconds(), pt.Slowdown),
				fmt.Sprintf("%.0f%%", pt.ServerCPU*100),
				fmt.Sprintf("%.0f%%", pt.ServerDisk*100))
		}
		t.AddRow(row...)
	}
	return out, t, nil
}
