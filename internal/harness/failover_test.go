package harness

import (
	"bytes"
	"strings"
	"testing"

	"spritelynfs/internal/sim"
)

// failoverParams arms the full verification plane: audit, backups, a
// fast viewservice, and a view log.
func failoverParams(viewLog *bytes.Buffer) Params {
	pm := Default()
	pm.Audit = true
	pm.Backups = true
	pm.ViewInterval = 100 * sim.Millisecond
	pm.ViewDeadPings = 5
	pm.ViewLog = viewLog
	return pm
}

// TestClusterFailoverKillPrimary is the acceptance scenario: a 3-shard
// cluster with backups, one Andrew per client, shard 0's primary killed
// mid-run. The workload must complete with zero audit violations, the
// backup must have been promoted, and the clients must have healed onto
// it with no manual intervention.
func TestClusterFailoverKillPrimary(t *testing.T) {
	var viewLog bytes.Buffer
	pm := failoverParams(&viewLog)
	pt, err := RunClusterFailover(3, 3, 0, "primary", 30*sim.Second, pm)
	if err != nil {
		t.Fatalf("kill-primary run failed: %v", err)
	}
	if pt.PromotedView < 2 {
		t.Fatalf("shard 0 never left view 1 (view %d)", pt.PromotedView)
	}
	if pt.DetectTime <= 0 {
		t.Fatal("backup was never promoted")
	}
	// Detection is bounded by the dead-ping window (500 ms) plus a few
	// intervals of slack.
	if pt.DetectTime > 2*sim.Second {
		t.Errorf("detection took %v, want under 2 s", pt.DetectTime)
	}
	if pt.HealTime <= 0 {
		t.Fatal("no client operation ever reached the new primary")
	}
	if pt.HealTime > 30*sim.Second {
		t.Errorf("heal took %v, want well under the RPC retry budget", pt.HealTime)
	}
	if !strings.Contains(viewLog.String(), "reason=primary-dead") {
		t.Errorf("view log records no primary-dead transition:\n%s", viewLog.String())
	}
}

// TestClusterFailoverKillBackup kills the standby instead: the workload
// must be entirely unaffected, and the viewservice must publish a
// backup-less view so the primary stops streaming.
func TestClusterFailoverKillBackup(t *testing.T) {
	var viewLog bytes.Buffer
	pm := failoverParams(&viewLog)
	pt, err := RunClusterFailover(3, 3, 0, "backup", 30*sim.Second, pm)
	if err != nil {
		t.Fatalf("kill-backup run failed: %v", err)
	}
	if pt.ViewChanges < 1 {
		t.Fatal("viewservice never published the backup-less view")
	}
	if !strings.Contains(viewLog.String(), "reason=backup-dead") {
		t.Errorf("view log records no backup-dead transition:\n%s", viewLog.String())
	}
	if pt.DetectTime != 0 {
		t.Errorf("a promotion happened (%v) though only the backup died", pt.DetectTime)
	}
}

// TestClusterFailoverNoBackupControl is the control: with Backups off,
// killing a primary mid-run degrades exactly as a §2.4 crash without
// reboot — the workload on that shard cannot complete.
func TestClusterFailoverNoBackupControl(t *testing.T) {
	pm := Default()
	pm.Audit = true
	_, err := RunClusterFailover(3, 3, 0, "primary", 30*sim.Second, pm)
	if err == nil {
		t.Fatal("workload completed though its shard's only server was dead")
	}
}
