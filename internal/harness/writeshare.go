package harness

import (
	"bytes"
	"fmt"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/vfs"
)

// The write-sharing experiment quantifies the trade the paper states up
// front (§5): "In the write-shared case, SNFS disables the client cache
// and so performs much worse than NFS — but much more correctly."
//
// A writer host rewrites a tag block at a fixed period while a reader
// host, holding the file open, polls it. Under NFS the reader's cache
// serves stale tags until a probe fires; under SNFS the file is
// write-shared, every read goes to the server, and no read is ever
// stale.

// WriteShareResult is the measurement for one protocol.
type WriteShareResult struct {
	Proto      Proto
	Reads      int // reader poll operations performed
	StaleReads int // polls that returned an out-of-date tag
	ReaderRPCs int64
	// MeanReadLatency is the average poll latency (cache hits are
	// nearly free; server round trips are not).
	MeanReadLatency sim.Duration
}

// RunWriteShare measures one protocol's behaviour under concurrent
// write sharing.
func RunWriteShare(pr Proto, pm Params) (WriteShareResult, error) {
	if pr == Local {
		return WriteShareResult{}, fmt.Errorf("write-share experiment needs a remote protocol")
	}
	w := Build(pr, true, pm)

	var readerNS *vfs.Namespace
	var readerOps func() int64
	switch pr {
	case NFS:
		c, ns := w.AddNFSClient("reader", pm.NFS)
		readerNS = ns
		readerOps = c.Ops().Total
	case SNFS:
		c, ns := w.AddSNFSClient("reader", pm.SNFS)
		readerNS = ns
		readerOps = c.Ops().Total
	case RFS:
		c, ns := w.AddRFSClient("reader")
		readerNS = ns
		readerOps = c.Ops().Total
	}

	const (
		polls       = 50
		pollPeriod  = 200 * sim.Millisecond
		writePeriod = 400 * sim.Millisecond
		blockLen    = 512
	)
	res := WriteShareResult{Proto: pr}
	tagBlock := func(tag byte) []byte {
		b := make([]byte, blockLen)
		for i := range b {
			b[i] = tag
		}
		return b
	}

	err := w.Run(func(p *sim.Proc) error {
		// The writer host creates the file and keeps rewriting it.
		currentTag := byte(0)
		wf, err := w.NS.Open(p, "/data/shared", vfs.ReadWrite|vfs.Create|vfs.Truncate, 0o644)
		if err != nil {
			return err
		}
		if _, err := wf.WriteAt(p, 0, tagBlock(currentTag)); err != nil {
			return err
		}
		writerDone := false
		w.K.Go("writer", func(wp *sim.Proc) {
			for !writerDone {
				wp.Sleep(writePeriod)
				// The tag becomes current only once the write
				// has committed (the consistency guarantee is
				// about committed data).
				next := currentTag + 1
				if _, err := wf.WriteAt(wp, 0, tagBlock(next)); err != nil {
					return
				}
				currentTag = next
			}
		})

		// The reader host polls with the file held open (the exact
		// situation NFS's probe scheme cannot make consistent). The
		// polls are phase-offset from the writes so no poll lands at
		// the same instant a write is in flight.
		rf, err := readerNS.Open(p, "/data/shared", vfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		base := readerOps()
		var latency sim.Duration
		p.Sleep(pollPeriod / 2)
		for i := 0; i < polls; i++ {
			p.Sleep(pollPeriod)
			// A read racing a concurrent write may legitimately
			// return the latest committed tag or the one being
			// written as the read executes (the paper: serializing
			// reads against writes needs an external mechanism,
			// e.g. locking). Anything older is a stale read.
			tagBefore := currentTag
			before := p.Now()
			data, err := rf.ReadAt(p, 0, blockLen)
			if err != nil {
				return err
			}
			latency += p.Now().Sub(before)
			res.Reads++
			if !bytes.Equal(data, tagBlock(tagBefore)) && !bytes.Equal(data, tagBlock(tagBefore+1)) {
				res.StaleReads++
			}
		}
		res.ReaderRPCs = readerOps() - base
		res.MeanReadLatency = latency / sim.Duration(polls)
		writerDone = true
		return rf.Close(p)
	})
	return res, err
}

// WriteShareExperiment runs both protocols and renders the comparison.
func WriteShareExperiment(pm Params) (map[Proto]WriteShareResult, *stats.Table, error) {
	out := map[Proto]WriteShareResult{}
	t := stats.NewTable("Write sharing: reader polls while a writer updates (50 polls)",
		"Version", "stale reads", "reader RPCs", "mean poll latency")
	for _, pr := range []Proto{NFS, SNFS} {
		r, err := RunWriteShare(pr, pm)
		if err != nil {
			return nil, nil, err
		}
		out[pr] = r
		t.AddRow(pr.String(),
			fmt.Sprintf("%d/%d", r.StaleReads, r.Reads),
			fmt.Sprintf("%d", r.ReaderRPCs),
			fmt.Sprintf("%.1fms", r.MeanReadLatency.Milliseconds()))
	}
	return out, t, nil
}
