package harness

import (
	"bytes"
	"strings"
	"testing"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/workload"
)

// fastParams shrinks the workloads so shape tests stay quick while
// preserving every qualitative relationship.
func fastParams() Params {
	pm := Default()
	pm.Andrew.Dirs = 2
	pm.Andrew.FilesPerDir = 7
	pm.SortSizes = []int{281 * 1024, 1408 * 1024}
	return pm
}

func TestBuildAllProtocols(t *testing.T) {
	pm := fastParams()
	for _, pr := range []Proto{Local, NFS, SNFS} {
		for _, tmp := range []bool{false, true} {
			w := Build(pr, tmp, pm)
			err := w.Run(func(p *sim.Proc) error {
				if err := w.NS.WriteFile(p, "/data/x", 10000, 8192); err != nil {
					return err
				}
				n, err := w.NS.ReadFile(p, "/data/x", 8192)
				if err != nil {
					return err
				}
				if n != 10000 {
					t.Errorf("%s tmp=%v: read %d bytes", pr, tmp, n)
				}
				if err := w.NS.WriteFile(p, "/tmp/y", 5000, 8192); err != nil {
					return err
				}
				return w.NS.Remove(p, "/tmp/y")
			})
			if err != nil {
				t.Errorf("%s tmp=%v: %v", pr, tmp, err)
			}
		}
	}
}

// TestTable51Shape asserts the paper's Table 5-1 relationships:
// SNFS beats NFS on Copy by ~25%, on Make by 20-30% (more with /tmp
// remote), and overall by 15-20%; local is fastest.
func TestTable51Shape(t *testing.T) {
	pm := fastParams()
	runs, _, err := Table51(pm)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AndrewRun{}
	for _, r := range runs {
		byLabel[r.Label()] = r
	}
	local := byLabel["local"]
	nfsL := byLabel["NFS, local /tmp"]
	nfsR := byLabel["NFS, remote /tmp"]
	snfsL := byLabel["SNFS, local /tmp"]
	snfsR := byLabel["SNFS, remote /tmp"]

	// Local is fastest overall.
	for _, r := range []AndrewRun{nfsL, nfsR, snfsL, snfsR} {
		if local.Result.Total >= r.Result.Total {
			t.Errorf("local (%v) not faster than %s (%v)", local.Result.Total, r.Label(), r.Result.Total)
		}
	}
	// Copy favors SNFS substantially (paper ~25%).
	copyGain := 1 - snfsR.Result.Phase[1].Seconds()/nfsR.Result.Phase[1].Seconds()
	if copyGain < 0.10 || copyGain > 0.50 {
		t.Errorf("Copy: SNFS gain %.0f%%, want roughly 25%%", copyGain*100)
	}
	// Make favors SNFS (paper 20-30%), more with /tmp remote.
	makeGainL := 1 - snfsL.Result.Phase[4].Seconds()/nfsL.Result.Phase[4].Seconds()
	makeGainR := 1 - snfsR.Result.Phase[4].Seconds()/nfsR.Result.Phase[4].Seconds()
	if makeGainL <= 0 {
		t.Errorf("Make (local /tmp): SNFS gain %.0f%%, want positive", makeGainL*100)
	}
	if makeGainR < 0.10 {
		t.Errorf("Make (remote /tmp): SNFS gain %.0f%%, want >= 10%%", makeGainR*100)
	}
	if makeGainR <= makeGainL {
		t.Errorf("Make gain should grow with /tmp remote (%.0f%% vs %.0f%%)", makeGainL*100, makeGainR*100)
	}
	// Total: SNFS completes the whole benchmark faster (paper 15-20%).
	totalGainR := 1 - snfsR.Result.Total.Seconds()/nfsR.Result.Total.Seconds()
	if totalGainR < 0.08 {
		t.Errorf("Total (remote /tmp): SNFS gain %.0f%%, want >= 8%%", totalGainR*100)
	}
}

// TestTable52Shape asserts the RPC-mix relationships: lookups are roughly
// half of all calls; SNFS substitutes open/close for getattr and saves
// data-transfer operations (dramatically with /tmp remote).
func TestTable52Shape(t *testing.T) {
	pm := fastParams()
	runs, _, err := Table52(pm)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		frac := float64(r.Ops.Get("lookup")) / float64(r.Ops.Total())
		if frac < 0.30 || frac > 0.70 {
			t.Errorf("%s: lookup fraction %.2f, want roughly half", r.Label(), frac)
		}
		if r.Proto == SNFS {
			if r.Ops.Get("getattr") != 0 {
				t.Errorf("%s: SNFS should not need getattr at open (%d)", r.Label(), r.Ops.Get("getattr"))
			}
			if r.Ops.Get("open") == 0 || r.Ops.Get("close") == 0 {
				t.Errorf("%s: missing open/close traffic", r.Label())
			}
		}
	}
	nfsR, snfsR := runs[2], runs[3]
	nfsData := nfsR.Ops.Sum("read", "write")
	snfsData := snfsR.Ops.Sum("read", "write")
	if snfsData >= nfsData/2 {
		t.Errorf("remote /tmp: SNFS data ops %d vs NFS %d; want far fewer", snfsData, nfsData)
	}
}

// TestFigureShape asserts the paper's Figure 5-1/5-2 observations: server
// CPU load correlates strongly with the total call rate and much less
// with read or write rates; SNFS finishes sooner.
func TestFigureShape(t *testing.T) {
	pm := fastParams()
	fNFS, err := RunFigure(NFS, pm)
	if err != nil {
		t.Fatal(err)
	}
	fSNFS, err := RunFigure(SNFS, pm)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Figure{fNFS, fSNFS} {
		cc := stats.Correlation(f.CPU, f.Calls)
		if cc < 0.9 {
			t.Errorf("%s: corr(cpu, calls) = %.2f, want strong", f.Run.Label(), cc)
		}
		cr := stats.Correlation(f.CPU, f.Reads)
		cw := stats.Correlation(f.CPU, f.Writes)
		if cr > cc || cw > cc {
			t.Errorf("%s: read/write correlation (%.2f/%.2f) exceeds total (%.2f)", f.Run.Label(), cr, cw, cc)
		}
	}
	if fSNFS.Run.Result.Total >= fNFS.Run.Result.Total {
		t.Error("SNFS did not finish the benchmark sooner than NFS")
	}
}

// TestTable53Shape asserts the sort results: SNFS roughly twice as fast
// as NFS on the larger inputs and close to local.
func TestTable53Shape(t *testing.T) {
	pm := fastParams()
	runs, _, err := Table53(pm)
	if err != nil {
		t.Fatal(err)
	}
	last := len(pm.SortSizes) - 1
	nfs := runs[NFS][last].Result.Elapsed.Seconds()
	snfs := runs[SNFS][last].Result.Elapsed.Seconds()
	local := runs[Local][last].Result.Elapsed.Seconds()
	if ratio := nfs / snfs; ratio < 1.5 || ratio > 3.5 {
		t.Errorf("NFS/SNFS = %.2f, want roughly 2", ratio)
	}
	if snfs > local*1.8 {
		t.Errorf("SNFS (%.0fs) much slower than local (%.0fs)", snfs, local)
	}
	// Temp storage grows faster than the input (the paper's column).
	tempRatio0 := float64(runs[SNFS][0].Result.TempBytes) / float64(pm.SortSizes[0])
	tempRatioN := float64(runs[SNFS][last].Result.TempBytes) / float64(pm.SortSizes[last])
	if tempRatioN <= tempRatio0 {
		t.Errorf("temp/input ratio did not grow: %.2f -> %.2f", tempRatio0, tempRatioN)
	}
}

// TestTable56Shape asserts the update-daemon accounting of Table 5-6:
// NFS write counts are unaffected; SNFS writes collapse to (almost)
// nothing with infinite write-delay.
func TestTable56Shape(t *testing.T) {
	pm := fastParams()
	size := pm.SortSizes[len(pm.SortSizes)-1]
	nfsOn, err := RunSort(NFS, size, true, pm)
	if err != nil {
		t.Fatal(err)
	}
	nfsOff, err := RunSort(NFS, size, false, pm)
	if err != nil {
		t.Fatal(err)
	}
	snfsOn, err := RunSort(SNFS, size, true, pm)
	if err != nil {
		t.Fatal(err)
	}
	snfsOff, err := RunSort(SNFS, size, false, pm)
	if err != nil {
		t.Fatal(err)
	}
	if nfsOn.Ops.Get("write") != nfsOff.Ops.Get("write") {
		t.Errorf("NFS writes changed with update daemon: %d vs %d",
			nfsOn.Ops.Get("write"), nfsOff.Ops.Get("write"))
	}
	if snfsOff.Ops.Get("write") != 0 {
		t.Errorf("SNFS with infinite write-delay still wrote %d", snfsOff.Ops.Get("write"))
	}
	if snfsOn.Ops.Get("write") <= snfsOff.Ops.Get("write") {
		t.Error("update daemon produced no writes")
	}
	if snfsOn.Ops.Get("write") >= nfsOn.Ops.Get("write") {
		t.Errorf("SNFS writes (%d) should stay below NFS (%d)",
			snfsOn.Ops.Get("write"), nfsOn.Ops.Get("write"))
	}
	// SNFS reads stay near zero either way (cache survives close).
	if snfsOn.Ops.Get("read") > nfsOn.Ops.Get("read")/10 {
		t.Errorf("SNFS reads %d vs NFS %d; cache-across-close broken",
			snfsOn.Ops.Get("read"), nfsOn.Ops.Get("read"))
	}
}

// TestTable55Shape asserts that with the update daemon off, SNFS matches
// (or beats) local-disk performance on the temp-heavy sort.
func TestTable55Shape(t *testing.T) {
	pm := fastParams()
	runs, _, err := Table55(pm)
	if err != nil {
		t.Fatal(err)
	}
	last := len(pm.SortSizes) - 1
	snfs := runs[SNFS][last].Result.Elapsed.Seconds()
	local := runs[Local][last].Result.Elapsed.Seconds()
	if snfs > local*1.25 {
		t.Errorf("infinite write-delay: SNFS %.0fs vs local %.0fs; want match-or-beat (within 25%%)", snfs, local)
	}
}

// TestAndrewDeterminism: identical runs produce identical results (the
// simulation is deterministic).
func TestAndrewDeterminism(t *testing.T) {
	pm := fastParams()
	a, err := RunAndrew(SNFS, true, pm, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAndrew(SNFS, true, pm, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result != b.Result {
		t.Errorf("non-deterministic results:\n%+v\n%+v", a.Result, b.Result)
	}
	if a.Ops.Total() != b.Ops.Total() {
		t.Errorf("non-deterministic op counts: %d vs %d", a.Ops.Total(), b.Ops.Total())
	}
}

func TestMicroAndAblationsRun(t *testing.T) {
	pm := fastParams()
	if _, err := MicroBenchmarks(pm); err != nil {
		t.Errorf("micro: %v", err)
	}
	if _, err := Ablations(pm); err != nil {
		t.Errorf("ablations: %v", err)
	}
}

func TestSetupProducesExpectedTree(t *testing.T) {
	pm := fastParams()
	w := Build(SNFS, true, pm)
	err := w.Run(func(p *sim.Proc) error {
		if err := workload.SetupAndrew(p, w.NS, pm.Andrew); err != nil {
			return err
		}
		ents, err := w.NS.Readdir(p, pm.Andrew.SrcDir)
		if err != nil {
			return err
		}
		// include + bin + Dirs subdirectories.
		want := 2 + pm.Andrew.Dirs
		if len(ents) != want {
			t.Errorf("src subtree has %d entries, want %d", len(ents), want)
		}
		files, err := w.NS.Readdir(p, pm.Andrew.SrcDir+"/dir00")
		if err != nil {
			return err
		}
		if len(files) != pm.Andrew.FilesPerDir {
			t.Errorf("dir00 has %d files, want %d", len(files), pm.Andrew.FilesPerDir)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScaleShape asserts §2.3's claim: with many active clients, the
// stateful protocol degrades far more slowly than NFS (whose synchronous
// writes saturate the server disk).
func TestScaleShape(t *testing.T) {
	pm := fastParams()
	points, _, err := ScaleExperiment(pm, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	nfs, snfs := points[NFS], points[SNFS]
	if nfs[1].Slowdown <= snfs[1].Slowdown {
		t.Errorf("at 8 clients: NFS slowdown %.2f <= SNFS %.2f; stateless should degrade faster",
			nfs[1].Slowdown, snfs[1].Slowdown)
	}
	if snfs[1].Slowdown > 2.0 {
		t.Errorf("SNFS slowdown at 8 clients %.2f, want under 2", snfs[1].Slowdown)
	}
	// The NFS sweep runs the unstable WRITE + COMMIT pipeline, so its
	// once-synchronous writes no longer saturate the arm: gathering
	// must keep the server disk below the knee even at 8 clients.
	if nfs[1].ServerDisk >= 0.85 {
		t.Errorf("NFS server disk %.2f at 8 clients; write gathering should keep it under 0.85",
			nfs[1].ServerDisk)
	}
	// SNFS at 8 clients still finishes faster than NFS at 8.
	if snfs[1].Elapsed >= nfs[1].Elapsed {
		t.Error("SNFS not faster than NFS under load")
	}
}

// TestWriteShareShape asserts the §5 trade-off: in the write-shared case
// SNFS performs much worse than NFS — but much more correctly.
func TestWriteShareShape(t *testing.T) {
	pm := fastParams()
	results, _, err := WriteShareExperiment(pm)
	if err != nil {
		t.Fatal(err)
	}
	nfs, snfs := results[NFS], results[SNFS]
	if snfs.StaleReads != 0 {
		t.Errorf("SNFS served %d stale reads; the guarantee is zero", snfs.StaleReads)
	}
	if nfs.StaleReads < nfs.Reads/2 {
		t.Errorf("NFS served only %d/%d stale reads; expected most to be stale inside the probe window",
			nfs.StaleReads, nfs.Reads)
	}
	if snfs.ReaderRPCs <= nfs.ReaderRPCs {
		t.Error("SNFS should pay more RPCs for its correctness")
	}
	if snfs.MeanReadLatency <= nfs.MeanReadLatency {
		t.Error("SNFS uncached reads should be slower than NFS cached ones")
	}
}

// TestTraceCapturesProtocolTimeline verifies the tracer sees RPCs, state
// transitions, and callbacks during a sharing scenario.
func TestTraceCapturesProtocolTimeline(t *testing.T) {
	pm := fastParams()
	w := Build(SNFS, true, pm)
	tr := w.EnableTrace(0)
	_, readerNS := w.AddSNFSClient("reader", pm.SNFS)
	err := w.Run(func(p *sim.Proc) error {
		if err := w.NS.WriteFile(p, "/data/f", 8192, 8192); err != nil {
			return err
		}
		// Reader forces the CLOSED-DIRTY write-back callback.
		if _, err := readerNS.ReadFile(p, "/data/f", 8192); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Filter()) == 0 {
		t.Fatal("no events recorded")
	}
	if len(tr.Filter(traceState())) == 0 {
		t.Error("no state transitions recorded")
	}
	cbs := tr.Filter(traceCallback())
	if len(cbs) == 0 {
		t.Error("no callback recorded for the write-back")
	}
	if got := tr.Grep("CLOSED-DIRTY"); len(got) == 0 {
		t.Error("CLOSED-DIRTY transition not in trace")
	}
}

// TestSteadyStateAccountsDeferredWrites verifies the back-to-back trial
// discipline: the second trial's SNFS write count includes the first
// trial's deferred write-backs, so it exceeds a single cold trial's.
func TestSteadyStateAccountsDeferredWrites(t *testing.T) {
	pm := fastParams()
	cold, err := RunAndrew(SNFS, false, pm, false)
	if err != nil {
		t.Fatal(err)
	}
	steady, err := RunAndrewSteadyState(SNFS, false, pm)
	if err != nil {
		t.Fatal(err)
	}
	if steady.Ops.Get("write") < cold.Ops.Get("write") {
		t.Errorf("steady-state writes %d below cold-trial writes %d",
			steady.Ops.Get("write"), cold.Ops.Get("write"))
	}
	// Elapsed time stays in the same ballpark (trials are independent
	// work).
	ratio := steady.Result.Total.Seconds() / cold.Result.Total.Seconds()
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("steady/cold elapsed ratio %.2f", ratio)
	}
}

// TestTable41MatchesPaper asserts key transitions of the regenerated
// Table 4-1 (any builder drift shows as BUILDER ERROR rows).
func TestTable41MatchesPaper(t *testing.T) {
	tb := Table41()
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if strings.Contains(out, "BUILDER ERROR") {
		t.Fatalf("state builders out of sync:\n%s", out)
	}
	for _, want := range []string{
		"ONE-RDR-DIRTY  open write, other client (B)                     WRITE-SHARED",
		"CLOSED-DIRTY   open read, other client (B)                      ONE-READER     true    writeback A",
		"ONE-WRITER     final close for write, client still reading (A)  ONE-RDR-DIRTY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing transition %q in:\n%s", want, out)
		}
	}
}

// TestProbeSweepShape asserts §2.1's compromise: fewer probes, more
// staleness — and SNFS outside the trade-off entirely.
func TestProbeSweepShape(t *testing.T) {
	pm := fastParams()

	pmShort := pm
	pmShort.NFS.ProbeMin, pmShort.NFS.ProbeMax = sim.Second, sim.Second
	probesShort, staleShort, _, err := probeRun(NFS, pmShort)
	if err != nil {
		t.Fatal(err)
	}
	pmLong := pm
	pmLong.NFS.ProbeMin, pmLong.NFS.ProbeMax = 30*sim.Second, 30*sim.Second
	probesLong, staleLong, _, err := probeRun(NFS, pmLong)
	if err != nil {
		t.Fatal(err)
	}
	if probesShort <= probesLong {
		t.Errorf("short interval probes (%d) not above long interval (%d)", probesShort, probesLong)
	}
	if staleShort >= staleLong {
		t.Errorf("short interval staleness (%d) not below long interval (%d)", staleShort, staleLong)
	}
	probesS, staleS, freshS, err := probeRun(SNFS, pm)
	if err != nil {
		t.Fatal(err)
	}
	if probesS != 0 || staleS != 0 || freshS == 0 {
		t.Errorf("SNFS: probes=%d stale=%d fresh=%d, want 0/0/>0", probesS, staleS, freshS)
	}
}
