package harness

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// Model-based checking: a random sequence of file operations is applied
// through the protocol stack by two client hosts AND to an in-memory
// reference model. The driver serializes operations (each completes
// before the next is issued), so with correct caching and consistency —
// on any protocol, including the delayed-write SNFS — every read must
// return exactly what the model says, no matter which client performs
// it, how the caches interleave, or when the update daemon fires.
//
// This is the sequential-write-sharing guarantee: NFS's open-time check
// provides it (the paper notes sequential consistency holds), SNFS's
// callbacks provide it, and RFS's invalidations provide it. A bug in
// version validation, callback delivery, delayed-write flushing, or
// cache invalidation shows up as a mismatch.

type modelFS struct {
	files map[string][]byte
}

func newModelFS() *modelFS { return &modelFS{files: make(map[string][]byte)} }

func (m *modelFS) write(name string, off int, data []byte) {
	f := m.files[name]
	end := off + len(data)
	if end > len(f) {
		g := make([]byte, end)
		copy(g, f)
		f = g
	}
	copy(f[off:end], data)
	m.files[name] = f
}

func (m *modelFS) read(name string, off, n int) []byte {
	f, ok := m.files[name]
	if !ok || off >= len(f) {
		return nil
	}
	end := off + n
	if end > len(f) {
		end = len(f)
	}
	return f[off:end]
}

func runModelCheck(t *testing.T, pr Proto, seed int64, steps int) {
	t.Helper()
	pm := fastParams()
	pm.SNFS.UpdateInterval = 5 * sim.Second // exercise the update daemon
	w := Build(pr, true, pm)

	var namespaces []*vfs.Namespace
	namespaces = append(namespaces, w.NS)
	switch pr {
	case NFS:
		_, ns := w.AddNFSClient("second", pm.NFS)
		namespaces = append(namespaces, ns)
	case SNFS:
		_, ns := w.AddSNFSClient("second", pm.SNFS)
		namespaces = append(namespaces, ns)
	case RFS:
		_, ns := w.AddRFSClient("second")
		namespaces = append(namespaces, ns)
	}

	model := newModelFS()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c", "d"}

	err := w.Run(func(p *sim.Proc) error {
		for step := 0; step < steps; step++ {
			ns := namespaces[rng.Intn(len(namespaces))]
			name := names[rng.Intn(len(names))]
			path := "/data/" + name
			switch rng.Intn(10) {
			case 0, 1, 2: // write (create or overwrite a range)
				size := 1 + rng.Intn(20000)
				off := 0
				_, exists := model.files[name]
				if exists && rng.Intn(2) == 0 {
					off = rng.Intn(len(model.files[name]) + 1)
				}
				data := make([]byte, size)
				for i := range data {
					data[i] = byte(step + i)
				}
				flags := vfs.WriteOnly
				if !exists {
					flags |= vfs.Create
				}
				f, err := ns.Open(p, path, flags, 0o644)
				if err != nil {
					return fmt.Errorf("step %d open-write %s: %w", step, path, err)
				}
				if _, err := f.WriteAt(p, int64(off), data); err != nil {
					return fmt.Errorf("step %d write %s: %w", step, path, err)
				}
				if err := f.Close(p); err != nil {
					return fmt.Errorf("step %d close %s: %w", step, path, err)
				}
				model.write(name, off, data)
			case 3: // truncating re-create
				f, err := ns.Open(p, path, vfs.WriteOnly|vfs.Create|vfs.Truncate, 0o644)
				if err != nil {
					return fmt.Errorf("step %d create %s: %w", step, path, err)
				}
				if err := f.Close(p); err != nil {
					return err
				}
				model.files[name] = nil
			case 4: // remove
				if _, exists := model.files[name]; exists {
					if err := ns.Remove(p, path); err != nil {
						return fmt.Errorf("step %d remove %s: %w", step, path, err)
					}
					delete(model.files, name)
				}
			case 5: // idle (lets daemons run)
				p.Sleep(sim.Duration(rng.Intn(8)) * sim.Second)
			default: // read a range and check against the model
				if _, exists := model.files[name]; !exists {
					continue
				}
				off := rng.Intn(len(model.files[name]) + 1)
				n := 1 + rng.Intn(20000)
				f, err := ns.Open(p, path, vfs.ReadOnly, 0)
				if err != nil {
					return fmt.Errorf("step %d open-read %s: %w", step, path, err)
				}
				got, err := f.ReadAt(p, int64(off), n)
				if err != nil {
					f.Close(p)
					return fmt.Errorf("step %d read %s: %w", step, path, err)
				}
				if err := f.Close(p); err != nil {
					return err
				}
				want := model.read(name, off, n)
				if !bytes.Equal(got, want) {
					return fmt.Errorf("step %d: %s[%d:+%d] mismatch: got %d bytes, want %d (first diff at %d)",
						step, path, off, n, len(got), len(want), firstDiff(got, want))
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s seed %d: %v", pr, seed, err)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestModelCheckSNFS(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		runModelCheck(t, SNFS, seed, 200)
	}
}

func TestModelCheckNFS(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		runModelCheck(t, NFS, seed, 150)
	}
}

func TestModelCheckRFS(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		runModelCheck(t, RFS, seed, 150)
	}
}

func TestModelCheckLocal(t *testing.T) {
	runModelCheck(t, Local, 1, 200)
}

// TestModelCheckSNFSWithNameCache exercises the §7 extension under the
// random workload (namespace churn through two clients).
func TestModelCheckSNFSWithNameCache(t *testing.T) {
	for seed := int64(10); seed <= 17; seed++ {
		runModelCheckOpts(t, seed, 200)
	}
}

func runModelCheckOpts(t *testing.T, seed int64, steps int) {
	t.Helper()
	// Same as runModelCheck(SNFS) but with the name-cache protocol on
	// both sides.
	pm := fastParams()
	pm.SNFS.UpdateInterval = 5 * sim.Second
	pm.SNFS.NameCache = true
	w := BuildOpt(SNFS, true, pm, BuildOptions{NameCacheServer: true})
	_, ns2 := w.AddSNFSClient("second", pm.SNFS)
	namespaces := []*vfs.Namespace{w.NS, ns2}

	model := newModelFS()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c"}
	err := w.Run(func(p *sim.Proc) error {
		for step := 0; step < steps; step++ {
			ns := namespaces[rng.Intn(len(namespaces))]
			name := names[rng.Intn(len(names))]
			path := "/data/" + name
			switch rng.Intn(6) {
			case 0, 1:
				data := make([]byte, 1+rng.Intn(9000))
				for i := range data {
					data[i] = byte(step + i)
				}
				f, err := ns.Open(p, path, vfs.WriteOnly|vfs.Create|vfs.Truncate, 0o644)
				if err != nil {
					return fmt.Errorf("step %d create: %w", step, err)
				}
				if _, err := f.WriteAt(p, 0, data); err != nil {
					return err
				}
				if err := f.Close(p); err != nil {
					return err
				}
				model.files[name] = append([]byte(nil), data...)
			case 2:
				if _, ok := model.files[name]; ok {
					if err := ns.Remove(p, path); err != nil {
						return fmt.Errorf("step %d remove: %w", step, err)
					}
					delete(model.files, name)
				}
			default:
				_, exists := model.files[name]
				f, err := ns.Open(p, path, vfs.ReadOnly, 0)
				if !exists {
					if err == nil {
						f.Close(p)
						return fmt.Errorf("step %d: opened removed file %s", step, path)
					}
					continue
				}
				if err != nil {
					return fmt.Errorf("step %d open %s: %w", step, path, err)
				}
				got, err := f.ReadAt(p, 0, 20000)
				if err != nil {
					f.Close(p)
					return err
				}
				f.Close(p)
				if !bytes.Equal(got, model.files[name]) {
					return fmt.Errorf("step %d: %s content mismatch (%d vs %d bytes)",
						step, path, len(got), len(model.files[name]))
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
}
