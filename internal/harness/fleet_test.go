package harness

import (
	"fmt"
	"runtime"
	"testing"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/sim"
)

// TestFleetServesOps: every client of a small SNFS fleet writes and
// reads back its own file through its own stack, with delayed writes
// flushed by the shared sweep rather than per-client daemons.
func TestFleetServesOps(t *testing.T) {
	pm := Default()
	f := BuildFleet(SNFS, pm, FleetOptions{Clients: 8, SyncInterval: 5 * sim.Second})
	err := f.W.Run(func(p *sim.Proc) error {
		for i, fc := range f.Clients {
			path := fmt.Sprintf("/data/f%d", i)
			if err := fc.NS.WriteFile(p, path, 16*1024, 8*1024); err != nil {
				return fmt.Errorf("client %d write: %w", i, err)
			}
		}
		// Let the staggered sweep flush everyone's delayed writes.
		p.Sleep(10 * sim.Second)
		for i, fc := range f.Clients {
			path := fmt.Sprintf("/data/f%d", i)
			n, err := fc.NS.ReadFile(p, path, 8*1024)
			if err != nil {
				return fmt.Errorf("client %d read: %w", i, err)
			}
			if n != 16*1024 {
				return fmt.Errorf("client %d read %d bytes, want %d", i, n, 16*1024)
			}
		}
		f.SyncAllClients(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.CallsSent == 0 || s.DirtyBlocks != 0 {
		t.Errorf("fleet stats after settle: %+v", s)
	}
}

// TestFleetCrossClientConsistency: SNFS fleet clients see each other's
// writes — the write-shared detection and callback path works through
// event-mode endpoints and pooled service processes.
func TestFleetCrossClientConsistency(t *testing.T) {
	pm := Default()
	f := BuildFleet(SNFS, pm, FleetOptions{Clients: 2})
	err := f.W.Run(func(p *sim.Proc) error {
		a, b := f.Client(0).NS, f.Client(1).NS
		if err := a.WriteFile(p, "/data/shared", 8*1024, 8*1024); err != nil {
			return err
		}
		n, err := b.ReadFile(p, "/data/shared", 8*1024)
		if err != nil {
			return err
		}
		if n != 8*1024 {
			return fmt.Errorf("reader saw %d bytes, want %d", n, 8*1024)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFleetGoroutineFootprint pins the property the fleet exists for: a
// thousand idle client stacks park no goroutines. Only the shared
// server/world machinery and the executor's high-water mark of
// concurrently blocked operations cost threads.
func TestFleetGoroutineFootprint(t *testing.T) {
	before := runtime.NumGoroutine()
	pm := Default()
	f := BuildFleet(SNFS, pm, FleetOptions{Clients: 1000})
	// Run a trickle of work so the executor spawns what it needs.
	err := f.W.Run(func(p *sim.Proc) error {
		for i := 0; i < 10; i++ {
			if err := f.Client(i * 100).NS.WriteFile(p, fmt.Sprintf("/data/g%d", i), 4096, 4096); err != nil {
				return err
			}
		}
		f.SyncAllClients(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := runtime.NumGoroutine()
	// A per-goroutine design would hold ≥5 goroutines per client
	// (dispatcher + 4 workers), ≥5000 here. The fleet's whole footprint
	// — server stack, world client, executor pool — stays around a few
	// dozen regardless of N. (Run() has already torn the kernel down,
	// so this measures leaks; Spawned() measures the live peak.)
	if grew := after - before; grew > 100 {
		t.Errorf("goroutine count grew by %d across a 1000-client fleet run", grew)
	}
	if sp := f.Exec.Spawned(); sp > 50 {
		t.Errorf("executor spawned %d workers for a sequential trickle", sp)
	}
}

// TestFleetTimelineBudget: a sampled fleet run stays inside the
// harness sampler's series budget with room to spare, and drops
// nothing — the timeline footprint, like the registry's, is constant
// in client count.
func TestFleetTimelineBudget(t *testing.T) {
	pm := Default()
	f := BuildFleet(SNFS, pm, FleetOptions{Clients: 256})
	r := metrics.New()
	f.EnableMetrics(r)
	smp := f.W.StartSampler(r, 500*sim.Millisecond, 64)
	err := f.W.Run(func(p *sim.Proc) error {
		for i := 0; i < 32; i++ {
			if err := f.Client(i*8).NS.WriteFile(p, fmt.Sprintf("/data/t%d", i), 4096, 4096); err != nil {
				return err
			}
			p.Sleep(250 * sim.Millisecond)
		}
		f.SyncAllClients(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := smp.Timeline()
	if n := len(tl.Names()); n == 0 || n > SamplerSeriesBudget/2 {
		t.Errorf("fleet timeline holds %d series, want 1..%d", n, SamplerSeriesBudget/2)
	}
	if d := tl.DroppedSeries(); d != 0 {
		t.Errorf("sampler dropped %d series inside the budget", d)
	}
}

// TestFleetMetricsCardinality: the fleet's registry footprint is
// constant in N — the same series count at 4 clients and at 256.
func TestFleetMetricsCardinality(t *testing.T) {
	count := func(n int) int {
		pm := Default()
		f := BuildFleet(SNFS, pm, FleetOptions{Clients: n})
		r := metrics.New()
		f.EnableMetrics(r)
		snap := r.Snapshot()
		return len(snap.Counters) + len(snap.Gauges) + len(snap.Hists)
	}
	small, big := count(4), count(256)
	if small != big {
		t.Errorf("series count scales with fleet size: %d at N=4, %d at N=256", small, big)
	}
}
