package harness

import (
	"bytes"
	"strings"
	"testing"

	"spritelynfs/internal/audit"
	"spritelynfs/internal/client"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// TestAuditCleanAcrossSharingAndCrash arms the auditor over a workload that
// exercises the protocol hard — delayed writes, write-back callbacks, write
// sharing, server crash and recovery — and requires zero violations: the
// protocol keeps its promises, and the auditor has no false positives.
func TestAuditCleanAcrossSharingAndCrash(t *testing.T) {
	pm := fastParams()
	pm.Audit = true
	var journal bytes.Buffer
	pm.AuditSink = &journal
	pm.SNFS.KeepaliveInterval = 300 * sim.Millisecond
	w := Build(SNFS, true, pm)
	_, readerNS := w.AddSNFSClient("reader", pm.SNFS)
	err := w.Run(func(p *sim.Proc) error {
		// Delayed write, then a second client's read forces the
		// write-back callback.
		if err := w.NS.WriteFile(p, "/data/shared", 32*1024, 8192); err != nil {
			return err
		}
		if _, err := readerNS.ReadFile(p, "/data/shared", 8192); err != nil {
			return err
		}
		// Write sharing: both clients hold the file, one writes.
		rf, err := readerNS.Open(p, "/data/shared", vfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		wf, err := w.NS.Open(p, "/data/shared", vfs.ReadWrite, 0)
		if err != nil {
			return err
		}
		if _, err := wf.WriteAt(p, 0, bytes.Repeat([]byte("w"), 8192)); err != nil {
			return err
		}
		if _, err := rf.ReadAt(p, 0, 8192); err != nil {
			return err
		}
		if err := rf.Close(p); err != nil {
			return err
		}
		if err := wf.Close(p); err != nil {
			return err
		}
		p.Sleep(sim.Second)

		// Crash and recover; pre-crash data must read back cleanly.
		w.SNFSSrv.Crash()
		p.Sleep(500 * sim.Millisecond)
		w.SNFSSrv.Reboot()
		p.Sleep(4 * sim.Second)
		if _, err := w.NS.ReadFile(p, "/data/shared", 8192); err != nil {
			return err
		}
		return w.NS.WriteFile(p, "/data/post", 16*1024, 8192)
	})
	if err != nil {
		t.Fatalf("audited run failed: %v", err)
	}
	if w.Auditor.Events() == 0 {
		t.Fatal("auditor witnessed no events")
	}
	if vs := w.Auditor.Violations(); len(vs) != 0 {
		t.Fatalf("violations in a clean run: %v", vs)
	}
	if !strings.Contains(journal.String(), `"event":"server-reboot"`) {
		t.Error("journal missing the server-reboot record")
	}
	if !strings.Contains(journal.String(), `"event":"callback"`) {
		t.Error("journal missing callback records")
	}
}

// TestAuditDetectsInjectedStaleRead injects the failure the protocol
// prevents: a plain NFS client (invisible to the open/close protocol on a
// non-hybrid server) rewrites a file another client has cached. The cached
// read returns superseded bytes, and the auditor must pin the stale read to
// the reading syscall's op ID.
func TestAuditDetectsInjectedStaleRead(t *testing.T) {
	pm := fastParams()
	pm.Audit = true
	w := Build(SNFS, true, pm)
	rogue, _ := w.AddNFSClient("rogue", client.NFSOptions{})
	rogueNS := &vfs.Namespace{}
	rogueNS.Mount("/", w.Auditor.WrapFS(rogue))
	err := w.Run(func(p *sim.Proc) error {
		// The SNFS client writes and re-reads the file: contents cached,
		// caching granted (it is the last writer).
		if err := w.NS.WriteFile(p, "/data/victim", 16*1024, 8192); err != nil {
			return err
		}
		if _, err := w.NS.ReadFile(p, "/data/victim", 8192); err != nil {
			return err
		}
		// The rogue rewrites the file behind the protocol's back.
		f, err := rogueNS.Open(p, "/data/victim", vfs.WriteOnly, 0)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(p, 0, bytes.Repeat([]byte("R"), 8192)); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		// The SNFS client's cached copy is now stale, and nothing told it.
		_, err = w.NS.ReadFile(p, "/data/victim", 8192)
		return err
	})
	if err == nil {
		t.Fatal("Run returned nil; want the audit violation error")
	}
	vs := w.Auditor.Violations()
	if len(vs) == 0 {
		t.Fatal("stale read not detected")
	}
	for _, v := range vs {
		if v.Invariant != audit.InvStaleRead {
			t.Errorf("unexpected invariant %s: %s", v.Invariant, v)
		}
		if v.Op == 0 {
			t.Errorf("violation lacks a causal op ID: %s", v)
		}
	}
}

// TestAuditedExperimentStaysClean runs a full experiment (the write-sharing
// scenario, callbacks and all) with -audit semantics: Params.Audit alone
// must not change results or introduce violations.
func TestAuditedExperimentStaysClean(t *testing.T) {
	pm := fastParams()
	pm.Audit = true
	if _, _, err := WriteShareExperiment(pm); err != nil {
		t.Fatalf("audited write-share experiment: %v", err)
	}
	if _, err := RunAndrew(SNFS, true, pm, false); err != nil {
		t.Fatalf("audited Andrew benchmark: %v", err)
	}
}
