package harness

import (
	"fmt"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/vfs"
	"spritelynfs/internal/workload"
)

// The failover experiment extends §2.4's crash-recovery story to
// replicated shards: instead of every client blocking on a rebooting
// server, the shard's backup — fed the state-table transitions over the
// replication stream — takes over within a few viewservice intervals,
// and the clients heal through retransmission rerouting and the
// map-refetch machinery with no manual intervention. The measurement is
// the heal time: crash to the first client operation served by the new
// primary.

// FailoverPoint reports one kill-mid-Andrew run.
type FailoverPoint struct {
	Clients int
	Shards  int
	// KillAt is when the target was killed (sim time from start).
	KillAt sim.Duration
	// Elapsed is the slowest client's total Andrew time.
	Elapsed sim.Duration
	// PromotedView is the view number under which the backup took over
	// (0 when no promotion happened).
	PromotedView uint64
	// DetectTime is crash -> backup promotion (the viewservice's
	// dead-ping window plus the ack round).
	DetectTime sim.Duration
	// HealTime is crash -> first client RPC served by the new primary:
	// the outage as the workload experienced it.
	HealTime sim.Duration
	// Redirects counts NOTHOME bounces healed across all routers.
	Redirects int64
	// ViewChanges is the killed shard's view-transition count.
	ViewChanges uint64
	// Flight is the killed shard's black-box ring (nil unless
	// pm.FlightCapacity is set); the failover experiment dumps it so the
	// promotion and heal records can be inspected after the run.
	Flight *tsdb.FlightRecorder
}

// RunClusterFailover runs one Andrew benchmark per client across an
// nshards federation (client i works under /u<i>, assigned to shard
// i%nshards), kills the named replica of killShard at killAt, and
// reports completion plus the failover timings. target is "primary",
// "backup", or "" (kill nothing — the baseline). Backups come from
// pm.Backups: with them off and target "primary" the run degrades
// exactly as a §2.4 crash without reboot — the workload does not
// complete, which the control test asserts.
func RunClusterFailover(nclients, nshards, killShard int, target string, killAt sim.Duration, pm Params) (FailoverPoint, error) {
	assign, dirs := clusterAssignments(nclients, nshards)
	cw, err := BuildCluster(nshards, assign, pm)
	if err != nil {
		return FailoverPoint{}, err
	}
	pt := FailoverPoint{Clients: nclients, Shards: nshards, KillAt: killAt}
	for i := 0; i < nclients; i++ {
		cw.AddRouter(simnet.Addr(fmt.Sprintf("client%d", i)))
	}

	var crashedAt sim.Time
	err = cw.Run(func(p *sim.Proc) error {
		if target != "" {
			cw.K.Go("killer", func(kp *sim.Proc) {
				kp.Sleep(killAt)
				sh := cw.Cluster.Shards()[killShard]
				switch target {
				case "primary":
					sh.Server.Crash()
				case "backup":
					if sh.Backup != nil {
						sh.Backup.Crash()
					}
				}
				crashedAt = kp.Now()
			})
		}
		wg := sim.NewWaitGroup(cw.K, nclients)
		errs := make([]error, nclients)
		elapsed := make([]sim.Duration, nclients)
		for i := range cw.NSs {
			i := i
			cw.K.Go(fmt.Sprintf("andrew-client%d", i), func(cp *sim.Proc) {
				defer wg.Done()
				start := cp.Now()
				errs[i] = andrewIn(cp, cw.NSs[i], dirs[i], pm)
				elapsed[i] = cp.Now().Sub(start)
			})
		}
		wg.Wait(p)
		for i, e := range errs {
			if e != nil {
				return fmt.Errorf("client %d: %w", i, e)
			}
			if elapsed[i] > pt.Elapsed {
				pt.Elapsed = elapsed[i]
			}
		}
		return nil
	})
	pt.Redirects = cw.Redirects()
	sh := cw.Cluster.Shards()[killShard]
	pt.Flight = sh.Flight
	if cw.Cluster.ViewService() != nil {
		pt.ViewChanges = cw.Cluster.ViewService().Changes(sh.ID)
		pt.PromotedView = cw.Cluster.ViewService().View(sh.ID).Num
	}
	if sh.Backup != nil && crashedAt > 0 {
		if at, ok := sh.Backup.Promoted(); ok {
			pt.DetectTime = at.Sub(crashedAt)
		}
		if at, ok := sh.Backup.HealedAt(); ok {
			pt.HealTime = at.Sub(crashedAt)
		}
	}
	return pt, err
}

// andrewIn runs a full Andrew benchmark rooted at dir (setup + timed
// phases), the per-client unit of the failover experiment.
func andrewIn(p *sim.Proc, ns *vfs.Namespace, dir string, pm Params) error {
	cfg := pm.Andrew
	cfg.SrcDir = dir + "/src"
	cfg.DstDir = dir + "/target"
	cfg.TmpDir = dir + "/tmp"
	if err := ns.Mkdir(p, dir, 0o755); err != nil {
		return err
	}
	if err := ns.Mkdir(p, cfg.TmpDir, 0o755); err != nil {
		return err
	}
	if err := workload.SetupAndrew(p, ns, cfg); err != nil {
		return err
	}
	_, err := workload.RunAndrew(p, ns, cfg)
	return err
}
