package harness

import (
	"testing"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/workload"
)

// Failure injection: the protocols must survive message loss and server
// crashes, not just the happy path.

// TestSortSurvivesMessageLoss runs the full sort benchmark with every
// 23rd network message dropped; retransmission and the duplicate-request
// cache must carry it to a correct completion.
func TestSortSurvivesMessageLoss(t *testing.T) {
	for _, pr := range []Proto{NFS, SNFS} {
		pm := fastParams()
		pm.Net.DropEvery = 23
		// Shorter per-attempt timeout keeps retransmission cheap in
		// simulated time.
		size := pm.SortSizes[0]
		r, err := RunSort(pr, size, true, pm)
		if err != nil {
			t.Fatalf("%s sort under loss: %v", pr, err)
		}
		if r.Result.Elapsed <= 0 {
			t.Errorf("%s: no elapsed time recorded", pr)
		}
		// The output must be complete (RunSort stats the output file
		// internally via the workload test; here we check volume).
		if r.Result.TempBytes < int64(size) {
			t.Errorf("%s: temp volume %d below input %d", pr, r.Result.TempBytes, size)
		}
	}
}

// TestAndrewSurvivesMessageLoss runs a small Andrew benchmark under loss.
func TestAndrewSurvivesMessageLoss(t *testing.T) {
	pm := fastParams()
	pm.Net.DropEvery = 31
	for _, pr := range []Proto{NFS, SNFS} {
		if _, err := RunAndrew(pr, true, pm, false); err != nil {
			t.Fatalf("%s Andrew under loss: %v", pr, err)
		}
	}
}

// TestAndrewSurvivesProbabilisticLossAndDup runs an audited Andrew smoke
// on SNFS with statistical loss AND duplication injected: retransmission
// recovers the lost messages, the duplicate-request cache absorbs the
// replayed ones, and the auditor certifies zero protocol violations —
// the fault injection is fully masked.
func TestAndrewSurvivesProbabilisticLossAndDup(t *testing.T) {
	pm := fastParams()
	pm.Net.LossProb = 0.01
	pm.Net.DupProb = 0.01
	pm.Audit = true
	w := Build(SNFS, true, pm)
	err := w.Run(func(p *sim.Proc) error {
		if err := workload.SetupAndrew(p, w.NS, pm.Andrew); err != nil {
			return err
		}
		_, err := workload.RunAndrew(p, w.NS, pm.Andrew)
		return err
	})
	if err != nil {
		t.Fatalf("audited Andrew under loss+dup: %v", err)
	}
	if net := w.Net.Stats(); net.Dropped == 0 || net.Duplicated == 0 {
		t.Fatalf("fault injection inert: %+v", net)
	}
	if rt := w.SNFSCli.Endpoint().Stats().Retransmits; rt == 0 {
		t.Error("loss was injected but the client never retransmitted")
	}
	srv := w.SNFSSrv.Endpoint().Stats()
	if srv.DupHits+srv.DupInProgress == 0 {
		t.Error("duplicates were injected but the server's dup cache never fired")
	}
}

// TestLossDoesNotDuplicateNonIdempotentOps checks that retransmitted
// creates/removes are absorbed by the duplicate-request cache: the
// namespace ends up exactly as a loss-free run leaves it.
func TestLossDoesNotDuplicateNonIdempotentOps(t *testing.T) {
	pm := fastParams()
	pm.Net.DropEvery = 7 // aggressive loss
	w := Build(SNFS, true, pm)
	err := w.Run(func(p *sim.Proc) error {
		for i := 0; i < 10; i++ {
			if err := workload.TempFileChurn(p, w.NS, "/usr/tmp", 3, 8192, 8192); err != nil {
				return err
			}
		}
		// Everything was deleted; the directory must be empty.
		ents, err := w.NS.Readdir(p, "/usr/tmp")
		if err != nil {
			return err
		}
		if len(ents) != 0 {
			t.Errorf("leftover entries after churn under loss: %v", ents)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServerCrashDuringWorkload crashes the SNFS server mid-workload;
// after reboot and recovery the client finishes and the data is intact.
func TestServerCrashDuringWorkload(t *testing.T) {
	pm := fastParams()
	pm.SNFS.KeepaliveInterval = 300 * sim.Millisecond
	w := Build(SNFS, true, pm)
	err := w.Run(func(p *sim.Proc) error {
		// Establish state: a file with dirty blocks, plus keepalive
		// warm-up.
		if err := w.NS.WriteFile(p, "/data/pre.dat", 32*1024, 8192); err != nil {
			return err
		}
		p.Sleep(sim.Second)

		w.SNFSSrv.Crash()
		p.Sleep(500 * sim.Millisecond)
		w.SNFSSrv.Reboot()
		// Keepalive detects the epoch change and re-registers; the
		// grace period passes.
		p.Sleep(4 * sim.Second)

		// New work must succeed (opens retried through grace).
		if err := w.NS.WriteFile(p, "/data/post.dat", 16*1024, 8192); err != nil {
			return err
		}
		n, err := w.NS.ReadFile(p, "/data/pre.dat", 8192)
		if err != nil {
			return err
		}
		if n != 32*1024 {
			t.Errorf("pre-crash file truncated to %d", n)
		}
		// The recovered state still protects consistency: a second
		// client reading pre.dat forces A's write-back.
		_, readerNS := w.AddSNFSClient("late-reader", pm.SNFS)
		rn, err := readerNS.ReadFile(p, "/data/pre.dat", 8192)
		if err != nil {
			return err
		}
		if rn != 32*1024 {
			t.Errorf("reader saw %d bytes of pre-crash file", rn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClientCrashDuringSharing kills a client that holds dirty blocks;
// the opener is warned once and the system keeps going.
func TestClientCrashDuringSharing(t *testing.T) {
	pm := fastParams()
	w := Build(SNFS, true, pm)
	dirtyCli, dirtyNS := w.AddSNFSClient("doomed", pm.SNFS)
	err := w.Run(func(p *sim.Proc) error {
		if err := dirtyNS.WriteFile(p, "/data/f", 16*1024, 8192); err != nil {
			return err
		}
		dirtyCli.Endpoint().Stop() // crash with dirty blocks
		// The surviving client's open gets the §3.2 warning but works.
		n, err := w.NS.ReadFile(p, "/data/f", 8192)
		if err != nil {
			return err
		}
		// The dirty data is lost; only what reached the server (size
		// updates from create) is visible.
		_ = n
		if w.SNFSCli.Inconsistencies != 1 {
			t.Errorf("inconsistency warnings = %d, want 1", w.SNFSCli.Inconsistencies)
		}
		// Subsequent use is normal.
		if err := w.NS.WriteFile(p, "/data/f", 8192, 8192); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
