package harness

import (
	"fmt"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/vfs"
	"spritelynfs/internal/workload"
)

// MicroBenchmarks measures the §5.1 factor analysis: per-pattern RPC
// counts for NFS vs SNFS (read-quickly, read-slowly, temp-file churn).
func MicroBenchmarks(pm Params) (*stats.Table, error) {
	t := stats.NewTable("§5.1 micro-patterns: client RPCs per pattern",
		"Pattern", "NFS", "SNFS", "Note")

	type pattern struct {
		name string
		note string
		cold bool // drop the client cache before the pattern
		run  func(w *World, p *sim.Proc) error
	}
	patterns := []pattern{
		{
			name: "read-quickly (open, read 16k, close)",
			note: "NFS uses one fewer RPC",
			cold: true,
			run: func(w *World, p *sim.Proc) error {
				return workload.ReadQuickly(p, w.NS, "/data/f.dat", pm.TransferSize)
			},
		},
		{
			name: "read-slowly (held open 60s, probing)",
			note: "NFS probes erase its edge",
			cold: true,
			run: func(w *World, p *sim.Proc) error {
				return workload.ReadSlowly(p, w.NS, "/data/f.dat", pm.TransferSize, 60*sim.Second, 20)
			},
		},
		{
			name: "temp churn (20 files x 16k, deleted)",
			note: "SNFS cancels the writes",
			run: func(w *World, p *sim.Proc) error {
				return workload.TempFileChurn(p, w.NS, "/usr/tmp", 20, 16*1024, pm.TransferSize)
			},
		},
		{
			name: "popular header (30 rereads)",
			note: "see ablation for delayed-close",
			run: func(w *World, p *sim.Proc) error {
				return workload.PopularHeader(p, w.NS, "/data/f.dat", 30, pm.TransferSize, sim.Second)
			},
		},
	}

	for _, pat := range patterns {
		var counts [2]int64
		for i, pr := range []Proto{NFS, SNFS} {
			w := Build(pr, true, pm)
			err := w.Run(func(p *sim.Proc) error {
				if err := w.NS.WriteFile(p, "/data/f.dat", 16*1024, pm.TransferSize); err != nil {
					return err
				}
				w.NS.SyncAll(p)
				if pat.cold {
					w.InvalidateClientCache()
				}
				base := w.ClientOps().Clone()
				if err := pat.run(w, p); err != nil {
					return err
				}
				counts[i] = w.ClientOps().Diff(base).Total()
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("micro %q %s: %w", pat.name, pr, err)
			}
		}
		t.AddRow(pat.name, fmt.Sprintf("%d", counts[0]), fmt.Sprintf("%d", counts[1]), pat.note)
	}
	return t, nil
}

// Ablations measures the design choices DESIGN.md calls out:
//   - delayed close (§6.2) on the popular-header pattern;
//   - the Sprite age-based write-back policy vs the traditional
//     flush-everything sync;
//   - the NFS invalidate-on-close bug's contribution to read traffic;
//   - read-ahead on sequential reads.
func Ablations(pm Params) (*stats.Table, error) {
	t := stats.NewTable("Ablations", "Experiment", "Variant", "Metric", "Value")

	// 1. Delayed close on the popular-header pattern.
	for _, dc := range []bool{false, true} {
		pmv := pm
		pmv.SNFS.DelayedClose = dc
		w := Build(SNFS, true, pmv)
		var opens, closes int64
		err := w.Run(func(p *sim.Proc) error {
			if err := w.NS.WriteFile(p, "/data/hdr.h", 8*1024, pm.TransferSize); err != nil {
				return err
			}
			w.NS.SyncAll(p)
			base := w.ClientOps().Clone()
			if err := workload.PopularHeader(p, w.NS, "/data/hdr.h", 30, pm.TransferSize, sim.Second); err != nil {
				return err
			}
			d := w.ClientOps().Diff(base)
			opens, closes = d.Get("open"), d.Get("close")
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("delayed close (§6.2), 30 rereads",
			fmt.Sprintf("delayedClose=%v", dc),
			"open+close RPCs", fmt.Sprintf("%d", opens+closes))
	}

	// 2. Write-back policy: traditional sync-all vs Sprite age-based,
	// on a temp-churn workload with files living ~45 s.
	for _, aged := range []bool{false, true} {
		pmv := pm
		pmv.SNFS.AgeBased = aged
		w := Build(SNFS, true, pmv)
		var writes int64
		err := w.Run(func(p *sim.Proc) error {
			base := w.ClientOps().Clone()
			for i := 0; i < 6; i++ {
				path := fmt.Sprintf("/usr/tmp/t%d", i)
				if err := w.NS.WriteFile(p, path, 64*1024, pm.TransferSize); err != nil {
					return err
				}
				p.Sleep(45 * sim.Second)
				if err := w.NS.Remove(p, path); err != nil {
					return err
				}
			}
			writes = w.ClientOps().Diff(base).Get("write")
			return nil
		})
		if err != nil {
			return nil, err
		}
		policy := "flush-all (Unix)"
		if aged {
			policy = "age-based (Sprite)"
		}
		t.AddRow("write-back policy, 45s-lived temps", policy,
			"write RPCs", fmt.Sprintf("%d", writes))
	}

	// 3. The invalidate-on-close bug: NFS read RPCs on write-close-
	// reread.
	for _, bug := range []bool{false, true} {
		pmv := pm
		pmv.NFS.InvalidateOnClose = bug
		w := Build(NFS, true, pmv)
		var reads int64
		err := w.Run(func(p *sim.Proc) error {
			if err := w.NS.WriteFile(p, "/data/f.dat", 256*1024, pm.TransferSize); err != nil {
				return err
			}
			base := w.ClientOps().Clone()
			if _, err := w.NS.ReadFile(p, "/data/f.dat", pm.TransferSize); err != nil {
				return err
			}
			reads = w.ClientOps().Diff(base).Get("read")
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("invalidate-on-close bug, write+reread 256k",
			fmt.Sprintf("bug=%v", bug), "read RPCs", fmt.Sprintf("%d", reads))
	}

	// 4. The §7 name-cache extension: lookup traffic for the Andrew
	// benchmark with and without protocol-protected name caching.
	for _, nc := range []bool{false, true} {
		pmv := pm
		pmv.SNFS.NameCache = nc
		pmv.Andrew.Dirs = 2
		pmv.Andrew.FilesPerDir = 7
		w := BuildOpt(SNFS, true, pmv, BuildOptions{NameCacheServer: nc})
		var lookups, total int64
		err := w.Run(func(p *sim.Proc) error {
			if err := workload.SetupAndrew(p, w.NS, pmv.Andrew); err != nil {
				return err
			}
			base := w.ClientOps().Clone()
			if _, err := workload.RunAndrew(p, w.NS, pmv.Andrew); err != nil {
				return err
			}
			d := w.ClientOps().Diff(base)
			lookups, total = d.Get("lookup"), d.Total()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("name cache (§7), small Andrew", fmt.Sprintf("nameCache=%v", nc),
			"lookup / total RPCs", fmt.Sprintf("%d / %d", lookups, total))
	}

	// 5. Parallelism on the client (§5.1): "SNFS gains most from
	// increased parallelism when only one job is running on the client
	// host... Less such I/O parallelism is available if many
	// applications are running in parallel." Compile the tree with
	// make -j1 vs -j4 under both protocols.
	for _, jobs := range []int{1, 4} {
		var elapsed [2]sim.Duration
		for i, pr := range []Proto{NFS, SNFS} {
			pmv := pm
			pmv.Andrew.Dirs = 2
			pmv.Andrew.FilesPerDir = 7
			w := Build(pr, true, pmv)
			// The client has one processor: concurrent compiles
			// contend for it, so one job's I/O wait is another's
			// compute time — the §5.1 mechanism.
			pmv.Andrew.CPU = sim.NewResource(w.K, "client-cpu")
			err := w.Run(func(p *sim.Proc) error {
				if err := workload.SetupAndrew(p, w.NS, pmv.Andrew); err != nil {
					return err
				}
				// Build the target tree (MakeDir + Copy) outside
				// the timed region.
				if err := w.NS.Mkdir(p, pmv.Andrew.DstDir, 0o755); err != nil {
					return err
				}
				for d := 0; d < pmv.Andrew.Dirs; d++ {
					if err := w.NS.Mkdir(p, fmt.Sprintf("%s/dir%02d", pmv.Andrew.DstDir, d), 0o755); err != nil {
						return err
					}
					for f := 0; f < pmv.Andrew.FilesPerDir; f++ {
						src := fmt.Sprintf("%s/dir%02d/f%02d.c", pmv.Andrew.SrcDir, d, f)
						dst := fmt.Sprintf("%s/dir%02d/f%02d.c", pmv.Andrew.DstDir, d, f)
						if _, err := w.NS.CopyFile(p, src, dst, pmv.Andrew.ChunkSize); err != nil {
							return err
						}
					}
				}
				d, err := workload.ParallelMake(p, w.NS, pmv.Andrew, jobs)
				if err != nil {
					return err
				}
				elapsed[i] = d
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("parallel make %s -j%d: %w", pr, jobs, err)
			}
		}
		gain := 1 - elapsed[1].Seconds()/elapsed[0].Seconds()
		t.AddRow("client parallelism (§5.1), small make",
			fmt.Sprintf("-j%d", jobs),
			"NFS / SNFS elapsed (SNFS gain)",
			fmt.Sprintf("%.1fs / %.1fs (%.0f%%)", elapsed[0].Seconds(), elapsed[1].Seconds(), gain*100))
	}

	// 6. Read-ahead: elapsed time for a cold 512 k sequential read with
	// per-chunk processing (read-ahead only pays off when the
	// application computes while the next block is in flight).
	for _, ra := range []bool{false, true} {
		w := BuildOpt(SNFS, true, pm, BuildOptions{ReadAhead: &ra})
		var elapsed sim.Duration
		err := w.Run(func(p *sim.Proc) error {
			if err := w.NS.WriteFile(p, "/data/big.dat", 512*1024, pm.TransferSize); err != nil {
				return err
			}
			w.NS.SyncAll(p)
			// Go cold: drop the client cache so the timed read
			// fetches every block from the server.
			w.InvalidateClientCache()
			start := p.Now()
			f, err := w.NS.Open(p, "/data/big.dat", vfs.ReadOnly, 0)
			if err != nil {
				return err
			}
			var off int64
			for {
				data, err := f.ReadAt(p, off, pm.TransferSize)
				if err != nil {
					return err
				}
				if len(data) == 0 {
					break
				}
				off += int64(len(data))
				p.Sleep(10 * sim.Millisecond) // process the chunk
				if len(data) < pm.TransferSize {
					break
				}
			}
			if err := f.Close(p); err != nil {
				return err
			}
			elapsed = p.Now().Sub(start)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("read-ahead, cold 512k read + compute", fmt.Sprintf("readAhead=%v", ra),
			"elapsed (ms)", fmt.Sprintf("%.0f", elapsed.Milliseconds()))
	}
	return t, nil
}
