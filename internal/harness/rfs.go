package harness

import (
	"fmt"

	"spritelynfs/internal/stats"
)

// RFSExperiment tests §2.5's prediction for System V Remote File
// Sharing: "RFS provides the same consistency guarantees as Sprite, but
// because RFS uses the same write policy as NFS, its performance should
// be closer to that of NFS." It runs the temp-heavy sort (where the
// write policy dominates) and the write-sharing probe (where the
// consistency guarantee shows) across all three protocols.
func RFSExperiment(pm Params) (*stats.Table, error) {
	t := stats.NewTable("RFS (§2.5): write policy of NFS, consistency of Sprite",
		"Metric", "NFS", "RFS", "SNFS")

	size := pm.SortSizes[len(pm.SortSizes)-1]
	elapsed := map[Proto]string{}
	writes := map[Proto]string{}
	reads := map[Proto]string{}
	for _, pr := range []Proto{NFS, RFS, SNFS} {
		r, err := RunSort(pr, size, true, pm)
		if err != nil {
			return nil, fmt.Errorf("rfs sort %s: %w", pr, err)
		}
		elapsed[pr] = fmt.Sprintf("%.0fs", r.Result.Elapsed.Seconds())
		writes[pr] = fmt.Sprintf("%d", r.Ops.Get("write"))
		reads[pr] = fmt.Sprintf("%d", r.Ops.Get("read"))
	}
	t.AddRow(fmt.Sprintf("sort %dk elapsed", size/1024), elapsed[NFS], elapsed[RFS], elapsed[SNFS])
	t.AddRow("sort write RPCs", writes[NFS], writes[RFS], writes[SNFS])
	t.AddRow("sort read RPCs", reads[NFS], reads[RFS], reads[SNFS])

	stale := map[Proto]string{}
	rpcs := map[Proto]string{}
	for _, pr := range []Proto{NFS, RFS, SNFS} {
		r, err := RunWriteShare(pr, pm)
		if err != nil {
			return nil, fmt.Errorf("rfs writeshare %s: %w", pr, err)
		}
		stale[pr] = fmt.Sprintf("%d/%d", r.StaleReads, r.Reads)
		rpcs[pr] = fmt.Sprintf("%d", r.ReaderRPCs)
	}
	t.AddRow("write-share stale reads", stale[NFS], stale[RFS], stale[SNFS])
	t.AddRow("write-share reader RPCs", rpcs[NFS], rpcs[RFS], rpcs[SNFS])
	return t, nil
}
