package harness

import (
	"strings"
	"testing"

	"spritelynfs/internal/sim"
)

func TestClusterScalePoint(t *testing.T) {
	pm := fastParams()
	pm.Audit = true
	pt, err := RunClusterScale(4, 2, pm)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Shards != 2 || pt.Clients != 4 {
		t.Errorf("point labeled %d shards / %d clients", pt.Shards, pt.Clients)
	}
	if pt.Elapsed <= 0 || pt.ServerCPU <= 0 || pt.TotalRPCs <= 0 {
		t.Errorf("empty measurement: %+v", pt)
	}
	// A balanced two-shard partition of four independent clients must
	// leave the busiest shard cooler than one server carrying all four.
	single, err := RunScale(SNFS, 4, pm)
	if err != nil {
		t.Fatal(err)
	}
	if pt.ServerCPU >= single.ServerCPU {
		t.Errorf("2-shard max CPU %.3f not below single-server %.3f",
			pt.ServerCPU, single.ServerCPU)
	}
}

func TestClusterWorldRedirectsAfterRebalance(t *testing.T) {
	pm := fastParams()
	pm.Audit = true
	cw, err := BuildCluster(2, map[string]uint32{"/a": 0, "/b": 1}, pm)
	if err != nil {
		t.Fatal(err)
	}
	_, ns := cw.AddRouter("client0")
	err = cw.Run(func(p *sim.Proc) error {
		if err := ns.Mkdir(p, "/a", 0o755); err != nil {
			return err
		}
		if err := ns.WriteFile(p, "/a/f", 8192, pm.TransferSize); err != nil {
			return err
		}
		if err := cw.Cluster.Rebalance(p, "/a", 1); err != nil {
			return err
		}
		if _, err := ns.ReadFile(p, "/a/f", pm.TransferSize); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cw.Redirects() != 1 {
		t.Errorf("%d redirects, want 1", cw.Redirects())
	}
}

func TestScaleCSV(t *testing.T) {
	pts := []ScalePoint{
		{Clients: 1, Shards: 2, Elapsed: 10 * sim.Second, Slowdown: 1, ServerCPU: 0.25, ServerDisk: 0.1, TotalRPCs: 42},
		{Clients: 4, Shards: 2, Elapsed: 12 * sim.Second, Slowdown: 1.2, ServerCPU: 0.5, ServerDisk: 0.2, TotalRPCs: 170},
	}
	var b strings.Builder
	if err := WriteScaleCSV(&b, "SNFS", pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || lines[0] != ScaleCSVHeader {
		t.Fatalf("csv:\n%s", b.String())
	}
	if lines[1] != "SNFS,2,1,10.000,1.000,0.2500,0.1000,42" {
		t.Errorf("row: %s", lines[1])
	}
	// Single-server points (Shards unset) write as one shard.
	b.Reset()
	if err := WriteScaleCSV(&b, "NFS", []ScalePoint{{Clients: 2, Elapsed: sim.Second}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NFS,1,2,") {
		t.Errorf("csv: %s", b.String())
	}
}

func TestSustainableClients(t *testing.T) {
	pts := []ScalePoint{
		{Clients: 1, Slowdown: 1},
		{Clients: 2, Slowdown: 1.05},
		{Clients: 4, Slowdown: 1.2},
		{Clients: 8, Slowdown: 2.3},
	}
	if got := SustainableClients(pts, 1.25); got != 4 {
		t.Errorf("SustainableClients = %d, want 4", got)
	}
	if got := SustainableClients(pts, 1.0); got != 1 {
		t.Errorf("SustainableClients tight = %d, want 1", got)
	}
}
