package harness

import (
	"encoding/binary"
	"fmt"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/vfs"
)

// ProbeSweep quantifies §2.1's compromise: "The interval between checks
// is a compromise between performance (frequent checking loads the
// server and delays the client) and consistency (insufficiently frequent
// checking may mean that a client uses stale data from its cache)."
//
// A reader holds a file open and polls it twice a second for a minute
// while a writer updates it every five seconds. The NFS attribute-probe
// interval is swept: short intervals buy freshness with getattr traffic,
// long intervals buy cheap (stale) reads. The SNFS row shows the escape
// from the trade-off: zero probes AND zero staleness.
func ProbeSweep(pm Params) (*stats.Table, error) {
	t := stats.NewTable("§2.1: the probe-interval compromise (reader polls 2/s for 60s; writer updates every 5s)",
		"Configuration", "probe RPCs", "stale polls", "fresh polls")

	intervals := []sim.Duration{sim.Second, 3 * sim.Second, 10 * sim.Second, 30 * sim.Second}
	for _, iv := range intervals {
		pmv := pm
		pmv.NFS.ProbeMin = iv
		pmv.NFS.ProbeMax = iv // pin the adaptive range to one value
		probes, stale, fresh, err := probeRun(NFS, pmv)
		if err != nil {
			return nil, fmt.Errorf("probe sweep %v: %w", iv, err)
		}
		t.AddRow(fmt.Sprintf("NFS, probe every %v", iv),
			fmt.Sprintf("%d", probes), fmt.Sprintf("%d", stale), fmt.Sprintf("%d", fresh))
	}
	probes, stale, fresh, err := probeRun(SNFS, pm)
	if err != nil {
		return nil, err
	}
	t.AddRow("SNFS (callbacks, no probes)",
		fmt.Sprintf("%d", probes), fmt.Sprintf("%d", stale), fmt.Sprintf("%d", fresh))
	return t, nil
}

func probeRun(pr Proto, pm Params) (probes int64, stale, fresh int, err error) {
	w := Build(pr, true, pm)
	var readerNS *vfs.Namespace
	var readerOps func(string) int64
	switch pr {
	case NFS:
		c, ns := w.AddNFSClient("reader", pm.NFS)
		readerNS = ns
		readerOps = c.Ops().Get
	case SNFS:
		c, ns := w.AddSNFSClient("reader", pm.SNFS)
		readerNS = ns
		readerOps = c.Ops().Get
	default:
		return 0, 0, 0, fmt.Errorf("probe sweep needs a remote protocol")
	}

	err = w.Run(func(p *sim.Proc) error {
		// Writer initializes and keeps updating a version stamp.
		wf, err := w.NS.Open(p, "/data/stamp", vfs.ReadWrite|vfs.Create, 0o644)
		if err != nil {
			return err
		}
		version := uint32(1)
		writeStamp := func(wp *sim.Proc) error {
			buf := make([]byte, 4096)
			binary.BigEndian.PutUint32(buf, version)
			if _, err := wf.WriteAt(wp, 0, buf); err != nil {
				return err
			}
			return wf.Sync(wp)
		}
		if err := writeStamp(p); err != nil {
			return err
		}
		done := false
		w.K.Go("writer", func(wp *sim.Proc) {
			for !done {
				wp.Sleep(5 * sim.Second)
				version++
				if err := writeStamp(wp); err != nil {
					return
				}
			}
		})

		rf, err := readerNS.Open(p, "/data/stamp", vfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		defer rf.Close(p)
		base := readerOps("getattr")
		for i := 0; i < 120; i++ {
			p.Sleep(500 * sim.Millisecond)
			data, err := rf.ReadAt(p, 0, 4096)
			if err != nil {
				return err
			}
			got := uint32(0)
			if len(data) >= 4 {
				got = binary.BigEndian.Uint32(data)
			}
			if got == version {
				fresh++
			} else {
				stale++
			}
		}
		probes = readerOps("getattr") - base
		done = true
		return nil
	})
	return probes, stale, fresh, err
}
