// Package harness assembles simulated worlds (server host, client host,
// network, disks, mounts) and runs the paper's experiments against them:
// one runner per table and figure of §5, plus the §5.1 micro-benchmarks
// and ablations of the design choices. The calibrated cost constants
// live here.
package harness

import (
	"io"

	"spritelynfs/internal/client"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/workload"
)

// Proto selects the file system under test.
type Proto int

// The three configurations of Table 5-1/5-3, plus RFS (the §2.5
// related-work protocol, used by the rfs comparison experiment).
const (
	Local Proto = iota
	NFS
	SNFS
	RFS
)

func (p Proto) String() string {
	switch p {
	case Local:
		return "local"
	case NFS:
		return "NFS"
	case SNFS:
		return "SNFS"
	case RFS:
		return "RFS"
	}
	return "?"
}

// Params is the full calibrated cost model and sizing of the testbed:
// Titan-class client and server, 10 Mbit/s Ethernet, RA81-class disks,
// 8 kbyte transfers over a 4 kbyte server file system block (§5.2).
type Params struct {
	Seed int64

	// Net models the shared Ethernet.
	Net simnet.Config
	// ServerDisk and ClientDisk model the RA81/RA82 drives.
	ServerDisk disk.Params
	ClientDisk disk.Params
	// Server holds per-op CPU costs; ServerWorkers the nfsd pool.
	Server        server.Config
	ServerWorkers int
	// ServerCacheBytes is the server buffer cache (~3.5 Mbytes in the
	// measured configuration); ClientCacheBytes the client's (~16 M).
	ServerCacheBytes int64
	ClientCacheBytes int64
	// TransferSize is the client cache-block/transfer unit (8 kbytes);
	// ServerBlockSize the server FS natural block (4 kbytes).
	TransferSize    int
	ServerBlockSize int

	// NFS and SNFS are the client policies under test.
	NFS  client.NFSOptions
	SNFS client.SNFSOptions
	// UnstableWrites arms the NFSv3-style unstable WRITE + COMMIT
	// pipeline on remote clients (and write gathering at the server).
	// Off by default so the paper-fidelity tables keep the vintage
	// per-block synchronous write path; the scale experiment turns it
	// on to show the disk-arm bottleneck moving out.
	UnstableWrites bool
	// AttrPiggyback arms the post-op attribute piggybacking path on
	// remote clients: lookup/read/readdir replies prime the unified
	// attribute cache, remove/rename/close carry post-op wcc attributes,
	// and directory listings use the READDIRPLUS-style procedure. Off by
	// default so the paper-fidelity tables keep the vintage RPC mix; the
	// rpc experiment turns it on to measure the getattr/lookup savings.
	AttrPiggyback bool
	// LookupPath arms the compound multi-component lookup procedure:
	// path walks resolve each symlink-free run in one round trip instead
	// of one lookup RPC per component. Off by default, as above.
	LookupPath bool
	// LocalSyncInterval is the /etc/update period for local-disk
	// delayed writes (0 disables — the Table 5-5 configuration).
	LocalSyncInterval sim.Duration

	// Andrew is the benchmark tree/compiler model.
	Andrew workload.AndrewConfig
	// SortSizes are the three input sizes of Table 5-3.
	SortSizes []int
	// SortMemBuffer and SortMergeOrder shape the external sort.
	SortMemBuffer  int
	SortMergeOrder int
	SortCPUPerKB   sim.Duration

	// Bucket is the time-series bucket for Figures 5-1/5-2.
	Bucket sim.Duration

	// Audit arms the protocol auditor on SNFS worlds: every state-table
	// transition is replayed through a shadow Table 4-1 machine and every
	// client read is checked against a write ledger. World.Run fails if
	// any invariant is violated.
	Audit bool
	// AuditSink, when non-nil, receives the audit journal as JSONL.
	AuditSink io.Writer
	// AuditSinkFor, when non-nil, supplies a separate journal sink per
	// shard in cluster worlds (falls back to the shared AuditSink).
	AuditSinkFor func(shard int) io.Writer
	// TraceCapacity sizes the trace ring the experiments attach when
	// tracing is requested (0 = 200000 events).
	TraceCapacity int

	// SampleInterval arms the time-series sampler: the experiment
	// runners sample every metrics registry on the sim clock at this
	// period and attach the resulting timeline to the run (emitted as
	// timeline.json by snfs-bench). 0 (the default) disables sampling
	// entirely, keeping the paper-fidelity tables byte-identical.
	SampleInterval sim.Duration
	// SampleCapacity bounds each timeline series ring (0 = 1024).
	SampleCapacity int
	// FlightCapacity arms a black-box flight recorder per server (per
	// shard in cluster worlds): a bounded ring of recent RPC, state-
	// table, and callback events. 0 (the default) disables it.
	FlightCapacity int
	// FlightSink, when non-nil with Audit and FlightCapacity armed,
	// receives a flight-recorder dump the moment the first audit
	// violation is recorded — the black box is read out while it still
	// holds the events leading up to the violation.
	FlightSink io.Writer

	// Backups arms primary/backup replication in cluster worlds: every
	// shard gets a standby server fed by an async replication stream and
	// a viewservice that promotes it when the primary stops pinging (see
	// cluster.Config.Backups). Off by default.
	Backups bool
	// ViewInterval is the viewservice ping/tick period (0 = 100 ms).
	ViewInterval sim.Duration
	// ViewDeadPings is how many missed pings declare a server dead
	// (0 = 5).
	ViewDeadPings int
	// ViewLog, when non-nil, receives one text line per view change.
	ViewLog io.Writer

	// Spans arms the causal span recorder: every syscall becomes a root
	// span, the instrumented layers (cache, RPC, server queue/CPU, disk)
	// attach child spans, and the run reports a critical-path breakdown
	// plus a top-K slowest-ops capture. Off (the default) keeps every
	// hot path at one nil check and all paper tables byte-identical.
	Spans bool
	// SpanTopK bounds the slow-op capture (0 = 32).
	SpanTopK int
}

// traceCap returns the effective trace ring capacity.
func (pm Params) traceCap() int {
	if pm.TraceCapacity > 0 {
		return pm.TraceCapacity
	}
	return 200000
}

// Default returns the calibrated parameter set.
func Default() Params {
	return Params{
		Seed: 1,
		Net: simnet.Config{
			// ~2 ms protocol/processing latency per message plus
			// 10 Mbit/s serialization on the shared wire.
			PropDelay:   2 * sim.Millisecond,
			BytesPerSec: 1_250_000,
		},
		ServerDisk: disk.RA81(),
		ClientDisk: disk.RA81(),
		Server: server.Config{
			FSID:     1,
			CPUPerOp: 2 * sim.Millisecond,
			CPUPerKB: 150 * sim.Microsecond,
		},
		ServerWorkers:    8,
		ServerCacheBytes: 3500 * 1024,
		ClientCacheBytes: 16 << 20,
		TransferSize:     8 * 1024,
		ServerBlockSize:  4 * 1024,
		NFS: client.NFSOptions{
			// The measured reference port had the invalidate-on-
			// close bug (§5.2).
			InvalidateOnClose: true,
		},
		SNFS: client.SNFSOptions{
			UpdateInterval: 30 * sim.Second,
		},
		LocalSyncInterval: 30 * sim.Second,
		Andrew:            workload.DefaultAndrew(),
		SortSizes:         []int{281 * 1024, 1408 * 1024, 2816 * 1024},
		SortMemBuffer:     128 * 1024,
		SortMergeOrder:    4,
		SortCPUPerKB:      6 * sim.Millisecond,
		Bucket:            5 * sim.Second,
	}
}
