package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"spritelynfs/internal/client"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// TestViolationTriggersFlightDump injects the same stale read as
// TestAuditDetectsInjectedStaleRead, but with the flight recorder armed:
// the audit violation must automatically dump the black box, and the dump
// must carry the offending syscall's op ID so the crash report is
// self-contained.
func TestViolationTriggersFlightDump(t *testing.T) {
	pm := fastParams()
	pm.Audit = true
	pm.FlightCapacity = 512
	var box bytes.Buffer
	pm.FlightSink = &box
	w := Build(SNFS, true, pm)
	if w.Flight == nil {
		t.Fatal("FlightCapacity set but world has no recorder")
	}
	rogue, _ := w.AddNFSClient("rogue", client.NFSOptions{})
	rogueNS := &vfs.Namespace{}
	rogueNS.Mount("/", w.Auditor.WrapFS(rogue))
	err := w.Run(func(p *sim.Proc) error {
		if err := w.NS.WriteFile(p, "/data/victim", 16*1024, 8192); err != nil {
			return err
		}
		if _, err := w.NS.ReadFile(p, "/data/victim", 8192); err != nil {
			return err
		}
		f, err := rogueNS.Open(p, "/data/victim", vfs.WriteOnly, 0)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(p, 0, bytes.Repeat([]byte("R"), 8192)); err != nil {
			return err
		}
		if err := f.Close(p); err != nil {
			return err
		}
		_, err = rogueNS.Open(p, "/data/victim", vfs.WriteOnly, 0)
		if err != nil {
			return err
		}
		_, err = w.NS.ReadFile(p, "/data/victim", 8192)
		return err
	})
	if err == nil {
		t.Fatal("Run returned nil; want the audit violation error")
	}
	vs := w.Auditor.Violations()
	if len(vs) == 0 {
		t.Fatal("stale read not detected")
	}
	dump := box.String()
	if !strings.Contains(dump, "flight recorder dump") {
		t.Fatalf("violation did not dump the flight recorder; sink: %q", dump)
	}
	if !strings.Contains(dump, "audit violation") {
		t.Errorf("dump trigger does not name the audit violation: %q", dump)
	}
	if want := fmt.Sprintf("op=%d", vs[0].Op); !strings.Contains(dump, want) {
		t.Errorf("dump missing the offending op ID %s", want)
	}
	// The box must hold protocol history, not just the trigger line: the
	// RPCs and state transitions that led up to the violation.
	if !strings.Contains(dump, "rpc") {
		t.Error("dump has no rpc events")
	}
	if !strings.Contains(dump, "state") {
		t.Error("dump has no state-transition events")
	}
	// One violation, one dump: a second violation in the same run must not
	// append another (the first box is the one that matters).
	if n := strings.Count(dump, "flight recorder dump"); n != 1 {
		t.Errorf("want exactly one dump, got %d", n)
	}
}

// TestScaleTimelineTracksRun arms the sim-time sampler on a scale point
// and checks the timeline carries the series the experiments are read
// through: per-window RPC service rates and the disk- and CPU-busy
// fractions, with activity visible while the workload runs.
func TestScaleTimelineTracksRun(t *testing.T) {
	pm := fastParams()
	pm.SampleInterval = 200 * sim.Millisecond
	pt, err := RunScale(SNFS, 2, pm)
	if err != nil {
		t.Fatalf("scale point: %v", err)
	}
	tl := pt.Timeline
	if tl == nil {
		t.Fatal("SampleInterval set but point has no timeline")
	}
	names := tl.Names()
	if len(names) == 0 {
		t.Fatal("timeline is empty")
	}
	if pts := tl.Points(`snfs_server_disk_busy_seconds{host="server"}:rate`); len(pts) == 0 {
		t.Errorf("no disk-busy rate series; have %v", names)
	}
	cpu := tl.Points(`snfs_server_cpu_busy_seconds{host="server"}:rate`)
	if len(cpu) == 0 {
		t.Fatalf("no cpu-busy rate series; have %v", names)
	}
	busy := false
	for _, p := range cpu {
		if p.V > 0 {
			busy = true
			break
		}
	}
	if !busy {
		t.Error("cpu-busy rate never rose above zero during the run")
	}
	served := false
	for _, n := range names {
		if strings.HasPrefix(n, "snfs_rpc_serve_us") && strings.HasSuffix(n, ":rate") {
			for _, p := range tl.Points(n) {
				if p.V > 0 {
					served = true
					break
				}
			}
		}
	}
	if !served {
		t.Error("no RPC service rate series shows traffic")
	}
}

// TestClusterTimelinePrefixesShards checks the federation sampler keeps
// the shards apart: every shard's registry lands in the shared timeline
// under its own shard<i>/ prefix.
func TestClusterTimelinePrefixesShards(t *testing.T) {
	pm := fastParams()
	pm.SampleInterval = 200 * sim.Millisecond
	pt, err := RunClusterScale(2, 2, pm)
	if err != nil {
		t.Fatalf("cluster scale point: %v", err)
	}
	if pt.Timeline == nil {
		t.Fatal("SampleInterval set but cluster point has no timeline")
	}
	for shard := 0; shard < 2; shard++ {
		prefix := fmt.Sprintf("shard%d/", shard)
		found := false
		for _, n := range pt.Timeline.Names() {
			if strings.HasPrefix(n, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no series for %s in %v", prefix, pt.Timeline.Names())
		}
	}
}
