package harness

import (
	"strings"
	"testing"
)

// TestScaleSpanBreakdown is the acceptance gate for causal span tracing:
// at the 16-client scale point the critical-path breakdown must account
// for at least 95% of elapsed wall time, and the disk share it reports
// must reconcile with the server's disk-busy gauge.
func TestScaleSpanBreakdown(t *testing.T) {
	pm := Default()
	pm.Spans = true
	pt, err := RunScale(SNFS, 16, pm)
	if err != nil {
		t.Fatal(err)
	}
	s := pt.Spans
	if s == nil {
		t.Fatal("Params.Spans armed but ScalePoint.Spans is nil")
	}
	if s.Ops == 0 || s.Clients != 16 {
		t.Fatalf("summary = %d ops / %d clients, want >0 ops / 16", s.Ops, s.Clients)
	}
	if s.AccountedPct < 95 || s.AccountedPct > 100.5 {
		t.Errorf("accounted = %.2f%% of wall, want ~100 (>= 95)", s.AccountedPct)
	}
	var total float64
	for _, c := range s.Components {
		total += c.Seconds
	}
	if total < 0.95*s.WallSeconds || total > 1.005*s.WallSeconds {
		t.Errorf("components sum %.2fs vs wall %.2fs", total, s.WallSeconds)
	}
	// Disk consistency: the span view of arm time must agree with the
	// resource gauge. Every blocking disk access on the SNFS path is
	// spanned, so the two are equal up to rounding; the gauge is the
	// ceiling (spans never invent arm time the disk didn't spend).
	if s.DiskBusySeconds <= 0 {
		t.Fatal("disk busy gauge not filled in")
	}
	ratio := s.DiskArmSeconds / s.DiskBusySeconds
	if ratio < 0.9 || ratio > 1.001 {
		t.Errorf("span disk-arm %.3fs vs busy gauge %.3fs (ratio %.3f), want within [0.9, 1.001]",
			s.DiskArmSeconds, s.DiskBusySeconds, ratio)
	}
	if len(s.SlowOps) == 0 {
		t.Error("no slow ops captured")
	}
	for _, so := range s.SlowOps {
		if so.DurUS <= 0 || len(so.Spans) == 0 {
			t.Errorf("degenerate slow op: %+v", so)
		}
	}
	var buf strings.Builder
	s.Render(&buf)
	if !strings.Contains(buf.String(), "disk reconciliation") {
		t.Errorf("render missing reconciliation line:\n%s", buf.String())
	}
}

// TestScaleSpansOff: with Params.Spans unset nothing is collected — the
// paper-fidelity configuration stays untouched.
func TestScaleSpansOff(t *testing.T) {
	pt, err := RunScale(SNFS, 2, Default())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Spans != nil {
		t.Fatalf("spans off but summary present: %+v", pt.Spans)
	}
}

// TestAndrewSpanBreakdown: the Andrew benchmark under span tracing also
// accounts cleanly, including the background (daemon/write-behind) work.
func TestAndrewSpanBreakdown(t *testing.T) {
	pm := Default()
	pm.Spans = true
	run, err := RunAndrew(SNFS, true, pm, false)
	if err != nil {
		t.Fatal(err)
	}
	s := run.Spans
	if s == nil {
		t.Fatal("Params.Spans armed but AndrewRun.Spans is nil")
	}
	if s.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	if s.AccountedPct < 95 || s.AccountedPct > 100.5 {
		t.Errorf("accounted = %.2f%%, want ~100", s.AccountedPct)
	}
	if s.DiskBusySeconds <= 0 {
		t.Fatal("disk busy gauge not filled in")
	}
}
