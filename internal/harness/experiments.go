package harness

import (
	"fmt"
	"io"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/span"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/workload"
)

// AndrewRun is one Andrew benchmark execution with its measurements.
type AndrewRun struct {
	Proto     Proto
	TmpRemote bool
	Result    workload.AndrewResult
	Ops       *stats.Ops
	Series    *server.Series
	CPUUtil   float64
	Start     sim.Time // when the timed phases began (series offset)
	// Metrics holds the world's registry, enabled at measurement start:
	// per-procedure RPC latency histograms plus server and client
	// gauges frozen at end of run.
	Metrics *metrics.Registry
	// Timeline holds the sampled metric series over the timed phases
	// (nil unless Params.SampleInterval is set).
	Timeline *tsdb.Timeline
	// Spans holds the critical-path breakdown and slow-op capture over
	// the timed phases (nil unless Params.Spans is set).
	Spans *span.Summary
}

// Label names the configuration the way Table 5-1 does.
func (r AndrewRun) Label() string {
	if r.Proto == Local {
		return "local"
	}
	where := "local /tmp"
	if r.TmpRemote {
		where = "remote /tmp"
	}
	return fmt.Sprintf("%s, %s", r.Proto, where)
}

// RunAndrew executes the Andrew benchmark under one configuration.
func RunAndrew(pr Proto, tmpRemote bool, pm Params, withSeries bool) (AndrewRun, error) {
	w := Build(pr, tmpRemote, pm)
	run := AndrewRun{Proto: pr, TmpRemote: tmpRemote}
	var series *server.Series
	err := w.Run(func(p *sim.Proc) error {
		if err := workload.SetupAndrew(p, w.NS, pm.Andrew); err != nil {
			return err
		}
		// Let setup's delayed writes drain so the disks start the
		// timed phases idle (the paper likewise ran trials back to
		// back, charging each protocol only its own traffic).
		p.Sleep(40 * sim.Second)
		base := w.ClientOps().Clone()
		if withSeries {
			series = w.EnableSeries(pm.Bucket)
		}
		run.Metrics = w.EnableMetrics()
		if pm.SampleInterval > 0 {
			run.Timeline = w.StartSampler(run.Metrics, pm.SampleInterval, pm.SampleCapacity).Timeline()
		}
		run.Start = p.Now()
		res, err := workload.RunAndrew(p, w.NS, pm.Andrew)
		if err != nil {
			return err
		}
		run.Result = res
		run.Ops = w.ClientOps().Diff(base)
		run.CPUUtil = w.ServerCPUUtilization()
		return nil
	})
	if w.Spans != nil {
		// elapsed 0: the summary covers the recorder's whole observed
		// window (setup through drain), so attribution stays ~100%.
		run.Spans = w.Spans.Summarize(0, 1)
		if w.SrvMedia != nil {
			run.Spans.DiskBusySeconds = w.SrvMedia.Disk().BusyTime().Seconds()
		}
	}
	run.Series = series
	return run, err
}

// RunAndrewSteadyState mirrors the paper's measurement discipline: "we
// ran the SNFS benchmarks several times in a row (rather than
// interleaving them with NFS benchmark runs) so that NFS would not be
// charged for writes incurred by SNFS". Two back-to-back trials run in
// one world and the SECOND trial's operations are counted — the update
// daemon's deferred write-backs from trial one land inside trial two's
// window, exactly as in the paper's steady state.
func RunAndrewSteadyState(pr Proto, tmpRemote bool, pm Params) (AndrewRun, error) {
	w := Build(pr, tmpRemote, pm)
	run := AndrewRun{Proto: pr, TmpRemote: tmpRemote}
	err := w.Run(func(p *sim.Proc) error {
		if err := workload.SetupAndrew(p, w.NS, pm.Andrew); err != nil {
			return err
		}
		p.Sleep(40 * sim.Second)
		// Trial 1 (warm-up; its deferred writes will bill trial 2).
		if _, err := workload.RunAndrew(p, w.NS, pm.Andrew); err != nil {
			return err
		}
		// Re-point the tree names so trial 2 rebuilds from scratch.
		cfg := pm.Andrew
		cfg.DstDir = pm.Andrew.DstDir + "2"
		base := w.ClientOps().Clone()
		run.Metrics = w.EnableMetrics()
		run.Start = p.Now()
		res, err := workload.RunAndrew(p, w.NS, cfg)
		if err != nil {
			return err
		}
		run.Result = res
		run.Ops = w.ClientOps().Diff(base)
		run.CPUUtil = w.ServerCPUUtilization()
		return nil
	})
	return run, err
}

// Table52SteadyState is Table 5-2 with the paper's trial discipline.
func Table52SteadyState(pm Params) ([]AndrewRun, *stats.Table, error) {
	configs := []struct {
		pr  Proto
		tmp bool
	}{
		{NFS, false},
		{SNFS, false},
		{NFS, true},
		{SNFS, true},
	}
	var runs []AndrewRun
	for _, c := range configs {
		r, err := RunAndrewSteadyState(c.pr, c.tmp, pm)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", r.Label(), err)
		}
		runs = append(runs, r)
	}
	t := stats.NewTable("Table 5-2 (steady state: second of two back-to-back trials)",
		append([]string{"Operation"}, labels(runs)...)...)
	for _, op := range table52Ops {
		any := false
		for _, r := range runs {
			if r.Ops.Get(op) > 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		row := []string{op}
		for _, r := range runs {
			row = append(row, fmt.Sprintf("%d", r.Ops.Get(op)))
		}
		t.AddRow(row...)
	}
	row := []string{"Total"}
	for _, r := range runs {
		row = append(row, fmt.Sprintf("%d", r.Ops.Total()))
	}
	t.AddRow(row...)
	row = []string{"Data transfer (read+write)"}
	for _, r := range runs {
		row = append(row, fmt.Sprintf("%d", r.Ops.Sum("read", "write")))
	}
	t.AddRow(row...)
	return runs, t, nil
}

// Table51 regenerates Table 5-1: Andrew elapsed times for the five
// configurations.
func Table51(pm Params) ([]AndrewRun, *stats.Table, error) {
	configs := []struct {
		pr  Proto
		tmp bool
	}{
		{Local, false},
		{NFS, false},
		{NFS, true},
		{SNFS, false},
		{SNFS, true},
	}
	var runs []AndrewRun
	for _, c := range configs {
		r, err := RunAndrew(c.pr, c.tmp, pm, false)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", r.Label(), err)
		}
		runs = append(runs, r)
	}
	t := stats.NewTable("Table 5-1: Andrew benchmark elapsed time (simulated seconds)",
		append([]string{"Phase"}, labels(runs)...)...)
	for i, name := range workload.AndrewPhases {
		row := []string{name}
		for _, r := range runs {
			row = append(row, fmt.Sprintf("%.1f", r.Result.Phase[i].Seconds()))
		}
		t.AddRow(row...)
	}
	row := []string{"Total"}
	for _, r := range runs {
		row = append(row, fmt.Sprintf("%.1f", r.Result.Total.Seconds()))
	}
	t.AddRow(row...)
	return runs, t, nil
}

func labels(runs []AndrewRun) []string {
	out := make([]string, len(runs))
	for i, r := range runs {
		out[i] = r.Label()
	}
	return out
}

// table52Ops is the operation breakdown the paper reports.
var table52Ops = []string{"lookup", "getattr", "open", "close", "read", "write", "create", "remove", "setattr", "mkdir", "readdir", "rename", "statfs"}

// LatencyTable renders per-procedure client RPC latency percentiles for a
// set of runs, read out of each run's metrics registry. Procedures with no
// samples in any run are omitted; cells without samples show "-".
func LatencyTable(runs []AndrewRun) *stats.Table {
	t := stats.NewTable("Per-procedure client RPC latency, p50/p95/p99 (ms)",
		append([]string{"Operation"}, labels(runs)...)...)
	hist := func(r AndrewRun, op string) *metrics.Histogram {
		if r.Metrics == nil {
			return nil
		}
		return r.Metrics.FindHistogram(
			metrics.Label("snfs_rpc_call_latency_us", "host", "client", "proc", op))
	}
	for _, op := range table52Ops {
		any := false
		for _, r := range runs {
			if h := hist(r, op); h.Count() > 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		row := []string{op}
		for _, r := range runs {
			h := hist(r, op)
			if h.Count() == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f/%.1f/%.1f",
				float64(h.Quantile(0.50))/1000,
				float64(h.Quantile(0.95))/1000,
				float64(h.Quantile(0.99))/1000))
		}
		t.AddRow(row...)
	}
	return t
}

// RunAndrewTraced is RunAndrew with a tracer attached at measurement
// start, sized to hold the whole timed run, so the trace can be exported
// (e.g. as Chrome trace-event JSON via trace.WriteChrome).
func RunAndrewTraced(pr Proto, tmpRemote bool, pm Params) (AndrewRun, *trace.Tracer, error) {
	w := Build(pr, tmpRemote, pm)
	run := AndrewRun{Proto: pr, TmpRemote: tmpRemote}
	var tr *trace.Tracer
	err := w.Run(func(p *sim.Proc) error {
		if err := workload.SetupAndrew(p, w.NS, pm.Andrew); err != nil {
			return err
		}
		p.Sleep(40 * sim.Second)
		base := w.ClientOps().Clone()
		tr = w.EnableTrace(pm.traceCap())
		run.Metrics = w.EnableMetrics()
		run.Start = p.Now()
		res, err := workload.RunAndrew(p, w.NS, pm.Andrew)
		if err != nil {
			return err
		}
		run.Result = res
		run.Ops = w.ClientOps().Diff(base)
		run.CPUUtil = w.ServerCPUUtilization()
		return nil
	})
	if w.Spans != nil {
		run.Spans = w.Spans.Summarize(0, 1)
		if w.SrvMedia != nil {
			run.Spans.DiskBusySeconds = w.SrvMedia.Disk().BusyTime().Seconds()
		}
	}
	return run, tr, err
}

// Table52 regenerates Table 5-2: RPC call counts for the Andrew
// benchmark under the four remote configurations.
func Table52(pm Params) ([]AndrewRun, *stats.Table, error) {
	configs := []struct {
		pr  Proto
		tmp bool
	}{
		{NFS, false},
		{SNFS, false},
		{NFS, true},
		{SNFS, true},
	}
	var runs []AndrewRun
	for _, c := range configs {
		r, err := RunAndrew(c.pr, c.tmp, pm, false)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", r.Label(), err)
		}
		runs = append(runs, r)
	}
	t := stats.NewTable("Table 5-2: RPC calls for Andrew benchmark",
		append([]string{"Operation"}, labels(runs)...)...)
	for _, op := range table52Ops {
		any := false
		for _, r := range runs {
			if r.Ops.Get(op) > 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		row := []string{op}
		for _, r := range runs {
			row = append(row, fmt.Sprintf("%d", r.Ops.Get(op)))
		}
		t.AddRow(row...)
	}
	row := []string{"Total"}
	for _, r := range runs {
		row = append(row, fmt.Sprintf("%d", r.Ops.Total()))
	}
	t.AddRow(row...)
	row = []string{"Data transfer (read+write)"}
	for _, r := range runs {
		row = append(row, fmt.Sprintf("%d", r.Ops.Sum("read", "write")))
	}
	t.AddRow(row...)
	return runs, t, nil
}

// Figure is the data behind Figures 5-1/5-2: per-bucket server CPU
// utilization and call rates during the Andrew run with /tmp remote.
type Figure struct {
	Run     AndrewRun
	Seconds []float64 // bucket start times, from benchmark start
	CPU     []float64 // utilization 0..1
	Calls   []float64 // calls/sec
	Reads   []float64
	Writes  []float64
}

// RunFigure produces Figure 5-1 (NFS) or 5-2 (SNFS).
func RunFigure(pr Proto, pm Params) (Figure, error) {
	run, err := RunAndrew(pr, true, pm, true)
	if err != nil {
		return Figure{}, err
	}
	f := Figure{Run: run}
	if run.Series == nil {
		return f, fmt.Errorf("no series recorded")
	}
	skip := int(int64(run.Start) / int64(pm.Bucket))
	nb := len(run.Series.Calls.Values())
	grow := func(vals []float64) []float64 {
		out := make([]float64, 0, nb)
		for i := skip; i < nb; i++ {
			if i < len(vals) {
				out = append(out, vals[i])
			} else {
				out = append(out, 0)
			}
		}
		return out
	}
	bucketSec := pm.Bucket.Seconds()
	cpu := grow(run.Series.CPU.Values())
	for i := range cpu {
		cpu[i] /= bucketSec // busy seconds per bucket -> utilization
	}
	f.CPU = cpu
	f.Calls = grow(run.Series.Calls.Rate())
	f.Reads = grow(run.Series.Reads.Rate())
	f.Writes = grow(run.Series.Writes.Rate())
	f.Seconds = make([]float64, len(f.Calls))
	for i := range f.Seconds {
		f.Seconds[i] = float64(i) * bucketSec
	}
	return f, nil
}

// Render prints the figure as CSV plus an ASCII strip chart.
func (f Figure) Render(w io.Writer, title string) {
	fmt.Fprintf(w, "%s (%s)\n", title, f.Run.Label())
	fmt.Fprintf(w, "time_s,cpu_util,calls_per_s,reads_per_s,writes_per_s\n")
	for i := range f.Seconds {
		fmt.Fprintf(w, "%.0f,%.3f,%.2f,%.2f,%.2f\n",
			f.Seconds[i], f.CPU[i], f.Calls[i], f.Reads[i], f.Writes[i])
	}
	stats.Chart(w, "shape (each row scaled to its own max):",
		fmt.Sprintf("0 .. %.0f seconds", f.Seconds[len(f.Seconds)-1]+f.Run.Result.Total.Seconds()*0),
		map[string][]float64{
			"cpu":    f.CPU,
			"calls":  f.Calls,
			"reads":  f.Reads,
			"writes": f.Writes,
		}, []string{"cpu", "calls", "reads", "writes"})
	fmt.Fprintf(w, "correlation(cpu, total calls) = %.3f\n", stats.Correlation(f.CPU, f.Calls))
	fmt.Fprintf(w, "correlation(cpu, reads)       = %.3f\n", stats.Correlation(f.CPU, f.Reads))
	fmt.Fprintf(w, "correlation(cpu, writes)      = %.3f\n", stats.Correlation(f.CPU, f.Writes))
}

// SortRun is one sort benchmark execution.
type SortRun struct {
	Proto     Proto
	InputSize int
	Update    bool // update daemon enabled
	Result    workload.SortResult
	Ops       *stats.Ops
	CPUUtil   float64
}

// RunSort executes the sort benchmark: the whole namespace (input,
// output, and /usr/tmp) lives on the file system under test, as in §5.3.
func RunSort(pr Proto, inputSize int, update bool, pm Params) (SortRun, error) {
	if !update {
		pm.SNFS.UpdateInterval = 0
		pm.LocalSyncInterval = 0
	}
	w := Build(pr, true, pm)
	cfg := workload.SortConfig{
		InputPath:  "/data/input.dat",
		TmpDir:     "/usr/tmp",
		OutputPath: "/data/output.dat",
		InputSize:  inputSize,
		MemBuffer:  pm.SortMemBuffer,
		MergeOrder: pm.SortMergeOrder,
		CPUPerKB:   pm.SortCPUPerKB,
		ChunkSize:  pm.TransferSize,
	}
	run := SortRun{Proto: pr, InputSize: inputSize, Update: update}
	err := w.Run(func(p *sim.Proc) error {
		if err := workload.SetupSort(p, w.NS, cfg); err != nil {
			return err
		}
		base := w.ClientOps().Clone()
		res, err := workload.RunSort(p, w.NS, cfg)
		if err != nil {
			return err
		}
		run.Result = res
		run.Ops = w.ClientOps().Diff(base)
		run.CPUUtil = w.ServerCPUUtilization()
		return nil
	})
	return run, err
}

// Table53 regenerates Table 5-3: sort elapsed times by input size and
// protocol.
func Table53(pm Params) (map[Proto][]SortRun, *stats.Table, error) {
	runs := map[Proto][]SortRun{}
	t := stats.NewTable("Table 5-3: Sort benchmark elapsed time (simulated seconds)",
		"Input", "Temp written", "local", "NFS", "SNFS")
	for _, size := range pm.SortSizes {
		var elapsed []string
		var temp int64
		for _, pr := range []Proto{Local, NFS, SNFS} {
			r, err := RunSort(pr, size, true, pm)
			if err != nil {
				return nil, nil, fmt.Errorf("sort %s %d: %w", pr, size, err)
			}
			runs[pr] = append(runs[pr], r)
			elapsed = append(elapsed, fmt.Sprintf("%.0f", r.Result.Elapsed.Seconds()))
			temp = r.Result.TempBytes
		}
		t.AddRow(fmt.Sprintf("%dk", size/1024), fmt.Sprintf("%dk", temp/1024),
			elapsed[0], elapsed[1], elapsed[2])
	}
	return runs, t, nil
}

// Table54 regenerates Table 5-4: RPC calls for the sort benchmark.
func Table54(pm Params) (*stats.Table, error) {
	t := stats.NewTable("Table 5-4: RPC calls for Sort benchmark",
		"Input", "Version", "reads", "writes", "others", "total")
	for _, size := range pm.SortSizes {
		for _, pr := range []Proto{NFS, SNFS} {
			r, err := RunSort(pr, size, true, pm)
			if err != nil {
				return nil, err
			}
			addOpsRow(t, fmt.Sprintf("%dk", size/1024), pr.String(), r.Ops)
		}
	}
	return t, nil
}

func addOpsRow(t *stats.Table, size, version string, ops *stats.Ops) {
	reads := ops.Get("read")
	writes := ops.Get("write")
	others := ops.Total() - reads - writes
	t.AddRow(size, version, fmt.Sprintf("%d", reads), fmt.Sprintf("%d", writes),
		fmt.Sprintf("%d", others), fmt.Sprintf("%d", ops.Total()))
}

// Table55 regenerates Table 5-5: sort elapsed times with the update
// daemon disabled (infinite write-delay).
func Table55(pm Params) (map[Proto][]SortRun, *stats.Table, error) {
	runs := map[Proto][]SortRun{}
	t := stats.NewTable("Table 5-5: Sort benchmark, infinite write-delay (simulated seconds)",
		"Input", "local", "NFS", "SNFS")
	for _, size := range pm.SortSizes {
		row := []string{fmt.Sprintf("%dk", size/1024)}
		for _, pr := range []Proto{Local, NFS, SNFS} {
			r, err := RunSort(pr, size, false, pm)
			if err != nil {
				return nil, nil, err
			}
			runs[pr] = append(runs[pr], r)
			row = append(row, fmt.Sprintf("%.0f", r.Result.Elapsed.Seconds()))
		}
		t.AddRow(row...)
	}
	return runs, t, nil
}

// Table56 regenerates Table 5-6: RPC calls for the largest sort with and
// without the update daemon.
func Table56(pm Params) (*stats.Table, error) {
	size := pm.SortSizes[len(pm.SortSizes)-1]
	t := stats.NewTable(fmt.Sprintf("Table 5-6: RPC calls for Sort benchmark, %dk input", size/1024),
		"Version", "update?", "reads", "writes", "others", "total")
	for _, pr := range []Proto{NFS, SNFS} {
		for _, update := range []bool{true, false} {
			r, err := RunSort(pr, size, update, pm)
			if err != nil {
				return nil, err
			}
			upd := "yes"
			if !update {
				upd = "no"
			}
			reads := r.Ops.Get("read")
			writes := r.Ops.Get("write")
			others := r.Ops.Total() - reads - writes
			t.AddRow(pr.String(), upd, fmt.Sprintf("%d", reads), fmt.Sprintf("%d", writes),
				fmt.Sprintf("%d", others), fmt.Sprintf("%d", r.Ops.Total()))
		}
	}
	return t, nil
}
