package harness

import (
	"fmt"
	"io"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/span"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/vfs"
)

// The scale experiment tests §2.3's claim that, although a stateless
// server can nominally "handle" any number of clients, the stateful
// server provides acceptable performance to more *simultaneously active*
// clients: its delayed write-back keeps data traffic off the server, so
// per-client server load is lower and the knee of the load curve moves
// out. (The paper cites Sprite supporting roughly four times as many
// active clients as NFS on identical hardware.)

// ScalePoint is the measurement for one client-count.
type ScalePoint struct {
	Clients int
	// Shards is the server count behind the point (1 for the single-
	// server experiment, M for the cluster sweep).
	Shards int
	// Elapsed is when the last client finished its workload.
	Elapsed sim.Duration
	// PerClientIdeal is the single-client elapsed time; Slowdown is
	// Elapsed relative to it (queueing at the server).
	Slowdown float64
	// ServerCPU and ServerDisk are utilizations over the run.
	ServerCPU  float64
	ServerDisk float64
	// TotalRPCs is the aggregate client-issued call count.
	TotalRPCs int64
	// Timeline holds the sampled metric series for the run (nil unless
	// Params.SampleInterval is set). Not part of the CSV rows; snfs-bench
	// writes it out as timeline.json.
	Timeline *tsdb.Timeline
	// Spans holds the critical-path breakdown and slow-op capture for
	// the run (nil unless Params.Spans is set). Not part of the CSV
	// rows; snfs-bench writes it out as spans-scale.json.
	Spans *span.Summary
}

// ScaleCSVHeader is the column row WriteScaleCSV emits.
const ScaleCSVHeader = "proto,shards,clients,elapsed_s,slowdown,server_cpu,server_disk,total_rpcs"

// WriteScaleCSV writes points as CSV rows under ScaleCSVHeader, labeled
// with the protocol (or configuration) name. Points from the single-
// server experiments carry Shards == 0 and are written as 1.
func WriteScaleCSV(w io.Writer, label string, pts []ScalePoint) error {
	if _, err := fmt.Fprintln(w, ScaleCSVHeader); err != nil {
		return err
	}
	return AppendScaleCSV(w, label, pts)
}

// AppendScaleCSV is WriteScaleCSV without the header row, for combining
// several sweeps into one file.
func AppendScaleCSV(w io.Writer, label string, pts []ScalePoint) error {
	for _, pt := range pts {
		shards := pt.Shards
		if shards == 0 {
			shards = 1
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.3f,%.3f,%.4f,%.4f,%d\n",
			label, shards, pt.Clients, pt.Elapsed.Seconds(), pt.Slowdown,
			pt.ServerCPU, pt.ServerDisk, pt.TotalRPCs); err != nil {
			return err
		}
	}
	return nil
}

// SustainableClients is the scale figure of merit: the largest measured
// client count whose slowdown relative to the single-client run stays
// within maxSlowdown (the knee of the load curve). Points must be in
// increasing client order with Slowdown filled in.
func SustainableClients(pts []ScalePoint, maxSlowdown float64) int {
	n := 0
	for _, pt := range pts {
		if pt.Slowdown > 0 && pt.Slowdown <= maxSlowdown {
			n = pt.Clients
		} else {
			break
		}
	}
	return n
}

// scaleWorkload is one client's activity: a compile-like loop of reading
// shared headers, writing objects, and churning short-lived temps, all
// under the client's own directory (no write sharing between clients —
// the common case the protocols are built for).
func scaleWorkload(p *sim.Proc, ns *vfs.Namespace, dir string, pm Params) error {
	chunk := pm.TransferSize
	if err := ns.Mkdir(p, dir, 0o755); err != nil {
		return err
	}
	if err := ns.WriteFile(p, dir+"/hdr.h", 8*1024, chunk); err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		if _, err := ns.ReadFile(p, dir+"/hdr.h", chunk); err != nil {
			return err
		}
		p.Sleep(500 * sim.Millisecond) // compute
		tmp := fmt.Sprintf("%s/t%d.s", dir, i)
		if err := ns.WriteFile(p, tmp, 24*1024, chunk); err != nil {
			return err
		}
		if _, err := ns.ReadFile(p, tmp, chunk); err != nil {
			return err
		}
		if err := ns.Remove(p, tmp); err != nil {
			return err
		}
		if err := ns.WriteFile(p, fmt.Sprintf("%s/o%d.o", dir, i), 8*1024, chunk); err != nil {
			return err
		}
	}
	return nil
}

// RunScale measures one (protocol, client-count) point.
func RunScale(pr Proto, nclients int, pm Params) (ScalePoint, error) {
	w := Build(pr, true, pm)
	pt := ScalePoint{Clients: nclients}

	// Namespaces for every client host: the world's own client plus
	// nclients-1 additions.
	namespaces := []*vfs.Namespace{w.NS}
	opsTotal := func() int64 { return w.ClientOps().Total() }
	extraOps := []func() int64{}
	for i := 1; i < nclients; i++ {
		name := simnet.Addr(fmt.Sprintf("client%d", i))
		switch pr {
		case NFS:
			c, ns := w.AddNFSClient(name, pm.NFS)
			namespaces = append(namespaces, ns)
			extraOps = append(extraOps, c.Ops().Total)
		case SNFS:
			c, ns := w.AddSNFSClient(name, pm.SNFS)
			namespaces = append(namespaces, ns)
			extraOps = append(extraOps, c.Ops().Total)
		default:
			return pt, fmt.Errorf("scale experiment needs a remote protocol")
		}
	}

	if pm.SampleInterval > 0 {
		// The whole run is the measurement window, so sampling starts
		// with the world: the timeline shows the ramp, the plateau where
		// every client is in its compile loop, and the drain.
		smp := w.StartSampler(w.EnableMetrics(), pm.SampleInterval, pm.SampleCapacity)
		pt.Timeline = smp.Timeline()
	}

	var elapsed sim.Duration
	err := w.Run(func(p *sim.Proc) error {
		wg := sim.NewWaitGroup(w.K, len(namespaces))
		errs := make([]error, len(namespaces))
		start := p.Now()
		for i, ns := range namespaces {
			i, ns := i, ns
			dir := fmt.Sprintf("/data/u%02d", i)
			w.K.Go(fmt.Sprintf("scale-client%d", i), func(cp *sim.Proc) {
				defer wg.Done()
				errs[i] = scaleWorkload(cp, ns, dir, pm)
			})
		}
		wg.Wait(p)
		elapsed = p.Now().Sub(start)
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		return pt, err
	}
	pt.Elapsed = elapsed
	pt.ServerCPU = w.ServerCPUUtilization()
	if w.SrvMedia != nil {
		pt.ServerDisk = w.SrvMedia.Disk().Utilization()
	}
	if w.Spans != nil {
		s := w.Spans.Summarize(elapsed, nclients)
		if w.SrvMedia != nil {
			// Ground truth for the disk share: the arm-busy gauge the
			// breakdown's disk rows should reconcile against.
			s.DiskBusySeconds = w.SrvMedia.Disk().BusyTime().Seconds()
		}
		pt.Spans = s
	}
	pt.TotalRPCs = opsTotal()
	for _, f := range extraOps {
		pt.TotalRPCs += f()
	}
	return pt, nil
}

// ScaleExperiment sweeps client counts for both protocols and renders
// the comparison.
func ScaleExperiment(pm Params, counts []int) (map[Proto][]ScalePoint, *stats.Table, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	out := map[Proto][]ScalePoint{}
	t := stats.NewTable("Scale: N active clients, one server (per-client compile-like workload)",
		"Clients", "NFS elapsed", "NFS srvCPU", "NFS srvDisk", "SNFS elapsed", "SNFS srvCPU", "SNFS srvDisk")
	base := map[Proto]float64{}
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, pr := range []Proto{NFS, SNFS} {
			// The NFS sweep runs with the unstable WRITE + COMMIT
			// pipeline and server write gathering armed: that is the
			// NFS-side answer to the disk-arm bottleneck. SNFS keeps
			// its measured configuration — its CLOSED-DIRTY delayed
			// write-back already keeps data traffic off the server,
			// and the extra COMMIT round trips only slow it down.
			ppm := pm
			ppm.UnstableWrites = pr == NFS
			pt, err := RunScale(pr, n, ppm)
			if err != nil {
				return nil, nil, fmt.Errorf("scale %s n=%d: %w", pr, n, err)
			}
			if n == counts[0] {
				base[pr] = pt.Elapsed.Seconds()
			}
			if base[pr] > 0 {
				pt.Slowdown = pt.Elapsed.Seconds() / base[pr]
			}
			out[pr] = append(out[pr], pt)
			row = append(row,
				fmt.Sprintf("%.1fs (x%.2f)", pt.Elapsed.Seconds(), pt.Slowdown),
				fmt.Sprintf("%.0f%%", pt.ServerCPU*100),
				fmt.Sprintf("%.0f%%", pt.ServerDisk*100))
		}
		t.AddRow(row...)
	}
	return out, t, nil
}
