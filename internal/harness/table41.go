package harness

import (
	"fmt"

	"spritelynfs/internal/core"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/stats"
)

// Table41 regenerates the paper's Table 4-1 (the SNFS server state
// transitions) mechanically, by driving a fresh state table into each
// starting state and applying each event to the real implementation.
// What prints is therefore the machine the code actually implements —
// any drift from the paper's table would show here.
func Table41() *stats.Table {
	t := stats.NewTable("Table 4-1: SNFS server state transitions (derived from the implementation)",
		"Current state", "Event", "Next state", "Cache?", "Callbacks")

	h := proto.Handle{FSID: 1, Ino: 1, Gen: 1}

	// Builders drive a fresh table into each starting state. Client
	// "A" is the incumbent; "B" (and "C") arrive later.
	builders := map[core.FileState]func() *core.Table{
		core.StateClosed: func() *core.Table {
			return core.NewTable(0)
		},
		core.StateClosedDirty: func() *core.Table {
			tab := core.NewTable(0)
			tab.Open(h, "A", true)
			tab.Close(h, "A", true)
			return tab
		},
		core.StateOneReader: func() *core.Table {
			tab := core.NewTable(0)
			tab.Open(h, "A", false)
			return tab
		},
		core.StateOneRdrDirty: func() *core.Table {
			tab := core.NewTable(0)
			tab.Open(h, "A", true)
			tab.Close(h, "A", true)
			tab.Open(h, "A", false)
			return tab
		},
		core.StateMultReaders: func() *core.Table {
			tab := core.NewTable(0)
			tab.Open(h, "A", false)
			tab.Open(h, "C", false)
			return tab
		},
		core.StateOneWriter: func() *core.Table {
			tab := core.NewTable(0)
			tab.Open(h, "A", true)
			return tab
		},
		core.StateWriteShared: func() *core.Table {
			tab := core.NewTable(0)
			tab.Open(h, "A", true)
			tab.Open(h, "C", false)
			return tab
		},
	}

	cbDesc := func(cbs []core.Callback) string {
		if len(cbs) == 0 {
			return "none"
		}
		out := ""
		for i, cb := range cbs {
			if i > 0 {
				out += "; "
			}
			switch {
			case cb.WriteBack && cb.Invalidate:
				out += fmt.Sprintf("writeback+invalidate %s", cb.Client)
			case cb.WriteBack:
				out += fmt.Sprintf("writeback %s", cb.Client)
			default:
				out += fmt.Sprintf("invalidate %s", cb.Client)
			}
		}
		return out
	}

	type event struct {
		desc  string
		apply func(tab *core.Table) (string, string) // returns cache?, callbacks
	}
	open := func(c core.ClientID, write bool) func(tab *core.Table) (string, string) {
		return func(tab *core.Table) (string, string) {
			res := tab.Open(h, c, write)
			return fmt.Sprintf("%v", res.CacheEnabled), cbDesc(res.Callbacks)
		}
	}
	closeEv := func(c core.ClientID, write bool) func(tab *core.Table) (string, string) {
		return func(tab *core.Table) (string, string) {
			tab.Close(h, c, write)
			return "-", "none"
		}
	}

	rows := []struct {
		state core.FileState
		ev    event
	}{
		{core.StateClosed, event{"open read (A)", open("A", false)}},
		{core.StateClosed, event{"open write (A)", open("A", true)}},
		{core.StateClosedDirty, event{"open read, same client (A)", open("A", false)}},
		{core.StateClosedDirty, event{"open write, same client (A)", open("A", true)}},
		{core.StateClosedDirty, event{"open read, other client (B)", open("B", false)}},
		{core.StateClosedDirty, event{"open write, other client (B)", open("B", true)}},
		{core.StateOneReader, event{"open read, other client (B)", open("B", false)}},
		{core.StateOneReader, event{"open write, same client (A)", open("A", true)}},
		{core.StateOneReader, event{"open write, other client (B)", open("B", true)}},
		{core.StateOneReader, event{"final close (A)", closeEv("A", false)}},
		{core.StateOneRdrDirty, event{"open read, other client (B)", open("B", false)}},
		{core.StateOneRdrDirty, event{"open write, same client (A)", open("A", true)}},
		{core.StateOneRdrDirty, event{"open write, other client (B)", open("B", true)}},
		{core.StateOneRdrDirty, event{"final close (A)", closeEv("A", false)}},
		{core.StateMultReaders, event{"open write, other client (B)", open("B", true)}},
		{core.StateMultReaders, event{"close, one reader remains (C)", closeEv("C", false)}},
		{core.StateOneWriter, event{"open read, other client (B)", open("B", false)}},
		{core.StateOneWriter, event{"open write, other client (B)", open("B", true)}},
		{core.StateOneWriter, event{"final close for write (A)", closeEv("A", true)}},
		{core.StateWriteShared, event{"open read, other client (B)", open("B", false)}},
		{core.StateWriteShared, event{"reader closes (C)", closeEv("C", false)}},
	}

	for _, r := range rows {
		tab := builders[r.state]()
		if got := tab.State(h); got != r.state {
			t.AddRow(r.state.String(), r.ev.desc, "BUILDER ERROR: "+got.String(), "", "")
			continue
		}
		cache, cbs := r.ev.apply(tab)
		t.AddRow(r.state.String(), r.ev.desc, tab.State(h).String(), cache, cbs)
	}

	// The special row the paper calls out: ONE-WRITER, final close for
	// write while the client still reads.
	tab := core.NewTable(0)
	tab.Open(h, "A", false)
	tab.Open(h, "A", true)
	tab.Close(h, "A", true)
	t.AddRow("ONE-WRITER", "final close for write, client still reading (A)",
		tab.State(h).String(), "-", "none, A recorded as last writer")

	return t
}
