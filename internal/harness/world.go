package harness

import (
	"fmt"
	"io"

	"spritelynfs/internal/audit"
	"spritelynfs/internal/client"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/localmount"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/span"
	"spritelynfs/internal/spanfs"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/vfs"
)

// World is one assembled testbed: a client host with a namespace of
// mounts, and (for the remote protocols) a server host across the
// simulated Ethernet.
type World struct {
	K  *sim.Kernel
	NS *vfs.Namespace

	Proto     Proto
	TmpRemote bool

	// Remote pieces (nil for Local).
	Net      *simnet.Network
	NFSSrv   *server.NFSServer
	SNFSSrv  *server.SNFSServer
	RFSSrv   *server.RFSServer
	NFSCli   *client.NFSClient
	SNFSCli  *client.SNFSClient
	RFSCli   *client.RFSClient
	SrvMedia *localfs.Media

	// LocalMedia is the client's local disk (holds /tmp when local,
	// and everything under the Local protocol).
	LocalMedia *localfs.Media
	LocalFS    *localmount.FS

	// Auditor is the protocol auditor (nil unless Params.Audit is set on
	// an SNFS world). Run fails when it has recorded violations.
	Auditor *audit.Auditor

	// Flight is the server's black-box event ring (nil unless
	// Params.FlightCapacity is set). With auditing armed and a
	// FlightSink configured, the first violation dumps it automatically.
	Flight *tsdb.FlightRecorder

	// Spans is the causal span recorder (nil unless Params.Spans is
	// set): one recorder shared by every host, so an operation's spans
	// assemble into a single cross-host tree.
	Spans *span.Recorder

	params Params
}

// spanMount wraps a to-be-mounted FS so every syscall through it roots a
// span (identity when spans are off).
func (w *World) spanMount(fs vfs.FS, host string) vfs.FS {
	return spanfs.WrapFS(w.Spans, host, fs)
}

// srvBase returns the running server's shared base, or nil.
func (w *World) srvBase() *server.Base {
	if w.NFSSrv != nil {
		return w.NFSSrv.Base
	}
	if w.SNFSSrv != nil {
		return w.SNFSSrv.Base
	}
	if w.RFSSrv != nil {
		return w.RFSSrv.Base
	}
	return nil
}

// ClientOps returns the client's RPC counters (empty for Local).
func (w *World) ClientOps() *stats.Ops {
	if w.NFSCli != nil {
		return w.NFSCli.Ops()
	}
	if w.SNFSCli != nil {
		return w.SNFSCli.Ops()
	}
	if w.RFSCli != nil {
		return w.RFSCli.Ops()
	}
	return stats.NewOps()
}

// EnableSeries starts recording the server time series for the figures.
func (w *World) EnableSeries(bucket sim.Duration) *server.Series {
	if b := w.srvBase(); b != nil {
		return b.EnableSeries(bucket)
	}
	return nil
}

// ServerCPUUtilization reports cumulative server CPU utilization.
func (w *World) ServerCPUUtilization() float64 {
	if b := w.srvBase(); b != nil {
		return b.CPU().Utilization()
	}
	return 0
}

// EnableTrace attaches one tracer to every component of the world (both
// endpoints, the server, its state table, and the client) and returns it.
func (w *World) EnableTrace(capacity int) *trace.Tracer {
	tr := trace.New(w.K.Now, capacity)
	if b := w.srvBase(); b != nil {
		b.SetTracer(tr)
		b.Endpoint().Tracer = tr
	}
	if w.SNFSSrv != nil {
		w.SNFSSrv.Table().Tracer = tr
	}
	if w.NFSCli != nil {
		w.NFSCli.SetTracer(tr)
		w.NFSCli.Endpoint().Tracer = tr
	}
	if w.SNFSCli != nil {
		w.SNFSCli.SetTracer(tr)
		w.SNFSCli.Endpoint().Tracer = tr
	}
	if w.RFSCli != nil {
		w.RFSCli.SetTracer(tr)
		w.RFSCli.Endpoint().Tracer = tr
	}
	return tr
}

// EnableMetrics attaches one metrics registry to every component of the
// world: both RPC endpoints record per-procedure latency histograms, the
// server exports CPU and (for SNFS) state-table gauges, and the client
// exports cache gauges. Call it at measurement start so setup traffic
// stays out of the distributions.
func (w *World) EnableMetrics() *metrics.Registry {
	r := metrics.New()
	if w.SNFSSrv != nil {
		w.SNFSSrv.EnableMetrics(r)
	} else if b := w.srvBase(); b != nil {
		b.EnableMetrics(r)
	}
	if w.NFSCli != nil {
		w.NFSCli.EnableMetrics(r)
	}
	if w.SNFSCli != nil {
		w.SNFSCli.EnableMetrics(r)
	}
	if w.RFSCli != nil {
		w.RFSCli.EnableMetrics(r)
	}
	// With spans armed, root-span latency histograms (with op-ID
	// exemplars) join the registry.
	w.Spans.EnableMetrics(r)
	return r
}

// InvalidateClientCache drops the remote client's block cache (to start
// a measurement cold). No-op for the Local protocol.
func (w *World) InvalidateClientCache() {
	if w.NFSCli != nil {
		w.NFSCli.Cache().InvalidateAll()
	}
	if w.SNFSCli != nil {
		w.SNFSCli.Cache().InvalidateAll()
	}
	if w.RFSCli != nil {
		w.RFSCli.Cache().InvalidateAll()
	}
}

// AddRFSClient attaches another RFS client host to a remote world.
func (w *World) AddRFSClient(name simnet.Addr) (*client.RFSClient, *vfs.Namespace) {
	ep := rpc.NewEndpoint(w.K, w.Net, name, rpc.Options{Workers: 4})
	cfg := client.Config{
		Server:     "server",
		Root:       w.rootHandle(),
		BlockSize:  w.params.TransferSize,
		CacheBytes: w.params.ClientCacheBytes,
		ReadAhead:  true,
	}
	c := client.NewRFS(w.K, ep, cfg)
	ep.Spans = w.Spans
	c.SetSpans(w.Spans)
	ns := &vfs.Namespace{}
	ns.Mount("/", w.spanMount(c, string(name)))
	return c, ns
}

// ServerDiskStats reports the server disk counters.
func (w *World) ServerDiskStats() disk.Stats {
	if w.SrvMedia != nil {
		return w.SrvMedia.Disk().Stats()
	}
	return disk.Stats{}
}

// mkdirs pre-creates a path chain on a store (setup outside the timed
// run).
func mkdirs(st *localfs.Store, paths ...string) {
	for _, path := range paths {
		cur := st.Root()
		for _, comp := range vfs.SplitPath(path) {
			a, err := st.Lookup(cur, comp)
			if err != nil {
				a, err = st.Mkdir(cur, comp, 0o755)
				if err != nil {
					panic(fmt.Sprintf("harness mkdirs %s: %v", path, err))
				}
			}
			cur = a.Ino
		}
	}
}

// BuildOptions are per-world overrides for ablations.
type BuildOptions struct {
	// ReadAhead overrides the client read-ahead policy when non-nil.
	ReadAhead *bool
	// Server overrides the SNFS server options (hybrid mode, table
	// limit, grace period).
	Server *server.SNFSOptions
	// NameCacheServer enables the server side of the §7 name-cache
	// protocol (the client side is pm.SNFS.NameCache).
	NameCacheServer bool
}

// Build assembles a world for the given protocol and /tmp placement.
func Build(pr Proto, tmpRemote bool, pm Params) *World {
	return BuildOpt(pr, tmpRemote, pm, BuildOptions{})
}

// BuildOpt is Build with ablation overrides.
func BuildOpt(pr Proto, tmpRemote bool, pm Params, opt BuildOptions) *World {
	k := sim.NewKernel(pm.Seed)
	w := &World{K: k, NS: &vfs.Namespace{}, Proto: pr, TmpRemote: tmpRemote, params: pm}
	if pm.Spans {
		w.Spans = span.NewRecorder(k.Now, pm.SpanTopK)
	}

	// The client's local disk always exists (it holds /tmp in the
	// tmp-local configurations and everything under Local).
	lst := localfs.NewStore(k.Now, pm.ServerBlockSize)
	ld := disk.New(k, "client-disk", pm.ClientDisk)
	ld.Spans = w.Spans
	w.LocalMedia = localfs.NewMedia(lst, ld, 99, pm.ClientCacheBytes)
	w.LocalMedia.MetaSync = true
	mkdirs(lst, "data", "tmp", "usr/tmp")
	w.LocalFS = localmount.New(k, w.LocalMedia)

	if pr == Local {
		w.NS.Mount("/", w.spanMount(w.LocalFS, "local"))
	} else {
		w.Net = simnet.New(k, pm.Net)
		sep := rpc.NewEndpoint(k, w.Net, "server", rpc.Options{Workers: pm.ServerWorkers})
		sep.Spans = w.Spans
		sst := localfs.NewStore(k.Now, pm.ServerBlockSize)
		sd := disk.New(k, "server-disk", pm.ServerDisk)
		sd.Spans = w.Spans
		w.SrvMedia = localfs.NewMedia(sst, sd, pm.Server.FSID, pm.ServerCacheBytes)
		// The write-gathering configuration group-commits synchronous
		// flushes: concurrent COMMIT runs and structural updates share
		// sorted arm sweeps instead of one random op each.
		w.SrvMedia.Gather = pm.UnstableWrites
		mkdirs(sst, "data", "tmp", "usr/tmp")

		cep := rpc.NewEndpoint(k, w.Net, "client", rpc.Options{Workers: 4})
		cep.Spans = w.Spans
		readAhead := true
		if opt.ReadAhead != nil {
			readAhead = *opt.ReadAhead
		}
		switch pr {
		case NFS:
			w.NFSSrv = server.NewNFS(k, sep, w.SrvMedia, pm.Server)
			cfg := client.Config{
				Server:     "server",
				Root:       w.NFSSrv.RootHandle(),
				BlockSize:  pm.TransferSize,
				CacheBytes: pm.ClientCacheBytes,
				ReadAhead:  readAhead,

				UnstableWrites: pm.UnstableWrites,
				AttrPiggyback:  pm.AttrPiggyback,
				LookupPath:     pm.LookupPath,
			}
			w.NFSCli = client.NewNFS(k, cep, cfg, pm.NFS)
			w.NFSCli.SetSpans(w.Spans)
			w.NS.Mount("/", w.spanMount(w.NFSCli, "client"))
		case RFS:
			w.RFSSrv = server.NewRFS(k, sep, w.SrvMedia, pm.Server)
			cfg := client.Config{
				Server:     "server",
				Root:       w.RFSSrv.RootHandle(),
				BlockSize:  pm.TransferSize,
				CacheBytes: pm.ClientCacheBytes,
				ReadAhead:  readAhead,
			}
			w.RFSCli = client.NewRFS(k, cep, cfg)
			w.RFSCli.SetSpans(w.Spans)
			w.NS.Mount("/", w.spanMount(w.RFSCli, "client"))
		case SNFS:
			srvOpts := server.SNFSOptions{}
			if opt.Server != nil {
				srvOpts = *opt.Server
			}
			if opt.NameCacheServer {
				srvOpts.NameCacheProtocol = true
			}
			w.SNFSSrv = server.NewSNFS(k, sep, w.SrvMedia, pm.Server, srvOpts)
			cfg := client.Config{
				Server:     "server",
				Root:       w.SNFSSrv.RootHandle(),
				BlockSize:  pm.TransferSize,
				CacheBytes: pm.ClientCacheBytes,
				ReadAhead:  readAhead,

				UnstableWrites: pm.UnstableWrites,
				AttrPiggyback:  pm.AttrPiggyback,
				LookupPath:     pm.LookupPath,
			}
			w.SNFSCli = client.NewSNFS(k, cep, cfg, pm.SNFS)
			w.SNFSCli.SetSpans(w.Spans)
			if pm.Audit {
				w.Auditor = audit.New(k, pm.AuditSink)
				w.SNFSSrv.SetAuditor(w.Auditor)
				w.NS.Mount("/", w.spanMount(w.Auditor.WrapFS(w.SNFSCli), "client"))
			} else {
				w.NS.Mount("/", w.spanMount(w.SNFSCli, "client"))
			}
		}
		if b := w.srvBase(); b != nil && w.Spans != nil {
			b.SetSpans(w.Spans)
		}
		if pm.FlightCapacity > 0 {
			w.Flight = tsdb.NewFlightRecorder(k.Now, pm.FlightCapacity)
			if b := w.srvBase(); b != nil {
				b.SetFlight(w.Flight)
			}
			if w.Auditor != nil && pm.FlightSink != nil {
				wireFlightDump(w.Auditor, w.Flight, pm.FlightSink)
			}
		}
		if !tmpRemote {
			w.NS.Mount("/tmp", w.spanMount(w.LocalFS, "local"))
			w.NS.Mount("/usr/tmp", w.spanMount(w.LocalFS, "local"))
		}
	}

	// The local update daemon (/etc/update): flushes the local disk's
	// delayed writes. The SNFS client runs its own (per pm.SNFS).
	if pm.LocalSyncInterval > 0 {
		k.Go("etc-update", func(p *sim.Proc) {
			for {
				p.Sleep(pm.LocalSyncInterval)
				w.LocalFS.SyncAll(p)
			}
		})
	}
	return w
}

// rootHandle returns the export root of whichever server runs.
func (w *World) rootHandle() proto.Handle {
	if w.NFSSrv != nil {
		return w.NFSSrv.RootHandle()
	}
	if w.SNFSSrv != nil {
		return w.SNFSSrv.RootHandle()
	}
	if w.RFSSrv != nil {
		return w.RFSSrv.RootHandle()
	}
	return proto.Handle{}
}

// AddNFSClient attaches another NFS client host to a remote world and
// returns it with a namespace rooted at the export.
func (w *World) AddNFSClient(name simnet.Addr, opts client.NFSOptions) (*client.NFSClient, *vfs.Namespace) {
	ep := rpc.NewEndpoint(w.K, w.Net, name, rpc.Options{Workers: 4})
	cfg := client.Config{
		Server:     "server",
		Root:       w.rootHandle(),
		BlockSize:  w.params.TransferSize,
		CacheBytes: w.params.ClientCacheBytes,
		ReadAhead:  true,

		UnstableWrites: w.params.UnstableWrites,
		AttrPiggyback:  w.params.AttrPiggyback,
		LookupPath:     w.params.LookupPath,
	}
	c := client.NewNFS(w.K, ep, cfg, opts)
	ep.Spans = w.Spans
	c.SetSpans(w.Spans)
	ns := &vfs.Namespace{}
	ns.Mount("/", w.spanMount(c, string(name)))
	return c, ns
}

// AddSNFSClient attaches another SNFS client host to a remote world and
// returns it with a namespace rooted at the export.
func (w *World) AddSNFSClient(name simnet.Addr, opts client.SNFSOptions) (*client.SNFSClient, *vfs.Namespace) {
	ep := rpc.NewEndpoint(w.K, w.Net, name, rpc.Options{Workers: 4})
	cfg := client.Config{
		Server:     "server",
		Root:       w.rootHandle(),
		BlockSize:  w.params.TransferSize,
		CacheBytes: w.params.ClientCacheBytes,
		ReadAhead:  true,

		UnstableWrites: w.params.UnstableWrites,
		AttrPiggyback:  w.params.AttrPiggyback,
		LookupPath:     w.params.LookupPath,
	}
	c := client.NewSNFS(w.K, ep, cfg, opts)
	ep.Spans = w.Spans
	c.SetSpans(w.Spans)
	ns := &vfs.Namespace{}
	if w.Auditor != nil {
		ns.Mount("/", w.spanMount(w.Auditor.WrapFS(c), string(name)))
	} else {
		ns.Mount("/", w.spanMount(c, string(name)))
	}
	return c, ns
}

// wireFlightDump arranges for the first audit violation to dump the
// flight recorder to sink, headed by the offending operation ID. The
// auditor holds its lock during the callback, so the dump only reads
// the recorder and writes the sink — it never reenters the auditor.
func wireFlightDump(a *audit.Auditor, fr *tsdb.FlightRecorder, sink io.Writer) {
	dumped := false
	a.OnViolation = func(v audit.Violation) {
		if dumped {
			return
		}
		dumped = true
		fr.WriteText(sink, fmt.Sprintf("audit violation op=%d %s: %s", v.Op, v.Invariant, v.Detail))
	}
}

// SamplerSeriesBudget caps the timeline of every harness-started
// sampler. A full single-world registry is a few hundred series; the
// budget only bites if someone registers per-client labeled series at
// fleet scale, which is exactly the mistake it exists to catch (the
// drop count surfaces in timeline.json as dropped_series).
const SamplerSeriesBudget = 2048

// StartSampler arms the time-series sampler on a running world: reg is
// sampled on the sim clock every interval (for the life of the world)
// into a timeline with the given per-series capacity. Call it with the
// registry EnableMetrics returned, at measurement start.
func (w *World) StartSampler(reg *metrics.Registry, interval sim.Duration, capacity int) *tsdb.Sampler {
	smp := tsdb.NewSampler(capacity)
	smp.LimitSeries(SamplerSeriesBudget)
	smp.Watch("", reg)
	w.K.Go("tsdb-sampler", func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			smp.Sample(p.Now())
		}
	})
	return smp
}

// Run executes fn as the main workload process and stops the world when
// it returns, reporting any error fn produced. With auditing armed, any
// invariant violation the auditor recorded fails the run.
func (w *World) Run(fn func(p *sim.Proc) error) error {
	var err error
	w.K.Go("workload", func(p *sim.Proc) {
		defer w.K.Stop()
		err = fn(p)
	})
	w.K.Run()
	if err == nil {
		err = w.Auditor.Err()
	}
	return err
}

// traceState and traceCallback re-export the kinds used in tests without
// making the harness API depend on trace's enum directly.
func traceState() trace.Kind    { return trace.State }
func traceCallback() trace.Kind { return trace.Callback }
