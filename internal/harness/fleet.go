package harness

import (
	"fmt"

	"spritelynfs/internal/client"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/vfs"
)

// FleetOptions sizes a fleet of lightweight client stacks.
type FleetOptions struct {
	// Proto selects the client protocol (NFS or SNFS).
	Proto Proto
	// Clients is the fleet size.
	Clients int
	// CacheBytes is the per-client block cache (0 = 256 KiB — a fleet
	// client models a lightly-provisioned workstation, not the 16 MB
	// measurement client, and 4,000 of those must fit in one process).
	CacheBytes int64
	// ReadAhead enables the one-block read-ahead policy. Off by default:
	// each prefetch is a transient process, and a scenario's offered
	// load, not per-client prefetch concurrency, is what a fleet run
	// measures.
	ReadAhead bool
	// SyncInterval, when nonzero on an SNFS fleet, drives delayed-write
	// flushing from one shared staggered sweep: client i's SyncPass runs
	// at phase i/N of each interval, on a pooled executor process,
	// instead of each client parking its own update-daemon process.
	SyncInterval sim.Duration
	// Audit wraps every fleet client in the world's protocol auditor
	// (requires the world to have been built with Params.Audit). Meant
	// for small-N smoke runs; the auditor's ledger is global, so a
	// 4,000-client run with auditing on measures the auditor.
	Audit bool
}

func (o *FleetOptions) fill() {
	if o.Clients == 0 {
		o.Clients = 1
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 10
	}
}

// FleetClient is one lightweight client stack: an event-mode RPC
// endpoint (zero parked goroutines), a small-cache protocol client with
// every per-client daemon disabled, and a namespace rooted at the
// export. The stack's steady-state cost is memory only; goroutines are
// borrowed from the fleet's shared executor for exactly the duration of
// each blocking operation.
type FleetClient struct {
	Name simnet.Addr
	NS   *vfs.Namespace
	NFS  *client.NFSClient  // set when Proto == NFS
	SNFS *client.SNFSClient // set when Proto == SNFS
}

// base returns the protocol-independent client machinery.
func (fc *FleetClient) base() *client.Base {
	if fc.NFS != nil {
		return fc.NFS.Base
	}
	return fc.SNFS.Base
}

// Fleet is a World scaled out: one server and network shared by N
// lightweight client stacks. Where World models the paper's measurement
// testbed (one fully-featured client), Fleet models the paper's closing
// concern — what happens to a cache-consistency protocol when the
// client population grows by orders of magnitude.
type Fleet struct {
	W *World
	// Exec is the shared process pool servicing every client's blocking
	// work: incoming callback RPCs, scenario file operations, and the
	// staggered sync sweep. Its Spawned() is the fleet's whole
	// goroutine footprint.
	Exec    *sim.Executor
	Clients []*FleetClient
	opts    FleetOptions
}

// NewFleet attaches a fleet of opt.Clients light client stacks to an
// already-built remote world. The world's own measurement client is left
// untouched (and typically unused).
func NewFleet(w *World, opt FleetOptions) *Fleet {
	opt.fill()
	f := &Fleet{
		W:       w,
		Exec:    sim.NewExecutor(w.K, "fleet"),
		Clients: make([]*FleetClient, 0, opt.Clients),
		opts:    opt,
	}
	root := w.rootHandle()
	for i := 0; i < opt.Clients; i++ {
		name := simnet.Addr(fmt.Sprintf("c%04d", i))
		ep := rpc.NewEndpoint(w.K, w.Net, name, rpc.Options{Exec: f.Exec})
		ep.Spans = w.Spans
		cfg := client.Config{
			Server:     "server",
			Root:       root,
			BlockSize:  w.params.TransferSize,
			CacheBytes: opt.CacheBytes,
			ReadAhead:  opt.ReadAhead,

			UnstableWrites: w.params.UnstableWrites,
			AttrPiggyback:  w.params.AttrPiggyback,
			LookupPath:     w.params.LookupPath,
		}
		fc := &FleetClient{Name: name, NS: &vfs.Namespace{}}
		var fs vfs.FS
		switch opt.Proto {
		case SNFS:
			// Every per-client daemon stays off: delayed writes are
			// flushed by the shared sweep below, and a fleet run never
			// exercises crash recovery per client.
			so := w.params.SNFS
			so.UpdateInterval = 0
			so.KeepaliveInterval = 0
			fc.SNFS = client.NewSNFS(w.K, ep, cfg, so)
			fc.SNFS.SetSpans(w.Spans)
			fs = fc.SNFS
			if opt.Audit && w.Auditor != nil {
				fs = w.Auditor.WrapFS(fc.SNFS)
			}
		default:
			fc.NFS = client.NewNFS(w.K, ep, cfg, w.params.NFS)
			fc.NFS.SetSpans(w.Spans)
			fs = fc.NFS
		}
		fc.NS.Mount("/", w.spanMount(fs, string(name)))
		f.Clients = append(f.Clients, fc)
	}
	if opt.Proto == SNFS && opt.SyncInterval > 0 {
		f.startSyncSweep(opt.SyncInterval)
	}
	return f
}

// startSyncSweep schedules each SNFS client's delayed-write flush as a
// recurring event at phase i/N of the interval — the whole fleet's
// update-daemon duty carried by timer events and pooled processes, not
// N parked goroutines, and staggered so the flush load spreads across
// the interval instead of arriving as a thundering herd.
func (f *Fleet) startSyncSweep(interval sim.Duration) {
	n := len(f.Clients)
	for i, fc := range f.Clients {
		c := fc.SNFS
		offset := sim.Duration(int64(interval) * int64(i) / int64(n))
		var pass func()
		pass = func() {
			f.Exec.Submit(0, func(p *sim.Proc) { c.SyncPass(p) }, func() {
				f.W.K.After(interval, pass)
			})
		}
		f.W.K.After(offset+interval, pass)
	}
}

// Client returns fleet member i.
func (f *Fleet) Client(i int) *FleetClient { return f.Clients[i] }

// Size returns the fleet population.
func (f *Fleet) Size() int { return len(f.Clients) }

// FleetStats aggregates the fleet's client-side counters.
type FleetStats struct {
	CallsSent   int64
	Retransmits int64
	Timeouts    int64
	CacheBlocks int64
	DirtyBlocks int64
	CacheHits   int64
	CacheMisses int64
}

// Stats sums counters across the fleet (O(N) compute, O(1) series).
func (f *Fleet) Stats() FleetStats {
	var s FleetStats
	for _, fc := range f.Clients {
		b := fc.base()
		es := b.Endpoint().Stats()
		s.CallsSent += es.CallsSent
		s.Retransmits += es.Retransmits
		s.Timeouts += es.Timeouts
		cs := b.Cache().Stats()
		s.CacheBlocks += int64(b.Cache().Len())
		s.DirtyBlocks += int64(b.Cache().DirtyCount())
		s.CacheHits += cs.Hits
		s.CacheMisses += cs.Misses
	}
	return s
}

// EnableMetrics registers the fleet's aggregate gauges on r. Unlike
// World.EnableMetrics — which exports ~15 host-labeled series per client
// and per-procedure histograms per endpoint — the fleet's cardinality is
// constant in N: each gauge sums across clients at sample time. A
// 4,000-client fleet adds the same handful of series as a 4-client one.
func (f *Fleet) EnableMetrics(r *metrics.Registry) {
	r.GaugeFunc("snfs_fleet_clients",
		func() float64 { return float64(len(f.Clients)) })
	r.GaugeFunc("snfs_fleet_exec_workers",
		func() float64 { return float64(f.Exec.Spawned()) })
	r.GaugeFunc("snfs_fleet_exec_active",
		func() float64 { return float64(f.Exec.Active()) })
	r.GaugeFunc("snfs_fleet_calls_sent_total",
		func() float64 { return float64(f.Stats().CallsSent) })
	r.GaugeFunc("snfs_fleet_retransmits_total",
		func() float64 { return float64(f.Stats().Retransmits) })
	r.GaugeFunc("snfs_fleet_cache_blocks",
		func() float64 { return float64(f.Stats().CacheBlocks) })
	r.GaugeFunc("snfs_fleet_dirty_blocks",
		func() float64 { return float64(f.Stats().DirtyBlocks) })
	r.GaugeFunc("snfs_fleet_cache_hits_total",
		func() float64 { return float64(f.Stats().CacheHits) })
	r.GaugeFunc("snfs_fleet_cache_misses_total",
		func() float64 { return float64(f.Stats().CacheMisses) })
}

// SyncAllClients flushes every client's delayed writes and (for SNFS)
// sends owed closes — end-of-run settlement so a scenario's dirty data
// reaches the server before the world stops.
func (f *Fleet) SyncAllClients(p *sim.Proc) {
	for _, fc := range f.Clients {
		if fc.SNFS != nil {
			fc.SNFS.SyncAll(p)
		}
		if fc.NFS != nil {
			fc.NFS.SyncAll(p)
		}
	}
}

// BuildFleet assembles a remote world for pr (its built-in measurement
// client idled: daemons off) and attaches a fleet to it.
func BuildFleet(pr Proto, pm Params, opt FleetOptions) *Fleet {
	// The world's own client is not part of the fleet; silence its
	// periodic daemons so fleet runs schedule no work for it.
	pm.SNFS.UpdateInterval = 0
	pm.SNFS.KeepaliveInterval = 0
	pm.LocalSyncInterval = 0
	opt.Proto = pr
	w := Build(pr, true, pm)
	return NewFleet(w, opt)
}
