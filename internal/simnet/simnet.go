// Package simnet models the network joining the simulated hosts: a single
// shared link (a 1989-vintage 10 Mbit/s Ethernet in the calibrated
// configuration) with propagation delay, serialization by bandwidth, and
// optional deterministic message loss for exercising RPC retransmission.
package simnet

import (
	"fmt"

	"spritelynfs/internal/sim"
)

// Addr identifies a host endpoint on the network.
type Addr string

// Message is a datagram in flight or delivered to a port.
type Message struct {
	From    Addr
	To      Addr
	Payload []byte
}

// Config holds the network cost model.
type Config struct {
	// PropDelay is the fixed per-message latency (propagation plus
	// protocol stack overhead at both ends).
	PropDelay sim.Duration
	// BytesPerSec is the link bandwidth; transmissions serialize on the
	// shared link at this rate. Zero means infinite bandwidth.
	BytesPerSec int64
	// DropEvery, if > 0, drops every Nth message (deterministic fault
	// injection for retransmission tests).
	DropEvery int64
	// LossProb, if > 0, drops each message independently with this
	// probability, drawn from the kernel's seeded RNG — a statistical
	// fault model beside DropEvery's deterministic one. The RNG is only
	// consulted when the probability is nonzero, so default
	// configurations consume no draws and stay schedule-identical.
	LossProb float64
	// DupProb, if > 0, delivers each (undropped) message a second time,
	// with the same seeded-draw rule. Duplicate requests exercise the
	// receiver's duplicate cache; duplicate replies are discarded by XID
	// matching.
	DupProb float64
}

// Stats reports aggregate network activity.
type Stats struct {
	Sent       int64
	Delivered  int64
	Dropped    int64
	Duplicated int64
	Cut        int64 // dropped by a one-way partition
	Bytes      int64
}

// cutKey identifies one direction of a host pair.
type cutKey struct{ from, to Addr }

// Network is the simulated shared medium.
type Network struct {
	k     *sim.Kernel
	cfg   Config
	link  *sim.Resource
	ports map[Addr]*Port
	cuts  map[cutKey]bool
	stats Stats
}

// New returns a network on kernel k with the given cost model.
func New(k *sim.Kernel, cfg Config) *Network {
	return &Network{
		k:     k,
		cfg:   cfg,
		link:  sim.NewResource(k, "net"),
		ports: make(map[Addr]*Port),
		cuts:  make(map[cutKey]bool),
	}
}

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats { return n.stats }

// LinkUtilization reports the fraction of elapsed time the link was busy.
func (n *Network) LinkUtilization() float64 { return n.link.Utilization() }

// Port is a host's receive endpoint.
type Port struct {
	addr    Addr
	net     *Network
	q       *sim.Queue[Message]
	handler func(Message)
}

// Listen claims addr and returns its receive port. It panics if the
// address is already taken (a configuration error, not a runtime one).
func (n *Network) Listen(addr Addr) *Port {
	if _, ok := n.ports[addr]; ok {
		panic(fmt.Sprintf("simnet: address %q already in use", addr))
	}
	p := &Port{addr: addr, net: n, q: sim.NewQueue[Message](n.k)}
	n.ports[addr] = p
	return p
}

// Unlisten releases addr; in-flight messages to it are dropped on arrival.
func (n *Network) Unlisten(addr Addr) { delete(n.ports, addr) }

// Send transmits payload from from to to. The sender does not block: the
// transmission occupies the shared link for its serialization time and the
// message arrives PropDelay after the transmission completes. Messages to
// unclaimed addresses are silently dropped, like datagrams to a dead host.
func (n *Network) Send(from, to Addr, payload []byte) {
	n.stats.Sent++
	n.stats.Bytes += int64(len(payload))
	if n.cfg.DropEvery > 0 && n.stats.Sent%n.cfg.DropEvery == 0 {
		n.stats.Dropped++
		return
	}
	if n.cfg.LossProb > 0 && n.k.Rand().Float64() < n.cfg.LossProb {
		n.stats.Dropped++
		return
	}
	if len(n.cuts) > 0 && n.cuts[cutKey{from, to}] {
		// One-way partition: this direction is cut; the reverse
		// direction is unaffected unless cut separately.
		n.stats.Dropped++
		n.stats.Cut++
		return
	}
	n.transmit(Message{From: from, To: to, Payload: payload})
	if n.cfg.DupProb > 0 && n.k.Rand().Float64() < n.cfg.DupProb {
		// The duplicate serializes on the link like any transmission
		// and so arrives strictly after the original.
		n.stats.Duplicated++
		n.transmit(Message{From: from, To: to, Payload: payload})
	}
}

// transmit occupies the link for the message's serialization time and
// schedules its delivery.
func (n *Network) transmit(msg Message) {
	var xmit sim.Duration
	if n.cfg.BytesPerSec > 0 {
		xmit = sim.Duration(int64(len(msg.Payload)) * int64(sim.Second) / n.cfg.BytesPerSec)
	}
	n.link.UseAsync(xmit, func() {
		n.k.After(n.cfg.PropDelay, func() {
			port, ok := n.ports[msg.To]
			if !ok {
				n.stats.Dropped++
				return
			}
			n.stats.Delivered++
			if port.handler != nil {
				port.handler(msg)
				return
			}
			port.q.Put(msg)
		})
	})
}

// Cut severs the from→to direction: messages from `from` to `to` are
// dropped until Heal. The reverse direction keeps delivering — the
// asymmetric failure that makes `to` look dead to `from` while `to`
// still hears everyone (the case a viewservice must not mistake for a
// symmetric crash). Cutting an already-cut direction is a no-op.
func (n *Network) Cut(from, to Addr) { n.cuts[cutKey{from, to}] = true }

// Heal restores the from→to direction. Healing an uncut direction is a
// no-op.
func (n *Network) Heal(from, to Addr) { delete(n.cuts, cutKey{from, to}) }

// CutFor cuts from→to and schedules the heal after d plus a jitter drawn
// from the kernel's seeded RNG in [0, jitter) — deterministic for a
// fixed seed, varied across seeds. A zero jitter heals at exactly d.
func (n *Network) CutFor(from, to Addr, d, jitter sim.Duration) {
	n.Cut(from, to)
	if jitter > 0 {
		d += sim.Duration(n.k.Rand().Int63n(int64(jitter)))
	}
	n.k.After(d, func() { n.Heal(from, to) })
}

// CutBoth severs both directions between a and b (a symmetric partition
// built from the one-way primitive).
func (n *Network) CutBoth(a, b Addr) {
	n.Cut(a, b)
	n.Cut(b, a)
}

// HealBoth restores both directions between a and b.
func (n *Network) HealBoth(a, b Addr) {
	n.Heal(a, b)
	n.Heal(b, a)
}

// Addr returns the port's address.
func (p *Port) Addr() Addr { return p.addr }

// Recv blocks proc until a message arrives and returns it.
func (p *Port) Recv(proc *sim.Proc) Message { return p.q.Get(proc) }

// Pending reports queued, undelivered-to-consumer messages.
func (p *Port) Pending() int { return p.q.Len() }

// SetHandler switches the port to event delivery: each arriving message
// is handed to fn at its delivery instant, in scheduler context, instead
// of being queued for a Recv-ing process. fn must not block; receivers
// that need blocking service hand the message off (e.g. to a
// sim.Executor). Event delivery is what lets a fleet-scale world run one
// RPC endpoint per client without one parked dispatcher goroutine per
// client.
func (p *Port) SetHandler(fn func(Message)) { p.handler = fn }
