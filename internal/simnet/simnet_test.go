package simnet

import (
	"testing"

	"spritelynfs/internal/sim"
)

func TestDeliveryLatency(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{PropDelay: sim.Millisecond, BytesPerSec: 1000_000})
	port := n.Listen("b")
	var arrived sim.Time
	k.Go("recv", func(p *sim.Proc) {
		m := port.Recv(p)
		arrived = p.Now()
		if string(m.Payload) != "hi" || m.From != "a" || m.To != "b" {
			t.Errorf("bad message %+v", m)
		}
	})
	k.Go("send", func(p *sim.Proc) {
		n.Send("a", "b", []byte("hi"))
	})
	k.Run()
	// 2 bytes at 1 MB/s = 2us transmission + 1ms propagation.
	want := sim.Time(sim.Millisecond + 2*sim.Microsecond)
	if arrived != want {
		t.Errorf("arrived at %v, want %v", arrived, want)
	}
}

func TestLinkSerialization(t *testing.T) {
	k := sim.NewKernel(1)
	// 1000 bytes/sec: a 1000-byte message takes 1s on the wire.
	n := New(k, Config{BytesPerSec: 1000})
	port := n.Listen("b")
	var arrivals []sim.Time
	k.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			port.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	k.Go("send", func(p *sim.Proc) {
		n.Send("a", "b", make([]byte, 1000))
		n.Send("a", "b", make([]byte, 1000)) // must queue behind the first
	})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	if arrivals[0] != sim.Time(sim.Second) || arrivals[1] != sim.Time(2*sim.Second) {
		t.Errorf("arrivals %v, want [1s 2s]", arrivals)
	}
	if u := n.LinkUtilization(); u < 0.99 {
		t.Errorf("link utilization %f, want ~1", u)
	}
}

func TestSendToUnknownAddressDropped(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{})
	k.Go("send", func(p *sim.Proc) {
		n.Send("a", "nowhere", []byte("x"))
	})
	k.Run()
	s := n.Stats()
	if s.Dropped != 1 || s.Delivered != 0 {
		t.Errorf("stats %+v, want 1 dropped 0 delivered", s)
	}
}

func TestDropEveryInjectsLoss(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{DropEvery: 3})
	port := n.Listen("b")
	received := 0
	k.Go("recv", func(p *sim.Proc) {
		for {
			port.Recv(p)
			received++
		}
	})
	k.Go("send", func(p *sim.Proc) {
		for i := 0; i < 9; i++ {
			n.Send("a", "b", []byte("x"))
		}
		p.Sleep(sim.Second)
		k.Stop()
	})
	k.Run()
	if received != 6 {
		t.Errorf("received %d of 9 with every-3rd dropped, want 6", received)
	}
	if n.Stats().Dropped != 3 {
		t.Errorf("dropped %d, want 3", n.Stats().Dropped)
	}
}

// TestProbabilisticLossAndDup: seeded LossProb/DupProb drop and duplicate
// roughly their share of traffic, duplicates actually arrive, and the
// counters stay consistent (delivered = sent − dropped + duplicated).
func TestProbabilisticLossAndDup(t *testing.T) {
	k := sim.NewKernel(42)
	n := New(k, Config{LossProb: 0.2, DupProb: 0.1})
	port := n.Listen("b")
	received := 0
	k.Go("recv", func(p *sim.Proc) {
		for {
			port.Recv(p)
			received++
		}
	})
	k.Go("send", func(p *sim.Proc) {
		for i := 0; i < 2000; i++ {
			n.Send("a", "b", []byte("x"))
		}
		p.Sleep(sim.Second)
		k.Stop()
	})
	k.Run()
	s := n.Stats()
	if s.Dropped < 300 || s.Dropped > 500 {
		t.Errorf("dropped %d of 2000 at p=0.2, want ~400", s.Dropped)
	}
	if s.Duplicated < 100 || s.Duplicated > 230 {
		t.Errorf("duplicated %d of ~1600 at p=0.1, want ~160", s.Duplicated)
	}
	want := s.Sent - s.Dropped + s.Duplicated
	if int64(received) != want || s.Delivered != want {
		t.Errorf("received %d, delivered %d, want %d", received, s.Delivered, want)
	}
}

// TestZeroProbabilityConsumesNoRandomness: with LossProb and DupProb at
// zero the network never touches the kernel RNG, so default configurations
// keep their exact event schedules.
func TestZeroProbabilityConsumesNoRandomness(t *testing.T) {
	fresh := sim.NewKernel(7).Rand().Int63()
	k := sim.NewKernel(7)
	n := New(k, Config{})
	n.Listen("b")
	k.Go("send", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			n.Send("a", "b", []byte("x"))
		}
	})
	k.Run()
	if after := k.Rand().Int63(); after != fresh {
		t.Errorf("default config consumed RNG draws: next Int63 %d, want %d", after, fresh)
	}
}

func TestDuplicateListenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate Listen")
		}
	}()
	k := sim.NewKernel(1)
	n := New(k, Config{})
	n.Listen("a")
	n.Listen("a")
}

// TestUnlistenQueuedStillReadable: Unlisten stops future deliveries but
// must not discard messages already delivered into the port's queue —
// the receiver owns those and can still drain them.
func TestUnlistenQueuedStillReadable(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{PropDelay: sim.Millisecond})
	port := n.Listen("b")
	var got []string
	k.Go("main", func(p *sim.Proc) {
		n.Send("a", "b", []byte("one"))
		n.Send("a", "b", []byte("two"))
		p.Sleep(10 * sim.Millisecond) // both land in the queue
		n.Unlisten("b")
		if pend := port.Pending(); pend != 2 {
			t.Errorf("%d pending after Unlisten, want 2", pend)
		}
		got = append(got, string(port.Recv(p).Payload))
		got = append(got, string(port.Recv(p).Payload))
	})
	k.Run()
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("drained %q after Unlisten", got)
	}
	if s := n.Stats(); s.Delivered != 2 || s.Dropped != 0 {
		t.Errorf("stats %+v, want 2 delivered 0 dropped", s)
	}
}

// TestRelistenSameAddress: releasing an address frees it for a new
// Listen (a server restart), and because delivery resolves the port at
// arrival time, a message in flight across the handoff lands in the NEW
// port's queue — the old port sees nothing.
func TestRelistenSameAddress(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{PropDelay: 10 * sim.Millisecond})
	old := n.Listen("b")
	var payload string
	k.Go("main", func(p *sim.Proc) {
		n.Send("a", "b", []byte("handoff"))
		n.Unlisten("b")
		port := n.Listen("b") // must not panic: the address is free again
		payload = string(port.Recv(p).Payload)
		if old.Pending() != 0 {
			t.Errorf("old port got %d messages after Unlisten", old.Pending())
		}
	})
	k.Run()
	if payload != "handoff" {
		t.Errorf("new port read %q", payload)
	}
	if s := n.Stats(); s.Delivered != 1 || s.Dropped != 0 {
		t.Errorf("stats %+v, want 1 delivered 0 dropped", s)
	}
}

func TestUnlistenDropsSubsequent(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{PropDelay: sim.Millisecond})
	n.Listen("b")
	k.Go("main", func(p *sim.Proc) {
		n.Unlisten("b")
		n.Send("a", "b", []byte("x"))
		p.Sleep(sim.Second)
	})
	k.Run()
	if n.Stats().Dropped != 1 {
		t.Errorf("dropped %d, want 1", n.Stats().Dropped)
	}
}

func TestOneWayCut(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{PropDelay: sim.Millisecond})
	pa := n.Listen("a")
	pb := n.Listen("b")
	var atB, atA int
	k.Go("recvB", func(p *sim.Proc) {
		for {
			pb.Recv(p)
			atB++
		}
	})
	k.Go("recvA", func(p *sim.Proc) {
		for {
			pa.Recv(p)
			atA++
		}
	})
	k.Go("drive", func(p *sim.Proc) {
		n.Cut("a", "b")
		n.Send("a", "b", []byte("lost"))  // cut direction
		n.Send("b", "a", []byte("heard")) // reverse delivers
		p.Sleep(10 * sim.Millisecond)
		n.Heal("a", "b")
		n.Send("a", "b", []byte("heard"))
		p.Sleep(10 * sim.Millisecond)
		k.Stop()
	})
	k.Run()
	if atB != 1 || atA != 1 {
		t.Errorf("delivered a->b %d (want 1), b->a %d (want 1)", atB, atA)
	}
	s := n.Stats()
	if s.Cut != 1 || s.Dropped != 1 {
		t.Errorf("stats %+v, want Cut=1 Dropped=1", s)
	}
}

func TestCutForHealsOnSchedule(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{})
	pb := n.Listen("b")
	var arrivals []sim.Time
	k.Go("recv", func(p *sim.Proc) {
		for {
			pb.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	k.Go("drive", func(p *sim.Proc) {
		n.CutFor("a", "b", sim.Second, 0) // zero jitter: heals at exactly 1s
		n.Send("a", "b", []byte("x"))     // t=0: cut
		p.Sleep(999 * sim.Millisecond)
		n.Send("a", "b", []byte("x")) // t=999ms: still cut
		p.Sleep(2 * sim.Millisecond)
		n.Send("a", "b", []byte("x")) // t=1.001s: healed
		p.Sleep(sim.Millisecond)
		k.Stop()
	})
	k.Run()
	if len(arrivals) != 1 || arrivals[0] != sim.Time(1001*sim.Millisecond) {
		t.Errorf("arrivals %v, want exactly one at 1.001s", arrivals)
	}
}

func TestCutForJitterIsSeededAndBounded(t *testing.T) {
	// The same seed must produce the same heal time; the heal must land
	// in [d, d+jitter).
	healAt := func(seed int64) sim.Time {
		k := sim.NewKernel(seed)
		n := New(k, Config{})
		pb := n.Listen("b")
		var got sim.Time
		k.Go("recv", func(p *sim.Proc) {
			pb.Recv(p)
			got = p.Now()
		})
		k.Go("drive", func(p *sim.Proc) {
			n.CutFor("a", "b", sim.Second, sim.Second)
			for i := 0; i < 4000; i++ {
				n.Send("a", "b", []byte("x"))
				p.Sleep(sim.Millisecond)
			}
		})
		k.Run()
		return got
	}
	a, b := healAt(7), healAt(7)
	if a != b {
		t.Errorf("same seed healed at %v and %v", a, b)
	}
	if a < sim.Time(sim.Second) || a >= sim.Time(2*sim.Second)+sim.Time(sim.Millisecond) {
		t.Errorf("heal at %v, want within [1s, 2s] (+1ms probe quantum)", a)
	}
	if c := healAt(8); c == a {
		t.Logf("seeds 7 and 8 healed at the same probe tick %v (possible, just unlikely)", c)
	}
}

func TestCutBothIsSymmetric(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{})
	n.Listen("a")
	n.Listen("b")
	k.Go("drive", func(p *sim.Proc) {
		n.CutBoth("a", "b")
		n.Send("a", "b", []byte("x"))
		n.Send("b", "a", []byte("x"))
		n.HealBoth("a", "b")
		n.Send("a", "b", []byte("x"))
		n.Send("b", "a", []byte("x"))
	})
	k.Run()
	s := n.Stats()
	if s.Cut != 2 || s.Delivered != 2 {
		t.Errorf("stats %+v, want Cut=2 Delivered=2", s)
	}
}
