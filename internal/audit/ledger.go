package audit

import (
	"bytes"
	"fmt"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
)

// The ledger tracks file contents in fixed blocks independent of any
// client or server block size — reads and writes are compared byte-wise
// within them.
const ledgerBlock = 4096

// maxVersionsPerBlock bounds per-block history. Only versions whose
// validity window can still overlap a future read matter, and windows
// close as soon as a newer write commits, so a short history suffices.
const maxVersionsPerBlock = 8

// blockVersion is one committed (or in-flight) image of a block.
//
// Validity windows encode the legitimate read/write race: a version
// becomes visible when its write syscall STARTS (a concurrent read may
// return it), and stops being acceptable when the NEXT version's write
// COMPLETES (any read starting after that must see the newer bytes).
// A zero `to` means the version is still current.
type blockVersion struct {
	from sim.Time
	to   sim.Time
	data []byte // ledgerBlock bytes, zero-padded
}

func (v *blockVersion) overlaps(start, end sim.Time) bool {
	return v.from <= end && (v.to == 0 || v.to >= start)
}

// fileLedger is the per-file write history.
type fileLedger struct {
	blocks map[int64][]*blockVersion
}

func (a *Auditor) ledgerFor(h proto.Handle) *fileLedger {
	l, ok := a.ledgers[h]
	if !ok {
		l = &fileLedger{blocks: make(map[int64][]*blockVersion)}
		a.ledgers[h] = l
	}
	return l
}

// ResetLedger forgets the write history of h — used when a file is
// created or truncated through the wrapper (old contents are gone by
// construction, not by protocol failure).
func (a *Auditor) ResetLedger(h proto.Handle) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.ledgers, h)
}

// pendingWrite is an in-flight write: its new block versions are already
// visible in the ledger (a concurrent read may legitimately return them
// the instant the syscall starts), but the versions it supersedes stay
// acceptable until WriteEnd closes their windows at the syscall's end.
type pendingWrite struct {
	preds []*blockVersion
}

// WriteBegin records the start of a write syscall against h: data is
// being written at off as of start. Each touched ledger block gains a new
// version (a read-modify-write image over the latest version). Call
// WriteEnd when the syscall completes to close the superseded windows —
// recording at start matters, because the server can serve the new bytes
// to a concurrent reader before the writer's syscall returns.
func (a *Auditor) WriteBegin(op uint64, h proto.Handle, off int64, data []byte, start sim.Time) *pendingWrite {
	if a == nil || len(data) == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.event(record{Op: op, Event: "write", Handle: h.String(),
		Detail: writeDetail(off, len(data))})
	l := a.ledgerFor(h)
	pw := &pendingWrite{}
	for _, seg := range segments(off, len(data)) {
		img := make([]byte, ledgerBlock)
		vs := l.blocks[seg.block]
		if n := len(vs); n > 0 {
			copy(img, vs[n-1].data)
			pw.preds = append(pw.preds, vs[n-1])
		}
		copy(img[seg.inBlock:], data[seg.inData:seg.inData+seg.n])
		vs = append(vs, &blockVersion{from: start, data: img})
		if len(vs) > maxVersionsPerBlock {
			vs = vs[len(vs)-maxVersionsPerBlock:]
		}
		l.blocks[seg.block] = vs
	}
	return pw
}

// WriteEnd closes the windows of the versions pw superseded: any read
// starting after end must see the new bytes. Skipping it (a failed write)
// leaves both old and new versions acceptable — the conservative reading
// of a write whose outcome is unknown.
func (a *Auditor) WriteEnd(pw *pendingWrite, end sim.Time) {
	if a == nil || pw == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, v := range pw.preds {
		v.to = end
	}
}

// NoteWrite records a complete write syscall spanning [start, end] in one
// call (WriteBegin + WriteEnd).
func (a *Auditor) NoteWrite(op uint64, h proto.Handle, off int64, data []byte, start, end sim.Time) {
	a.WriteEnd(a.WriteBegin(op, h, off, data, start), end)
}

// CheckRead verifies a read syscall against the ledger: data was returned
// for a read at off spanning [start, end]. For every ledger block the
// result covers, the returned bytes must equal some version whose
// validity window overlaps the read — otherwise the read is stale (a
// consistency violation, or a delayed write that was lost).
func (a *Auditor) CheckRead(op uint64, h proto.Handle, off int64, data []byte, start, end sim.Time) {
	if a == nil || len(data) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.event(record{Op: op, Event: "read", Handle: h.String(),
		Detail: writeDetail(off, len(data))})
	l, ok := a.ledgers[h]
	if !ok {
		return // contents predate auditing (or were reset); nothing to vouch for
	}
	for _, seg := range segments(off, len(data)) {
		vs := l.blocks[seg.block]
		if len(vs) == 0 {
			continue
		}
		got := data[seg.inData : seg.inData+seg.n]
		matched := false
		candidates := 0
		for _, v := range vs {
			if !v.overlaps(start, end) {
				continue
			}
			candidates++
			if bytes.Equal(got, v.data[seg.inBlock:seg.inBlock+int64(seg.n)]) {
				matched = true
				break
			}
		}
		if candidates == 0 {
			// Every recorded version was superseded before auditing
			// could observe a write for this window — should not
			// happen, but do not claim a violation without a witness.
			continue
		}
		if !matched {
			a.violate(op, InvStaleRead, h,
				"read of block %d (off %d, %dB) returned bytes matching none of %d valid version(s)",
				seg.block, off, len(data), candidates)
		}
	}
}

// segment maps a byte range onto one ledger block.
type segment struct {
	block   int64 // block index
	inBlock int64 // offset within the block
	inData  int   // offset within the caller's buffer
	n       int   // byte count
}

func segments(off int64, n int) []segment {
	var out []segment
	pos := int64(0)
	for pos < int64(n) {
		abs := off + pos
		block := abs / ledgerBlock
		inBlock := abs % ledgerBlock
		take := ledgerBlock - inBlock
		if rem := int64(n) - pos; take > rem {
			take = rem
		}
		out = append(out, segment{block: block, inBlock: inBlock, inData: int(pos), n: int(take)})
		pos += take
	}
	return out
}

func writeDetail(off int64, n int) string {
	return fmt.Sprintf("off=%d len=%d", off, n)
}
