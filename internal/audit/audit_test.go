package audit_test

import (
	"bytes"
	"strings"
	"testing"

	"spritelynfs/internal/audit"
	"spritelynfs/internal/core"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
)

// run drives fn as a simulation process with an auditor observing tab.
func run(t *testing.T, fn func(p *sim.Proc, a *audit.Auditor, tab *core.Table)) (*audit.Auditor, string) {
	t.Helper()
	k := sim.NewKernel(1)
	var journal bytes.Buffer
	a := audit.New(k, &journal)
	tab := core.NewTable(0)
	tab.Observer = a.OnTransition
	k.Go("test", func(p *sim.Proc) {
		defer k.Stop()
		fn(p, a, tab)
	})
	k.Run()
	return a, journal.String()
}

// TestShadowLifecycleClean replays a full Table 4-1 choreography — multiple
// readers, write sharing, client death, and crash recovery — through the
// shadow machine; a correct table must produce zero violations.
func TestShadowLifecycleClean(t *testing.T) {
	h := proto.Handle{FSID: 1, Ino: 42, Gen: 1}
	h2 := proto.Handle{FSID: 1, Ino: 43, Gen: 1}
	h3 := proto.Handle{FSID: 1, Ino: 44, Gen: 1}
	a, journal := run(t, func(p *sim.Proc, _ *audit.Auditor, tab *core.Table) {
		step := func(fn func()) { p.BeginOp(); fn(); p.Sleep(sim.Millisecond) }

		// Readers come and go.
		step(func() { tab.Open(h, "A", false) })  // ONE-READER
		step(func() { tab.Open(h, "B", false) })  // MULT-READERS
		step(func() { tab.Close(h, "A", false) }) // ONE-READER
		step(func() { tab.Close(h, "B", false) }) // CLOSED

		// A writes and leaves dirty blocks behind.
		step(func() { tab.Open(h, "A", true) })  // ONE-WRITER
		step(func() { tab.Close(h, "A", true) }) // CLOSED-DIRTY

		// B's read forces A's write-back; then A reopens for write
		// while B still reads: write sharing.
		step(func() { tab.Open(h, "B", false) }) // ONE-READER (callback to A)
		step(func() { tab.Open(h, "A", true) })  // WRITE-SHARED

		// B dies; A finishes.
		step(func() { tab.ClientDead("B") })
		step(func() { tab.Close(h, "A", true) }) // CLOSED

		// Crash recovery: clients re-register their opens, including a
		// write-sharing pair and a dirty closed file.
		step(func() { tab.Recover(h2, "A", 1, 0, 5, false) }) // ONE-READER
		step(func() { tab.Recover(h2, "B", 0, 1, 7, false) }) // WRITE-SHARED
		step(func() { tab.Recover(h3, "C", 0, 0, 9, true) })  // CLOSED-DIRTY
	})
	for _, v := range a.Violations() {
		t.Errorf("unexpected violation: %s", v)
	}
	if a.Events() == 0 {
		t.Fatal("auditor witnessed no events")
	}
	if !strings.Contains(journal, `"type":"event"`) {
		t.Error("journal has no event records")
	}
	if strings.Contains(journal, `"type":"violation"`) {
		t.Error("journal has violation records for a clean run")
	}
}

// TestCorruptTransitionFlagged feeds the auditor a fabricated transition no
// row of Table 4-1 permits; it must be flagged with the causal op ID of the
// process that produced it.
func TestCorruptTransitionFlagged(t *testing.T) {
	h := proto.Handle{FSID: 1, Ino: 7, Gen: 1}
	a, journal := run(t, func(p *sim.Proc, a *audit.Auditor, _ *core.Table) {
		p.SetOp(42)
		a.OnTransition(core.TransitionEvent{
			Event: "open", Handle: h, Client: "A",
			From: core.StateClosed, To: core.StateWriteShared,
		})
	})
	vs := a.Violations()
	if len(vs) == 0 {
		t.Fatal("illegal CLOSED -> WRITE-SHARED open not flagged")
	}
	for _, v := range vs {
		if v.Invariant != audit.InvTransition {
			t.Errorf("invariant = %s, want %s", v.Invariant, audit.InvTransition)
		}
		if v.Op != 42 {
			t.Errorf("violation op = %d, want the causal op 42", v.Op)
		}
	}
	if !strings.Contains(journal, `"type":"violation"`) {
		t.Error("violation missing from journal")
	}
}

// TestVersionRegressionFlagged: a version number moving backwards (or an
// open-for-write not recording the prior version) breaks the §3.1 cache
// validation rule.
func TestVersionRegressionFlagged(t *testing.T) {
	h := proto.Handle{FSID: 1, Ino: 8, Gen: 1}
	a, _ := run(t, func(p *sim.Proc, a *audit.Auditor, _ *core.Table) {
		p.SetOp(1)
		a.OnTransition(core.TransitionEvent{
			Event: "open", Handle: h, Client: "A", Write: true,
			From: core.StateClosed, To: core.StateOneWriter,
			Version: 5, Prev: 0, Caching: []core.ClientID{"A"},
		})
		p.SetOp(2)
		a.OnTransition(core.TransitionEvent{
			Event: "close", Handle: h, Client: "A", Write: true,
			From: core.StateOneWriter, To: core.StateClosedDirty,
			Version: 5, Prev: 0, LastWriter: "A",
		})
		p.SetOp(3)
		// Reopen for write with a regressed version and a prev that does
		// not record the prior version.
		a.OnTransition(core.TransitionEvent{
			Event: "open", Handle: h, Client: "A", Write: true,
			From: core.StateClosedDirty, To: core.StateOneWriter,
			Version: 3, Prev: 2, Caching: []core.ClientID{"A"},
		})
	})
	byInv := map[string]bool{}
	for _, v := range a.Violations() {
		byInv[v.Invariant] = true
		if v.Op != 3 {
			t.Errorf("violation op = %d, want 3 (%s)", v.Op, v)
		}
	}
	if !byInv[audit.InvVersion] {
		t.Error("version regression not flagged")
	}
	if !byInv[audit.InvPrevVersion] {
		t.Error("prev-version mismatch not flagged")
	}
}

// TestWriteSharedCachingFlagged: a WRITE-SHARED file with a client still
// holding a caching grant violates the §2.2 rule.
func TestWriteSharedCachingFlagged(t *testing.T) {
	h := proto.Handle{FSID: 1, Ino: 9, Gen: 1}
	a, _ := run(t, func(p *sim.Proc, a *audit.Auditor, _ *core.Table) {
		p.SetOp(1)
		a.OnTransition(core.TransitionEvent{
			Event: "open", Handle: h, Client: "A", Write: true,
			From: core.StateClosed, To: core.StateOneWriter,
			Version: 1, Caching: []core.ClientID{"A"},
		})
		p.SetOp(2)
		a.OnTransition(core.TransitionEvent{
			Event: "open", Handle: h, Client: "B", Write: true,
			From: core.StateOneWriter, To: core.StateWriteShared,
			Version: 2, Prev: 1, Caching: []core.ClientID{"A"}, // A kept its grant!
		})
	})
	found := false
	for _, v := range a.Violations() {
		if v.Invariant == audit.InvWriteShared && v.Op == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("caching client in WRITE-SHARED not flagged: %v", a.Violations())
	}
}

// TestLedgerStaleRead exercises the write-ledger windows directly: a read
// returning bytes a later committed write superseded is stale; a read
// racing the write may legitimately return either version.
func TestLedgerStaleRead(t *testing.T) {
	k := sim.NewKernel(1)
	a := audit.New(k, nil)
	h := proto.Handle{FSID: 1, Ino: 10, Gen: 1}

	old := []byte("AAAA")
	fresh := []byte("BBBB")
	a.NoteWrite(1, h, 0, old, 10, 20)
	a.NoteWrite(2, h, 0, fresh, 100, 110)

	// A read overlapping the second write may still see the old bytes.
	a.CheckRead(3, h, 0, old, 95, 105)
	if n := len(a.Violations()); n != 0 {
		t.Fatalf("concurrent read of superseded bytes flagged: %v", a.Violations())
	}
	// A read entirely after the second write committed must see it.
	a.CheckRead(4, h, 0, fresh, 120, 125)
	if n := len(a.Violations()); n != 0 {
		t.Fatalf("current read flagged: %v", a.Violations())
	}
	a.CheckRead(5, h, 0, old, 130, 135)
	vs := a.Violations()
	if len(vs) != 1 {
		t.Fatalf("stale read not flagged: %v", vs)
	}
	if vs[0].Invariant != audit.InvStaleRead || vs[0].Op != 5 {
		t.Errorf("violation = %s, want %s with op 5", vs[0], audit.InvStaleRead)
	}

	// Unknown handles and never-written blocks are not vouched for.
	a.CheckRead(6, proto.Handle{FSID: 1, Ino: 99}, 0, old, 140, 145)
	a.CheckRead(7, h, 1<<20, old, 140, 145)
	if len(a.Violations()) != 1 {
		t.Errorf("unvouched reads flagged: %v", a.Violations())
	}
}

// TestLedgerCrossBlockWrite: a write spanning ledger blocks must be
// reassembled correctly on read.
func TestLedgerCrossBlockWrite(t *testing.T) {
	k := sim.NewKernel(1)
	a := audit.New(k, nil)
	h := proto.Handle{FSID: 1, Ino: 11, Gen: 1}

	data := bytes.Repeat([]byte("x"), 6000)
	copy(data[4090:], []byte("boundary"))
	a.NoteWrite(1, h, 1000, data, 10, 20)
	a.CheckRead(2, h, 1000, data, 30, 35)
	if len(a.Violations()) != 0 {
		t.Fatalf("cross-block read flagged: %v", a.Violations())
	}
	mangled := append([]byte(nil), data...)
	mangled[3500] ^= 0xff // corrupt a byte in the second ledger block
	a.CheckRead(3, h, 1000, mangled, 40, 45)
	if len(a.Violations()) != 1 {
		t.Errorf("corrupted cross-block read not flagged: %v", a.Violations())
	}
}
