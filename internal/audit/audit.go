// Package audit is an online witness for the consistency guarantees the
// paper claims: an event-sourced journal of every protocol event plus an
// invariant checker that runs alongside the live system.
//
// The auditor keeps a shadow replica of the server's Table 4-1 state
// machine (shadow.go) fed by the state table's Observer hook, and a
// per-block write ledger (ledger.go) fed by a vfs wrapper interposed at
// each client's syscall boundary (fs.go). Every event carries the causal
// operation ID minted by sim.Proc.BeginOp and propagated through the RPC
// wire, so a violation names the syscall that exposed it.
//
// Checked invariants:
//
//	illegal-transition    every server-side state transition is legal per
//	                      Table 4-1, and the post-state matches a state
//	                      independently re-derived from the auditor's own
//	                      open counts
//	version-monotonicity  version numbers never regress for a live entry
//	prev-version          an open-for-write bump records the prior version
//	                      as PrevVersion (the §3.1 cache-validation rule)
//	cache-write-shared    no client is left caching a write-shared file
//	stale-read            every data read returns bytes some committed (or
//	                      concurrently in-flight) write put there — this
//	                      also catches lost delayed writes across
//	                      close/reopen and crash recovery
//
// Violations are recorded in memory, surfaced as metrics and through the
// server's audit procedure, and written (with every other event) to an
// optional JSONL sink.
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"spritelynfs/internal/core"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
)

// Invariant names, used in violations, journal records, and metrics.
const (
	InvTransition  = "illegal-transition"
	InvVersion     = "version-monotonicity"
	InvPrevVersion = "prev-version"
	InvWriteShared = "cache-write-shared"
	InvStaleRead   = "stale-read"
)

var invariants = []string{InvTransition, InvVersion, InvPrevVersion, InvWriteShared, InvStaleRead}

// Violation is one detected invariant breach.
type Violation struct {
	Seq       int64
	At        sim.Time
	Op        uint64 // causal operation ID of the syscall that exposed it
	Invariant string
	Handle    proto.Handle
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%12.6fs op=%d %s %s: %s",
		v.At.Seconds(), v.Op, v.Invariant, v.Handle, v.Detail)
}

// record is one JSONL journal line. Protocol events and violations share
// the schema; Type distinguishes them.
type record struct {
	Seq       int64  `json:"seq"`
	AtUS      int64  `json:"at_us"`
	Op        uint64 `json:"op,omitempty"`
	Type      string `json:"type"` // "event" or "violation"
	Event     string `json:"event,omitempty"`
	Handle    string `json:"handle,omitempty"`
	Client    string `json:"client,omitempty"`
	Write     bool   `json:"write,omitempty"`
	From      string `json:"from,omitempty"`
	To        string `json:"to,omitempty"`
	Version   uint32 `json:"version,omitempty"`
	Prev      uint32 `json:"prev,omitempty"`
	Invariant string `json:"invariant,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// Auditor is the online checker. Create with New; attach OnTransition to
// the server state table's Observer and wrap client file systems with
// WrapFS. All methods are safe for use from simulation processes and from
// the snfsd realtime loop.
type Auditor struct {
	k   *sim.Kernel
	mu  sync.Mutex
	enc *json.Encoder // nil when no sink

	seq        int64
	events     int64
	violations []Violation
	byInv      map[string]int64

	shadow  map[proto.Handle]*shadowEntry
	ledgers map[proto.Handle]*fileLedger

	// OnViolation, when set, is called synchronously with every recorded
	// violation — the hook the observability plane uses to dump the
	// flight recorder the moment an invariant breaks, while the ring
	// still holds the events leading up to it. The callback runs with
	// the auditor's lock held: it must not call back into the auditor.
	OnViolation func(Violation)
}

// New returns an auditor on kernel k. sink, when non-nil, receives one
// JSON object per line for every protocol event and violation.
func New(k *sim.Kernel, sink io.Writer) *Auditor {
	a := &Auditor{
		k:       k,
		byInv:   make(map[string]int64),
		shadow:  make(map[proto.Handle]*shadowEntry),
		ledgers: make(map[proto.Handle]*fileLedger),
	}
	if sink != nil {
		a.enc = json.NewEncoder(sink)
	}
	return a
}

// Events reports how many protocol events the auditor has witnessed.
func (a *Auditor) Events() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events
}

// Violations returns a copy of every violation recorded so far.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Err returns nil when no invariant has been violated, or an error
// summarizing the violations (first one quoted) otherwise.
func (a *Auditor) Err() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d invariant violation(s), first: %s",
		len(a.violations), a.violations[0])
}

// Summary renders a human-readable report (the body of the audit RPC).
func (a *Auditor) Summary() string {
	if a == nil {
		return "audit: not enabled\n"
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "audit: %d events witnessed, %d violations\n", a.events, len(a.violations))
	for _, inv := range invariants {
		fmt.Fprintf(&sb, "  %-22s %d\n", inv, a.byInv[inv])
	}
	n := len(a.violations)
	show := a.violations
	if n > 20 {
		show = a.violations[n-20:]
		fmt.Fprintf(&sb, "last 20 of %d violations:\n", n)
	} else if n > 0 {
		fmt.Fprintf(&sb, "violations:\n")
	}
	for _, v := range show {
		fmt.Fprintf(&sb, "  %s\n", v)
	}
	return sb.String()
}

// EnableMetrics exports the auditor's counters on r.
func (a *Auditor) EnableMetrics(r *metrics.Registry) {
	if a == nil || r == nil {
		return
	}
	r.GaugeFunc("snfs_audit_events_total", func() float64 {
		return float64(a.Events())
	})
	r.GaugeFunc("snfs_audit_violations_total", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(len(a.violations))
	})
	for _, inv := range invariants {
		inv := inv
		r.GaugeFunc(metrics.Label("snfs_audit_violations", "invariant", inv), func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(a.byInv[inv])
		})
	}
}

// violate records one breach. Caller holds a.mu.
func (a *Auditor) violate(op uint64, inv string, h proto.Handle, format string, args ...any) {
	v := Violation{
		Seq:       a.seq,
		At:        a.k.Now(),
		Op:        op,
		Invariant: inv,
		Handle:    h,
		Detail:    fmt.Sprintf(format, args...),
	}
	a.seq++
	a.violations = append(a.violations, v)
	a.byInv[inv]++
	a.journal(record{
		Seq: v.Seq, AtUS: int64(v.At), Op: op, Type: "violation",
		Invariant: inv, Handle: h.String(), Detail: v.Detail,
	})
	if a.OnViolation != nil {
		a.OnViolation(v)
	}
}

// journal writes one record to the sink. Caller holds a.mu.
func (a *Auditor) journal(r record) {
	if a.enc != nil {
		a.enc.Encode(r)
	}
}

// event journals a protocol event. Caller holds a.mu.
func (a *Auditor) event(r record) {
	r.Seq = a.seq
	a.seq++
	r.AtUS = int64(a.k.Now())
	r.Type = "event"
	a.events++
	a.journal(r)
}

// NoteEvent records a protocol event that does not pass through the state
// table — the server's callback fan-out, for example.
func (a *Auditor) NoteEvent(op uint64, event string, h proto.Handle, client string, detail string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.event(record{Op: op, Event: event, Handle: h.String(), Client: client, Detail: detail})
}

// ServerRebooted resets the shadow state machine: the server's table (and
// its version counter) is rebuilt from scratch during recovery, so prior
// version floors and states no longer apply. The write ledger is kept —
// file contents survive a server reboot, and a read that returns pre-crash
// bytes when newer committed writes exist is still a lost-write bug.
func (a *Auditor) ServerRebooted() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.shadow = make(map[proto.Handle]*shadowEntry)
	a.event(record{Op: a.k.CurrentOp(), Event: "server-reboot"})
}

// OnTransition is the state-table Observer hook: it journals the event,
// replays it against the shadow machine, and checks every transition
// invariant. Attach with table.Observer = auditor.OnTransition.
func (a *Auditor) OnTransition(ev core.TransitionEvent) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	op := a.k.CurrentOp()
	a.event(record{
		Op: op, Event: ev.Event, Handle: ev.Handle.String(), Client: string(ev.Client),
		Write: ev.Write, From: ev.From.String(), To: ev.To.String(),
		Version: ev.Version, Prev: ev.Prev, Detail: transitionDetail(ev),
	})
	a.checkTransition(op, ev)

	// Contents the protocol legitimately cannot vouch for any longer:
	// a removed or truncated file's ledger restarts, and an opener warned
	// of an inconsistency (the last writer died holding dirty blocks) may
	// see old bytes.
	switch {
	case ev.Event == "drop":
		delete(a.ledgers, ev.Handle)
	case ev.Event == "open" && ev.Inconsistent:
		delete(a.ledgers, ev.Handle)
	}
}

func transitionDetail(ev core.TransitionEvent) string {
	var parts []string
	if ev.CacheEnabled {
		parts = append(parts, "cache=on")
	}
	if ev.Inconsistent {
		parts = append(parts, "inconsistent")
	}
	if ev.Callbacks > 0 {
		parts = append(parts, fmt.Sprintf("callbacks=%d", ev.Callbacks))
	}
	if ev.LastWriter != "" {
		parts = append(parts, "lastWriter="+string(ev.LastWriter))
	}
	return strings.Join(parts, " ")
}
