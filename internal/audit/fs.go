package audit

import (
	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// Handled is implemented by files that can name their protocol-level file
// handle (the SNFS and NFS client files do). The wrapper audits only
// files exposing it; anything else passes through untouched.
type Handled interface {
	Handle() proto.Handle
}

// WrapFS interposes the auditor at a client's syscall boundary: reads are
// checked against the write ledger, writes feed it, and creates/truncates
// reset it. Wrap the FS before mounting it in a namespace so every
// workload path is witnessed.
func (a *Auditor) WrapFS(inner vfs.FS) vfs.FS {
	return &auditFS{a: a, inner: inner}
}

type auditFS struct {
	a     *Auditor
	inner vfs.FS
}

func (w *auditFS) Open(p *sim.Proc, path string, flags vfs.Flags, mode uint32) (vfs.File, error) {
	f, err := w.inner.Open(p, path, flags, mode)
	if err != nil {
		return nil, err
	}
	hf, ok := f.(Handled)
	if !ok {
		return f, nil
	}
	h := hf.Handle()
	if flags&(vfs.Create|vfs.Truncate) != 0 {
		// Fresh contents by construction: prior history is void.
		w.a.ResetLedger(h)
	}
	return &auditFile{a: w.a, inner: f, h: h}, nil
}

func (w *auditFS) Mkdir(p *sim.Proc, path string, mode uint32) error {
	return w.inner.Mkdir(p, path, mode)
}
func (w *auditFS) Remove(p *sim.Proc, path string) error { return w.inner.Remove(p, path) }
func (w *auditFS) Rmdir(p *sim.Proc, path string) error  { return w.inner.Rmdir(p, path) }
func (w *auditFS) Rename(p *sim.Proc, oldpath, newpath string) error {
	return w.inner.Rename(p, oldpath, newpath)
}
func (w *auditFS) Stat(p *sim.Proc, path string) (proto.Fattr, error) {
	return w.inner.Stat(p, path)
}
func (w *auditFS) Readdir(p *sim.Proc, path string) ([]proto.DirEntry, error) {
	return w.inner.Readdir(p, path)
}
func (w *auditFS) Link(p *sim.Proc, oldpath, newpath string) error {
	return w.inner.Link(p, oldpath, newpath)
}
func (w *auditFS) Symlink(p *sim.Proc, target, linkpath string) error {
	return w.inner.Symlink(p, target, linkpath)
}
func (w *auditFS) Readlink(p *sim.Proc, path string) (string, error) {
	return w.inner.Readlink(p, path)
}
func (w *auditFS) SyncAll(p *sim.Proc) { w.inner.SyncAll(p) }

// auditFile wraps one open file. Read results are checked against the
// ledger; writes feed it. Timestamps straddle the inner call so the
// legitimate concurrent-read race window is modeled exactly.
type auditFile struct {
	a     *Auditor
	inner vfs.File
	h     proto.Handle
}

// Handle lets stacked wrappers (and tests) reach the protocol handle.
func (f *auditFile) Handle() proto.Handle { return f.h }

func (f *auditFile) ReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	start := p.Now()
	data, err := f.inner.ReadAt(p, off, n)
	if err == nil {
		f.a.CheckRead(p.Op(), f.h, off, data, start, p.Now())
	}
	return data, err
}

func (f *auditFile) WriteAt(p *sim.Proc, off int64, data []byte) (int, error) {
	// Record before the inner call: the server can serve the new bytes
	// to a concurrent reader while this syscall is still in flight.
	pw := f.a.WriteBegin(p.Op(), f.h, off, data, p.Now())
	n, err := f.inner.WriteAt(p, off, data)
	if err == nil {
		f.a.WriteEnd(pw, p.Now())
	}
	return n, err
}

func (f *auditFile) Close(p *sim.Proc) error { return f.inner.Close(p) }
func (f *auditFile) Sync(p *sim.Proc) error  { return f.inner.Sync(p) }
func (f *auditFile) Attr(p *sim.Proc) (proto.Fattr, error) {
	return f.inner.Attr(p)
}
