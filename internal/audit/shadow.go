package audit

import (
	"spritelynfs/internal/core"
	"spritelynfs/internal/proto"
)

// shadowClient mirrors one client's open counts for a file.
type shadowClient struct {
	readers int
	writers int
}

// shadowEntry is the auditor's replica of one state-table entry, rebuilt
// purely from observed transition events.
type shadowEntry struct {
	state   core.FileState
	version uint32
	known   bool // a version has been observed (monotonicity floor valid)
	clients map[core.ClientID]*shadowClient
}

func (a *Auditor) shadowFor(h proto.Handle) *shadowEntry {
	e, ok := a.shadow[h]
	if !ok {
		e = &shadowEntry{state: core.StateClosed, clients: make(map[core.ClientID]*shadowClient)}
		a.shadow[h] = e
	}
	return e
}

// checkTransition replays ev against the shadow machine and flags every
// invariant breach. Caller holds a.mu.
func (a *Auditor) checkTransition(op uint64, ev core.TransitionEvent) {
	e := a.shadowFor(ev.Handle)

	// The reported pre-state must match the shadow's view of the world.
	if e.known && ev.From != e.state {
		a.violate(op, InvTransition, ev.Handle,
			"%s reports pre-state %s but shadow is in %s", ev.Event, ev.From, e.state)
	}

	// (a) the edge itself must appear in Table 4-1.
	if !legalEdge(ev) {
		a.violate(op, InvTransition, ev.Handle,
			"%s(write=%v): %s -> %s is not a legal Table 4-1 transition",
			ev.Event, ev.Write, ev.From, ev.To)
	}

	// (b) version monotonicity and the previous-version rule.
	if e.known {
		if ev.Version < e.version {
			a.violate(op, InvVersion, ev.Handle,
				"%s: version regressed %d -> %d", ev.Event, e.version, ev.Version)
		}
		if ev.Event == "open" && ev.Write {
			if ev.Version <= ev.Prev {
				a.violate(op, InvPrevVersion, ev.Handle,
					"open-for-write: version %d not above prev %d", ev.Version, ev.Prev)
			}
			if ev.Prev != e.version {
				a.violate(op, InvPrevVersion, ev.Handle,
					"open-for-write: prev %d does not record prior version %d", ev.Prev, e.version)
			}
		}
	}

	// (c) nobody caches a write-shared file.
	if ev.To == core.StateWriteShared && len(ev.Caching) > 0 {
		a.violate(op, InvWriteShared, ev.Handle,
			"%s: %d client(s) still caching in WRITE-SHARED", ev.Event, len(ev.Caching))
	}

	// Replay the event into the shadow's open counts.
	switch ev.Event {
	case "open":
		sc := e.clients[ev.Client]
		if sc == nil {
			sc = &shadowClient{}
			e.clients[ev.Client] = sc
		}
		if ev.Write {
			sc.writers++
		} else {
			sc.readers++
		}
	case "close":
		if sc := e.clients[ev.Client]; sc != nil {
			if ev.Write {
				if sc.writers > 0 {
					sc.writers--
				}
			} else if sc.readers > 0 {
				sc.readers--
			}
			if sc.readers == 0 && sc.writers == 0 {
				delete(e.clients, ev.Client)
			}
		}
	case "client-dead":
		delete(e.clients, ev.Client)
	case "recover":
		if ev.Readers > 0 || ev.Writers > 0 {
			e.clients[ev.Client] = &shadowClient{readers: int(ev.Readers), writers: int(ev.Writers)}
		}
	case "drop":
		delete(a.shadow, ev.Handle)
		return
	}
	if ev.Dropped {
		// The entry left the table (reclamation); the version floor
		// dies with it — a reopen legitimately restarts at 0.
		delete(a.shadow, ev.Handle)
		return
	}

	// The post-state must match what Table 4-1 derives from the open
	// counts, the recorded last writer, and the caching grants. A repeat
	// read-only open is the one transition the table leaves the state
	// untouched for, so ONE-READER can stay ONE-READER where the
	// derivation would say otherwise — the edge check above already
	// constrains that case.
	if derived := deriveState(e, ev); derived != ev.To &&
		!(ev.Event == "open" && !ev.Write && ev.To == ev.From) {
		a.violate(op, InvTransition, ev.Handle,
			"%s: reached %s but Table 4-1 derives %s from the open counts",
			ev.Event, ev.To, derived)
	}

	e.state = ev.To
	e.version = ev.Version
	e.known = true
}

// deriveState recomputes the Table 4-1 state from the shadow's open
// counts plus the event's post-mutation lastWriter and caching grants —
// an independent check that the table's own recompute logic agrees with
// the paper's table.
func deriveState(e *shadowEntry, ev core.TransitionEvent) core.FileState {
	caching := make(map[core.ClientID]bool, len(ev.Caching))
	for _, c := range ev.Caching {
		caching[c] = true
	}
	writers := 0
	var only core.ClientID
	for id, sc := range e.clients {
		writers += sc.writers
		only = id
	}
	switch {
	case len(e.clients) == 0:
		if ev.LastWriter != "" {
			return core.StateClosedDirty
		}
		return core.StateClosed
	case writers > 0:
		if len(e.clients) == 1 && caching[only] {
			return core.StateOneWriter
		}
		return core.StateWriteShared
	case len(e.clients) == 1:
		if ev.LastWriter == only && caching[only] {
			return core.StateOneRdrDirty
		}
		return core.StateOneReader
	default:
		return core.StateMultReaders
	}
}

// legalEdge reports whether ev's From -> To is an edge Table 4-1 permits
// for the event. Events whose outcome is wholly determined by recovery or
// death recomputation (client-dead, recover) are constrained by the
// derivation check instead.
func legalEdge(ev core.TransitionEvent) bool {
	from, to := ev.From, ev.To
	allow := func(states ...core.FileState) bool {
		for _, s := range states {
			if to == s {
				return true
			}
		}
		return false
	}
	switch ev.Event {
	case "open":
		if ev.Write {
			switch from {
			case core.StateClosed, core.StateClosedDirty:
				return allow(core.StateOneWriter)
			case core.StateOneReader, core.StateOneRdrDirty, core.StateOneWriter:
				return allow(core.StateOneWriter, core.StateWriteShared)
			case core.StateMultReaders, core.StateWriteShared:
				return allow(core.StateWriteShared)
			}
			return false
		}
		switch from {
		case core.StateClosed:
			return allow(core.StateOneReader)
		case core.StateClosedDirty:
			return allow(core.StateOneReader, core.StateOneRdrDirty)
		case core.StateOneReader:
			return allow(core.StateOneReader, core.StateMultReaders)
		case core.StateOneRdrDirty:
			return allow(core.StateOneRdrDirty, core.StateMultReaders)
		case core.StateMultReaders:
			return allow(core.StateMultReaders)
		case core.StateOneWriter:
			return allow(core.StateOneWriter, core.StateWriteShared)
		case core.StateWriteShared:
			return allow(core.StateWriteShared)
		}
		return false
	case "close":
		switch from {
		case core.StateOneReader:
			return allow(core.StateOneReader, core.StateClosed)
		case core.StateOneRdrDirty:
			return allow(core.StateOneRdrDirty, core.StateClosedDirty)
		case core.StateMultReaders:
			return allow(core.StateMultReaders, core.StateOneReader,
				core.StateOneRdrDirty, core.StateClosed)
		case core.StateOneWriter:
			return allow(core.StateOneWriter, core.StateOneReader,
				core.StateOneRdrDirty, core.StateClosedDirty, core.StateClosed)
		case core.StateWriteShared:
			return allow(core.StateWriteShared, core.StateMultReaders,
				core.StateOneReader, core.StateClosed)
		}
		return false
	case "reclaim":
		return (from == core.StateClosedDirty || from == core.StateClosed) &&
			to == core.StateClosed
	case "drop":
		return to == core.StateClosed
	case "invalidate":
		return from == to
	case "client-dead", "recover":
		return true // constrained by the derivation check
	}
	return true // unknown event kinds are not edge-checked
}
