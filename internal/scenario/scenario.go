// Package scenario is the fleet-scale workload engine: named multi-
// client traffic patterns (web-asset, build-farm, shared-DB, mail-
// spool) generated per client from independent deterministic RNG
// streams and driven through a harness.Fleet as state-machine tasks.
// Where package workload reproduces the paper's single-client
// benchmarks, scenario asks the paper's closing question — how many
// clients can one server sustain under each consistency protocol —
// with populations three orders of magnitude past the testbed's.
package scenario

import (
	"fmt"
	"sort"

	"spritelynfs/internal/harness"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/workload"
)

// Config shapes one scenario run.
type Config struct {
	// Name labels the run (the named presets fill everything below).
	Name string
	// Clients is the fleet population.
	Clients int
	// Ops is how many operations each client performs.
	Ops int
	// SharedFiles sizes the common Zipf-ranked file population
	// (0 = one file per client — the mail-spool shape, where the
	// population is the set of user spools).
	SharedFiles int
	// FileBytes is the size written by every write op (and the initial
	// size of each shared file).
	FileBytes int
	// ChunkBytes is the I/O unit (0 = 8 KiB, the testbed transfer size).
	ChunkBytes int
	// Gen carries the popularity/mix/think-time knobs (SharedFiles is
	// copied in by the engine).
	Gen workload.GenConfig
	// CacheBytes is the per-client cache (0 = the fleet default).
	CacheBytes int64
	// SyncInterval drives the fleet's shared delayed-write sweep on
	// SNFS (0 = 5 s).
	SyncInterval sim.Duration
	// Trace records one line per completed op (client, op, virtual
	// completion time) — the byte-comparable determinism artifact.
	// Meant for small N; a 4,000-client trace is millions of lines.
	Trace bool
}

func (c *Config) fill() {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Ops == 0 {
		c.Ops = 20
	}
	if c.SharedFiles == 0 {
		c.SharedFiles = c.Clients
	}
	if c.FileBytes == 0 {
		c.FileBytes = 8 * 1024
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 8 * 1024
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 5 * sim.Second
	}
	c.Gen.SharedFiles = c.SharedFiles
}

// Names lists the built-in scenarios.
func Names() []string {
	return []string{"web-asset", "build-farm", "shared-db", "mail-spool"}
}

// Named returns the preset for one of Names. Clients and Ops are left
// for the caller (zero = engine defaults).
func Named(name string) (Config, error) {
	switch name {
	case "web-asset":
		// Read-almost-always traffic over a Zipf-hot asset store: the
		// best case for client caching, worst case for NFS's per-open
		// getattr probes.
		return Config{
			Name:        name,
			SharedFiles: 400,
			FileBytes:   16 * 1024,
			Gen: workload.GenConfig{
				ZipfS: 1.2, ZipfV: 1,
				ReadFrac:        0.98,
				SharedWriteFrac: 1,
				ThinkMean:       250 * sim.Millisecond,
			},
		}, nil
	case "build-farm":
		// Compile traffic: hot shared headers read by everyone, object
		// files written privately — concurrent but never write-shared,
		// the case SNFS caches through and NFS writes through.
		return Config{
			Name:        name,
			SharedFiles: 200,
			FileBytes:   8 * 1024,
			Gen: workload.GenConfig{
				ZipfS: 1.1, ZipfV: 1,
				ReadFrac:        0.70,
				SharedWriteFrac: 0,
				ThinkMean:       100 * sim.Millisecond,
			},
		}, nil
	case "shared-db":
		// A small hot record set read and written by every client: the
		// write-sharing pattern that drives SNFS files uncachable and
		// leaves stale reads under NFS.
		return Config{
			Name:        name,
			SharedFiles: 16,
			FileBytes:   8 * 1024,
			Gen: workload.GenConfig{
				ZipfS: 1.05, ZipfV: 1,
				ReadFrac:        0.50,
				SharedWriteFrac: 1,
				ThinkMean:       200 * sim.Millisecond,
			},
		}, nil
	case "mail-spool":
		// Per-user spools, write-heavy appends with occasional reads;
		// the shared population is the spool set itself (one per
		// client), Zipf-ranked so list traffic concentrates on a few.
		return Config{
			Name:      name,
			FileBytes: 4 * 1024,
			Gen: workload.GenConfig{
				ZipfS: 1.3, ZipfV: 1,
				ReadFrac:        0.30,
				SharedWriteFrac: 0,
				ThinkMean:       500 * sim.Millisecond,
			},
		}, nil
	}
	return Config{}, fmt.Errorf("scenario: unknown name %q (have %v)", name, Names())
}

// Result summarizes one scenario run.
type Result struct {
	Scenario      string  `json:"scenario"`
	Proto         string  `json:"proto"`
	Clients       int     `json:"clients"`
	Ops           int64   `json:"ops"`
	Errors        int64   `json:"errors"`
	VirtualSecs   float64 `json:"virtual_secs"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	MeanLatencyUs float64 `json:"mean_latency_us"`
	P95LatencyUs  float64 `json:"p95_latency_us"`
	MaxLatencyUs  float64 `json:"max_latency_us"`
	ServerCPUUtil float64 `json:"server_cpu_util"`
	CallsSent     int64   `json:"calls_sent"`
	Retransmits   int64   `json:"retransmits"`
	// ExecWorkers is the goroutine high-water mark of the whole fleet's
	// blocking work — the number a per-goroutine design would have
	// spent ~7 per client on.
	ExecWorkers int `json:"exec_workers"`
	// OpTrace is the completion-ordered op log (Config.Trace only).
	OpTrace []string `json:"-"`
}

// Run executes cfg against protocol pr and returns the aggregate
// result. The run is fully deterministic for fixed (pm.Seed, cfg).
func Run(pr harness.Proto, pm harness.Params, cfg Config) (Result, error) {
	cfg.fill()
	f := harness.BuildFleet(pr, pm, harness.FleetOptions{
		Clients:      cfg.Clients,
		CacheBytes:   cfg.CacheBytes,
		SyncInterval: cfg.SyncInterval,
		Audit:        pm.Audit,
	})
	k := f.W.K

	res := Result{Scenario: cfg.Name, Proto: pr.String(), Clients: cfg.Clients}
	lats := make([]int64, 0, cfg.Clients*cfg.Ops)
	var measureStart sim.Time
	done := sim.NewSignal(k)

	err := f.W.Run(func(p *sim.Proc) error {
		// Setup (untimed): materialize the shared population on the
		// server through the world's own measurement client.
		for i := 0; i < cfg.SharedFiles; i++ {
			if err := f.W.NS.WriteFile(p, sharedPath(i), cfg.FileBytes, cfg.ChunkBytes); err != nil {
				return fmt.Errorf("scenario setup %s: %w", sharedPath(i), err)
			}
		}
		if f.W.SNFSCli != nil {
			f.W.SNFSCli.SyncAll(p)
		}
		if f.W.NFSCli != nil {
			f.W.NFSCli.SyncAll(p)
		}

		measureStart = k.Now()
		remaining := cfg.Clients
		for c := 0; c < cfg.Clients; c++ {
			c := c
			fc := f.Client(c)
			gen := workload.NewGen(pm.Seed, c, cfg.Gen)
			task := k.NewTask(string(fc.Name))
			i := 0
			var step func()
			step = func() {
				if i >= cfg.Ops {
					remaining--
					if remaining == 0 {
						done.Fire(nil)
					}
					return
				}
				seq := i
				i++
				op := gen.Next()
				task.After(op.Think, func() {
					start := k.Now()
					f.Exec.Submit(task.BeginOp(), func(wp *sim.Proc) {
						if err := execOp(wp, f, c, cfg, op); err != nil {
							res.Errors++
						}
					}, func() {
						lats = append(lats, int64(k.Now().Sub(start)))
						res.Ops++
						if cfg.Trace {
							res.OpTrace = append(res.OpTrace,
								fmt.Sprintf("c%04d #%03d %s done@%d", c, seq, op, int64(k.Now())))
						}
						step()
					})
				})
			}
			step()
		}
		done.Wait(p)
		f.SyncAllClients(p)
		return nil
	})
	if err != nil {
		return res, err
	}

	elapsed := k.Now().Sub(measureStart)
	res.VirtualSecs = float64(elapsed) / float64(sim.Second)
	if res.VirtualSecs > 0 {
		res.OpsPerSec = float64(res.Ops) / res.VirtualSecs
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum int64
		for _, l := range lats {
			sum += l
		}
		res.MeanLatencyUs = float64(sum) / float64(len(lats)) / float64(sim.Microsecond)
		p95 := (len(lats) * 95) / 100
		if p95 >= len(lats) {
			p95 = len(lats) - 1
		}
		res.P95LatencyUs = float64(lats[p95]) / float64(sim.Microsecond)
		res.MaxLatencyUs = float64(lats[len(lats)-1]) / float64(sim.Microsecond)
	}
	res.ServerCPUUtil = f.W.ServerCPUUtilization()
	res.ExecWorkers = f.Exec.Spawned()
	s := f.Stats()
	res.CallsSent, res.Retransmits = s.CallsSent, s.Retransmits
	return res, nil
}

// sharedPath names shared population member i.
func sharedPath(i int) string { return fmt.Sprintf("/data/s%05d", i) }

// privatePath names client c's private file serial i.
func privatePath(c, i int) string { return fmt.Sprintf("/data/c%04d-p%d", c, i) }

// execOp runs one generated op against client c's namespace on a pooled
// process.
func execOp(p *sim.Proc, f *harness.Fleet, c int, cfg Config, op workload.Op) error {
	fc := f.Client(c)
	var path string
	if op.Shared {
		path = sharedPath(op.File % cfg.SharedFiles)
	} else {
		path = privatePath(c, op.File)
	}
	if op.Kind == workload.OpRead {
		_, err := fc.NS.ReadFile(p, path, cfg.ChunkBytes)
		return err
	}
	return fc.NS.WriteFile(p, path, cfg.FileBytes, cfg.ChunkBytes)
}
