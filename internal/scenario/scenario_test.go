package scenario

import (
	"testing"

	"spritelynfs/internal/harness"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/workload"
)

// TestScenarioDeterminism: the same seed and parameters produce byte-
// identical op traces — every client's stream, every interleaving,
// every completion instant.
func TestScenarioDeterminism(t *testing.T) {
	run := func() []string {
		cfg, err := Named("shared-db")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Clients, cfg.Ops, cfg.Trace = 6, 8, true
		res, err := Run(harness.SNFS, harness.Default(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != int64(cfg.Clients*cfg.Ops) {
			t.Fatalf("completed %d ops, want %d", res.Ops, cfg.Clients*cfg.Ops)
		}
		return res.OpTrace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at line %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// TestScenarioSeedSensitivity: a different seed yields a different
// trace (the determinism test isn't vacuous).
func TestScenarioSeedSensitivity(t *testing.T) {
	run := func(seed int64) []string {
		cfg, _ := Named("web-asset")
		cfg.Clients, cfg.Ops, cfg.Trace = 4, 6, true
		pm := harness.Default()
		pm.Seed = seed
		res, err := Run(harness.NFS, pm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.OpTrace
	}
	a, b := run(1), run(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical op traces")
	}
}

// TestScenarioAllNamed: every preset runs clean (audited) at small N
// under both protocols.
func TestScenarioAllNamed(t *testing.T) {
	for _, name := range Names() {
		for _, pr := range []harness.Proto{harness.NFS, harness.SNFS} {
			cfg, err := Named(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Clients, cfg.Ops = 4, 6
			pm := harness.Default()
			if pr == harness.SNFS {
				pm.Audit = true
			}
			res, err := Run(pr, pm, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pr, err)
			}
			if res.Errors != 0 {
				t.Errorf("%s/%s: %d op errors", name, pr, res.Errors)
			}
			if res.Ops != int64(cfg.Clients*cfg.Ops) {
				t.Errorf("%s/%s: completed %d ops, want %d", name, pr, res.Ops, cfg.Clients*cfg.Ops)
			}
		}
	}
}

// TestGenZipfRankFrequency: the popularity sampler actually skews —
// low ranks are drawn more often than high ranks, monotonically across
// rank decades.
func TestGenZipfRankFrequency(t *testing.T) {
	g := workload.NewGen(1, 0, workload.GenConfig{
		SharedFiles: 1000,
		ZipfS:       1.2, ZipfV: 1,
		ReadFrac: 1,
	})
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		op := g.Next()
		counts[op.File]++
	}
	decade := func(lo, hi int) int {
		total := 0
		for i := lo; i < hi; i++ {
			total += counts[i]
		}
		return total
	}
	d0, d1, d2 := decade(0, 10), decade(10, 100), decade(100, 1000)
	if !(counts[0] > counts[9]) || !(d0 > d1) || !(d1 > d2) {
		t.Errorf("rank-frequency not Zipf-like: top=%d rank9=%d decades=%d/%d/%d",
			counts[0], counts[9], d0, d1, d2)
	}
}

// TestGenStreamsIndependent: two clients of the same run draw different
// streams, and the same client is reproducible.
func TestGenStreamsIndependent(t *testing.T) {
	cfg := workload.GenConfig{SharedFiles: 100, ZipfS: 1.2, ZipfV: 1, ReadFrac: 0.5, ThinkMean: 10 * sim.Millisecond}
	draw := func(client int) []string {
		g := workload.NewGen(7, client, cfg)
		var ops []string
		for i := 0; i < 32; i++ {
			ops = append(ops, g.Next().String())
		}
		return ops
	}
	a1, a2, b := draw(3), draw(3), draw(4)
	sameAs := func(x, y []string) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !sameAs(a1, a2) {
		t.Error("same (seed, client) not reproducible")
	}
	if sameAs(a1, b) {
		t.Error("adjacent clients drew identical streams")
	}
}
