package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"spritelynfs/internal/proto"
)

// ParseMapSpec parses the command-line shard map syntax used by
// `snfsd -shard-map`:
//
//	spec     := entry ("," entry)*
//	entry    := shard "=" address      — server table: "0=localhost:2049"
//	          | prefix "=" shard       — assignment:   "/src=1"
//	          | "v" "=" version        — map version (default 1)
//
// Example: "0=localhost:2049,1=localhost:2050,/src=1,/doc=0".
// Shard ids must be dense from 0. The result is validated.
func ParseMapSpec(spec string) (proto.ShardMap, error) {
	m := proto.ShardMap{Version: 1}
	servers := map[uint32]string{}
	maxShard := -1
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		eq := strings.IndexByte(entry, '=')
		if eq < 0 {
			return proto.ShardMap{}, fmt.Errorf("shard map: entry %q has no '='", entry)
		}
		key, val := entry[:eq], entry[eq+1:]
		switch {
		case key == "v":
			v, err := strconv.ParseUint(val, 10, 32)
			if err != nil || v == 0 {
				return proto.ShardMap{}, fmt.Errorf("shard map: bad version %q", val)
			}
			m.Version = uint32(v)
		case strings.HasPrefix(key, "/"):
			shard, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return proto.ShardMap{}, fmt.Errorf("shard map: bad shard id in %q", entry)
			}
			m.Assignments = append(m.Assignments, proto.ShardAssignment{Prefix: key, Shard: uint32(shard)})
		default:
			id, err := strconv.ParseUint(key, 10, 32)
			if err != nil {
				return proto.ShardMap{}, fmt.Errorf("shard map: entry %q is neither a shard id nor a /prefix", entry)
			}
			if val == "" {
				return proto.ShardMap{}, fmt.Errorf("shard map: empty address for shard %d", id)
			}
			if _, dup := servers[uint32(id)]; dup {
				return proto.ShardMap{}, fmt.Errorf("shard map: shard %d defined twice", id)
			}
			servers[uint32(id)] = val
			if int(id) > maxShard {
				maxShard = int(id)
			}
		}
	}
	if maxShard < 0 {
		return proto.ShardMap{}, fmt.Errorf("shard map: no servers in spec %q", spec)
	}
	for i := 0; i <= maxShard; i++ {
		addr, ok := servers[uint32(i)]
		if !ok {
			return proto.ShardMap{}, fmt.Errorf("shard map: shard %d missing (ids must be dense from 0)", i)
		}
		m.Servers = append(m.Servers, addr)
	}
	sortAssignments(m.Assignments)
	if err := m.Validate(); err != nil {
		return proto.ShardMap{}, err
	}
	return m, nil
}
