package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"

	"spritelynfs/internal/client"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/vfs"
	"spritelynfs/internal/xdr"
)

// maxRedirects bounds one operation's NOTHOME retries. A healthy
// cluster converges in a single redirect (refetch the map from the
// server that bounced us — it knows the newer version); hitting the cap
// means the servers disagree about ownership, which is a configuration
// bug worth surfacing loudly rather than spinning on.
const maxRedirects = 4

// ErrRedirectLoop reports an operation that kept earning ErrNotHome
// after refetching the shard map maxRedirects times.
var ErrRedirectLoop = errors.New("cluster: shard redirect loop")

// Router is the client side of the federation: a vfs.FS that owns one
// SNFS client per shard (each on its own endpoint — callback service is
// per-endpoint) and routes every path to its home shard through a cached
// copy of the shard map.
//
// Staleness is handled by redirect, never by silence: a server that is
// not the home of a name answers ErrNotHome, the router refetches the
// map from that server, and retries at the new owner. Handles cached
// for a migrated subtree earn ErrStale instead, which the per-shard
// client already answers by re-walking from the root — funneling into a
// guarded lookup and the same redirect path.
//
// Cross-shard Rename and Link are refused with proto.ErrXDev (the
// RFC 1094 cross-device status): a namespace operation executes on
// exactly one shard or not at all, so no shard is ever left with a
// half-applied op. Files open across a rebalance surface ErrStale on
// their next data access; re-opening by path converges on the new home.
type Router struct {
	k    *sim.Kernel
	host simnet.Addr

	m     proto.ShardMap
	addrs []simnet.Addr
	eps   []*rpc.Endpoint
	cls   []*client.SNFSClient
	fss   []vfs.FS // the shard clients, audit-wrapped when auditing is on

	viewsvc simnet.Addr // viewservice address ("" without Backups)

	redirects atomic.Int64
	refreshes atomic.Int64
}

var _ vfs.FS = (*Router)(nil)

// NewRouter builds a client host routing into the cluster: one endpoint
// and SNFS client per shard (addressed host.s<id>), primed with the
// current map. When shard auditors run, each client is wrapped by its
// shard's auditor so every syscall is witnessed by the right shadow.
func (c *Cluster) NewRouter(host simnet.Addr) *Router {
	r := &Router{k: c.k, host: host, m: c.Map()}
	for _, sh := range c.shards {
		ep := rpc.NewEndpoint(c.k, c.net, simnet.Addr(fmt.Sprintf("%s.s%d", host, sh.ID)),
			rpc.Options{Workers: 4})
		cfg := c.cfg.ClientConfig
		cfg.Server = sh.Addr
		cfg.Root = sh.Server.RootHandle()
		cl := client.NewSNFS(c.k, ep, cfg, c.cfg.ClientOpts)
		var fs vfs.FS = cl
		if sh.Auditor != nil {
			fs = sh.Auditor.WrapFS(cl)
		}
		r.addrs = append(r.addrs, sh.Addr)
		r.eps = append(r.eps, ep)
		r.cls = append(r.cls, cl)
		r.fss = append(r.fss, fs)
	}
	if c.view != nil {
		r.enableFailover(c.viewAddr, c.cfg.ViewInterval)
	}
	return r
}

// enableFailover arms the router for primary/backup failover: each shard
// endpoint's retransmissions chase the address the current map names
// (the Reroute hook), and a background daemon polls the viewservice so
// the map converges even when no in-flight call is around to earn an
// ErrNotHome redirect.
func (r *Router) enableFailover(viewsvc simnet.Addr, interval sim.Duration) {
	if interval == 0 {
		interval = 100 * sim.Millisecond
	}
	r.viewsvc = viewsvc
	for i := range r.eps {
		i := i
		r.eps[i].Reroute = func(simnet.Addr) simnet.Addr { return r.addrs[i] }
	}
	r.k.Go(string(r.host)+"/view-refresh", func(p *sim.Proc) {
		for {
			p.Sleep(2 * interval)
			r.refreshFromView(p)
		}
	})
}

// refreshFromView pulls the current map from the viewservice. Errors are
// ignored: the next poll, or the Reroute/ErrNotHome machinery, retries.
func (r *Router) refreshFromView(p *sim.Proc) {
	body, err := r.eps[0].CallMsgEx(p, r.viewsvc, proto.ProgView, 1, proto.ViewProcGet,
		&proto.ViewGetArgs{}, 500*sim.Millisecond, 0)
	if err != nil {
		return
	}
	rep := proto.DecodeViewGetReply(xdr.NewDecoder(body))
	if rep.Status == proto.OK {
		r.InstallMap(rep.Map)
	}
}

// InstallMap adopts m if it is strictly newer than the cached map,
// retargeting the shard clients whose primary address changed. Older or
// equal versions are ignored — concurrent refetches must never regress
// the map.
func (r *Router) InstallMap(m proto.ShardMap) bool {
	if m.IsZero() || m.Version <= r.m.Version {
		return false
	}
	r.m = m
	r.refreshes.Add(1)
	for i := range r.addrs {
		if i < len(m.Servers) && string(r.addrs[i]) != m.Servers[i] {
			r.addrs[i] = simnet.Addr(m.Servers[i])
			r.cls[i].Retarget(r.addrs[i])
		}
	}
	return true
}

// Redirects returns how many ErrNotHome bounces this router has healed.
func (r *Router) Redirects() int64 { return r.redirects.Load() }

// Refreshes returns how many map refetches actually advanced the version.
func (r *Router) Refreshes() int64 { return r.refreshes.Load() }

// MapVersion returns the cached map's version.
func (r *Router) MapVersion() uint32 { return r.m.Version }

// Clients returns the per-shard SNFS clients (for stats and sync).
func (r *Router) Clients() []*client.SNFSClient { return r.cls }

// TotalOps sums RPCs issued across all shard clients.
func (r *Router) TotalOps() int64 {
	var n int64
	for _, cl := range r.cls {
		n += cl.Ops().Total()
	}
	return n
}

// OpsMerged merges per-procedure RPC counts across shard clients.
func (r *Router) OpsMerged() *stats.Ops {
	out := stats.NewOps()
	for _, cl := range r.cls {
		ops := cl.Ops()
		for _, name := range ops.Names() {
			out.Add(name, ops.Get(name))
		}
	}
	return out
}

// refreshMap refetches the shard map from the shard that bounced us (it
// answered ErrNotHome, so it holds a newer map than ours). The map is
// only replaced by a strictly newer version.
func (r *Router) refreshMap(p *sim.Proc, via int) error {
	body, err := r.eps[via].Call(p, r.addrs[via], proto.ProgNFS, proto.VersNFS,
		proto.ProcShardMap, proto.Marshal(&proto.ShardMapArgs{}))
	if err != nil {
		return fmt.Errorf("cluster: shard map refetch from %s: %w", r.addrs[via], err)
	}
	reply := proto.DecodeShardMapReply(xdr.NewDecoder(body))
	if reply.Status != proto.OK {
		return reply.Status.Err()
	}
	r.InstallMap(reply.Map)
	return nil
}

// shard resolves a path to its home shard under the cached map.
func (r *Router) shard(path string) int {
	id := int(r.m.Lookup(path))
	if id >= len(r.fss) {
		id = 0
	}
	return id
}

// do runs op against path's home shard, healing ErrNotHome by refetching
// the map and retrying, up to maxRedirects. A first ESTALE is healed by
// dropping the shard client's directory cache and retrying — a cached
// parent handle of a migrated subtree fails that way, and the fresh
// walk from the root turns it into ErrNotHome (or succeeds).
func (r *Router) do(p *sim.Proc, path string, op func(fs vfs.FS) error) error {
	staleTried := false
	for attempt := 0; ; attempt++ {
		sh := r.shard(path)
		err := op(r.fss[sh])
		if proto.StatusOf(err) == proto.ErrStale && !staleTried {
			staleTried = true
			r.cls[sh].DropDirCache()
			continue
		}
		if proto.StatusOf(err) != proto.ErrNotHome {
			return err
		}
		if attempt >= maxRedirects {
			return fmt.Errorf("%w: %q still not home after %d redirects (map v%d)",
				ErrRedirectLoop, path, attempt, r.m.Version)
		}
		r.redirects.Add(1)
		if rerr := r.refreshMap(p, sh); rerr != nil {
			return rerr
		}
	}
}

// doPair is do for two-path namespace ops (rename, link): both paths
// must resolve to the same shard — otherwise the op is refused with
// ErrXDev before any server sees it.
func (r *Router) doPair(p *sim.Proc, oldpath, newpath string, op func(fs vfs.FS) error) error {
	staleTried := false
	for attempt := 0; ; attempt++ {
		so, sn := r.shard(oldpath), r.shard(newpath)
		if so != sn {
			return proto.ErrXDev.Err()
		}
		err := op(r.fss[so])
		if proto.StatusOf(err) == proto.ErrStale && !staleTried {
			staleTried = true
			r.cls[so].DropDirCache()
			continue
		}
		if proto.StatusOf(err) != proto.ErrNotHome {
			return err
		}
		if attempt >= maxRedirects {
			return fmt.Errorf("%w: %q -> %q still not home after %d redirects (map v%d)",
				ErrRedirectLoop, oldpath, newpath, attempt, r.m.Version)
		}
		r.redirects.Add(1)
		if rerr := r.refreshMap(p, so); rerr != nil {
			return rerr
		}
	}
}

func (r *Router) Open(p *sim.Proc, path string, flags vfs.Flags, mode uint32) (vfs.File, error) {
	var f vfs.File
	err := r.do(p, path, func(fs vfs.FS) error {
		var err error
		f, err = fs.Open(p, path, flags, mode)
		return err
	})
	return f, err
}

func (r *Router) Mkdir(p *sim.Proc, path string, mode uint32) error {
	return r.do(p, path, func(fs vfs.FS) error { return fs.Mkdir(p, path, mode) })
}

func (r *Router) Remove(p *sim.Proc, path string) error {
	return r.do(p, path, func(fs vfs.FS) error { return fs.Remove(p, path) })
}

func (r *Router) Rmdir(p *sim.Proc, path string) error {
	return r.do(p, path, func(fs vfs.FS) error { return fs.Rmdir(p, path) })
}

func (r *Router) Rename(p *sim.Proc, oldpath, newpath string) error {
	return r.doPair(p, oldpath, newpath, func(fs vfs.FS) error {
		return fs.Rename(p, oldpath, newpath)
	})
}

func (r *Router) Link(p *sim.Proc, oldpath, newpath string) error {
	return r.doPair(p, oldpath, newpath, func(fs vfs.FS) error {
		return fs.Link(p, oldpath, newpath)
	})
}

func (r *Router) Symlink(p *sim.Proc, target, linkpath string) error {
	// Routed by the link's location; the target is an uninterpreted
	// string and may dangle or point into another shard's subtree.
	return r.do(p, linkpath, func(fs vfs.FS) error { return fs.Symlink(p, target, linkpath) })
}

func (r *Router) Readlink(p *sim.Proc, path string) (string, error) {
	var target string
	err := r.do(p, path, func(fs vfs.FS) error {
		var err error
		target, err = fs.Readlink(p, path)
		return err
	})
	return target, err
}

func (r *Router) Stat(p *sim.Proc, path string) (proto.Fattr, error) {
	var fa proto.Fattr
	err := r.do(p, path, func(fs vfs.FS) error {
		var err error
		fa, err = fs.Stat(p, path)
		return err
	})
	return fa, err
}

// Readdir lists path's home shard; the cluster root is the union of
// every shard's root listing (deduplicated by name — shard 0 wins, as
// it owns unassigned names).
func (r *Router) Readdir(p *sim.Proc, path string) ([]proto.DirEntry, error) {
	if stripSlashes(path) != "" {
		var ents []proto.DirEntry
		err := r.do(p, path, func(fs vfs.FS) error {
			var err error
			ents, err = fs.Readdir(p, path)
			return err
		})
		return ents, err
	}
	seen := make(map[string]bool)
	var out []proto.DirEntry
	for _, fs := range r.fss {
		ents, err := fs.Readdir(p, path)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !seen[e.Name] {
				seen[e.Name] = true
				out = append(out, e)
			}
		}
	}
	return out, nil
}

// SyncAll pushes delayed writes on every shard.
func (r *Router) SyncAll(p *sim.Proc) {
	for _, fs := range r.fss {
		fs.SyncAll(p)
	}
}

func stripSlashes(path string) string {
	for len(path) > 0 && path[0] == '/' {
		path = path[1:]
	}
	for len(path) > 0 && path[len(path)-1] == '/' {
		path = path[:len(path)-1]
	}
	return path
}
