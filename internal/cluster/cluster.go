// Package cluster federates M independent Spritely NFS servers into one
// namespace, partitioned by a versioned shard map (proto.ShardMap).
//
// SNFS is unusually shard-friendly: its consistency state (Table 4-1) is
// strictly per-file, so partitioning the namespace by root-level subtree
// partitions the whole protocol — each shard keeps its own state table,
// crash-recovery epoch, dupcache, metrics, and audit shadow, and no
// consistency traffic ever crosses shards. The pieces are:
//
//   - Cluster: builds the shard servers on one simulated network, owns
//     the current shard map, and runs control-plane rebalancing
//     (migrating a subtree to another shard under a version bump).
//   - Router: the client side — a vfs.FS that resolves each path to its
//     home shard via a cached map and recovers from staleness by
//     refetching the map on ErrNotHome and retrying (see router.go).
//
// A cluster run is audit-clean iff every shard's auditor is clean.
package cluster

import (
	"fmt"
	"io"
	"strings"

	"spritelynfs/internal/audit"
	"spritelynfs/internal/client"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/view"
)

// Config sizes a cluster and its per-shard servers. Every shard gets the
// same cost model; FSIDs are assigned per shard (1+id) so handles and
// client cache keys never collide across shards.
type Config struct {
	// Shards is the number of servers (≥ 1).
	Shards int
	// Assignments is the initial partition: "/prefix" -> shard id.
	// Root-level names not listed belong to shard 0.
	Assignments map[string]uint32

	// Server is the per-shard cost model (FSID is overridden).
	Server server.Config
	// ServerOpts configures each shard's SNFS machinery.
	ServerOpts server.SNFSOptions
	// ServerWorkers is each shard's nfsd pool.
	ServerWorkers int
	// ServerCacheBytes and ServerBlockSize size each shard's media.
	ServerCacheBytes int64
	ServerBlockSize  int
	// Disk is the per-shard drive model.
	Disk disk.Params

	// ClientConfig is the template for the router's per-shard clients
	// (Server and Root are filled per shard).
	ClientConfig client.Config
	// ClientOpts configures the router's per-shard SNFS clients.
	ClientOpts client.SNFSOptions

	// Audit arms one protocol auditor per shard.
	Audit bool
	// AuditSinkFor, when set with Audit, supplies each shard's journal
	// sink (nil entries are fine).
	AuditSinkFor func(shard int) io.Writer

	// FlightCapacity, when > 0, arms a flight recorder per shard: each
	// server's recent RPC/state/callback events are kept in a bounded
	// ring for post-mortem dumps (see Shard.Flight).
	FlightCapacity int

	// Backups arms primary/backup replication: each shard gets a standby
	// server (sharing the primary's store — the durable bytes are a
	// dual-ported disk — but with its own endpoint, cache, and disk
	// model), an async replication stream from the primary, and a
	// viewservice that promotes the backup when the primary stops
	// pinging. Clients heal through the usual map-refetch machinery.
	Backups bool
	// ViewInterval is the viewservice ping/tick period (0 = 100 ms).
	ViewInterval sim.Duration
	// ViewDeadPings is how many missed pings declare a server dead
	// (0 = 5).
	ViewDeadPings int
	// ViewLog, when set, receives one text line per view change.
	ViewLog io.Writer
}

// Shard is one member server and its backing pieces.
type Shard struct {
	ID      uint32
	Addr    simnet.Addr
	FSID    uint32
	Server  *server.SNFSServer
	Media   *localfs.Media
	Metrics *metrics.Registry
	// Auditor is the shard's protocol auditor (nil when auditing is
	// off). It shadows only this shard's state table and clients.
	Auditor *audit.Auditor
	// Flight is the shard's black-box event ring (nil unless
	// Config.FlightCapacity is set).
	Flight *tsdb.FlightRecorder

	// Backup is the shard's standby server (nil without Config.Backups).
	// It shares the primary's Store and auditor but nothing volatile.
	Backup      *server.SNFSServer
	BackupAddr  simnet.Addr
	BackupMedia *localfs.Media
	// Repl is the primary's replication stream to Backup (nil without
	// Config.Backups).
	Repl *server.Replicator
}

// Cluster is the control plane: the shard servers plus the authoritative
// shard map. Map changes (Rebalance) are pushed to every server; clients
// converge lazily through the ErrNotHome redirect protocol.
type Cluster struct {
	k   *sim.Kernel
	net *simnet.Network
	cfg Config

	shards []*Shard
	m      proto.ShardMap

	view     *view.Service
	viewAddr simnet.Addr
}

// ShardAddr returns the network address of shard id.
func ShardAddr(id int) simnet.Addr { return simnet.Addr(fmt.Sprintf("shard%d", id)) }

// BackupAddr returns the network address of shard id's backup server.
func BackupAddr(id int) simnet.Addr { return simnet.Addr(fmt.Sprintf("shard%db", id)) }

// New builds the shard servers on net and installs the version-1 map.
func New(k *sim.Kernel, net *simnet.Network, cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: need at least one shard")
	}
	if cfg.ServerWorkers == 0 {
		cfg.ServerWorkers = 8
	}
	if cfg.ServerBlockSize == 0 {
		cfg.ServerBlockSize = 4 * 1024
	}
	c := &Cluster{k: k, net: net, cfg: cfg}

	m := proto.ShardMap{Version: 1}
	for i := 0; i < cfg.Shards; i++ {
		m.Servers = append(m.Servers, string(ShardAddr(i)))
	}
	for prefix, shard := range cfg.Assignments {
		m.Assignments = append(m.Assignments, proto.ShardAssignment{Prefix: prefix, Shard: shard})
	}
	sortAssignments(m.Assignments)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	c.m = m

	for i := 0; i < cfg.Shards; i++ {
		sh := &Shard{ID: uint32(i), Addr: ShardAddr(i), FSID: uint32(1 + i)}
		ep := rpc.NewEndpoint(k, net, sh.Addr, rpc.Options{Workers: cfg.ServerWorkers})
		st := localfs.NewStore(k.Now, cfg.ServerBlockSize)
		d := disk.New(k, string(sh.Addr)+"-disk", cfg.Disk)
		sh.Media = localfs.NewMedia(st, d, sh.FSID, cfg.ServerCacheBytes)
		scfg := cfg.Server
		scfg.FSID = sh.FSID
		sh.Server = server.NewSNFS(k, ep, sh.Media, scfg, cfg.ServerOpts)
		sh.Metrics = metrics.New()
		sh.Server.EnableMetrics(sh.Metrics)
		if cfg.FlightCapacity > 0 {
			sh.Flight = tsdb.NewFlightRecorder(k.Now, cfg.FlightCapacity)
			sh.Server.SetFlight(sh.Flight)
		}
		if cfg.Audit {
			var sink io.Writer
			if cfg.AuditSinkFor != nil {
				sink = cfg.AuditSinkFor(i)
			}
			sh.Auditor = audit.New(k, sink)
			sh.Server.SetAuditor(sh.Auditor)
		}
		c.shards = append(c.shards, sh)
	}
	if cfg.Backups {
		c.buildBackups()
	}
	c.push()
	return c, nil
}

// buildBackups arms the failover plane: one standby server per shard, a
// replication stream feeding it, the viewservice, and both members'
// pingers.
func (c *Cluster) buildBackups() {
	cfg := c.cfg
	interval := cfg.ViewInterval
	if interval == 0 {
		interval = 100 * sim.Millisecond
	}
	for _, sh := range c.shards {
		sh := sh
		sh.BackupAddr = BackupAddr(int(sh.ID))
		bep := rpc.NewEndpoint(c.k, c.net, sh.BackupAddr, rpc.Options{Workers: cfg.ServerWorkers})
		bd := disk.New(c.k, string(sh.BackupAddr)+"-disk", cfg.Disk)
		// Same Store as the primary — the durable bytes survive either
		// machine — but a private cache and disk model.
		sh.BackupMedia = localfs.NewMedia(sh.Media.Store(), bd, sh.FSID, cfg.ServerCacheBytes)
		scfg := cfg.Server
		scfg.FSID = sh.FSID
		sh.Backup = server.NewSNFS(c.k, bep, sh.BackupMedia, scfg, cfg.ServerOpts)
		if sh.Flight != nil {
			sh.Backup.SetFlight(sh.Flight)
		}
		if sh.Auditor != nil {
			// One auditor shadows the shard regardless of which replica
			// serves it; Promote resets it like a reboot.
			sh.Backup.SetAuditor(sh.Auditor)
		}
	}
	c.viewAddr = "viewsvc"
	vep := rpc.NewEndpoint(c.k, c.net, c.viewAddr, rpc.Options{Workers: 2})
	c.view = view.NewService(c.k, vep, c, view.Config{
		Interval:  interval,
		DeadPings: cfg.ViewDeadPings,
		Log:       cfg.ViewLog,
		OnEvent:   c.onViewEvent,
	})
	for _, sh := range c.shards {
		sh := sh
		sh.Repl = sh.Server.StartReplication(sh.BackupAddr, nil)
		c.view.Register(sh.ID, string(sh.Addr), string(sh.BackupAddr))
		view.StartPinger(c.k, sh.Server.Endpoint(), view.PingerConfig{
			Shard: sh.ID, Self: sh.Addr, Service: c.viewAddr, Interval: interval,
			Crashed: sh.Server.Crashed,
			Status:  sh.Repl.Status,
			OnView: func(p *sim.Proc, v proto.View, m proto.ShardMap) bool {
				if v.Primary != string(sh.Addr) {
					// Deposed while partitioned from our backup's
					// ErrDemoted path: adopt the newer map so ownerCheck
					// bounces our clients to the real primary.
					sh.Server.SetShardMap(m, sh.ID)
					sh.Repl.Stop()
					return true
				}
				if v.Backup == "" {
					// Our backup was declared dead; stop streaming into
					// the void.
					sh.Repl.Stop()
					return true
				}
				// Acking a view with a live backup commits us to it:
				// first drain the stream so a promotion in this view
				// never starts from a stale mirror.
				return sh.Repl.Sync(p)
			},
		})
		view.StartPinger(c.k, sh.Backup.Endpoint(), view.PingerConfig{
			Shard: sh.ID, Self: sh.BackupAddr, Service: c.viewAddr, Interval: interval,
			Crashed: sh.Backup.Crashed,
			Status:  func() (bool, uint32) { return sh.Backup.ReplSynced(), 0 },
			OnView: func(p *sim.Proc, v proto.View, m proto.ShardMap) bool {
				if v.Primary == string(sh.BackupAddr) {
					// Normally a no-op: onViewEvent promoted us
					// synchronously with the map change. This is the
					// belt-and-suspenders path.
					sh.Backup.Promote(p, m, v.Num)
				}
				return true
			},
		})
		sh.Metrics.GaugeFunc("snfs_shard_view_num",
			func() float64 { return float64(c.view.View(sh.ID).Num) })
		sh.Metrics.Help("snfs_shard_view_num", "Current view number for this shard.")
		sh.Metrics.GaugeFunc("snfs_shard_repl_lag",
			func() float64 { return float64(sh.Repl.Lag()) })
		sh.Metrics.Help("snfs_shard_repl_lag", "Replication records assigned but not yet confirmed by the backup.")
	}
}

// onViewEvent reacts to every published view change. On primary death it
// promotes the backup synchronously with the map change, so no client
// retransmission can reach a new primary whose table is not yet rebuilt;
// on backup death it stops the primary's stream.
func (c *Cluster) onViewEvent(p *sim.Proc, shard uint32, v proto.View, reason string) {
	if int(shard) >= len(c.shards) {
		return
	}
	sh := c.shards[shard]
	sh.Flight.Recordf("viewsvc", "view", 0, "shard %d -> view %d primary=%s backup=%s (%s)",
		shard, v.Num, v.Primary, v.Backup, reason)
	switch reason {
	case "primary-dead":
		if p != nil && sh.Backup != nil && v.Primary == string(sh.BackupAddr) {
			sh.Backup.Promote(p, c.Map(), v.Num)
		}
	case "backup-dead":
		if sh.Repl != nil {
			sh.Repl.Stop()
		}
	}
}

// ViewService returns the cluster's viewservice (nil without Backups).
func (c *Cluster) ViewService() *view.Service { return c.view }

// ViewAddr returns the viewservice's network address ("" without Backups).
func (c *Cluster) ViewAddr() simnet.Addr { return c.viewAddr }

// SetPrimary implements view.MapStore: rewrite one shard's primary
// address under a version bump and push the map to every server except
// the deposed primary — a dead or partitioned machine cannot be handed a
// map; it learns through ErrDemoted from its successor or its own next
// viewservice ping.
func (c *Cluster) SetPrimary(shard uint32, addr string) {
	if int(shard) >= len(c.m.Servers) || c.m.Servers[shard] == addr {
		return
	}
	old := c.m.Servers[shard]
	c.m.Servers = append([]string(nil), c.m.Servers...)
	c.m.Servers[shard] = addr
	c.m.Version++
	c.pushExcept(old)
}

// sortAssignments orders assignments by prefix so map iteration order
// never leaks into the wire image (reproducible simulations).
func sortAssignments(as []proto.ShardAssignment) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j].Prefix < as[j-1].Prefix; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// cloneMap deep-copies a shard map so later in-place rebalances cannot
// mutate a copy already handed to a server or router.
func cloneMap(m proto.ShardMap) proto.ShardMap {
	out := proto.ShardMap{Version: m.Version}
	out.Servers = append(out.Servers, m.Servers...)
	out.Assignments = append(out.Assignments, m.Assignments...)
	return out
}

// push installs the current map on every shard server (and backup).
func (c *Cluster) push() { c.pushExcept("") }

func (c *Cluster) pushExcept(skip string) {
	for _, sh := range c.shards {
		if string(sh.Addr) != skip {
			sh.Server.SetShardMap(cloneMap(c.m), sh.ID)
		}
		if sh.Backup != nil && string(sh.BackupAddr) != skip {
			sh.Backup.SetShardMap(cloneMap(c.m), sh.ID)
		}
	}
}

// Shards returns the member servers.
func (c *Cluster) Shards() []*Shard { return c.shards }

// Map returns a copy of the authoritative shard map.
func (c *Cluster) Map() proto.ShardMap { return cloneMap(c.m) }

// AuditErr returns the first shard auditor's recorded violation, if any:
// a cluster run is audit-clean iff every shard is.
func (c *Cluster) AuditErr() error {
	for _, sh := range c.shards {
		if err := sh.Auditor.Err(); err != nil {
			return fmt.Errorf("shard %d: %w", sh.ID, err)
		}
	}
	return nil
}

// Rebalance migrates prefix (a root-level subtree) to shard `to` and
// publishes a new map version. The protocol:
//
//  1. Quiesce: every file and directory in the subtree is expelled from
//     client caches through the shard's normal callback machinery
//     (forced write-back of dirty delayed writes, then invalidation) —
//     after this the source store holds the only copy of the bytes.
//  2. Copy the subtree into the destination store and unlink it from
//     the source. This is control-plane work; its disk and network cost
//     is not modeled (a production system would stream the subtree).
//  3. Bump the map version and push it to every server. Clients still
//     holding the old map now earn ErrStale on migrated handles and
//     ErrNotHome on root-level names, both of which lead them back
//     through a map refetch to the new home.
//
// Hard links within the subtree are split into independent files by the
// copy; links spanning the subtree boundary cannot exist (link is
// single-shard by construction).
func (c *Cluster) Rebalance(p *sim.Proc, prefix string, to uint32) error {
	idx := -1
	for i, a := range c.m.Assignments {
		if a.Prefix == prefix {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("cluster: prefix %q not in shard map", prefix)
	}
	if int(to) >= len(c.shards) {
		return fmt.Errorf("cluster: no shard %d", to)
	}
	from := c.m.Assignments[idx].Shard
	if from == to {
		return nil
	}
	src, dst := c.shards[from], c.shards[to]
	name := strings.TrimPrefix(prefix, "/")
	sst := sr(src)
	if a, err := sst.Lookup(sst.Root(), name); err == nil {
		c.expelTree(p, src, a)
		if err := copyTree(sst, sr(dst), sst.Root(), sr(dst).Root(), name); err != nil {
			return fmt.Errorf("cluster: migrating %s: %w", prefix, err)
		}
		if err := removeTree(sst, sst.Root(), name); err != nil {
			return fmt.Errorf("cluster: unlinking %s from shard %d: %w", prefix, from, err)
		}
	}
	c.m.Assignments = append([]proto.ShardAssignment(nil), c.m.Assignments...)
	c.m.Assignments[idx].Shard = to
	c.m.Version++
	c.push()
	return nil
}

func sr(sh *Shard) *localfs.Store { return sh.Media.Store() }

// expelTree quiesces every node of a subtree: depth-first expulsion so a
// directory's contents are clean before the directory itself (and its
// name-cache leases) go.
func (c *Cluster) expelTree(p *sim.Proc, sh *Shard, a localfs.Attr) {
	if a.Type == localfs.TypeDirectory {
		if ents, err := sr(sh).Readdir(a.Ino); err == nil {
			for _, e := range ents {
				if ea, err := sr(sh).GetAttr(e.Ino); err == nil {
					c.expelTree(p, sh, ea)
				}
			}
		}
	}
	sh.Server.Expel(p, proto.Handle{FSID: sh.FSID, Ino: a.Ino, Gen: a.Gen})
}

// copyTree replicates src:(sdir)/name into dst:(ddir)/name.
func copyTree(src, dst *localfs.Store, sdir, ddir uint64, name string) error {
	a, err := src.Lookup(sdir, name)
	if err != nil {
		return err
	}
	switch a.Type {
	case localfs.TypeDirectory:
		da, err := dst.Mkdir(ddir, name, a.Mode)
		if err != nil {
			return err
		}
		ents, err := src.Readdir(a.Ino)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if err := copyTree(src, dst, a.Ino, da.Ino, e.Name); err != nil {
				return err
			}
		}
	case localfs.TypeSymlink:
		target, err := src.Readlink(a.Ino)
		if err != nil {
			return err
		}
		if _, err := dst.Symlink(ddir, name, target); err != nil {
			return err
		}
	default:
		da, err := dst.Create(ddir, name, a.Mode)
		if err != nil {
			return err
		}
		if a.Size > 0 {
			data, err := src.ReadAt(a.Ino, 0, int(a.Size))
			if err != nil {
				return err
			}
			if _, err := dst.WriteAt(da.Ino, 0, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// removeTree unlinks (dir)/name recursively.
func removeTree(st *localfs.Store, dir uint64, name string) error {
	a, err := st.Lookup(dir, name)
	if err != nil {
		return err
	}
	if a.Type == localfs.TypeDirectory {
		ents, err := st.Readdir(a.Ino)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if err := removeTree(st, a.Ino, e.Name); err != nil {
				return err
			}
		}
		return st.Rmdir(dir, name)
	}
	_, err = st.Remove(dir, name)
	return err
}
