package cluster

import (
	"fmt"
	"testing"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
)

// TestParseMapSpecMoreErrorPaths extends the error table: malformed
// numbers and degenerate specs must be rejected, never half-parsed.
func TestParseMapSpecMoreErrorPaths(t *testing.T) {
	for _, bad := range []string{
		"0=a,v=abc",                  // non-numeric version
		"0=a,v=-1",                   // negative version
		"0=a,/x=abc",                 // non-numeric shard id in assignment
		"0=a,/x=-2",                  // negative shard id
		"-1=a",                       // negative server id
		"0=a,99999999999999999999=b", // id overflows uint32
		"",                           // empty spec: no shard 0
		" , , ",                      // only separators: no shard 0
		"/x=0",                       // assignments but no servers
	} {
		if m, err := ParseMapSpec(bad); err == nil {
			t.Errorf("ParseMapSpec(%q) accepted: %+v", bad, m)
		}
	}
}

// TestRouterNeverInstallsOlderMap pins the version-monotonicity rule:
// whatever order refetched maps arrive in — including concurrent
// refetches racing a failover's address change — the router only ever
// moves forward, and its per-shard targets always match the newest map
// it has accepted.
func TestRouterNeverInstallsOlderMap(t *testing.T) {
	k, c := testCluster(t, 2, map[string]uint32{"/a": 0, "/b": 1})
	r := c.NewRouter("host")

	mapAt := func(version uint32, shard0 string) proto.ShardMap {
		m := c.Map()
		m.Version = version
		m.Servers = append([]string(nil), m.Servers...)
		m.Servers[0] = shard0
		return m
	}

	if r.InstallMap(mapAt(1, "elsewhere")) {
		t.Fatal("router accepted a map at its own version")
	}
	if !r.InstallMap(mapAt(3, "shard0b")) {
		t.Fatal("router refused a strictly newer map")
	}
	if r.MapVersion() != 3 {
		t.Fatalf("map version %d, want 3", r.MapVersion())
	}
	if got := r.cls[0].Server(); string(got) != "shard0b" {
		t.Fatalf("shard 0 client targets %q after v3 install, want shard0b", got)
	}
	if r.InstallMap(mapAt(2, "shard0")) {
		t.Fatal("router accepted an older map")
	}
	if got := r.cls[0].Server(); string(got) != "shard0b" {
		t.Fatalf("older map regressed shard 0 target to %q", got)
	}

	// Concurrent refetches deliver versions 2..9 in scrambled order;
	// the router must end on the highest, targeting its address.
	versions := []uint32{7, 2, 9, 4, 8, 3, 6, 5}
	k.Go("installers", func(p *sim.Proc) {
		defer k.Stop()
		wg := sim.NewWaitGroup(k, len(versions))
		for i, v := range versions {
			v := v
			k.Go(fmt.Sprintf("install-v%d", v), func(ip *sim.Proc) {
				defer wg.Done()
				ip.Sleep(sim.Duration(i) * sim.Microsecond)
				r.InstallMap(mapAt(v, fmt.Sprintf("addr-v%d", v)))
			})
		}
		wg.Wait(p)
	})
	k.Run()
	if r.MapVersion() != 9 {
		t.Fatalf("after concurrent installs map version %d, want 9", r.MapVersion())
	}
	if got := r.cls[0].Server(); string(got) != "addr-v9" {
		t.Fatalf("shard 0 client targets %q, want addr-v9", got)
	}
}
