package cluster

import (
	"errors"
	"testing"

	"spritelynfs/internal/client"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/vfs"
)

// testCluster assembles a kernel, network, and audited cluster with the
// given assignments, mirroring the harness cost model at small scale.
func testCluster(t *testing.T, shards int, assign map[string]uint32) (*sim.Kernel, *Cluster) {
	t.Helper()
	k := sim.NewKernel(1)
	net := simnet.New(k, simnet.Config{PropDelay: 2 * sim.Millisecond, BytesPerSec: 1_250_000})
	c, err := New(k, net, Config{
		Shards:      shards,
		Assignments: assign,
		Server:      server.Config{CPUPerOp: 2 * sim.Millisecond, CPUPerKB: 150 * sim.Microsecond},
		Disk:        disk.RA81(),
		ClientConfig: client.Config{
			BlockSize:  8 * 1024,
			CacheBytes: 16 << 20,
			ReadAhead:  true,
		},
		ClientOpts: client.SNFSOptions{UpdateInterval: 30 * sim.Second},
		Audit:      true,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return k, c
}

// run executes fn as the workload and fails the test on workload or
// audit errors.
func run(t *testing.T, k *sim.Kernel, c *Cluster, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	k.Go("workload", func(p *sim.Proc) {
		defer k.Stop()
		err = fn(p)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AuditErr(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func writeFile(p *sim.Proc, fs vfs.FS, path string, data []byte) error {
	f, err := fs.Open(p, path, vfs.WriteOnly|vfs.Create|vfs.Truncate, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(p, 0, data); err != nil {
		return err
	}
	return f.Close(p)
}

func readFile(p *sim.Proc, fs vfs.FS, path string, n int) ([]byte, error) {
	f, err := fs.Open(p, path, vfs.ReadOnly, 0)
	if err != nil {
		return nil, err
	}
	data, err := f.ReadAt(p, 0, n)
	if cerr := f.Close(p); err == nil {
		err = cerr
	}
	return data, err
}

func fill(n int, b byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestClusterRoutesByPrefix(t *testing.T) {
	k, c := testCluster(t, 2, map[string]uint32{"/a": 0, "/b": 1})
	r := c.NewRouter("host1")
	run(t, k, c, func(p *sim.Proc) error {
		for _, dir := range []string{"/a", "/b"} {
			if err := r.Mkdir(p, dir, 0o755); err != nil {
				return err
			}
			if err := writeFile(p, r, dir+"/f.dat", fill(8192, dir[1])); err != nil {
				return err
			}
		}
		r.SyncAll(p)
		for _, dir := range []string{"/a", "/b"} {
			data, err := readFile(p, r, dir+"/f.dat", 8192)
			if err != nil {
				return err
			}
			if len(data) != 8192 || data[0] != dir[1] {
				t.Errorf("%s/f.dat: got %d bytes, first %q", dir, len(data), data[0])
			}
		}
		// The partition really partitioned: each shard served writes,
		// and neither holds the other's subtree.
		for i, sh := range c.Shards() {
			if got := sh.Server.Ops().Get("write"); got == 0 {
				t.Errorf("shard %d served no writes", i)
			}
		}
		st0, st1 := sr(c.Shards()[0]), sr(c.Shards()[1])
		if _, err := st0.Lookup(st0.Root(), "b"); err == nil {
			t.Error("shard 0 holds /b")
		}
		if _, err := st1.Lookup(st1.Root(), "a"); err == nil {
			t.Error("shard 1 holds /a")
		}
		// The cluster root merges both shards' listings.
		ents, err := r.Readdir(p, "")
		if err != nil {
			return err
		}
		names := map[string]bool{}
		for _, e := range ents {
			names[e.Name] = true
		}
		if !names["a"] || !names["b"] {
			t.Errorf("merged root listing %v, want a and b", names)
		}
		if r.Redirects() != 0 {
			t.Errorf("%d redirects on a fresh map", r.Redirects())
		}
		return nil
	})
}

func TestCrossShardRenameFailsCleanly(t *testing.T) {
	k, c := testCluster(t, 2, map[string]uint32{"/a": 0, "/b": 1})
	r := c.NewRouter("host1")
	run(t, k, c, func(p *sim.Proc) error {
		if err := r.Mkdir(p, "/a", 0o755); err != nil {
			return err
		}
		if err := r.Mkdir(p, "/b", 0o755); err != nil {
			return err
		}
		if err := writeFile(p, r, "/a/x.dat", fill(4096, 'x')); err != nil {
			return err
		}
		err := r.Rename(p, "/a/x.dat", "/b/y.dat")
		if proto.StatusOf(err) != proto.ErrXDev {
			t.Fatalf("cross-shard rename: %v, want EXDEV", err)
		}
		if err := r.Link(p, "/a/x.dat", "/b/y.dat"); proto.StatusOf(err) != proto.ErrXDev {
			t.Fatalf("cross-shard link: %v, want EXDEV", err)
		}
		// No half-applied op on either shard: the source survives
		// intact, the destination never appeared.
		if data, err := readFile(p, r, "/a/x.dat", 4096); err != nil || len(data) != 4096 {
			t.Errorf("source gone after failed rename: %v", err)
		}
		if _, err := r.Stat(p, "/b/y.dat"); proto.StatusOf(err) != proto.ErrNoEnt {
			t.Errorf("destination exists after failed rename: %v", err)
		}
		// Same-shard renames still work.
		if err := r.Rename(p, "/a/x.dat", "/a/z.dat"); err != nil {
			t.Errorf("same-shard rename: %v", err)
		}
		return nil
	})
}

// TestStaleMapConverges rebalances a prefix mid-workload: a router still
// holding the old map must converge after a single NOTHOME redirect, and
// dirty delayed writes quiesced by the migration must survive the move.
func TestStaleMapConverges(t *testing.T) {
	k, c := testCluster(t, 2, map[string]uint32{"/mv": 0, "/stay": 1})
	writer := c.NewRouter("writer")
	reader := c.NewRouter("reader")
	run(t, k, c, func(p *sim.Proc) error {
		if err := writer.Mkdir(p, "/mv", 0o755); err != nil {
			return err
		}
		// Delayed write-back: the dirty blocks sit in writer's cache,
		// NOT on the shard 0 store, when the rebalance starts.
		if err := writeFile(p, writer, "/mv/f.dat", fill(8192, 'm')); err != nil {
			return err
		}
		if err := c.Rebalance(p, "/mv", 1); err != nil {
			return err
		}
		// Migration must have forced the write-back: the bytes now
		// live on shard 1's store.
		st1 := sr(c.Shards()[1])
		if a, err := st1.Lookup(st1.Root(), "mv"); err != nil {
			t.Fatalf("shard 1 has no /mv after rebalance: %v", err)
		} else if fa, err := st1.Lookup(a.Ino, "f.dat"); err != nil || fa.Size != 8192 {
			t.Fatalf("shard 1 /mv/f.dat after rebalance: %v size=%d", err, fa.Size)
		}
		// The reader still holds map v1 pointing /mv at shard 0; one
		// NOTHOME redirect must converge it.
		if reader.MapVersion() != 1 {
			t.Fatalf("reader map v%d before redirect", reader.MapVersion())
		}
		data, err := readFile(p, reader, "/mv/f.dat", 8192)
		if err != nil {
			return err
		}
		if len(data) != 8192 || data[0] != 'm' {
			t.Errorf("migrated read: %d bytes, first %q", len(data), data[0])
		}
		if reader.Redirects() != 1 {
			t.Errorf("reader took %d redirects, want exactly 1", reader.Redirects())
		}
		if reader.MapVersion() != 2 {
			t.Errorf("reader map v%d after redirect, want 2", reader.MapVersion())
		}
		// The writer (also stale) converges on its next touch too —
		// including through its now-stale cached handles.
		if err := writeFile(p, writer, "/mv/g.dat", fill(4096, 'g')); err != nil {
			return err
		}
		if writer.MapVersion() != 2 {
			t.Errorf("writer map v%d after write, want 2", writer.MapVersion())
		}
		data, err = readFile(p, reader, "/mv/g.dat", 4096)
		if err != nil {
			return err
		}
		if len(data) != 4096 || data[0] != 'g' {
			t.Errorf("post-move write read back %d bytes, first %q", len(data), data[0])
		}
		// Shard 0 no longer holds the subtree.
		st0 := sr(c.Shards()[0])
		if _, err := st0.Lookup(st0.Root(), "mv"); err == nil {
			t.Error("shard 0 still holds /mv")
		}
		return nil
	})
}

// TestRedirectLoopCaps plants disagreeing shard maps directly on the
// servers (a configuration bug no healthy control plane produces): the
// router must fail loudly with ErrRedirectLoop instead of spinning.
func TestRedirectLoopCaps(t *testing.T) {
	k, c := testCluster(t, 2, map[string]uint32{"/x": 0})
	r := c.NewRouter("host1")
	// Both servers claim the *other* is /x's home, at the same (newer)
	// version — refetching can never advance the router past it.
	m0 := c.Map()
	m0.Version = 9
	m0.Assignments = []proto.ShardAssignment{{Prefix: "/x", Shard: 1}}
	m1 := c.Map()
	m1.Version = 9
	m1.Assignments = []proto.ShardAssignment{{Prefix: "/x", Shard: 0}}
	c.Shards()[0].Server.SetShardMap(m0, 0)
	c.Shards()[1].Server.SetShardMap(m1, 1)
	var err error
	k.Go("workload", func(p *sim.Proc) {
		defer k.Stop()
		err = r.Mkdir(p, "/x", 0o755)
	})
	k.Run()
	if !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("got %v, want ErrRedirectLoop", err)
	}
}

func TestParseMapSpec(t *testing.T) {
	m, err := ParseMapSpec("0=localhost:2049, 1=localhost:2050, /src=1, /doc=0, v=3")
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 || len(m.Servers) != 2 || m.Servers[1] != "localhost:2050" {
		t.Errorf("parsed %+v", m)
	}
	if m.Lookup("src/lib/a.go") != 1 || m.Lookup("doc") != 0 || m.Lookup("other") != 0 {
		t.Errorf("lookup through parsed map: %+v", m.Assignments)
	}
	for _, bad := range []string{
		"0=a,/x",        // entry without '='
		"0=a,/x/y=0",    // nested prefix
		"1=a,/x=1",      // sparse shard ids (no shard 0)
		"0=a,/x=5",      // shard out of range
		"0=a,0=b",       // duplicate server
		"0=a,v=0",       // zero version
		"0=,/x=0",       // empty address
		"0=a,/x=0,/x=0", // duplicate prefix
		"zz=a",          // junk key
	} {
		if _, err := ParseMapSpec(bad); err == nil {
			t.Errorf("ParseMapSpec(%q) accepted", bad)
		}
	}
}
