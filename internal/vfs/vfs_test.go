package vfs

import (
	"errors"
	"strings"
	"testing"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
)

// fakeFS records calls for namespace-routing tests.
type fakeFS struct {
	name  string
	calls []string
}

func (f *fakeFS) note(op, path string) { f.calls = append(f.calls, op+":"+path) }

func (f *fakeFS) Open(p *sim.Proc, path string, flags Flags, mode uint32) (File, error) {
	f.note("open", path)
	return &fakeFile{fs: f, path: path}, nil
}
func (f *fakeFS) Mkdir(p *sim.Proc, path string, mode uint32) error {
	f.note("mkdir", path)
	return nil
}
func (f *fakeFS) Remove(p *sim.Proc, path string) error { f.note("remove", path); return nil }
func (f *fakeFS) Rmdir(p *sim.Proc, path string) error  { f.note("rmdir", path); return nil }
func (f *fakeFS) Rename(p *sim.Proc, o, n string) error { f.note("rename", o+"->"+n); return nil }
func (f *fakeFS) Stat(p *sim.Proc, path string) (proto.Fattr, error) {
	f.note("stat", path)
	return proto.Fattr{}, nil
}
func (f *fakeFS) Readdir(p *sim.Proc, path string) ([]proto.DirEntry, error) {
	f.note("readdir", path)
	return nil, nil
}
func (f *fakeFS) SyncAll(p *sim.Proc) { f.note("sync", "") }
func (f *fakeFS) Link(p *sim.Proc, o, n string) error {
	f.note("link", o+"->"+n)
	return nil
}
func (f *fakeFS) Symlink(p *sim.Proc, t, l string) error {
	f.note("symlink", t+"->"+l)
	return nil
}
func (f *fakeFS) Readlink(p *sim.Proc, path string) (string, error) {
	f.note("readlink", path)
	return "", nil
}

type fakeFile struct {
	fs   *fakeFS
	path string
	data []byte
}

func (f *fakeFile) ReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	if off >= int64(len(f.data)) {
		return nil, nil
	}
	end := off + int64(n)
	if end > int64(len(f.data)) {
		end = int64(len(f.data))
	}
	return f.data[off:end], nil
}
func (f *fakeFile) WriteAt(p *sim.Proc, off int64, data []byte) (int, error) {
	end := off + int64(len(data))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], data)
	return len(data), nil
}
func (f *fakeFile) Close(p *sim.Proc) error { f.fs.note("close", f.path); return nil }
func (f *fakeFile) Sync(p *sim.Proc) error  { return nil }
func (f *fakeFile) Attr(p *sim.Proc) (proto.Fattr, error) {
	return proto.Fattr{Size: int64(len(f.data))}, nil
}

func runSim(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel(1)
	k.Go("t", func(p *sim.Proc) { defer k.Stop(); fn(p) })
	k.Run()
}

func TestResolveLongestPrefixWins(t *testing.T) {
	rootFS := &fakeFS{name: "root"}
	tmpFS := &fakeFS{name: "tmp"}
	usrTmpFS := &fakeFS{name: "usrtmp"}
	ns := &Namespace{}
	ns.Mount("/", rootFS)
	ns.Mount("/tmp", tmpFS)
	ns.Mount("/usr/tmp", usrTmpFS)

	cases := []struct {
		path    string
		wantFS  *fakeFS
		wantRel string
	}{
		{"/a/b", rootFS, "a/b"},
		{"/tmp/x", tmpFS, "x"},
		{"/tmp", tmpFS, ""},
		{"/tmpfoo", rootFS, "tmpfoo"},
		{"/usr/tmp/y", usrTmpFS, "y"},
		{"/usr/other", rootFS, "usr/other"},
		{"/", rootFS, ""},
	}
	for _, c := range cases {
		fs, rel, err := ns.Resolve(c.path)
		if err != nil {
			t.Errorf("Resolve(%q): %v", c.path, err)
			continue
		}
		if fs != c.wantFS || rel != c.wantRel {
			t.Errorf("Resolve(%q) = (%s, %q), want (%s, %q)",
				c.path, fs.(*fakeFS).name, rel, c.wantFS.name, c.wantRel)
		}
	}
}

func TestResolveRelativePathRejected(t *testing.T) {
	ns := &Namespace{}
	ns.Mount("/", &fakeFS{})
	if _, _, err := ns.Resolve("relative/path"); err == nil {
		t.Error("relative path accepted")
	}
}

func TestResolveNoMount(t *testing.T) {
	ns := &Namespace{}
	ns.Mount("/data", &fakeFS{})
	if _, _, err := ns.Resolve("/elsewhere"); err == nil {
		t.Error("unmounted path accepted")
	}
}

func TestRenameAcrossMountsRejected(t *testing.T) {
	a, b := &fakeFS{name: "a"}, &fakeFS{name: "b"}
	ns := &Namespace{}
	ns.Mount("/a", a)
	ns.Mount("/b", b)
	runSim(t, func(p *sim.Proc) {
		err := ns.Rename(p, "/a/x", "/b/y")
		if !errors.Is(err, ErrCrossMount) {
			t.Errorf("cross-mount rename: %v", err)
		}
		if err := ns.Rename(p, "/a/x", "/a/y"); err != nil {
			t.Errorf("same-mount rename: %v", err)
		}
	})
}

func TestSyncAllHitsEachFSOnce(t *testing.T) {
	shared := &fakeFS{name: "shared"}
	other := &fakeFS{name: "other"}
	ns := &Namespace{}
	ns.Mount("/", other)
	ns.Mount("/tmp", shared)
	ns.Mount("/usr/tmp", shared) // same FS mounted twice
	runSim(t, func(p *sim.Proc) {
		ns.SyncAll(p)
	})
	n := 0
	for _, c := range shared.calls {
		if strings.HasPrefix(c, "sync") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("shared FS synced %d times, want once", n)
	}
}

func TestWriteReadCopyHelpers(t *testing.T) {
	fs := &fakeFS{}
	ns := &Namespace{}
	ns.Mount("/", fs)
	runSim(t, func(p *sim.Proc) {
		if err := ns.WriteFile(p, "/f", 10000, 3000); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		// The fake FS creates a fresh file per Open, so reading /f
		// through a new handle returns empty; test Read/Copy against
		// one file instance instead via CopyFile mechanics on sizes.
		n, err := ns.ReadFile(p, "/f", 4096)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		_ = n
	})
	// WriteFile must have opened and closed exactly once.
	opens, closes := 0, 0
	for _, c := range fs.calls {
		if strings.HasPrefix(c, "open:f") {
			opens++
		}
		if strings.HasPrefix(c, "close:f") {
			closes++
		}
	}
	if opens != 2 || closes != 2 { // one for write, one for read
		t.Errorf("opens=%d closes=%d, want 2/2", opens, closes)
	}
}

func TestSplitPath(t *testing.T) {
	cases := map[string][]string{
		"":        nil,
		"a":       {"a"},
		"a/b/c":   {"a", "b", "c"},
		"a//b":    {"a", "b"},
		"./a/./b": {"a", "b"},
		"a/b/":    {"a", "b"},
	}
	for in, want := range cases {
		got := SplitPath(in)
		if len(got) != len(want) {
			t.Errorf("SplitPath(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SplitPath(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestFlagsWriting(t *testing.T) {
	if ReadOnly.Writing() {
		t.Error("ReadOnly.Writing()")
	}
	if !WriteOnly.Writing() || !ReadWrite.Writing() {
		t.Error("write flags not writing")
	}
	if !(WriteOnly | Create | Truncate).Writing() {
		t.Error("composite flags not writing")
	}
}

func TestNamespaceForwarding(t *testing.T) {
	fs := &fakeFS{}
	ns := &Namespace{}
	ns.Mount("/m", fs)
	runSim(t, func(p *sim.Proc) {
		if err := ns.Mkdir(p, "/m/d", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := ns.Remove(p, "/m/f"); err != nil {
			t.Fatal(err)
		}
		if err := ns.Rmdir(p, "/m/d"); err != nil {
			t.Fatal(err)
		}
		if _, err := ns.Stat(p, "/m/f"); err != nil {
			t.Fatal(err)
		}
		if _, err := ns.Readdir(p, "/m"); err != nil {
			t.Fatal(err)
		}
	})
	want := []string{"mkdir:d", "remove:f", "rmdir:d", "stat:f", "readdir:"}
	for _, w := range want {
		found := false
		for _, c := range fs.calls {
			if c == w {
				found = true
			}
		}
		if !found {
			t.Errorf("call %q not forwarded (got %v)", w, fs.calls)
		}
	}
	// Paths outside the mount error on every forwarder.
	runSim(t, func(p *sim.Proc) {
		if err := ns.Mkdir(p, "/other/d", 0o755); err == nil {
			t.Error("mkdir outside mount accepted")
		}
		if _, err := ns.Stat(p, "/other/f"); err == nil {
			t.Error("stat outside mount accepted")
		}
	})
}

func TestCopyFile(t *testing.T) {
	// A shared-state fake: one file map across opens.
	store := map[string]*fakeFile{}
	fs := &statefulFS{files: store}
	ns := &Namespace{}
	ns.Mount("/", fs)
	runSim(t, func(p *sim.Proc) {
		if err := ns.WriteFile(p, "/src", 10000, 3000); err != nil {
			t.Fatal(err)
		}
		n, err := ns.CopyFile(p, "/src", "/dst", 4096)
		if err != nil || n != 10000 {
			t.Fatalf("copy: %d, %v", n, err)
		}
		m, err := ns.ReadFile(p, "/dst", 4096)
		if err != nil || m != 10000 {
			t.Errorf("dst read: %d, %v", m, err)
		}
	})
}

// statefulFS shares file contents across opens (unlike fakeFS).
type statefulFS struct {
	files map[string]*fakeFile
}

func (f *statefulFS) Open(p *sim.Proc, path string, flags Flags, mode uint32) (File, error) {
	fl, ok := f.files[path]
	if !ok {
		if flags&Create == 0 {
			return nil, ErrCrossMount // any error will do for the test
		}
		fl = &fakeFile{fs: &fakeFS{}, path: path}
		f.files[path] = fl
	}
	return fl, nil
}
func (f *statefulFS) Mkdir(p *sim.Proc, path string, mode uint32) error  { return nil }
func (f *statefulFS) Remove(p *sim.Proc, path string) error              { return nil }
func (f *statefulFS) Rmdir(p *sim.Proc, path string) error               { return nil }
func (f *statefulFS) Rename(p *sim.Proc, o, n string) error              { return nil }
func (f *statefulFS) Stat(p *sim.Proc, path string) (proto.Fattr, error) { return proto.Fattr{}, nil }
func (f *statefulFS) Readdir(p *sim.Proc, path string) ([]proto.DirEntry, error) {
	return nil, nil
}
func (f *statefulFS) SyncAll(p *sim.Proc)                            {}
func (f *statefulFS) Link(p *sim.Proc, o, n string) error            { return nil }
func (f *statefulFS) Symlink(p *sim.Proc, t, l string) error         { return nil }
func (f *statefulFS) Readlink(p *sim.Proc, s string) (string, error) { return "", nil }
