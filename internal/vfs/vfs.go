// Package vfs is the file-system switch of the reproduction — the role
// Ultrix's Generic File System (GFS) layer plays in the paper (§4.1): a
// common file API over interchangeable implementations (local disk, NFS
// client, SNFS client), plus a mount table so a workload's paths can mix
// mounts exactly the way the benchmarks do (/data remote, /tmp local or
// remote).
//
// As in GFS, Open and Close are invoked for every file system type and
// for directories as well as files; the SNFS client turns them into its
// open/close RPCs (which is why SNFS pays an extra RPC on directory scans
// — the ScanDir effect in Table 5-1).
package vfs

import (
	"errors"
	"fmt"
	"strings"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
)

// Flags control Open.
type Flags uint32

// Open flags (a Unix-like subset).
const (
	ReadOnly  Flags = 0
	WriteOnly Flags = 1 << iota
	ReadWrite
	Create
	Truncate
)

// Writing reports whether the flags request write access.
func (f Flags) Writing() bool { return f&(WriteOnly|ReadWrite) != 0 }

// ErrCrossMount is returned by Rename when source and destination resolve
// to different mounts.
var ErrCrossMount = errors.New("vfs: rename across mounts")

// FS is one mounted file system.
type FS interface {
	// Open opens path (slash-separated, relative to the FS root).
	Open(p *sim.Proc, path string, flags Flags, mode uint32) (File, error)
	// Mkdir creates a directory.
	Mkdir(p *sim.Proc, path string, mode uint32) error
	// Remove unlinks a regular file.
	Remove(p *sim.Proc, path string) error
	// Rmdir removes an empty directory.
	Rmdir(p *sim.Proc, path string) error
	// Rename moves oldpath to newpath within this FS.
	Rename(p *sim.Proc, oldpath, newpath string) error
	// Stat returns attributes without opening.
	Stat(p *sim.Proc, path string) (proto.Fattr, error)
	// Readdir lists a directory. Implementations that require open
	// state (SNFS) open and close the directory around the listing.
	Readdir(p *sim.Proc, path string) ([]proto.DirEntry, error)
	// Link creates a hard link newpath to the file at oldpath.
	Link(p *sim.Proc, oldpath, newpath string) error
	// Symlink creates a symbolic link at linkpath pointing to target.
	Symlink(p *sim.Proc, target, linkpath string) error
	// Readlink returns the target of the symlink at path (the final
	// component is not followed).
	Readlink(p *sim.Proc, path string) (string, error)
	// SyncAll flushes all delayed writes (the sync(2) analogue used by
	// the update daemon).
	SyncAll(p *sim.Proc)
}

// File is an open file.
type File interface {
	// ReadAt reads up to n bytes at off; a short or empty result means
	// end of file.
	ReadAt(p *sim.Proc, off int64, n int) ([]byte, error)
	// WriteAt writes data at off.
	WriteAt(p *sim.Proc, off int64, data []byte) (int, error)
	// Close releases the open; for NFS this is where pending writes
	// are synchronously flushed.
	Close(p *sim.Proc) error
	// Sync flushes this file's dirty blocks to stable storage.
	Sync(p *sim.Proc) error
	// Attr returns current attributes.
	Attr(p *sim.Proc) (proto.Fattr, error)
}

// SplitPath breaks an FS-relative slash path into components; empty and
// "." components are dropped. The empty path yields no components (the FS
// root itself).
func SplitPath(rel string) []string {
	if rel == "" {
		return nil
	}
	parts := strings.Split(rel, "/")
	out := parts[:0]
	for _, c := range parts {
		if c != "" && c != "." {
			out = append(out, c)
		}
	}
	return out
}

// mount is one namespace attachment.
type mount struct {
	prefix string // "/" or "/tmp" style, no trailing slash except root
	fs     FS
}

// Namespace is a mount table routing absolute paths to file systems.
type Namespace struct {
	mounts []mount
}

// Mount attaches fs at prefix (e.g. "/", "/tmp"). Longest prefix wins at
// resolution time.
func (ns *Namespace) Mount(prefix string, fs FS) {
	prefix = strings.TrimSuffix(prefix, "/")
	if prefix == "" {
		prefix = "/"
	}
	ns.mounts = append(ns.mounts, mount{prefix: prefix, fs: fs})
}

// Resolve maps an absolute path to its mount and FS-relative path.
func (ns *Namespace) Resolve(path string) (FS, string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, "", fmt.Errorf("vfs: path %q not absolute", path)
	}
	var best *mount
	for i := range ns.mounts {
		m := &ns.mounts[i]
		if m.prefix == "/" {
			if best == nil {
				best = m
			}
			continue
		}
		if path == m.prefix || strings.HasPrefix(path, m.prefix+"/") {
			if best == nil || len(m.prefix) > len(best.prefix) {
				best = m
			}
		}
	}
	if best == nil {
		return nil, "", fmt.Errorf("vfs: no mount for %q", path)
	}
	rel := strings.TrimPrefix(path, best.prefix)
	rel = strings.TrimPrefix(rel, "/")
	return best.fs, rel, nil
}

// Open opens an absolute path.
func (ns *Namespace) Open(p *sim.Proc, path string, flags Flags, mode uint32) (File, error) {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.Open(p, rel, flags, mode)
}

// Mkdir creates a directory at an absolute path.
func (ns *Namespace) Mkdir(p *sim.Proc, path string, mode uint32) error {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return err
	}
	return fs.Mkdir(p, rel, mode)
}

// Remove unlinks an absolute path.
func (ns *Namespace) Remove(p *sim.Proc, path string) error {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return err
	}
	return fs.Remove(p, rel)
}

// Rmdir removes an empty directory at an absolute path.
func (ns *Namespace) Rmdir(p *sim.Proc, path string) error {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return err
	}
	return fs.Rmdir(p, rel)
}

// Rename moves oldpath to newpath; both must be on the same mount.
func (ns *Namespace) Rename(p *sim.Proc, oldpath, newpath string) error {
	ofs, orel, err := ns.Resolve(oldpath)
	if err != nil {
		return err
	}
	nfs, nrel, err := ns.Resolve(newpath)
	if err != nil {
		return err
	}
	if ofs != nfs {
		return ErrCrossMount
	}
	return ofs.Rename(p, orel, nrel)
}

// Stat returns the attributes of an absolute path.
func (ns *Namespace) Stat(p *sim.Proc, path string) (proto.Fattr, error) {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return proto.Fattr{}, err
	}
	return fs.Stat(p, rel)
}

// Readdir lists the directory at an absolute path.
func (ns *Namespace) Readdir(p *sim.Proc, path string) ([]proto.DirEntry, error) {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.Readdir(p, rel)
}

// Link creates a hard link; both paths must be on the same mount.
func (ns *Namespace) Link(p *sim.Proc, oldpath, newpath string) error {
	ofs, orel, err := ns.Resolve(oldpath)
	if err != nil {
		return err
	}
	nfs, nrel, err := ns.Resolve(newpath)
	if err != nil {
		return err
	}
	if ofs != nfs {
		return ErrCrossMount
	}
	return ofs.Link(p, orel, nrel)
}

// Symlink creates a symbolic link at an absolute path. The target string
// is stored verbatim and interpreted at resolution time, relative to the
// link's directory (or the mount root when it begins with "/").
func (ns *Namespace) Symlink(p *sim.Proc, target, linkpath string) error {
	fs, rel, err := ns.Resolve(linkpath)
	if err != nil {
		return err
	}
	return fs.Symlink(p, target, rel)
}

// Readlink returns a symlink's target.
func (ns *Namespace) Readlink(p *sim.Proc, path string) (string, error) {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return "", err
	}
	return fs.Readlink(p, rel)
}

// SyncAll flushes delayed writes on every mount (sync(2)).
func (ns *Namespace) SyncAll(p *sim.Proc) {
	done := map[FS]bool{}
	for _, m := range ns.mounts {
		if !done[m.fs] {
			done[m.fs] = true
			m.fs.SyncAll(p)
		}
	}
}

// ---- convenience helpers used heavily by workloads ----

// WriteFile creates (truncating) path and writes data through it in
// chunkSize pieces, then closes.
func (ns *Namespace) WriteFile(p *sim.Proc, path string, size int, chunkSize int) error {
	f, err := ns.Open(p, path, WriteOnly|Create|Truncate, 0o644)
	if err != nil {
		return err
	}
	if chunkSize <= 0 {
		chunkSize = 8192
	}
	buf := make([]byte, chunkSize)
	off := int64(0)
	for remaining := size; remaining > 0; {
		n := chunkSize
		if remaining < n {
			n = remaining
		}
		if _, err := f.WriteAt(p, off, buf[:n]); err != nil {
			f.Close(p)
			return err
		}
		off += int64(n)
		remaining -= n
	}
	return f.Close(p)
}

// ReadFile opens path and reads it sequentially to the end in chunkSize
// pieces, returning the number of bytes read.
func (ns *Namespace) ReadFile(p *sim.Proc, path string, chunkSize int) (int64, error) {
	f, err := ns.Open(p, path, ReadOnly, 0)
	if err != nil {
		return 0, err
	}
	if chunkSize <= 0 {
		chunkSize = 8192
	}
	var off int64
	for {
		data, err := f.ReadAt(p, off, chunkSize)
		if err != nil {
			f.Close(p)
			return off, err
		}
		off += int64(len(data))
		if len(data) < chunkSize {
			break
		}
	}
	return off, f.Close(p)
}

// CopyFile reads src and writes it to dst in chunkSize pieces.
func (ns *Namespace) CopyFile(p *sim.Proc, src, dst string, chunkSize int) (int64, error) {
	in, err := ns.Open(p, src, ReadOnly, 0)
	if err != nil {
		return 0, err
	}
	out, err := ns.Open(p, dst, WriteOnly|Create|Truncate, 0o644)
	if err != nil {
		in.Close(p)
		return 0, err
	}
	if chunkSize <= 0 {
		chunkSize = 8192
	}
	var off int64
	for {
		data, err := in.ReadAt(p, off, chunkSize)
		if err != nil {
			in.Close(p)
			out.Close(p)
			return off, err
		}
		if len(data) == 0 {
			break
		}
		if _, err := out.WriteAt(p, off, data); err != nil {
			in.Close(p)
			out.Close(p)
			return off, err
		}
		off += int64(len(data))
		if len(data) < chunkSize {
			break
		}
	}
	if err := in.Close(p); err != nil {
		out.Close(p)
		return off, err
	}
	return off, out.Close(p)
}
