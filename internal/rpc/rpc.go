// Package rpc provides the remote-procedure-call layer beneath NFS and
// Spritely NFS: an ONC-RPC-style message format (xid-matched call/reply),
// a client path with timeout and retransmission, a server path with a
// bounded worker pool, and a duplicate-request cache so retransmitted
// non-idempotent operations are answered from their recorded replies
// (the fix Juszczak describes and the paper cites).
//
// Two transports implement the layer: the simulated network (this file,
// used by all experiments) and a real TCP transport (tcp.go, used by the
// standalone snfsd daemon and snfscli).
//
// SNFS requires that the *client* also offer RPC service, because the
// server issues callback RPCs; an Endpoint therefore plays both roles.
// The paper's deadlock rule — with N server threads at most N−1 may issue
// callbacks concurrently, so one can always service the resulting
// write-backs — is enforced by the SNFS server on top of this package's
// worker pool.
package rpc

import (
	"errors"
	"fmt"
	"sync"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/span"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/xdr"
)

// Message types.
const (
	msgCall  = 0
	msgReply = 1
)

// Status is the result code carried in every reply.
type Status uint32

// Reply status codes.
const (
	StatusOK Status = iota
	StatusProgUnavail
	StatusProcUnavail
	StatusGarbage
	StatusSystemErr
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusProgUnavail:
		return "PROG_UNAVAIL"
	case StatusProcUnavail:
		return "PROC_UNAVAIL"
	case StatusGarbage:
		return "GARBAGE_ARGS"
	case StatusSystemErr:
		return "SYSTEM_ERR"
	}
	return fmt.Sprintf("Status(%d)", uint32(s))
}

// Errors returned by Call.
var (
	ErrTimeout     = errors.New("rpc: call timed out")
	ErrProgUnavail = errors.New("rpc: program unavailable")
	ErrProcUnavail = errors.New("rpc: procedure unavailable")
	ErrGarbage     = errors.New("rpc: garbage arguments")
	ErrSystem      = errors.New("rpc: system error on server")
)

func statusErr(s Status) error {
	switch s {
	case StatusOK:
		return nil
	case StatusProgUnavail:
		return ErrProgUnavail
	case StatusProcUnavail:
		return ErrProcUnavail
	case StatusGarbage:
		return ErrGarbage
	default:
		return ErrSystem
	}
}

// Caller issues RPCs. Protocol code (NFS and SNFS clients, and the SNFS
// server's callback path) depends only on this interface, so it runs
// unchanged over the simulated network or TCP.
type Caller interface {
	Call(ctx sim.Ctx, to simnet.Addr, prog, vers, proc uint32, args []byte) ([]byte, error)
}

// Handler services calls to one program. It runs on a server worker and
// may itself block (disk access, nested RPCs).
type Handler func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status)

// Options configures an Endpoint.
type Options struct {
	// Workers is the size of the service thread pool (the paper's "N
	// threads"). Zero means 4.
	Workers int
	// CallTimeout is the per-attempt reply timeout. Zero means 1 s.
	CallTimeout sim.Duration
	// MaxRetries is the number of retransmissions after the first
	// attempt. Zero means 4.
	MaxRetries int
	// DupCacheSize bounds the duplicate-request cache. Zero means 128.
	DupCacheSize int
	// MaxBackoff caps the exponentially-doubled per-attempt timeout: a
	// caller with a generous retry budget stops doubling once it reaches
	// the cap instead of growing without bound. Zero means 60 s, which
	// the default 1,2,4,8,16 s schedule never reaches — existing
	// configurations keep their exact retransmit times.
	MaxBackoff sim.Duration
	// BackoffJitter, when positive, perturbs each backed-off timeout by
	// a uniform draw in ±(jitter × timeout) from the kernel RNG, so
	// clients that timed out together stop retransmitting in lockstep.
	// Zero (the default) keeps the schedule fully deterministic, which
	// the paper-fidelity runs depend on.
	BackoffJitter float64
	// Exec, when set, puts the endpoint in event mode: incoming messages
	// are dispatched at their delivery instant by a port callback instead
	// of a dedicated dispatcher process, and calls are serviced by pooled
	// processes borrowed from this (typically shared) executor instead of
	// a per-endpoint worker pool. An event-mode endpoint parks zero
	// goroutines of its own — the property that lets a fleet run
	// thousands of client endpoints — at identical virtual timing: both
	// modes hand work off at the delivery instant through the event heap.
	// Workers is ignored in event mode; concurrency is bounded by the
	// executor's pool.
	Exec *sim.Executor
}

func (o *Options) fill() {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = sim.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.DupCacheSize == 0 {
		o.DupCacheSize = 128
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 60 * sim.Second
	}
}

// Stats counts endpoint activity.
type Stats struct {
	CallsSent     int64 // distinct calls issued (not counting retransmits)
	Retransmits   int64
	Timeouts      int64 // calls that exhausted all retries
	CallsServed   int64 // handler invocations
	DupHits       int64 // retransmits answered from the duplicate cache
	DupInProgress int64 // retransmits dropped because the call was executing
	DupEvictions  int64 // duplicate-cache entries evicted to make room
}

type request struct {
	from simnet.Addr
	xid  uint32
	prog uint32
	vers uint32
	proc uint32
	op   uint64   // causal operation ID carried in the call header
	enq  sim.Time // when dispatch queued it (for the srv-queue span)
	args []byte
}

type reply struct {
	status Status
	body   []byte
}

// Endpoint is a host's RPC attachment to the simulated network: it issues
// calls, matches replies, and services incoming calls with a worker pool.
type Endpoint struct {
	k       *sim.Kernel
	net     *simnet.Network
	port    *simnet.Port
	addr    simnet.Addr
	opts    Options
	nextXID uint32
	pending map[uint32]*sim.Signal
	progs   map[uint32]Handler
	workQ   *sim.Queue[request]
	dup     *dupCache
	stats   Stats
	stopped bool
	// Tracer, when set, records this endpoint's RPC activity.
	Tracer *trace.Tracer
	// Spans, when set, records causal latency spans: wire time and
	// retransmit gaps on the call side, queue wait and serve intervals
	// on the service side. Nil keeps the hot path at one nil check.
	Spans *span.Recorder
	// Reroute, when set, is consulted before each retransmission of a
	// timed-out call: given the address the call has been going to, it
	// may return a different one (replicated-shard failover — the old
	// primary is dead and the shard map now names its backup). The
	// retransmission reuses the original xid and wire image, so a
	// server that already executed the call via the replicated
	// duplicate cache answers from the recorded reply instead of
	// re-executing (exactly-once across the failover, same as within
	// one server's retry window).
	Reroute func(to simnet.Addr) simnet.Addr
	// OnServed, when set, observes every completed handler invocation
	// with the reply wire image recorded in the duplicate cache. The
	// replication stream uses it to forward dup entries of
	// non-idempotent calls to the backup.
	OnServed func(from simnet.Addr, xid, prog, vers, proc uint32, wire []byte)
	// met, when set via SetMetrics, records per-procedure latency
	// histograms. Kept behind one pointer so the disabled hot path pays
	// a single nil check.
	met *epMetrics
}

// epMetrics caches per-procedure histograms so the enabled path pays a
// small map lookup instead of a name-formatting allocation per call.
type epMetrics struct {
	r    *metrics.Registry
	host string

	mu    sync.Mutex
	call  map[procKey]*metrics.Histogram
	serve map[uint64]*metrics.Histogram
}

type procKey struct {
	progProc uint64
	retrans  bool
}

func pp(prog, proc uint32) uint64 { return uint64(prog)<<32 | uint64(proc) }

// SetMetrics attaches a metrics registry: the endpoint records one
// call→reply latency sample per completed call (retransmitted calls in a
// separately-tagged series) and one serve-duration sample per handler
// invocation. A nil registry detaches.
func (e *Endpoint) SetMetrics(r *metrics.Registry) {
	if r == nil {
		e.met = nil
		return
	}
	e.met = &epMetrics{
		r:     r,
		host:  string(e.addr),
		call:  make(map[procKey]*metrics.Histogram),
		serve: make(map[uint64]*metrics.Histogram),
	}
	host := string(e.addr)
	r.GaugeFunc(metrics.Label("snfs_rpc_dupcache_hits_total", "host", host),
		func() float64 { return float64(e.stats.DupHits) })
	r.GaugeFunc(metrics.Label("snfs_rpc_dupcache_inprogress_drops_total", "host", host),
		func() float64 { return float64(e.stats.DupInProgress) })
	r.GaugeFunc(metrics.Label("snfs_rpc_dupcache_evictions_total", "host", host),
		func() float64 { return float64(e.stats.DupEvictions) })
}

// Metrics returns the attached registry, if any.
func (e *Endpoint) Metrics() *metrics.Registry {
	if e.met == nil {
		return nil
	}
	return e.met.r
}

// observeCall records a call latency sample; op (nonzero only when spans
// are armed) stamps the bucket's exemplar so the histogram links to the
// captured span tree.
func (m *epMetrics) observeCall(prog, proc uint32, d sim.Duration, retrans bool, op uint64) {
	k := procKey{progProc: pp(prog, proc), retrans: retrans}
	m.mu.Lock()
	h, ok := m.call[k]
	if !ok {
		kv := []string{"host", m.host, "proc", proto.ProcName(prog, proc)}
		if retrans {
			kv = append(kv, "retrans", "1")
		}
		h = m.r.Histogram(metrics.Label("snfs_rpc_call_latency_us", kv...))
		m.call[k] = h
	}
	m.mu.Unlock()
	h.ObserveOp(int64(d), op)
}

func (m *epMetrics) observeServe(prog, proc uint32, d sim.Duration, op uint64) {
	k := pp(prog, proc)
	m.mu.Lock()
	h, ok := m.serve[k]
	if !ok {
		h = m.r.Histogram(metrics.Label("snfs_rpc_serve_us",
			"host", m.host, "proc", proto.ProcName(prog, proc)))
		m.serve[k] = h
	}
	m.mu.Unlock()
	h.ObserveOp(int64(d), op)
}

// NewEndpoint attaches addr to net and starts its dispatcher and worker
// processes on kernel k.
func NewEndpoint(k *sim.Kernel, net *simnet.Network, addr simnet.Addr, opts Options) *Endpoint {
	opts.fill()
	e := &Endpoint{
		k:       k,
		net:     net,
		port:    net.Listen(addr),
		addr:    addr,
		opts:    opts,
		pending: make(map[uint32]*sim.Signal),
		progs:   make(map[uint32]Handler),
		workQ:   sim.NewQueue[request](k),
	}
	e.dup = newDupCache(opts.DupCacheSize, &e.stats.DupEvictions)
	if opts.Exec != nil {
		e.port.SetHandler(e.handleMsg)
		return e
	}
	k.Go(string(addr)+"/rpc-dispatch", e.dispatch)
	for i := 0; i < opts.Workers; i++ {
		k.Go(fmt.Sprintf("%s/rpc-worker%d", addr, i), e.worker)
	}
	return e
}

// Addr returns the endpoint's network address.
func (e *Endpoint) Addr() simnet.Addr { return e.addr }

// Stats returns a snapshot of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Workers returns the service pool size.
func (e *Endpoint) Workers() int { return e.opts.Workers }

// Register installs h as the handler for program prog.
func (e *Endpoint) Register(prog uint32, h Handler) { e.progs[prog] = h }

// Stop detaches the endpoint from the network: subsequent messages to it
// are dropped, simulating a crashed host. Worker and dispatcher processes
// remain blocked and are reclaimed when the kernel shuts down.
func (e *Endpoint) Stop() {
	e.stopped = true
	e.net.Unlisten(e.addr)
}

// Restart reattaches a stopped endpoint, simulating reboot. Pending state
// (the duplicate cache, in-flight calls) is discarded, as a reboot would.
func (e *Endpoint) Restart() {
	if !e.stopped {
		return
	}
	e.stopped = false
	e.port = e.net.Listen(e.addr)
	e.pending = make(map[uint32]*sim.Signal)
	e.dup = newDupCache(e.opts.DupCacheSize, &e.stats.DupEvictions)
	if e.opts.Exec != nil {
		e.port.SetHandler(e.handleMsg)
		return
	}
	e.k.Go(string(e.addr)+"/rpc-dispatch", e.dispatch)
	for i := 0; i < e.opts.Workers; i++ {
		e.k.Go(fmt.Sprintf("%s/rpc-worker%d", e.addr, i), e.worker)
	}
}

// Call issues an RPC to program prog procedure proc at to, retransmitting
// on timeout, and returns the reply body. ctx must be a *sim.Proc.
func (e *Endpoint) Call(ctx sim.Ctx, to simnet.Addr, prog, vers, proc uint32, args []byte) ([]byte, error) {
	return e.CallEx(ctx, to, prog, vers, proc, args, e.opts.CallTimeout, e.opts.MaxRetries)
}

// CallEx is Call with an explicit per-attempt timeout and retry budget.
// The SNFS server uses a tight budget for callbacks: a callback to a dead
// client must be abandoned before the opener that triggered it times out
// (§3.2).
func (e *Endpoint) CallEx(ctx sim.Ctx, to simnet.Addr, prog, vers, proc uint32, args []byte, callTimeout sim.Duration, maxRetries int) ([]byte, error) {
	p, ok := ctx.(*sim.Proc)
	if !ok {
		return nil, fmt.Errorf("rpc: simulated endpoint requires a *sim.Proc context, got %T", ctx)
	}
	sp := e.Spans.Begin(p, string(e.addr), callSpanKind(prog), procTraceName(prog, proc))
	defer sp.End()
	return e.start(p, to, prog, vers, proc, nil, args, callTimeout, maxRetries).wait(p)
}

// CallMsg is Call with the arguments encoded straight from m into the
// pooled wire buffer, skipping the intermediate proto.Marshal allocation.
// The wire image is byte-identical to Call(..., proto.Marshal(m)).
func (e *Endpoint) CallMsg(ctx sim.Ctx, to simnet.Addr, prog, vers, proc uint32, m proto.Message) ([]byte, error) {
	return e.CallMsgEx(ctx, to, prog, vers, proc, m, e.opts.CallTimeout, e.opts.MaxRetries)
}

// CallMsgEx is CallMsg with an explicit per-attempt timeout and retry
// budget (see CallEx).
func (e *Endpoint) CallMsgEx(ctx sim.Ctx, to simnet.Addr, prog, vers, proc uint32, m proto.Message, callTimeout sim.Duration, maxRetries int) ([]byte, error) {
	p, ok := ctx.(*sim.Proc)
	if !ok {
		return nil, fmt.Errorf("rpc: simulated endpoint requires a *sim.Proc context, got %T", ctx)
	}
	sp := e.Spans.Begin(p, string(e.addr), callSpanKind(prog), procTraceName(prog, proc))
	defer sp.End()
	return e.start(p, to, prog, vers, proc, m, nil, callTimeout, maxRetries).wait(p)
}

// Start issues an RPC without waiting for its reply: the call is encoded
// and put on the wire, and the returned Pending collects the reply (and
// owns the retransmit schedule) in Wait. Any number of calls may be
// outstanding per endpoint — replies are multiplexed by xid — so a
// client can pipeline N requests on one connection instead of paying a
// full round trip each.
func (e *Endpoint) Start(ctx sim.Ctx, to simnet.Addr, prog, vers, proc uint32, m proto.Message) (*Pending, error) {
	p, ok := ctx.(*sim.Proc)
	if !ok {
		return nil, fmt.Errorf("rpc: simulated endpoint requires a *sim.Proc context, got %T", ctx)
	}
	return e.start(p, to, prog, vers, proc, m, nil, e.opts.CallTimeout, e.opts.MaxRetries), nil
}

// callSpanKind classifies a call for the span recorder.
func callSpanKind(prog uint32) span.Kind {
	if prog == proto.ProgCallback {
		return span.Callback
	}
	return span.RPC
}

// callHeaderLen is the size of the call message header (xid, type, prog,
// vers, proc, op).
const callHeaderLen = 5*4 + 8

// Pending is one in-flight call issued with Start.
type Pending struct {
	e       *Endpoint
	to      simnet.Addr
	prog    uint32
	vers    uint32
	proc    uint32
	xid     uint32
	op      uint64
	sig     *sim.Signal
	wire    []byte
	timeout sim.Duration
	retries int
	issued  sim.Time // when the call was first put on the wire
	sent    sim.Time // when the current attempt was put on the wire
}

// start encodes and transmits the first attempt of a call. The wire
// image is built in a pooled encoder and copied out exactly once: the
// simulated network retains payloads until (possibly duplicated)
// delivery and the retransmit loop resends the same image, so the call's
// buffer must be GC-owned rather than pool-recycled.
func (e *Endpoint) start(p *sim.Proc, to simnet.Addr, prog, vers, proc uint32, m proto.Message, args []byte, callTimeout sim.Duration, maxRetries int) *Pending {
	e.nextXID++
	xid := e.nextXID
	sig := sim.NewSignal(e.k)
	e.pending[xid] = sig
	e.stats.CallsSent++
	op := p.Op()

	enc := xdr.GetEncoder()
	enc.Uint32(xid)
	enc.Uint32(msgCall)
	enc.Uint32(prog)
	enc.Uint32(vers)
	enc.Uint32(proc)
	enc.Uint64(op)
	if m != nil {
		m.Encode(enc)
	} else {
		enc.Raw(args)
	}
	wire := enc.CopyBytes()
	enc.Release()

	e.Tracer.RecordOp(string(e.addr), trace.RPCCall, op, "-> %s %s xid=%d (%dB)",
		to, procTraceName(prog, proc), xid, len(wire)-callHeaderLen)
	c := &Pending{
		e: e, to: to, prog: prog, vers: vers, proc: proc, xid: xid, op: op,
		sig: sig, wire: wire, timeout: callTimeout, retries: maxRetries,
		issued: e.k.Now(), sent: e.k.Now(),
	}
	e.net.Send(e.addr, to, wire)
	return c
}

// Wait collects the reply for a call issued with Start, retransmitting
// on timeout exactly as Call does. It records the whole-call span as an
// explicit interval (pipelined calls complete out of order, so the
// recorder's nested Begin/End discipline does not apply).
func (c *Pending) Wait(ctx sim.Ctx) ([]byte, error) {
	p, ok := ctx.(*sim.Proc)
	if !ok {
		return nil, fmt.Errorf("rpc: simulated endpoint requires a *sim.Proc context, got %T", ctx)
	}
	body, err := c.wait(p)
	c.e.Spans.Add(p, string(c.e.addr), callSpanKind(c.prog), procTraceName(c.prog, c.proc), c.issued, c.e.k.Now())
	return body, err
}

// wait runs the timeout/retransmit loop for an already-transmitted call.
func (c *Pending) wait(p *sim.Proc) ([]byte, error) {
	e := c.e
	defer delete(e.pending, c.xid)
	// The backoff cap never shrinks an explicitly generous first timeout
	// (callback delivery passes its own).
	limit := e.opts.MaxBackoff
	if c.timeout > limit {
		limit = c.timeout
	}
	backoff := c.timeout
	timeout := c.timeout
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if e.Reroute != nil {
				if alt := e.Reroute(c.to); alt != "" && alt != c.to {
					e.Tracer.RecordOp(string(e.addr), trace.RPCRetry, c.op, "~> rerouting %s -> %s xid=%d",
						c.to, alt, c.xid)
					c.to = alt
				}
			}
			e.stats.Retransmits++
			e.Tracer.RecordOp(string(e.addr), trace.RPCRetry, c.op, "-> %s %s xid=%d attempt=%d",
				c.to, procTraceName(c.prog, c.proc), c.xid, attempt)
			c.sent = e.k.Now()
			e.net.Send(e.addr, c.to, c.wire)
		}
		v, got := c.sig.WaitTimeout(p, timeout)
		if got {
			if e.met != nil {
				var exop uint64
				if e.Spans != nil {
					exop = c.op
				}
				e.met.observeCall(c.prog, c.proc, e.k.Now().Sub(c.issued), attempt > 0, exop)
			}
			r := v.(reply)
			if err := statusErr(r.status); err != nil {
				return nil, err
			}
			return r.body, nil
		}
		// The whole timed-out attempt window is retransmit backoff.
		e.Spans.Add(p, string(e.addr), span.Retrans, procTraceName(c.prog, c.proc), c.sent, e.k.Now())
		// Exponential backoff, capped; jitter (off by default) is applied
		// to the waited timeout only, so it never compounds.
		backoff *= 2
		if backoff > limit {
			backoff = limit
		}
		timeout = backoff
		if j := e.opts.BackoffJitter; j > 0 {
			timeout += sim.Duration(j * (2*e.k.Rand().Float64() - 1) * float64(backoff))
		}
	}
	e.stats.Timeouts++
	return nil, fmt.Errorf("%w: %s -> %s prog %d proc %d", ErrTimeout, e.addr, c.to, c.prog, c.proc)
}

// dispatch routes incoming messages: replies to their waiting callers,
// calls through the duplicate cache to the worker queue. It is the
// queue-mode receive loop; event-mode endpoints route each message
// through handleMsg at its delivery instant instead.
func (e *Endpoint) dispatch(p *sim.Proc) {
	for {
		e.handleMsg(e.port.Recv(p))
	}
}

// handleMsg routes one incoming message. It never blocks, so it runs
// either on the dispatch process (queue mode) or directly in scheduler
// context at the message's delivery instant (event mode); both paths
// hand further work off through the event heap at the same virtual
// time, so the two modes are timing-identical.
func (e *Endpoint) handleMsg(m simnet.Message) {
	// Zero-copy views into the payload are sound here: the simulated
	// network hands over a GC-owned buffer it never reuses, so a
	// handler (or the waiting caller) may retain the view for as
	// long as it likes. See DESIGN.md §13.
	var d xdr.Decoder
	d.Reset(m.Payload)
	xid := d.Uint32()
	mtype := d.Uint32()
	switch mtype {
	case msgReply:
		status := Status(d.Uint32())
		body := d.RawRef()
		if d.Err() != nil {
			return // corrupt reply; let the caller time out
		}
		if sig, ok := e.pending[xid]; ok {
			sig.Fire(reply{status: status, body: body})
		}
	case msgCall:
		prog := d.Uint32()
		vers := d.Uint32()
		proc := d.Uint32()
		op := d.Uint64()
		args := d.RawRef()
		if d.Err() != nil {
			e.sendReply(m.From, xid, StatusGarbage, nil)
			return
		}
		switch state, cached := e.dup.lookup(m.From, xid); state {
		case dupDone:
			// Retransmit of a completed call: resend the
			// recorded reply without re-executing. A fresh copy
			// rides the wire — the cache's private image must
			// never be exposed to receivers that hand out
			// mutable zero-copy views of delivered payloads.
			e.stats.DupHits++
			e.net.Send(e.addr, m.From, append([]byte(nil), cached...))
		case dupInProgress:
			// Still executing; drop and let the client
			// retry again later.
			e.stats.DupInProgress++
		default:
			e.dup.start(m.From, xid)
			req := request{from: m.From, xid: xid, prog: prog, vers: vers, proc: proc, op: op, enq: e.k.Now(), args: args}
			if e.opts.Exec != nil {
				e.opts.Exec.Submit(req.op, func(p *sim.Proc) { e.serveOne(p, req) }, nil)
			} else {
				e.workQ.Put(req)
			}
		}
	}
}

// worker services one call at a time from the shared queue.
func (e *Endpoint) worker(p *sim.Proc) {
	for {
		e.serveOne(p, e.workQ.Get(p))
	}
}

// serveOne runs one call through its handler and sends the reply. p is a
// dedicated worker in queue mode or a pooled executor process in event
// mode; either way it may block (disk access, nested RPCs).
func (e *Endpoint) serveOne(p *sim.Proc, req request) {
	e.stats.CallsServed++
	start := e.k.Now()
	// The worker inherits the caller's causal operation ID, so
	// everything the handler does — disk access, callback fan-out,
	// nested RPCs — is attributed to the originating syscall.
	p.SetOp(req.op)
	var sp span.Handle
	exop := req.op
	if e.Spans != nil {
		if req.op == 0 {
			// Untagged call (a TCP gateway client, an untagged
			// daemon): mint a fresh op so the serve roots its own
			// trace and still shows up in the slow-op capture.
			exop = p.BeginOp()
		}
		sp = e.Spans.Begin(p, string(e.addr), span.Serve, procTraceName(req.prog, req.proc))
		e.Spans.Add(p, string(e.addr), span.SrvQueue, "queue", req.enq, e.k.Now())
	}
	e.Tracer.RecordOp(string(e.addr), trace.RPCServe, req.op, "<- %s %s xid=%d (%dB)",
		req.from, procTraceName(req.prog, req.proc), req.xid, len(req.args))
	h, ok := e.progs[req.prog]
	var body []byte
	status := StatusProgUnavail
	if ok {
		body, status = h(p, req.from, req.proc, req.args)
	}
	wire := e.sendReply(req.from, req.xid, status, body)
	// finish stores a private copy of the reply (the transmitted
	// buffer may be alias-mutated by the client's zero-copy decode);
	// observers get the stable copy so the replication stream is
	// immune too.
	stable := e.dup.finish(req.from, req.xid, wire)
	if stable == nil {
		stable = wire // entry evicted mid-execution; nothing retains this
	}
	if e.OnServed != nil {
		e.OnServed(req.from, req.xid, req.prog, req.vers, req.proc, stable)
	}
	e.Tracer.RecordOp(string(e.addr), trace.RPCReply, req.op, "-> %s %s xid=%d",
		req.from, procTraceName(req.prog, req.proc), req.xid)
	sp.End()
	p.SetOp(0)
	if e.met != nil {
		if e.Spans == nil {
			exop = 0
		}
		e.met.observeServe(req.prog, req.proc, e.k.Now().Sub(start), exop)
	}
}

// SeedDup installs a completed entry in the duplicate cache without the
// call ever having been executed here: a replicated shard's backup seeds
// its cache with the primary's recorded replies, so a client that
// reroutes a timed-out retransmission after failover gets the answer the
// dead primary computed instead of a re-execution. Existing entries are
// left alone (the local execution's reply wins).
func (e *Endpoint) SeedDup(from simnet.Addr, xid uint32, wire []byte) {
	if state, _ := e.dup.lookup(from, xid); state != dupNew {
		return
	}
	e.dup.start(from, xid)
	e.dup.finish(from, xid, wire)
}

func (e *Endpoint) sendReply(to simnet.Addr, xid uint32, status Status, body []byte) []byte {
	// Pooled encoder, one exact-size copy out: the simulated network
	// retains the payload until delivery, so the transmitted buffer must
	// be GC-owned — but the encoder's grow-as-you-go scratch space is
	// recycled.
	enc := xdr.GetEncoder()
	enc.Uint32(xid)
	enc.Uint32(msgReply)
	enc.Uint32(uint32(status))
	enc.Raw(body)
	wire := enc.CopyBytes()
	enc.Release()
	e.net.Send(e.addr, to, wire)
	return wire
}

// procTraceName formats program/procedure pairs for trace output.
func procTraceName(prog, proc uint32) string {
	return proto.ProcName(prog, proc)
}
