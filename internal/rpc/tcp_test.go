package rpc

import (
	"bytes"
	"net"
	"testing"
	"time"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

func TestRecordFraming(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{7}, 10000)}
	for _, p := range payloads {
		if err := WriteRecord(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	rr := NewRecordReader(&buf)
	for i, want := range payloads {
		got, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
}

// TestRecordReaderReusesBuffer pins the zero-alloc contract: after the
// first (largest) record sizes the buffer, subsequent records reuse it.
func TestRecordReaderReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	big := bytes.Repeat([]byte{1}, 8192)
	small := []byte("tiny")
	WriteRecord(&buf, big)
	WriteRecord(&buf, small)
	rr := NewRecordReader(&buf)
	first, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	second, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second, small) {
		t.Fatalf("second record corrupt: %q", second)
	}
	// Both records live in the same backing array.
	if &first[0] != &second[0] {
		t.Error("record buffer not reused across Next calls")
	}
}

func TestRecordTooLargeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := NewRecordReader(&buf).Next(); err == nil {
		t.Error("oversized record accepted")
	}
}

// TestRecordLimitMatchesXDRLimit pins the shared-constant satellite: the
// framer refuses exactly what the decoder refuses.
func TestRecordLimitMatchesXDRLimit(t *testing.T) {
	if maxRecord != xdr.MaxItem {
		t.Fatalf("maxRecord %d != xdr.MaxItem %d", maxRecord, xdr.MaxItem)
	}
}

// TestGatewayEndToEnd runs a realtime kernel serving an echo program and
// exercises it through the TCP gateway with a TCPClient, including a
// server-initiated callback.
func TestGatewayEndToEnd(t *testing.T) {
	k := sim.NewKernel(1)
	network := simnet.New(k, simnet.Config{})
	ep := NewEndpoint(k, network, "server", Options{Workers: 2})

	const prog, cbProg = 77, 88
	ep.Register(prog, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		if proc == 2 {
			// Server-initiated call back to the requesting client.
			body, err := ep.Call(p, from, cbProg, 1, 1, []byte("ping"))
			if err != nil || string(body) != "pong" {
				return nil, StatusSystemErr
			}
			return []byte("callback-ok"), StatusOK
		}
		e := xdr.NewEncoder()
		e.Raw(args)
		e.Raw([]byte("/echoed"))
		return e.Bytes(), StatusOK
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	gw := NewGateway(k, network, "server")
	go gw.Serve(ln)

	stop := make(chan struct{})
	defer close(stop)
	go k.RunRealtime(stop)

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.OnCall = func(prog, proc uint32, args []byte) ([]byte, Status) {
		if prog == cbProg && string(args) == "ping" {
			return []byte("pong"), StatusOK
		}
		return nil, StatusProcUnavail
	}

	body, err := cli.Call(prog, 1, 1, []byte("hello"))
	if err != nil {
		t.Fatalf("echo call: %v", err)
	}
	if string(body) != "hello/echoed" {
		t.Errorf("echo = %q", body)
	}

	body, err = cli.Call(prog, 1, 2, nil)
	if err != nil {
		t.Fatalf("callback round trip: %v", err)
	}
	if string(body) != "callback-ok" {
		t.Errorf("callback result = %q", body)
	}

	// Unknown program yields PROG_UNAVAIL through the whole pipeline.
	if _, err := cli.Call(999, 1, 1, nil); err != ErrProgUnavail {
		t.Errorf("unknown program: %v", err)
	}
}

func TestGatewayConcurrentClients(t *testing.T) {
	k := sim.NewKernel(1)
	network := simnet.New(k, simnet.Config{})
	ep := NewEndpoint(k, network, "server", Options{Workers: 4})
	ep.Register(50, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		return append([]byte("from:"), []byte(from)...), StatusOK
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go NewGateway(k, network, "server").Serve(ln)
	stop := make(chan struct{})
	defer close(stop)
	go k.RunRealtime(stop)

	results := make(chan string, 3)
	for i := 0; i < 3; i++ {
		go func() {
			cli, err := DialTCP(ln.Addr().String())
			if err != nil {
				results <- "dial-error"
				return
			}
			defer cli.Close()
			body, err := cli.Call(50, 1, 1, nil)
			if err != nil {
				results <- "call-error"
				return
			}
			results <- string(body)
		}()
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			seen[r] = true
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for concurrent clients")
		}
	}
	// Each connection appears as its own virtual host.
	if len(seen) != 3 {
		t.Errorf("virtual addresses not distinct: %v", seen)
	}
	for r := range seen {
		if r == "dial-error" || r == "call-error" {
			t.Errorf("client failed: %v", seen)
		}
	}
}
