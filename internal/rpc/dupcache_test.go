package rpc

import (
	"fmt"
	"math"
	"testing"
)

// TestDupCacheEvictionUnderXidWraparound fills the cache with xids at the
// top of the uint32 range and keeps going past the wrap to 0: eviction
// must stay strictly FIFO (by insertion order, not xid order), the counter
// must account for every eviction, and post-wrap entries must be served.
func TestDupCacheEvictionUnderXidWraparound(t *testing.T) {
	const cap = 4
	var evicted int64
	c := newDupCache(cap, &evicted)

	// Eight xids straddling the wrap: ...fffe, ...ffff, 0, 1, ...
	xids := []uint32{
		math.MaxUint32 - 3, math.MaxUint32 - 2, math.MaxUint32 - 1, math.MaxUint32,
		0, 1, 2, 3,
	}
	for i, xid := range xids {
		c.start("a", xid)
		c.finish("a", xid, []byte(fmt.Sprintf("r%d", i)))
	}

	// The first four (pre-wrap) insertions were evicted, in order.
	if evicted != int64(len(xids)-cap) {
		t.Errorf("eviction counter = %d, want %d", evicted, len(xids)-cap)
	}
	for _, xid := range xids[:len(xids)-cap] {
		if s, _ := c.lookup("a", xid); s != dupNew {
			t.Errorf("xid %#x survived; want evicted", xid)
		}
	}
	// The last four — including the wrapped xid 0 — are still served.
	for i, xid := range xids[len(xids)-cap:] {
		want := fmt.Sprintf("r%d", i+len(xids)-cap)
		if s, w := c.lookup("a", xid); s != dupDone || string(w) != want {
			t.Errorf("xid %#x: state=%v reply=%q, want done %q", xid, s, w, want)
		}
	}
	if len(c.entries) != cap || len(c.order) != cap {
		t.Errorf("cache size entries=%d order=%d, want %d", len(c.entries), len(c.order), cap)
	}

	// A retransmission of a live post-wrap xid must not re-enter the
	// FIFO (it would double-evict on the next start).
	c.start("a", 0)
	if evicted != int64(len(xids)-cap) {
		t.Errorf("retransmission caused eviction: counter = %d", evicted)
	}
}
