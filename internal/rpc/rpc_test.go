package rpc

import (
	"errors"
	"fmt"
	"testing"

	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

const testProg = 100

func newPair(k *sim.Kernel, cfg simnet.Config, opts Options) (client, server *Endpoint) {
	n := simnet.New(k, cfg)
	client = NewEndpoint(k, n, "client", opts)
	server = NewEndpoint(k, n, "server", opts)
	return client, server
}

// echoHandler replies with the args, uppercased procedure number prefixed.
func echoHandler(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
	e := xdr.NewEncoder()
	e.Uint32(proc)
	e.FixedOpaque(args)
	return e.Bytes(), StatusOK
}

func TestCallReply(t *testing.T) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{})
	server.Register(testProg, echoHandler)
	var got []byte
	var err error
	k.Go("caller", func(p *sim.Proc) {
		got, err = client.Call(p, "server", testProg, 1, 7, []byte("abcd"))
		k.Stop()
	})
	k.Run()
	if err != nil {
		t.Fatalf("call failed: %v", err)
	}
	d := xdr.NewDecoder(got)
	if d.Uint32() != 7 || string(d.FixedOpaque(4)) != "abcd" {
		t.Errorf("bad reply %x", got)
	}
	if client.Stats().CallsSent != 1 || server.Stats().CallsServed != 1 {
		t.Errorf("stats client %+v server %+v", client.Stats(), server.Stats())
	}
}

func TestConcurrentCallsMatchReplies(t *testing.T) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{Workers: 4})
	// Handler sleeps proportionally to proc number so replies come back
	// out of order; each caller must still get its own reply.
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		p.Sleep(sim.Duration(100-proc) * sim.Millisecond)
		e := xdr.NewEncoder()
		e.Uint32(proc * 10)
		return e.Bytes(), StatusOK
	})
	results := make(map[uint32]uint32)
	wg := sim.NewWaitGroup(k, 4)
	for i := uint32(1); i <= 4; i++ {
		proc := i
		k.Go("caller", func(p *sim.Proc) {
			body, err := client.Call(p, "server", testProg, 1, proc, nil)
			if err != nil {
				t.Errorf("proc %d: %v", proc, err)
			} else {
				results[proc] = xdr.NewDecoder(body).Uint32()
			}
			wg.Done()
		})
	}
	k.Go("join", func(p *sim.Proc) { wg.Wait(p); k.Stop() })
	k.Run()
	for i := uint32(1); i <= 4; i++ {
		if results[i] != i*10 {
			t.Errorf("proc %d got %d, want %d", i, results[i], i*10)
		}
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	k := sim.NewKernel(1)
	// Drop every 3rd message: across a run of calls, both requests and
	// replies get lost; retransmission must recover every call.
	client, server := newPair(k,
		simnet.Config{PropDelay: sim.Millisecond, DropEvery: 3},
		Options{CallTimeout: 100 * sim.Millisecond})
	server.Register(testProg, echoHandler)
	failed := 0
	k.Go("caller", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if _, err := client.Call(p, "server", testProg, 1, 1, []byte("x")); err != nil {
				failed++
			}
		}
		k.Stop()
	})
	k.Run()
	if failed != 0 {
		t.Fatalf("%d of 10 calls failed despite retransmission", failed)
	}
	if client.Stats().Retransmits == 0 {
		t.Error("expected at least one retransmission")
	}
}

func TestTimeoutWhenServerDead(t *testing.T) {
	k := sim.NewKernel(1)
	n := simnet.New(k, simnet.Config{})
	client := NewEndpoint(k, n, "client", Options{CallTimeout: 10 * sim.Millisecond, MaxRetries: 2})
	var err error
	var elapsed sim.Time
	k.Go("caller", func(p *sim.Proc) {
		_, err = client.Call(p, "nowhere", testProg, 1, 1, nil)
		elapsed = p.Now()
		k.Stop()
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	// 10 + 20 + 40 ms of backoff.
	if elapsed != sim.Time(70*sim.Millisecond) {
		t.Errorf("gave up at %v, want 70ms (exponential backoff)", elapsed)
	}
	if client.Stats().Timeouts != 1 {
		t.Errorf("timeouts %d", client.Stats().Timeouts)
	}
}

// deadCallElapsed runs one call against a dead address under opts and
// returns how long the caller waited before giving up.
func deadCallElapsed(t *testing.T, seed int64, opts Options) sim.Time {
	t.Helper()
	k := sim.NewKernel(seed)
	n := simnet.New(k, simnet.Config{})
	client := NewEndpoint(k, n, "client", opts)
	var err error
	var elapsed sim.Time
	k.Go("caller", func(p *sim.Proc) {
		_, err = client.Call(p, "nowhere", testProg, 1, 1, nil)
		elapsed = p.Now()
		k.Stop()
	})
	k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	return elapsed
}

// TestBackoffCap: once the doubled timeout reaches MaxBackoff it stops
// growing, so a generous retry budget waits linearly, not exponentially.
func TestBackoffCap(t *testing.T) {
	opts := Options{CallTimeout: 10 * sim.Millisecond, MaxRetries: 4,
		MaxBackoff: 20 * sim.Millisecond}
	// 10 + 20 + 20 + 20 + 20 ms: the third and later attempts are clamped
	// (uncapped they would double to 40, 80, 160 for a 310 ms total).
	if got := deadCallElapsed(t, 1, opts); got != sim.Time(90*sim.Millisecond) {
		t.Errorf("gave up at %v, want 90ms (capped backoff)", got)
	}
}

// TestBackoffCapNeverShrinksFirstTimeout: an explicit per-call timeout
// above the cap (the SNFS callback path passes its own) is honored as-is.
func TestBackoffCapNeverShrinksFirstTimeout(t *testing.T) {
	opts := Options{CallTimeout: 50 * sim.Millisecond, MaxRetries: 2,
		MaxBackoff: 20 * sim.Millisecond}
	// The limit rises to the first timeout: 50 + 50 + 50 ms.
	if got := deadCallElapsed(t, 1, opts); got != sim.Time(150*sim.Millisecond) {
		t.Errorf("gave up at %v, want 150ms (cap floored at CallTimeout)", got)
	}
}

// TestBackoffJitter: a positive jitter perturbs every backed-off wait by
// a seeded draw bounded by ±jitter×backoff, stays deterministic for a
// fixed seed, and zero jitter reproduces the vintage schedule exactly.
func TestBackoffJitter(t *testing.T) {
	base := Options{CallTimeout: 10 * sim.Millisecond, MaxRetries: 3}
	plain := deadCallElapsed(t, 3, base)
	if plain != sim.Time(150*sim.Millisecond) { // 10 + 20 + 40 + 80
		t.Fatalf("deterministic schedule gave up at %v, want 150ms", plain)
	}
	jopts := base
	jopts.BackoffJitter = 0.25
	jit := deadCallElapsed(t, 3, jopts)
	if jit == plain {
		t.Error("jitter left the schedule unperturbed")
	}
	// Each backed-off wait moves at most ±25%: total in [115ms, 185ms].
	if jit < sim.Time(115*sim.Millisecond) || jit > sim.Time(185*sim.Millisecond) {
		t.Errorf("jittered total %v outside ±25%% envelope [115ms, 185ms]", jit)
	}
	if again := deadCallElapsed(t, 3, jopts); again != jit {
		t.Errorf("same seed gave %v then %v; jitter must be reproducible", jit, again)
	}
}

func TestDuplicateCacheSuppressesReexecution(t *testing.T) {
	k := sim.NewKernel(1)
	// Drop every 3rd message. With a non-idempotent counter handler, the
	// retransmitted call must not increment twice.
	client, server := newPair(k,
		simnet.Config{PropDelay: sim.Millisecond, DropEvery: 3},
		Options{CallTimeout: 50 * sim.Millisecond})
	executions := 0
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		executions++
		return nil, StatusOK
	})
	calls := 0
	k.Go("caller", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if _, err := client.Call(p, "server", testProg, 1, 1, nil); err == nil {
				calls++
			}
		}
		k.Stop()
	})
	k.Run()
	if executions != calls {
		t.Errorf("%d executions for %d successful calls; duplicate cache failed", executions, calls)
	}
	if server.Stats().DupHits == 0 && server.Stats().DupInProgress == 0 {
		t.Log("note: no duplicate traffic was generated by this loss pattern")
	}
}

func TestSlowHandlerDuplicateDropped(t *testing.T) {
	k := sim.NewKernel(1)
	client, server := newPair(k,
		simnet.Config{PropDelay: sim.Millisecond},
		Options{CallTimeout: 20 * sim.Millisecond, MaxRetries: 5})
	executions := 0
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		executions++
		p.Sleep(50 * sim.Millisecond) // slower than the client timeout
		return nil, StatusOK
	})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		_, err = client.Call(p, "server", testProg, 1, 1, nil)
		k.Stop()
	})
	k.Run()
	if err != nil {
		t.Fatalf("call failed: %v", err)
	}
	if executions != 1 {
		t.Errorf("handler executed %d times, want 1 (in-progress duplicates dropped)", executions)
	}
	if server.Stats().DupInProgress == 0 {
		t.Error("expected in-progress duplicate drops")
	}
}

func TestUnregisteredProgram(t *testing.T) {
	k := sim.NewKernel(1)
	client, _ := newPair(k, simnet.Config{}, Options{})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		_, err = client.Call(p, "server", 999, 1, 1, nil)
		k.Stop()
	})
	k.Run()
	if !errors.Is(err, ErrProgUnavail) {
		t.Errorf("err = %v, want ErrProgUnavail", err)
	}
}

func TestWorkerPoolLimitsConcurrency(t *testing.T) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{}, Options{Workers: 2, CallTimeout: 10 * sim.Second})
	inside, maxInside := 0, 0
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		inside++
		if inside > maxInside {
			maxInside = inside
		}
		p.Sleep(10 * sim.Millisecond)
		inside--
		return nil, StatusOK
	})
	wg := sim.NewWaitGroup(k, 6)
	for i := 0; i < 6; i++ {
		k.Go("caller", func(p *sim.Proc) {
			client.Call(p, "server", testProg, 1, 1, nil)
			wg.Done()
		})
	}
	k.Go("join", func(p *sim.Proc) { wg.Wait(p); k.Stop() })
	k.Run()
	if maxInside != 2 {
		t.Errorf("max handler concurrency %d, want 2", maxInside)
	}
}

func TestCallbackFromServerToClient(t *testing.T) {
	// The SNFS shape: while servicing a call, the server issues a nested
	// RPC back to the client, which must service it (the client is also
	// an RPC server) before the original call completes.
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{Workers: 2, CallTimeout: sim.Second})
	const callbackProg = 200
	callbackServed := false
	client.Register(callbackProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		callbackServed = true
		return []byte("cb-ok"), StatusOK
	})
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		body, err := server.Call(p, from, callbackProg, 1, 1, nil)
		if err != nil || string(body) != "cb-ok" {
			return nil, StatusSystemErr
		}
		return []byte("done"), StatusOK
	})
	var err error
	var body []byte
	k.Go("caller", func(p *sim.Proc) {
		body, err = client.Call(p, "server", testProg, 1, 1, nil)
		k.Stop()
	})
	k.Run()
	if err != nil || string(body) != "done" {
		t.Fatalf("call = %q, %v", body, err)
	}
	if !callbackServed {
		t.Error("callback never reached the client")
	}
}

func TestStopAndRestartEndpoint(t *testing.T) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{},
		Options{CallTimeout: 10 * sim.Millisecond, MaxRetries: 1})
	server.Register(testProg, echoHandler)
	var errDown, errUp error
	k.Go("caller", func(p *sim.Proc) {
		server.Stop()
		_, errDown = client.Call(p, "server", testProg, 1, 1, nil)
		server.Restart()
		_, errUp = client.Call(p, "server", testProg, 1, 1, nil)
		k.Stop()
	})
	k.Run()
	if !errors.Is(errDown, ErrTimeout) {
		t.Errorf("call to stopped server: %v, want timeout", errDown)
	}
	if errUp != nil {
		t.Errorf("call after restart: %v", errUp)
	}
}

func TestDupCacheEviction(t *testing.T) {
	var evicted int64
	c := newDupCache(2, &evicted)
	c.start("a", 1)
	c.finish("a", 1, []byte("r1"))
	c.start("a", 2)
	c.finish("a", 2, []byte("r2"))
	c.start("a", 3) // evicts xid 1
	if s, _ := c.lookup("a", 1); s != dupNew {
		t.Error("xid 1 should have been evicted")
	}
	if s, w := c.lookup("a", 2); s != dupDone || string(w) != "r2" {
		t.Error("xid 2 should be cached")
	}
	if s, _ := c.lookup("a", 3); s != dupInProgress {
		t.Error("xid 3 should be in progress")
	}
	if evicted != 1 {
		t.Errorf("eviction counter = %d, want 1", evicted)
	}
}

func TestDupCacheKeyedByClient(t *testing.T) {
	c := newDupCache(10, nil)
	c.start("a", 1)
	c.finish("a", 1, []byte("for-a"))
	if s, _ := c.lookup("b", 1); s != dupNew {
		t.Error("xid 1 from a different client must not hit the cache")
	}
}

// TestStressManyClientsWithLoss: 8 clients firing batches of calls over
// a lossy network must all complete correctly.
func TestStressManyClientsWithLoss(t *testing.T) {
	k := sim.NewKernel(7)
	n := simnet.New(k, simnet.Config{PropDelay: sim.Millisecond, BytesPerSec: 1_250_000, DropEvery: 17})
	server := NewEndpoint(k, n, "server", Options{Workers: 8, CallTimeout: 50 * sim.Millisecond})
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		e := xdr.NewEncoder()
		e.Uint32(proc * 3)
		return e.Bytes(), StatusOK
	})
	const clients, calls = 8, 40
	failures := 0
	wrong := 0
	wg := sim.NewWaitGroup(k, clients)
	for c := 0; c < clients; c++ {
		name := simnet.Addr(fmt.Sprintf("c%d", c))
		ep := NewEndpoint(k, n, name, Options{CallTimeout: 50 * sim.Millisecond, MaxRetries: 8})
		k.Go(string(name), func(p *sim.Proc) {
			defer wg.Done()
			for i := uint32(1); i <= calls; i++ {
				body, err := ep.Call(p, "server", testProg, 1, i, nil)
				if err != nil {
					failures++
					continue
				}
				if xdr.NewDecoder(body).Uint32() != i*3 {
					wrong++
				}
			}
		})
	}
	k.Go("join", func(p *sim.Proc) { wg.Wait(p); k.Stop() })
	k.Run()
	if failures != 0 || wrong != 0 {
		t.Errorf("%d failures, %d wrong replies out of %d calls", failures, wrong, clients*calls)
	}
}

func TestMetricsRecordCallAndServe(t *testing.T) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{})
	server.Register(testProg, echoHandler)
	reg := metrics.New()
	client.SetMetrics(reg)
	server.SetMetrics(reg)
	k.Go("caller", func(p *sim.Proc) {
		if _, err := client.Call(p, "server", testProg, 1, 7, []byte("abcd")); err != nil {
			t.Errorf("call failed: %v", err)
		}
		// Let the server worker finish its bookkeeping after the reply.
		p.Sleep(sim.Millisecond)
		k.Stop()
	})
	k.Run()
	name := proto.ProcName(testProg, 7)
	call := reg.FindHistogram(metrics.Label("snfs_rpc_call_latency_us", "host", "client", "proc", name))
	if call.Count() != 1 {
		t.Errorf("call histogram count = %d, want 1", call.Count())
	}
	if call.Max() < int64(2*sim.Millisecond) {
		t.Errorf("call latency %dus below two propagation delays", call.Max())
	}
	serve := reg.FindHistogram(metrics.Label("snfs_rpc_serve_us", "host", "server", "proc", name))
	if serve.Count() != 1 {
		t.Errorf("serve histogram count = %d, want 1", serve.Count())
	}
	if client.Metrics() != reg || server.Metrics() != reg {
		t.Error("Metrics() accessor mismatch")
	}
	client.SetMetrics(nil)
	if client.Metrics() != nil {
		t.Error("nil SetMetrics did not detach")
	}
}
