package rpc

import (
	"testing"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// TestEventModeServes: an event-mode endpoint (port callback dispatch,
// executor-pooled service) answers calls exactly like a queue-mode one.
func TestEventModeServes(t *testing.T) {
	k := sim.NewKernel(1)
	n := simnet.New(k, simnet.Config{PropDelay: sim.Millisecond})
	ex := sim.NewExecutor(k, "srv")
	client := NewEndpoint(k, n, "client", Options{})
	server := NewEndpoint(k, n, "server", Options{Exec: ex})
	server.Register(testProg, echoHandler)
	var got []byte
	var err error
	k.Go("caller", func(p *sim.Proc) {
		got, err = client.Call(p, "server", testProg, 1, 7, []byte("abcd"))
		k.Stop()
	})
	k.Run()
	if err != nil {
		t.Fatalf("call failed: %v", err)
	}
	d := xdr.NewDecoder(got)
	if d.Uint32() != 7 || string(d.FixedOpaque(4)) != "abcd" {
		t.Errorf("bad reply %x", got)
	}
	if server.Stats().CallsServed != 1 || ex.Jobs() != 1 {
		t.Errorf("server %+v executor jobs %d", server.Stats(), ex.Jobs())
	}
}

// TestEventModeTimingParity: the same workload against a queue-mode and
// an event-mode server completes at identical virtual instants — the two
// dispatch paths hand work off through the event heap at the same times,
// so swapping modes changes no modeled latency. (Parity requires the
// offered concurrency to fit the queue-mode worker pool: the executor
// never queues, so beyond Workers the event-mode server is genuinely
// less contended, not timing-divergent.)
func TestEventModeTimingParity(t *testing.T) {
	run := func(eventMode bool) []sim.Time {
		k := sim.NewKernel(1)
		n := simnet.New(k, simnet.Config{PropDelay: sim.Millisecond, BytesPerSec: 1 << 20})
		opts := Options{Workers: 4}
		if eventMode {
			opts.Exec = sim.NewExecutor(k, "srv")
		}
		client := NewEndpoint(k, n, "client", Options{})
		server := NewEndpoint(k, n, "server", opts)
		server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
			p.Sleep(sim.Duration(proc) * sim.Millisecond)
			return args, StatusOK
		})
		var times []sim.Time
		wg := sim.NewWaitGroup(k, 4)
		for i := uint32(1); i <= 4; i++ {
			proc := i
			k.Go("caller", func(p *sim.Proc) {
				if _, err := client.Call(p, "server", testProg, 1, proc, make([]byte, 256)); err != nil {
					t.Errorf("proc %d: %v", proc, err)
				}
				times = append(times, k.Now())
				wg.Done()
			})
		}
		k.Go("join", func(p *sim.Proc) { wg.Wait(p); k.Stop() })
		k.Run()
		return times
	}
	q, ev := run(false), run(true)
	if len(q) != len(ev) {
		t.Fatalf("completion counts differ: %d vs %d", len(q), len(ev))
	}
	for i := range q {
		if q[i] != ev[i] {
			t.Fatalf("completion %d at %v queue-mode vs %v event-mode", i, q[i], ev[i])
		}
	}
}

// TestEventModeCallbacks: an event-mode *client* endpoint still services
// server-originated callback RPCs (the SNFS pattern) — the property that
// lets a fleet client drop its dispatcher and worker processes.
func TestEventModeCallbacks(t *testing.T) {
	k := sim.NewKernel(1)
	n := simnet.New(k, simnet.Config{PropDelay: sim.Millisecond})
	ex := sim.NewExecutor(k, "fleet")
	client := NewEndpoint(k, n, "client", Options{Exec: ex})
	server := NewEndpoint(k, n, "server", Options{})
	const cbProg = 200
	client.Register(cbProg, echoHandler)
	// Server program calls the client back before replying.
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		body, err := server.Call(p, from, cbProg, 1, proc+1, []byte("cb"))
		if err != nil {
			return nil, StatusSystemErr
		}
		return body, StatusOK
	})
	var got []byte
	var err error
	k.Go("caller", func(p *sim.Proc) {
		got, err = client.Call(p, "server", testProg, 1, 7, nil)
		k.Stop()
	})
	k.Run()
	if err != nil {
		t.Fatalf("call failed: %v", err)
	}
	d := xdr.NewDecoder(got)
	if d.Uint32() != 8 || string(d.FixedOpaque(2)) != "cb" {
		t.Errorf("bad callback-relayed reply %x", got)
	}
}

// TestEventModeRestart: stop/restart of an event-mode endpoint re-arms
// the port callback without spawning dispatcher or worker processes.
func TestEventModeRestart(t *testing.T) {
	k := sim.NewKernel(1)
	n := simnet.New(k, simnet.Config{PropDelay: sim.Millisecond})
	ex := sim.NewExecutor(k, "srv")
	client := NewEndpoint(k, n, "client", Options{CallTimeout: 100 * sim.Millisecond, MaxRetries: 8})
	server := NewEndpoint(k, n, "server", Options{Exec: ex})
	server.Register(testProg, echoHandler)
	k.Go("crash", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		server.Stop()
		p.Sleep(300 * sim.Millisecond)
		server.Restart()
	})
	var err error
	k.Go("caller", func(p *sim.Proc) {
		p.Sleep(20 * sim.Millisecond) // issue while the server is down
		_, err = client.Call(p, "server", testProg, 1, 7, []byte("x"))
		k.Stop()
	})
	k.Run()
	if err != nil {
		t.Fatalf("call across restart failed: %v", err)
	}
}
