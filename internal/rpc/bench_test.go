package rpc

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// BenchmarkSimulatedRPCRoundTrip measures the host cost of one simulated
// call/reply exchange (the dominant cost of running experiments).
func BenchmarkSimulatedRPCRoundTrip(b *testing.B) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{})
	server.Register(testProg, echoHandler)
	b.ReportAllocs()
	b.ResetTimer()
	k.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Call(p, "server", testProg, 1, 1, nil); err != nil {
				b.Errorf("call: %v", err)
				break
			}
		}
		k.Stop()
	})
	k.Run()
}

// BenchmarkSimulatedRPCWrite8K is the same exchange carrying an 8 KiB
// WRITE encoded straight from the message (CallMsg): the pooled encoder
// and zero-copy dispatch leave only the GC-owned wire images allocating.
func BenchmarkSimulatedRPCWrite8K(b *testing.B) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{})
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		return nil, StatusOK
	})
	msg := &proto.WriteArgs{Offset: 8192, Data: make([]byte, 8192), Unstable: true}
	b.SetBytes(8192)
	b.ReportAllocs()
	b.ResetTimer()
	k.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := client.CallMsg(p, "server", testProg, 1, 1, msg); err != nil {
				b.Errorf("call: %v", err)
				break
			}
		}
		k.Stop()
	})
	k.Run()
}

// benchTCPServer serves echo over a loopback listener with the
// production framing (RecordReader in, WriteRecord out), optionally
// delaying each reply to model a network round trip; it decodes just
// enough of the call header to answer by xid.
func benchTCPServer(b *testing.B, delay time.Duration) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				rr := NewRecordReader(conn)
				var wmu sync.Mutex
				var d xdr.Decoder
				for {
					rec, err := rr.Next()
					if err != nil {
						return
					}
					d.Reset(rec)
					xid := d.Uint32()
					reply := func() {
						enc := xdr.GetEncoder()
						enc.Uint32(xid)
						enc.Uint32(msgReply)
						enc.Uint32(uint32(StatusOK))
						wmu.Lock()
						WriteRecord(conn, enc.Bytes())
						wmu.Unlock()
						enc.Release()
					}
					if delay > 0 {
						// Concurrent per-call delay: a pipelined client
						// overlaps these waits, a lockstep client pays
						// them serially.
						go func() { time.Sleep(delay); reply() }()
					} else {
						reply()
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// benchmarkTCPPipelined drives an 8 KiB WRITE over a real loopback
// connection with the given number of calls in flight.
func benchmarkTCPPipelined(b *testing.B, depth int) {
	addr := benchTCPServer(b, 0)
	c, err := DialTCP(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	args := proto.Marshal(&proto.WriteArgs{Offset: 8192, Data: make([]byte, 8192), Unstable: true})
	b.SetBytes(8192)
	b.ReportAllocs()
	b.ResetTimer()
	pending := make([]*TCPPending, 0, depth)
	for i := 0; i < b.N; i++ {
		p, err := c.Start(proto.ProgNFS, proto.VersNFS, proto.ProcWrite, args)
		if err != nil {
			b.Fatal(err)
		}
		pending = append(pending, p)
		if len(pending) == depth {
			for _, p := range pending {
				if _, err := p.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			pending = pending[:0]
		}
	}
	for _, p := range pending {
		if _, err := p.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPRoundTrip8K measures the real-TCP wire path at pipeline
// depths 1 (lockstep), 8, and 32.
func BenchmarkTCPRoundTrip8K(b *testing.B) {
	for _, depth := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchmarkTCPPipelined(b, depth)
		})
	}
}
