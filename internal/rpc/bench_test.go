package rpc

import (
	"testing"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
)

// BenchmarkSimulatedRPCRoundTrip measures the host cost of one simulated
// call/reply exchange (the dominant cost of running experiments).
func BenchmarkSimulatedRPCRoundTrip(b *testing.B) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{})
	server.Register(testProg, echoHandler)
	b.ReportAllocs()
	b.ResetTimer()
	k.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Call(p, "server", testProg, 1, 1, nil); err != nil {
				b.Errorf("call: %v", err)
				break
			}
		}
		k.Stop()
	})
	k.Run()
}
