package rpc

import "spritelynfs/internal/simnet"

// dupState describes what the cache knows about a (client, xid) pair.
type dupState int

const (
	dupNew        dupState = iota // never seen
	dupInProgress                 // being executed by a worker
	dupDone                       // completed; reply bytes recorded
)

type dupKey struct {
	from simnet.Addr
	xid  uint32
}

type dupEntry struct {
	key   dupKey
	state dupState
	wire  []byte // full encoded reply message
}

// dupCache remembers recently executed calls so that a retransmission of a
// non-idempotent operation (CREATE, REMOVE, RENAME, SNFS OPEN/CLOSE) is
// answered from the recorded reply instead of being re-executed. Entries
// evict FIFO once the cache is full; the client retry window is far
// shorter than the cache's lifetime under any realistic load.
type dupCache struct {
	max     int
	entries map[dupKey]*dupEntry
	order   []dupKey
	evicted *int64 // eviction counter, usually Stats.DupEvictions
}

func newDupCache(max int, evicted *int64) *dupCache {
	return &dupCache{max: max, entries: make(map[dupKey]*dupEntry), evicted: evicted}
}

func (c *dupCache) lookup(from simnet.Addr, xid uint32) (dupState, []byte) {
	e, ok := c.entries[dupKey{from, xid}]
	if !ok {
		return dupNew, nil
	}
	return e.state, e.wire
}

func (c *dupCache) start(from simnet.Addr, xid uint32) {
	k := dupKey{from, xid}
	if _, ok := c.entries[k]; ok {
		return
	}
	c.evictIfFull()
	c.entries[k] = &dupEntry{key: k, state: dupInProgress}
	c.order = append(c.order, k)
}

// finish records the completed call's reply wire image. The cache takes
// a private copy — exactly one, at insertion: the slice handed in is
// also the transmitted buffer, and a zero-copy decoder on the far side
// hands out views of it that a client block cache may even mutate in
// place. Copying here makes the recorded reply immune to anything that
// later happens to the transmitted bytes. Returns the cache's copy, or
// nil if the entry was evicted while the call executed.
func (c *dupCache) finish(from simnet.Addr, xid uint32, wire []byte) []byte {
	e, ok := c.entries[dupKey{from, xid}]
	if !ok {
		return nil
	}
	e.state = dupDone
	e.wire = append([]byte(nil), wire...)
	return e.wire
}

func (c *dupCache) evictIfFull() {
	for len(c.entries) >= c.max && len(c.order) > 0 {
		k := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, k)
		if c.evicted != nil {
			*c.evicted++
		}
	}
}
