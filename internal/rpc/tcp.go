package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// The TCP transport frames each RPC message with a 4-byte big-endian
// length (RFC 1057-style record marking, without the fragment bit). The
// framed payload is byte-identical to the simulated network's payload,
// so the same servers and clients interoperate across both.

// maxRecord is the framing limit, shared with the XDR decoder's
// variable-length item limit: no legal record can carry an item the
// decoder would reject, and no legal item can need a record the framer
// would refuse.
const maxRecord = xdr.MaxItem

// frame is a pooled header+payload pair for WriteRecord, so the
// coalesced write allocates nothing in steady state.
type frame struct {
	hdr [4]byte
	vec [2][]byte
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// WriteRecord frames and writes one message. Header and payload go out
// in a single coalesced write (writev on a TCP connection, via
// net.Buffers), halving the syscall count of the old two-write framing
// and keeping the header and payload in one segment.
func WriteRecord(w io.Writer, payload []byte) error {
	f := framePool.Get().(*frame)
	binary.BigEndian.PutUint32(f.hdr[:], uint32(len(payload)))
	f.vec[0], f.vec[1] = f.hdr[:], payload
	bufs := net.Buffers(f.vec[:])
	_, err := bufs.WriteTo(w)
	f.vec[1] = nil // don't pin the payload in the pool
	framePool.Put(f)
	return err
}

// RecordReader reads length-prefixed records from one stream, reusing a
// single internal buffer across records: steady state allocates nothing.
// The record returned by Next is valid only until the following Next —
// a caller that hands the bytes to anything with a longer lifetime (the
// simulated network, another goroutine, a waiting caller) must copy
// first. See DESIGN.md §13.
type RecordReader struct {
	r   io.Reader
	buf []byte
}

// NewRecordReader returns a reader framing records out of r.
func NewRecordReader(r io.Reader) *RecordReader {
	return &RecordReader{r: r}
}

// Next reads one framed message. The returned slice aliases the
// reader's internal buffer.
func (rr *RecordReader) Next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxRecord {
		return nil, fmt.Errorf("rpc: record of %d bytes exceeds limit", n)
	}
	if uint32(cap(rr.buf)) < n {
		rr.buf = make([]byte, n)
	}
	buf := rr.buf[:n]
	if _, err := io.ReadFull(rr.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Gateway bridges TCP connections into a simulation kernel running under
// RunRealtime: each connection becomes a virtual host ("tcp/<n>") on the
// simulated network, its records delivered to the server address, and
// traffic the server sends to that virtual host (replies and callbacks)
// is written back over the connection. The whole protocol stack — state
// table, callbacks, duplicate cache — runs unmodified.
type Gateway struct {
	k      *sim.Kernel
	net    *simnet.Network
	server simnet.Addr
	mu     sync.Mutex
	nextID int
}

// NewGateway returns a gateway delivering to server on net.
func NewGateway(k *sim.Kernel, network *simnet.Network, server simnet.Addr) *Gateway {
	return &Gateway{k: k, net: network, server: server}
}

// Serve accepts connections until the listener closes.
func (g *Gateway) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go g.handle(conn)
	}
}

func (g *Gateway) handle(conn net.Conn) {
	g.mu.Lock()
	g.nextID++
	vaddr := simnet.Addr(fmt.Sprintf("tcp/%d", g.nextID))
	g.mu.Unlock()

	out := make(chan []byte, 256)
	// Attach the virtual host inside the simulation and pump traffic
	// addressed to it into the out channel.
	g.k.Inject(func() {
		port := g.net.Listen(vaddr)
		g.k.Go(string(vaddr)+"/gw", func(p *sim.Proc) {
			for {
				m := port.Recv(p)
				select {
				case out <- m.Payload:
				default:
					// Slow TCP peer: drop, as a datagram
					// network would.
				}
			}
		})
	})

	done := make(chan struct{})
	go func() {
		defer conn.Close()
		for {
			select {
			case payload := <-out:
				if err := WriteRecord(conn, payload); err != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()

	rr := NewRecordReader(conn)
	for {
		payload, err := rr.Next()
		if err != nil {
			break
		}
		// The record escapes into the simulation, which retains payloads
		// until (possibly duplicated) delivery, while the reader reuses
		// its buffer for the next record: one exact-size copy here is
		// this transport's copy point.
		owned := append([]byte(nil), payload...)
		g.k.Inject(func() {
			g.net.Send(vaddr, g.server, owned)
		})
	}
	close(done)
	g.k.Inject(func() {
		g.net.Unlisten(vaddr)
	})
}

// TCPClient is a minimal real-time RPC client for the standalone tools:
// it issues calls over one TCP connection and services incoming calls
// (SNFS callbacks) with a handler.
type TCPClient struct {
	conn net.Conn
	mu   sync.Mutex
	next uint32
	wait map[uint32]chan reply
	// OnCall services server-to-client calls; nil replies ProcUnavail.
	OnCall func(prog, proc uint32, args []byte) ([]byte, Status)
	// readErr terminates outstanding calls when the read loop dies.
	readErr error
	dead    chan struct{}
}

// DialTCP connects to a gateway-fronted server.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{
		conn: conn,
		wait: make(map[uint32]chan reply),
		dead: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close shuts the connection down.
func (c *TCPClient) Close() error { return c.conn.Close() }

func (c *TCPClient) readLoop() {
	defer close(c.dead)
	rr := NewRecordReader(c.conn)
	var d xdr.Decoder
	for {
		payload, err := rr.Next()
		if err != nil {
			c.readErr = err
			return
		}
		// The record buffer is reused by the next Next, so anything that
		// leaves this iteration — a reply body handed to a waiting
		// caller, callback args handed to the serve goroutine — is
		// copied out by the copying Raw below (the explicit copy point).
		d.Reset(payload)
		xid := d.Uint32()
		mtype := d.Uint32()
		switch mtype {
		case msgReply:
			status := Status(d.Uint32())
			body := d.Raw()
			c.mu.Lock()
			ch, ok := c.wait[xid]
			delete(c.wait, xid)
			c.mu.Unlock()
			if ok {
				ch <- reply{status: status, body: body}
			}
		case msgCall:
			prog := d.Uint32()
			vers := d.Uint32()
			proc := d.Uint32()
			_ = d.Uint64() // causal op ID; the uncached CLI has no use for it
			args := d.Raw()
			_ = vers
			go c.serve(xid, prog, proc, args)
		}
	}
}

func (c *TCPClient) serve(xid, prog, proc uint32, args []byte) {
	var body []byte
	status := StatusProcUnavail
	if c.OnCall != nil {
		body, status = c.OnCall(prog, proc, args)
	}
	enc := xdr.GetEncoder()
	defer enc.Release()
	enc.Uint32(xid)
	enc.Uint32(msgReply)
	enc.Uint32(uint32(status))
	enc.Raw(body)
	c.mu.Lock()
	defer c.mu.Unlock()
	// The write completes before the encoder is released: the kernel
	// copies the bytes, so the pooled buffer never outlives the call.
	WriteRecord(c.conn, enc.Bytes())
}

// TCPPending is one in-flight call issued with TCPClient.Start.
type TCPPending struct {
	c  *TCPClient
	ch chan reply
}

// Start issues one RPC without waiting for its reply: calls are
// multiplexed by xid on the single connection, so any number may be
// outstanding (pipelining). Collect the reply with Wait.
func (c *TCPClient) Start(prog, vers, proc uint32, args []byte) (*TCPPending, error) {
	c.mu.Lock()
	c.next++
	xid := c.next
	ch := make(chan reply, 1)
	c.wait[xid] = ch

	enc := xdr.GetEncoder()
	enc.Uint32(xid)
	enc.Uint32(msgCall)
	enc.Uint32(prog)
	enc.Uint32(vers)
	enc.Uint32(proc)
	// Mint a causal op ID per call; the high bit marks "external client"
	// so IDs never collide with the kernel's own counter.
	enc.Uint64(1<<63 | uint64(xid))
	enc.Raw(args)
	// Written straight from the pooled buffer — the kernel copies, so
	// no GC-owned wire image is needed on this path.
	err := WriteRecord(c.conn, enc.Bytes())
	enc.Release()
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.wait, xid)
		c.mu.Unlock()
		return nil, err
	}
	return &TCPPending{c: c, ch: ch}, nil
}

// Wait collects the reply for a call issued with Start.
func (t *TCPPending) Wait() ([]byte, error) {
	select {
	case r := <-t.ch:
		if err := statusErr(r.status); err != nil {
			return nil, err
		}
		return r.body, nil
	case <-t.c.dead:
		if t.c.readErr != nil {
			return nil, t.c.readErr
		}
		return nil, io.EOF
	}
}

// Call issues one RPC and waits for its reply.
func (c *TCPClient) Call(prog, vers, proc uint32, args []byte) ([]byte, error) {
	p, err := c.Start(prog, vers, proc, args)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}
