package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// The TCP transport frames each RPC message with a 4-byte big-endian
// length (RFC 1057-style record marking, without the fragment bit). The
// framed payload is byte-identical to the simulated network's payload,
// so the same servers and clients interoperate across both.

const maxRecord = 1 << 24

// writeRecord frames and writes one message.
func writeRecord(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRecord reads one framed message.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxRecord {
		return nil, fmt.Errorf("rpc: record of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Gateway bridges TCP connections into a simulation kernel running under
// RunRealtime: each connection becomes a virtual host ("tcp/<n>") on the
// simulated network, its records delivered to the server address, and
// traffic the server sends to that virtual host (replies and callbacks)
// is written back over the connection. The whole protocol stack — state
// table, callbacks, duplicate cache — runs unmodified.
type Gateway struct {
	k      *sim.Kernel
	net    *simnet.Network
	server simnet.Addr
	mu     sync.Mutex
	nextID int
}

// NewGateway returns a gateway delivering to server on net.
func NewGateway(k *sim.Kernel, network *simnet.Network, server simnet.Addr) *Gateway {
	return &Gateway{k: k, net: network, server: server}
}

// Serve accepts connections until the listener closes.
func (g *Gateway) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go g.handle(conn)
	}
}

func (g *Gateway) handle(conn net.Conn) {
	g.mu.Lock()
	g.nextID++
	vaddr := simnet.Addr(fmt.Sprintf("tcp/%d", g.nextID))
	g.mu.Unlock()

	out := make(chan []byte, 256)
	// Attach the virtual host inside the simulation and pump traffic
	// addressed to it into the out channel.
	g.k.Inject(func() {
		port := g.net.Listen(vaddr)
		g.k.Go(string(vaddr)+"/gw", func(p *sim.Proc) {
			for {
				m := port.Recv(p)
				select {
				case out <- m.Payload:
				default:
					// Slow TCP peer: drop, as a datagram
					// network would.
				}
			}
		})
	})

	done := make(chan struct{})
	go func() {
		defer conn.Close()
		for {
			select {
			case payload := <-out:
				if err := writeRecord(conn, payload); err != nil {
					return
				}
			case <-done:
				return
			}
		}
	}()

	for {
		payload, err := readRecord(conn)
		if err != nil {
			break
		}
		g.k.Inject(func() {
			g.net.Send(vaddr, g.server, payload)
		})
	}
	close(done)
	g.k.Inject(func() {
		g.net.Unlisten(vaddr)
	})
}

// TCPClient is a minimal real-time RPC client for the standalone tools:
// it issues calls over one TCP connection and services incoming calls
// (SNFS callbacks) with a handler.
type TCPClient struct {
	conn net.Conn
	mu   sync.Mutex
	next uint32
	wait map[uint32]chan reply
	// OnCall services server-to-client calls; nil replies ProcUnavail.
	OnCall func(prog, proc uint32, args []byte) ([]byte, Status)
	// readErr terminates outstanding calls when the read loop dies.
	readErr error
	dead    chan struct{}
}

// DialTCP connects to a gateway-fronted server.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{
		conn: conn,
		wait: make(map[uint32]chan reply),
		dead: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close shuts the connection down.
func (c *TCPClient) Close() error { return c.conn.Close() }

func (c *TCPClient) readLoop() {
	defer close(c.dead)
	for {
		payload, err := readRecord(c.conn)
		if err != nil {
			c.readErr = err
			return
		}
		d := xdr.NewDecoder(payload)
		xid := d.Uint32()
		mtype := d.Uint32()
		switch mtype {
		case msgReply:
			status := Status(d.Uint32())
			body := d.Raw()
			c.mu.Lock()
			ch, ok := c.wait[xid]
			delete(c.wait, xid)
			c.mu.Unlock()
			if ok {
				ch <- reply{status: status, body: body}
			}
		case msgCall:
			prog := d.Uint32()
			vers := d.Uint32()
			proc := d.Uint32()
			_ = d.Uint64() // causal op ID; the uncached CLI has no use for it
			args := d.Raw()
			_ = vers
			go c.serve(xid, prog, proc, args)
		}
	}
}

func (c *TCPClient) serve(xid, prog, proc uint32, args []byte) {
	var body []byte
	status := StatusProcUnavail
	if c.OnCall != nil {
		body, status = c.OnCall(prog, proc, args)
	}
	enc := xdr.NewEncoder()
	enc.Uint32(xid)
	enc.Uint32(msgReply)
	enc.Uint32(uint32(status))
	enc.Raw(body)
	c.mu.Lock()
	defer c.mu.Unlock()
	writeRecord(c.conn, enc.Bytes())
}

// Call issues one RPC and waits for its reply.
func (c *TCPClient) Call(prog, vers, proc uint32, args []byte) ([]byte, error) {
	c.mu.Lock()
	c.next++
	xid := c.next
	ch := make(chan reply, 1)
	c.wait[xid] = ch

	enc := xdr.NewEncoder()
	enc.Uint32(xid)
	enc.Uint32(msgCall)
	enc.Uint32(prog)
	enc.Uint32(vers)
	enc.Uint32(proc)
	// Mint a causal op ID per call; the high bit marks "external client"
	// so IDs never collide with the kernel's own counter.
	enc.Uint64(1<<63 | uint64(xid))
	enc.Raw(args)
	err := writeRecord(c.conn, enc.Bytes())
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	select {
	case r := <-ch:
		if err := statusErr(r.status); err != nil {
			return nil, err
		}
		return r.body, nil
	case <-c.dead:
		if c.readErr != nil {
			return nil, c.readErr
		}
		return nil, io.EOF
	}
}
