package rpc

import (
	"bytes"
	"testing"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// TestPipelinedCallsOverlap issues N calls with Start before collecting
// any reply: all N must be on the wire concurrently, so the batch
// completes in roughly one round trip instead of N.
func TestPipelinedCallsOverlap(t *testing.T) {
	const depth = 8
	rtt := 2 * 10 * sim.Millisecond

	run := func(pipelined bool) sim.Duration {
		k := sim.NewKernel(1)
		client, server := newPair(k, simnet.Config{PropDelay: 10 * sim.Millisecond}, Options{Workers: depth})
		server.Register(testProg, echoHandler)
		var elapsed sim.Duration
		k.Go("caller", func(p *sim.Proc) {
			start := k.Now()
			if pipelined {
				var calls [depth]*Pending
				for i := range calls {
					c, err := client.Start(p, "server", testProg, 1, uint32(i), &proto.StatusReply{Status: proto.Status(i)})
					if err != nil {
						t.Errorf("start %d: %v", i, err)
					}
					calls[i] = c
				}
				for i, c := range calls {
					body, err := c.Wait(p)
					if err != nil {
						t.Errorf("wait %d: %v", i, err)
						continue
					}
					d := xdr.NewDecoder(body)
					if d.Uint32() != uint32(i) {
						t.Errorf("call %d: reply for the wrong call", i)
					}
				}
			} else {
				for i := 0; i < depth; i++ {
					if _, err := client.CallMsg(p, "server", testProg, 1, uint32(i), &proto.StatusReply{Status: proto.Status(i)}); err != nil {
						t.Errorf("call %d: %v", i, err)
					}
				}
			}
			elapsed = k.Now().Sub(start)
			k.Stop()
		})
		k.Run()
		return elapsed
	}

	lockstep := run(false)
	pipelined := run(true)
	if lockstep < sim.Duration(depth)*rtt {
		t.Errorf("lockstep batch took %v, want >= %v", lockstep, sim.Duration(depth)*rtt)
	}
	if pipelined >= 2*rtt {
		t.Errorf("pipelined batch took %v, want < 2 RTT (%v)", pipelined, 2*rtt)
	}
}

// TestCallMsgMatchesMarshalledCall pins the byte-identity contract: a
// call issued with CallMsg produces exactly the reply (and wire
// behavior) of Call with proto.Marshal'd args.
func TestCallMsgMatchesMarshalledCall(t *testing.T) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{})
	var seen [][]byte
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		seen = append(seen, append([]byte(nil), args...))
		return nil, StatusOK
	})
	msg := &proto.WriteArgs{Offset: 4096, Data: []byte("same bytes both ways"), Unstable: true}
	k.Go("caller", func(p *sim.Proc) {
		if _, err := client.Call(p, "server", testProg, 1, 1, proto.Marshal(msg)); err != nil {
			t.Errorf("call: %v", err)
		}
		if _, err := client.CallMsg(p, "server", testProg, 1, 1, msg); err != nil {
			t.Errorf("callmsg: %v", err)
		}
		k.Stop()
	})
	k.Run()
	if len(seen) != 2 || !bytes.Equal(seen[0], seen[1]) {
		t.Fatalf("CallMsg args differ from Marshal'd Call args: %x vs %x", seen[0], seen[1])
	}
}

// TestDupCacheImmuneToWireMutation models the aliasing hazard zero-copy
// decoding introduces: the reply body a client receives is a view of the
// very buffer the server transmitted. If the client mutates it (the
// block cache patches data in place), a later retransmission of the same
// xid must still be answered with the original reply — the duplicate
// cache must hold its own copy, not a reference to the transmitted wire.
func TestDupCacheImmuneToWireMutation(t *testing.T) {
	k := sim.NewKernel(1)
	client, server := newPair(k, simnet.Config{PropDelay: sim.Millisecond}, Options{})
	payload := []byte("stable reply payload")
	server.Register(testProg, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, Status) {
		return append([]byte(nil), payload...), StatusOK
	})
	k.Go("caller", func(p *sim.Proc) {
		body, err := client.Call(p, "server", testProg, 1, 1, nil) // xid 1
		if err != nil {
			t.Errorf("call: %v", err)
			k.Stop()
			return
		}
		if !bytes.Equal(body, payload) {
			t.Errorf("first reply %q, want %q", body, payload)
		}
		// The client-side view aliases the transmitted reply buffer;
		// scribble over it the way an in-place block-cache update would.
		for i := range body {
			body[i] = 0xff
		}
		// Hand-retransmit the same call (same from, same xid): the
		// server must replay the recorded reply, uncorrupted.
		enc := xdr.NewEncoder()
		enc.Uint32(1) // xid of the first call
		enc.Uint32(msgCall)
		enc.Uint32(testProg)
		enc.Uint32(1)
		enc.Uint32(1)
		enc.Uint64(0)
		sig := sim.NewSignal(k)
		client.pending[1] = sig
		client.net.Send(client.addr, "server", enc.Bytes())
		v, got := sig.WaitTimeout(p, sim.Second)
		if !got {
			t.Error("no replayed reply")
		} else if r := v.(reply); !bytes.Equal(r.body, payload) {
			t.Errorf("replayed reply corrupted by wire mutation: %q, want %q", r.body, payload)
		}
		if server.Stats().DupHits != 1 {
			t.Errorf("DupHits = %d, want 1", server.Stats().DupHits)
		}
		if server.Stats().CallsServed != 1 {
			t.Errorf("CallsServed = %d, want 1 (replay must not re-execute)", server.Stats().CallsServed)
		}
		k.Stop()
	})
	k.Run()
}

// TestDupCacheFinishCopies pins the unit-level contract of finish: the
// stored reply is a private copy, so mutating the inserted slice cannot
// corrupt what lookup later returns.
func TestDupCacheFinishCopies(t *testing.T) {
	c := newDupCache(4, nil)
	c.start("cl", 7)
	wire := []byte{1, 2, 3, 4}
	stored := c.finish("cl", 7, wire)
	if !bytes.Equal(stored, wire) {
		t.Fatalf("finish returned %x, want %x", stored, wire)
	}
	wire[0] = 0xee
	state, cached := c.lookup("cl", 7)
	if state != dupDone || !bytes.Equal(cached, []byte{1, 2, 3, 4}) {
		t.Errorf("cached entry corrupted: state=%v wire=%x", state, cached)
	}
}
