package server

import (
	"fmt"
	"sync/atomic"

	"spritelynfs/internal/audit"
	"spritelynfs/internal/core"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/xdr"
)

// SNFSOptions configures the Spritely server beyond the base Config.
type SNFSOptions struct {
	// TableLimit bounds the state table (0 = the paper's 1000).
	TableLimit int
	// Hybrid accepts plain-NFS accesses to files under SNFS state by
	// treating them as implicit opens (§6.1).
	Hybrid bool
	// GraceDur is the post-reboot window during which only reopens are
	// accepted while the state table is reconstructed (0 = 2 s).
	GraceDur sim.Duration
	// NameCacheProtocol extends the consistency protocol to directory
	// entries (the approach §7 suggests): clients hold read-opens on
	// directories whose entries they cache, and every namespace
	// mutation invalidates the other holders before it completes.
	NameCacheProtocol bool
}

// SNFSServer is the stateful Spritely NFS server: the NFS file procedures
// plus the open/close/callback consistency machinery of §3 and §4.3.
//
// Callback delivery is bounded to Workers-1 concurrent callbacks, the
// paper's rule for avoiding deadlock: a callback blocks a worker until
// the client's forced write-backs complete, and those write-backs are
// WRITE calls that need a free worker of their own.
type SNFSServer struct {
	*Base
	table      *core.Table
	locks      map[proto.Handle]*sim.Mutex
	cbSem      *sim.Semaphore
	opts       SNFSOptions
	epoch      uint64
	graceUntil sim.Time
	crashed    bool
	locksTab   *lockTable
	// inCallback tracks clients currently being called back for a
	// handle, so their forced write-backs are never mistaken for new
	// plain-NFS traffic by the hybrid path (that would deadlock
	// against the entry lock held across the callback).
	inCallback map[cbKey]int
	// cbOutstanding counts callbacks currently in flight (issued, reply
	// not yet received) for the observability gauges.
	cbOutstanding atomic.Int64
	auditor       *audit.Auditor

	// Backup role: the event-sourced image of the primary's state table
	// plus stream progress, consumed by Promote (repl.go).
	mirror       map[proto.Handle]*mirrorEntry
	replApplied  uint64
	replGap      bool
	primEpoch    uint64
	primVerifier uint64
	promoted     bool
	promotedAt   sim.Time
	healed       bool
	healedAt     sim.Time
}

type cbKey struct {
	h proto.Handle
	c core.ClientID
}

// NewSNFS creates a Spritely NFS server on ep.
func NewSNFS(k *sim.Kernel, ep *rpc.Endpoint, media *localfs.Media, cfg Config, opts SNFSOptions) *SNFSServer {
	if opts.GraceDur == 0 {
		opts.GraceDur = 2 * sim.Second
	}
	s := &SNFSServer{
		Base:       newBase(k, ep, media, cfg),
		table:      core.NewTable(opts.TableLimit),
		locks:      make(map[proto.Handle]*sim.Mutex),
		cbSem:      sim.NewSemaphore(k, maxInt(1, ep.Workers()-1)),
		opts:       opts,
		epoch:      1,
		locksTab:   newLockTable(),
		inCallback: make(map[cbKey]int),
		mirror:     make(map[proto.Handle]*mirrorEntry),
	}
	s.onRemoved = func(h proto.Handle) {
		s.table.Drop(h)
		s.locksTab.drop(h)
	}
	s.table.Observer = s.observeTransition
	ep.Register(proto.ProgNFS, s.serve)
	return s
}

// observeTransition is the state table's single Observer slot, fanning
// each mutation out to every attached consumer: the auditor's shadow
// machine and the flight recorder (both nil-safe).
func (s *SNFSServer) observeTransition(ev core.TransitionEvent) {
	s.auditor.OnTransition(ev)
	if s.repl != nil {
		s.repl.noteTransition(ev)
	}
	if s.flight != nil {
		s.flight.Recordf(string(s.ep.Addr()), "state", s.k.CurrentOp(),
			"%s %s %s: %s -> %s v%d", ev.Event, ev.Handle, ev.Client, ev.From, ev.To, ev.Version)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// EnableMetrics attaches a metrics registry: the base gauges plus the
// state-table view the protocol revolves around — entries per Table 4-1
// state, table occupancy, outstanding callbacks, and the cumulative
// reclaim/callback/inconsistency counts.
func (s *SNFSServer) EnableMetrics(r *metrics.Registry) {
	s.Base.EnableMetrics(r)
	for st := core.StateClosed; st <= core.StateWriteShared; st++ {
		st := st
		r.GaugeFunc(metrics.Label("snfs_server_state_entries", "state", st.String()),
			func() float64 { return float64(s.table.StateCount(st)) })
	}
	r.GaugeFunc("snfs_server_state_table_size",
		func() float64 { return float64(s.table.Len()) })
	r.GaugeFunc("snfs_server_callbacks_outstanding",
		func() float64 { return float64(s.cbOutstanding.Load()) })
	r.GaugeFunc("snfs_server_callbacks_issued_total",
		func() float64 { return float64(s.table.Stats().CallbacksIssued) })
	r.GaugeFunc("snfs_server_reclaims_total",
		func() float64 { return float64(s.table.Stats().Reclaims) })
	r.GaugeFunc("snfs_server_inconsistencies_total",
		func() float64 { return float64(s.table.Stats().Inconsistencies) })
	r.GaugeFunc("snfs_server_version_bumps_total",
		func() float64 { return float64(s.table.Stats().VersionBumps) })
}

// SetAuditor attaches a protocol auditor: the state table feeds it every
// transition, and callback fan-out is journaled. Survives Reboot.
func (s *SNFSServer) SetAuditor(a *audit.Auditor) {
	s.auditor = a
	s.table.Observer = s.observeTransition
}

// Auditor returns the attached auditor (nil when auditing is off).
func (s *SNFSServer) Auditor() *audit.Auditor { return s.auditor }

// clientDead records the loss of a client everywhere: state table and
// lock table.
func (s *SNFSServer) clientDead(c core.ClientID) {
	s.table.ClientDead(c)
	s.locksTab.clientDead(c)
}

// Table exposes the state table (for tests and stats).
func (s *SNFSServer) Table() *core.Table { return s.table }

// Epoch returns the server incarnation number.
func (s *SNFSServer) Epoch() uint64 { return s.epoch }

// InGrace reports whether the server is in its recovery window.
func (s *SNFSServer) InGrace() bool { return s.k.Now() < s.graceUntil }

// Crashed reports whether the server is currently down.
func (s *SNFSServer) Crashed() bool { return s.crashed }

func (s *SNFSServer) lockFor(h proto.Handle) *sim.Mutex {
	m, ok := s.locks[h]
	if !ok {
		m = sim.NewMutex(s.k)
		s.locks[h] = m
	}
	return m
}

// Crash detaches the server from the network, losing all volatile state
// when it reboots.
func (s *SNFSServer) Crash() {
	s.Tracer().Record("server", trace.Crash, "server crash (epoch %d)", s.epoch)
	s.flight.Recordf(string(s.ep.Addr()), "crash", 0, "server crash (epoch %d)", s.epoch)
	s.crashed = true
	// The buffer cache dies with the server: unstable writes that no
	// COMMIT has landed are gone, and the bumped verifier at reboot is
	// how their writers find out.
	if lost := s.media.DropDirty(); lost > 0 {
		s.Tracer().Record("server", trace.Crash, "crash dropped %d uncommitted dirty blocks", lost)
	}
	s.ep.Stop()
}

// Reboot restarts a crashed server with an empty state table and a fresh
// epoch, entering the grace period during which clients re-register their
// opens (§2.4).
func (s *SNFSServer) Reboot() {
	if !s.crashed {
		return
	}
	s.crashed = false
	s.epoch++
	// The write verifier is the crash epoch: advancing it here is what
	// turns a reboot into a visible event for unstable-write clients.
	s.verifier++
	s.table = core.NewTable(s.opts.TableLimit)
	s.locksTab = newLockTable()
	s.onRemoved = func(h proto.Handle) {
		s.table.Drop(h)
		s.locksTab.drop(h)
	}
	s.locks = make(map[proto.Handle]*sim.Mutex)
	s.graceUntil = s.k.Now().Add(s.opts.GraceDur)
	s.ep.Restart()
	s.table.Tracer = s.Tracer()
	s.table.Observer = s.observeTransition
	if s.auditor != nil {
		s.auditor.ServerRebooted()
	}
	s.Tracer().Record("server", trace.Crash, "server reboot (epoch %d, grace until %v)", s.epoch, s.graceUntil)
	s.flight.Recordf(string(s.ep.Addr()), "crash", 0, "server reboot (epoch %d)", s.epoch)
}

func (s *SNFSServer) serve(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
	s.recordServe(p, from, proc)
	// The replication stream is handled ahead of the ownership guard: a
	// backup is by definition not its shard's owner, and a new primary
	// must still answer (ErrDemoted) so a partitioned old primary learns.
	switch proc {
	case proto.ProcReplStream:
		return s.serveReplStream(p, from, args), rpc.StatusOK
	case proto.ProcReplSync:
		return s.serveReplSync(p, from, args), rpc.StatusOK
	}
	if body, rejected := s.ownerCheck(p, proc); rejected {
		return body, rpc.StatusOK
	}
	s.noteHealed(from, proc)
	switch proc {
	case proto.ProcOpen:
		return s.serveOpen(p, from, args), rpc.StatusOK
	case proto.ProcClose:
		return s.serveClose(p, from, args), rpc.StatusOK
	case proto.ProcReopen:
		return s.serveReopen(p, from, args), rpc.StatusOK
	case proto.ProcServerInfo:
		s.chargeCPU(p, 0)
		s.account(proc)
		return proto.Marshal(&proto.ServerInfoReply{
			Status: proto.OK, Epoch: s.epoch, InGrace: s.InGrace(),
		}), rpc.StatusOK
	case proto.ProcDumpState:
		s.chargeCPU(p, 0)
		s.account(proc)
		return proto.Marshal(s.dumpState()), rpc.StatusOK
	case proto.ProcAudit:
		s.chargeCPU(p, 0)
		s.account(proc)
		return proto.Marshal(&proto.AuditReply{
			Status: proto.OK, Text: s.auditor.Summary(),
		}), rpc.StatusOK
	case proto.ProcLock, proto.ProcUnlock:
		return s.serveLock(p, from, proc, args)
	}
	// The shard route guard runs before the hybrid/name-cache hooks so a
	// misrouted operation is bounced without delivering any callbacks.
	if body, rejected := s.routeCheck(p, proc, args); rejected {
		return body, rpc.StatusOK
	}
	if proc == proto.ProcCommit && s.auditor != nil {
		// Journal commits: the durability point the no-lost-committed-
		// data check pivots on.
		h := proto.DecodeCommitArgs(xdr.NewDecoder(args)).Handle
		s.auditor.NoteEvent(p.Op(), "commit", h, string(from),
			fmt.Sprintf("verifier %d, epoch %d", s.verifier, s.epoch))
	}
	if s.auditor != nil {
		// Journal the compound procedures so the audit trail shows the
		// attribute observations they hand the client.
		switch proc {
		case proto.ProcLookupPath:
			a := proto.DecodeLookupPathArgs(xdr.NewDecoder(args))
			s.auditor.NoteEvent(p.Op(), "lookuppath", a.Dir, string(from),
				fmt.Sprintf("%d components", len(a.Names)))
		case proto.ProcReaddirAttrs:
			a := proto.DecodeHandleArgs(xdr.NewDecoder(args))
			s.auditor.NoteEvent(p.Op(), "readdirattrs", a.Handle, string(from), "")
		}
	}
	if s.opts.Hybrid {
		if body, st, done := s.serveHybrid(p, from, proc, args); done {
			return body, st
		}
	}
	if s.opts.NameCacheProtocol {
		s.invalidateNameCaches(p, from, proc, args)
	}
	if proc == proto.ProcCreate {
		// A create over an existing file truncates it in place (same
		// inode): clients caching the old contents — including a last
		// writer holding dirty blocks — must drop them first, or a
		// later write-back would resurrect the dead data.
		s.truncateOnCreate(p, from, args)
	}
	body, st, handled := s.serveCommon(p, proc, args)
	if !handled {
		return nil, rpc.StatusProcUnavail
	}
	return body, st
}

// invalidateNameCaches runs before a namespace mutation: every other
// client holding a caching read-open on the affected directory is called
// back to drop its cached name translations (§7 extension). The mutation
// itself then proceeds normally.
func (s *SNFSServer) invalidateNameCaches(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) {
	var dirs []proto.Handle
	d := xdr.NewDecoder(args)
	switch proc {
	case proto.ProcCreate, proto.ProcMkdir:
		dirs = append(dirs, proto.DecodeCreateArgs(d).Dir)
	case proto.ProcSymlink:
		dirs = append(dirs, proto.DecodeSymlinkArgs(d).Dir)
	case proto.ProcLink:
		dirs = append(dirs, proto.DecodeLinkArgs(d).ToDir)
	case proto.ProcRemove, proto.ProcRmdir:
		dirs = append(dirs, proto.DecodeDirOpArgs(d).Dir)
	case proto.ProcRename:
		a := proto.DecodeRenameArgs(d)
		dirs = append(dirs, a.SrcDir)
		if a.DstDir != a.SrcDir {
			dirs = append(dirs, a.DstDir)
		}
	default:
		return
	}
	cid := core.ClientID(from)
	for _, dir := range dirs {
		lk := s.lockFor(dir)
		lk.Lock(p)
		cbs := s.table.InvalidateReaders(dir, cid)
		for _, cb := range cbs {
			if err := s.deliverCallback(p, cb); err != nil {
				s.clientDead(cb.Client)
			}
		}
		lk.Unlock()
	}
}

// truncateOnCreate delivers invalidations for a create that will
// truncate an existing file.
func (s *SNFSServer) truncateOnCreate(p *sim.Proc, from simnet.Addr, args []byte) {
	a := proto.DecodeCreateArgs(xdr.NewDecoder(args))
	existing, err := s.media.Store().Lookup(a.Dir.Ino, a.Name)
	if err != nil {
		return // fresh create: nothing cached anywhere
	}
	h := s.toHandle(existing)
	lk := s.lockFor(h)
	lk.Lock(p)
	defer lk.Unlock()
	for _, cb := range s.table.DropWithInvalidate(h, core.ClientID(from)) {
		if err := s.deliverCallback(p, cb); err != nil {
			s.clientDead(cb.Client)
		}
	}
}

func (s *SNFSServer) serveOpen(p *sim.Proc, from simnet.Addr, args []byte) []byte {
	a := proto.DecodeOpenArgs(xdr.NewDecoder(args))
	s.chargeCPU(p, 0)
	s.account(proto.ProcOpen)
	if _, st := s.handle(a.Handle); st != proto.OK {
		return proto.Marshal(&proto.OpenReply{Status: st})
	}
	if s.InGrace() {
		return proto.Marshal(&proto.OpenReply{Status: proto.ErrGrace})
	}
	lk := s.lockFor(a.Handle)
	lk.Lock(p)
	defer lk.Unlock()

	cid := core.ClientID(from)
	res := s.table.Open(a.Handle, cid, a.WriteMode)
	if res.TableFull {
		// Reclaim closed-dirty entries by write-back callbacks
		// (§4.3.1), then retry once.
		for _, cb := range s.table.ReclaimCandidates(4) {
			if err := s.deliverCallback(p, cb); err != nil {
				s.clientDead(cb.Client)
			}
			s.table.Reclaimed(cb.Handle)
		}
		res = s.table.Open(a.Handle, cid, a.WriteMode)
		if res.TableFull {
			return proto.Marshal(&proto.OpenReply{Status: proto.ErrTableFull})
		}
	}
	inconsistent := res.Inconsistent
	for _, cb := range res.Callbacks {
		if err := s.deliverCallback(p, cb); err != nil {
			// The client serving the callback is down (§3.2):
			// honor the open, but if dirty data was at stake,
			// warn the opener.
			s.clientDead(cb.Client)
			if cb.WriteBack {
				inconsistent = true
			}
		}
	}
	// Attributes are fetched after callbacks so forced write-backs are
	// reflected (size, mtime).
	attr, st := s.handle(a.Handle)
	if st != proto.OK {
		return proto.Marshal(&proto.OpenReply{Status: st})
	}
	status := proto.OK
	if inconsistent {
		status = proto.ErrInconsistent
	}
	return proto.Marshal(&proto.OpenReply{
		Status:       status,
		CacheEnabled: res.CacheEnabled,
		Version:      res.Version,
		PrevVersion:  res.PrevVersion,
		Attr:         s.fattr(attr),
	})
}

func (s *SNFSServer) serveClose(p *sim.Proc, from simnet.Addr, args []byte) []byte {
	d := xdr.NewDecoder(args)
	a := proto.DecodeCloseArgs(d)
	wantAttr := proto.DecodeWantAttr(d)
	s.chargeCPU(p, 0)
	s.account(proto.ProcClose)
	lk := s.lockFor(a.Handle)
	lk.Lock(p)
	defer lk.Unlock()
	s.table.Close(a.Handle, core.ClientID(from), a.WriteMode)
	if wantAttr {
		// Post-op attributes save the getattr that commonly trails a
		// close; journaled so the audit can correlate client views.
		s.auditor.NoteEvent(p.Op(), "close-wcc", a.Handle, string(from), "")
		return proto.Marshal(s.wccReply(proto.OK, a.Handle))
	}
	return proto.Marshal(&proto.StatusReply{Status: proto.OK})
}

func (s *SNFSServer) serveReopen(p *sim.Proc, from simnet.Addr, args []byte) []byte {
	a := proto.DecodeReopenArgs(xdr.NewDecoder(args))
	s.chargeCPU(p, 0)
	s.account(proto.ProcReopen)
	attr, st := s.handle(a.Handle)
	if st != proto.OK {
		return proto.Marshal(&proto.OpenReply{Status: st})
	}
	lk := s.lockFor(a.Handle)
	lk.Lock(p)
	defer lk.Unlock()
	cid := core.ClientID(from)
	s.table.Recover(a.Handle, cid, a.Readers, a.Writers, a.Version, a.HasDirty)
	return proto.Marshal(&proto.OpenReply{
		Status:       proto.OK,
		CacheEnabled: s.table.CachingFor(a.Handle, cid) || (a.HasDirty && a.Readers == 0 && a.Writers == 0),
		Version:      s.table.Version(a.Handle),
		PrevVersion:  s.table.Version(a.Handle),
		Attr:         s.fattr(attr),
	})
}

// serveHybrid implements §6.1: a data or attribute access from a client
// with no open registered (a plain NFS client) is bracketed by an
// implicit open and close, so SNFS clients' caches stay consistent with
// NFS traffic — and the NFS client sees post-write-back attributes.
// Writes from a file's last writer (delayed write-back and callback-
// forced flushes arrive without an open) are exempt.
func (s *SNFSServer) serveHybrid(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status, bool) {
	var h proto.Handle
	var isWrite bool
	d := xdr.NewDecoder(args)
	switch proc {
	case proto.ProcRead:
		h = proto.DecodeReadArgs(d).Handle
	case proto.ProcWrite:
		h = proto.DecodeWriteArgs(d).Handle
		isWrite = true
	case proto.ProcGetattr:
		h = proto.DecodeHandleArgs(d).Handle
	case proto.ProcSetattr:
		h = proto.DecodeSetattrArgs(d).Handle
		isWrite = true
	default:
		return nil, rpc.StatusOK, false
	}
	cid := core.ClientID(from)
	if s.table.CachingFor(h, cid) || s.hasOpen(h, cid) || s.table.LastWriter(h) == cid ||
		s.inCallback[cbKey{h, cid}] > 0 {
		return nil, rpc.StatusOK, false // a participating SNFS client
	}
	if s.table.State(h) == core.StateClosed && s.table.Len() == 0 {
		// Nothing under SNFS state anywhere: plain NFS op.
		return nil, rpc.StatusOK, false
	}
	lk := s.lockFor(h)
	lk.Lock(p)
	res := s.table.Open(h, cid, isWrite)
	for _, cb := range res.Callbacks {
		if err := s.deliverCallback(p, cb); err != nil {
			s.clientDead(cb.Client)
		}
	}
	lk.Unlock()
	body, st, _ := s.serveCommon(p, proc, args)
	lk.Lock(p)
	s.table.Close(h, cid, isWrite)
	lk.Unlock()
	return body, st, true
}

// hasOpen reports whether client c has any registered open of h.
func (s *SNFSServer) hasOpen(h proto.Handle, c core.ClientID) bool {
	// The table has no direct accessor for this; CachingFor covers the
	// caching case, and for non-caching (write-shared) participants we
	// check the open counts via CachingClients' complement. A small
	// dedicated accessor keeps this honest.
	return s.table.HasClient(h, c)
}

// deliverCallback sends one callback RPC to a client and waits for it
// (including any write-backs it triggers), bounded by the Workers-1
// semaphore.
func (s *SNFSServer) deliverCallback(p *sim.Proc, cb core.Callback) error {
	s.cbSem.Acquire(p)
	defer s.cbSem.Release()
	s.cbOutstanding.Add(1)
	defer s.cbOutstanding.Add(-1)
	s.Tracer().RecordOp("server", trace.Callback, p.Op(), "-> %s %s writeback=%v invalidate=%v",
		cb.Client, cb.Handle, cb.WriteBack, cb.Invalidate)
	if s.Flight() != nil {
		s.Flight().Recordf(string(s.Endpoint().Addr()), "callback", p.Op(),
			"-> %s %s writeback=%v invalidate=%v", cb.Client, cb.Handle, cb.WriteBack, cb.Invalidate)
	}
	s.auditor.NoteEvent(p.Op(), "callback", cb.Handle, string(cb.Client),
		fmt.Sprintf("writeback=%v invalidate=%v", cb.WriteBack, cb.Invalidate))
	k := cbKey{cb.Handle, cb.Client}
	s.inCallback[k]++
	defer func() {
		s.inCallback[k]--
		if s.inCallback[k] == 0 {
			delete(s.inCallback, k)
		}
	}()
	s.ops.Inc("callback")
	args := &proto.CallbackArgs{
		Handle:     cb.Handle,
		WriteBack:  cb.WriteBack,
		Invalidate: cb.Invalidate,
	}
	// Tight retry budget: a callback to a dead client must be declared
	// failed before the open that triggered it times out at its client
	// (§3.2: the opener retries harmlessly, but must not give up first).
	body, err := s.ep.CallMsgEx(p, simnet.Addr(cb.Client), proto.ProgCallback, 1, proto.CbProcCallback, args,
		sim.Second, 2)
	if err != nil {
		return err
	}
	r := proto.DecodeStatusReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return fmt.Errorf("callback to %s: %s", cb.Client, r.Status)
	}
	return nil
}

// Expel forces every client out of h's cache and drops its consistency
// state: each client with an open or cached copy (including a
// closed-dirty last writer) is called back to write dirty blocks through
// and invalidate, and any advisory locks are discarded. The cluster
// layer quiesces files this way before migrating a subtree to another
// shard — after Expel returns, the store holds the only copy of the
// file's bytes and no client may use a cached block without reopening
// (which, post-migration, earns ErrStale and a re-walk to the new home).
func (s *SNFSServer) Expel(p *sim.Proc, h proto.Handle) {
	lk := s.lockFor(h)
	lk.Lock(p)
	defer lk.Unlock()
	for _, cb := range s.table.DropWithInvalidate(h, "") {
		// Unlike a truncating create, the contents survive the move:
		// dirty delayed writes must come back before the copy.
		cb.WriteBack = true
		if err := s.deliverCallback(p, cb); err != nil {
			s.clientDead(cb.Client)
		}
	}
	s.locksTab.drop(h)
}

// ReclaimIdle proactively reclaims closed-dirty entries when the table is
// within margin of its limit; servers may run this from a housekeeping
// process.
func (s *SNFSServer) ReclaimIdle(p *sim.Proc, margin int) int {
	if !s.table.NeedsReclaim(margin) {
		return 0
	}
	n := 0
	for _, cb := range s.table.ReclaimCandidates(margin) {
		if err := s.deliverCallback(p, cb); err != nil {
			s.clientDead(cb.Client)
		}
		s.table.Reclaimed(cb.Handle)
		n++
	}
	return n
}

// dumpState snapshots the consistency table for the administrative dump
// procedure.
func (s *SNFSServer) dumpState() *proto.DumpStateReply {
	r := &proto.DumpStateReply{Status: proto.OK, Epoch: s.epoch}
	for _, e := range s.table.Snapshot() {
		de := proto.DumpEntry{
			Handle:       e.Handle,
			State:        uint32(e.State),
			StateName:    e.State.String(),
			Version:      e.Version,
			LastWriter:   string(e.LastWriter),
			Inconsistent: e.Inconsistent,
		}
		for _, c := range e.Clients {
			de.Clients = append(de.Clients, proto.DumpClient{
				Client:  string(c.Client),
				Readers: uint32(c.Readers),
				Writers: uint32(c.Writers),
				Caching: c.Caching,
			})
		}
		r.Entries = append(r.Entries, de)
	}
	return r
}
