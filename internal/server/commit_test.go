package server

import (
	"testing"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/xdr"
)

// createFile makes one file under root and returns its handle.
func createFile(t *testing.T, r *rig, p *sim.Proc, name string) proto.Handle {
	t.Helper()
	body := r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: r.root(), Name: name, Mode: 0o644})
	cr := proto.DecodeHandleReply(xdr.NewDecoder(body))
	if cr.Status != proto.OK {
		t.Fatalf("create %s: %v", name, cr.Status)
	}
	return cr.Handle
}

func TestUnstableWriteDefersDisk(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		h := createFile(t, r, p, "f")
		disk := r.nfs.Media().Disk()
		before := disk.Stats().Writes

		// Six adjacent unstable blocks: no disk activity at WRITE time.
		for i := 0; i < 6; i++ {
			body := r.call(t, p, proto.ProcWrite, &proto.WriteArgs{
				Handle: h, Offset: int64(i) * 4096, Data: make([]byte, 4096), Unstable: true,
			})
			wr := proto.DecodeWriteReply(xdr.NewDecoder(body))
			if wr.Status != proto.OK {
				t.Fatalf("unstable write %d: %v", i, wr.Status)
			}
			if wr.Committed {
				t.Fatalf("unstable write %d reported committed", i)
			}
			if wr.Verifier != r.nfs.Verifier() {
				t.Fatalf("write verifier %d, want %d", wr.Verifier, r.nfs.Verifier())
			}
		}
		if got := disk.Stats().Writes; got != before {
			t.Fatalf("unstable writes issued %d disk ops", got-before)
		}

		// COMMIT gathers all six blocks into one arm operation.
		body := r.call(t, p, proto.ProcCommit, &proto.CommitArgs{Handle: h})
		cr := proto.DecodeCommitReply(xdr.NewDecoder(body))
		if cr.Status != proto.OK || cr.Verifier != r.nfs.Verifier() {
			t.Fatalf("commit: %+v", cr)
		}
		if got := disk.Stats().Writes - before; got != 1 {
			t.Errorf("commit issued %d disk ops, want 1 (gathered)", got)
		}
		st := r.nfs.Media().Sched().Stats()
		if st.Requests != 6 || st.Merged != 5 || st.Ops != 1 {
			t.Errorf("scheduler stats %+v", st)
		}
	})
}

func TestCommitVerifierChangesAcrossReboot(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		h := createFile(t, r, p, "f")
		body := r.call(t, p, proto.ProcWrite, &proto.WriteArgs{
			Handle: h, Offset: 0, Data: make([]byte, 4096), Unstable: true,
		})
		wr := proto.DecodeWriteReply(xdr.NewDecoder(body))
		v0 := wr.Verifier

		dirtyBefore := r.nfs.Media().DirtyBlocks()
		if dirtyBefore == 0 {
			t.Fatal("unstable write left no dirty block")
		}
		r.nfs.Crash()
		if r.nfs.Media().DirtyBlocks() != 0 {
			t.Error("crash did not drop uncommitted blocks")
		}
		r.nfs.Reboot()

		body = r.call(t, p, proto.ProcCommit, &proto.CommitArgs{Handle: h})
		cr := proto.DecodeCommitReply(xdr.NewDecoder(body))
		if cr.Status != proto.OK {
			t.Fatalf("commit after reboot: %v", cr.Status)
		}
		if cr.Verifier == v0 {
			t.Errorf("verifier unchanged across reboot (%d): clients cannot detect the loss", v0)
		}
	})
}

func TestSNFSRebootBumpsWriteVerifier(t *testing.T) {
	r := newRig(true, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		v0 := r.snfs.Verifier()
		r.snfs.Crash()
		r.snfs.Reboot()
		if got := r.snfs.Verifier(); got != v0+1 {
			t.Errorf("verifier %d after reboot, want %d", got, v0+1)
		}
	})
}
