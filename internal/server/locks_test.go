package server

import (
	"testing"

	"spritelynfs/internal/core"
	"spritelynfs/internal/proto"
)

var lkh = proto.Handle{FSID: 1, Ino: 9, Gen: 1}

func TestLockTableSharedAndExclusive(t *testing.T) {
	lt := newLockTable()
	if !lt.acquire(lkh, "A", false) || !lt.acquire(lkh, "B", false) {
		t.Fatal("two shared locks should coexist")
	}
	if lt.acquire(lkh, "C", true) {
		t.Error("exclusive granted over shared holders")
	}
	lt.release(lkh, "A")
	lt.release(lkh, "B")
	if !lt.acquire(lkh, "C", true) {
		t.Error("exclusive denied on a free file")
	}
	if lt.acquire(lkh, "A", false) || lt.acquire(lkh, "A", true) {
		t.Error("locks granted while C holds exclusive")
	}
	lt.release(lkh, "C")
	if !lt.acquire(lkh, "A", false) {
		t.Error("shared denied after exclusive release")
	}
}

func TestLockTableReentrancy(t *testing.T) {
	lt := newLockTable()
	if !lt.acquire(lkh, "A", true) || !lt.acquire(lkh, "A", true) {
		t.Fatal("exclusive lock not reentrant for its holder")
	}
	// The holder may also take shared locks.
	if !lt.acquire(lkh, "A", false) {
		t.Error("holder denied a shared lock")
	}
	// A single shared holder may upgrade.
	lt2 := newLockTable()
	lt2.acquire(lkh, "A", false)
	if !lt2.acquire(lkh, "A", true) {
		t.Error("sole shared holder denied upgrade")
	}
}

func TestLockTableSharedCounts(t *testing.T) {
	lt := newLockTable()
	lt.acquire(lkh, "A", false)
	lt.acquire(lkh, "A", false) // count 2
	lt.release(lkh, "A")
	if lt.acquire(lkh, "B", true) {
		t.Error("exclusive granted while A still holds one shared count")
	}
	lt.release(lkh, "A")
	if !lt.acquire(lkh, "B", true) {
		t.Error("exclusive denied after full release")
	}
}

func TestLockTableClientDead(t *testing.T) {
	lt := newLockTable()
	h2 := proto.Handle{FSID: 1, Ino: 10, Gen: 1}
	lt.acquire(lkh, "A", true)
	lt.acquire(h2, "A", false)
	lt.acquire(h2, "B", false)
	lt.clientDead("A")
	if !lt.acquire(lkh, "B", true) {
		t.Error("dead client's exclusive lock not released")
	}
	if lt.acquire(h2, "C", true) {
		t.Error("B's surviving shared lock ignored")
	}
	if _, ok := lt.locks[lkh]; ok {
		// re-acquired by B above; fine
		_ = ok
	}
}

func TestLockTableDropAndEmptyCleanup(t *testing.T) {
	lt := newLockTable()
	lt.acquire(lkh, "A", false)
	lt.release(lkh, "A")
	if len(lt.locks) != 0 {
		t.Error("empty lock entry retained")
	}
	lt.acquire(lkh, "A", true)
	lt.drop(lkh)
	if !lt.acquire(lkh, "B", true) {
		t.Error("drop did not clear the lock")
	}
	// Releasing a lock never held is harmless.
	lt.release(proto.Handle{Ino: 99}, "Z")
}

func TestRFSTableEviction(t *testing.T) {
	rt := newRFSTable(2)
	h := func(i uint64) proto.Handle { return proto.Handle{FSID: 1, Ino: i, Gen: 1} }
	e1 := rt.get(h(1))
	e1.stamp = 1
	e2 := rt.get(h(2))
	e2.stamp = 2
	// Both closed (no opens): the third evicts the oldest.
	rt.get(h(3))
	if _, ok := rt.entries[h(1)]; ok {
		t.Error("oldest closed entry not evicted")
	}
	if len(rt.entries) != 2 {
		t.Errorf("table size %d", len(rt.entries))
	}
	// Open entries are not evicted.
	rt2 := newRFSTable(1)
	e := rt2.get(h(1))
	e.opens[core.ClientID("A")] = 1
	rt2.get(h(2))
	if _, ok := rt2.entries[h(1)]; !ok {
		t.Error("open entry evicted")
	}
}
