package server

import (
	"spritelynfs/internal/core"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// lockTable is the SNFS server's advisory lock manager — the "other
// mechanism, such as file locking" §2.2 presumes for serializing
// read/write sharing. Locks are per-file (whole-file granularity, like
// the consistency protocol itself), shared or exclusive, and polled:
// a denied request is answered immediately and the client retries.
//
// Like the state table, the lock table is volatile: locks die with the
// server (clients re-acquire after recovery) and a client's locks are
// released when the server declares it dead.
type lockTable struct {
	locks map[proto.Handle]*fileLock
}

type fileLock struct {
	exclusive core.ClientID // holder of the exclusive lock, "" if none
	shared    map[core.ClientID]int
}

func newLockTable() *lockTable {
	return &lockTable{locks: make(map[proto.Handle]*fileLock)}
}

// acquire tries to take the lock, returning whether it was granted.
// Locks are reentrant per client (counts for shared; idempotent for
// exclusive).
func (t *lockTable) acquire(h proto.Handle, c core.ClientID, exclusive bool) bool {
	l, ok := t.locks[h]
	if !ok {
		l = &fileLock{shared: make(map[core.ClientID]int)}
		t.locks[h] = l
	}
	if exclusive {
		if l.exclusive == c {
			return true
		}
		if l.exclusive != "" {
			return false
		}
		// Shared holders other than the requester block an upgrade.
		for holder := range l.shared {
			if holder != c {
				return false
			}
		}
		l.exclusive = c
		return true
	}
	if l.exclusive != "" && l.exclusive != c {
		return false
	}
	l.shared[c]++
	return true
}

// release drops one lock held by c (the exclusive one if held, else one
// shared count). Releasing nothing is harmless.
func (t *lockTable) release(h proto.Handle, c core.ClientID) {
	l, ok := t.locks[h]
	if !ok {
		return
	}
	if l.exclusive == c {
		l.exclusive = ""
	} else if l.shared[c] > 0 {
		l.shared[c]--
		if l.shared[c] == 0 {
			delete(l.shared, c)
		}
	}
	if l.exclusive == "" && len(l.shared) == 0 {
		delete(t.locks, h)
	}
}

// clientDead releases everything c held.
func (t *lockTable) clientDead(c core.ClientID) {
	for h, l := range t.locks {
		if l.exclusive == c {
			l.exclusive = ""
		}
		delete(l.shared, c)
		if l.exclusive == "" && len(l.shared) == 0 {
			delete(t.locks, h)
		}
	}
}

// drop removes all locks on h (file removed).
func (t *lockTable) drop(h proto.Handle) { delete(t.locks, h) }

// serveLock handles ProcLock and ProcUnlock on the SNFS server.
func (s *SNFSServer) serveLock(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
	a := proto.DecodeLockArgs(xdr.NewDecoder(args))
	s.chargeCPU(p, 0)
	s.account(proc)
	if _, st := s.handle(a.Handle); st != proto.OK {
		return proto.Marshal(&proto.LockReply{Status: st}), rpc.StatusOK
	}
	cid := core.ClientID(from)
	switch proc {
	case proto.ProcLock:
		granted := s.locksTab.acquire(a.Handle, cid, a.Exclusive)
		return proto.Marshal(&proto.LockReply{Status: proto.OK, Granted: granted}), rpc.StatusOK
	default: // ProcUnlock
		s.locksTab.release(a.Handle, cid)
		return proto.Marshal(&proto.LockReply{Status: proto.OK, Granted: true}), rpc.StatusOK
	}
}
