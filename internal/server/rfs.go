package server

import (
	"spritelynfs/internal/core"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/xdr"
)

// RFSServer implements the System V Remote File Sharing consistency
// scheme the paper describes in §2.5 as the point between NFS and Sprite:
// clients send open and close messages (stateful), every client may cache
// read data, writes go through to the server as in NFS, and the server
// sends invalidate callbacks only when writes actually occur — "unlike
// Sprite, RFS waits until writes actually occur before invalidating
// client caches". Version numbers validate caches across close/reopen,
// as in both Sprite and NFS.
//
// The paper's prediction, which the harness's rfs experiment tests:
// "RFS provides the same consistency guarantees as Sprite, but because
// RFS uses the same write policy as NFS, its performance should be
// closer to that of NFS."
type RFSServer struct {
	*Base
	tab   *rfsTable
	cbSem *sim.Semaphore
}

// rfsTable tracks which clients have each file open (and may therefore
// be caching it), plus the version numbers for reopen validation.
type rfsTable struct {
	entries map[proto.Handle]*rfsEntry
	nextVer uint32
	max     int
}

type rfsEntry struct {
	version uint32
	prev    uint32
	// opens counts live opens per client; a client with any count may
	// hold cached blocks and is an invalidation target.
	opens map[core.ClientID]int
	// cached marks clients that may retain cached blocks from a past
	// open (cache survives close; invalidation must reach them too
	// while the entry lives).
	cached map[core.ClientID]bool
	stamp  uint64
}

func newRFSTable(max int) *rfsTable {
	if max <= 0 {
		max = 1000
	}
	return &rfsTable{entries: make(map[proto.Handle]*rfsEntry), max: max}
}

func (t *rfsTable) get(h proto.Handle) *rfsEntry {
	e, ok := t.entries[h]
	if !ok {
		if len(t.entries) >= t.max {
			// Evict the entry with no opens that is oldest; a
			// reopen after eviction merely refetches.
			var victim proto.Handle
			var best *rfsEntry
			for vh, ve := range t.entries {
				if len(ve.opens) > 0 {
					continue
				}
				if best == nil || ve.stamp < best.stamp {
					victim, best = vh, ve
				}
			}
			if best != nil {
				delete(t.entries, victim)
			}
		}
		e = &rfsEntry{
			opens:  make(map[core.ClientID]int),
			cached: make(map[core.ClientID]bool),
		}
		t.entries[h] = e
	}
	return e
}

// NewRFS creates an RFS server on ep.
func NewRFS(k *sim.Kernel, ep *rpc.Endpoint, media *localfs.Media, cfg Config) *RFSServer {
	s := &RFSServer{
		Base:  newBase(k, ep, media, cfg),
		tab:   newRFSTable(0),
		cbSem: sim.NewSemaphore(k, maxInt(1, ep.Workers()-1)),
	}
	s.onRemoved = func(h proto.Handle) { delete(s.tab.entries, h) }
	ep.Register(proto.ProgNFS, s.serve)
	return s
}

func (s *RFSServer) serve(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
	s.recordServe(p, from, proc)
	switch proc {
	case proto.ProcOpen:
		return s.serveOpen(p, from, args), rpc.StatusOK
	case proto.ProcClose:
		return s.serveClose(p, from, args), rpc.StatusOK
	case proto.ProcWrite:
		// The defining RFS move: invalidate the other caching
		// clients *when the write occurs*, then execute it.
		s.invalidateForWrite(p, from, args)
	case proto.ProcRead:
		// A read after invalidation refills the client's cache; track
		// it as an invalidation target again.
		h := proto.DecodeReadArgs(xdr.NewDecoder(args)).Handle
		if e, ok := s.tab.entries[h]; ok {
			e.cached[core.ClientID(from)] = true
		}
	}
	body, st, handled := s.serveCommon(p, proc, args)
	if !handled {
		return nil, rpc.StatusProcUnavail
	}
	return body, st
}

func (s *RFSServer) serveOpen(p *sim.Proc, from simnet.Addr, args []byte) []byte {
	a := proto.DecodeOpenArgs(xdr.NewDecoder(args))
	s.chargeCPU(p, 0)
	s.account(proto.ProcOpen)
	attr, st := s.handle(a.Handle)
	if st != proto.OK {
		return proto.Marshal(&proto.OpenReply{Status: st})
	}
	e := s.tab.get(a.Handle)
	s.tab.nextVer++ // stamp source (cheap monotonic clock)
	e.stamp = uint64(s.tab.nextVer)
	if e.version == 0 {
		s.tab.nextVer++
		e.version = s.tab.nextVer
	}
	if a.WriteMode {
		s.tab.nextVer++
		e.prev = e.version
		e.version = s.tab.nextVer
	}
	cid := core.ClientID(from)
	e.opens[cid]++
	e.cached[cid] = true
	// Every client may cache under RFS; writes are what invalidate.
	return proto.Marshal(&proto.OpenReply{
		Status:       proto.OK,
		CacheEnabled: true,
		Version:      e.version,
		PrevVersion:  e.prev,
		Attr:         s.fattr(attr),
	})
}

func (s *RFSServer) serveClose(p *sim.Proc, from simnet.Addr, args []byte) []byte {
	a := proto.DecodeCloseArgs(xdr.NewDecoder(args))
	s.chargeCPU(p, 0)
	s.account(proto.ProcClose)
	if e, ok := s.tab.entries[a.Handle]; ok {
		cid := core.ClientID(from)
		if e.opens[cid] > 0 {
			e.opens[cid]--
			if e.opens[cid] == 0 {
				delete(e.opens, cid)
			}
		}
		// The client may retain its cache across close (e.cached
		// stays set); version validation covers reopen after
		// eviction of the entry.
	}
	return proto.Marshal(&proto.StatusReply{Status: proto.OK})
}

// invalidateForWrite sends invalidate callbacks to every caching client
// other than the writer, before the write executes.
func (s *RFSServer) invalidateForWrite(p *sim.Proc, from simnet.Addr, args []byte) {
	h := proto.DecodeWriteArgs(xdr.NewDecoder(args)).Handle
	e, ok := s.tab.entries[h]
	if !ok {
		return
	}
	writer := core.ClientID(from)
	for cid := range e.cached {
		if cid == writer {
			continue
		}
		s.cbSem.Acquire(p)
		s.ops.Inc("callback")
		s.Tracer().Record("server", trace.Callback, "rfs invalidate -> %s %s", cid, h)
		_, err := s.ep.CallMsgEx(p, simnet.Addr(cid), proto.ProgCallback, 1, proto.CbProcCallback,
			&proto.CallbackArgs{Handle: h, Invalidate: true}, sim.Second, 2)
		s.cbSem.Release()
		if err != nil {
			// Dead client: it cannot read its stale cache anyway.
			delete(e.cached, cid)
			delete(e.opens, cid)
			continue
		}
		delete(e.cached, cid)
	}
}

// Table size, for tests.
func (s *RFSServer) TableLen() int { return len(s.tab.entries) }

// Readers reports the clients currently tracked as possibly caching h.
func (s *RFSServer) Readers(h proto.Handle) int {
	if e, ok := s.tab.entries[h]; ok {
		return len(e.cached)
	}
	return 0
}
