package server

import (
	"sort"

	"spritelynfs/internal/core"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/xdr"
)

// Primary/backup replication for a sharded SNFS server.
//
// The primary and its backup share one Store (the durable bytes survive a
// primary crash the way a dual-ported disk would), so what the stream
// carries is exactly the volatile state a failover must not lose: every
// state-table transition, every write/commit charged to the primary's
// media (so the backup's cache and disk mirror the primary's warmth and
// durability work), and the duplicate-cache entry of every non-idempotent
// reply (so a retransmission that crosses the failover is answered from
// the cache instead of re-executed).
//
// The stream is asynchronous — a bounded queue drained by a sender
// process — with ProcReplSync as the explicit barrier the view-change
// protocol uses before a primary acknowledges a view. If the queue ever
// overflows, the dropped records consume sequence numbers, the backup
// sees the gap, and its pings report unsynced: the viewservice will then
// refuse to promote it, which is the safe failure.

const (
	// replQueueMax bounds the primary's outgoing record queue.
	replQueueMax = 8192
	// replBatchMax bounds records per ProcReplStream call.
	replBatchMax = 64
)

// Replicator is the primary side of the stream.
type Replicator struct {
	k        *sim.Kernel
	ep       *rpc.Endpoint
	backup   simnet.Addr
	shard    uint32
	crashed  func() bool
	epoch    func() uint64
	verifier func() uint64
	// onDemoted fires when the backup answers ErrDemoted: a newer map
	// names it primary, and this server must stop streaming and install
	// the map (self-demotion closes the split-brain window left by a
	// primary partitioned from the viewservice but not its clients).
	onDemoted func(m proto.ShardMap)

	q       *sim.Queue[proto.ReplRecord]
	lastSeq uint64 // highest sequence number assigned
	acked   uint64 // highest sequence number the backup confirmed
	gap     bool   // records were dropped; the backup can no longer sync
	stopped bool   // demoted: discard everything
	dropped int64
	batches int64
}

// StartReplication begins streaming this server's consistency state,
// charged writes, and non-idempotent reply cache to a backup. onDemoted,
// if non-nil, additionally observes a self-demotion (the newer map is
// always installed first).
func (s *SNFSServer) StartReplication(backup simnet.Addr, onDemoted func(proto.ShardMap)) *Replicator {
	r := &Replicator{
		k:        s.k,
		ep:       s.ep,
		backup:   backup,
		shard:    s.shardID,
		crashed:  func() bool { return s.crashed },
		epoch:    func() uint64 { return s.epoch },
		verifier: func() uint64 { return s.verifier },
		q:        sim.NewQueue[proto.ReplRecord](s.k),
	}
	r.onDemoted = func(m proto.ShardMap) {
		s.SetShardMap(m, s.shardID)
		s.Tracer().Record("server", trace.Crash, "demoted by %s (map v%d)", backup, m.Version)
		s.flight.Recordf(string(s.ep.Addr()), "crash", 0, "demoted: map v%d names a new primary", m.Version)
		if onDemoted != nil {
			onDemoted(m)
		}
	}
	s.repl = r
	s.ep.OnServed = r.noteServed
	s.k.Go(string(s.ep.Addr())+"/repl-sender", r.sender)
	return r
}

// Replicator returns the attached replication stream (nil when this
// server has no backup).
func (b *Base) Replicator() *Replicator { return b.repl }

// enqueue assigns the next sequence number and queues rec. A full queue
// drops the record but still consumes its sequence number, so the backup
// detects the hole and reports itself unsynced.
func (r *Replicator) enqueue(rec proto.ReplRecord) {
	if r.stopped || (r.crashed != nil && r.crashed()) {
		return
	}
	r.lastSeq++
	if r.q.Len() >= replQueueMax {
		r.dropped++
		r.gap = true
		return
	}
	rec.Seq = r.lastSeq
	r.q.Put(rec)
}

// noteTransition queues a state-table transition for the backup's mirror.
func (r *Replicator) noteTransition(ev core.TransitionEvent) {
	rec := proto.ReplRecord{
		Kind:       proto.ReplTransition,
		Event:      ev.Event,
		Handle:     ev.Handle,
		Client:     string(ev.Client),
		To:         uint32(ev.To),
		Version:    ev.Version,
		LastWriter: string(ev.LastWriter),
		HasDirty:   ev.HasDirty,
		Dropped:    ev.Dropped,
	}
	switch ev.Event {
	case "open", "close":
		// Project the open mode into a count delta.
		if ev.Write {
			rec.Writers = 1
		} else {
			rec.Readers = 1
		}
	case "recover":
		rec.Readers, rec.Writers = ev.Readers, ev.Writers
	}
	r.enqueue(rec)
}

// noteWrite queues one charged write.
func (r *Replicator) noteWrite(ino uint64, off int64, n int, unstable bool) {
	r.enqueue(proto.ReplRecord{
		Kind: proto.ReplWrite, Ino: ino, Offset: off, Length: uint32(n), Unstable: unstable,
	})
}

// noteCommit queues one COMMIT.
func (r *Replicator) noteCommit(ino uint64) {
	r.enqueue(proto.ReplRecord{Kind: proto.ReplCommit, Ino: ino})
}

// noteServed is the endpoint's OnServed hook: replicate the dupcache
// entry of every non-idempotent reply, so a retransmission arriving after
// failover is answered from the backup's cache instead of re-executed.
func (r *Replicator) noteServed(from simnet.Addr, xid, prog, vers, proc uint32, wire []byte) {
	if prog != proto.ProgNFS || !nonIdempotent(proc) {
		return
	}
	r.enqueue(proto.ReplRecord{
		Kind: proto.ReplDup, From: string(from), Xid: xid, Wire: wire,
	})
}

// nonIdempotent reports whether re-executing proc can change the outcome
// (the procedures whose dupcache entries are worth replicating).
func nonIdempotent(proc uint32) bool {
	switch proc {
	case proto.ProcCreate, proto.ProcRemove, proto.ProcRename, proto.ProcMkdir,
		proto.ProcRmdir, proto.ProcLink, proto.ProcSymlink, proto.ProcSetattr,
		proto.ProcOpen, proto.ProcClose, proto.ProcLock, proto.ProcUnlock:
		return true
	}
	return false
}

// Status reports replication health for the viewservice ping: synced
// means the backup has confirmed every assigned sequence number and no
// record was ever dropped. Lag is the unconfirmed record count.
func (r *Replicator) Status() (synced bool, lag uint32) {
	pending := uint32(r.lastSeq - r.acked)
	return !r.gap && !r.stopped && pending == 0, pending
}

// Lag returns the number of records assigned but not yet confirmed.
func (r *Replicator) Lag() int { return int(r.lastSeq - r.acked) }

// Dropped returns how many records overflowed the queue.
func (r *Replicator) Dropped() int64 { return r.dropped }

// Stopped reports whether the stream has shut down (self-demotion).
func (r *Replicator) Stopped() bool { return r.stopped }

// Stop shuts the stream down for good: demotion, or the viewservice
// declaring the backup dead. Queued records are abandoned.
func (r *Replicator) Stop() { r.stopped = true }

// Sync is the barrier: it waits until the backup confirms every record
// assigned so far, then verifies with an explicit ProcReplSync round
// trip. It returns false if the stream has a gap, was demoted, or the
// backup stays unreachable.
func (r *Replicator) Sync(p *sim.Proc) bool {
	target := r.lastSeq
	for i := 0; i < 400; i++ {
		if r.gap || r.stopped {
			return false
		}
		if r.acked >= target {
			args := &proto.ReplSyncArgs{Shard: r.shard, Seq: target}
			body, err := r.ep.CallMsgEx(p, r.backup, proto.ProgNFS, proto.VersNFS, proto.ProcReplSync,
				args, 200*sim.Millisecond, 1)
			if err == nil {
				rep := proto.DecodeReplSyncReply(xdr.NewDecoder(body))
				if rep.Status == proto.OK && rep.Synced {
					return true
				}
				if rep.Status == proto.ErrDemoted {
					return false
				}
			}
		}
		p.Sleep(5 * sim.Millisecond)
	}
	return false
}

// sender drains the queue in batches. Send failures retry the same batch
// (same sequence numbers — the backup deduplicates), pausing while the
// host is crashed: a dead machine transmits nothing.
func (r *Replicator) sender(p *sim.Proc) {
	for {
		first := r.q.Get(p)
		batch := []proto.ReplRecord{first}
		for len(batch) < replBatchMax {
			rec, ok := r.q.TryGet()
			if !ok {
				break
			}
			batch = append(batch, rec)
		}
		for !r.stopped {
			if r.crashed != nil && r.crashed() {
				p.Sleep(100 * sim.Millisecond)
				continue
			}
			if r.send(p, batch) {
				break
			}
			p.Sleep(50 * sim.Millisecond)
		}
	}
}

// send transmits one batch; true means the batch is settled (acked, or
// the stream is over).
func (r *Replicator) send(p *sim.Proc, batch []proto.ReplRecord) bool {
	args := &proto.ReplStreamArgs{
		Shard: r.shard, Epoch: r.epoch(), Verifier: r.verifier(), Records: batch,
	}
	body, err := r.ep.CallMsgEx(p, r.backup, proto.ProgNFS, proto.VersNFS, proto.ProcReplStream,
		args, 500*sim.Millisecond, 1)
	if err != nil {
		return false
	}
	rep := proto.DecodeReplStreamReply(xdr.NewDecoder(body))
	switch rep.Status {
	case proto.OK:
		if rep.Applied > r.acked {
			r.acked = rep.Applied
		}
		r.batches++
		return true
	case proto.ErrDemoted:
		r.stopped = true
		if r.onDemoted != nil {
			r.onDemoted(rep.Map)
		}
		return true
	}
	return false
}

// mirrorClient is one client's open counts within a mirrored entry.
type mirrorClient struct {
	readers, writers uint32
}

// mirrorEntry is the backup's image of one state-table entry, maintained
// event-sourced from the transition stream. It holds exactly what Promote
// needs to replay through Table.Recover — the same reconstruction a
// rebooted server performs from client reopens (§2.4), driven from the
// mirror instead of the network.
type mirrorEntry struct {
	state      core.FileState
	version    uint32
	lastWriter string
	clients    map[string]*mirrorClient
}

func (e *mirrorEntry) client(c string) *mirrorClient {
	cl, ok := e.clients[c]
	if !ok {
		cl = &mirrorClient{}
		e.clients[c] = cl
	}
	return cl
}

// serveReplStream applies one batch of the primary's stream. If this
// server has itself become the shard's primary (per its own, newer map),
// it refuses with ErrDemoted and returns the map, so a partitioned old
// primary self-demotes instead of split-braining.
func (s *SNFSServer) serveReplStream(p *sim.Proc, from simnet.Addr, args []byte) []byte {
	a := proto.DecodeReplStreamArgs(xdr.NewDecoder(args))
	s.chargeCPU(p, 0)
	s.account(proto.ProcReplStream)
	if s.isOwner() {
		return proto.Marshal(&proto.ReplStreamReply{
			Status: proto.ErrDemoted, Applied: s.replApplied, Map: s.shardMap,
		})
	}
	if a.Epoch > s.primEpoch {
		s.primEpoch = a.Epoch
	}
	if a.Verifier > s.primVerifier {
		s.primVerifier = a.Verifier
	}
	var stableInos []uint64
	seen := make(map[uint64]bool)
	for _, rec := range a.Records {
		if rec.Seq <= s.replApplied {
			continue // batch retransmission: already applied
		}
		if rec.Seq != s.replApplied+1 {
			// The primary overflowed its queue: records are gone for
			// good. Remember the hole — pings report unsynced and the
			// viewservice will not promote this backup.
			s.replGap = true
		}
		s.replApplied = rec.Seq
		switch rec.Kind {
		case proto.ReplTransition:
			s.applyMirror(rec)
		case proto.ReplWrite:
			// Land the bytes dirty in this cache (warmth and dirty
			// state); stable writes are gathered to disk at batch end,
			// mirroring the durability work the primary already did.
			s.media.ChargeWriteUnstable(p.Now(), rec.Ino, rec.Offset, int(rec.Length))
			if !rec.Unstable && !seen[rec.Ino] {
				seen[rec.Ino] = true
				stableInos = append(stableInos, rec.Ino)
			}
		case proto.ReplCommit:
			s.media.CommitFile(p, rec.Ino)
		case proto.ReplDup:
			s.ep.SeedDup(simnet.Addr(rec.From), rec.Xid, rec.Wire)
		}
	}
	for _, ino := range stableInos {
		s.media.CommitFile(p, ino)
	}
	return proto.Marshal(&proto.ReplStreamReply{Status: proto.OK, Applied: s.replApplied})
}

// serveReplSync answers the primary's barrier probe.
func (s *SNFSServer) serveReplSync(p *sim.Proc, from simnet.Addr, args []byte) []byte {
	a := proto.DecodeReplSyncArgs(xdr.NewDecoder(args))
	s.chargeCPU(p, 0)
	s.account(proto.ProcReplSync)
	if s.isOwner() {
		return proto.Marshal(&proto.ReplSyncReply{Status: proto.ErrDemoted, Applied: s.replApplied})
	}
	return proto.Marshal(&proto.ReplSyncReply{
		Status: proto.OK, Applied: s.replApplied,
		Synced: !s.replGap && s.replApplied >= a.Seq,
	})
}

// applyMirror folds one transition record into the mirror.
func (s *SNFSServer) applyMirror(rec proto.ReplRecord) {
	switch rec.Event {
	case "drop":
		// The file was removed (or truncated in place): its entry and
		// any mirrored dirty state go with it.
		delete(s.mirror, rec.Handle)
		s.media.Cancel(rec.Handle.Ino)
		return
	case "reclaim":
		if rec.Dropped {
			delete(s.mirror, rec.Handle)
		} else if ent, ok := s.mirror[rec.Handle]; ok {
			ent.state = core.FileState(rec.To)
			ent.lastWriter = ""
		}
		return
	}
	ent, ok := s.mirror[rec.Handle]
	if !ok {
		ent = &mirrorEntry{clients: make(map[string]*mirrorClient)}
		s.mirror[rec.Handle] = ent
	}
	ent.state = core.FileState(rec.To)
	if rec.Version > ent.version {
		ent.version = rec.Version
	}
	ent.lastWriter = rec.LastWriter
	switch rec.Event {
	case "open":
		cl := ent.client(rec.Client)
		cl.readers += rec.Readers
		cl.writers += rec.Writers
	case "close":
		if cl, ok := ent.clients[rec.Client]; ok {
			if rec.Readers > 0 && cl.readers > 0 {
				cl.readers--
			}
			if rec.Writers > 0 && cl.writers > 0 {
				cl.writers--
			}
			if cl.readers == 0 && cl.writers == 0 {
				delete(ent.clients, rec.Client)
			}
		}
	case "recover":
		if rec.Readers == 0 && rec.Writers == 0 {
			delete(ent.clients, rec.Client)
		} else {
			ent.clients[rec.Client] = &mirrorClient{readers: rec.Readers, writers: rec.Writers}
		}
	case "client-dead":
		delete(ent.clients, rec.Client)
	}
	if ent.state == core.StateClosed && len(ent.clients) == 0 && ent.lastWriter == "" {
		delete(s.mirror, rec.Handle) // fully quiescent: nothing to replay
	}
}

// Promote turns this backup into the shard's primary under map m
// (published by the viewservice as view viewNum). It is a reboot in every
// protocol-visible way — the audit shadow resets, the epoch and write
// verifier advance past both incarnations' history so keepalive clients
// re-register and unstable-write clients redrive — except that the state
// table is rebuilt immediately from the mirror instead of waiting out a
// grace period of client reopens.
func (s *SNFSServer) Promote(p *sim.Proc, m proto.ShardMap, viewNum uint64) {
	if s.crashed || s.promoted {
		return
	}
	s.promoted = true
	if s.auditor != nil {
		// Same contract as a reboot: the shadow resets and the recover
		// edges replayed below are the legal reconstruction path.
		s.auditor.ServerRebooted()
	}
	if s.primEpoch > s.epoch {
		s.epoch = s.primEpoch
	}
	s.epoch++
	if s.primVerifier > s.verifier {
		s.verifier = s.primVerifier
	}
	s.verifier++
	// Mirrored-unstable data dies exactly like a rebooting server's
	// buffer cache; the bumped verifier makes the writers redrive it.
	s.media.DropDirty()
	s.SetShardMap(m, s.shardID)

	handles := make([]proto.Handle, 0, len(s.mirror))
	for h := range s.mirror {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool {
		if handles[i].Ino != handles[j].Ino {
			return handles[i].Ino < handles[j].Ino
		}
		return handles[i].Gen < handles[j].Gen
	})
	for _, h := range handles {
		ent := s.mirror[h]
		if ent.lastWriter != "" {
			// The dirty registration must land first: Recover only
			// adopts a last writer from a closed, dirty reopen.
			s.table.Recover(h, core.ClientID(ent.lastWriter), 0, 0, ent.version, true)
		}
		names := make([]string, 0, len(ent.clients))
		for c := range ent.clients {
			names = append(names, c)
		}
		sort.Strings(names)
		for _, c := range names {
			cl := ent.clients[c]
			if cl.readers == 0 && cl.writers == 0 {
				continue
			}
			s.table.Recover(h, core.ClientID(c), cl.readers, cl.writers, ent.version, false)
		}
	}
	// Reissue invalidations for write-shared files: every sharer must be
	// running uncached, and a client that missed the old primary's
	// callback mid-crash learns it here.
	reissued := 0
	for _, e := range s.table.Snapshot() {
		if e.State != core.StateWriteShared {
			continue
		}
		clients := append([]core.ClientSnapshot(nil), e.Clients...)
		sort.Slice(clients, func(i, j int) bool { return clients[i].Client < clients[j].Client })
		for _, c := range clients {
			cb := core.Callback{Client: c.Client, Handle: e.Handle, Invalidate: true}
			if err := s.deliverCallback(p, cb); err != nil {
				s.clientDead(cb.Client)
			}
			reissued++
		}
	}
	s.promotedAt = s.k.Now()
	s.Tracer().Record("server", trace.Crash,
		"promote to primary (view %d, epoch %d, verifier %d, %d entries rebuilt, %d callbacks reissued)",
		viewNum, s.epoch, s.verifier, len(handles), reissued)
	s.flight.Recordf(string(s.ep.Addr()), "crash", 0,
		"promote to primary (view %d, epoch %d, verifier %d, %d entries rebuilt, %d callbacks reissued)",
		viewNum, s.epoch, s.verifier, len(handles), reissued)
}

// Promoted reports whether this server took over its shard, and when.
func (s *SNFSServer) Promoted() (sim.Time, bool) { return s.promotedAt, s.promoted }

// HealedAt returns when the first client data RPC after promotion was
// served (the client-visible end of the failover), if any arrived yet.
func (s *SNFSServer) HealedAt() (sim.Time, bool) { return s.healedAt, s.healed }

// MirrorLen reports the number of mirrored entries (backup role).
func (s *SNFSServer) MirrorLen() int { return len(s.mirror) }

// ReplApplied returns the highest replication sequence number applied.
func (s *SNFSServer) ReplApplied() uint64 { return s.replApplied }

// ReplSynced reports whether the mirrored stream has been gap-free.
func (s *SNFSServer) ReplSynced() bool { return !s.replGap }

// noteHealed stamps the first post-promotion data RPC.
func (s *SNFSServer) noteHealed(from simnet.Addr, proc uint32) {
	if !s.promoted || s.healed {
		return
	}
	switch proc {
	case proto.ProcNull, proto.ProcServerInfo, proto.ProcDumpState, proto.ProcAudit,
		proto.ProcMetrics, proto.ProcShardMap, proto.ProcMountRoot:
		return // control plane: not a client healing onto this primary
	}
	s.healed = true
	s.healedAt = s.k.Now()
	s.flight.Recordf(string(s.ep.Addr()), "crash", 0,
		"healed: first %s from %s after promotion", proto.ProcName(proto.ProgNFS, proc), from)
}
