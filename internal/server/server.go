// Package server implements the file servers: the stateless NFS server
// (synchronous writes, no per-client state, trivial restart) and the
// Spritely NFS server (the NFS file operations plus the state-table
// manager driving open/close/callback consistency, entry reclamation,
// hybrid NFS coexistence, and crash recovery).
//
// Both servers translate RPC requests into operations on a localfs
// store/media pair — the role the Ultrix GFS + local file system played
// under the paper's NFS service code (§4.1) — and charge a simulated
// server CPU for every call, which is what the utilization plots of
// Figures 5-1/5-2 measure.
package server

import (
	"strings"

	"spritelynfs/internal/localfs"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/span"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/tsdb"
	"spritelynfs/internal/xdr"
)

// Config holds server cost and sizing parameters.
type Config struct {
	// FSID is the exported file system's identifier in handles.
	FSID uint32
	// CPUPerOp is the base CPU cost of servicing one RPC.
	CPUPerOp sim.Duration
	// CPUPerKB is the additional CPU cost per kilobyte of file data
	// moved (reads and writes).
	CPUPerKB sim.Duration
}

func (c *Config) fill() {
	if c.CPUPerOp == 0 {
		c.CPUPerOp = 2 * sim.Millisecond
	}
	if c.CPUPerKB == 0 {
		c.CPUPerKB = 250 * sim.Microsecond
	}
}

// Series is the set of per-server time series behind Figures 5-1/5-2.
type Series struct {
	Calls  *stats.TimeSeries // all RPC arrivals
	Reads  *stats.TimeSeries // read arrivals
	Writes *stats.TimeSeries // write arrivals
	CPU    *stats.TimeSeries // CPU busy-time per bucket (seconds)
}

// Base is the machinery shared by the NFS and SNFS servers.
type Base struct {
	k     *sim.Kernel
	ep    *rpc.Endpoint
	media *localfs.Media
	cpu   *sim.Resource
	cfg   Config
	ops   *stats.Ops
	ser   *Series
	// onRemoved, when set, observes file removals (the SNFS server
	// drops the file's state entry).
	onRemoved func(proto.Handle)
	tracer    *trace.Tracer
	metrics   *metrics.Registry
	// flight is the black-box recorder: recent RPC/state/callback events
	// kept in a bounded ring for post-mortem dumps. Nil (off) by default.
	flight *tsdb.FlightRecorder
	// spans, when set, splits each handler's CPU charge into queue-wait
	// and execution spans of the serving call's trace. Nil (off) by
	// default.
	spans *span.Recorder
	// shardMap and shardID make the server a member of a sharded
	// cluster: namespace operations at the export root that name an
	// entry owned by another shard are refused with ErrNotHome.
	shardMap proto.ShardMap
	shardID  uint32
	// repl, when set, streams transitions/writes/commits/dup entries to
	// this shard's backup (see repl.go). Nil on standalone servers,
	// backups, and primaries without a backup.
	repl *Replicator

	// verifier is the write verifier returned on WRITE and COMMIT: it
	// changes exactly when the server reboots (it is the crash epoch),
	// so a client holding unstable-write acks from a previous
	// incarnation sees the mismatch at COMMIT and redrives the data.
	verifier uint64
	// unstable-pipeline counters.
	unstableWrites  int64
	commits         int64
	committedBlocks int64
}

// SetShardMap declares this server shard `id` of a cluster partitioned
// by m. The server then answers ProcShardMap with m and refuses
// root-level namespace operations on names homed elsewhere (ErrNotHome),
// so a client with a stale map can never silently operate on the wrong
// shard. Maps are only replaced by newer versions.
func (b *Base) SetShardMap(m proto.ShardMap, id uint32) {
	if !b.shardMap.IsZero() && m.Version <= b.shardMap.Version {
		return
	}
	b.shardMap = m
	b.shardID = id
}

// ShardMap returns the server's current shard map (zero when standalone).
func (b *Base) ShardMap() proto.ShardMap { return b.shardMap }

// ShardID returns the server's shard id within the cluster.
func (b *Base) ShardID() uint32 { return b.shardID }

// SetTracer attaches a trace recorder to the server (and, for SNFS, to
// its state table via EnableTrace on the harness world).
func (b *Base) SetTracer(t *trace.Tracer) { b.tracer = t }

// Tracer returns the attached tracer (possibly nil; nil is recordable).
func (b *Base) Tracer() *trace.Tracer { return b.tracer }

// SetFlight attaches a flight recorder: every served RPC, state-table
// transition, callback, and crash/reboot leaves a record in its ring.
func (b *Base) SetFlight(r *tsdb.FlightRecorder) { b.flight = r }

// SetSpans attaches a span recorder: each handler's CPU charge splits
// into cpu-queue/cpu spans of the serving call's trace (the RPC endpoint
// and disk carry their own recorder attachments).
func (b *Base) SetSpans(r *span.Recorder) { b.spans = r }

// Spans returns the attached span recorder (possibly nil; nil records
// nothing).
func (b *Base) Spans() *span.Recorder { return b.spans }

// Flight returns the attached flight recorder (possibly nil; nil is
// recordable).
func (b *Base) Flight() *tsdb.FlightRecorder { return b.flight }

// recordServe notes one incoming RPC in the flight recorder. The detail
// is formatted only when a recorder is attached.
func (b *Base) recordServe(p *sim.Proc, from simnet.Addr, proc uint32) {
	if b.flight == nil {
		return
	}
	b.flight.Record(string(b.ep.Addr()), "rpc", p.Op(),
		proto.ProcName(proto.ProgNFS, proc)+" from "+string(from))
}

func newBase(k *sim.Kernel, ep *rpc.Endpoint, media *localfs.Media, cfg Config) *Base {
	cfg.fill()
	return &Base{
		k:        k,
		ep:       ep,
		media:    media,
		cpu:      sim.NewResource(k, string(ep.Addr())+"/cpu"),
		cfg:      cfg,
		ops:      stats.NewOps(),
		verifier: 1,
	}
}

// Verifier returns the current write verifier (the crash epoch).
func (b *Base) Verifier() uint64 { return b.verifier }

// EnableMetrics attaches a metrics registry: the endpoint records
// per-procedure serve latency, and the server exports CPU busy time and
// disk utilization gauges. The SNFS server adds state-table gauges on top
// (see SNFSServer.EnableMetrics).
func (b *Base) EnableMetrics(r *metrics.Registry) {
	b.metrics = r
	b.ep.SetMetrics(r)
	host := string(b.ep.Addr())
	r.GaugeFunc(metrics.Label("snfs_server_cpu_busy_seconds", "host", host),
		func() float64 { return b.cpu.BusyTime().Seconds() })
	r.GaugeFunc(metrics.Label("snfs_server_cpu_utilization", "host", host),
		func() float64 { return b.cpu.Utilization() })
	r.GaugeFunc(metrics.Label("snfs_server_disk_utilization", "host", host),
		func() float64 { return b.media.Disk().Utilization() })
	// Cumulative arm busy time: the tsdb sampler differentiates a
	// _seconds gauge into a windowed rate, which for this one reads
	// directly as disk-busy fraction over the window.
	r.GaugeFunc(metrics.Label("snfs_server_disk_busy_seconds", "host", host),
		func() float64 { return b.media.Disk().BusyTime().Seconds() })
	r.GaugeFunc(metrics.Label("snfs_server_disk_queue_delay_seconds", "host", host),
		func() float64 {
			ds := b.media.Disk().Stats()
			return (ds.QueueDelay + ds.QueueDelayAsync).Seconds()
		})
	// Write-gathering pipeline: how many block writes each arm operation
	// carries (1.0 = no gathering), plus the raw unstable/commit counts.
	r.GaugeFunc(metrics.Label("snfs_server_disk_gather_ratio", "host", host),
		func() float64 { return b.media.Sched().Stats().GatherRatio() })
	r.GaugeFunc(metrics.Label("snfs_server_disk_gather_merged_total", "host", host),
		func() float64 { return float64(b.media.Sched().Stats().Merged) })
	r.GaugeFunc(metrics.Label("snfs_server_disk_gather_ops_total", "host", host),
		func() float64 { return float64(b.media.Sched().Stats().Ops) })
	r.GaugeFunc(metrics.Label("snfs_server_unstable_writes_total", "host", host),
		func() float64 { return float64(b.unstableWrites) })
	r.GaugeFunc(metrics.Label("snfs_server_commits_total", "host", host),
		func() float64 { return float64(b.commits) })
	r.GaugeFunc(metrics.Label("snfs_server_committed_blocks_total", "host", host),
		func() float64 { return float64(b.committedBlocks) })
	r.Help("snfs_server_cpu_busy_seconds", "Cumulative server CPU busy time in seconds.")
	r.Help("snfs_server_cpu_utilization", "Server CPU busy fraction since start.")
	r.Help("snfs_server_disk_utilization", "Server disk arm busy fraction since start.")
	r.Help("snfs_server_disk_busy_seconds", "Cumulative server disk arm busy time in seconds.")
	r.Help("snfs_server_disk_queue_delay_seconds", "Cumulative time requests spent queued for the disk arm.")
	r.Help("snfs_server_disk_gather_ratio", "Block writes carried per arm operation (1.0 = no gathering).")
	r.Help("snfs_server_unstable_writes_total", "WRITE calls acknowledged unstable (not yet durable).")
	r.Help("snfs_server_commits_total", "COMMIT calls served.")
	r.Help("snfs_server_committed_blocks_total", "Blocks made durable by COMMIT.")
}

// Metrics returns the attached registry (possibly nil; nil is recordable).
func (b *Base) Metrics() *metrics.Registry { return b.metrics }

// Ops returns the server-side operation counters.
func (b *Base) Ops() *stats.Ops { return b.ops }

// CPU returns the server CPU resource (for utilization).
func (b *Base) CPU() *sim.Resource { return b.cpu }

// Disk returns the backing disk.
func (b *Base) Disk() interface{ Utilization() float64 } { return b.media.Disk() }

// Media returns the backing media layer.
func (b *Base) Media() *localfs.Media { return b.media }

// Endpoint returns the server's RPC endpoint.
func (b *Base) Endpoint() *rpc.Endpoint { return b.ep }

// EnableSeries starts recording the Figure 5-1/5-2 time series with the
// given bucket width.
func (b *Base) EnableSeries(bucket sim.Duration) *Series {
	b.ser = &Series{
		Calls:  stats.NewTimeSeries(bucket),
		Reads:  stats.NewTimeSeries(bucket),
		Writes: stats.NewTimeSeries(bucket),
		CPU:    stats.NewTimeSeries(bucket),
	}
	b.cpu.OnBusy = func(start, end sim.Time) {
		b.ser.CPU.AddInterval(start, end)
	}
	return b.ser
}

// Series returns the recording series, if enabled.
func (b *Base) Series() *Series { return b.ser }

// account records one serviced call for stats and series.
func (b *Base) account(proc uint32) {
	name := proto.ProcName(proto.ProgNFS, proc)
	b.ops.Inc(name)
	if b.ser != nil {
		now := b.k.Now()
		b.ser.Calls.Add(now, 1)
		switch proc {
		case proto.ProcRead:
			b.ser.Reads.Add(now, 1)
		case proto.ProcWrite:
			b.ser.Writes.Add(now, 1)
		}
	}
}

// chargeCPU occupies the server CPU for the call's compute cost.
func (b *Base) chargeCPU(p *sim.Proc, dataBytes int) {
	cost := b.cfg.CPUPerOp + sim.Duration(int64(b.cfg.CPUPerKB)*int64(dataBytes)/1024)
	t0 := b.k.Now()
	qd := b.cpu.Use(p, cost)
	if b.spans != nil {
		host := string(b.ep.Addr())
		b.spans.Add(p, host, span.CPUQueue, "cpu", t0, t0.Add(qd))
		b.spans.Add(p, host, span.CPU, "cpu", t0.Add(qd), b.k.Now())
	}
}

// handle validates an incoming handle against the store (stale handles
// are the NFS way of life).
func (b *Base) handle(h proto.Handle) (localfs.Attr, proto.Status) {
	if h.FSID != b.cfg.FSID {
		return localfs.Attr{}, proto.ErrStale
	}
	attr, err := b.media.Store().GetAttr(h.Ino)
	if err != nil {
		return localfs.Attr{}, proto.ErrStale
	}
	if attr.Gen != h.Gen {
		return localfs.Attr{}, proto.ErrStale
	}
	return attr, proto.OK
}

func (b *Base) fattr(a localfs.Attr) proto.Fattr {
	return proto.FattrFromAttr(a, b.media.Store().BlockSize())
}

// toHandle builds the wire handle for an attribute record.
func (b *Base) toHandle(a localfs.Attr) proto.Handle {
	return proto.Handle{FSID: b.cfg.FSID, Ino: a.Ino, Gen: a.Gen}
}

// RootHandle returns the handle of the export root (what mount would
// hand out).
func (b *Base) RootHandle() proto.Handle {
	attr, _ := b.media.Store().GetAttr(b.media.Store().Root())
	return b.toHandle(attr)
}

// dirName is one (directory handle, entry name) pair a namespace
// operation touches.
type dirName struct {
	dir  proto.Handle
	name string
}

// routeCheck is the shard route guard: when the server is part of a
// cluster, a namespace operation on the export root naming an entry
// homed on another shard is refused with ErrNotHome before it can touch
// the store. Only root-level names need checking — shard prefixes are
// single root components (proto.ShardMap), and anything deeper is
// reached through handles that exist only on the owning shard (a
// migrated subtree's old handles answer ErrStale, sending the client
// back through a guarded lookup).
func (b *Base) routeCheck(p *sim.Proc, proc uint32, args []byte) ([]byte, bool) {
	if b.shardMap.IsZero() {
		return nil, false
	}
	d := xdr.NewDecoder(args)
	var names []dirName
	switch proc {
	case proto.ProcLookup, proto.ProcRemove, proto.ProcRmdir:
		a := proto.DecodeDirOpArgs(d)
		names = []dirName{{a.Dir, a.Name}}
	case proto.ProcCreate, proto.ProcMkdir:
		a := proto.DecodeCreateArgs(d)
		names = []dirName{{a.Dir, a.Name}}
	case proto.ProcSymlink:
		a := proto.DecodeSymlinkArgs(d)
		names = []dirName{{a.Dir, a.Name}}
	case proto.ProcLink:
		a := proto.DecodeLinkArgs(d)
		names = []dirName{{a.ToDir, a.ToName}}
	case proto.ProcRename:
		a := proto.DecodeRenameArgs(d)
		names = []dirName{{a.SrcDir, a.SrcName}, {a.DstDir, a.DstName}}
	case proto.ProcLookupPath:
		a := proto.DecodeLookupPathArgs(d)
		if len(a.Names) == 0 {
			return nil, false
		}
		// Only the first component can be a root-level name; the rest
		// resolve under handles this shard already owns.
		names = []dirName{{a.Dir, a.Names[0]}}
	default:
		return nil, false
	}
	if d.Err() != nil {
		return nil, false // the real decode path reports the garbage
	}
	root := b.media.Store().Root()
	for _, nm := range names {
		if nm.dir.FSID != b.cfg.FSID || nm.dir.Ino != root {
			continue
		}
		if b.shardMap.Owner(nm.name) != b.shardID {
			b.chargeCPU(p, 0)
			b.account(proc)
			return proto.Marshal(notHomeReply(proc)), true
		}
	}
	return nil, false
}

// notHomeReply builds the proc's reply shape carrying ErrNotHome.
func notHomeReply(proc uint32) proto.Message {
	switch proc {
	case proto.ProcLookup, proto.ProcCreate, proto.ProcMkdir, proto.ProcSymlink:
		return &proto.HandleReply{Status: proto.ErrNotHome}
	case proto.ProcLookupPath:
		return &proto.LookupPathReply{Status: proto.ErrNotHome}
	case proto.ProcOpen, proto.ProcReopen:
		return &proto.OpenReply{Status: proto.ErrNotHome}
	default: // remove, rmdir, rename, link, and the status-first data procs
		return &proto.StatusReply{Status: proto.ErrNotHome}
	}
}

// isOwner reports whether the current map names this server as its
// shard's primary (standalone servers have no map and are trivially
// their own primary).
func (b *Base) isOwner() bool {
	return b.shardMap.IsZero() ||
		(int(b.shardID) < len(b.shardMap.Servers) &&
			b.shardMap.Servers[b.shardID] == string(b.ep.Addr()))
}

// ownerCheck is the demotion guard: when a newer map says another server
// owns this shard — this server is a backup, or a primary that has been
// failed over — every data-plane call is bounced with ErrNotHome so the
// caller refetches the map and heals onto the real primary. Control and
// replication procedures pass: they are how the map gets refetched and
// how the stream keeps flowing.
func (b *Base) ownerCheck(p *sim.Proc, proc uint32) ([]byte, bool) {
	if b.isOwner() {
		return nil, false
	}
	switch proc {
	case proto.ProcNull, proto.ProcServerInfo, proto.ProcDumpState, proto.ProcAudit,
		proto.ProcMetrics, proto.ProcShardMap, proto.ProcMountRoot,
		proto.ProcReplStream, proto.ProcReplSync:
		return nil, false
	}
	b.chargeCPU(p, 0)
	b.account(proc)
	return proto.Marshal(notHomeReply(proc)), true
}

// replWrite forwards one charged write to the backup, if replicating.
func (b *Base) replWrite(ino uint64, off int64, n int, unstable bool) {
	if b.repl != nil {
		b.repl.noteWrite(ino, off, n, unstable)
	}
}

// replCommit forwards one served COMMIT to the backup, if replicating.
func (b *Base) replCommit(ino uint64) {
	if b.repl != nil {
		b.repl.noteCommit(ino)
	}
}

// serveCommon executes the NFS file procedures shared by both servers.
// It reports handled=false for procedures outside the common set.
func (b *Base) serveCommon(p *sim.Proc, proc uint32, args []byte) (body []byte, st rpc.Status, handled bool) {
	d := xdr.NewDecoder(args)
	switch proc {
	case proto.ProcNull:
		b.chargeCPU(p, 0)
		b.account(proc)
		return nil, rpc.StatusOK, true

	case proto.ProcGetattr:
		a := proto.DecodeHandleArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		attr, st := b.handle(a.Handle)
		return proto.Marshal(&proto.AttrReply{Status: st, Attr: b.fattr(attr)}), rpc.StatusOK, true

	case proto.ProcSetattr:
		a := proto.DecodeSetattrArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		attr, st := b.handle(a.Handle)
		if st != proto.OK {
			return proto.Marshal(&proto.AttrReply{Status: st}), rpc.StatusOK, true
		}
		store := b.media.Store()
		var err error
		if a.SetSize {
			attr, err = store.Truncate(a.Handle.Ino, a.Size)
			if err == nil {
				b.media.ChargeMeta(p)
			}
		}
		if err == nil && a.SetMode {
			attr, err = store.SetMode(a.Handle.Ino, a.Mode)
		}
		return proto.Marshal(&proto.AttrReply{Status: proto.StatusFromErr(err), Attr: b.fattr(attr)}), rpc.StatusOK, true

	case proto.ProcLookup:
		a := proto.DecodeDirOpArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Dir); st != proto.OK {
			return proto.Marshal(&proto.HandleReply{Status: st}), rpc.StatusOK, true
		}
		attr, err := b.media.Store().Lookup(a.Dir.Ino, a.Name)
		if err != nil {
			return proto.Marshal(&proto.HandleReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		return proto.Marshal(&proto.HandleReply{
			Status: proto.OK, Handle: b.toHandle(attr), Attr: b.fattr(attr),
		}), rpc.StatusOK, true

	case proto.ProcRead:
		a := proto.DecodeReadArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, int(a.Count))
		b.account(proc)
		attr, st := b.handle(a.Handle)
		if st != proto.OK {
			return proto.Marshal(&proto.ReadReply{Status: st}), rpc.StatusOK, true
		}
		data, err := b.media.Store().ReadAt(a.Handle.Ino, a.Offset, int(a.Count))
		if err != nil {
			return proto.Marshal(&proto.ReadReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		if len(data) > 0 {
			b.media.ChargeRead(p, a.Handle.Ino, a.Offset, len(data))
		}
		return proto.Marshal(&proto.ReadReply{Status: proto.OK, Attr: b.fattr(attr), Data: data}), rpc.StatusOK, true

	case proto.ProcWrite:
		a := proto.DecodeWriteArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, len(a.Data))
		b.account(proc)
		if _, st := b.handle(a.Handle); st != proto.OK {
			return proto.Marshal(&proto.WriteReply{Status: st}), rpc.StatusOK, true
		}
		attr, err := b.media.Store().WriteAt(a.Handle.Ino, a.Offset, a.Data)
		if err != nil {
			return proto.Marshal(&proto.WriteReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		if a.Unstable {
			// NFSv3-style fast path: the data lands dirty in the
			// server buffer cache and the reply goes out with no disk
			// activity. Durability waits for a COMMIT (which gathers
			// the dirty blocks into merged arm operations) and is only
			// promised under the verifier carried here.
			b.unstableWrites++
			b.media.ChargeWriteUnstable(p.Now(), a.Handle.Ino, a.Offset, len(a.Data))
			b.replWrite(a.Handle.Ino, a.Offset, len(a.Data), true)
			return proto.Marshal(&proto.WriteReply{
				Status: proto.OK, Attr: b.fattr(attr), Committed: false, Verifier: b.verifier,
			}), rpc.StatusOK, true
		}
		// The defining NFS server property: data reaches stable
		// storage before the reply (§2.1).
		b.media.ChargeWriteSync(p, a.Handle.Ino, a.Offset, len(a.Data))
		b.replWrite(a.Handle.Ino, a.Offset, len(a.Data), false)
		return proto.Marshal(&proto.WriteReply{
			Status: proto.OK, Attr: b.fattr(attr), Committed: true, Verifier: b.verifier,
		}), rpc.StatusOK, true

	case proto.ProcCommit:
		a := proto.DecodeCommitArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Handle); st != proto.OK {
			return proto.Marshal(&proto.CommitReply{Status: st}), rpc.StatusOK, true
		}
		b.commits++
		b.committedBlocks += int64(b.media.CommitFile(p, a.Handle.Ino))
		b.replCommit(a.Handle.Ino)
		return proto.Marshal(&proto.CommitReply{Status: proto.OK, Verifier: b.verifier}), rpc.StatusOK, true

	case proto.ProcCreate:
		a := proto.DecodeCreateArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Dir); st != proto.OK {
			return proto.Marshal(&proto.HandleReply{Status: st}), rpc.StatusOK, true
		}
		attr, err := b.media.Store().Create(a.Dir.Ino, a.Name, a.Mode)
		if err != nil {
			return proto.Marshal(&proto.HandleReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		b.media.ChargeMeta(p)
		return proto.Marshal(&proto.HandleReply{
			Status: proto.OK, Handle: b.toHandle(attr), Attr: b.fattr(attr),
		}), rpc.StatusOK, true

	case proto.ProcRemove:
		a := proto.DecodeDirOpArgs(d)
		wantAttr := proto.DecodeWantAttr(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		reply := func(st proto.Status) []byte {
			if wantAttr {
				return proto.Marshal(b.wccReply(st, a.Dir))
			}
			return proto.Marshal(&proto.StatusReply{Status: st})
		}
		if _, st := b.handle(a.Dir); st != proto.OK {
			return reply(st), rpc.StatusOK, true
		}
		removed, err := b.media.Store().Remove(a.Dir.Ino, a.Name)
		if err == nil {
			b.media.ChargeMeta(p)
			if removed.Nlink <= 1 {
				// The last link died: the inode is gone, pending
				// writes are moot, and any consistency state with
				// it. (A hard-linked inode lives on under its
				// other names.)
				b.media.Cancel(removed.Ino)
				b.fileRemoved(b.toHandle(removed))
			}
		}
		return reply(proto.StatusFromErr(err)), rpc.StatusOK, true

	case proto.ProcRename:
		a := proto.DecodeRenameArgs(d)
		wantAttr := proto.DecodeWantAttr(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		reply := func(st proto.Status) []byte {
			if wantAttr {
				return proto.Marshal(b.wccReply(st, a.SrcDir, a.DstDir))
			}
			return proto.Marshal(&proto.StatusReply{Status: st})
		}
		if _, st := b.handle(a.SrcDir); st != proto.OK {
			return reply(st), rpc.StatusOK, true
		}
		if _, st := b.handle(a.DstDir); st != proto.OK {
			return reply(st), rpc.StatusOK, true
		}
		// If the destination exists it will be replaced; its state
		// entry (SNFS) must go.
		if old, err := b.media.Store().Lookup(a.DstDir.Ino, a.DstName); err == nil {
			defer func() {
				b.fileRemoved(b.toHandle(old))
			}()
		}
		err := b.media.Store().Rename(a.SrcDir.Ino, a.SrcName, a.DstDir.Ino, a.DstName)
		if err == nil {
			b.media.ChargeMeta(p)
		}
		return reply(proto.StatusFromErr(err)), rpc.StatusOK, true

	case proto.ProcMkdir:
		a := proto.DecodeCreateArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Dir); st != proto.OK {
			return proto.Marshal(&proto.HandleReply{Status: st}), rpc.StatusOK, true
		}
		attr, err := b.media.Store().Mkdir(a.Dir.Ino, a.Name, a.Mode)
		if err != nil {
			return proto.Marshal(&proto.HandleReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		b.media.ChargeMeta(p)
		return proto.Marshal(&proto.HandleReply{
			Status: proto.OK, Handle: b.toHandle(attr), Attr: b.fattr(attr),
		}), rpc.StatusOK, true

	case proto.ProcRmdir:
		a := proto.DecodeDirOpArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Dir); st != proto.OK {
			return proto.Marshal(&proto.StatusReply{Status: st}), rpc.StatusOK, true
		}
		err := b.media.Store().Rmdir(a.Dir.Ino, a.Name)
		if err == nil {
			b.media.ChargeMeta(p)
		}
		return proto.Marshal(&proto.StatusReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true

	case proto.ProcReaddir:
		a := proto.DecodeHandleArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Handle); st != proto.OK {
			return proto.Marshal(&proto.ReaddirReply{Status: st}), rpc.StatusOK, true
		}
		ents, err := b.media.Store().Readdir(a.Handle.Ino)
		if err != nil {
			return proto.Marshal(&proto.ReaddirReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		out := make([]proto.DirEntry, len(ents))
		for i, e := range ents {
			out[i] = proto.DirEntry{Name: e.Name, Fileid: e.Ino}
		}
		return proto.Marshal(&proto.ReaddirReply{Status: proto.OK, Entries: out}), rpc.StatusOK, true

	case proto.ProcLookupPath:
		a := proto.DecodeLookupPathArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		dattr, st := b.handle(a.Dir)
		if st != proto.OK {
			return proto.Marshal(&proto.LookupPathReply{Status: st}), rpc.StatusOK, true
		}
		// Walk as many components as the path allows, stopping early
		// at a symbolic link: expansion is the client's job (it knows
		// the link's directory for relative targets — Parent).
		store := b.media.Store()
		parent, cur, curAttr := a.Dir, a.Dir, dattr
		resolved := uint32(0)
		for _, name := range a.Names {
			next, err := store.Lookup(cur.Ino, name)
			if err != nil {
				return proto.Marshal(&proto.LookupPathReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
			}
			parent, cur, curAttr = cur, b.toHandle(next), next
			resolved++
			if next.Type == localfs.TypeSymlink {
				break
			}
		}
		return proto.Marshal(&proto.LookupPathReply{
			Status: proto.OK, Resolved: resolved,
			Handle: cur, Parent: parent, Attr: b.fattr(curAttr),
		}), rpc.StatusOK, true

	case proto.ProcReaddirAttrs:
		a := proto.DecodeHandleArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Handle); st != proto.OK {
			return proto.Marshal(&proto.ReaddirAttrsReply{Status: st}), rpc.StatusOK, true
		}
		ents, err := b.media.Store().Readdir(a.Handle.Ino)
		if err != nil {
			return proto.Marshal(&proto.ReaddirAttrsReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		out := make([]proto.DirEntryAttrs, 0, len(ents))
		for _, e := range ents {
			ea, err := b.media.Store().GetAttr(e.Ino)
			if err != nil {
				continue
			}
			out = append(out, proto.DirEntryAttrs{
				Name: e.Name, Handle: b.toHandle(ea), Attr: b.fattr(ea),
			})
		}
		return proto.Marshal(&proto.ReaddirAttrsReply{Status: proto.OK, Entries: out}), rpc.StatusOK, true

	case proto.ProcReadlink:
		a := proto.DecodeHandleArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Handle); st != proto.OK {
			return proto.Marshal(&proto.ReadlinkReply{Status: st}), rpc.StatusOK, true
		}
		target, err := b.media.Store().Readlink(a.Handle.Ino)
		if err != nil {
			return proto.Marshal(&proto.ReadlinkReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		return proto.Marshal(&proto.ReadlinkReply{Status: proto.OK, Target: target}), rpc.StatusOK, true

	case proto.ProcLink:
		a := proto.DecodeLinkArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.From); st != proto.OK {
			return proto.Marshal(&proto.StatusReply{Status: st}), rpc.StatusOK, true
		}
		if _, st := b.handle(a.ToDir); st != proto.OK {
			return proto.Marshal(&proto.StatusReply{Status: st}), rpc.StatusOK, true
		}
		_, err := b.media.Store().Link(a.ToDir.Ino, a.ToName, a.From.Ino)
		if err == nil {
			b.media.ChargeMeta(p)
		}
		return proto.Marshal(&proto.StatusReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true

	case proto.ProcSymlink:
		a := proto.DecodeSymlinkArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Dir); st != proto.OK {
			return proto.Marshal(&proto.HandleReply{Status: st}), rpc.StatusOK, true
		}
		attr, err := b.media.Store().Symlink(a.Dir.Ino, a.Name, a.Target)
		if err != nil {
			return proto.Marshal(&proto.HandleReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		b.media.ChargeMeta(p)
		return proto.Marshal(&proto.HandleReply{
			Status: proto.OK, Handle: b.toHandle(attr), Attr: b.fattr(attr),
		}), rpc.StatusOK, true

	case proto.ProcMountRoot:
		b.chargeCPU(p, 0)
		b.account(proc)
		attr, err := b.media.Store().GetAttr(b.media.Store().Root())
		if err != nil {
			return proto.Marshal(&proto.HandleReply{Status: proto.StatusFromErr(err)}), rpc.StatusOK, true
		}
		return proto.Marshal(&proto.HandleReply{
			Status: proto.OK, Handle: b.toHandle(attr), Attr: b.fattr(attr),
		}), rpc.StatusOK, true

	case proto.ProcMetrics:
		b.chargeCPU(p, 0)
		b.account(proc)
		var sb strings.Builder
		b.metrics.WriteProm(&sb)
		return proto.Marshal(&proto.MetricsReply{Status: proto.OK, Text: sb.String()}), rpc.StatusOK, true

	case proto.ProcShardMap:
		b.chargeCPU(p, 0)
		b.account(proc)
		return proto.Marshal(&proto.ShardMapReply{Status: proto.OK, Map: b.shardMap}), rpc.StatusOK, true

	case proto.ProcStatfs:
		a := proto.DecodeHandleArgs(d)
		if d.Err() != nil {
			return nil, rpc.StatusGarbage, true
		}
		b.chargeCPU(p, 0)
		b.account(proc)
		if _, st := b.handle(a.Handle); st != proto.OK {
			return proto.Marshal(&proto.StatfsReply{Status: st}), rpc.StatusOK, true
		}
		st := b.media.Store()
		return proto.Marshal(&proto.StatfsReply{
			Status:    proto.OK,
			BlockSize: uint32(st.BlockSize()),
			Blocks:    1 << 20,
			BytesUsed: st.TotalBytes(),
		}), rpc.StatusOK, true
	}
	return nil, rpc.StatusProcUnavail, false
}

// wccReply builds a remove/rename/close reply carrying post-op
// attributes for the handles that still resolve (a removed inode simply
// contributes no record — the client keeps whatever view it had).
func (b *Base) wccReply(st proto.Status, hs ...proto.Handle) *proto.WccReply {
	r := &proto.WccReply{Status: st}
	for i, h := range hs {
		if i > 0 && h == hs[0] {
			continue // same-directory rename: one record is enough
		}
		if a, err := b.media.Store().GetAttr(h.Ino); err == nil && a.Gen == h.Gen {
			r.Wcc = append(r.Wcc, proto.WccData{Handle: h, Attr: b.fattr(a)})
		}
	}
	return r
}

// fileRemoved notifies the removal hook, if any.
func (b *Base) fileRemoved(h proto.Handle) {
	if b.onRemoved != nil {
		b.onRemoved(h)
	}
}

// NFSServer is the unmodified, stateless server: the common procedures
// and nothing else — the Spritely extensions come back PROC_UNAVAIL,
// which is precisely how a hybrid client detects a plain server (§6.1).
type NFSServer struct {
	*Base
	crashed bool
}

// NewNFS creates an NFS server servicing ProgNFS on ep.
func NewNFS(k *sim.Kernel, ep *rpc.Endpoint, media *localfs.Media, cfg Config) *NFSServer {
	s := &NFSServer{Base: newBase(k, ep, media, cfg)}
	ep.Register(proto.ProgNFS, s.serve)
	return s
}

// Crash detaches the server from the network. The stateless protocol has
// no table to lose, but the buffer cache is volatile: unstable writes
// that were never committed vanish with it.
func (s *NFSServer) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	lost := s.media.DropDirty()
	s.ep.Stop()
	s.tracer.Record("server", trace.Crash, "nfs server crash (verifier %d, %d uncommitted blocks lost)", s.verifier, lost)
	s.flight.Recordf(string(s.ep.Addr()), "crash", 0,
		"nfs server crash (verifier %d, %d uncommitted blocks lost)", s.verifier, lost)
}

// Reboot restarts a crashed server under a new write verifier. Clients
// comparing the verifier across WRITE and COMMIT replies discover the
// incarnation change and redrive any unacked-unstable data (§2.4 has no
// other recovery to do — the protocol is stateless).
func (s *NFSServer) Reboot() {
	if !s.crashed {
		return
	}
	s.crashed = false
	s.verifier++
	s.ep.Restart()
	s.tracer.Record("server", trace.Crash, "nfs server reboot (verifier %d)", s.verifier)
	s.flight.Recordf(string(s.ep.Addr()), "crash", 0, "nfs server reboot (verifier %d)", s.verifier)
}

func (s *NFSServer) serve(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
	s.recordServe(p, from, proc)
	if body, rejected := s.ownerCheck(p, proc); rejected {
		return body, rpc.StatusOK
	}
	if body, rejected := s.routeCheck(p, proc, args); rejected {
		return body, rpc.StatusOK
	}
	body, st, handled := s.serveCommon(p, proc, args)
	if !handled {
		return nil, rpc.StatusProcUnavail
	}
	return body, st
}
