package server

import (
	"bytes"
	"testing"

	"spritelynfs/internal/core"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/xdr"
)

// rig is a server plus a raw RPC caller (no client-side caching), for
// exercising the service procedures directly.
type rig struct {
	k    *sim.Kernel
	net  *simnet.Network
	cli  *rpc.Endpoint
	nfs  *NFSServer
	snfs *SNFSServer
}

func newRig(useSNFS bool, opts SNFSOptions) *rig {
	k := sim.NewKernel(1)
	net := simnet.New(k, simnet.Config{PropDelay: sim.Millisecond})
	sep := rpc.NewEndpoint(k, net, "server", rpc.Options{Workers: 4})
	st := localfs.NewStore(k.Now, 4096)
	media := localfs.NewMedia(st, disk.New(k, "d", disk.Params{AccessTime: sim.Millisecond}), 1, 1<<20)
	r := &rig{k: k, net: net}
	if useSNFS {
		r.snfs = NewSNFS(k, sep, media, Config{FSID: 1}, opts)
	} else {
		r.nfs = NewNFS(k, sep, media, Config{FSID: 1})
	}
	r.cli = rpc.NewEndpoint(k, net, "cli", rpc.Options{Workers: 2})
	return r
}

func (r *rig) root() proto.Handle {
	if r.nfs != nil {
		return r.nfs.RootHandle()
	}
	return r.snfs.RootHandle()
}

func (r *rig) call(t *testing.T, p *sim.Proc, procNum uint32, m proto.Message) []byte {
	t.Helper()
	var args []byte
	if m != nil {
		args = proto.Marshal(m)
	}
	body, err := r.cli.Call(p, "server", proto.ProgNFS, proto.VersNFS, procNum, args)
	if err != nil {
		t.Fatalf("%s: %v", proto.ProcName(proto.ProgNFS, procNum), err)
	}
	return body
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.k.Go("test", func(p *sim.Proc) {
		defer r.k.Stop()
		fn(p)
	})
	r.k.Run()
}

func TestNFSServerFileLifecycle(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		// create
		body := r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})
		cr := proto.DecodeHandleReply(xdr.NewDecoder(body))
		if cr.Status != proto.OK {
			t.Fatalf("create: %v", cr.Status)
		}
		// write
		data := []byte("persistent bytes")
		body = r.call(t, p, proto.ProcWrite, &proto.WriteArgs{Handle: cr.Handle, Offset: 0, Data: data})
		wr := proto.DecodeWriteReply(xdr.NewDecoder(body))
		if wr.Status != proto.OK || wr.Attr.Size != int64(len(data)) {
			t.Fatalf("write: %+v", wr)
		}
		if !wr.Committed || wr.Verifier == 0 {
			t.Fatalf("stable write reply not committed or missing verifier: %+v", wr)
		}
		// lookup
		body = r.call(t, p, proto.ProcLookup, &proto.DirOpArgs{Dir: root, Name: "f"})
		lr := proto.DecodeHandleReply(xdr.NewDecoder(body))
		if lr.Status != proto.OK || lr.Handle != cr.Handle {
			t.Fatalf("lookup: %+v", lr)
		}
		// read
		body = r.call(t, p, proto.ProcRead, &proto.ReadArgs{Handle: cr.Handle, Offset: 0, Count: 100})
		rr := proto.DecodeReadReply(xdr.NewDecoder(body))
		if rr.Status != proto.OK || !bytes.Equal(rr.Data, data) {
			t.Fatalf("read: %+v", rr)
		}
		// getattr
		body = r.call(t, p, proto.ProcGetattr, &proto.HandleArgs{Handle: cr.Handle})
		ga := proto.DecodeAttrReply(xdr.NewDecoder(body))
		if ga.Status != proto.OK || ga.Attr.Size != int64(len(data)) {
			t.Fatalf("getattr: %+v", ga)
		}
		// remove
		body = r.call(t, p, proto.ProcRemove, &proto.DirOpArgs{Dir: root, Name: "f"})
		if st := proto.DecodeStatusReply(xdr.NewDecoder(body)).Status; st != proto.OK {
			t.Fatalf("remove: %v", st)
		}
		// stale after remove
		body = r.call(t, p, proto.ProcGetattr, &proto.HandleArgs{Handle: cr.Handle})
		if st := proto.DecodeAttrReply(xdr.NewDecoder(body)).Status; st != proto.ErrStale {
			t.Errorf("getattr after remove: %v, want ESTALE", st)
		}
	})
}

func TestNFSServerWriteIsSynchronousWithDisk(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		body := r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})
		cr := proto.DecodeHandleReply(xdr.NewDecoder(body))
		before := r.nfs.Media().Disk().Stats().Writes
		r.call(t, p, proto.ProcWrite, &proto.WriteArgs{Handle: cr.Handle, Offset: 0, Data: make([]byte, 8192)})
		after := r.nfs.Media().Disk().Stats().Writes
		if after <= before {
			t.Error("write RPC completed without a disk write")
		}
	})
}

func TestNFSServerRejectsSpritelyProcedures(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		args := proto.Marshal(&proto.OpenArgs{Handle: r.root()})
		_, err := r.cli.Call(p, "server", proto.ProgNFS, proto.VersNFS, proto.ProcOpen, args)
		if err != rpc.ErrProcUnavail {
			t.Errorf("open on NFS server: %v, want PROC_UNAVAIL", err)
		}
	})
}

func TestServerStaleHandles(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		bad := proto.Handle{FSID: 1, Ino: 999, Gen: 1}
		body := r.call(t, p, proto.ProcGetattr, &proto.HandleArgs{Handle: bad})
		if st := proto.DecodeAttrReply(xdr.NewDecoder(body)).Status; st != proto.ErrStale {
			t.Errorf("bogus ino: %v", st)
		}
		wrongGen := r.root()
		wrongGen.Gen += 7
		body = r.call(t, p, proto.ProcGetattr, &proto.HandleArgs{Handle: wrongGen})
		if st := proto.DecodeAttrReply(xdr.NewDecoder(body)).Status; st != proto.ErrStale {
			t.Errorf("wrong generation: %v", st)
		}
		wrongFS := r.root()
		wrongFS.FSID = 42
		body = r.call(t, p, proto.ProcGetattr, &proto.HandleArgs{Handle: wrongFS})
		if st := proto.DecodeAttrReply(xdr.NewDecoder(body)).Status; st != proto.ErrStale {
			t.Errorf("wrong fsid: %v", st)
		}
	})
}

func TestServerGarbageArgs(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		_, err := r.cli.Call(p, "server", proto.ProgNFS, proto.VersNFS, proto.ProcRead, []byte{1, 2})
		if err != rpc.ErrGarbage {
			t.Errorf("truncated args: %v, want GARBAGE_ARGS", err)
		}
	})
}

func TestSNFSServerOpenCloseStateTable(t *testing.T) {
	r := newRig(true, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		body := r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})
		cr := proto.DecodeHandleReply(xdr.NewDecoder(body))

		body = r.call(t, p, proto.ProcOpen, &proto.OpenArgs{Handle: cr.Handle, WriteMode: true})
		or := proto.DecodeOpenReply(xdr.NewDecoder(body))
		if or.Status != proto.OK || !or.CacheEnabled || or.Version == 0 {
			t.Fatalf("open: %+v", or)
		}
		if got := r.snfs.Table().State(cr.Handle); got != core.StateOneWriter {
			t.Errorf("state %v, want ONE-WRITER", got)
		}
		body = r.call(t, p, proto.ProcClose, &proto.CloseArgs{Handle: cr.Handle, WriteMode: true})
		if st := proto.DecodeStatusReply(xdr.NewDecoder(body)).Status; st != proto.OK {
			t.Fatalf("close: %v", st)
		}
		if got := r.snfs.Table().State(cr.Handle); got != core.StateClosedDirty {
			t.Errorf("state %v, want CLOSED-DIRTY", got)
		}
	})
}

func TestSNFSServerRemoveDropsStateEntry(t *testing.T) {
	r := newRig(true, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		body := r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})
		cr := proto.DecodeHandleReply(xdr.NewDecoder(body))
		r.call(t, p, proto.ProcOpen, &proto.OpenArgs{Handle: cr.Handle, WriteMode: true})
		r.call(t, p, proto.ProcClose, &proto.CloseArgs{Handle: cr.Handle, WriteMode: true})
		if r.snfs.Table().Len() != 1 {
			t.Fatalf("table len %d", r.snfs.Table().Len())
		}
		r.call(t, p, proto.ProcRemove, &proto.DirOpArgs{Dir: root, Name: "f"})
		if r.snfs.Table().Len() != 0 {
			t.Errorf("state entry survived remove")
		}
	})
}

func TestSNFSServerRenameOverDropsVictimEntry(t *testing.T) {
	r := newRig(true, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		a := proto.DecodeHandleReply(xdr.NewDecoder(
			r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "a", Mode: 0o644})))
		b := proto.DecodeHandleReply(xdr.NewDecoder(
			r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "b", Mode: 0o644})))
		// Open/close b so it has a state entry.
		r.call(t, p, proto.ProcOpen, &proto.OpenArgs{Handle: b.Handle, WriteMode: true})
		r.call(t, p, proto.ProcClose, &proto.CloseArgs{Handle: b.Handle, WriteMode: true})
		// Rename a over b: b's entry must be dropped.
		r.call(t, p, proto.ProcRename, &proto.RenameArgs{
			SrcDir: root, SrcName: "a", DstDir: root, DstName: "b",
		})
		if r.snfs.Table().State(b.Handle) != core.StateClosed || r.snfs.Table().Len() != 0 {
			t.Errorf("victim entry survived rename-over (len %d)", r.snfs.Table().Len())
		}
		_ = a
	})
}

func TestSNFSServerGracePeriodRejectsOpens(t *testing.T) {
	r := newRig(true, SNFSOptions{GraceDur: 5 * sim.Second})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		body := r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})
		cr := proto.DecodeHandleReply(xdr.NewDecoder(body))
		r.snfs.Crash()
		r.snfs.Reboot()
		if !r.snfs.InGrace() {
			t.Fatal("not in grace after reboot")
		}
		body = r.call(t, p, proto.ProcOpen, &proto.OpenArgs{Handle: cr.Handle})
		if st := proto.DecodeOpenReply(xdr.NewDecoder(body)).Status; st != proto.ErrGrace {
			t.Errorf("open during grace: %v, want EGRACE", st)
		}
		// Reopens ARE accepted during grace.
		body = r.call(t, p, proto.ProcReopen, &proto.ReopenArgs{Handle: cr.Handle, Readers: 1, Version: 3})
		if st := proto.DecodeOpenReply(xdr.NewDecoder(body)).Status; st != proto.OK {
			t.Errorf("reopen during grace: %v", st)
		}
		p.Sleep(6 * sim.Second)
		body = r.call(t, p, proto.ProcOpen, &proto.OpenArgs{Handle: cr.Handle})
		if st := proto.DecodeOpenReply(xdr.NewDecoder(body)).Status; st != proto.OK {
			t.Errorf("open after grace: %v", st)
		}
	})
}

func TestSNFSServerEpochAdvancesAcrossReboot(t *testing.T) {
	r := newRig(true, SNFSOptions{GraceDur: sim.Second})
	r.run(t, func(p *sim.Proc) {
		body := r.call(t, p, proto.ProcServerInfo, nil)
		e1 := proto.DecodeServerInfoReply(xdr.NewDecoder(body)).Epoch
		r.snfs.Crash()
		r.snfs.Reboot()
		body = r.call(t, p, proto.ProcServerInfo, nil)
		info := proto.DecodeServerInfoReply(xdr.NewDecoder(body))
		if info.Epoch != e1+1 {
			t.Errorf("epoch %d after reboot, want %d", info.Epoch, e1+1)
		}
		if !info.InGrace {
			t.Error("not reporting grace period")
		}
	})
}

func TestMountRoot(t *testing.T) {
	r := newRig(true, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		body := r.call(t, p, proto.ProcMountRoot, nil)
		mr := proto.DecodeHandleReply(xdr.NewDecoder(body))
		if mr.Status != proto.OK || mr.Handle != r.root() || !mr.Attr.IsDir() {
			t.Errorf("mountroot: %+v", mr)
		}
	})
}

func TestServerSeriesRecording(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	ser := r.nfs.EnableSeries(sim.Second)
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		body := r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})
		cr := proto.DecodeHandleReply(xdr.NewDecoder(body))
		for i := 0; i < 5; i++ {
			r.call(t, p, proto.ProcWrite, &proto.WriteArgs{Handle: cr.Handle, Offset: 0, Data: make([]byte, 4096)})
			r.call(t, p, proto.ProcRead, &proto.ReadArgs{Handle: cr.Handle, Offset: 0, Count: 4096})
		}
	})
	calls, reads, writes := 0.0, 0.0, 0.0
	for _, v := range ser.Calls.Values() {
		calls += v
	}
	for _, v := range ser.Reads.Values() {
		reads += v
	}
	for _, v := range ser.Writes.Values() {
		writes += v
	}
	if calls != 11 || reads != 5 || writes != 5 {
		t.Errorf("series calls=%v reads=%v writes=%v, want 11/5/5", calls, reads, writes)
	}
	cpuBusy := 0.0
	for _, v := range ser.CPU.Values() {
		cpuBusy += v
	}
	if cpuBusy <= 0 {
		t.Error("no CPU busy time recorded")
	}
}

func TestSetattrTruncate(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		cr := proto.DecodeHandleReply(xdr.NewDecoder(
			r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})))
		r.call(t, p, proto.ProcWrite, &proto.WriteArgs{Handle: cr.Handle, Offset: 0, Data: make([]byte, 10000)})
		body := r.call(t, p, proto.ProcSetattr, &proto.SetattrArgs{Handle: cr.Handle, SetSize: true, Size: 100})
		sr := proto.DecodeAttrReply(xdr.NewDecoder(body))
		if sr.Status != proto.OK || sr.Attr.Size != 100 {
			t.Errorf("setattr: %+v", sr)
		}
	})
}

func TestReaddirAndStatfs(t *testing.T) {
	r := newRig(false, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		for _, name := range []string{"x", "y"} {
			r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: name, Mode: 0o644})
		}
		body := r.call(t, p, proto.ProcReaddir, &proto.HandleArgs{Handle: root})
		dr := proto.DecodeReaddirReply(xdr.NewDecoder(body))
		if dr.Status != proto.OK || len(dr.Entries) != 2 {
			t.Errorf("readdir: %+v", dr)
		}
		body = r.call(t, p, proto.ProcStatfs, &proto.HandleArgs{Handle: root})
		sf := proto.DecodeStatfsReply(xdr.NewDecoder(body))
		if sf.Status != proto.OK || sf.BlockSize != 4096 {
			t.Errorf("statfs: %+v", sf)
		}
	})
}

func TestSNFSDumpState(t *testing.T) {
	r := newRig(true, SNFSOptions{})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		cr := proto.DecodeHandleReply(xdr.NewDecoder(
			r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})))
		r.call(t, p, proto.ProcOpen, &proto.OpenArgs{Handle: cr.Handle, WriteMode: true})
		body := r.call(t, p, proto.ProcDumpState, nil)
		dr := proto.DecodeDumpStateReply(xdr.NewDecoder(body))
		if dr.Status != proto.OK || dr.Epoch != 1 {
			t.Fatalf("dump: %+v", dr)
		}
		if len(dr.Entries) != 1 {
			t.Fatalf("%d entries", len(dr.Entries))
		}
		e := dr.Entries[0]
		if e.Handle != cr.Handle || e.StateName != "ONE-WRITER" || len(e.Clients) != 1 {
			t.Errorf("entry %+v", e)
		}
		if e.Clients[0].Client != "cli" || e.Clients[0].Writers != 1 || !e.Clients[0].Caching {
			t.Errorf("client %+v", e.Clients[0])
		}
	})
}

func TestSNFSReclaimIdle(t *testing.T) {
	r := newRig(true, SNFSOptions{TableLimit: 3})
	// The rig's "cli" endpoint serves no callback program; register one.
	r.cli.Register(proto.ProgCallback, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
		return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
	})
	r.run(t, func(p *sim.Proc) {
		root := r.root()
		// Two files written and closed: CLOSED-DIRTY entries.
		for _, name := range []string{"a", "b"} {
			cr := proto.DecodeHandleReply(xdr.NewDecoder(
				r.call(t, p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: name, Mode: 0o644})))
			r.call(t, p, proto.ProcOpen, &proto.OpenArgs{Handle: cr.Handle, WriteMode: true})
			r.call(t, p, proto.ProcClose, &proto.CloseArgs{Handle: cr.Handle, WriteMode: true})
		}
		if !r.snfs.Table().NeedsReclaim(1) {
			t.Fatalf("table len %d not near limit", r.snfs.Table().Len())
		}
		var n int
		done := make(chan struct{})
		r.k.Go("reclaimer", func(rp *sim.Proc) {
			n = r.snfs.ReclaimIdle(rp, 2)
			close(done)
		})
		p.Sleep(5 * sim.Second)
		if n != 2 {
			t.Errorf("reclaimed %d entries, want 2", n)
		}
		if r.snfs.Table().LastWriter(proto.Handle{}) != "" {
			t.Error("unexpected last writer on zero handle")
		}
	})
}

func TestRFSServerDirect(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.New(k, simnet.Config{PropDelay: sim.Millisecond})
	sep := rpc.NewEndpoint(k, net, "server", rpc.Options{Workers: 4})
	st := localfs.NewStore(k.Now, 4096)
	media := localfs.NewMedia(st, disk.New(k, "d", disk.Params{AccessTime: sim.Millisecond}), 1, 1<<20)
	srv := NewRFS(k, sep, media, Config{FSID: 1})
	cli := rpc.NewEndpoint(k, net, "cli", rpc.Options{Workers: 2})
	cli.Register(proto.ProgCallback, func(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
		return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
	})
	call := func(p *sim.Proc, procNum uint32, m proto.Message) []byte {
		var args []byte
		if m != nil {
			args = proto.Marshal(m)
		}
		body, err := cli.Call(p, "server", proto.ProgNFS, proto.VersNFS, procNum, args)
		if err != nil {
			t.Fatalf("%s: %v", proto.ProcName(proto.ProgNFS, procNum), err)
		}
		return body
	}
	k.Go("test", func(p *sim.Proc) {
		defer k.Stop()
		root := srv.RootHandle()
		cr := proto.DecodeHandleReply(xdr.NewDecoder(
			call(p, proto.ProcCreate, &proto.CreateArgs{Dir: root, Name: "f", Mode: 0o644})))
		or := proto.DecodeOpenReply(xdr.NewDecoder(
			call(p, proto.ProcOpen, &proto.OpenArgs{Handle: cr.Handle, WriteMode: false})))
		if or.Status != proto.OK || !or.CacheEnabled {
			t.Fatalf("rfs open: %+v (readers always cache under RFS)", or)
		}
		v1 := or.Version
		// A write-mode open bumps the version.
		or2 := proto.DecodeOpenReply(xdr.NewDecoder(
			call(p, proto.ProcOpen, &proto.OpenArgs{Handle: cr.Handle, WriteMode: true})))
		if or2.Version <= v1 || or2.PrevVersion != v1 {
			t.Errorf("version not bumped: %d -> %+v", v1, or2)
		}
		if srv.Readers(cr.Handle) != 1 {
			t.Errorf("readers %d", srv.Readers(cr.Handle))
		}
		call(p, proto.ProcClose, &proto.CloseArgs{Handle: cr.Handle})
		call(p, proto.ProcClose, &proto.CloseArgs{Handle: cr.Handle, WriteMode: true})
		if srv.TableLen() != 1 {
			t.Errorf("entry dropped on close (cache outlives close)")
		}
		// Removal clears the entry.
		call(p, proto.ProcRemove, &proto.DirOpArgs{Dir: root, Name: "f"})
		if srv.TableLen() != 0 {
			t.Errorf("entry survived remove")
		}
	})
	k.Run()
}
