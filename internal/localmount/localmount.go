// Package localmount adapts the local file system (localfs) to the vfs
// interface — the "local disk" configuration of the paper's benchmarks.
// It applies the traditional Unix write policy: data writes are delayed
// in the buffer cache and reach the disk when the update daemon syncs
// (every 30 seconds), when cache pressure evicts them, or when a file is
// explicitly fsync'd; structural (metadata) changes are written
// synchronously. Deleting a file cancels its pending data writes, but the
// structural writes still happen — which is why, in Table 5-5, SNFS with
// infinite write-delay can actually beat the local disk on temp-file
// workloads.
package localmount

import (
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// FS is a local-disk mount.
type FS struct {
	k     *sim.Kernel
	media *localfs.Media
}

// New returns a local mount over media.
func New(k *sim.Kernel, media *localfs.Media) *FS {
	return &FS{k: k, media: media}
}

// Media exposes the underlying media layer (for stats).
func (f *FS) Media() *localfs.Media { return f.media }

func (f *FS) store() *localfs.Store { return f.media.Store() }

// walk resolves rel to an inode, following symlinks (relative targets
// against the containing directory; absolute ones against the FS root).
func (f *FS) walk(rel string) (localfs.Attr, error) {
	st := f.store()
	root, err := st.GetAttr(st.Root())
	if err != nil {
		return localfs.Attr{}, err
	}
	return f.walkComps(root, vfs.SplitPath(rel), 8)
}

func (f *FS) walkComps(dir localfs.Attr, comps []string, depth int) (localfs.Attr, error) {
	st := f.store()
	cur := dir
	for i := 0; i < len(comps); i++ {
		next, err := st.Lookup(cur.Ino, comps[i])
		if err != nil {
			return localfs.Attr{}, err
		}
		if next.Type == localfs.TypeSymlink {
			if depth <= 0 {
				return localfs.Attr{}, localfs.ErrInval
			}
			target, err := st.Readlink(next.Ino)
			if err != nil {
				return localfs.Attr{}, err
			}
			base := cur
			if len(target) > 0 && target[0] == '/' {
				base, err = st.GetAttr(st.Root())
				if err != nil {
					return localfs.Attr{}, err
				}
			}
			spliced := append(vfs.SplitPath(target), comps[i+1:]...)
			return f.walkComps(base, spliced, depth-1)
		}
		cur = next
	}
	return cur, nil
}

// walkParent resolves all but the last component, returning the parent
// attributes and the final name.
func (f *FS) walkParent(rel string) (localfs.Attr, string, error) {
	comps := vfs.SplitPath(rel)
	if len(comps) == 0 {
		return localfs.Attr{}, "", localfs.ErrInval
	}
	st := f.store()
	cur, err := st.GetAttr(st.Root())
	if err != nil {
		return localfs.Attr{}, "", err
	}
	for _, comp := range comps[:len(comps)-1] {
		cur, err = st.Lookup(cur.Ino, comp)
		if err != nil {
			return localfs.Attr{}, "", err
		}
	}
	return cur, comps[len(comps)-1], nil
}

// Open implements vfs.FS.
func (f *FS) Open(p *sim.Proc, rel string, flags vfs.Flags, mode uint32) (vfs.File, error) {
	var attr localfs.Attr
	var err error
	if flags&vfs.Create != 0 {
		var dir localfs.Attr
		var name string
		dir, name, err = f.walkParent(rel)
		if err != nil {
			return nil, err
		}
		existing, lerr := f.store().Lookup(dir.Ino, name)
		attr, err = f.store().Create(dir.Ino, name, mode)
		if err != nil {
			return nil, err
		}
		if lerr == nil {
			// Truncating re-create: pending writes are moot.
			f.media.Cancel(existing.Ino)
		}
		f.media.ChargeMeta(p)
	} else {
		attr, err = f.walk(rel)
		if err != nil {
			return nil, err
		}
		if flags&vfs.Truncate != 0 && attr.Type == localfs.TypeRegular {
			attr, err = f.store().Truncate(attr.Ino, 0)
			if err != nil {
				return nil, err
			}
			f.media.Cancel(attr.Ino)
			f.media.ChargeMeta(p)
		}
	}
	return &file{fs: f, ino: attr.Ino}, nil
}

// Mkdir implements vfs.FS.
func (f *FS) Mkdir(p *sim.Proc, rel string, mode uint32) error {
	dir, name, err := f.walkParent(rel)
	if err != nil {
		return err
	}
	if _, err := f.store().Mkdir(dir.Ino, name, mode); err != nil {
		return err
	}
	f.media.ChargeMeta(p)
	return nil
}

// Remove implements vfs.FS; pending delayed writes of the victim are
// cancelled (they never reach the disk), but the structural update is
// still charged.
func (f *FS) Remove(p *sim.Proc, rel string) error {
	dir, name, err := f.walkParent(rel)
	if err != nil {
		return err
	}
	removed, err := f.store().Remove(dir.Ino, name)
	if err != nil {
		return err
	}
	if removed.Nlink <= 1 {
		f.media.Cancel(removed.Ino)
	}
	f.media.ChargeMeta(p)
	return nil
}

// Rmdir implements vfs.FS.
func (f *FS) Rmdir(p *sim.Proc, rel string) error {
	dir, name, err := f.walkParent(rel)
	if err != nil {
		return err
	}
	if err := f.store().Rmdir(dir.Ino, name); err != nil {
		return err
	}
	f.media.ChargeMeta(p)
	return nil
}

// Rename implements vfs.FS.
func (f *FS) Rename(p *sim.Proc, oldrel, newrel string) error {
	sdir, sname, err := f.walkParent(oldrel)
	if err != nil {
		return err
	}
	ddir, dname, err := f.walkParent(newrel)
	if err != nil {
		return err
	}
	if err := f.store().Rename(sdir.Ino, sname, ddir.Ino, dname); err != nil {
		return err
	}
	f.media.ChargeMeta(p)
	return nil
}

// Stat implements vfs.FS.
func (f *FS) Stat(p *sim.Proc, rel string) (proto.Fattr, error) {
	attr, err := f.walk(rel)
	if err != nil {
		return proto.Fattr{}, err
	}
	return proto.FattrFromAttr(attr, f.store().BlockSize()), nil
}

// Readdir implements vfs.FS.
func (f *FS) Readdir(p *sim.Proc, rel string) ([]proto.DirEntry, error) {
	attr, err := f.walk(rel)
	if err != nil {
		return nil, err
	}
	ents, err := f.store().Readdir(attr.Ino)
	if err != nil {
		return nil, err
	}
	out := make([]proto.DirEntry, len(ents))
	for i, e := range ents {
		out[i] = proto.DirEntry{Name: e.Name, Fileid: e.Ino}
	}
	return out, nil
}

// Link implements vfs.FS.
func (f *FS) Link(p *sim.Proc, oldrel, newrel string) error {
	src, err := f.walk(oldrel)
	if err != nil {
		return err
	}
	dir, name, err := f.walkParent(newrel)
	if err != nil {
		return err
	}
	if _, err := f.store().Link(dir.Ino, name, src.Ino); err != nil {
		return err
	}
	f.media.ChargeMeta(p)
	return nil
}

// Symlink implements vfs.FS.
func (f *FS) Symlink(p *sim.Proc, target, linkrel string) error {
	dir, name, err := f.walkParent(linkrel)
	if err != nil {
		return err
	}
	if _, err := f.store().Symlink(dir.Ino, name, target); err != nil {
		return err
	}
	f.media.ChargeMeta(p)
	return nil
}

// Readlink implements vfs.FS (the final component is not followed).
func (f *FS) Readlink(p *sim.Proc, rel string) (string, error) {
	dir, name, err := f.walkParent(rel)
	if err != nil {
		return "", err
	}
	attr, err := f.store().Lookup(dir.Ino, name)
	if err != nil {
		return "", err
	}
	return f.store().Readlink(attr.Ino)
}

// SyncAll implements vfs.FS: flush every delayed write (sync(2)).
func (f *FS) SyncAll(p *sim.Proc) {
	f.media.SyncOlderThan(p.Now())
}

// file is an open local file.
type file struct {
	fs  *FS
	ino uint64
}

// ReadAt implements vfs.File.
func (fl *file) ReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	data, err := fl.fs.store().ReadAt(fl.ino, off, n)
	if err != nil {
		return nil, err
	}
	if len(data) > 0 {
		fl.fs.media.ChargeRead(p, fl.ino, off, len(data))
	}
	return data, nil
}

// WriteAt implements vfs.File with the delayed-write policy.
func (fl *file) WriteAt(p *sim.Proc, off int64, data []byte) (int, error) {
	if _, err := fl.fs.store().WriteAt(fl.ino, off, data); err != nil {
		return 0, err
	}
	fl.fs.media.ChargeWriteDelayed(p.Now(), fl.ino, off, len(data))
	return len(data), nil
}

// Close implements vfs.File. Local closes flush nothing: delayed writes
// stay in the buffer cache.
func (fl *file) Close(p *sim.Proc) error { return nil }

// Sync implements vfs.File (fsync).
func (fl *file) Sync(p *sim.Proc) error {
	fl.fs.media.SyncFile(p, fl.ino)
	return nil
}

// Attr implements vfs.File.
func (fl *file) Attr(p *sim.Proc) (proto.Fattr, error) {
	attr, err := fl.fs.store().GetAttr(fl.ino)
	if err != nil {
		return proto.Fattr{}, err
	}
	return proto.FattrFromAttr(attr, fl.fs.store().BlockSize()), nil
}
