package localmount

import (
	"bytes"
	"errors"
	"testing"

	"spritelynfs/internal/disk"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

func newFS(k *sim.Kernel) *FS {
	st := localfs.NewStore(k.Now, 4096)
	d := disk.New(k, "d", disk.Params{AccessTime: 10 * sim.Millisecond, BytesPerSec: 2_000_000})
	return New(k, localfs.NewMedia(st, d, 1, 1<<20))
}

func run(t *testing.T, fn func(k *sim.Kernel, fs *FS, p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel(1)
	fs := newFS(k)
	k.Go("t", func(p *sim.Proc) {
		defer k.Stop()
		fn(k, fs, p)
	})
	k.Run()
}

func TestFileLifecycle(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		if err := fs.Mkdir(p, "dir", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := fs.Open(p, "dir/file", vfs.WriteOnly|vfs.Create, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte("local bytes")
		if _, err := f.WriteAt(p, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
		g, err := fs.Open(p, "dir/file", vfs.ReadOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.ReadAt(p, 0, 100)
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("read %q, %v", got, err)
		}
		attr, err := g.Attr(p)
		if err != nil || attr.Size != int64(len(want)) {
			t.Errorf("attr %+v, %v", attr, err)
		}
		g.Close(p)
	})
}

func TestDelayedWritesAndSync(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		f, _ := fs.Open(p, "f", vfs.WriteOnly|vfs.Create, 0o644)
		f.WriteAt(p, 0, make([]byte, 12288))
		f.Close(p)
		// One meta write for the create; data still delayed.
		if w := fs.Media().Disk().Stats().Writes; w != 1 {
			t.Errorf("disk writes before sync: %d, want 1 (meta only)", w)
		}
		if fs.Media().DirtyBlocks() != 3 {
			t.Errorf("dirty blocks %d", fs.Media().DirtyBlocks())
		}
		fs.SyncAll(p)
		if fs.Media().DirtyBlocks() != 0 {
			t.Error("sync left dirty blocks")
		}
	})
}

func TestRemoveCancelsDelayedWrites(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		f, _ := fs.Open(p, "victim", vfs.WriteOnly|vfs.Create, 0o644)
		f.WriteAt(p, 0, make([]byte, 40960))
		f.Close(p)
		before := fs.Media().Disk().Stats().Writes
		if err := fs.Remove(p, "victim"); err != nil {
			t.Fatal(err)
		}
		fs.SyncAll(p)
		// Only the remove's own meta write; no data ever written.
		after := fs.Media().Disk().Stats().Writes
		if after != before+1 {
			t.Errorf("disk writes %d -> %d; cancelled data reached disk", before, after)
		}
	})
}

func TestTruncatingCreateCancelsOldData(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		f, _ := fs.Open(p, "f", vfs.WriteOnly|vfs.Create, 0o644)
		f.WriteAt(p, 0, make([]byte, 8192))
		f.Close(p)
		g, err := fs.Open(p, "f", vfs.WriteOnly|vfs.Create|vfs.Truncate, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		attr, _ := g.Attr(p)
		if attr.Size != 0 {
			t.Errorf("size after truncating create: %d", attr.Size)
		}
		if fs.Media().DirtyBlocks() != 0 {
			t.Errorf("old dirty blocks survive: %d", fs.Media().DirtyBlocks())
		}
		g.Close(p)
	})
}

func TestFsyncFlushesOneFile(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		f, _ := fs.Open(p, "a", vfs.WriteOnly|vfs.Create, 0o644)
		f.WriteAt(p, 0, make([]byte, 4096))
		g, _ := fs.Open(p, "b", vfs.WriteOnly|vfs.Create, 0o644)
		g.WriteAt(p, 0, make([]byte, 4096))
		if err := f.Sync(p); err != nil {
			t.Fatal(err)
		}
		if fs.Media().DirtyBlocks() != 1 {
			t.Errorf("dirty blocks after fsync(a): %d, want b's 1", fs.Media().DirtyBlocks())
		}
		f.Close(p)
		g.Close(p)
	})
}

func TestRenameAndReaddir(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		fs.Mkdir(p, "d1", 0o755)
		fs.Mkdir(p, "d2", 0o755)
		f, _ := fs.Open(p, "d1/x", vfs.WriteOnly|vfs.Create, 0o644)
		f.Close(p)
		if err := fs.Rename(p, "d1/x", "d2/y"); err != nil {
			t.Fatal(err)
		}
		ents, err := fs.Readdir(p, "d2")
		if err != nil || len(ents) != 1 || ents[0].Name != "y" {
			t.Errorf("readdir d2: %v, %v", ents, err)
		}
		if _, err := fs.Stat(p, "d1/x"); err == nil {
			t.Error("source still visible")
		}
	})
}

func TestRmdir(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		fs.Mkdir(p, "d", 0o755)
		if err := fs.Rmdir(p, "d"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Stat(p, "d"); err == nil {
			t.Error("dir still visible")
		}
	})
}

func TestOpenMissingFile(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		_, err := fs.Open(p, "nope", vfs.ReadOnly, 0)
		if !errors.Is(err, localfs.ErrNoEnt) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestStatRoot(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		attr, err := fs.Stat(p, "")
		if err != nil || !attr.IsDir() {
			t.Errorf("root stat: %+v, %v", attr, err)
		}
	})
}

func TestCachedReadIsFree(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		f, _ := fs.Open(p, "f", vfs.WriteOnly|vfs.Create, 0o644)
		f.WriteAt(p, 0, make([]byte, 8192))
		f.Close(p)
		fs.SyncAll(p)
		reads := fs.Media().Disk().Stats().Reads
		g, _ := fs.Open(p, "f", vfs.ReadOnly, 0)
		g.ReadAt(p, 0, 8192)
		g.Close(p)
		if fs.Media().Disk().Stats().Reads != reads {
			t.Error("read of resident blocks went to disk")
		}
	})
}

func TestLocalSymlinksAndHardLinks(t *testing.T) {
	run(t, func(k *sim.Kernel, fs *FS, p *sim.Proc) {
		fs.Mkdir(p, "d", 0o755)
		f, _ := fs.Open(p, "d/real", vfs.WriteOnly|vfs.Create, 0o644)
		f.WriteAt(p, 0, []byte("payload"))
		f.Close(p)

		// Symlink with a relative target, used directly and mid-path.
		if err := fs.Symlink(p, "real", "d/ln"); err != nil {
			t.Fatal(err)
		}
		g, err := fs.Open(p, "d/ln", vfs.ReadOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := g.ReadAt(p, 0, 100)
		if string(got) != "payload" {
			t.Errorf("through symlink: %q", got)
		}
		g.Close(p)
		if err := fs.Symlink(p, "/d", "dl"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Stat(p, "dl/real"); err != nil {
			t.Errorf("dir symlink mid-path: %v", err)
		}
		target, err := fs.Readlink(p, "d/ln")
		if err != nil || target != "real" {
			t.Errorf("readlink %q, %v", target, err)
		}

		// Hard link shares the inode; dirty data survives unlinking
		// the other name.
		if err := fs.Link(p, "d/real", "d/alias"); err != nil {
			t.Fatal(err)
		}
		h, _ := fs.Open(p, "d/alias", vfs.WriteOnly, 0)
		h.WriteAt(p, 0, []byte("PAYLOAD"))
		h.Close(p)
		if err := fs.Remove(p, "d/real"); err != nil {
			t.Fatal(err)
		}
		i, err := fs.Open(p, "d/alias", vfs.ReadOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _ = i.ReadAt(p, 0, 100)
		if string(got) != "PAYLOAD" {
			t.Errorf("after unlink of other name: %q", got)
		}
		i.Close(p)
		// Cycle detection.
		fs.Symlink(p, "c2", "c1")
		fs.Symlink(p, "c1", "c2")
		if _, err := fs.Stat(p, "c1"); err == nil {
			t.Error("symlink cycle resolved")
		}
	})
}
