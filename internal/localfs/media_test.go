package localfs

import (
	"testing"

	"spritelynfs/internal/disk"
	"spritelynfs/internal/sim"
)

func newTestMedia(k *sim.Kernel, cacheBytes int64) *Media {
	st := NewStore(k.Now, 4096)
	d := disk.New(k, "d0", disk.Params{AccessTime: 10 * sim.Millisecond, BytesPerSec: 2_000_000})
	return NewMedia(st, d, 1, cacheBytes)
}

func TestReadMissThenHit(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("r", func(p *sim.Proc) {
		m.ChargeRead(p, 5, 0, 8192) // two blocks, both miss
		if m.Disk().Stats().Reads != 1 {
			t.Errorf("contiguous miss run should be one disk op, got %d", m.Disk().Stats().Reads)
		}
		before := m.Disk().Stats().Reads
		m.ChargeRead(p, 5, 0, 8192) // both hit now
		if m.Disk().Stats().Reads != before {
			t.Error("cache hit went to disk")
		}
	})
	k.Run()
}

func TestSyncWriteChargesDisk(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	var elapsed sim.Time
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteSync(p, 5, 0, 4096)
		elapsed = p.Now()
	})
	k.Run()
	if elapsed == 0 {
		t.Error("sync write did not block")
	}
	if m.Disk().Stats().Writes != 1 {
		t.Errorf("writes %d", m.Disk().Stats().Writes)
	}
	// The written block is now resident: a read of it is free.
	k2 := sim.NewKernel(1)
	_ = k2
}

func TestDelayedWriteDefersDisk(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteDelayed(p.Now(), 5, 0, 12288)
		if m.Disk().Stats().Writes != 0 {
			t.Error("delayed write touched disk")
		}
		if m.DirtyBlocks() != 3 {
			t.Errorf("dirty blocks %d, want 3", m.DirtyBlocks())
		}
		m.SyncFile(p, 5)
		if m.Disk().Stats().Writes != 1 {
			t.Errorf("sync flush ops %d, want 1 batched write", m.Disk().Stats().Writes)
		}
		if m.DirtyBlocks() != 0 {
			t.Error("blocks still dirty after sync")
		}
	})
	k.Run()
}

func TestCancelAvoidsDiskEntirely(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteDelayed(p.Now(), 5, 0, 40960)
		n := m.Cancel(5)
		if n != 10 {
			t.Errorf("cancelled %d blocks, want 10", n)
		}
		if m.Disk().Stats().Writes != 0 {
			t.Error("cancelled writes reached disk")
		}
	})
	k.Run()
}

func TestSyncOlderThanIsAgeSelective(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteDelayed(p.Now(), 1, 0, 4096) // dirtied at t=0
		p.Sleep(40 * sim.Second)
		m.ChargeWriteDelayed(p.Now(), 2, 0, 4096) // dirtied at t=40s
		n := m.SyncOlderThan(p.Now().Add(-30 * sim.Second))
		if n != 1 {
			t.Errorf("flushed %d blocks, want only the 40s-old one", n)
		}
	})
	k.Run()
}

func TestEvictionWritesBackDirty(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 2*4096) // tiny cache: 2 blocks
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteDelayed(p.Now(), 1, 0, 4096)
		m.ChargeWriteDelayed(p.Now(), 2, 0, 4096)
		m.ChargeWriteDelayed(p.Now(), 3, 0, 4096) // evicts file 1's block
		if m.Disk().Stats().Writes != 1 {
			t.Errorf("evicted dirty block writes %d, want 1", m.Disk().Stats().Writes)
		}
	})
	k.Run()
}

func TestMetaSyncVsAsync(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	var syncTime, asyncTime sim.Time
	k.Go("w", func(p *sim.Proc) {
		start := p.Now()
		m.ChargeMeta(p)
		syncTime = p.Now() - start

		m.MetaSync = false
		start = p.Now()
		m.ChargeMeta(p)
		asyncTime = p.Now() - start
	})
	k.Run()
	if syncTime == 0 {
		t.Error("sync metadata write did not block")
	}
	if asyncTime != 0 {
		t.Error("async metadata write blocked")
	}
	if m.Disk().Stats().Writes != 2 {
		t.Errorf("meta writes %d, want 2", m.Disk().Stats().Writes)
	}
}
