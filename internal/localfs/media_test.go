package localfs

import (
	"testing"

	"spritelynfs/internal/disk"
	"spritelynfs/internal/sim"
)

func newTestMedia(k *sim.Kernel, cacheBytes int64) *Media {
	st := NewStore(k.Now, 4096)
	d := disk.New(k, "d0", disk.Params{AccessTime: 10 * sim.Millisecond, BytesPerSec: 2_000_000})
	return NewMedia(st, d, 1, cacheBytes)
}

func TestReadMissThenHit(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("r", func(p *sim.Proc) {
		m.ChargeRead(p, 5, 0, 8192) // two blocks, both miss
		if m.Disk().Stats().Reads != 1 {
			t.Errorf("contiguous miss run should be one disk op, got %d", m.Disk().Stats().Reads)
		}
		before := m.Disk().Stats().Reads
		m.ChargeRead(p, 5, 0, 8192) // both hit now
		if m.Disk().Stats().Reads != before {
			t.Error("cache hit went to disk")
		}
	})
	k.Run()
}

func TestSyncWriteChargesDisk(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	var elapsed sim.Time
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteSync(p, 5, 0, 4096)
		elapsed = p.Now()
	})
	k.Run()
	if elapsed == 0 {
		t.Error("sync write did not block")
	}
	if m.Disk().Stats().Writes != 1 {
		t.Errorf("writes %d", m.Disk().Stats().Writes)
	}
	// The written block is now resident: a read of it is free.
	k2 := sim.NewKernel(1)
	_ = k2
}

func TestDelayedWriteDefersDisk(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteDelayed(p.Now(), 5, 0, 12288)
		if m.Disk().Stats().Writes != 0 {
			t.Error("delayed write touched disk")
		}
		if m.DirtyBlocks() != 3 {
			t.Errorf("dirty blocks %d, want 3", m.DirtyBlocks())
		}
		m.SyncFile(p, 5)
		if m.Disk().Stats().Writes != 1 {
			t.Errorf("sync flush ops %d, want 1 batched write", m.Disk().Stats().Writes)
		}
		if m.DirtyBlocks() != 0 {
			t.Error("blocks still dirty after sync")
		}
	})
	k.Run()
}

func TestCancelAvoidsDiskEntirely(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteDelayed(p.Now(), 5, 0, 40960)
		n := m.Cancel(5)
		if n != 10 {
			t.Errorf("cancelled %d blocks, want 10", n)
		}
		if m.Disk().Stats().Writes != 0 {
			t.Error("cancelled writes reached disk")
		}
	})
	k.Run()
}

func TestSyncOlderThanIsAgeSelective(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteDelayed(p.Now(), 1, 0, 4096) // dirtied at t=0
		p.Sleep(40 * sim.Second)
		m.ChargeWriteDelayed(p.Now(), 2, 0, 4096) // dirtied at t=40s
		n := m.SyncOlderThan(p.Now().Add(-30 * sim.Second))
		if n != 1 {
			t.Errorf("flushed %d blocks, want only the 40s-old one", n)
		}
	})
	k.Run()
}

func TestEvictionWritesBackDirty(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 2*4096) // tiny cache: 2 blocks
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteDelayed(p.Now(), 1, 0, 4096)
		m.ChargeWriteDelayed(p.Now(), 2, 0, 4096)
		m.ChargeWriteDelayed(p.Now(), 3, 0, 4096) // evicts file 1's block
		if m.Disk().Stats().Writes != 1 {
			t.Errorf("evicted dirty block writes %d, want 1", m.Disk().Stats().Writes)
		}
	})
	k.Run()
}

func TestMetaSyncVsAsync(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	var syncTime, asyncTime sim.Time
	k.Go("w", func(p *sim.Proc) {
		start := p.Now()
		m.ChargeMeta(p)
		syncTime = p.Now() - start

		m.MetaSync = false
		start = p.Now()
		m.ChargeMeta(p)
		asyncTime = p.Now() - start
	})
	k.Run()
	if syncTime == 0 {
		t.Error("sync metadata write did not block")
	}
	if asyncTime != 0 {
		t.Error("async metadata write blocked")
	}
	if m.Disk().Stats().Writes != 2 {
		t.Errorf("meta writes %d, want 2", m.Disk().Stats().Writes)
	}
}

func TestCommitFileGathersRuns(t *testing.T) {
	// Six adjacent unstable blocks commit in one arm operation; the
	// blocks come out clean and a second commit is free.
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteUnstable(p.Now(), 5, 0, 6*4096)
		if got := m.Disk().Stats().Writes; got != 0 {
			t.Errorf("unstable write touched disk: %d ops", got)
		}
		if n := m.CommitFile(p, 5); n != 6 {
			t.Errorf("committed %d blocks, want 6", n)
		}
		ds := m.Disk().Stats()
		if ds.Writes != 1 || ds.BytesWritten != 6*4096 {
			t.Errorf("disk stats after commit: %+v", ds)
		}
		if n := m.CommitFile(p, 5); n != 0 {
			t.Errorf("second commit flushed %d blocks, want 0", n)
		}
		st := m.Sched().Stats()
		if st.Requests != 6 || st.Merged != 5 || st.Ops != 1 {
			t.Errorf("scheduler stats %+v", st)
		}
	})
	k.Run()
}

func TestDropDirtyLosesUncommitted(t *testing.T) {
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	k.Go("w", func(p *sim.Proc) {
		m.ChargeWriteUnstable(p.Now(), 5, 0, 2*4096)
		m.ChargeWriteUnstable(p.Now(), 9, 0, 4096)
		if lost := m.DropDirty(); lost != 3 {
			t.Errorf("crash lost %d blocks, want 3", lost)
		}
		if m.DirtyBlocks() != 0 {
			t.Errorf("%d dirty blocks survived the crash", m.DirtyBlocks())
		}
		if m.Disk().Stats().Writes != 0 {
			t.Error("crash-dropped data reached the disk")
		}
		// Committed data is unaffected by a later crash.
		m.ChargeWriteUnstable(p.Now(), 5, 0, 4096)
		m.CommitFile(p, 5)
		if lost := m.DropDirty(); lost != 0 {
			t.Errorf("crash after commit lost %d blocks", lost)
		}
	})
	k.Run()
}

func TestGatherGroupCommitsMeta(t *testing.T) {
	// Eight concurrent metadata updates in Gather mode: the first
	// becomes the sweep leader, the other seven join a second batch.
	// Total arm time = leader's op + one sweep of seven, instead of
	// eight full random accesses.
	k := sim.NewKernel(1)
	st := NewStore(k.Now, 4096)
	d := disk.New(k, "d0", disk.Params{
		AccessTime: 10 * sim.Millisecond, BytesPerSec: 2_000_000,
		SweepAccessTime: 5 * sim.Millisecond,
	})
	m := NewMedia(st, d, 1, 1<<20)
	m.Gather = true
	wg := sim.NewWaitGroup(k, 8)
	for i := 0; i < 8; i++ {
		k.Go("meta", func(p *sim.Proc) {
			defer wg.Done()
			m.ChargeMeta(p)
		})
	}
	var done sim.Time
	k.Go("waiter", func(p *sim.Proc) {
		wg.Wait(p)
		done = p.Now()
	})
	k.Run()
	serial := sim.Time(0).Add(8 * (10*sim.Millisecond + sim.Duration(512*int64(sim.Second)/2_000_000)))
	if done >= serial {
		t.Errorf("gather took %v, no better than %v serial", done, serial)
	}
	if st := m.Disk().Stats(); st.Writes != 8 || st.BytesWritten != 8*512 {
		t.Errorf("disk stats %+v", st)
	}
}

func TestGatherCommitsShareSweep(t *testing.T) {
	// Two files committed concurrently in Gather mode: the second
	// commit's run joins the sweep after the leader's, so its blocks
	// are durable when CommitFile returns but the arm never saw two
	// independent random accesses back to back.
	k := sim.NewKernel(1)
	m := newTestMedia(k, 1<<20)
	m.Gather = true
	now := sim.Time(0)
	m.ChargeWriteUnstable(now, 7, 0, 3*4096)
	m.ChargeWriteUnstable(now, 9, 0, 3*4096)
	wg := sim.NewWaitGroup(k, 2)
	for _, ino := range []uint64{7, 9} {
		ino := ino
		k.Go("commit", func(p *sim.Proc) {
			defer wg.Done()
			if got := m.CommitFile(p, ino); got != 3 {
				t.Errorf("commit ino %d flushed %d blocks, want 3", ino, got)
			}
		})
	}
	k.Go("waiter", func(p *sim.Proc) { wg.Wait(p) })
	k.Run()
	if m.DirtyBlocks() != 0 {
		t.Errorf("%d dirty blocks after commits", m.DirtyBlocks())
	}
	st := m.Sched().Stats()
	if st.Requests != 6 || st.Ops != 2 {
		t.Errorf("scheduler stats %+v", st)
	}
}
