package localfs

import (
	"spritelynfs/internal/cache"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/sim"
)

// Media charges simulated disk costs for file system activity, with a
// buffer cache deciding which reads hit memory and which reach the disk.
// The same layer serves two roles:
//
//   - On the server, writes are synchronous (the NFS requirement that data
//     be on stable storage before the RPC returns) and the cache acts as a
//     read cache, the paper's 3.5 Mbyte server buffer cache.
//   - On a client's local disk, data writes are delayed in the cache and
//     flushed by the periodic update daemon or on eviction — the
//     traditional Unix policy the paper compares against. Deleting a file
//     cancels its delayed writes, but structural (metadata) writes still
//     happen, which is why local-disk sort never quite reaches SNFS's
//     infinite-write-delay performance in Table 5-5.
type Media struct {
	store *Store
	d     *disk.Disk
	c     *cache.Cache
	sched *disk.Scheduler
	fsid  uint32

	// MetaBytes is the size charged per structural update (directory
	// block + inode).
	MetaBytes int
	// MetaSync makes metadata updates synchronous (true on servers and
	// for local Unix semantics).
	MetaSync bool
	// Gather enables group commit of synchronous flushes (the server
	// half of write gathering): while the arm is busy with one batch,
	// later COMMIT runs and metadata updates wait and are folded into
	// the next sorted sweep (Disk.WriteBatch), so N concurrent
	// synchronous updates cost ~2 arm sweeps instead of N random
	// operations. Off by default to keep the vintage one-op-per-update
	// behavior of the measured configuration.
	Gather bool

	// group-commit state: a leader drains batches while followers wait
	// on the signal for the sweep that will carry their update.
	gateLeader  bool
	gateWaiters int
	gateSig     *sim.Signal
	// metaPending counts structural updates awaiting the next sweep.
	metaPending int

	// delayed write accounting
	syncedThrough sim.Time
}

// NewMedia wraps store with disk d and a buffer cache of cacheBytes.
func NewMedia(store *Store, d *disk.Disk, fsid uint32, cacheBytes int64) *Media {
	blocks := 0
	if cacheBytes > 0 {
		blocks = int(cacheBytes / int64(store.BlockSize()))
		if blocks < 1 {
			blocks = 1
		}
	}
	return &Media{
		store:     store,
		d:         d,
		c:         cache.New(blocks),
		sched:     disk.NewScheduler(d),
		fsid:      fsid,
		MetaBytes: 512,
		MetaSync:  true,
	}
}

// Store returns the underlying namespace layer.
func (m *Media) Store() *Store { return m.store }

// Disk returns the underlying simulated disk.
func (m *Media) Disk() *disk.Disk { return m.d }

// Cache returns the buffer cache (for stats inspection).
func (m *Media) Cache() *cache.Cache { return m.c }

// Sched returns the write-gathering scheduler (for stats inspection).
func (m *Media) Sched() *disk.Scheduler { return m.sched }

func (m *Media) key(ino uint64, block int64) cache.Key {
	return cache.Key{FS: m.fsid, Ino: ino, Block: block}
}

// blockRange returns the block span [first, last] covering off..off+n-1.
func (m *Media) blockRange(off int64, n int) (int64, int64) {
	bs := int64(m.store.BlockSize())
	if n <= 0 {
		b := off / bs
		return b, b - 1 // empty range
	}
	return off / bs, (off + int64(n) - 1) / bs
}

// ChargeRead charges p for reading n bytes of file ino at off: blocks
// resident in the buffer cache are free, missing blocks pay one disk
// access per contiguous run plus transfer time and become resident.
func (m *Media) ChargeRead(p *sim.Proc, ino uint64, off int64, n int) {
	first, last := m.blockRange(off, n)
	bs := m.store.BlockSize()
	missRun := 0
	flush := func() {
		if missRun > 0 {
			m.d.Read(p, missRun*bs)
			missRun = 0
		}
	}
	for b := first; b <= last; b++ {
		if _, ok := m.c.Lookup(m.key(ino, b)); ok {
			flush()
			continue
		}
		missRun++
		_, evicted := m.c.Insert(m.key(ino, b), nil, bs)
		m.writeBackEvicted(evicted)
	}
	flush()
}

// ChargeWriteSync charges p for a synchronous write of n bytes at off.
// Each file system block pays its own disk access: the vintage Unix FS
// under the server wrote blocks individually with no clustering, which
// is a large part of why synchronous NFS writes hurt (§2.1). The written
// blocks become resident and clean.
func (m *Media) ChargeWriteSync(p *sim.Proc, ino uint64, off int64, n int) {
	first, last := m.blockRange(off, n)
	bs := m.store.BlockSize()
	for b := first; b <= last; b++ {
		m.d.Write(p, bs)
		m.c.MarkClean(m.key(ino, b)) // a sync write also cleans any delayed copy
		_, evicted := m.c.Insert(m.key(ino, b), nil, bs)
		m.writeBackEvicted(evicted)
	}
}

// ChargeWriteDelayed records a delayed write of n bytes at off: the blocks
// become resident and dirty at time now, with no disk activity until a
// sync, an eviction, or cancellation.
func (m *Media) ChargeWriteDelayed(now sim.Time, ino uint64, off int64, n int) {
	first, last := m.blockRange(off, n)
	bs := m.store.BlockSize()
	for b := first; b <= last; b++ {
		k := m.key(ino, b)
		_, evicted := m.c.Insert(k, nil, bs)
		m.c.MarkDirty(k, now)
		m.writeBackEvicted(evicted)
	}
}

// ChargeWriteUnstable records an unstable WRITE (the NFSv3-style fast
// path): the data lands in the server buffer cache, dirty, and the RPC
// may return without any disk activity. Durability comes later, when a
// COMMIT gathers the file's dirty blocks into merged arm operations —
// or never, if the server crashes first, which is why the reply carries
// a write verifier the client checks at COMMIT time.
func (m *Media) ChargeWriteUnstable(now sim.Time, ino uint64, off int64, n int) {
	m.ChargeWriteDelayed(now, ino, off, n)
}

// CommitFile flushes every dirty block of ino through the write-gathering
// scheduler, blocking p for one arm operation per contiguous run instead
// of one per block (the COMMIT half of the unstable-WRITE/COMMIT
// pipeline). It returns the number of blocks made durable.
func (m *Media) CommitFile(p *sim.Proc, ino uint64) int {
	dirty := m.c.DirtyBlocks(m.fsid, ino)
	if len(dirty) == 0 {
		return 0
	}
	for _, b := range dirty {
		m.sched.Enqueue(disk.Req{Ino: ino, Block: b.Key.Block, Bytes: b.Len})
		m.c.MarkClean(b.Key)
	}
	if m.Gather {
		// Group commit: concurrent COMMITs (and metadata updates)
		// share sorted arm sweeps instead of queueing one random
		// operation each.
		m.gatherSync(p)
	} else {
		m.sched.FlushSync(p)
	}
	return len(dirty)
}

// DropDirty models a crash: every dirty buffer — unstable writes that
// were never committed, delayed metadata — vanishes before reaching the
// disk. Residency is dropped too (a rebooted server starts with a cold
// cache). It returns the number of blocks lost; clients holding the
// verifier issued before the crash are expected to redrive that data.
func (m *Media) DropDirty() int {
	lost := 0
	for {
		dirty := m.c.AllDirty()
		if len(dirty) == 0 {
			break
		}
		ino := dirty[0].Key.Ino
		lost += m.c.CancelDirty(m.fsid, ino)
		m.c.InvalidateFile(m.fsid, ino)
	}
	return lost
}

// writeBackEvicted pushes evicted dirty blocks to the disk asynchronously
// (the kernel flushing buffers to reclaim them never blocks the evicting
// process directly in our model; the disk queue delay is what matters).
func (m *Media) writeBackEvicted(evicted []*cache.Block) {
	for _, b := range evicted {
		if b.Dirty {
			m.d.WriteAsync(b.Len, nil)
		}
	}
}

// SyncFile synchronously writes back all dirty blocks of ino, blocking p.
func (m *Media) SyncFile(p *sim.Proc, ino uint64) {
	dirty := m.c.DirtyBlocks(m.fsid, ino)
	if len(dirty) == 0 {
		return
	}
	total := 0
	for _, b := range dirty {
		total += b.Len
		m.c.MarkClean(b.Key)
	}
	m.d.Write(p, total)
}

// SyncOlderThan asynchronously writes back every dirty block dirtied at or
// before cutoff (the update daemon's periodic pass) and returns the number
// of blocks flushed. Contiguous runs within one file coalesce into single
// disk operations, as the real sync path's sorted writes do.
func (m *Media) SyncOlderThan(cutoff sim.Time) int {
	dirty := m.c.DirtyOlderThan(cutoff)
	for _, b := range dirty {
		m.sched.Enqueue(disk.Req{Ino: b.Key.Ino, Block: b.Key.Block, Bytes: b.Len})
		m.c.MarkClean(b.Key)
	}
	m.sched.FlushAsync()
	return len(dirty)
}

// Cancel drops the pending delayed writes of ino (file deleted before
// write-back) and invalidates its residency, returning the number of dirty
// blocks that never reached the disk.
func (m *Media) Cancel(ino uint64) int {
	n := m.c.CancelDirty(m.fsid, ino)
	m.c.InvalidateFile(m.fsid, ino)
	return n
}

// ChargeMeta charges one structural update (create, remove, rename,
// mkdir, directory growth). Synchronous when MetaSync is set, otherwise
// queued asynchronously.
func (m *Media) ChargeMeta(p *sim.Proc) {
	if !m.MetaSync {
		m.d.WriteAsync(m.MetaBytes, nil)
		return
	}
	if !m.Gather {
		m.d.Write(p, m.MetaBytes)
		return
	}
	m.metaPending++
	m.gatherSync(p)
}

// gatherSync is the group-commit gate for synchronous durability in
// Gather mode. The caller has already queued its work (metadata in
// metaPending, data runs in the scheduler). If a leader is at the arm,
// join the next sweep and wait for it to land; otherwise become the
// leader and drain sweeps until nothing new has piled up.
func (m *Media) gatherSync(p *sim.Proc) {
	if m.gateLeader {
		m.gateWaiters++
		m.gateSig.Wait(p)
		return
	}
	m.gateLeader = true
	for {
		sig := m.gateSig
		m.gateSig = sim.NewSignal(p.Kernel())
		m.gateWaiters = 0
		m.flushBatch(p)
		if sig != nil {
			sig.Fire(nil)
		}
		if m.gateWaiters == 0 {
			break
		}
	}
	m.gateLeader = false
}

// flushBatch writes everything pending — queued metadata updates and the
// scheduler's merged data runs — as one sorted arm sweep.
func (m *Media) flushBatch(p *sim.Proc) {
	sizes := make([]int, 0, m.metaPending+4)
	for i := 0; i < m.metaPending; i++ {
		sizes = append(sizes, m.MetaBytes)
	}
	m.metaPending = 0
	sizes = append(sizes, m.sched.RunSizes()...)
	m.d.WriteBatch(p, sizes)
}

// DirtyBlocks reports how many blocks are awaiting write-back.
func (m *Media) DirtyBlocks() int { return m.c.DirtyCount() }
