// Package localfs implements the Unix-like local file system that backs
// both the servers (as the store their NFS/SNFS service code translates
// RPCs into, the role GFS + the Unix FS played in Ultrix) and the
// "local disk" benchmark configuration on clients.
//
// It is split in two layers: Store is the pure inode/namespace layer
// (directories, attributes, file contents), and Media charges simulated
// disk costs and models block residency in a buffer cache, so reads that
// hit in memory are free while synchronous writes pay the full
// access-plus-transfer price the paper's analysis turns on.
package localfs

import (
	"errors"
	"fmt"

	"spritelynfs/internal/sim"
)

// FileType distinguishes regular files from directories.
type FileType uint32

// File types.
const (
	TypeRegular FileType = iota + 1
	TypeDirectory
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDirectory:
		return "dir"
	case TypeSymlink:
		return "symlink"
	}
	return fmt.Sprintf("FileType(%d)", uint32(t))
}

// Namespace and file errors. The NFS server maps these onto wire status
// codes.
var (
	ErrNoEnt    = errors.New("localfs: no such file or directory")
	ErrExist    = errors.New("localfs: file exists")
	ErrNotDir   = errors.New("localfs: not a directory")
	ErrIsDir    = errors.New("localfs: is a directory")
	ErrNotEmpty = errors.New("localfs: directory not empty")
	ErrStale    = errors.New("localfs: stale file handle")
	ErrInval    = errors.New("localfs: invalid argument")
)

// Attr is the attribute record for an inode (the paper's "attributes
// record", what NFS getattr returns).
type Attr struct {
	Ino    uint64
	Gen    uint32
	Type   FileType
	Mode   uint32
	Nlink  uint32
	Size   int64
	Blocks int64 // allocated blocks, from Size and the block size
	Atime  sim.Time
	Mtime  sim.Time
	Ctime  sim.Time
}

// Dirent is one directory entry.
type Dirent struct {
	Name string
	Ino  uint64
}

// inode is the in-memory on-"disk" object.
type inode struct {
	attr    Attr
	data    []byte            // regular files
	entries map[string]uint64 // directories
	names   []string          // directory entry order for readdir
	parent  uint64            // directories: parent inode
	target  string            // symlinks
}

// Store is the inode and namespace layer.
type Store struct {
	clock     func() sim.Time
	blockSize int
	inodes    map[uint64]*inode
	nextIno   uint64
	nextGen   uint32
	root      uint64
}

// NewStore returns a store with an empty root directory. clock supplies
// timestamps (typically Kernel.Now); blockSize is the natural file system
// block size (the paper's tests used 4 kbytes).
func NewStore(clock func() sim.Time, blockSize int) *Store {
	if blockSize <= 0 {
		blockSize = 4096
	}
	s := &Store{
		clock:     clock,
		blockSize: blockSize,
		inodes:    make(map[uint64]*inode),
	}
	root := s.alloc(TypeDirectory, 0o755)
	root.parent = root.attr.Ino
	s.root = root.attr.Ino
	return s
}

// BlockSize returns the file system block size.
func (s *Store) BlockSize() int { return s.blockSize }

// Root returns the root directory's inode number.
func (s *Store) Root() uint64 { return s.root }

// NumInodes reports how many inodes exist (including the root).
func (s *Store) NumInodes() int { return len(s.inodes) }

func (s *Store) alloc(t FileType, mode uint32) *inode {
	s.nextIno++
	s.nextGen++
	now := s.clock()
	in := &inode{
		attr: Attr{
			Ino:   s.nextIno,
			Gen:   s.nextGen,
			Type:  t,
			Mode:  mode,
			Nlink: 1,
			Atime: now,
			Mtime: now,
			Ctime: now,
		},
	}
	if t == TypeDirectory {
		in.entries = make(map[string]uint64)
		in.attr.Nlink = 2
	}
	s.inodes[in.attr.Ino] = in
	return in
}

func (s *Store) get(ino uint64) (*inode, error) {
	in, ok := s.inodes[ino]
	if !ok {
		return nil, fmt.Errorf("%w: inode %d", ErrStale, ino)
	}
	return in, nil
}

func (s *Store) getDir(ino uint64) (*inode, error) {
	in, err := s.get(ino)
	if err != nil {
		return nil, err
	}
	if in.attr.Type != TypeDirectory {
		return nil, ErrNotDir
	}
	return in, nil
}

// GetAttr returns the attributes of ino.
func (s *Store) GetAttr(ino uint64) (Attr, error) {
	in, err := s.get(ino)
	if err != nil {
		return Attr{}, err
	}
	a := in.attr
	a.Blocks = s.blocksFor(a.Size)
	return a, nil
}

func (s *Store) blocksFor(size int64) int64 {
	bs := int64(s.blockSize)
	return (size + bs - 1) / bs
}

// Lookup resolves one name component in directory dir.
func (s *Store) Lookup(dir uint64, name string) (Attr, error) {
	d, err := s.getDir(dir)
	if err != nil {
		return Attr{}, err
	}
	switch name {
	case ".", "":
		return s.GetAttr(dir)
	case "..":
		return s.GetAttr(d.parent)
	}
	ino, ok := d.entries[name]
	if !ok {
		return Attr{}, fmt.Errorf("%w: %q", ErrNoEnt, name)
	}
	return s.GetAttr(ino)
}

func validName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("%w: name %q", ErrInval, name)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("%w: name %q", ErrInval, name)
		}
	}
	return nil
}

// Create makes a regular file name in dir. If the name already exists and
// is a regular file, it is truncated to zero length (Unix open-with-
// O_CREAT|O_TRUNC semantics, which is what the NFS create procedure
// provides); the number of data blocks discarded is returned so the
// caller can cancel pending writes.
func (s *Store) Create(dir uint64, name string, mode uint32) (Attr, error) {
	if err := validName(name); err != nil {
		return Attr{}, err
	}
	d, err := s.getDir(dir)
	if err != nil {
		return Attr{}, err
	}
	if existing, ok := d.entries[name]; ok {
		in, err := s.get(existing)
		if err != nil {
			return Attr{}, err
		}
		if in.attr.Type == TypeDirectory {
			return Attr{}, ErrIsDir
		}
		in.data = nil
		in.attr.Size = 0
		now := s.clock()
		in.attr.Mtime = now
		in.attr.Ctime = now
		return s.GetAttr(existing)
	}
	in := s.alloc(TypeRegular, mode)
	d.entries[name] = in.attr.Ino
	d.names = append(d.names, name)
	now := s.clock()
	d.attr.Mtime = now
	d.attr.Ctime = now
	return s.GetAttr(in.attr.Ino)
}

// Mkdir makes a directory name in dir.
func (s *Store) Mkdir(dir uint64, name string, mode uint32) (Attr, error) {
	if err := validName(name); err != nil {
		return Attr{}, err
	}
	d, err := s.getDir(dir)
	if err != nil {
		return Attr{}, err
	}
	if _, ok := d.entries[name]; ok {
		return Attr{}, fmt.Errorf("%w: %q", ErrExist, name)
	}
	in := s.alloc(TypeDirectory, mode)
	in.parent = dir
	d.entries[name] = in.attr.Ino
	d.names = append(d.names, name)
	d.attr.Nlink++
	now := s.clock()
	d.attr.Mtime = now
	d.attr.Ctime = now
	return s.GetAttr(in.attr.Ino)
}

// Remove unlinks regular file name from dir, returning the attributes it
// had (so callers can cancel delayed writes for its blocks).
func (s *Store) Remove(dir uint64, name string) (Attr, error) {
	if err := validName(name); err != nil {
		return Attr{}, err
	}
	d, err := s.getDir(dir)
	if err != nil {
		return Attr{}, err
	}
	ino, ok := d.entries[name]
	if !ok {
		return Attr{}, fmt.Errorf("%w: %q", ErrNoEnt, name)
	}
	in, err := s.get(ino)
	if err != nil {
		return Attr{}, err
	}
	if in.attr.Type == TypeDirectory {
		return Attr{}, ErrIsDir
	}
	attr := in.attr
	attr.Blocks = s.blocksFor(attr.Size)
	s.unlink(d, name)
	in.attr.Nlink--
	if in.attr.Nlink == 0 {
		delete(s.inodes, ino)
	}
	return attr, nil
}

// Rmdir removes empty directory name from dir.
func (s *Store) Rmdir(dir uint64, name string) error {
	if err := validName(name); err != nil {
		return err
	}
	d, err := s.getDir(dir)
	if err != nil {
		return err
	}
	ino, ok := d.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoEnt, name)
	}
	in, err := s.get(ino)
	if err != nil {
		return err
	}
	if in.attr.Type != TypeDirectory {
		return ErrNotDir
	}
	if len(in.entries) != 0 {
		return ErrNotEmpty
	}
	s.unlink(d, name)
	d.attr.Nlink--
	delete(s.inodes, ino)
	return nil
}

func (s *Store) unlink(d *inode, name string) {
	delete(d.entries, name)
	for i, n := range d.names {
		if n == name {
			d.names = append(d.names[:i], d.names[i+1:]...)
			break
		}
	}
	now := s.clock()
	d.attr.Mtime = now
	d.attr.Ctime = now
}

// Rename moves srcName in srcDir to dstName in dstDir, replacing any
// existing regular file at the destination.
func (s *Store) Rename(srcDir uint64, srcName string, dstDir uint64, dstName string) error {
	if err := validName(srcName); err != nil {
		return err
	}
	if err := validName(dstName); err != nil {
		return err
	}
	sd, err := s.getDir(srcDir)
	if err != nil {
		return err
	}
	dd, err := s.getDir(dstDir)
	if err != nil {
		return err
	}
	ino, ok := sd.entries[srcName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoEnt, srcName)
	}
	moving, err := s.get(ino)
	if err != nil {
		return err
	}
	if existing, ok := dd.entries[dstName]; ok {
		if existing == ino {
			return nil
		}
		ex, err := s.get(existing)
		if err != nil {
			return err
		}
		if ex.attr.Type == TypeDirectory {
			if moving.attr.Type != TypeDirectory {
				return ErrIsDir
			}
			if len(ex.entries) != 0 {
				return ErrNotEmpty
			}
			dd.attr.Nlink--
		} else if moving.attr.Type == TypeDirectory {
			return ErrNotDir
		}
		s.unlink(dd, dstName)
		ex.attr.Nlink--
		if ex.attr.Nlink == 0 || ex.attr.Type == TypeDirectory {
			delete(s.inodes, existing)
		}
	}
	s.unlink(sd, srcName)
	dd.entries[dstName] = ino
	dd.names = append(dd.names, dstName)
	now := s.clock()
	dd.attr.Mtime = now
	dd.attr.Ctime = now
	if moving.attr.Type == TypeDirectory && srcDir != dstDir {
		moving.parent = dstDir
		sd.attr.Nlink--
		dd.attr.Nlink++
	}
	return nil
}

// ReadAt reads up to n bytes of file ino at offset off. Reads at or past
// end-of-file return an empty slice.
func (s *Store) ReadAt(ino uint64, off int64, n int) ([]byte, error) {
	in, err := s.get(ino)
	if err != nil {
		return nil, err
	}
	if in.attr.Type == TypeDirectory {
		return nil, ErrIsDir
	}
	if off < 0 || n < 0 {
		return nil, ErrInval
	}
	if off >= in.attr.Size {
		return nil, nil
	}
	end := off + int64(n)
	if end > in.attr.Size {
		end = in.attr.Size
	}
	out := make([]byte, end-off)
	copy(out, in.data[off:end])
	return out, nil
}

// WriteAt writes data to file ino at offset off, extending it as needed,
// and returns the resulting attributes.
func (s *Store) WriteAt(ino uint64, off int64, data []byte) (Attr, error) {
	in, err := s.get(ino)
	if err != nil {
		return Attr{}, err
	}
	if in.attr.Type == TypeDirectory {
		return Attr{}, ErrIsDir
	}
	if off < 0 {
		return Attr{}, ErrInval
	}
	end := off + int64(len(data))
	if end > int64(len(in.data)) {
		grown := make([]byte, end)
		copy(grown, in.data)
		in.data = grown
	}
	copy(in.data[off:end], data)
	if end > in.attr.Size {
		in.attr.Size = end
	}
	now := s.clock()
	in.attr.Mtime = now
	in.attr.Ctime = now
	return s.GetAttr(ino)
}

// Truncate sets the file's size, discarding or zero-extending contents.
func (s *Store) Truncate(ino uint64, size int64) (Attr, error) {
	in, err := s.get(ino)
	if err != nil {
		return Attr{}, err
	}
	if in.attr.Type == TypeDirectory {
		return Attr{}, ErrIsDir
	}
	if size < 0 {
		return Attr{}, ErrInval
	}
	if size <= int64(len(in.data)) {
		in.data = in.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, in.data)
		in.data = grown
	}
	in.attr.Size = size
	now := s.clock()
	in.attr.Mtime = now
	in.attr.Ctime = now
	return s.GetAttr(ino)
}

// SetMode changes the permission bits.
func (s *Store) SetMode(ino uint64, mode uint32) (Attr, error) {
	in, err := s.get(ino)
	if err != nil {
		return Attr{}, err
	}
	in.attr.Mode = mode
	in.attr.Ctime = s.clock()
	return s.GetAttr(ino)
}

// Link creates a hard link name in dir to the inode of src (nlink++).
func (s *Store) Link(dir uint64, name string, src uint64) (Attr, error) {
	if err := validName(name); err != nil {
		return Attr{}, err
	}
	d, err := s.getDir(dir)
	if err != nil {
		return Attr{}, err
	}
	in, err := s.get(src)
	if err != nil {
		return Attr{}, err
	}
	if in.attr.Type == TypeDirectory {
		return Attr{}, ErrIsDir // no hard links to directories
	}
	if _, ok := d.entries[name]; ok {
		return Attr{}, fmt.Errorf("%w: %q", ErrExist, name)
	}
	d.entries[name] = src
	d.names = append(d.names, name)
	in.attr.Nlink++
	now := s.clock()
	in.attr.Ctime = now
	d.attr.Mtime = now
	d.attr.Ctime = now
	return s.GetAttr(src)
}

// Symlink creates a symbolic link name in dir pointing at target.
func (s *Store) Symlink(dir uint64, name, target string) (Attr, error) {
	if err := validName(name); err != nil {
		return Attr{}, err
	}
	d, err := s.getDir(dir)
	if err != nil {
		return Attr{}, err
	}
	if _, ok := d.entries[name]; ok {
		return Attr{}, fmt.Errorf("%w: %q", ErrExist, name)
	}
	in := s.alloc(TypeSymlink, 0o777)
	in.target = target
	in.attr.Size = int64(len(target))
	d.entries[name] = in.attr.Ino
	d.names = append(d.names, name)
	now := s.clock()
	d.attr.Mtime = now
	d.attr.Ctime = now
	return s.GetAttr(in.attr.Ino)
}

// Readlink returns the target of symlink ino.
func (s *Store) Readlink(ino uint64) (string, error) {
	in, err := s.get(ino)
	if err != nil {
		return "", err
	}
	if in.attr.Type != TypeSymlink {
		return "", ErrInval
	}
	return in.target, nil
}

// Readdir lists directory dir in creation order.
func (s *Store) Readdir(dir uint64) ([]Dirent, error) {
	d, err := s.getDir(dir)
	if err != nil {
		return nil, err
	}
	out := make([]Dirent, 0, len(d.names))
	for _, name := range d.names {
		out = append(out, Dirent{Name: name, Ino: d.entries[name]})
	}
	return out, nil
}

// TotalBytes reports the sum of all regular file sizes (for statfs).
func (s *Store) TotalBytes() int64 {
	var total int64
	for _, in := range s.inodes {
		if in.attr.Type == TypeRegular {
			total += in.attr.Size
		}
	}
	return total
}
