package localfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"spritelynfs/internal/sim"
)

func newTestStore() (*Store, *sim.Time) {
	now := new(sim.Time)
	return NewStore(func() sim.Time { return *now }, 4096), now
}

func TestCreateLookupReadWrite(t *testing.T) {
	s, _ := newTestStore()
	a, err := s.Create(s.Root(), "hello.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if a.Type != TypeRegular || a.Size != 0 {
		t.Errorf("attr %+v", a)
	}
	if _, err := s.WriteAt(a.Ino, 0, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAt(a.Ino, 0, 100)
	if err != nil || string(got) != "hello world" {
		t.Errorf("read %q, %v", got, err)
	}
	la, err := s.Lookup(s.Root(), "hello.txt")
	if err != nil || la.Ino != a.Ino {
		t.Errorf("lookup %+v, %v", la, err)
	}
	if la.Size != 11 {
		t.Errorf("size %d", la.Size)
	}
}

func TestLookupMissing(t *testing.T) {
	s, _ := newTestStore()
	_, err := s.Lookup(s.Root(), "nope")
	if !errors.Is(err, ErrNoEnt) {
		t.Errorf("err = %v", err)
	}
}

func TestLookupDotAndDotDot(t *testing.T) {
	s, _ := newTestStore()
	d, _ := s.Mkdir(s.Root(), "sub", 0o755)
	if a, err := s.Lookup(d.Ino, "."); err != nil || a.Ino != d.Ino {
		t.Errorf("dot: %+v, %v", a, err)
	}
	if a, err := s.Lookup(d.Ino, ".."); err != nil || a.Ino != s.Root() {
		t.Errorf("dotdot: %+v, %v", a, err)
	}
}

func TestWriteExtendsAndOverwrites(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "f", 0o644)
	s.WriteAt(a.Ino, 5, []byte("world"))
	got, _ := s.ReadAt(a.Ino, 0, 10)
	want := append(make([]byte, 5), []byte("world")...)
	if !bytes.Equal(got, want) {
		t.Errorf("sparse write: %q", got)
	}
	s.WriteAt(a.Ino, 0, []byte("hello"))
	got, _ = s.ReadAt(a.Ino, 0, 10)
	if string(got) != "helloworld" {
		t.Errorf("overwrite: %q", got)
	}
}

func TestReadPastEOF(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "f", 0o644)
	s.WriteAt(a.Ino, 0, []byte("abc"))
	if got, err := s.ReadAt(a.Ino, 3, 10); err != nil || len(got) != 0 {
		t.Errorf("read at EOF: %q, %v", got, err)
	}
	if got, _ := s.ReadAt(a.Ino, 2, 10); string(got) != "c" {
		t.Errorf("partial read: %q", got)
	}
}

func TestCreateExistingTruncates(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "f", 0o644)
	s.WriteAt(a.Ino, 0, []byte("contents"))
	a2, err := s.Create(s.Root(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Ino != a.Ino {
		t.Error("create of existing file allocated a new inode")
	}
	if a2.Size != 0 {
		t.Errorf("size after re-create %d, want 0", a2.Size)
	}
}

func TestCreateOverDirectoryFails(t *testing.T) {
	s, _ := newTestStore()
	s.Mkdir(s.Root(), "d", 0o755)
	if _, err := s.Create(s.Root(), "d", 0o644); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "f", 0o644)
	s.WriteAt(a.Ino, 0, make([]byte, 10000))
	removed, err := s.Remove(s.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if removed.Blocks != 3 { // 10000 bytes / 4096 = 3 blocks
		t.Errorf("removed %d blocks, want 3", removed.Blocks)
	}
	if _, err := s.Lookup(s.Root(), "f"); !errors.Is(err, ErrNoEnt) {
		t.Error("file still visible")
	}
	if _, err := s.GetAttr(a.Ino); !errors.Is(err, ErrStale) {
		t.Error("inode still accessible after unlink")
	}
}

func TestRemoveDirectoryFails(t *testing.T) {
	s, _ := newTestStore()
	s.Mkdir(s.Root(), "d", 0o755)
	if _, err := s.Remove(s.Root(), "d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v", err)
	}
}

func TestRmdir(t *testing.T) {
	s, _ := newTestStore()
	d, _ := s.Mkdir(s.Root(), "d", 0o755)
	s.Create(d.Ino, "f", 0o644)
	if err := s.Rmdir(s.Root(), "d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("rmdir non-empty: %v", err)
	}
	s.Remove(d.Ino, "f")
	if err := s.Rmdir(s.Root(), "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(s.Root(), "d"); !errors.Is(err, ErrNoEnt) {
		t.Error("dir still visible")
	}
}

func TestRenameBasic(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "old", 0o644)
	s.WriteAt(a.Ino, 0, []byte("data"))
	d, _ := s.Mkdir(s.Root(), "sub", 0o755)
	if err := s.Rename(s.Root(), "old", d.Ino, "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(s.Root(), "old"); !errors.Is(err, ErrNoEnt) {
		t.Error("source still visible")
	}
	la, err := s.Lookup(d.Ino, "new")
	if err != nil || la.Ino != a.Ino {
		t.Errorf("dest lookup %+v, %v", la, err)
	}
}

func TestRenameReplacesExisting(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "src", 0o644)
	b, _ := s.Create(s.Root(), "dst", 0o644)
	if err := s.Rename(s.Root(), "src", s.Root(), "dst"); err != nil {
		t.Fatal(err)
	}
	la, _ := s.Lookup(s.Root(), "dst")
	if la.Ino != a.Ino {
		t.Error("dest not replaced")
	}
	if _, err := s.GetAttr(b.Ino); !errors.Is(err, ErrStale) {
		t.Error("replaced inode not freed")
	}
}

func TestTruncate(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "f", 0o644)
	s.WriteAt(a.Ino, 0, []byte("hello world"))
	na, err := s.Truncate(a.Ino, 5)
	if err != nil || na.Size != 5 {
		t.Fatalf("truncate: %+v, %v", na, err)
	}
	got, _ := s.ReadAt(a.Ino, 0, 100)
	if string(got) != "hello" {
		t.Errorf("after shrink: %q", got)
	}
	na, _ = s.Truncate(a.Ino, 8)
	got, _ = s.ReadAt(a.Ino, 0, 100)
	if !bytes.Equal(got, []byte("hello\x00\x00\x00")) {
		t.Errorf("after grow: %q", got)
	}
}

func TestMtimeAdvancesOnWrite(t *testing.T) {
	s, now := newTestStore()
	a, _ := s.Create(s.Root(), "f", 0o644)
	*now = sim.Time(10 * sim.Second)
	s.WriteAt(a.Ino, 0, []byte("x"))
	ga, _ := s.GetAttr(a.Ino)
	if ga.Mtime != sim.Time(10*sim.Second) {
		t.Errorf("mtime %v", ga.Mtime)
	}
}

func TestReaddirOrder(t *testing.T) {
	s, _ := newTestStore()
	names := []string{"c", "a", "b"}
	for _, n := range names {
		s.Create(s.Root(), n, 0o644)
	}
	ents, err := s.Readdir(s.Root())
	if err != nil || len(ents) != 3 {
		t.Fatalf("readdir %v, %v", ents, err)
	}
	for i, e := range ents {
		if e.Name != names[i] {
			t.Errorf("entry %d = %q, want creation order %q", i, e.Name, names[i])
		}
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s, _ := newTestStore()
	for _, name := range []string{"", ".", "..", "a/b", "nul\x00"} {
		if _, err := s.Create(s.Root(), name, 0o644); !errors.Is(err, ErrInval) {
			t.Errorf("Create(%q) err = %v, want ErrInval", name, err)
		}
	}
}

func TestGenerationsDistinct(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "f", 0o644)
	s.Remove(s.Root(), "f")
	b, _ := s.Create(s.Root(), "f", 0o644)
	if a.Ino == b.Ino && a.Gen == b.Gen {
		t.Error("recreated file has identical (ino, gen); stale handles undetectable")
	}
}

func TestNlinkAccounting(t *testing.T) {
	s, _ := newTestStore()
	root, _ := s.GetAttr(s.Root())
	if root.Nlink != 2 {
		t.Errorf("fresh root nlink %d", root.Nlink)
	}
	s.Mkdir(s.Root(), "a", 0o755)
	s.Mkdir(s.Root(), "b", 0o755)
	root, _ = s.GetAttr(s.Root())
	if root.Nlink != 4 {
		t.Errorf("root nlink %d after two mkdirs, want 4", root.Nlink)
	}
	s.Rmdir(s.Root(), "a")
	root, _ = s.GetAttr(s.Root())
	if root.Nlink != 3 {
		t.Errorf("root nlink %d after rmdir, want 3", root.Nlink)
	}
}

// Property: a random sequence of creates/removes in one directory keeps
// Readdir consistent with the set of live names.
func TestQuickNamespaceConsistency(t *testing.T) {
	type op struct {
		Create bool
		Which  uint8
	}
	names := []string{"a", "b", "c", "d", "e"}
	f := func(ops []op) bool {
		s, _ := newTestStore()
		live := map[string]bool{}
		for _, o := range ops {
			n := names[int(o.Which)%len(names)]
			if o.Create {
				if _, err := s.Create(s.Root(), n, 0o644); err != nil {
					return false
				}
				live[n] = true
			} else {
				_, err := s.Remove(s.Root(), n)
				if live[n] != (err == nil) {
					return false
				}
				delete(live, n)
			}
		}
		ents, err := s.Readdir(s.Root())
		if err != nil || len(ents) != len(live) {
			return false
		}
		for _, e := range ents {
			if !live[e.Name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTotalBytes(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "f", 0o644)
	s.WriteAt(a.Ino, 0, make([]byte, 1000))
	b, _ := s.Create(s.Root(), "g", 0o644)
	s.WriteAt(b.Ino, 0, make([]byte, 500))
	if tb := s.TotalBytes(); tb != 1500 {
		t.Errorf("TotalBytes = %d", tb)
	}
}

// Property: random WriteAt/Truncate sequences leave file contents equal
// to a plain byte-slice model.
func TestQuickFileContentModel(t *testing.T) {
	type op struct {
		Write bool
		Off   uint16
		Len   uint8
		Trunc uint16
		Byte  byte
	}
	f := func(ops []op) bool {
		s, _ := newTestStore()
		a, err := s.Create(s.Root(), "f", 0o644)
		if err != nil {
			return false
		}
		var model []byte
		for _, o := range ops {
			if o.Write {
				data := bytes.Repeat([]byte{o.Byte}, int(o.Len))
				if _, err := s.WriteAt(a.Ino, int64(o.Off), data); err != nil {
					return false
				}
				end := int(o.Off) + len(data)
				if end > len(model) {
					grown := make([]byte, end)
					copy(grown, model)
					model = grown
				}
				copy(model[o.Off:end], data)
			} else {
				size := int(o.Trunc) % 40000
				if _, err := s.Truncate(a.Ino, int64(size)); err != nil {
					return false
				}
				if size <= len(model) {
					model = model[:size]
				} else {
					grown := make([]byte, size)
					copy(grown, model)
					model = grown
				}
			}
		}
		got, err := s.ReadAt(a.Ino, 0, len(model)+100)
		if err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHardLinks(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "orig", 0o644)
	s.WriteAt(a.Ino, 0, []byte("shared bytes"))
	la, err := s.Link(s.Root(), "alias", a.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if la.Ino != a.Ino || la.Nlink != 2 {
		t.Errorf("link attr %+v", la)
	}
	// Content visible through both names.
	aliasAttr, _ := s.Lookup(s.Root(), "alias")
	got, _ := s.ReadAt(aliasAttr.Ino, 0, 100)
	if string(got) != "shared bytes" {
		t.Errorf("alias content %q", got)
	}
	// Removing one name keeps the inode alive.
	if _, err := s.Remove(s.Root(), "orig"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetAttr(a.Ino); err != nil {
		t.Error("inode freed while a link remains")
	}
	ga, _ := s.GetAttr(a.Ino)
	if ga.Nlink != 1 {
		t.Errorf("nlink %d after one unlink", ga.Nlink)
	}
	// Removing the last name frees it.
	if _, err := s.Remove(s.Root(), "alias"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetAttr(a.Ino); err == nil {
		t.Error("inode survives last unlink")
	}
}

func TestHardLinkRestrictions(t *testing.T) {
	s, _ := newTestStore()
	d, _ := s.Mkdir(s.Root(), "d", 0o755)
	if _, err := s.Link(s.Root(), "dlink", d.Ino); !errors.Is(err, ErrIsDir) {
		t.Errorf("hard link to directory: %v", err)
	}
	a, _ := s.Create(s.Root(), "f", 0o644)
	if _, err := s.Link(s.Root(), "f", a.Ino); !errors.Is(err, ErrExist) {
		t.Errorf("link over existing name: %v", err)
	}
}

func TestSymlinks(t *testing.T) {
	s, _ := newTestStore()
	a, _ := s.Create(s.Root(), "real", 0o644)
	_ = a
	la, err := s.Symlink(s.Root(), "sym", "real")
	if err != nil {
		t.Fatal(err)
	}
	if la.Type != TypeSymlink || la.Size != int64(len("real")) {
		t.Errorf("symlink attr %+v", la)
	}
	target, err := s.Readlink(la.Ino)
	if err != nil || target != "real" {
		t.Errorf("readlink %q, %v", target, err)
	}
	// Readlink of a non-symlink fails.
	if _, err := s.Readlink(a.Ino); !errors.Is(err, ErrInval) {
		t.Errorf("readlink of file: %v", err)
	}
	// Symlinks are removable.
	if _, err := s.Remove(s.Root(), "sym"); err != nil {
		t.Errorf("remove symlink: %v", err)
	}
}
