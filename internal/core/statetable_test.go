package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spritelynfs/internal/proto"
)

var fh = proto.Handle{FSID: 1, Ino: 42, Gen: 1}

func TestOpenReadFromClosed(t *testing.T) {
	tab := NewTable(0)
	res := tab.Open(fh, "A", false)
	if !res.CacheEnabled || len(res.Callbacks) != 0 {
		t.Errorf("res %+v", res)
	}
	if tab.State(fh) != StateOneReader {
		t.Errorf("state %v", tab.State(fh))
	}
}

func TestOpenWriteFromClosedBumpsVersion(t *testing.T) {
	tab := NewTable(0)
	res := tab.Open(fh, "A", true)
	if !res.CacheEnabled || res.Version == 0 || res.Version == res.PrevVersion {
		t.Errorf("res %+v", res)
	}
	if tab.State(fh) != StateOneWriter {
		t.Errorf("state %v", tab.State(fh))
	}
}

func TestSingleWriterLifecycle(t *testing.T) {
	// Write, close, reopen by the same client: cache stays valid via
	// the version numbers; no callbacks ever.
	tab := NewTable(0)
	r1 := tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	if tab.State(fh) != StateClosedDirty {
		t.Fatalf("after close: %v", tab.State(fh))
	}
	if tab.LastWriter(fh) != "A" {
		t.Errorf("last writer %q", tab.LastWriter(fh))
	}
	r2 := tab.Open(fh, "A", false)
	if len(r2.Callbacks) != 0 {
		t.Errorf("reopen by last writer should not need callbacks: %+v", r2.Callbacks)
	}
	if r2.Version != r1.Version {
		t.Errorf("read reopen changed version %d -> %d", r1.Version, r2.Version)
	}
	if tab.State(fh) != StateOneRdrDirty {
		t.Errorf("state %v, want ONE-RDR-DIRTY", tab.State(fh))
	}
}

func TestClosedDirtyOtherReaderForcesWriteback(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	res := tab.Open(fh, "B", false)
	if len(res.Callbacks) != 1 {
		t.Fatalf("callbacks %+v", res.Callbacks)
	}
	cb := res.Callbacks[0]
	if cb.Client != "A" || !cb.WriteBack || cb.Invalidate {
		t.Errorf("callback %+v, want writeback-only to A", cb)
	}
	if !res.CacheEnabled {
		t.Error("B should be allowed to cache")
	}
	if tab.State(fh) != StateOneReader {
		t.Errorf("state %v", tab.State(fh))
	}
	if tab.LastWriter(fh) != "" {
		t.Error("last writer not cleared after writeback")
	}
}

func TestClosedDirtyOtherWriterBumpsAndFlushes(t *testing.T) {
	tab := NewTable(0)
	r1 := tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	res := tab.Open(fh, "B", true)
	if len(res.Callbacks) != 1 || res.Callbacks[0].Client != "A" || !res.Callbacks[0].WriteBack {
		t.Fatalf("callbacks %+v", res.Callbacks)
	}
	if res.Version <= r1.Version || res.PrevVersion != r1.Version {
		t.Errorf("versions: r1=%d res=%+v", r1.Version, res)
	}
	if tab.State(fh) != StateOneWriter {
		t.Errorf("state %v", tab.State(fh))
	}
}

func TestTwoReadersNoCallbacks(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	res := tab.Open(fh, "B", false)
	if len(res.Callbacks) != 0 || !res.CacheEnabled {
		t.Errorf("res %+v", res)
	}
	if tab.State(fh) != StateMultReaders {
		t.Errorf("state %v", tab.State(fh))
	}
}

func TestReaderThenWriterInvalidatesReader(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	res := tab.Open(fh, "B", true)
	if res.CacheEnabled {
		t.Error("writer must not cache a write-shared file")
	}
	if len(res.Callbacks) != 1 {
		t.Fatalf("callbacks %+v", res.Callbacks)
	}
	cb := res.Callbacks[0]
	if cb.Client != "A" || !cb.Invalidate || cb.WriteBack {
		t.Errorf("callback %+v, want invalidate-only to A", cb)
	}
	if tab.State(fh) != StateWriteShared {
		t.Errorf("state %v", tab.State(fh))
	}
	if n := len(tab.CachingClients(fh)); n != 0 {
		t.Errorf("%d clients still caching a write-shared file", n)
	}
}

func TestWriterThenReaderFlushesAndInvalidatesWriter(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	res := tab.Open(fh, "B", false)
	if res.CacheEnabled {
		t.Error("reader of write-shared file must not cache")
	}
	if len(res.Callbacks) != 1 {
		t.Fatalf("callbacks %+v", res.Callbacks)
	}
	cb := res.Callbacks[0]
	if cb.Client != "A" || !cb.WriteBack || !cb.Invalidate {
		t.Errorf("callback %+v, want writeback+invalidate to A", cb)
	}
	if tab.State(fh) != StateWriteShared {
		t.Errorf("state %v", tab.State(fh))
	}
}

func TestMultReadersThenWriterInvalidatesAll(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	tab.Open(fh, "B", false)
	res := tab.Open(fh, "C", true)
	if len(res.Callbacks) != 2 {
		t.Fatalf("callbacks %+v, want 2 invalidates", res.Callbacks)
	}
	targets := map[ClientID]bool{}
	for _, cb := range res.Callbacks {
		if !cb.Invalidate || cb.WriteBack {
			t.Errorf("callback %+v", cb)
		}
		targets[cb.Client] = true
	}
	if !targets["A"] || !targets["B"] {
		t.Errorf("targets %v", targets)
	}
}

func TestExistingReaderUpgradesToWriterSameClient(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	res := tab.Open(fh, "A", true)
	if !res.CacheEnabled || len(res.Callbacks) != 0 {
		t.Errorf("same-client upgrade: %+v", res)
	}
	if tab.State(fh) != StateOneWriter {
		t.Errorf("state %v", tab.State(fh))
	}
}

func TestExistingReaderInMultUpgradesToWriteShared(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	tab.Open(fh, "B", false)
	res := tab.Open(fh, "A", true) // A already reads; now writes
	if res.CacheEnabled {
		t.Error("A must not cache")
	}
	// Only B needs a callback; A learns from the open reply.
	if len(res.Callbacks) != 1 || res.Callbacks[0].Client != "B" {
		t.Errorf("callbacks %+v", res.Callbacks)
	}
	if tab.State(fh) != StateWriteShared {
		t.Errorf("state %v", tab.State(fh))
	}
}

func TestRepeatOpensNoTransition(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	tab.Open(fh, "A", false)
	if tab.State(fh) != StateOneReader {
		t.Errorf("state %v", tab.State(fh))
	}
	r, w := tab.OpenCounts(fh)
	if r != 2 || w != 0 {
		t.Errorf("counts %d/%d", r, w)
	}
	tab.Close(fh, "A", false)
	if tab.State(fh) != StateOneReader {
		t.Errorf("state after one close %v", tab.State(fh))
	}
	tab.Close(fh, "A", false)
	if tab.State(fh) != StateClosed {
		t.Errorf("state after final close %v", tab.State(fh))
	}
}

func TestWriterStillReadingAfterWriteClose(t *testing.T) {
	// Table 4-1: ONE-WRITER, final close for write, client still
	// reading -> ONE-RDR-DIRTY, client recorded as last writer.
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	if tab.State(fh) != StateOneRdrDirty {
		t.Errorf("state %v, want ONE-RDR-DIRTY", tab.State(fh))
	}
	if tab.LastWriter(fh) != "A" {
		t.Errorf("last writer %q", tab.LastWriter(fh))
	}
}

func TestOneRdrDirtyOtherReader(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	tab.Open(fh, "A", false) // ONE-RDR-DIRTY
	res := tab.Open(fh, "B", false)
	if len(res.Callbacks) != 1 || !res.Callbacks[0].WriteBack || res.Callbacks[0].Invalidate {
		t.Fatalf("callbacks %+v, want writeback-only", res.Callbacks)
	}
	if !res.CacheEnabled || tab.State(fh) != StateMultReaders {
		t.Errorf("res %+v state %v", res, tab.State(fh))
	}
}

func TestOneRdrDirtyOtherWriter(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	tab.Open(fh, "A", false) // ONE-RDR-DIRTY
	res := tab.Open(fh, "B", true)
	if len(res.Callbacks) != 1 || !res.Callbacks[0].WriteBack || !res.Callbacks[0].Invalidate {
		t.Fatalf("callbacks %+v, want writeback+invalidate", res.Callbacks)
	}
	if res.CacheEnabled || tab.State(fh) != StateWriteShared {
		t.Errorf("res %+v state %v", res, tab.State(fh))
	}
}

func TestWriteSharedDrainsToClosed(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	tab.Open(fh, "B", false) // write-shared
	tab.Close(fh, "B", false)
	// A alone remains, but was told to stop caching; conservatively the
	// entry stays write-shared until everyone is gone.
	if tab.State(fh) != StateWriteShared {
		t.Errorf("state %v", tab.State(fh))
	}
	tab.Close(fh, "A", true)
	// A was not caching at close time, so no dirty blocks anywhere.
	if tab.State(fh) != StateClosed {
		t.Errorf("state %v, want CLOSED (write-through writer has no dirty)", tab.State(fh))
	}
	if tab.LastWriter(fh) != "" {
		t.Error("write-through writer recorded as last writer")
	}
}

func TestMultReadersDrainToOneReader(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	tab.Open(fh, "B", false)
	tab.Close(fh, "A", false)
	if tab.State(fh) != StateOneReader {
		t.Errorf("state %v", tab.State(fh))
	}
}

func TestVersionMonotonic(t *testing.T) {
	tab := NewTable(0)
	last := uint32(0)
	for i := 0; i < 10; i++ {
		res := tab.Open(fh, "A", true)
		if res.Version <= last {
			t.Fatalf("version %d not above %d", res.Version, last)
		}
		if res.PrevVersion != last && i > 0 {
			t.Fatalf("prev %d, want %d", res.PrevVersion, last)
		}
		last = res.Version
		tab.Close(fh, "A", true)
	}
}

func TestGlobalCounterSharedAcrossFiles(t *testing.T) {
	// §4.3.3: the prototype generates versions from a global counter.
	tab := NewTable(0)
	h2 := proto.Handle{FSID: 1, Ino: 43, Gen: 1}
	r1 := tab.Open(fh, "A", true)
	r2 := tab.Open(h2, "A", true)
	if r1.Version == r2.Version {
		t.Error("two files got the same version from the global counter")
	}
}

func TestDropRemovesEntry(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	tab.Drop(fh)
	if tab.Len() != 0 {
		t.Error("entry survived Drop")
	}
	if tab.State(fh) != StateClosed {
		t.Error("dropped file not CLOSED")
	}
}

func TestClientDeadMarksInconsistent(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	tab.Close(fh, "A", true) // CLOSED-DIRTY, A holds dirty blocks
	affected := tab.ClientDead("A")
	if len(affected) != 1 || affected[0] != fh {
		t.Fatalf("affected %v", affected)
	}
	res := tab.Open(fh, "B", false)
	if !res.Inconsistent {
		t.Error("opener not warned about lost dirty data")
	}
	// Only the first opener is warned.
	tab.Close(fh, "B", false)
	res = tab.Open(fh, "B", false)
	if res.Inconsistent {
		t.Error("second opener warned again")
	}
}

func TestClientDeadWhileWritingOpen(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	tab.ClientDead("A")
	if tab.State(fh) != StateClosed {
		t.Errorf("state %v", tab.State(fh))
	}
	res := tab.Open(fh, "B", false)
	if !res.Inconsistent {
		t.Error("no inconsistency warning after caching writer died")
	}
}

func TestClientDeadReaderHarmless(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", false)
	tab.Open(fh, "B", false)
	tab.ClientDead("A")
	if tab.State(fh) != StateOneReader {
		t.Errorf("state %v", tab.State(fh))
	}
	res := tab.Open(fh, "C", false)
	if res.Inconsistent {
		t.Error("reader death should not warn")
	}
}

func TestTableLimitReclaimsClosedEntries(t *testing.T) {
	tab := NewTable(3)
	handles := make([]proto.Handle, 4)
	for i := range handles {
		handles[i] = proto.Handle{FSID: 1, Ino: uint64(100 + i), Gen: 1}
	}
	// Three files opened and fully closed (clean): they stay as CLOSED
	// entries holding versions.
	for i := 0; i < 3; i++ {
		tab.Open(handles[i], "A", false)
		tab.Close(handles[i], "A", false)
	}
	if tab.Len() != 3 {
		t.Fatalf("len %d", tab.Len())
	}
	// A fourth file forces reclamation of the oldest CLOSED entry.
	res := tab.Open(handles[3], "A", false)
	if res.TableFull {
		t.Fatal("open failed despite reclaimable entries")
	}
	if tab.Len() != 3 {
		t.Errorf("len %d after reclaim", tab.Len())
	}
	if tab.Stats().Reclaims != 1 {
		t.Errorf("reclaims %d", tab.Stats().Reclaims)
	}
}

func TestTableFullWhenAllOpen(t *testing.T) {
	tab := NewTable(2)
	tab.Open(proto.Handle{Ino: 1}, "A", false)
	tab.Open(proto.Handle{Ino: 2}, "A", false)
	res := tab.Open(proto.Handle{Ino: 3}, "A", false)
	if !res.TableFull {
		t.Error("expected TableFull with every entry open")
	}
}

func TestReclaimCandidates(t *testing.T) {
	tab := NewTable(0)
	h2 := proto.Handle{FSID: 1, Ino: 43, Gen: 1}
	tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	tab.Open(h2, "B", true)
	tab.Close(h2, "B", true)
	cbs := tab.ReclaimCandidates(10)
	if len(cbs) != 2 {
		t.Fatalf("candidates %+v", cbs)
	}
	for _, cb := range cbs {
		if !cb.WriteBack {
			t.Errorf("reclaim callback %+v lacks writeback", cb)
		}
		tab.Reclaimed(cb.Handle)
	}
	if tab.State(fh) != StateClosed || tab.State(h2) != StateClosed {
		t.Error("reclaimed entries not CLOSED")
	}
	if tab.LastWriter(fh) != "" {
		t.Error("last writer survives reclamation")
	}
}

func TestRecoverRebuildsState(t *testing.T) {
	tab := NewTable(0)
	tab.Recover(fh, "A", 0, 1, 17, true)
	if tab.State(fh) != StateOneWriter {
		t.Errorf("state %v", tab.State(fh))
	}
	if tab.Version(fh) != 17 {
		t.Errorf("version %d", tab.Version(fh))
	}
	// The global counter must resume above recovered versions.
	res := tab.Open(proto.Handle{Ino: 99}, "B", true)
	if res.Version <= 17 {
		t.Errorf("post-recovery version %d not above 17", res.Version)
	}
}

func TestRecoverWriteSharingDetected(t *testing.T) {
	tab := NewTable(0)
	tab.Recover(fh, "A", 0, 1, 5, false)
	tab.Recover(fh, "B", 1, 0, 5, false)
	if tab.State(fh) != StateWriteShared {
		t.Errorf("state %v, want WRITE-SHARED", tab.State(fh))
	}
	if len(tab.CachingClients(fh)) != 0 {
		t.Error("recovered write-shared file has caching clients")
	}
}

func TestRecoverClosedDirty(t *testing.T) {
	tab := NewTable(0)
	tab.Recover(fh, "A", 0, 0, 7, true)
	if tab.State(fh) != StateClosedDirty || tab.LastWriter(fh) != "A" {
		t.Errorf("state %v lastWriter %q", tab.State(fh), tab.LastWriter(fh))
	}
}

// The paper's correctness claim: no two clients ever have inconsistent
// cached copies. Operationally on the table: whenever any client holds
// the file open for writing, no OTHER client is permitted to cache, and
// if two or more clients have it open with a writer among them, NO client
// caches. Checked across random open/close sequences.
func TestQuickConsistencyInvariant(t *testing.T) {
	type action struct {
		Client uint8
		Write  bool
		Open   bool
	}
	clients := []ClientID{"A", "B", "C"}
	f := func(actions []action, seed int64) bool {
		tab := NewTable(0)
		rng := rand.New(rand.NewSource(seed))
		// Track open handles per (client, mode) so closes are legal.
		type openRec struct {
			c ClientID
			w bool
		}
		var opens []openRec
		for _, a := range actions {
			c := clients[int(a.Client)%len(clients)]
			if a.Open || len(opens) == 0 {
				tab.Open(fh, c, a.Write)
				opens = append(opens, openRec{c, a.Write})
			} else {
				i := rng.Intn(len(opens))
				rec := opens[i]
				opens = append(opens[:i], opens[i+1:]...)
				tab.Close(fh, rec.c, rec.w)
			}

			// Invariant check.
			caching := tab.CachingClients(fh)
			writers := 0
			clientsWithOpen := map[ClientID]bool{}
			for _, rec := range opens {
				clientsWithOpen[rec.c] = true
				if rec.w {
					writers++
				}
			}
			if writers > 0 && len(clientsWithOpen) > 1 {
				// Write-shared: nobody may cache.
				if len(caching) > 0 {
					return false
				}
				if tab.State(fh) != StateWriteShared {
					return false
				}
			}
			if writers > 0 && len(clientsWithOpen) == 1 {
				// Single writer: only that client may cache.
				for _, cc := range caching {
					if !clientsWithOpen[cc] {
						return false
					}
				}
			}
			r, w := tab.OpenCounts(fh)
			if w != writers || r != len(opens)-writers {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: version numbers never decrease, and every open-for-write
// strictly increases the file's version.
func TestQuickVersionMonotonicity(t *testing.T) {
	type action struct {
		Client uint8
		Write  bool
	}
	f := func(actions []action) bool {
		tab := NewTable(0)
		last := uint32(0)
		for _, a := range actions {
			c := ClientID([]string{"A", "B"}[int(a.Client)%2])
			res := tab.Open(fh, c, a.Write)
			if res.Version < last {
				return false
			}
			if a.Write && res.Version <= last && last != 0 {
				return false
			}
			if a.Write && res.PrevVersion != last {
				return false
			}
			last = res.Version
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: callbacks are never addressed to the opener itself.
func TestQuickCallbacksNeverToOpener(t *testing.T) {
	type action struct {
		Client uint8
		Write  bool
		Open   bool
	}
	clients := []ClientID{"A", "B", "C"}
	f := func(actions []action) bool {
		tab := NewTable(0)
		openCount := map[ClientID]map[bool]int{}
		for _, c := range clients {
			openCount[c] = map[bool]int{}
		}
		for _, a := range actions {
			c := clients[int(a.Client)%len(clients)]
			if a.Open || openCount[c][a.Write] == 0 {
				res := tab.Open(fh, c, a.Write)
				openCount[c][a.Write]++
				for _, cb := range res.Callbacks {
					if cb.Client == c {
						return false
					}
				}
			} else {
				tab.Close(fh, c, a.Write)
				openCount[c][a.Write]--
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStateStrings(t *testing.T) {
	states := map[FileState]string{
		StateClosed:      "CLOSED",
		StateClosedDirty: "CLOSED-DIRTY",
		StateOneReader:   "ONE-READER",
		StateOneRdrDirty: "ONE-RDR-DIRTY",
		StateMultReaders: "MULT-READERS",
		StateOneWriter:   "ONE-WRITER",
		StateWriteShared: "WRITE-SHARED",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	tab := NewTable(0)
	tab.Open(fh, "A", true)
	tab.Open(fh, "B", false) // callback to A, write-share
	tab.Close(fh, "A", true)
	tab.Close(fh, "B", false)
	s := tab.Stats()
	if s.Opens != 2 || s.Closes != 2 {
		t.Errorf("opens/closes %d/%d", s.Opens, s.Closes)
	}
	if s.CallbacksIssued != 1 || s.WriteShares != 1 || s.VersionBumps != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestSnapshot(t *testing.T) {
	tab := NewTable(0)
	h2 := proto.Handle{FSID: 1, Ino: 43, Gen: 1}
	tab.Open(fh, "A", true)
	tab.Open(h2, "B", false)
	tab.Open(h2, "C", false)
	snap := tab.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("%d entries", len(snap))
	}
	// Most recently touched first: h2.
	if snap[0].Handle != h2 || snap[1].Handle != fh {
		t.Errorf("order: %v then %v", snap[0].Handle, snap[1].Handle)
	}
	if snap[0].State != StateMultReaders || len(snap[0].Clients) != 2 {
		t.Errorf("h2 snapshot %+v", snap[0])
	}
	if snap[1].State != StateOneWriter || snap[1].Clients[0].Writers != 1 || !snap[1].Clients[0].Caching {
		t.Errorf("fh snapshot %+v", snap[1])
	}
	// Snapshots are copies: mutating the table later must not affect
	// the snapshot.
	tab.Close(h2, "B", false)
	if snap[0].State != StateMultReaders {
		t.Error("snapshot aliased live state")
	}
}

func TestDropWithInvalidate(t *testing.T) {
	tab := NewTable(0)
	// A holds dirty blocks (CLOSED-DIRTY); B has it open for read.
	tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	tab.Open(fh, "B", false) // writeback callback would fire in the server; here state is ONE-READER with lastWriter cleared
	// Rebuild the interesting shape: A dirty, B reading.
	tab.Drop(fh)
	tab.Open(fh, "B", false)
	e := tab.entries[fh]
	e.lastWriter = "A" // simulate dirty holder alongside the reader
	cbs := tab.DropWithInvalidate(fh, "C")
	if len(cbs) != 2 {
		t.Fatalf("callbacks %+v, want invalidations for A and B", cbs)
	}
	for _, cb := range cbs {
		if !cb.Invalidate || cb.WriteBack {
			t.Errorf("callback %+v, want invalidate-only", cb)
		}
	}
	if cbs[0].Client != "A" || cbs[1].Client != "B" {
		t.Errorf("order %v, want deterministic A then B", cbs)
	}
	if tab.Len() != 0 {
		t.Error("entry survived")
	}
	if tab.DropWithInvalidate(fh, "C") != nil {
		t.Error("second drop returned callbacks")
	}
	// The truncating client itself is exempt.
	tab.Open(fh, "A", true)
	tab.Close(fh, "A", true)
	if cbs := tab.DropWithInvalidate(fh, "A"); len(cbs) != 0 {
		t.Errorf("creator received its own invalidation: %+v", cbs)
	}
}
