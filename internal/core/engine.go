package core

import "spritelynfs/internal/proto"

// FileRecord is the client side of the consistency protocol: the fields
// SNFS adds to the client's gnode (§4.2) — the caching-enabled flag, the
// version number of the cached copy, and local open bookkeeping (needed
// for the delayed-close extension and for crash recovery reopens).
type FileRecord struct {
	Handle proto.Handle
	// Caching reports whether the server has enabled caching for this
	// file at this client.
	Caching bool
	// Version labels the client's cached blocks.
	Version uint32
	// Readers and Writers count local opens by mode.
	Readers int
	Writers int
	// DelayedClose marks a file that is locally closed but whose close
	// has not been reported to the server (§6.2 extension).
	DelayedClose     bool
	DelayedWriteMode bool // the write-mode flag owed to the server
	// ClosedAt is when the file entered delayed-close (for spontaneous
	// close of long-idle files).
	ClosedAt int64
}

// Open reconciles the record with an open reply. It reports whether the
// client's cached blocks remain valid under the §3.1 rule: valid if the
// cache's version matches the latest version or, when opening for write,
// the previous version (the bump was caused by this very open). The
// record's version label is advanced to the latest on success.
func (r *FileRecord) Open(reply proto.OpenReply, forWrite bool) (cacheValid bool) {
	cacheValid = r.Version == reply.Version ||
		(forWrite && r.Version == reply.PrevVersion)
	r.Caching = reply.CacheEnabled
	r.Version = reply.Version
	if forWrite {
		r.Writers++
	} else {
		r.Readers++
	}
	r.DelayedClose = false
	return cacheValid
}

// Close records a local close and reports whether this was the final
// local open (meaning a close RPC, or a delayed-close mark, is owed to
// the server).
func (r *FileRecord) Close(forWrite bool) (final bool) {
	if forWrite {
		if r.Writers > 0 {
			r.Writers--
		}
	} else {
		if r.Readers > 0 {
			r.Readers--
		}
	}
	return r.Readers == 0 && r.Writers == 0
}

// InUse reports whether any local process holds the file open.
func (r *FileRecord) InUse() bool { return r.Readers > 0 || r.Writers > 0 }

// ApplyCallback mutates the record for a received callback and reports
// what the client must do: flush dirty blocks first (writeBack) and/or
// drop cached blocks and stop caching (invalidate).
func (r *FileRecord) ApplyCallback(args proto.CallbackArgs) (writeBack, invalidate bool) {
	if args.Invalidate {
		r.Caching = false
	}
	return args.WriteBack, args.Invalidate
}
