package core

import (
	"testing"

	"spritelynfs/internal/proto"
)

func BenchmarkOpenCloseCycle(b *testing.B) {
	tab := NewTable(0)
	h := proto.Handle{FSID: 1, Ino: 1, Gen: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Open(h, "A", i%2 == 0)
		tab.Close(h, "A", i%2 == 0)
	}
}

func BenchmarkOpenManyFiles(b *testing.B) {
	tab := NewTable(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := proto.Handle{FSID: 1, Ino: uint64(i % 900), Gen: 1}
		tab.Open(h, "A", false)
		tab.Close(h, "A", false)
	}
}

func BenchmarkWriteShareTransition(b *testing.B) {
	tab := NewTable(0)
	h := proto.Handle{FSID: 1, Ino: 1, Gen: 1}
	for i := 0; i < b.N; i++ {
		tab.Open(h, "A", false)
		tab.Open(h, "B", true) // generates a callback
		tab.Close(h, "B", true)
		tab.Close(h, "A", false)
	}
}
