// Package core implements the paper's central contribution: the Spritely
// NFS consistency machinery. The server side is the state-table manager of
// §4.3 — per-file consistency states, the transitions of Table 4-1,
// callback generation, version-number management, and the bounded table
// with reclamation — and the client side (engine.go) is the cache-
// consistency engine that decides when cached blocks are valid and how to
// react to callbacks.
//
// The state table is a pure, non-blocking data structure: an Open or Close
// computes the transition immediately and returns the callbacks the server
// must issue (and await) before replying to the client. Serializing opens
// of the same file while callbacks are outstanding is the caller's job
// (the SNFS server holds a per-file lock across the open).
package core

import (
	"fmt"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/trace"
)

// FileState is a file's consistency state (§4.3.4).
type FileState int

// The seven states of the paper's prototype.
const (
	// StateClosed: file not open by any client. (The entry is retained
	// so the version number survives for cache validation on reopen;
	// it is the first candidate for reclamation.)
	StateClosed FileState = iota
	// StateClosedDirty: file not open, but the last writer may still
	// have dirty blocks.
	StateClosedDirty
	// StateOneReader: open read-only by one client.
	StateOneReader
	// StateOneRdrDirty: open read-only by one client, which may have
	// dirty blocks cached from a previous open.
	StateOneRdrDirty
	// StateMultReaders: open read-only by two or more clients.
	StateMultReaders
	// StateOneWriter: open read-write by one client.
	StateOneWriter
	// StateWriteShared: open by two or more clients, including at least
	// one writer. Nobody caches.
	StateWriteShared
)

func (s FileState) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateClosedDirty:
		return "CLOSED-DIRTY"
	case StateOneReader:
		return "ONE-READER"
	case StateOneRdrDirty:
		return "ONE-RDR-DIRTY"
	case StateMultReaders:
		return "MULT-READERS"
	case StateOneWriter:
		return "ONE-WRITER"
	case StateWriteShared:
		return "WRITE-SHARED"
	}
	return fmt.Sprintf("FileState(%d)", int(s))
}

// ClientID identifies a client host (its network address in this
// reproduction; the paper's implementation used the host's network
// address the same way, §4.3.2).
type ClientID string

// Callback is a server-to-client request the caller must deliver (and
// wait for) before completing the operation that generated it.
type Callback struct {
	Client     ClientID
	Handle     proto.Handle
	WriteBack  bool
	Invalidate bool
}

// clientInfo is the per-client block of a state table entry (§4.3.2).
type clientInfo struct {
	id      ClientID
	readers int  // read-only opens by processes at this client
	writers int  // read-write opens
	caching bool // what the server last told this client about caching
}

// entry is one state-table record (68 bytes in the paper's kernel).
type entry struct {
	handle  proto.Handle
	state   FileState
	version uint32
	prev    uint32 // version before the most recent open-for-write
	clients []*clientInfo
	// lastWriter is the client recorded as possibly holding dirty
	// blocks (meaningful in CLOSED-DIRTY and ONE-RDR-DIRTY).
	lastWriter ClientID
	// inconsistent is set when the last writer died before returning
	// its dirty blocks; the next open is warned (§3.2).
	inconsistent bool
	// lru links for reclamation ordering of closed entries.
	stamp uint64
}

// OpenResult is the outcome of a state-table open.
type OpenResult struct {
	// CacheEnabled tells the opening client whether it may cache.
	CacheEnabled bool
	// Version and PrevVersion implement the §3.1 validation rule: a
	// cache is valid if it matches Version or, when opening for write,
	// PrevVersion (the bump was caused by this very open).
	Version     uint32
	PrevVersion uint32
	// Callbacks must be delivered before replying to the opener.
	Callbacks []Callback
	// Inconsistent warns that the file's last writer died holding
	// dirty blocks.
	Inconsistent bool
	// TableFull reports that no entry could be allocated (every entry
	// belongs to an open file).
	TableFull bool
}

// Stats counts state-table activity.
type Stats struct {
	Opens           int64
	Closes          int64
	VersionBumps    int64
	CallbacksIssued int64
	Reclaims        int64
	Inconsistencies int64
	WriteShares     int64 // transitions into WRITE-SHARED
}

// TransitionEvent describes one state-table mutation as seen by the
// Observer hook. From is the state before the mutation, To the state
// after; Version/Prev are the entry's version numbers after the mutation.
// Readers and Writers carry the reopen registration counts on "recover"
// events (zero otherwise) so an observer can rebuild its shadow counts.
type TransitionEvent struct {
	Event        string // open, close, client-dead, recover, reclaim, drop, invalidate
	Handle       proto.Handle
	Client       ClientID
	Write        bool
	From, To     FileState
	Version      uint32
	Prev         uint32
	CacheEnabled bool
	Inconsistent bool
	HasDirty     bool // recover only: client reported dirty blocks
	Dropped      bool // the entry was removed from the table
	Readers      uint32
	Writers      uint32
	LastWriter   ClientID
	Caching      []ClientID
	Callbacks    int
}

// Table is the SNFS server state table.
type Table struct {
	maxEntries int
	entries    map[proto.Handle]*entry
	nextVer    uint32
	nextStamp  uint64
	stats      Stats
	// Tracer, when set, records every state transition.
	Tracer *trace.Tracer
	// Observer, when set, is called synchronously with every mutation —
	// the audit layer's shadow state machine hangs off this hook.
	Observer func(TransitionEvent)
}

func (t *Table) observe(ev TransitionEvent) {
	if t.Observer != nil {
		t.Observer(ev)
	}
}

func (e *entry) cachingIDs() []ClientID {
	var out []ClientID
	for _, ci := range e.clients {
		if ci.caching {
			out = append(out, ci.id)
		}
	}
	return out
}

// NewTable returns a table bounded to maxEntries (0 means the paper's
// liberal default of 1000 simultaneously known files).
func NewTable(maxEntries int) *Table {
	if maxEntries == 0 {
		maxEntries = 1000
	}
	return &Table{
		maxEntries: maxEntries,
		entries:    make(map[proto.Handle]*entry),
	}
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats { return t.stats }

// Len reports the number of live entries.
func (t *Table) Len() int { return len(t.entries) }

// StateCount reports how many live entries sit in state s (the per-state
// gauges behind the observability layer).
func (t *Table) StateCount(s FileState) int {
	n := 0
	for _, e := range t.entries {
		if e.state == s {
			n++
		}
	}
	return n
}

// State reports the consistency state of h (StateClosed for unknown
// files, which is semantically accurate: no entry means nothing cached).
func (t *Table) State(h proto.Handle) FileState {
	if e, ok := t.entries[h]; ok {
		return e.state
	}
	return StateClosed
}

// Version reports the current version number of h (0 if unknown).
func (t *Table) Version(h proto.Handle) uint32 {
	if e, ok := t.entries[h]; ok {
		return e.version
	}
	return 0
}

func (t *Table) bump(e *entry) {
	t.nextVer++
	t.stats.VersionBumps++
	e.prev = e.version
	e.version = t.nextVer
}

func (e *entry) client(c ClientID) *clientInfo {
	for _, ci := range e.clients {
		if ci.id == c {
			return ci
		}
	}
	return nil
}

func (e *entry) addClient(c ClientID, caching bool) *clientInfo {
	ci := e.client(c)
	if ci == nil {
		ci = &clientInfo{id: c, caching: caching}
		e.clients = append(e.clients, ci)
	}
	return ci
}

func (e *entry) removeClient(c ClientID) {
	for i, ci := range e.clients {
		if ci.id == c {
			e.clients = append(e.clients[:i], e.clients[i+1:]...)
			return
		}
	}
}

// Open records that client c opened h (write if forWrite) and returns the
// resulting cachability decision, version numbers, and any callbacks the
// server must deliver before replying. The state transition itself has
// already been applied; if a callback's client turns out to be dead, the
// server reports it via ClientDead.
func (t *Table) Open(h proto.Handle, c ClientID, forWrite bool) OpenResult {
	t.stats.Opens++
	e, ok := t.entries[h]
	if !ok {
		var full bool
		e, full = t.newEntry(h)
		if full {
			return OpenResult{TableFull: true}
		}
	}
	t.nextStamp++
	e.stamp = t.nextStamp
	from := e.state

	var res OpenResult
	if e.inconsistent {
		res.Inconsistent = true
		e.inconsistent = false // warn the first opener only
		t.stats.Inconsistencies++
	}

	switch e.state {
	case StateClosed:
		ci := e.addClient(c, true)
		if forWrite {
			t.bump(e)
			ci.writers++
			e.state = StateOneWriter
		} else {
			ci.readers++
			e.state = StateOneReader
		}
		res.CacheEnabled = true

	case StateClosedDirty:
		if c == e.lastWriter {
			ci := e.addClient(c, true)
			if forWrite {
				t.bump(e)
				ci.writers++
				e.state = StateOneWriter
			} else {
				ci.readers++
				e.state = StateOneRdrDirty
			}
			res.CacheEnabled = true
		} else {
			// Another client wants the file: the last writer
			// must return its dirty blocks first. Its (then
			// clean) cached copy may be kept — version checking
			// invalidates it lazily if this open bumps the
			// version.
			res.Callbacks = append(res.Callbacks, Callback{
				Client: e.lastWriter, Handle: h, WriteBack: true,
			})
			e.lastWriter = ""
			ci := e.addClient(c, true)
			if forWrite {
				t.bump(e)
				ci.writers++
				e.state = StateOneWriter
			} else {
				ci.readers++
				e.state = StateOneReader
			}
			res.CacheEnabled = true
		}

	case StateOneReader, StateOneRdrDirty:
		existing := e.clients[0]
		dirty := e.state == StateOneRdrDirty
		if existing.id == c {
			ci := existing
			if forWrite {
				t.bump(e)
				ci.writers++
				e.state = StateOneWriter
				// The client's own dirty blocks (if this was
				// ONE-RDR-DIRTY it is the last writer) stay
				// valid: same client, cache on.
			} else {
				ci.readers++
				// State unchanged (Table 4-1: no transition
				// for a repeat read-only open).
			}
			ci.caching = true // a reopen re-grants caching
			res.CacheEnabled = true
		} else if forWrite {
			// Read/write sharing begins: the existing reader
			// stops caching (and returns dirty blocks if it is
			// the last writer).
			cb := Callback{Client: existing.id, Handle: h, Invalidate: true}
			if dirty {
				cb.WriteBack = true
				e.lastWriter = ""
			}
			res.Callbacks = append(res.Callbacks, cb)
			existing.caching = false
			t.bump(e)
			ci := e.addClient(c, false)
			ci.writers++
			e.state = StateWriteShared
			t.stats.WriteShares++
			res.CacheEnabled = false
		} else {
			if dirty {
				// New reader elsewhere: dirty blocks must
				// reach the server so its copy is current.
				res.Callbacks = append(res.Callbacks, Callback{
					Client: existing.id, Handle: h, WriteBack: true,
				})
				e.lastWriter = ""
			}
			ci := e.addClient(c, true)
			ci.readers++
			e.state = StateMultReaders
			res.CacheEnabled = true
		}

	case StateMultReaders:
		if forWrite {
			// All other readers must stop caching; the opener
			// learns cacheEnabled=false from the reply.
			for _, ci := range e.clients {
				if ci.id != c {
					res.Callbacks = append(res.Callbacks, Callback{
						Client: ci.id, Handle: h, Invalidate: true,
					})
				}
				ci.caching = false
			}
			t.bump(e)
			ci := e.addClient(c, false)
			ci.writers++
			ci.caching = false
			e.state = StateWriteShared
			t.stats.WriteShares++
			res.CacheEnabled = false
		} else {
			ci := e.addClient(c, true)
			ci.readers++
			ci.caching = true // a reopen re-grants caching
			res.CacheEnabled = true
		}

	case StateOneWriter:
		w := e.clients[0]
		if w.id == c {
			if forWrite {
				t.bump(e)
				w.writers++
			} else {
				w.readers++
			}
			res.CacheEnabled = true
		} else {
			// A second client arrives while one holds the file
			// open for write: write sharing. The writer returns
			// its dirty pages and stops caching (§2.2).
			res.Callbacks = append(res.Callbacks, Callback{
				Client: w.id, Handle: h, WriteBack: true, Invalidate: true,
			})
			w.caching = false
			if forWrite {
				t.bump(e)
			}
			ci := e.addClient(c, false)
			if forWrite {
				ci.writers++
			} else {
				ci.readers++
			}
			e.state = StateWriteShared
			t.stats.WriteShares++
			res.CacheEnabled = false
		}

	case StateWriteShared:
		if forWrite {
			t.bump(e)
		}
		ci := e.addClient(c, false)
		if forWrite {
			ci.writers++
		} else {
			ci.readers++
		}
		res.CacheEnabled = false
	}

	t.stats.CallbacksIssued += int64(len(res.Callbacks))
	res.Version = e.version
	res.PrevVersion = e.prev
	if t.Tracer != nil {
		t.Tracer.Record("server", trace.State, "open(%s, %s, write=%v) -> %s v%d cache=%v cbs=%d",
			h, c, forWrite, e.state, e.version, res.CacheEnabled, len(res.Callbacks))
	}
	t.observe(TransitionEvent{
		Event: "open", Handle: h, Client: c, Write: forWrite,
		From: from, To: e.state, Version: e.version, Prev: e.prev,
		CacheEnabled: res.CacheEnabled, Inconsistent: res.Inconsistent,
		LastWriter: e.lastWriter, Caching: e.cachingIDs(), Callbacks: len(res.Callbacks),
	})
	return res
}

// Close records that client c performed the final close of one open of h;
// forWrite must match the mode passed at open (§3.1). Unknown handles and
// clients are tolerated (a close can race a reclamation or a reboot).
func (t *Table) Close(h proto.Handle, c ClientID, forWrite bool) {
	t.stats.Closes++
	e, ok := t.entries[h]
	if !ok {
		return
	}
	ci := e.client(c)
	if ci == nil {
		return
	}
	from := e.state
	if forWrite {
		if ci.writers > 0 {
			ci.writers--
		}
	} else {
		if ci.readers > 0 {
			ci.readers--
		}
	}
	wasCachingWriter := forWrite && ci.caching
	if ci.readers == 0 && ci.writers == 0 {
		e.removeClient(c)
	}
	t.recompute(e, c, wasCachingWriter)
	if t.Tracer != nil {
		t.Tracer.Record("server", trace.State, "close(%s, %s, write=%v) -> %s",
			h, c, forWrite, e.state)
	}
	t.observe(TransitionEvent{
		Event: "close", Handle: h, Client: c, Write: forWrite,
		From: from, To: e.state, Version: e.version, Prev: e.prev,
		LastWriter: e.lastWriter, Caching: e.cachingIDs(),
	})
}

// recompute derives the new state after a close by closer (who was a
// caching writer for this close if cachingWriter).
func (t *Table) recompute(e *entry, closer ClientID, cachingWriter bool) {
	// Classify the remaining opens.
	nclients := len(e.clients)
	writers := 0
	for _, ci := range e.clients {
		writers += ci.writers
	}
	if cachingWriter {
		// Table 4-1: this client recorded as last writer.
		e.lastWriter = closer
	}

	switch {
	case nclients == 0:
		if e.lastWriter != "" {
			e.state = StateClosedDirty
		} else {
			e.state = StateClosed
		}
	case writers > 0:
		if nclients == 1 && e.clients[0].caching {
			e.state = StateOneWriter
		} else {
			e.state = StateWriteShared
		}
	case nclients == 1:
		// One remaining client, read-only.
		if e.lastWriter == e.clients[0].id && e.clients[0].caching {
			e.state = StateOneRdrDirty
		} else {
			e.state = StateOneReader
		}
	default:
		e.state = StateMultReaders
	}
}

// newEntry allocates an entry for h, reclaiming closed entries when the
// table is full: clean CLOSED entries are dropped silently (their only
// cost is a spurious cache invalidation if a client reopens with a cached
// copy); if none exist the caller gets TableFull — CLOSED-DIRTY entries
// are reclaimed asynchronously via ReclaimCandidates, not synchronously
// inside an open for an unrelated file.
func (t *Table) newEntry(h proto.Handle) (*entry, bool) {
	if len(t.entries) >= t.maxEntries {
		if victim := t.oldestInState(StateClosed); victim != nil {
			delete(t.entries, victim.handle)
			t.stats.Reclaims++
			t.observe(TransitionEvent{
				Event: "reclaim", Handle: victim.handle,
				From: StateClosed, To: StateClosed,
				Version: victim.version, Prev: victim.prev, Dropped: true,
			})
		} else if len(t.entries) >= t.maxEntries {
			return nil, true
		}
	}
	e := &entry{handle: h, state: StateClosed}
	t.entries[h] = e
	return e, false
}

func (t *Table) oldestInState(s FileState) *entry {
	var victim *entry
	for _, e := range t.entries {
		if e.state != s {
			continue
		}
		if victim == nil || e.stamp < victim.stamp {
			victim = e
		}
	}
	return victim
}

// InvalidateReaders supports the §7 name-cache extension: when a client
// modifies a directory, every OTHER client caching it (holding a
// read-open "lease" on it) must drop its cached entries. The version is
// bumped so later reopens with stale caches validate correctly; the
// remaining opens stay registered, merely non-caching, and a subsequent
// reopen re-enables caching with fresh contents.
func (t *Table) InvalidateReaders(h proto.Handle, except ClientID) []Callback {
	e, ok := t.entries[h]
	if !ok {
		return nil
	}
	from := e.state
	t.bump(e)
	var cbs []Callback
	for _, ci := range e.clients {
		if ci.id == except || !ci.caching {
			continue
		}
		ci.caching = false
		cbs = append(cbs, Callback{Client: ci.id, Handle: h, Invalidate: true})
	}
	t.stats.CallbacksIssued += int64(len(cbs))
	t.observe(TransitionEvent{
		Event: "invalidate", Handle: h, Client: except,
		From: from, To: e.state, Version: e.version, Prev: e.prev,
		LastWriter: e.lastWriter, Caching: e.cachingIDs(), Callbacks: len(cbs),
	})
	return cbs
}

// ReclaimCandidates returns write-back callbacks for up to n of the
// oldest CLOSED-DIRTY entries (§4.3.1: "when entries run low, those
// recording closed files may be reclaimed by sending callbacks to the
// corresponding clients"). After delivering a callback the server calls
// Reclaimed.
func (t *Table) ReclaimCandidates(n int) []Callback {
	var out []Callback
	for len(out) < n {
		var victim *entry
		for _, e := range t.entries {
			if e.state != StateClosedDirty {
				continue
			}
			already := false
			for _, cb := range out {
				if cb.Handle == e.handle {
					already = true
					break
				}
			}
			if already {
				continue
			}
			if victim == nil || e.stamp < victim.stamp {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		out = append(out, Callback{
			Client: victim.lastWriter, Handle: victim.handle, WriteBack: true,
		})
	}
	t.stats.CallbacksIssued += int64(len(out))
	return out
}

// NeedsReclaim reports whether the table is within margin entries of its
// limit.
func (t *Table) NeedsReclaim(margin int) bool {
	return len(t.entries)+margin >= t.maxEntries
}

// Reclaimed records that the write-back for a CLOSED-DIRTY entry
// completed; the entry becomes CLOSED (still holding the version) or is
// dropped if the table is at its limit.
func (t *Table) Reclaimed(h proto.Handle) {
	e, ok := t.entries[h]
	if !ok || e.state != StateClosedDirty {
		return
	}
	e.lastWriter = ""
	e.state = StateClosed
	dropped := false
	if len(t.entries) >= t.maxEntries {
		delete(t.entries, h)
		t.stats.Reclaims++
		dropped = true
	}
	t.observe(TransitionEvent{
		Event: "reclaim", Handle: h,
		From: StateClosedDirty, To: StateClosed, Version: e.version, Prev: e.prev,
		Dropped: dropped,
	})
}

// Drop removes the entry for h entirely (the file was removed). Pending
// dirty state vanishes with the file — exactly the delete-before-
// writeback situation, but observed at the server.
func (t *Table) Drop(h proto.Handle) {
	e, ok := t.entries[h]
	delete(t.entries, h)
	if ok {
		t.observe(TransitionEvent{
			Event: "drop", Handle: h, From: e.state, To: StateClosed,
			Version: e.version, Prev: e.prev, Dropped: true,
		})
	}
}

// DropWithInvalidate handles truncation-in-place (a create over an
// existing file keeps the inode): every client that may hold cached or
// dirty blocks of the old contents — open clients and the last writer —
// must drop them, or a later delayed write-back would resurrect dead
// data. The truncating client itself (except) is exempt: its own create
// path cancels its cache. The returned invalidate-only callbacks must be
// delivered before the truncation is acknowledged; the entry itself is
// removed.
func (t *Table) DropWithInvalidate(h proto.Handle, except ClientID) []Callback {
	e, ok := t.entries[h]
	if !ok {
		return nil
	}
	targets := map[ClientID]bool{}
	for _, ci := range e.clients {
		targets[ci.id] = true
	}
	if e.lastWriter != "" {
		targets[e.lastWriter] = true
	}
	delete(targets, except)
	var cbs []Callback
	for c := range targets {
		cbs = append(cbs, Callback{Client: c, Handle: h, Invalidate: true})
	}
	// Deterministic order for reproducible simulations.
	for i := 1; i < len(cbs); i++ {
		for j := i; j > 0 && cbs[j].Client < cbs[j-1].Client; j-- {
			cbs[j], cbs[j-1] = cbs[j-1], cbs[j]
		}
	}
	t.stats.CallbacksIssued += int64(len(cbs))
	delete(t.entries, h)
	t.observe(TransitionEvent{
		Event: "drop", Handle: h, Client: except, From: e.state, To: StateClosed,
		Version: e.version, Prev: e.prev, Dropped: true, Callbacks: len(cbs),
	})
	return cbs
}

// ClientDead removes client c from every entry, recomputing states. If c
// was the last writer of a file (its dirty blocks are lost) or held the
// file open for write while caching, the entry is marked inconsistent so
// the next opener is warned (§3.2). The affected handles are returned.
func (t *Table) ClientDead(c ClientID) []proto.Handle {
	var affected []proto.Handle
	for h, e := range t.entries {
		touched := false
		from := e.state
		if e.lastWriter == c {
			e.lastWriter = ""
			e.inconsistent = true
			touched = true
		}
		if ci := e.client(c); ci != nil {
			if ci.writers > 0 && ci.caching {
				// A caching writer died: dirty data may be lost.
				e.inconsistent = true
			}
			e.removeClient(c)
			touched = true
		}
		if touched {
			t.recompute(e, "", false)
			affected = append(affected, h)
			t.observe(TransitionEvent{
				Event: "client-dead", Handle: h, Client: c,
				From: from, To: e.state, Version: e.version, Prev: e.prev,
				Inconsistent: e.inconsistent,
				LastWriter:   e.lastWriter, Caching: e.cachingIDs(),
			})
		}
	}
	return affected
}

// Recover reconstructs an entry from a client's reopen during the
// post-reboot grace period (§2.4: "the clients together know who is
// caching the file, and the server can reconstruct its state from the
// clients"). Version numbers are restored from the clients; the global
// counter resumes above the maximum seen.
func (t *Table) Recover(h proto.Handle, c ClientID, readers, writers uint32, version uint32, hasDirty bool) {
	e, ok := t.entries[h]
	if !ok {
		e, _ = t.newEntry(h)
	}
	if e == nil {
		return
	}
	from := e.state
	if version > e.version {
		e.version = version
	}
	if version > t.nextVer {
		t.nextVer = version
	}
	if readers > 0 || writers > 0 {
		ci := e.addClient(c, true)
		ci.readers = int(readers)
		ci.writers = int(writers)
	}
	if hasDirty && writers == 0 && readers == 0 {
		e.lastWriter = c
	}
	t.recomputeRecovered(e)
	t.observe(TransitionEvent{
		Event: "recover", Handle: h, Client: c, Write: writers > 0,
		From: from, To: e.state, Version: e.version, Prev: e.prev,
		HasDirty: hasDirty, Readers: readers, Writers: writers,
		LastWriter: e.lastWriter, Caching: e.cachingIDs(),
	})
}

// recomputeRecovered rebuilds the state after recovery registrations.
// Write sharing discovered during recovery disables caching for everyone,
// which the clients learn from their reopen replies.
func (t *Table) recomputeRecovered(e *entry) {
	writers, readers := 0, 0
	for _, ci := range e.clients {
		writers += ci.writers
		readers += ci.readers
	}
	switch {
	case len(e.clients) == 0:
		if e.lastWriter != "" {
			e.state = StateClosedDirty
		} else {
			e.state = StateClosed
		}
	case writers > 0 && len(e.clients) > 1:
		e.state = StateWriteShared
		for _, ci := range e.clients {
			ci.caching = false
		}
	case writers > 0:
		e.state = StateOneWriter
	case len(e.clients) == 1:
		if e.lastWriter == e.clients[0].id {
			e.state = StateOneRdrDirty
		} else {
			e.state = StateOneReader
		}
	default:
		e.state = StateMultReaders
	}
}

// ClientSnapshot is one client's registration within an entry snapshot.
type ClientSnapshot struct {
	Client  ClientID
	Readers int
	Writers int
	Caching bool
}

// EntrySnapshot is a point-in-time copy of one state-table entry, for
// the administrative dump procedure and tests.
type EntrySnapshot struct {
	Handle       proto.Handle
	State        FileState
	Version      uint32
	LastWriter   ClientID
	Inconsistent bool
	Clients      []ClientSnapshot
}

// Snapshot copies the whole table, ordered by recency (most recently
// touched first).
func (t *Table) Snapshot() []EntrySnapshot {
	out := make([]EntrySnapshot, 0, len(t.entries))
	for _, e := range t.entries {
		es := EntrySnapshot{
			Handle:       e.handle,
			State:        e.state,
			Version:      e.version,
			LastWriter:   e.lastWriter,
			Inconsistent: e.inconsistent,
		}
		for _, ci := range e.clients {
			es.Clients = append(es.Clients, ClientSnapshot{
				Client: ci.id, Readers: ci.readers, Writers: ci.writers, Caching: ci.caching,
			})
		}
		out = append(out, es)
	}
	// Most recently touched first (insertion sort; dumps are small).
	stampOf := func(h proto.Handle) uint64 { return t.entries[h].stamp }
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && stampOf(out[j].Handle) > stampOf(out[j-1].Handle); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CachingClients returns the clients currently allowed to cache h, for
// invariant checking in tests.
func (t *Table) CachingClients(h proto.Handle) []ClientID {
	e, ok := t.entries[h]
	if !ok {
		return nil
	}
	var out []ClientID
	for _, ci := range e.clients {
		if ci.caching {
			out = append(out, ci.id)
		}
	}
	return out
}

// HasClient reports whether client c has any open registered for h.
func (t *Table) HasClient(h proto.Handle, c ClientID) bool {
	e, ok := t.entries[h]
	if !ok {
		return false
	}
	return e.client(c) != nil
}

// CachingFor reports whether client c is currently permitted to cache h.
func (t *Table) CachingFor(h proto.Handle, c ClientID) bool {
	e, ok := t.entries[h]
	if !ok {
		return false
	}
	ci := e.client(c)
	return ci != nil && ci.caching
}

// OpenCounts reports the total reader and writer open counts for h.
func (t *Table) OpenCounts(h proto.Handle) (readers, writers int) {
	e, ok := t.entries[h]
	if !ok {
		return 0, 0
	}
	for _, ci := range e.clients {
		readers += ci.readers
		writers += ci.writers
	}
	return readers, writers
}

// LastWriter reports the client recorded as possibly holding dirty blocks
// for h ("" if none).
func (t *Table) LastWriter(h proto.Handle) ClientID {
	if e, ok := t.entries[h]; ok {
		return e.lastWriter
	}
	return ""
}
