// Package client implements the two client file systems the paper
// compares:
//
//   - NFSClient: the Ultrix-vintage reference-port behaviour — periodic
//     attribute probes (adaptive 3–150 s), a getattr consistency check on
//     every open, write-through via asynchronous block I/O daemons with a
//     synchronous flush on close, partial-block write delay, and
//     (optionally, as the measured version did) cache invalidation on
//     close.
//
//   - SNFSClient: the Spritely client — open/close RPCs driving the
//     server's state table, version-validated caching across closes,
//     delayed write-back with a periodic update daemon, cancellation of
//     delayed writes when files are deleted, direct-to-server access for
//     uncachable (write-shared) files, callback service, and the §6.2
//     delayed-close extension plus crash recovery as options.
//
// Both implement vfs.FS, so workloads run identically over either.
package client

import (
	"fmt"
	"sort"

	"spritelynfs/internal/cache"
	"spritelynfs/internal/core"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/metrics"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/span"
	"spritelynfs/internal/stats"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/vfs"
	"spritelynfs/internal/xdr"
)

// Config holds client parameters shared by both protocols.
type Config struct {
	// Server is the file server's network address.
	Server simnet.Addr
	// Root is the exported root handle (what the mount protocol would
	// return).
	Root proto.Handle
	// BlockSize is the transfer and caching granularity (the paper's
	// tests used 4 kbytes).
	BlockSize int
	// CacheBytes bounds the client block cache (the paper's client had
	// about 16 Mbytes).
	CacheBytes int64
	// Biods is the number of asynchronous block-I/O daemons (write-
	// behind and read-ahead concurrency). Zero means 4.
	Biods int
	// ReadAhead enables one-block read-ahead on cache misses.
	ReadAhead bool
	// UnstableWrites enables the NFSv3-style write pipeline: block
	// write-backs go out with WriteArgs.Unstable set (the server
	// buffers them with no disk op) and close/sync send one COMMIT that
	// gathers the file's blocks into merged disk operations. The client
	// keeps a copy of every unacked-unstable block and redrives it with
	// stable writes when the COMMIT verifier shows the server rebooted.
	UnstableWrites bool
	// AttrPiggyback arms the post-op attribute extension: remove,
	// rename, and close requests carry the want-attr flag and their
	// replies' post-op attributes — plus the attributes lookup and read
	// replies already carry, and a READDIRPLUS-style listing — feed the
	// attribute cache instead of being discarded. Off by default: the
	// vintage clients ignore those attributes, and the paper-fidelity
	// tables depend on the resulting RPC mix.
	AttrPiggyback bool
	// LookupPath arms the compound-RPC path walk: multi-component
	// resolutions go through one ProcLookupPath call instead of a
	// per-component lookup chain. Off by default for the same reason.
	LookupPath bool
}

func (c *Config) fill() {
	if c.BlockSize == 0 {
		c.BlockSize = 4096
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 16 << 20
	}
	if c.Biods == 0 {
		c.Biods = 4
	}
}

// node is the client's in-memory record for one remote file — the gnode
// of the paper's implementation (§4.2), holding cached attributes and the
// consistency fields.
type node struct {
	h    proto.Handle
	attr proto.Fattr
	// attrTime is when attr was last fetched from the server (drives
	// the NFS probe policy).
	attrTime sim.Time
	attrInit bool
	// size is the client's view of the file length, including local
	// writes not yet at the server.
	size int64
	// opens counts local opens (so invalidation on close happens at
	// the right moment).
	opens int
	// pending tracks in-flight asynchronous write-throughs (NFS).
	pending *sim.WaitGroup
	// werr records the first asynchronous write error, surfaced at the
	// next close or sync.
	werr error
	// unstable holds a copy of every block sent with Unstable set and
	// not yet covered by a successful COMMIT, keyed by file offset. The
	// copies are the redrive source if the server reboots: its reply
	// verifier (recorded in unstableVerifier at first ack) no longer
	// matches and the buffered data died with its cache.
	unstable         map[int64][]byte
	unstableVerifier uint64
	// rec is the SNFS consistency record.
	rec core.FileRecord
}

// Base is the machinery shared by both clients.
type Base struct {
	k     *sim.Kernel
	ep    *rpc.Endpoint
	cfg   Config
	cache *cache.Cache
	nodes map[uint64]*node
	ops   *stats.Ops
	biods *sim.Semaphore
	// fetching tracks blocks with an RPC in flight (read-ahead or a
	// concurrent reader), so a second reader waits for the existing
	// fetch instead of duplicating it — the "buffer busy" state of the
	// Unix buffer cache.
	fetching map[cache.Key]*sim.Signal
	// lastDirPath/lastDir are a one-entry directory cache modelling
	// the process's current directory: path walks re-resolving the
	// directory just used skip its lookups, as namei starting from
	// u.u_cdir did. (Neither protocol caches name translations beyond
	// this by default — the paper's vintage didn't, and notes lookups
	// are roughly half of all calls.)
	lastDirPath  string
	lastDir      proto.Handle
	lastDirValid bool

	// nameGet/namePut, when set (the SNFS §7 name-cache extension),
	// serve and record name translations around the lookup RPC.
	nameGet func(dir proto.Handle, name string) (proto.Handle, bool)
	namePut func(p *sim.Proc, dir proto.Handle, name string, h proto.Handle)

	tracer *trace.Tracer

	// spans, when set, attaches causal latency spans (cache fetches,
	// attr revalidations, biod waits) to the running operation's trace.
	spans *span.Recorder

	// attrs is the unified attribute-cache layer: every getattr,
	// freshness decision, and piggybacked attribute goes through it.
	attrs *attrCache

	// Unstable-pipeline counters.
	commitsSent   int64
	redriveBlocks int64
}

// EnableMetrics attaches a metrics registry: the endpoint records
// per-procedure call latency (what the client actually waits for), and
// the cache exports occupancy, dirty-block, write-back-concurrency, and
// invalidation gauges.
func (b *Base) EnableMetrics(r *metrics.Registry) {
	b.ep.SetMetrics(r)
	host := b.host()
	r.GaugeFunc(metrics.Label("snfs_client_cache_blocks", "host", host),
		func() float64 { return float64(b.cache.Len()) })
	r.GaugeFunc(metrics.Label("snfs_client_dirty_blocks", "host", host),
		func() float64 { return float64(b.cache.DirtyCount()) })
	r.GaugeFunc(metrics.Label("snfs_client_writeback_queue_depth", "host", host),
		func() float64 { return float64(b.biods.InUse()) })
	r.GaugeFunc(metrics.Label("snfs_client_invalidated_blocks_total", "host", host),
		func() float64 { return float64(b.cache.Stats().Invalidated) })
	r.GaugeFunc(metrics.Label("snfs_client_cache_hits_total", "host", host),
		func() float64 { return float64(b.cache.Stats().Hits) })
	r.GaugeFunc(metrics.Label("snfs_client_cache_misses_total", "host", host),
		func() float64 { return float64(b.cache.Stats().Misses) })
	r.GaugeFunc(metrics.Label("snfs_client_commits_total", "host", host),
		func() float64 { return float64(b.commitsSent) })
	r.GaugeFunc(metrics.Label("snfs_client_redrive_blocks_total", "host", host),
		func() float64 { return float64(b.redriveBlocks) })
	r.GaugeFunc(metrics.Label("snfs_client_unstable_outstanding", "host", host),
		func() float64 {
			total := 0
			for _, n := range b.nodes {
				total += len(n.unstable)
			}
			return float64(total)
		})
	r.GaugeFunc(metrics.Label("snfs_client_attrcache_hits_total", "host", host),
		func() float64 { return float64(b.attrs.stats.Hits) })
	r.GaugeFunc(metrics.Label("snfs_client_attrcache_misses_total", "host", host),
		func() float64 { return float64(b.attrs.stats.Misses) })
	r.GaugeFunc(metrics.Label("snfs_client_attrcache_expiries_total", "host", host),
		func() float64 { return float64(b.attrs.stats.Expiries) })
	r.GaugeFunc(metrics.Label("snfs_client_attrcache_ingests_total", "host", host),
		func() float64 { return float64(b.attrs.stats.Ingests) })
	r.GaugeFunc(metrics.Label("snfs_client_attrcache_shared_drops_total", "host", host),
		func() float64 { return float64(b.attrs.stats.SharedDrops) })
}

// SetTracer attaches a trace recorder to the client.
func (b *Base) SetTracer(t *trace.Tracer) { b.tracer = t }

// Tracer returns the attached tracer (possibly nil; nil is recordable).
func (b *Base) Tracer() *trace.Tracer { return b.tracer }

// SetSpans attaches a span recorder: cache fetches, attribute-cache
// revalidations, biod waits, and daemon passes become spans of the
// owning operation's trace.
func (b *Base) SetSpans(r *span.Recorder) { b.spans = r }

// Spans returns the attached span recorder (possibly nil).
func (b *Base) Spans() *span.Recorder { return b.spans }

// span opens a child span of p's current operation (no-op when spans
// are off).
func (b *Base) span(p *sim.Proc, kind span.Kind, name string) span.Handle {
	return b.spans.Begin(p, b.host(), kind, name)
}

// host names this client in trace output.
func (b *Base) host() string { return string(b.ep.Addr()) }

func newBase(k *sim.Kernel, ep *rpc.Endpoint, cfg Config) *Base {
	cfg.fill()
	b := &Base{
		k:        k,
		ep:       ep,
		cfg:      cfg,
		cache:    cache.New(int(cfg.CacheBytes / int64(cfg.BlockSize))),
		nodes:    make(map[uint64]*node),
		ops:      stats.NewOps(),
		biods:    sim.NewSemaphore(k, cfg.Biods),
		fetching: make(map[cache.Key]*sim.Signal),
	}
	b.attrs = newAttrCache(b)
	return b
}

// Ops returns the client-issued RPC counters (what Tables 5-2/5-4/5-6
// report).
func (b *Base) Ops() *stats.Ops { return b.ops }

// Cache returns the client block cache (for stats).
func (b *Base) Cache() *cache.Cache { return b.cache }

// Endpoint returns the client's RPC endpoint.
func (b *Base) Endpoint() *rpc.Endpoint { return b.ep }

// Retarget repoints every future RPC at a new server address — failover:
// the shard's backup took over the primary's role. Calls already in
// flight heal through the endpoint's Reroute hook.
func (b *Base) Retarget(to simnet.Addr) { b.cfg.Server = to }

// Server returns the address the client currently targets.
func (b *Base) Server() simnet.Addr { return b.cfg.Server }

// call issues one RPC to the server, counting it. CallMsg encodes args
// straight into the endpoint's pooled wire buffer (byte-identical to
// proto.Marshal, without the intermediate allocation).
func (b *Base) call(p *sim.Proc, proc uint32, args proto.Message) ([]byte, error) {
	b.ops.Inc(proto.ProcName(proto.ProgNFS, proc))
	return b.ep.CallMsg(p, b.cfg.Server, proto.ProgNFS, proto.VersNFS, proc, args)
}

// getNode returns (creating if needed) the node for a handle.
func (b *Base) getNode(h proto.Handle) *node {
	n, ok := b.nodes[h.Ino]
	if !ok || n.h != h {
		n = &node{h: h, pending: sim.NewWaitGroup(b.k, 0)}
		b.nodes[h.Ino] = n
	}
	return n
}

// setAttr installs server-reported attributes on a node, growing the
// local size view only when the client holds no newer local writes.
func (b *Base) setAttr(n *node, a proto.Fattr, now sim.Time) {
	n.attr = a
	n.attrTime = now
	n.attrInit = true
	if b.cache.DirtyCount() == 0 || len(b.cache.DirtyBlocks(b.cfg.Root.FSID, n.h.Ino)) == 0 {
		n.size = a.Size
	} else if a.Size > n.size {
		n.size = a.Size
	}
}

// lookupRPC resolves one name in one directory.
func (b *Base) lookupRPC(p *sim.Proc, dir proto.Handle, name string) (proto.Handle, proto.Fattr, error) {
	body, err := b.call(p, proto.ProcLookup, &proto.DirOpArgs{Dir: dir, Name: name})
	if err != nil {
		return proto.Handle{}, proto.Fattr{}, err
	}
	r := proto.DecodeHandleReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return proto.Handle{}, proto.Fattr{}, r.Status.Err()
	}
	return r.Handle, r.Attr, nil
}

// lookup resolves one name through the name cache when enabled. Cache
// hits that need attributes pay a getattr (same price as the lookup they
// replace — the win is handle-only resolutions, which path walking is
// made of). fromCache reports a cache hit, in which case the returned
// attributes may be zero; symlinks are never cached, so a cache hit is
// always a plain file or directory.
func (b *Base) lookup(p *sim.Proc, dir proto.Handle, name string, needAttr bool) (h proto.Handle, attr proto.Fattr, fromCache bool, err error) {
	if b.nameGet != nil {
		if h, ok := b.nameGet(dir, name); ok {
			if !needAttr {
				return h, proto.Fattr{}, true, nil
			}
			// The attribute layer serves this from cache when the
			// attributes are still fresh (piggybacking armed) and pays
			// the getattr otherwise — the vintage price.
			attr, _, err := b.attrs.get(p, b.getNode(h), !b.cfg.AttrPiggyback)
			if err == nil {
				return h, attr, true, nil
			}
			// Stale cached handle: fall through to a real lookup.
		}
	}
	h, attr, err = b.lookupRPC(p, dir, name)
	if err == nil && b.namePut != nil && attr.Type != uint32(localfs.TypeSymlink) {
		b.namePut(p, dir, name, h)
	}
	if err == nil && b.cfg.AttrPiggyback && attr.Type != uint32(localfs.TypeSymlink) {
		// Lookup replies carry server-fresh attributes; the vintage
		// client threw them away.
		b.attrs.ingest(b.getNode(h), attr, p.Now())
	}
	return h, attr, false, err
}

// readlinkRPC fetches a symlink's target.
func (b *Base) readlinkRPC(p *sim.Proc, h proto.Handle) (string, error) {
	body, err := b.call(p, proto.ProcReadlink, &proto.HandleArgs{Handle: h})
	if err != nil {
		return "", err
	}
	r := proto.DecodeReadlinkReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return "", r.Status.Err()
	}
	return r.Target, nil
}

// maxSymlinkDepth bounds symlink chains during resolution.
const maxSymlinkDepth = 8

// resolveDir resolves a directory path component-at-a-time via lookup
// RPCs — the NFS/SNFS name translation the paper identifies as roughly
// half of all calls — through the one-entry cwd cache. Symlinked
// components are followed (relative targets against the containing
// directory, absolute ones against the mount root).
func (b *Base) resolveDir(p *sim.Proc, comps []string) (proto.Handle, error) {
	if len(comps) == 0 {
		return b.cfg.Root, nil
	}
	path := joinComps(comps)
	if b.lastDirValid && path == b.lastDirPath {
		return b.lastDir, nil
	}
	cur, _, err := b.walkComps(p, b.cfg.Root, comps, false, maxSymlinkDepth)
	if err != nil {
		return proto.Handle{}, err
	}
	b.lastDirPath = path
	b.lastDir = cur
	b.lastDirValid = true
	return cur, nil
}

// walkComps walks comps from dir, following symlinks by splicing their
// targets into the remaining components.
func (b *Base) walkComps(p *sim.Proc, dir proto.Handle, comps []string, needAttr bool, depth int) (proto.Handle, proto.Fattr, error) {
	if b.cfg.LookupPath && len(comps) > 1 && b.nameGet == nil {
		// Compound resolution: one RPC per symlink-free run. The name
		// cache keeps the per-component path — its hits are cheaper
		// than any RPC.
		return b.walkCompsPath(p, dir, comps, needAttr, depth)
	}
	cur := dir
	var attr proto.Fattr
	for i := 0; i < len(comps); i++ {
		last := i == len(comps)-1
		h, a, fromCache, err := b.lookup(p, cur, comps[i], needAttr && last)
		if err != nil {
			return proto.Handle{}, proto.Fattr{}, err
		}
		if !fromCache && a.Type == uint32(localfs.TypeSymlink) {
			if depth <= 0 {
				return proto.Handle{}, proto.Fattr{}, proto.ErrIO.Err()
			}
			depth--
			target, err := b.readlinkRPC(p, h)
			if err != nil {
				return proto.Handle{}, proto.Fattr{}, err
			}
			rest := comps[i+1:]
			tcomps := vfs.SplitPath(target)
			next := cur // relative: resolve against the link's directory
			if len(target) > 0 && target[0] == '/' {
				next = b.cfg.Root
			}
			spliced := make([]string, 0, len(tcomps)+len(rest))
			spliced = append(spliced, tcomps...)
			spliced = append(spliced, rest...)
			if len(spliced) == 0 {
				// A symlink to its own directory.
				cur = next
				attr = proto.Fattr{Type: uint32(localfs.TypeDirectory)}
				break
			}
			return b.walkComps(p, next, spliced, needAttr, depth)
		}
		cur, attr = h, a
	}
	return cur, attr, nil
}

// walkCompsPath resolves comps with one ProcLookupPath round trip per
// symlink-free run: the server walks as many components as it can and
// stops early at a symbolic link, which the client expands and splices
// exactly like the per-component walker.
func (b *Base) walkCompsPath(p *sim.Proc, dir proto.Handle, comps []string, needAttr bool, depth int) (proto.Handle, proto.Fattr, error) {
	body, err := b.call(p, proto.ProcLookupPath, &proto.LookupPathArgs{Dir: dir, Names: comps})
	if err != nil {
		return proto.Handle{}, proto.Fattr{}, err
	}
	r := proto.DecodeLookupPathReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return proto.Handle{}, proto.Fattr{}, r.Status.Err()
	}
	if int(r.Resolved) > len(comps) || (int(r.Resolved) < len(comps) && r.Attr.Type != uint32(localfs.TypeSymlink)) {
		return proto.Handle{}, proto.Fattr{}, proto.ErrIO.Err()
	}
	if b.cfg.AttrPiggyback && r.Attr.Type != uint32(localfs.TypeSymlink) {
		b.attrs.ingest(b.getNode(r.Handle), r.Attr, p.Now())
	}
	if r.Attr.Type == uint32(localfs.TypeSymlink) {
		if depth <= 0 {
			return proto.Handle{}, proto.Fattr{}, proto.ErrIO.Err()
		}
		target, err := b.readlinkRPC(p, r.Handle)
		if err != nil {
			return proto.Handle{}, proto.Fattr{}, err
		}
		rest := comps[r.Resolved:]
		tcomps := vfs.SplitPath(target)
		next := r.Parent // relative: resolve against the link's directory
		if len(target) > 0 && target[0] == '/' {
			next = b.cfg.Root
		}
		spliced := make([]string, 0, len(tcomps)+len(rest))
		spliced = append(spliced, tcomps...)
		spliced = append(spliced, rest...)
		if len(spliced) == 0 {
			// A symlink to its own directory.
			return next, proto.Fattr{Type: uint32(localfs.TypeDirectory)}, nil
		}
		return b.walkComps(p, next, spliced, needAttr, depth-1)
	}
	return r.Handle, r.Attr, nil
}

func joinComps(comps []string) string {
	n := 0
	for _, c := range comps {
		n += len(c) + 1
	}
	buf := make([]byte, 0, n)
	for i, c := range comps {
		if i > 0 {
			buf = append(buf, '/')
		}
		buf = append(buf, c...)
	}
	return string(buf)
}

// invalidateDirCache drops the cwd cache (after namespace surgery).
func (b *Base) invalidateDirCache() { b.lastDirValid = false }

// DropDirCache invalidates the one-entry directory cache. Final-
// component walks already heal a stale cwd themselves (walkFor), but
// operations that send the cached parent handle straight to the server
// (create, mkdir, remove, rename, ...) surface its ESTALE to the
// caller; the cluster router drops the cache and retries so the fresh
// walk from the root can discover a migrated subtree's new home.
func (b *Base) DropDirCache() { b.invalidateDirCache() }

// walk resolves rel to a handle plus the attributes the final lookup
// returned.
func (b *Base) walk(p *sim.Proc, rel string) (proto.Handle, proto.Fattr, error) {
	return b.walkFor(p, rel, true)
}

// walkNoAttr resolves rel to a handle when the caller does not need
// fresh attributes (open paths get them from the open/create reply), so
// name-cache hits cost nothing.
func (b *Base) walkNoAttr(p *sim.Proc, rel string) (proto.Handle, error) {
	h, _, err := b.walkFor(p, rel, false)
	return h, err
}

func (b *Base) walkFor(p *sim.Proc, rel string, needAttr bool) (proto.Handle, proto.Fattr, error) {
	comps := vfs.SplitPath(rel)
	if len(comps) == 0 {
		var attr proto.Fattr
		attr.Type = 2 // the mount root is a directory
		attr.Fileid = b.cfg.Root.Ino
		return b.cfg.Root, attr, nil
	}
	dir, err := b.resolveDir(p, comps[:len(comps)-1])
	if err != nil {
		return proto.Handle{}, proto.Fattr{}, err
	}
	h, attr, err := b.walkComps(p, dir, comps[len(comps)-1:], needAttr, maxSymlinkDepth)
	if err != nil && proto.StatusOf(err) == proto.ErrStale && b.lastDirValid {
		// The cached directory went away; re-resolve from the root.
		b.invalidateDirCache()
		return b.walkFor(p, rel, needAttr)
	}
	return h, attr, err
}

// walkParent resolves all but the last component.
func (b *Base) walkParent(p *sim.Proc, rel string) (proto.Handle, string, error) {
	comps := vfs.SplitPath(rel)
	if len(comps) == 0 {
		return proto.Handle{}, "", proto.ErrInval.Err()
	}
	dir, err := b.resolveDir(p, comps[:len(comps)-1])
	if err != nil {
		return proto.Handle{}, "", err
	}
	return dir, comps[len(comps)-1], nil
}

// sortedNodeInos returns the known file inos in ascending order: map
// iteration order is randomized, and the order RPCs are issued in moves
// the simulated clock, so deterministic runs need a stable order.
func (b *Base) sortedNodeInos() []uint64 {
	inos := make([]uint64, 0, len(b.nodes))
	for ino := range b.nodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	return inos
}

// key builds the cache key for a block of a file.
func (b *Base) key(ino uint64, blk int64) cache.Key {
	return cache.Key{FS: b.cfg.Root.FSID, Ino: ino, Block: blk}
}

// readRPC fetches [off, off+count) from the server and returns data plus
// the attributes piggybacked on the reply.
func (b *Base) readRPC(p *sim.Proc, h proto.Handle, off int64, count int) ([]byte, proto.Fattr, error) {
	body, err := b.call(p, proto.ProcRead, &proto.ReadArgs{Handle: h, Offset: off, Count: uint32(count)})
	if err != nil {
		return nil, proto.Fattr{}, err
	}
	r := proto.DecodeReadReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return nil, proto.Fattr{}, r.Status.Err()
	}
	return r.Data, r.Attr, nil
}

// writeRPC sends [off, off+len(data)) to the server as a stable write:
// the data is on the server's disk when the reply arrives.
func (b *Base) writeRPC(p *sim.Proc, h proto.Handle, off int64, data []byte) (proto.Fattr, error) {
	body, err := b.call(p, proto.ProcWrite, &proto.WriteArgs{Handle: h, Offset: off, Data: data})
	if err != nil {
		return proto.Fattr{}, err
	}
	r := proto.DecodeWriteReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return proto.Fattr{}, r.Status.Err()
	}
	return r.Attr, nil
}

// writeBack pushes one block-aligned extent to the server on behalf of
// node n, choosing the pipeline the mount is configured for: a plain
// stable write, or an unstable write whose data is retained locally
// until commit() succeeds.
func (b *Base) writeBack(p *sim.Proc, n *node, off int64, data []byte) (proto.Fattr, error) {
	if !b.cfg.UnstableWrites {
		return b.writeRPC(p, n.h, off, data)
	}
	body, err := b.call(p, proto.ProcWrite, &proto.WriteArgs{Handle: n.h, Offset: off, Data: data, Unstable: true})
	if err != nil {
		return proto.Fattr{}, err
	}
	r := proto.DecodeWriteReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return proto.Fattr{}, r.Status.Err()
	}
	if !r.Committed {
		if n.unstable == nil {
			n.unstable = make(map[int64][]byte)
		}
		if len(n.unstable) == 0 {
			// The verifier of the first tracked ack: a COMMIT under a
			// different verifier means a reboot dropped this batch.
			n.unstableVerifier = r.Verifier
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		n.unstable[off] = cp
	}
	return r.Attr, nil
}

// commit makes n's unstable writes durable with one COMMIT RPC. If the
// reply's verifier does not match the one the unstable acks carried,
// the server rebooted in between and dropped the data: every retained
// block is redriven with stable writes (durable on reply, so no second
// COMMIT is needed). A stale handle means the file was removed — there
// is nothing left to make durable.
func (b *Base) commit(p *sim.Proc, n *node) error {
	if len(n.unstable) == 0 {
		return nil
	}
	body, err := b.call(p, proto.ProcCommit, &proto.CommitArgs{Handle: n.h})
	if err != nil {
		return err
	}
	r := proto.DecodeCommitReply(xdr.NewDecoder(body))
	if r.Status == proto.ErrStale {
		n.unstable, n.unstableVerifier = nil, 0
		return nil
	}
	if r.Status != proto.OK {
		return r.Status.Err()
	}
	if r.Verifier != n.unstableVerifier {
		offs := make([]int64, 0, len(n.unstable))
		for off := range n.unstable {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		b.Tracer().Record(b.host(), trace.Crash,
			"commit verifier %d != %d: redriving %d blocks", r.Verifier, n.unstableVerifier, len(offs))
		b.redriveBlocks += int64(len(offs))
		for _, off := range offs {
			if _, err := b.writeRPC(p, n.h, off, n.unstable[off]); err != nil {
				return err
			}
		}
	}
	b.commitsSent++
	n.unstable, n.unstableVerifier = nil, 0
	return nil
}

// CommitsSent counts successful COMMIT rounds (stats/tests).
func (b *Base) CommitsSent() int64 { return b.commitsSent }

// RedriveBlocks counts blocks resent after a verifier mismatch.
func (b *Base) RedriveBlocks() int64 { return b.redriveBlocks }

// getattrRPC fetches fresh attributes. Only the attribute-cache layer
// calls this; everyone else goes through attrs.get.
func (b *Base) getattrRPC(p *sim.Proc, h proto.Handle) (proto.Fattr, error) {
	body, err := b.call(p, proto.ProcGetattr, &proto.HandleArgs{Handle: h})
	if err != nil {
		return proto.Fattr{}, err
	}
	r := proto.DecodeAttrReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return proto.Fattr{}, r.Status.Err()
	}
	return r.Attr, nil
}

// ingestWcc feeds the post-op attributes of a WccReply into the
// attribute cache. Objects the client has no node for are skipped —
// wcc data is a cache hint, not worth materializing state over.
func (b *Base) ingestWcc(p *sim.Proc, wcc []proto.WccData) {
	for _, w := range wcc {
		if n, ok := b.nodes[w.Handle.Ino]; ok && n.h == w.Handle {
			b.attrs.ingest(n, w.Attr, p.Now())
		}
	}
}

// decodeWcc interprets a remove/rename/close reply: a WccReply when the
// request asked for post-op attributes (piggybacking armed), a bare
// StatusReply otherwise. Wcc attributes feed the attribute cache.
func (b *Base) decodeWcc(p *sim.Proc, body []byte) proto.Status {
	if !b.cfg.AttrPiggyback {
		return proto.DecodeStatusReply(xdr.NewDecoder(body)).Status
	}
	r := proto.DecodeWccReply(xdr.NewDecoder(body))
	b.ingestWcc(p, r.Wcc)
	return r.Status
}

// readdirAttrs lists a directory READDIRPLUS-style, priming the
// attribute cache with every entry's attributes (piggybacking armed).
func (b *Base) readdirAttrs(p *sim.Proc, h proto.Handle) ([]proto.DirEntry, error) {
	body, err := b.call(p, proto.ProcReaddirAttrs, &proto.HandleArgs{Handle: h})
	if err != nil {
		return nil, err
	}
	r := proto.DecodeReaddirAttrsReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return nil, r.Status.Err()
	}
	entries := make([]proto.DirEntry, 0, len(r.Entries))
	now := p.Now()
	for _, ent := range r.Entries {
		if ent.Attr.Type != uint32(localfs.TypeSymlink) {
			b.attrs.ingest(b.getNode(ent.Handle), ent.Attr, now)
		}
		entries = append(entries, proto.DirEntry{Name: ent.Name, Fileid: ent.Handle.Ino})
	}
	return entries, nil
}

// fetchBlock reads one whole block from the server into the cache and
// returns it, waiting instead of duplicating the RPC when a fetch is
// already in flight. The block's Len reflects how many bytes the server
// had.
func (b *Base) fetchBlock(p *sim.Proc, n *node, blk int64) (*cache.Block, error) {
	sp := b.span(p, span.Cache, "fetch")
	defer sp.End()
	key := b.key(n.h.Ino, blk)
	if sig, busy := b.fetching[key]; busy {
		sig.Wait(p)
		if cb, ok := b.cache.Lookup(key); ok {
			return cb, nil
		}
		// The other fetch failed or the block was immediately
		// evicted; fall through and fetch ourselves.
	}
	sig := sim.NewSignal(b.k)
	b.fetching[key] = sig
	defer func() {
		delete(b.fetching, key)
		sig.Fire(nil)
	}()
	bs := b.cfg.BlockSize
	off := blk * int64(bs)
	data, rattr, err := b.readRPC(p, n.h, off, bs)
	if err != nil {
		return nil, err
	}
	if b.cfg.AttrPiggyback {
		// Read replies carry fresh attributes; ingest before inserting
		// the block so a detected third-party change cannot invalidate
		// the data just fetched.
		b.attrs.ingest(n, rattr, p.Now())
	}
	buf := make([]byte, bs)
	copy(buf, data)
	blkPtr, evicted := b.cache.Insert(key, buf, len(data))
	b.flushEvicted(p, evicted)
	return blkPtr, nil
}

// flushEvicted writes back dirty blocks displaced by an insertion. The
// evicting process pays for the writes (as a Unix process taking a buffer
// must wait for it to be cleaned).
func (b *Base) flushEvicted(p *sim.Proc, evicted []*cache.Block) {
	for _, ev := range evicted {
		if !ev.Dirty {
			continue
		}
		n, ok := b.nodes[ev.Key.Ino]
		if !ok {
			continue
		}
		off := ev.Key.Block * int64(b.cfg.BlockSize)
		if _, err := b.writeBack(p, n, off, ev.Data[:ev.Len]); err != nil {
			// The file may have been removed under us; the data
			// is gone either way.
			continue
		}
	}
}

// assembleRead serves [off, off+count) from cached blocks, fetching
// misses, honoring the node's size view. fetch reports whether misses may
// be cached (false forces direct server reads — the SNFS uncachable
// path uses its own code, so fetch here is always true).
func (b *Base) assembleRead(p *sim.Proc, n *node, off int64, count int, readAhead bool) ([]byte, error) {
	size := n.size
	if off >= size {
		return nil, nil
	}
	end := off + int64(count)
	if end > size {
		end = size
	}
	bs := int64(b.cfg.BlockSize)
	out := make([]byte, 0, end-off)
	for cur := off; cur < end; {
		blk := cur / bs
		blkOff := cur % bs
		blkEnd := bs
		if blk*bs+blkEnd > end {
			blkEnd = end - blk*bs
		}
		cb, ok := b.cache.Lookup(b.key(n.h.Ino, blk))
		if !ok {
			var err error
			cb, err = b.fetchBlock(p, n, blk)
			if err != nil {
				return nil, err
			}
			if readAhead {
				b.readAhead(n, blk+1)
			}
		}
		// Bytes beyond cb.Len are zeros (sparse or locally
		// extended); cb.Data is always blockSize long.
		out = append(out, cb.Data[blkOff:blkEnd]...)
		cur = blk*bs + blkEnd
	}
	return out, nil
}

// readAhead prefetches block blk of n asynchronously if it is within the
// file, not resident, and not already being fetched, using a biod.
func (b *Base) readAhead(n *node, blk int64) {
	bs := int64(b.cfg.BlockSize)
	key := b.key(n.h.Ino, blk)
	if blk*bs >= n.size || b.cache.Contains(key) {
		return
	}
	if _, busy := b.fetching[key]; busy {
		return
	}
	if !b.biods.TryAcquire() {
		return
	}
	op := b.k.CurrentOp()
	b.k.Go(fmt.Sprintf("biod-ra/%d.%d", n.h.Ino, blk), func(p *sim.Proc) {
		if b.spans != nil {
			// Tag the prefetcher with the reading syscall's op (spans
			// armed only) so the read-ahead traces under that op.
			p.SetOp(op)
		}
		defer b.biods.Release()
		if b.cache.Contains(key) {
			return
		}
		b.fetchBlock(p, n, blk)
	})
}

// writeToCache applies data at off to the cache for node n, performing
// read-modify-write fetches when a partial write lands on a non-resident
// block that has server content. It returns the list of block numbers
// touched. markDirty controls whether touched blocks become dirty (SNFS
// delayed writes) or stay clean (NFS write-through keeps the cache clean
// copy while the data goes to the server separately).
func (b *Base) writeToCache(p *sim.Proc, n *node, off int64, data []byte, markDirty bool) ([]int64, error) {
	bs := int64(b.cfg.BlockSize)
	end := off + int64(len(data))
	var touched []int64
	for cur := off; cur < end; {
		blk := cur / bs
		blkStart := blk * bs
		segEnd := blkStart + bs
		if segEnd > end {
			segEnd = end
		}
		key := b.key(n.h.Ino, blk)
		cb, ok := b.cache.Lookup(key)
		if !ok {
			// If the block holds server content the write does
			// not fully cover, fetch it first (read-modify-
			// write); otherwise start from a zero block.
			contentEnd := n.size
			if contentEnd > blkStart+bs {
				contentEnd = blkStart + bs
			}
			needsFetch := contentEnd > blkStart && (cur > blkStart || segEnd < contentEnd)
			if needsFetch {
				var err error
				cb, err = b.fetchBlock(p, n, blk)
				if err != nil {
					return nil, err
				}
			} else {
				buf := make([]byte, bs)
				var evicted []*cache.Block
				cb, evicted = b.cache.Insert(key, buf, 0)
				b.flushEvicted(p, evicted)
			}
		}
		copy(cb.Data[cur-blkStart:segEnd-blkStart], data[cur-off:segEnd-off])
		if int(segEnd-blkStart) > cb.Len {
			cb.Len = int(segEnd - blkStart)
		}
		if markDirty {
			b.cache.MarkDirty(key, p.Now())
		}
		touched = append(touched, blk)
		cur = segEnd
	}
	if end > n.size {
		n.size = end
	}
	return touched, nil
}

// linkOps implements the vfs Link/Symlink/Readlink surface shared by all
// three client protocols (plain namespace mutations, like mkdir).

// Link creates a hard link newrel to the file at oldrel.
func (b *Base) Link(p *sim.Proc, oldrel, newrel string) error {
	from, _, err := b.walk(p, oldrel)
	if err != nil {
		return err
	}
	dir, name, err := b.walkParent(p, newrel)
	if err != nil {
		return err
	}
	body, err := b.call(p, proto.ProcLink, &proto.LinkArgs{From: from, ToDir: dir, ToName: name})
	if err != nil {
		return err
	}
	return proto.DecodeStatusReply(xdr.NewDecoder(body)).Status.Err()
}

// Symlink creates a symbolic link at linkrel pointing to target.
func (b *Base) Symlink(p *sim.Proc, target, linkrel string) error {
	dir, name, err := b.walkParent(p, linkrel)
	if err != nil {
		return err
	}
	body, err := b.call(p, proto.ProcSymlink, &proto.SymlinkArgs{Dir: dir, Name: name, Target: target})
	if err != nil {
		return err
	}
	return proto.DecodeHandleReply(xdr.NewDecoder(body)).Status.Err()
}

// Readlink returns the target of the symlink at rel (final component not
// followed).
func (b *Base) Readlink(p *sim.Proc, rel string) (string, error) {
	dir, name, err := b.walkParent(p, rel)
	if err != nil {
		return "", err
	}
	h, _, err := b.lookupRPC(p, dir, name)
	if err != nil {
		return "", err
	}
	return b.readlinkRPC(p, h)
}
