package client

import (
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/span"
	"spritelynfs/internal/vfs"
	"spritelynfs/internal/xdr"
)

// NFSOptions tunes the NFS client's consistency behaviour.
type NFSOptions struct {
	// InvalidateOnClose reproduces the bug in the paper's (several-
	// years-old) reference port: the client data cache is invalidated
	// when a file is closed, so write-then-reopen-then-read misses.
	// The paper attributes much of NFS's excess read traffic to it
	// (§5.2); later NFS releases fixed it. Default false; the harness
	// sets it to reproduce the measured configuration.
	InvalidateOnClose bool
	// ProbeMin/ProbeMax bound the adaptive attribute-cache timeout
	// (Ultrix probed every 3 to 150 seconds depending on file
	// history). Zero means 3 s / 150 s.
	ProbeMin sim.Duration
	ProbeMax sim.Duration
}

func (o *NFSOptions) fill() {
	if o.ProbeMin == 0 {
		o.ProbeMin = 3 * sim.Second
	}
	if o.ProbeMax == 0 {
		o.ProbeMax = 150 * sim.Second
	}
}

// NFSClient is the unmodified NFS client file system.
type NFSClient struct {
	*Base
	opts NFSOptions
}

// NewNFS creates an NFS client talking to cfg.Server through ep.
func NewNFS(k *sim.Kernel, ep *rpc.Endpoint, cfg Config, opts NFSOptions) *NFSClient {
	opts.fill()
	c := &NFSClient{Base: newBase(k, ep, cfg), opts: opts}
	c.attrs.policy = attrPolicyProbe
	c.attrs.probeMin = opts.ProbeMin
	c.attrs.probeMax = opts.ProbeMax
	return c
}

// revalidate refreshes attributes if the cache interval expired (or force
// is set — the on-open check). The attribute layer applies the probe
// policy and invalidates cached data when a third-party mtime change is
// observed (attrCache.observedChange).
func (c *NFSClient) revalidate(p *sim.Proc, n *node, force bool) error {
	_, _, err := c.attrs.get(p, n, force)
	return err
}

// walkChecked reports whether the walk's final-lookup attributes already
// performed the §2.1 open-time consistency check: with piggybacking
// armed, the lookup reply's attributes are exactly as server-fresh as
// the getattr the check would send, and Base.lookup ingested them (with
// the mtime-invalidate rule) moments ago. Root walks synthesize
// attributes locally and so still need the real check.
func (c *NFSClient) walkChecked(n *node, wattr proto.Fattr) bool {
	return c.cfg.AttrPiggyback && n.attrInit && wattr.Fileid == n.h.Ino && n.h != c.cfg.Root
}

// Open implements vfs.FS.
func (c *NFSClient) Open(p *sim.Proc, rel string, flags vfs.Flags, mode uint32) (vfs.File, error) {
	p.BeginOp()
	var n *node
	if flags&vfs.Create != 0 {
		dir, name, err := c.walkParent(p, rel)
		if err != nil {
			return nil, err
		}
		body, err := c.call(p, proto.ProcCreate, &proto.CreateArgs{Dir: dir, Name: name, Mode: mode})
		if err != nil {
			return nil, err
		}
		r := proto.DecodeHandleReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			return nil, r.Status.Err()
		}
		n = c.getNode(r.Handle)
		// A truncating re-create obsoletes anything cached.
		c.cache.InvalidateFile(c.cfg.Root.FSID, r.Handle.Ino)
		c.attrs.ingestOwn(n, r.Attr, p.Now())
		n.size = r.Attr.Size
	} else {
		h, wattr, err := c.walk(p, rel)
		if err != nil {
			return nil, err
		}
		n = c.getNode(h)
		// The consistency check made each time a file is opened (§2.1).
		// When the walk's lookup attributes already served as the
		// check, the getattr is pure chatter — the reduction this PR's
		// RPC-count benchmark tracks.
		if !c.walkChecked(n, wattr) {
			if err := c.revalidate(p, n, true); err != nil {
				return nil, err
			}
		}
		if flags&vfs.Truncate != 0 && !n.attr.IsDir() {
			body, err := c.call(p, proto.ProcSetattr, &proto.SetattrArgs{Handle: h, SetSize: true, Size: 0})
			if err != nil {
				return nil, err
			}
			r := proto.DecodeAttrReply(xdr.NewDecoder(body))
			if r.Status != proto.OK {
				return nil, r.Status.Err()
			}
			c.cache.InvalidateFile(c.cfg.Root.FSID, h.Ino)
			c.attrs.ingestOwn(n, r.Attr, p.Now())
			n.size = 0
		}
	}
	n.opens++
	return &nfsFile{c: c, n: n, writing: flags.Writing()}, nil
}

// Mkdir implements vfs.FS.
func (c *NFSClient) Mkdir(p *sim.Proc, rel string, mode uint32) error {
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcMkdir, &proto.CreateArgs{Dir: dir, Name: name, Mode: mode})
	if err != nil {
		return err
	}
	return proto.DecodeHandleReply(xdr.NewDecoder(body)).Status.Err()
}

// Remove implements vfs.FS. NFS cannot cancel writes already sent to the
// server; only locally delayed partial blocks are dropped.
func (c *NFSClient) Remove(p *sim.Proc, rel string) error {
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	// No-follow final lookup; a hard-linked inode outlives the unlink
	// and keeps its cache.
	h, attr, err := c.lookupRPC(p, dir, name)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcRemove,
		&proto.DirOpArgs{Dir: dir, Name: name, WantAttr: c.cfg.AttrPiggyback})
	if err != nil {
		return err
	}
	if st := c.decodeWcc(p, body); st != proto.OK {
		return st.Err()
	}
	if attr.Nlink <= 1 {
		c.cache.InvalidateFile(c.cfg.Root.FSID, h.Ino)
		delete(c.nodes, h.Ino)
	}
	return nil
}

// Rmdir implements vfs.FS.
func (c *NFSClient) Rmdir(p *sim.Proc, rel string) error {
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcRmdir, &proto.DirOpArgs{Dir: dir, Name: name})
	if err != nil {
		return err
	}
	c.invalidateDirCache()
	return proto.DecodeStatusReply(xdr.NewDecoder(body)).Status.Err()
}

// Rename implements vfs.FS.
func (c *NFSClient) Rename(p *sim.Proc, oldrel, newrel string) error {
	sdir, sname, err := c.walkParent(p, oldrel)
	if err != nil {
		return err
	}
	ddir, dname, err := c.walkParent(p, newrel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcRename, &proto.RenameArgs{
		SrcDir: sdir, SrcName: sname, DstDir: ddir, DstName: dname,
		WantAttr: c.cfg.AttrPiggyback,
	})
	if err != nil {
		return err
	}
	c.invalidateDirCache()
	return c.decodeWcc(p, body).Err()
}

// Stat implements vfs.FS: path resolution alone delivers attributes.
func (c *NFSClient) Stat(p *sim.Proc, rel string) (proto.Fattr, error) {
	_, attr, err := c.walk(p, rel)
	return attr, err
}

// Readdir implements vfs.FS: the GFS open of the directory triggers the
// usual open-time getattr check, then one readdir call (READDIRPLUS-
// style when piggybacking is armed, priming the attribute cache for the
// stats that typically follow a listing).
func (c *NFSClient) Readdir(p *sim.Proc, rel string) ([]proto.DirEntry, error) {
	h, wattr, err := c.walk(p, rel)
	if err != nil {
		return nil, err
	}
	n := c.getNode(h)
	if !c.walkChecked(n, wattr) {
		if err := c.revalidate(p, n, true); err != nil {
			return nil, err
		}
	}
	if c.cfg.AttrPiggyback {
		return c.readdirAttrs(p, h)
	}
	body, err := c.call(p, proto.ProcReaddir, &proto.HandleArgs{Handle: h})
	if err != nil {
		return nil, err
	}
	r := proto.DecodeReaddirReply(xdr.NewDecoder(body))
	if r.Status != proto.OK {
		return nil, r.Status.Err()
	}
	return r.Entries, nil
}

// SyncAll implements vfs.FS: flush delayed partial blocks, wait for the
// biods, then one COMMIT per file with unstable data outstanding —
// instead of the N synchronous waits the stable pipeline pays.
func (c *NFSClient) SyncAll(p *sim.Proc) {
	for _, blk := range c.cache.AllDirty() {
		n, ok := c.nodes[blk.Key.Ino]
		if !ok {
			c.cache.MarkClean(blk.Key)
			continue
		}
		c.flushBlockSync(p, n, blk.Key.Block)
	}
	for _, n := range c.nodes {
		sp := c.span(p, span.BiodWait, "syncall")
		n.pending.Wait(p)
		sp.End()
	}
	for _, ino := range c.sortedNodeInos() {
		if n := c.nodes[ino]; n != nil {
			c.commit(p, n)
		}
	}
}

// flushBlockSync writes one dirty block back synchronously.
func (c *NFSClient) flushBlockSync(p *sim.Proc, n *node, blk int64) error {
	key := c.key(n.h.Ino, blk)
	cb, ok := c.cache.Lookup(key)
	if !ok || !cb.Dirty {
		return nil
	}
	off := blk * int64(c.cfg.BlockSize)
	attr, err := c.writeBack(p, n, off, cb.Data[:cb.Len])
	if err != nil {
		return err
	}
	c.cache.MarkClean(key)
	c.attrs.ingestOwn(n, attr, p.Now())
	return nil
}

// pushBlockAsync hands a completed block to a biod (write-through without
// blocking the application); with no biod free the caller writes
// synchronously, as Unix did.
func (c *NFSClient) pushBlockAsync(p *sim.Proc, n *node, blk int64) error {
	key := c.key(n.h.Ino, blk)
	cb, ok := c.cache.Lookup(key)
	if !ok || !cb.Dirty {
		return nil
	}
	if c.biods.TryAcquire() {
		n.pending.Add(1)
		data := make([]byte, cb.Len)
		copy(data, cb.Data[:cb.Len])
		c.cache.MarkClean(key)
		off := blk * int64(c.cfg.BlockSize)
		op := p.Op()
		c.k.Go("biod-w", func(wp *sim.Proc) {
			if c.spans != nil {
				// Tag the biod with the pushing syscall's op so its
				// write-back traces under that op (or as background
				// once the syscall has finished). Only when spans are
				// armed — untagged runs stay byte-identical.
				wp.SetOp(op)
			}
			defer c.biods.Release()
			defer n.pending.Done()
			attr, err := c.writeBack(wp, n, off, data)
			if err != nil {
				n.werr = err
				return
			}
			c.attrs.ingestOwn(n, attr, wp.Now())
		})
		return nil
	}
	return c.flushBlockSync(p, n, blk)
}

// nfsFile is an open NFS file.
type nfsFile struct {
	c       *NFSClient
	n       *node
	writing bool
	closed  bool
}

// Handle exposes the protocol-level handle (audit.Handled).
func (f *nfsFile) Handle() proto.Handle { return f.n.h }

// ReadAt implements vfs.File.
func (f *nfsFile) ReadAt(p *sim.Proc, off int64, count int) ([]byte, error) {
	p.BeginOp()
	if err := f.c.revalidate(p, f.n, false); err != nil {
		return nil, err
	}
	return f.c.assembleRead(p, f.n, off, count, f.c.cfg.ReadAhead)
}

// WriteAt implements vfs.File: write-through, with completed blocks
// pushed immediately through the biods and the partial tail block delayed
// until it fills or the file closes (§2.1 and footnote 4).
func (f *nfsFile) WriteAt(p *sim.Proc, off int64, data []byte) (int, error) {
	p.BeginOp()
	touched, err := f.c.writeToCache(p, f.n, off, data, true)
	if err != nil {
		return 0, err
	}
	for _, blk := range touched {
		cb, ok := f.c.cache.Lookup(f.c.key(f.n.h.Ino, blk))
		if !ok || !cb.Dirty {
			continue
		}
		if cb.Len == f.c.cfg.BlockSize {
			if err := f.c.pushBlockAsync(p, f.n, blk); err != nil {
				return 0, err
			}
		}
	}
	return len(data), nil
}

// Close implements vfs.File: all pending write-throughs finish
// synchronously before close returns (§2.1), and — when the measured
// bug is enabled — the data cache is invalidated.
func (f *nfsFile) Close(p *sim.Proc) error {
	if f.closed {
		return nil
	}
	f.closed = true
	var err error
	for _, blk := range f.c.cache.DirtyBlocks(f.c.cfg.Root.FSID, f.n.h.Ino) {
		if e := f.c.flushBlockSync(p, f.n, blk.Key.Block); e != nil && err == nil {
			err = e
		}
	}
	bw := f.c.span(p, span.BiodWait, "close")
	f.n.pending.Wait(p)
	bw.End()
	// One COMMIT covers everything the biods sent unstable — the whole
	// file reaches the disk in gathered arm operations, replacing the
	// per-block synchronous waits of the stable pipeline (§2.1).
	if e := f.c.commit(p, f.n); e != nil && err == nil {
		err = e
	}
	if f.n.werr != nil && err == nil {
		err = f.n.werr
		f.n.werr = nil
	}
	f.n.opens--
	if f.c.opts.InvalidateOnClose && f.n.opens <= 0 {
		f.c.cache.InvalidateFile(f.c.cfg.Root.FSID, f.n.h.Ino)
	}
	return err
}

// Sync implements vfs.File.
func (f *nfsFile) Sync(p *sim.Proc) error {
	for _, blk := range f.c.cache.DirtyBlocks(f.c.cfg.Root.FSID, f.n.h.Ino) {
		if err := f.c.flushBlockSync(p, f.n, blk.Key.Block); err != nil {
			return err
		}
	}
	bw := f.c.span(p, span.BiodWait, "sync")
	f.n.pending.Wait(p)
	bw.End()
	return f.c.commit(p, f.n)
}

// Attr implements vfs.File.
func (f *nfsFile) Attr(p *sim.Proc) (proto.Fattr, error) {
	if err := f.c.revalidate(p, f.n, false); err != nil {
		return proto.Fattr{}, err
	}
	a := f.n.attr
	if f.n.size > a.Size {
		a.Size = f.n.size
	}
	return a, nil
}
