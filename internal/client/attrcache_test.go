package client

import (
	"testing"

	"spritelynfs/internal/core"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
)

// newTestBase builds a Base with no live server: enough for exercising
// the attribute-cache rules, which decide locally.
func newTestBase(policy attrPolicy) *Base {
	k := sim.NewKernel(1)
	ep := rpc.NewEndpoint(k, simnet.New(k, simnet.Config{}), "c", rpc.Options{})
	b := newBase(k, ep, Config{
		Server:    "server",
		Root:      proto.Handle{FSID: 1, Ino: 1, Gen: 1},
		BlockSize: 4096,
	})
	b.attrs.policy = policy
	return b
}

// TestWriteSharedAttrsNeverCached checks the §4.3 rule both protocols
// share: while a file is WRITE-SHARED (open, caching disabled by the
// server) no piggybacked attributes — third-party or the client's own —
// may enter the cache, because a concurrent writer moves them at any
// time. Once the server re-enables caching, or the file is closed,
// installs resume. The SNFS client drives n.rec from open replies; here
// the record is set directly so the shared rule is exercised under both
// policies.
func TestWriteSharedAttrsNeverCached(t *testing.T) {
	cases := []struct {
		name   string
		policy attrPolicy
	}{
		{"NFS-probe", attrPolicyProbe},
		{"SNFS-protocol", attrPolicyProtocol},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newTestBase(tc.policy)
			h := proto.Handle{FSID: 1, Ino: 42, Gen: 1}
			n := b.getNode(h)
			now := b.k.Now()

			// Cachable file: piggybacked attributes install.
			a1 := proto.Fattr{Fileid: 42, Size: 100, Mtime: 5}
			n.rec.Readers, n.rec.Caching = 1, true
			b.attrs.ingest(n, a1, now)
			if !n.attrInit || n.attr != a1 {
				t.Fatalf("cachable ingest not installed: %+v", n.attr)
			}
			if s := b.attrs.Stats(); s.Ingests != 1 || s.SharedDrops != 0 {
				t.Fatalf("stats after cachable ingest: %+v", s)
			}

			// WRITE-SHARED: a writer appears, the server disables
			// caching. Neither observation nor own-write attributes may
			// be cached.
			n.rec.Writers, n.rec.Caching = 1, false
			a2 := proto.Fattr{Fileid: 42, Size: 200, Mtime: 9}
			b.attrs.ingest(n, a2, now)
			b.attrs.ingestOwn(n, a2, now)
			if n.attr != a1 {
				t.Fatalf("write-shared ingest was cached: %+v", n.attr)
			}
			if s := b.attrs.Stats(); s.Ingests != 1 || s.SharedDrops != 2 {
				t.Fatalf("stats after write-shared ingests: %+v", s)
			}
			// Whatever is left from before must not be served either.
			if b.attrs.fresh(n, now) {
				t.Fatal("stale pre-sharing attributes considered fresh while write-shared")
			}

			// The server re-enables caching (the sharing ended): the
			// next piggyback installs again.
			n.rec.Writers, n.rec.Caching = 0, true
			a3 := proto.Fattr{Fileid: 42, Size: 300, Mtime: 12}
			b.attrs.ingest(n, a3, now)
			if n.attr != a3 {
				t.Fatalf("post-sharing ingest not installed: %+v", n.attr)
			}

			// Fully closed (zero record) is never write-shared: installs
			// keep working — the NFS client lives here permanently.
			n.rec = core.FileRecord{}
			a4 := proto.Fattr{Fileid: 42, Size: 400, Mtime: 20}
			b.attrs.ingestOwn(n, a4, now)
			if n.attr != a4 {
				t.Fatalf("closed-file ingest not installed: %+v", n.attr)
			}
			if s := b.attrs.Stats(); s.Ingests != 3 || s.SharedDrops != 2 {
				t.Fatalf("final stats: %+v", s)
			}
		})
	}
}
