package client_test

import (
	"bytes"
	"testing"

	"spritelynfs/internal/audit"
	"spritelynfs/internal/client"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// TestNFSCommitAfterRebootRedrive exercises the full unstable-WRITE /
// COMMIT crash story on the vanilla NFS pipeline: the biods push blocks
// unstable, the server reboots (losing its buffered copies and bumping
// the write verifier), and the COMMIT at close detects the mismatch and
// redrives every block as a stable write. The audit write ledger proves
// no committed block was lost and no stale data was served.
func TestNFSCommitAfterRebootRedrive(t *testing.T) {
	w := newWorld(1, false, 4, server.SNFSOptions{})
	auditor := audit.New(w.k, nil)

	wep, wcfg := w.clientConfig("writer")
	wcfg.UnstableWrites = true
	writer := client.NewNFS(w.k, wep, wcfg, client.NFSOptions{})
	wfs := auditor.WrapFS(writer)

	rep, rcfg := w.clientConfig("reader")
	reader := client.NewNFS(w.k, rep, rcfg, client.NFSOptions{})
	rfs := auditor.WrapFS(reader)

	want := fill(6*4096, 'u')
	run(t, w.k, func(p *sim.Proc) {
		f, err := wfs.Open(p, "f.dat", vfs.WriteOnly|vfs.Create|vfs.Truncate, 0o644)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := f.WriteAt(p, 0, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Let the biods drain: all six blocks are now acked unstable,
		// buffered in server memory only.
		p.Sleep(sim.Second)
		if n := w.media.DirtyBlocks(); n == 0 {
			t.Fatal("precondition: unstable writes left no dirty server blocks")
		}

		// The server dies before the client commits. Its buffered
		// copies are gone and the write verifier changes.
		w.nfs.Crash()
		w.nfs.Reboot()

		// Close sends the COMMIT, sees the new verifier, and redrives
		// the whole file with stable writes.
		if err := f.Close(p); err != nil {
			t.Fatalf("close after reboot: %v", err)
		}
		if got := writer.RedriveBlocks(); got != 6 {
			t.Errorf("redrove %d blocks, want 6", got)
		}
		if got := writer.CommitsSent(); got != 1 {
			t.Errorf("commits sent %d, want 1", got)
		}
		if n := w.media.DirtyBlocks(); n != 0 {
			t.Errorf("%d dirty server blocks after redrive; stable writes must reach the disk", n)
		}

		// A second client must observe exactly the committed bytes.
		got := readBack(t, p, rfs, "f.dat", len(want))
		if !bytes.Equal(got, want) {
			t.Error("reader saw wrong data after commit redrive")
		}
	})
	if err := auditor.Err(); err != nil {
		t.Errorf("audit ledger: %v", err)
	}
}

// TestNFSCommitNoRebootNoRedrive is the control: without a crash the
// COMMIT verifier matches and nothing is redriven.
func TestNFSCommitNoRebootNoRedrive(t *testing.T) {
	w := newWorld(1, false, 4, server.SNFSOptions{})
	wep, wcfg := w.clientConfig("writer")
	wcfg.UnstableWrites = true
	writer := client.NewNFS(w.k, wep, wcfg, client.NFSOptions{})

	want := fill(6*4096, 'v')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, writer, "f.dat", want)
		if got := writer.RedriveBlocks(); got != 0 {
			t.Errorf("redrove %d blocks with no crash", got)
		}
		if got := writer.CommitsSent(); got == 0 {
			t.Error("no COMMIT sent on close")
		}
		if n := w.media.DirtyBlocks(); n != 0 {
			t.Errorf("%d dirty server blocks survive COMMIT", n)
		}
	})
}

// TestSNFSCommitAfterRebootRedrive crashes the server in the middle of an
// SNFS sync pass: some unstable writes are acked by the dying incarnation,
// the COMMIT fails, and the keepalive-triggered recovery must notice the
// verifier change and redrive them. Client B then reads the file through
// the recovered server; the audit ledger confirms it saw no stale or lost
// data.
func TestSNFSCommitAfterRebootRedrive(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{GraceDur: sim.Second})
	auditor := audit.New(w.k, nil)
	w.snfs.SetAuditor(auditor)

	aep, acfg := w.clientConfig("clientA")
	acfg.UnstableWrites = true
	a := client.NewSNFS(w.k, aep, acfg, client.SNFSOptions{KeepaliveInterval: 500 * sim.Millisecond})
	afs := auditor.WrapFS(a)

	b := w.addSNFS("clientB", client.SNFSOptions{})
	bfs := auditor.WrapFS(b)

	want := fill(6*4096, 'w')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, afs, "f.dat", want)
		// Keepalive learns the first epoch; dirty blocks stay delayed.
		p.Sleep(sim.Second)

		// Crash mid-sync: by ~12 ms into the pass a few unstable
		// writes are acked but the COMMIT has not gone out.
		syncStart := p.Now()
		w.k.Go("killer", func(kp *sim.Proc) {
			kp.Sleep(syncStart.Add(12 * sim.Millisecond).Sub(kp.Now()))
			w.snfs.Crash()
			kp.Sleep(2 * sim.Second)
			w.snfs.Reboot()
		})
		a.SyncAll(p) // interrupted: acked-unstable data is now orphaned

		// Keepalive notices the new epoch and recovers: COMMIT sees
		// the changed verifier and redrives the orphaned blocks.
		p.Sleep(5 * sim.Second)
		if got := a.RedriveBlocks(); got == 0 {
			t.Error("no blocks redriven after mid-sync crash")
		}
		a.SyncAll(p) // flush anything still delayed from the failed pass

		got := readBack(t, p, bfs, "f.dat", len(want))
		if !bytes.Equal(got, want) {
			t.Error("B read wrong data after commit recovery")
		}
	})
	if err := auditor.Err(); err != nil {
		t.Errorf("audit ledger: %v", err)
	}
}
