package client_test

import (
	"bytes"
	"testing"

	"spritelynfs/internal/client"
	"spritelynfs/internal/disk"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/vfs"
)

// world wires a server host and any number of client hosts to a simulated
// network, mirroring the paper's testbed of identical Titans on an
// Ethernet.
type world struct {
	k     *sim.Kernel
	net   *simnet.Network
	media *localfs.Media
	nfs   *server.NFSServer
	snfs  *server.SNFSServer
	root  proto.Handle
}

func netConfig() simnet.Config {
	// 10 Mbit/s Ethernet, ~0.5 ms protocol latency.
	return simnet.Config{PropDelay: 500 * sim.Microsecond, BytesPerSec: 1_250_000}
}

func newWorld(seed int64, useSNFS bool, workers int, snfsOpts server.SNFSOptions) *world {
	k := sim.NewKernel(seed)
	net := simnet.New(k, netConfig())
	ep := rpc.NewEndpoint(k, net, "server", rpc.Options{Workers: workers})
	st := localfs.NewStore(k.Now, 4096)
	d := disk.New(k, "sd", disk.RA81())
	media := localfs.NewMedia(st, d, 1, 3500*1024)
	w := &world{k: k, net: net, media: media}
	if useSNFS {
		w.snfs = server.NewSNFS(k, ep, media, server.Config{FSID: 1}, snfsOpts)
		w.root = w.snfs.RootHandle()
	} else {
		w.nfs = server.NewNFS(k, ep, media, server.Config{FSID: 1})
		w.root = w.nfs.RootHandle()
	}
	return w
}

func (w *world) clientConfig(name simnet.Addr) (*rpc.Endpoint, client.Config) {
	ep := rpc.NewEndpoint(w.k, w.net, name, rpc.Options{Workers: 4})
	return ep, client.Config{
		Server:    "server",
		Root:      w.root,
		BlockSize: 4096,
		ReadAhead: true,
	}
}

func (w *world) addNFS(name simnet.Addr, opts client.NFSOptions) *client.NFSClient {
	ep, cfg := w.clientConfig(name)
	return client.NewNFS(w.k, ep, cfg, opts)
}

func (w *world) addSNFS(name simnet.Addr, opts client.SNFSOptions) *client.SNFSClient {
	ep, cfg := w.clientConfig(name)
	return client.NewSNFS(w.k, ep, cfg, opts)
}

// run executes fn as the test's main simulation process and then stops
// the world.
func run(t *testing.T, k *sim.Kernel, fn func(p *sim.Proc)) {
	t.Helper()
	k.Go("test-main", func(p *sim.Proc) {
		defer k.Stop()
		fn(p)
	})
	k.Run()
}

// fill produces recognizable file content.
func fill(n int, tag byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag + byte(i%31)
	}
	return b
}

func writeThrough(t *testing.T, p *sim.Proc, fs vfs.FS, path string, data []byte) {
	t.Helper()
	f, err := fs.Open(p, path, vfs.WriteOnly|vfs.Create|vfs.Truncate, 0o644)
	if err != nil {
		t.Errorf("create %s: %v", path, err)
		return
	}
	if _, err := f.WriteAt(p, 0, data); err != nil {
		t.Errorf("write %s: %v", path, err)
	}
	if err := f.Close(p); err != nil {
		t.Errorf("close %s: %v", path, err)
	}
}

func readBack(t *testing.T, p *sim.Proc, fs vfs.FS, path string, n int) []byte {
	t.Helper()
	f, err := fs.Open(p, path, vfs.ReadOnly, 0)
	if err != nil {
		t.Errorf("open %s: %v", path, err)
		return nil
	}
	data, err := f.ReadAt(p, 0, n)
	if err != nil {
		t.Errorf("read %s: %v", path, err)
	}
	if err := f.Close(p); err != nil {
		t.Errorf("close %s: %v", path, err)
	}
	return data
}

// ---- NFS client behaviour ----

func TestNFSRoundTrip(t *testing.T) {
	w := newWorld(1, false, 4, server.SNFSOptions{})
	c := w.addNFS("clientA", client.NFSOptions{})
	want := fill(10000, 'a')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", want)
		got := readBack(t, p, c, "f.dat", 20000)
		if !bytes.Equal(got, want) {
			t.Errorf("read back %d bytes, want %d; mismatch", len(got), len(want))
		}
	})
}

func TestNFSWriteReachesServerByClose(t *testing.T) {
	w := newWorld(1, false, 4, server.SNFSOptions{})
	c := w.addNFS("clientA", client.NFSOptions{})
	want := fill(9000, 'b')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", want)
		// Inspect the server store directly: NFS close must have
		// flushed everything through.
		st := w.media.Store()
		a, err := st.Lookup(st.Root(), "f.dat")
		if err != nil {
			t.Fatalf("server lookup: %v", err)
		}
		data, _ := st.ReadAt(a.Ino, 0, 20000)
		if !bytes.Equal(data, want) {
			t.Errorf("server copy differs after close (%d vs %d bytes)", len(data), len(want))
		}
	})
}

func TestNFSSequentialSharingViaOpenCheck(t *testing.T) {
	// Writer closes before reader opens: NFS provides consistency in
	// this case through the open-time getattr (§2.3).
	w := newWorld(1, false, 4, server.SNFSOptions{})
	a := w.addNFS("clientA", client.NFSOptions{})
	b := w.addNFS("clientB", client.NFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(4096, 'x'))
		got := readBack(t, p, b, "f.dat", 4096)
		if !bytes.Equal(got, fill(4096, 'x')) {
			t.Fatal("B read wrong initial data")
		}
		p.Sleep(sim.Second)
		writeThrough(t, p, a, "f.dat", fill(4096, 'y'))
		got = readBack(t, p, b, "f.dat", 4096)
		if !bytes.Equal(got, fill(4096, 'y')) {
			t.Error("B missed A's update despite close-before-open (sequential write sharing broken)")
		}
	})
}

func TestNFSStalenessWindow(t *testing.T) {
	// The flaw the paper fixes: a reader holding a file open sees stale
	// cached data until the next attribute probe.
	w := newWorld(1, false, 4, server.SNFSOptions{})
	a := w.addNFS("clientA", client.NFSOptions{})
	b := w.addNFS("clientB", client.NFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(4096, 'x'))
		fb, err := b.Open(p, "f.dat", vfs.ReadOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		first, _ := fb.ReadAt(p, 0, 4096)
		if !bytes.Equal(first, fill(4096, 'x')) {
			t.Fatal("initial read wrong")
		}
		// A overwrites while B still has the file open.
		writeThrough(t, p, a, "f.dat", fill(4096, 'z'))
		// Immediately after, B re-reads: cached (stale) data, because
		// the probe interval has not expired.
		stale, _ := fb.ReadAt(p, 0, 4096)
		if !bytes.Equal(stale, first) {
			t.Error("expected stale read inside the probe window (NFS has no true consistency)")
		}
		// After the probe interval, B's next read revalidates.
		p.Sleep(200 * sim.Second)
		fresh, _ := fb.ReadAt(p, 0, 4096)
		if !bytes.Equal(fresh, fill(4096, 'z')) {
			t.Error("B never converged to A's data after the probe interval")
		}
		fb.Close(p)
	})
}

func TestNFSInvalidateOnCloseBugCostsReads(t *testing.T) {
	// The measured reference port invalidated the cache on close; a
	// write-close-reopen-read sequence re-reads everything (§5.2).
	for _, bug := range []bool{false, true} {
		w := newWorld(1, false, 4, server.SNFSOptions{})
		c := w.addNFS("clientA", client.NFSOptions{InvalidateOnClose: bug})
		var readsWithBug int64
		run(t, w.k, func(p *sim.Proc) {
			writeThrough(t, p, c, "f.dat", fill(40960, 'q'))
			readBack(t, p, c, "f.dat", 40960)
			readsWithBug = c.Ops().Get("read")
		})
		if bug && readsWithBug == 0 {
			t.Error("bug enabled but no re-read traffic")
		}
		if !bug && readsWithBug != 0 {
			t.Errorf("bug disabled but %d read RPCs issued (cache should have served)", readsWithBug)
		}
	}
}

func TestNFSPartialBlockWriteDelayed(t *testing.T) {
	// Writes not extending to the end of a block are delayed (footnote
	// 4); the close flushes them.
	w := newWorld(1, false, 4, server.SNFSOptions{})
	c := w.addNFS("clientA", client.NFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		f, err := c.Open(p, "f.dat", vfs.WriteOnly|vfs.Create, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(p, 0, fill(100, 'p')) // partial block
		if got := c.Ops().Get("write"); got != 0 {
			t.Errorf("partial-block write went through immediately (%d write RPCs)", got)
		}
		f.Close(p)
		if got := c.Ops().Get("write"); got != 1 {
			t.Errorf("close flushed %d write RPCs, want 1", got)
		}
	})
}

// ---- SNFS client behaviour ----

func TestSNFSRoundTripAndDelayedWrite(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	want := fill(10000, 'c')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", want)
		// Delayed write-back: nothing at the server yet.
		if got := c.Ops().Get("write"); got != 0 {
			t.Errorf("%d write RPCs before any sync; delayed write-back broken", got)
		}
		// The client itself reads its own cache correctly.
		got := readBack(t, p, c, "f.dat", 20000)
		if !bytes.Equal(got, want) {
			t.Error("self read-back mismatch")
		}
		if reads := c.Ops().Get("read"); reads != 0 {
			t.Errorf("%d read RPCs for self-cached data", reads)
		}
		// An explicit sync pass pushes the blocks.
		c.SyncPass(p)
		if got := c.Ops().Get("write"); got == 0 {
			t.Error("sync pass wrote nothing")
		}
		st := w.media.Store()
		a, err := st.Lookup(st.Root(), "f.dat")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := st.ReadAt(a.Ino, 0, 20000)
		if !bytes.Equal(data, want) {
			t.Error("server copy wrong after sync")
		}
	})
}

func TestSNFSCacheSurvivesClose(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", fill(40960, 'd'))
		c.SyncPass(p)
		base := c.Ops().Get("read")
		readBack(t, p, c, "f.dat", 40960)
		if got := c.Ops().Get("read") - base; got != 0 {
			t.Errorf("reopen after close issued %d read RPCs; cache should survive close", got)
		}
	})
}

func TestSNFSDeleteBeforeWriteback(t *testing.T) {
	// The temp-file optimization: create, write, close, delete — zero
	// data ever crosses the network (§4.2.3, Table 5-6).
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "tmp1", fill(100000, 't'))
		if err := c.Remove(p, "tmp1"); err != nil {
			t.Fatal(err)
		}
		c.SyncPass(p)
		if got := c.Ops().Get("write"); got != 0 {
			t.Errorf("%d write RPCs for a deleted temp file, want 0", got)
		}
	})
}

func TestSNFSSequentialSharingViaCallback(t *testing.T) {
	// A writes and closes (dirty blocks stay at A); B opens to read.
	// The server must call A back for the dirty blocks before B's open
	// completes, and B must see A's data.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	want := fill(20000, 'e')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", want)
		if a.Ops().Get("write") != 0 {
			t.Fatal("precondition: A should still hold dirty blocks")
		}
		got := readBack(t, p, b, "f.dat", 40000)
		if !bytes.Equal(got, want) {
			t.Errorf("B read %d bytes, mismatch: callback write-back failed", len(got))
		}
		if a.Ops().Get("write") == 0 {
			t.Error("A never wrote back despite the callback")
		}
		if a.CallbacksServed == 0 {
			t.Error("A served no callbacks")
		}
	})
}

func TestSNFSConcurrentWriteSharingIsConsistent(t *testing.T) {
	// The paper's headline guarantee: reader and writer concurrently
	// open, caching disabled for both, every read sees the latest
	// write.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "shared", fill(4096, '0'))
		fa, err := a.Open(p, "shared", vfs.ReadOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := b.Open(p, "shared", vfs.ReadWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		for round := byte(1); round <= 3; round++ {
			want := fill(4096, '0'+round)
			if _, err := fb.WriteAt(p, 0, want); err != nil {
				t.Fatal(err)
			}
			got, err := fa.ReadAt(p, 0, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: reader saw stale data while write-shared", round)
			}
		}
		fa.Close(p)
		fb.Close(p)
	})
}

func TestSNFSVersionInvalidatesStaleCache(t *testing.T) {
	// A caches the file; B rewrites it (open-for-write bumps the
	// version); A's reopen sees a version mismatch and refetches.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(8192, 'v'))
		readBack(t, p, a, "f.dat", 8192) // warm A's cache
		writeThrough(t, p, b, "f.dat", fill(8192, 'w'))
		got := readBack(t, p, a, "f.dat", 8192)
		if !bytes.Equal(got, fill(8192, 'w')) {
			t.Error("A served stale cache despite version bump")
		}
	})
}

func TestSNFSSameClientReopenForWriteKeepsCache(t *testing.T) {
	// The prev-version rule (§3.1): the writer's own reopen-for-write
	// must not invalidate its cache.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", fill(40960, 'k'))
		base := c.Ops().Get("read")
		f, err := c.Open(p, "f.dat", vfs.ReadWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := f.ReadAt(p, 0, 40960)
		if !bytes.Equal(data, fill(40960, 'k')) {
			t.Error("content wrong")
		}
		f.Close(p)
		if got := c.Ops().Get("read") - base; got != 0 {
			t.Errorf("reopen-for-write refetched %d blocks; prev-version rule broken", got)
		}
	})
}

func TestSNFSUpdateDaemonFlushesEvery30s(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{UpdateInterval: 30 * sim.Second})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", fill(8192, 'u'))
		if c.Ops().Get("write") != 0 {
			t.Fatal("wrote early")
		}
		p.Sleep(31 * sim.Second)
		if c.Ops().Get("write") == 0 {
			t.Error("update daemon never flushed")
		}
	})
}

func TestSNFSInfiniteWriteDelay(t *testing.T) {
	// UpdateInterval zero = the /etc/update-disabled configuration of
	// Table 5-5: shortlived data never touches the network.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{UpdateInterval: 0})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", fill(8192, 'i'))
		p.Sleep(5 * sim.Minute)
		if got := c.Ops().Get("write"); got != 0 {
			t.Errorf("%d writes with update disabled", got)
		}
	})
}

func TestSNFSDeadClientWarnsNextOpener(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(4096, 'x'))
		// A crashes holding dirty blocks.
		a.Endpoint().Stop()
		got := readBack(t, p, b, "f.dat", 4096)
		// The file opens (possibly with stale/empty content — the
		// data was never written back).
		_ = got
		if b.Inconsistencies != 1 {
			t.Errorf("B recorded %d inconsistency warnings, want 1", b.Inconsistencies)
		}
	})
}

func TestSNFSDelayedCloseSavesRPCs(t *testing.T) {
	// §6.2: the popular-header pattern — repeated open/read/close of
	// the same file — costs one open RPC total instead of one per open.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{DelayedClose: true})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "hdr.h", fill(4096, 'h'))
		c.SyncPass(p)
		opensBefore := c.Ops().Get("open")
		for i := 0; i < 10; i++ {
			readBack(t, p, c, "hdr.h", 4096)
		}
		extraOpens := c.Ops().Get("open") - opensBefore
		if extraOpens > 1 {
			t.Errorf("10 reopens cost %d open RPCs; delayed close should make them local", extraOpens)
		}
		if c.LocalReopens < 9 {
			t.Errorf("only %d local reopens", c.LocalReopens)
		}
	})
}

func TestSNFSCrashRecovery(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{GraceDur: sim.Second})
	a := w.addSNFS("clientA", client.SNFSOptions{KeepaliveInterval: 500 * sim.Millisecond})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	want := fill(8192, 'r')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", want)
		// Let A's keepalive learn the first epoch.
		p.Sleep(sim.Second)
		w.snfs.Crash()
		p.Sleep(2 * sim.Second)
		w.snfs.Reboot()
		// A's keepalive notices the epoch change and re-registers its
		// dirty-file state within a few periods.
		p.Sleep(3 * sim.Second)
		// B opens: the recovered CLOSED-DIRTY state must trigger a
		// write-back callback to A, and B must see A's data.
		got := readBack(t, p, b, "f.dat", 8192)
		if !bytes.Equal(got, want) {
			t.Errorf("B read wrong data after server recovery")
		}
		if b.Inconsistencies != 0 {
			t.Error("recovery produced a spurious inconsistency warning")
		}
	})
}

func TestSNFSOpenDuringGraceRetries(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{GraceDur: 2 * sim.Second})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(100, 'g'))
		a.SyncPass(p)
		w.snfs.Crash()
		w.snfs.Reboot() // grace starts now
		start := p.Now()
		got := readBack(t, p, a, "f.dat", 100)
		if len(got) != 100 {
			t.Errorf("open during grace eventually failed (%d bytes)", len(got))
		}
		if p.Now().Sub(start) < sim.Second {
			t.Error("open succeeded inside the grace period without waiting")
		}
	})
}

func TestHybridServerProtectsNFSClients(t *testing.T) {
	// §6.1: an SNFS client holds dirty blocks for a closed file; an NFS
	// client reads the same file through the hybrid server, whose
	// implicit open forces the write-back first.
	w := newWorld(1, true, 4, server.SNFSOptions{Hybrid: true})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	b := w.addNFS("clientB", client.NFSOptions{})
	want := fill(8192, 'y')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", want)
		if a.Ops().Get("write") != 0 {
			t.Fatal("precondition: dirty blocks should be at A")
		}
		got := readBack(t, p, b, "f.dat", 8192)
		if !bytes.Equal(got, want) {
			t.Error("NFS client read stale data through hybrid server")
		}
	})
}

func TestHybridClientFallsBackToNFS(t *testing.T) {
	// A hybrid client probing a plain NFS server discovers open is
	// unavailable and reverts to NFS behaviour. Here we verify the
	// protocol-level signal: open against NFS yields PROC_UNAVAIL.
	w := newWorld(1, false, 4, server.SNFSOptions{})
	ep, _ := w.clientConfig("probe")
	run(t, w.k, func(p *sim.Proc) {
		args := proto.Marshal(&proto.OpenArgs{Handle: w.root})
		_, err := ep.Call(p, "server", proto.ProgNFS, proto.VersNFS, proto.ProcOpen, args)
		if err != rpc.ErrProcUnavail {
			t.Errorf("open on plain NFS server: %v, want ErrProcUnavail", err)
		}
	})
}

func TestReadQuicklyRPCCounts(t *testing.T) {
	// §5.1: in the open-read-quickly-close pattern NFS needs one fewer
	// RPC than SNFS (getattr vs open+close).
	wN := newWorld(1, false, 4, server.SNFSOptions{})
	cN := wN.addNFS("clientA", client.NFSOptions{})
	var nfsOps int64
	run(t, wN.k, func(p *sim.Proc) {
		writeThrough(t, p, cN, "f.c", fill(4096, 'm'))
		base := cN.Ops().Total()
		readBack(t, p, cN, "f.c", 4096)
		nfsOps = cN.Ops().Total() - base
	})

	wS := newWorld(1, true, 4, server.SNFSOptions{})
	cS := wS.addSNFS("clientA", client.SNFSOptions{})
	var snfsOps int64
	run(t, wS.k, func(p *sim.Proc) {
		writeThrough(t, p, cS, "f.c", fill(4096, 'm'))
		cS.SyncPass(p)
		base := cS.Ops().Total()
		readBack(t, p, cS, "f.c", 4096)
		snfsOps = cS.Ops().Total() - base
	})
	if snfsOps != nfsOps+1 {
		t.Errorf("read-quickly: NFS %d RPCs, SNFS %d; want SNFS = NFS+1", nfsOps, snfsOps)
	}
}

func TestSNFSTableFullReported(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{TableLimit: 2})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		var files []vfs.File
		for i, name := range []string{"a", "b", "c"} {
			f, err := c.Open(p, name, vfs.WriteOnly|vfs.Create, 0o644)
			if i < 2 {
				if err != nil {
					t.Fatalf("open %s: %v", name, err)
				}
				files = append(files, f)
				continue
			}
			if err == nil {
				t.Error("third simultaneous open succeeded beyond the table limit")
				f.Close(p)
			}
		}
		for _, f := range files {
			f.Close(p)
		}
		// With the first two closed (clean), the third open succeeds
		// after reclaiming a CLOSED entry.
		f, err := c.Open(p, "c", vfs.WriteOnly|vfs.Create, 0o644)
		if err != nil {
			t.Errorf("open after closes: %v", err)
		} else {
			f.Close(p)
		}
	})
}

func TestSNFSNameCacheConsistency(t *testing.T) {
	// §7 extension: client A caches name translations under a
	// directory lease; when client B changes the directory, A is
	// called back and must see the new namespace.
	w := newWorld(1, true, 4, server.SNFSOptions{NameCacheProtocol: true})
	a := w.addSNFS("clientA", client.SNFSOptions{NameCache: true})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		if err := a.Mkdir(p, "dir", 0o755); err != nil {
			t.Fatal(err)
		}
		writeThrough(t, p, a, "dir/f1", fill(100, 'n'))
		// Warm A's name cache.
		for i := 0; i < 3; i++ {
			if _, err := a.Stat(p, "dir/f1"); err != nil {
				t.Fatal(err)
			}
		}
		if a.NameCacheHits == 0 {
			t.Fatal("name cache never hit")
		}
		lookupsBefore := a.Ops().Get("lookup")
		if _, err := a.Stat(p, "dir/f1"); err != nil {
			t.Fatal(err)
		}
		if got := a.Ops().Get("lookup") - lookupsBefore; got != 0 {
			t.Errorf("cached stat still issued %d lookups", got)
		}
		// B removes the file and creates another; A's lease must be
		// revoked before B's mutation completes.
		if err := b.Remove(p, "dir/f1"); err != nil {
			t.Fatal(err)
		}
		writeThrough(t, p, b, "dir/f2", fill(100, 'm'))
		if _, err := a.Stat(p, "dir/f1"); err == nil {
			t.Error("A still resolves the removed name")
		}
		if _, err := a.Stat(p, "dir/f2"); err != nil {
			t.Errorf("A cannot resolve the new name: %v", err)
		}
	})
}

func TestSNFSNameCacheSavesLookups(t *testing.T) {
	for _, nc := range []bool{false, true} {
		w := newWorld(1, true, 4, server.SNFSOptions{NameCacheProtocol: nc})
		c := w.addSNFS("clientA", client.SNFSOptions{NameCache: nc})
		var lookups int64
		run(t, w.k, func(p *sim.Proc) {
			c.Mkdir(p, "d", 0o755)
			writeThrough(t, p, c, "d/f", fill(4096, 'l'))
			c.SyncPass(p)
			base := c.Ops().Get("lookup")
			for i := 0; i < 20; i++ {
				readBack(t, p, c, "d/f", 4096)
			}
			lookups = c.Ops().Get("lookup") - base
		})
		if nc && lookups > 2 {
			t.Errorf("name cache on: %d lookups for 20 reopens, want <= 2", lookups)
		}
		if !nc && lookups < 20 {
			t.Errorf("name cache off: only %d lookups for 20 reopens", lookups)
		}
	}
}

func TestSNFSNameCacheOwnMutationsVisible(t *testing.T) {
	// The mutating client is excluded from invalidation and must patch
	// its own cache.
	w := newWorld(1, true, 4, server.SNFSOptions{NameCacheProtocol: true})
	c := w.addSNFS("clientA", client.SNFSOptions{NameCache: true})
	run(t, w.k, func(p *sim.Proc) {
		c.Mkdir(p, "d", 0o755)
		writeThrough(t, p, c, "d/a", fill(10, 'a'))
		c.Stat(p, "d/a") // warm
		if err := c.Remove(p, "d/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stat(p, "d/a"); err == nil {
			t.Error("own remove not reflected in name cache")
		}
		writeThrough(t, p, c, "d/b", fill(10, 'b'))
		if _, err := c.Stat(p, "d/b"); err != nil {
			t.Errorf("own create not visible: %v", err)
		}
		if err := c.Rename(p, "d/b", "d/c"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stat(p, "d/b"); err == nil {
			t.Error("own rename source still resolves")
		}
		if _, err := c.Stat(p, "d/c"); err != nil {
			t.Errorf("own rename dest not visible: %v", err)
		}
	})
}

// ---- RFS (§2.5) behaviour ----

func newRFSWorld(seed int64) (*world, *server.RFSServer) {
	k := sim.NewKernel(seed)
	net := simnet.New(k, netConfig())
	ep := rpc.NewEndpoint(k, net, "server", rpc.Options{Workers: 4})
	st := localfs.NewStore(k.Now, 4096)
	d := disk.New(k, "sd", disk.RA81())
	media := localfs.NewMedia(st, d, 1, 3500*1024)
	srv := server.NewRFS(k, ep, media, server.Config{FSID: 1})
	w := &world{k: k, net: net, media: media, root: srv.RootHandle()}
	return w, srv
}

func (w *world) addRFS(name simnet.Addr) *client.RFSClient {
	ep, cfg := w.clientConfig(name)
	return client.NewRFS(w.k, ep, cfg)
}

func TestRFSRoundTripAndWriteThrough(t *testing.T) {
	w, _ := newRFSWorld(1)
	c := w.addRFS("clientA")
	want := fill(10000, 'r')
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", want)
		// Write-through: the data is at the server after close.
		st := w.media.Store()
		a, err := st.Lookup(st.Root(), "f.dat")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := st.ReadAt(a.Ino, 0, 20000)
		if !bytes.Equal(data, want) {
			t.Error("server copy differs after close")
		}
		got := readBack(t, p, c, "f.dat", 20000)
		if !bytes.Equal(got, want) {
			t.Error("read back mismatch")
		}
	})
}

func TestRFSCacheSurvivesCloseWithoutBug(t *testing.T) {
	w, _ := newRFSWorld(1)
	c := w.addRFS("clientA")
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", fill(40960, 'c'))
		base := c.Ops().Get("read")
		readBack(t, p, c, "f.dat", 40960)
		if got := c.Ops().Get("read") - base; got != 0 {
			t.Errorf("reopen issued %d reads; RFS cache should survive close", got)
		}
	})
}

func TestRFSInvalidateOnActualWrite(t *testing.T) {
	// The §2.5 distinguishing behaviour: a reader's cache survives
	// another client's open-for-write and is invalidated only when a
	// write actually occurs.
	w, srv := newRFSWorld(1)
	a := w.addRFS("clientA")
	b := w.addRFS("clientB")
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(4096, '1'))
		fa, err := a.Open(p, "f.dat", vfs.ReadOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer fa.Close(p)
		fa.ReadAt(p, 0, 4096) // cache warm at A
		readsBase := a.Ops().Get("read")

		fb, err := b.Open(p, "f.dat", vfs.ReadWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Open-for-write alone must NOT invalidate A (unlike SNFS).
		if got, _ := fa.ReadAt(p, 0, 4096); !bytes.Equal(got, fill(4096, '1')) {
			t.Fatal("read wrong before any write")
		}
		if a.Ops().Get("read") != readsBase {
			t.Error("A's cache was invalidated by a mere open-for-write")
		}
		if a.CallbacksServed != 0 {
			t.Error("callback before any write occurred")
		}
		// The actual write invalidates A, which then sees fresh data.
		// (Sync flushes the biods: the guarantee concerns writes that
		// have reached the server.)
		if _, err := fb.WriteAt(p, 0, fill(4096, '2')); err != nil {
			t.Fatal(err)
		}
		if err := fb.Sync(p); err != nil {
			t.Fatal(err)
		}
		if a.CallbacksServed == 0 {
			t.Error("no invalidation callback on write")
		}
		got, _ := fa.ReadAt(p, 0, 4096)
		if !bytes.Equal(got, fill(4096, '2')) {
			t.Error("A read stale data after the write (RFS guarantee broken)")
		}
		fb.Close(p)
		if srv.TableLen() == 0 {
			t.Error("server lost the file's entry")
		}
	})
}

func TestRFSReaderRecachesAfterInvalidation(t *testing.T) {
	// After an invalidation, the reader refetches and caches again; a
	// SECOND write must invalidate again (the server re-learns the
	// reader from its read).
	w, _ := newRFSWorld(1)
	a := w.addRFS("clientA")
	b := w.addRFS("clientB")
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(4096, '1'))
		fa, _ := a.Open(p, "f.dat", vfs.ReadOnly, 0)
		defer fa.Close(p)
		fa.ReadAt(p, 0, 4096)
		fb, _ := b.Open(p, "f.dat", vfs.ReadWrite, 0)
		for round := byte(2); round <= 4; round++ {
			if _, err := fb.WriteAt(p, 0, fill(4096, '0'+round)); err != nil {
				t.Fatal(err)
			}
			if err := fb.Sync(p); err != nil {
				t.Fatal(err)
			}
			got, _ := fa.ReadAt(p, 0, 4096)
			if !bytes.Equal(got, fill(4096, '0'+round)) {
				t.Fatalf("round %d: stale", round)
			}
		}
		fb.Close(p)
		if a.CallbacksServed < 3 {
			t.Errorf("served %d invalidations, want 3", a.CallbacksServed)
		}
	})
}

func TestRFSVersionValidationAcrossReopen(t *testing.T) {
	w, _ := newRFSWorld(1)
	a := w.addRFS("clientA")
	b := w.addRFS("clientB")
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(8192, 'v'))
		readBack(t, p, a, "f.dat", 8192) // warm
		// B rewrites while A has it closed (no invalidation needed if
		// A is not tracked... but version must catch it at reopen).
		writeThrough(t, p, b, "f.dat", fill(8192, 'w'))
		got := readBack(t, p, a, "f.dat", 8192)
		if !bytes.Equal(got, fill(8192, 'w')) {
			t.Error("A's reopen served stale cache despite version bump")
		}
	})
}

func TestDelayedCloseRevokedByWriteShare(t *testing.T) {
	// A holds a delayed close (the server still counts it as a reader);
	// B opens for write, which makes the file write-shared and revokes
	// A's caching by callback. A's next reopen must settle the owed
	// close and see B's data.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{DelayedClose: true})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(4096, '1'))
		a.SyncPass(p)
		readBack(t, p, a, "f.dat", 4096) // leaves a delayed close behind
		fb, err := b.Open(p, "f.dat", vfs.ReadWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.CallbacksServed == 0 {
			t.Fatal("A's delayed-close lease not revoked by B's write-open")
		}
		if _, err := fb.WriteAt(p, 0, fill(4096, '2')); err != nil {
			t.Fatal(err)
		}
		// A reopens: must go to the server (lease revoked) and read
		// B's bytes.
		got := readBack(t, p, a, "f.dat", 4096)
		if !bytes.Equal(got, fill(4096, '2')) {
			t.Error("A read stale data after lease revocation")
		}
		fb.Close(p)
	})
}

func TestDelayedCloseFileRemovedByOther(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{DelayedClose: true})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f.dat", fill(4096, 'x'))
		a.SyncPass(p)
		readBack(t, p, a, "f.dat", 4096) // delayed close held
		if err := b.Remove(p, "f.dat"); err != nil {
			t.Fatal(err)
		}
		// A's reopen: name is gone.
		if _, err := a.Open(p, "f.dat", vfs.ReadOnly, 0); err == nil {
			t.Error("opened a removed file")
		}
		// A's spontaneous close of the dead handle must not wedge
		// anything.
		a.SyncPass(p)
		// New life for the name works for both.
		writeThrough(t, p, b, "f.dat", fill(4096, 'y'))
		got := readBack(t, p, a, "f.dat", 4096)
		if !bytes.Equal(got, fill(4096, 'y')) {
			t.Error("A sees wrong data in the recreated file")
		}
	})
}

// ---- advisory locking (§2.2) ----

func TestLockingSerializesCounterIncrements(t *testing.T) {
	// The canonical lost-update scenario: two clients each increment a
	// shared counter N times. Without locks even SNFS loses updates
	// (consistency is not atomicity); with exclusive locks every
	// increment lands.
	const perClient = 10
	for _, useLocks := range []bool{false, true} {
		w := newWorld(1, true, 4, server.SNFSOptions{})
		a := w.addSNFS("clientA", client.SNFSOptions{})
		b := w.addSNFS("clientB", client.SNFSOptions{})
		var final byte
		run(t, w.k, func(p *sim.Proc) {
			writeThrough(t, p, a, "counter", []byte{0})
			a.SyncPass(p)
			wg := sim.NewWaitGroup(w.k, 2)
			incr := func(c *client.SNFSClient) func(*sim.Proc) {
				return func(cp *sim.Proc) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						if useLocks {
							if err := c.Lock(cp, "counter", true); err != nil {
								t.Errorf("lock: %v", err)
								return
							}
						}
						f, err := c.Open(cp, "counter", vfs.ReadWrite, 0)
						if err != nil {
							t.Errorf("open: %v", err)
							return
						}
						data, err := f.ReadAt(cp, 0, 1)
						if err != nil || len(data) != 1 {
							t.Errorf("read: %v", err)
							return
						}
						cp.Sleep(40 * sim.Millisecond) // think time widens the race
						if _, err := f.WriteAt(cp, 0, []byte{data[0] + 1}); err != nil {
							t.Errorf("write: %v", err)
							return
						}
						if err := f.Close(cp); err != nil {
							t.Errorf("close: %v", err)
							return
						}
						if useLocks {
							if err := c.Unlock(cp, "counter"); err != nil {
								t.Errorf("unlock: %v", err)
								return
							}
						}
					}
				}
			}
			w.k.Go("incA", incr(a))
			w.k.Go("incB", incr(b))
			wg.Wait(p)
			got := readBack(t, p, a, "counter", 1)
			if len(got) == 1 {
				final = got[0]
			}
		})
		if useLocks && final != 2*perClient {
			t.Errorf("with locks: counter %d, want %d", final, 2*perClient)
		}
		if !useLocks && final == 2*perClient {
			t.Logf("note: unlocked run happened to lose no updates (timing)")
		}
	}
}

func TestSharedLocksCoexistExclusiveDoesNot(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f", fill(10, 'l'))
		if err := a.Lock(p, "f", false); err != nil {
			t.Fatal(err)
		}
		// B's shared lock coexists.
		done := make(chan struct{}, 1)
		start := p.Now()
		if err := b.Lock(p, "f", false); err != nil {
			t.Fatal(err)
		}
		// One RPC round trip, no retry backoff.
		if p.Now().Sub(start) > 50*sim.Millisecond {
			t.Error("shared lock waited behind another shared lock")
		}
		_ = done
		// B's exclusive upgrade must wait for A's release.
		acquired := false
		w.k.Go("upgrader", func(up *sim.Proc) {
			b.Unlock(up, "f")
			if err := b.Lock(up, "f", true); err == nil {
				acquired = true
			}
		})
		p.Sleep(100 * sim.Millisecond)
		if acquired {
			t.Error("exclusive lock granted while a shared lock was held")
		}
		a.Unlock(p, "f")
		p.Sleep(500 * sim.Millisecond)
		if !acquired {
			t.Error("exclusive lock never granted after release")
		}
	})
}

func TestLocksReleasedWhenClientDies(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "f", fill(10, 'd'))
		a.SyncPass(p)
		// B opens the file (and keeps it open), takes the exclusive
		// lock, and crashes.
		fb, err := b.Open(p, "f", vfs.ReadOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fb.ReadAt(p, 0, 10); err != nil {
			t.Fatal(err)
		}
		if err := b.Lock(p, "f", true); err != nil {
			t.Fatal(err)
		}
		b.Endpoint().Stop()
		// A opens for write: the server's invalidate callback to B
		// fails, B is declared dead, and its locks are released —
		// so A's lock acquisition completes.
		fa, err := a.Open(p, "f", vfs.ReadWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Lock(p, "f", true); err != nil {
			t.Fatalf("lock after client death: %v", err)
		}
		if err := a.Unlock(p, "f"); err != nil {
			t.Fatal(err)
		}
		fa.Close(p)
	})
}

// ---- links and symlinks through the protocols ----

func TestSymlinkResolutionThroughClient(t *testing.T) {
	for _, useSNFS := range []bool{false, true} {
		w := newWorld(1, useSNFS, 4, server.SNFSOptions{})
		var c vfs.FS
		if useSNFS {
			c = w.addSNFS("clientA", client.SNFSOptions{})
		} else {
			c = w.addNFS("clientA", client.NFSOptions{})
		}
		run(t, w.k, func(p *sim.Proc) {
			c.Mkdir(p, "real", 0o755)
			writeThrough(t, p, c, "real/data.txt", fill(100, 's'))
			// Relative symlink to a file.
			if err := c.Symlink(p, "real/data.txt", "flink"); err != nil {
				t.Fatal(err)
			}
			got := readBack(t, p, c, "flink", 100)
			if !bytes.Equal(got, fill(100, 's')) {
				t.Error("read through file symlink failed")
			}
			// Symlink to a directory, used mid-path.
			if err := c.Symlink(p, "real", "dlink"); err != nil {
				t.Fatal(err)
			}
			got = readBack(t, p, c, "dlink/data.txt", 100)
			if !bytes.Equal(got, fill(100, 's')) {
				t.Error("read through directory symlink failed")
			}
			// Absolute (mount-root-relative) target.
			if err := c.Symlink(p, "/real/data.txt", "abslink"); err != nil {
				t.Fatal(err)
			}
			got = readBack(t, p, c, "abslink", 100)
			if !bytes.Equal(got, fill(100, 's')) {
				t.Error("read through absolute symlink failed")
			}
			// Readlink does not follow.
			target, err := c.Readlink(p, "flink")
			if err != nil || target != "real/data.txt" {
				t.Errorf("readlink %q, %v", target, err)
			}
			// Chains resolve; cycles error.
			if err := c.Symlink(p, "flink", "chain"); err != nil {
				t.Fatal(err)
			}
			got = readBack(t, p, c, "chain", 100)
			if !bytes.Equal(got, fill(100, 's')) {
				t.Error("symlink chain failed")
			}
			c.Symlink(p, "loop2", "loop1")
			c.Symlink(p, "loop1", "loop2")
			if _, err := c.Open(p, "loop1", vfs.ReadOnly, 0); err == nil {
				t.Error("symlink cycle resolved?!")
			}
		})
	}
}

func TestHardLinkThroughClient(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "orig", fill(200, 'h'))
		c.SyncPass(p)
		if err := c.Link(p, "orig", "alias"); err != nil {
			t.Fatal(err)
		}
		got := readBack(t, p, c, "alias", 200)
		if !bytes.Equal(got, fill(200, 'h')) {
			t.Error("content through hard link wrong")
		}
		// Both names share the inode: writes through one are reads
		// through the other (same client cache and same server inode).
		writeThrough(t, p, c, "alias", fill(200, 'i'))
		got = readBack(t, p, c, "orig", 200)
		if !bytes.Equal(got, fill(200, 'i')) {
			t.Error("hard link aliasing broken")
		}
		if err := c.Remove(p, "orig"); err != nil {
			t.Fatal(err)
		}
		got = readBack(t, p, c, "alias", 200)
		if !bytes.Equal(got, fill(200, 'i')) {
			t.Error("content lost when the other name was removed")
		}
	})
}

func TestSymlinkConsistencyAcrossClients(t *testing.T) {
	// A symlink created by one client resolves at another, and the
	// consistency protocol still applies to the target.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	a := w.addSNFS("clientA", client.SNFSOptions{})
	b := w.addSNFS("clientB", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, a, "target", fill(64, 'a'))
		if err := a.Symlink(p, "target", "ln"); err != nil {
			t.Fatal(err)
		}
		// B reads through the link: forces A's write-back.
		got := readBack(t, p, b, "ln", 64)
		if !bytes.Equal(got, fill(64, 'a')) {
			t.Error("B read wrong data through A's symlink")
		}
		if a.Ops().Get("write") == 0 {
			t.Error("callback write-back did not fire through the symlink path")
		}
	})
}
