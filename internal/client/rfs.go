package client

import (
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/vfs"
	"spritelynfs/internal/xdr"
)

// RFSClient is the System V Remote File Sharing client of §2.5: the
// NFS write policy (write-through via the biods, synchronous flush on
// close) combined with statefulness — open/close RPCs, read caching that
// survives close under version validation, no attribute probes (the
// server's invalidate-on-write callbacks make them unnecessary), and a
// callback service that only ever invalidates.
type RFSClient struct {
	*Base
	// CallbacksServed counts invalidations handled.
	CallbacksServed int64
}

// NewRFS creates an RFS client talking to cfg.Server through ep.
func NewRFS(k *sim.Kernel, ep *rpc.Endpoint, cfg Config) *RFSClient {
	c := &RFSClient{Base: newBase(k, ep, cfg)}
	ep.Register(proto.ProgCallback, c.serveCallback)
	return c
}

// serveCallback handles the server's invalidate-on-write messages.
func (c *RFSClient) serveCallback(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
	if proc == proto.CbProcNull {
		return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
	}
	if proc != proto.CbProcCallback {
		return nil, rpc.StatusProcUnavail
	}
	a := proto.DecodeCallbackArgs(xdr.NewDecoder(args))
	c.CallbacksServed++
	c.Tracer().Record(c.host(), trace.Callback, "<- rfs invalidate %s", a.Handle)
	if n, ok := c.nodes[a.Handle.Ino]; ok && n.h == a.Handle {
		// RFS clients hold no delayed data beyond partial write
		// tails, and only the writer has those; an invalidation
		// target is a reader, so dropping is safe. (Flush first
		// defensively if anything is dirty.)
		for _, blk := range c.cache.DirtyBlocks(c.cfg.Root.FSID, n.h.Ino) {
			off := blk.Key.Block * int64(c.cfg.BlockSize)
			if _, err := c.writeRPC(p, n.h, off, blk.Data[:blk.Len]); err != nil {
				break
			}
			c.cache.MarkClean(blk.Key)
		}
		c.cache.InvalidateFile(c.cfg.Root.FSID, n.h.Ino)
		// Attributes may be stale now too.
		n.attrInit = false
	}
	return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
}

// openRPC registers an open and reconciles the version numbers.
func (c *RFSClient) openRPC(p *sim.Proc, n *node, write bool) error {
	body, err := c.call(p, proto.ProcOpen, &proto.OpenArgs{Handle: n.h, WriteMode: write})
	if err != nil {
		return err
	}
	reply := proto.DecodeOpenReply(xdr.NewDecoder(body))
	if reply.Status != proto.OK {
		return reply.Status.Err()
	}
	if !n.rec.Open(reply, write) {
		c.cache.InvalidateFile(c.cfg.Root.FSID, n.h.Ino)
	}
	c.setAttr(n, reply.Attr, p.Now())
	return nil
}

func (c *RFSClient) closeRPC(p *sim.Proc, h proto.Handle, write bool) error {
	body, err := c.call(p, proto.ProcClose, &proto.CloseArgs{Handle: h, WriteMode: write})
	if err != nil {
		return err
	}
	return proto.DecodeStatusReply(xdr.NewDecoder(body)).Status.Err()
}

// Open implements vfs.FS.
func (c *RFSClient) Open(p *sim.Proc, rel string, flags vfs.Flags, mode uint32) (vfs.File, error) {
	write := flags.Writing()
	var n *node
	if flags&vfs.Create != 0 {
		dir, name, err := c.walkParent(p, rel)
		if err != nil {
			return nil, err
		}
		body, err := c.call(p, proto.ProcCreate, &proto.CreateArgs{Dir: dir, Name: name, Mode: mode})
		if err != nil {
			return nil, err
		}
		r := proto.DecodeHandleReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			return nil, r.Status.Err()
		}
		n = c.getNode(r.Handle)
		c.cache.InvalidateFile(c.cfg.Root.FSID, r.Handle.Ino)
		c.setAttr(n, r.Attr, p.Now())
		n.size = 0
	} else {
		h, err := c.walkNoAttr(p, rel)
		if err != nil {
			return nil, err
		}
		n = c.getNode(h)
	}
	if err := c.openRPC(p, n, write); err != nil {
		return nil, err
	}
	if flags&vfs.Truncate != 0 && flags&vfs.Create == 0 {
		body, err := c.call(p, proto.ProcSetattr, &proto.SetattrArgs{Handle: n.h, SetSize: true, Size: 0})
		if err != nil {
			return nil, err
		}
		r := proto.DecodeAttrReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			return nil, r.Status.Err()
		}
		c.cache.InvalidateFile(c.cfg.Root.FSID, n.h.Ino)
		c.setAttr(n, r.Attr, p.Now())
		n.size = 0
	}
	n.opens++
	return &rfsFile{c: c, n: n, write: write}, nil
}

// Mkdir implements vfs.FS.
func (c *RFSClient) Mkdir(p *sim.Proc, rel string, mode uint32) error {
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcMkdir, &proto.CreateArgs{Dir: dir, Name: name, Mode: mode})
	if err != nil {
		return err
	}
	return proto.DecodeHandleReply(xdr.NewDecoder(body)).Status.Err()
}

// Remove implements vfs.FS. Like NFS, RFS writes through, so there is
// nothing to cancel beyond locally delayed partial blocks.
func (c *RFSClient) Remove(p *sim.Proc, rel string) error {
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	// No-follow final lookup; a hard-linked inode outlives the unlink.
	h, attr, err := c.lookupRPC(p, dir, name)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcRemove, &proto.DirOpArgs{Dir: dir, Name: name})
	if err != nil {
		return err
	}
	if st := proto.DecodeStatusReply(xdr.NewDecoder(body)).Status; st != proto.OK {
		return st.Err()
	}
	if attr.Nlink <= 1 {
		c.cache.InvalidateFile(c.cfg.Root.FSID, h.Ino)
		delete(c.nodes, h.Ino)
	}
	return nil
}

// Rmdir implements vfs.FS.
func (c *RFSClient) Rmdir(p *sim.Proc, rel string) error {
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcRmdir, &proto.DirOpArgs{Dir: dir, Name: name})
	if err != nil {
		return err
	}
	c.invalidateDirCache()
	return proto.DecodeStatusReply(xdr.NewDecoder(body)).Status.Err()
}

// Rename implements vfs.FS.
func (c *RFSClient) Rename(p *sim.Proc, oldrel, newrel string) error {
	sdir, sname, err := c.walkParent(p, oldrel)
	if err != nil {
		return err
	}
	ddir, dname, err := c.walkParent(p, newrel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcRename, &proto.RenameArgs{
		SrcDir: sdir, SrcName: sname, DstDir: ddir, DstName: dname,
	})
	if err != nil {
		return err
	}
	c.invalidateDirCache()
	return proto.DecodeStatusReply(xdr.NewDecoder(body)).Status.Err()
}

// Stat implements vfs.FS.
func (c *RFSClient) Stat(p *sim.Proc, rel string) (proto.Fattr, error) {
	_, attr, err := c.walk(p, rel)
	return attr, err
}

// Readdir implements vfs.FS (the GFS layer opens directories, so RFS
// pays open/close like SNFS).
func (c *RFSClient) Readdir(p *sim.Proc, rel string) ([]proto.DirEntry, error) {
	h, err := c.walkNoAttr(p, rel)
	if err != nil {
		return nil, err
	}
	n := c.getNode(h)
	if err := c.openRPC(p, n, false); err != nil {
		return nil, err
	}
	body, err := c.call(p, proto.ProcReaddir, &proto.HandleArgs{Handle: h})
	var entries []proto.DirEntry
	if err == nil {
		r := proto.DecodeReaddirReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			err = r.Status.Err()
		} else {
			entries = r.Entries
		}
	}
	n.rec.Close(false)
	if cerr := c.closeRPC(p, h, false); cerr != nil && err == nil {
		err = cerr
	}
	return entries, err
}

// SyncAll implements vfs.FS: flush the delayed partial-block tails,
// re-validating each block at write time (an invalidation may cancel
// blocks while an earlier write is in flight).
func (c *RFSClient) SyncAll(p *sim.Proc) {
	for _, blk := range c.cache.AllDirty() {
		cur, ok := c.cache.Lookup(blk.Key)
		if !ok || !cur.Dirty {
			continue
		}
		n, ok := c.nodes[blk.Key.Ino]
		if !ok {
			c.cache.MarkClean(blk.Key)
			continue
		}
		off := blk.Key.Block * int64(c.cfg.BlockSize)
		if _, err := c.writeRPC(p, n.h, off, cur.Data[:cur.Len]); err != nil {
			continue
		}
		c.cache.MarkClean(blk.Key)
	}
}

// flushBlockSync writes one dirty block back synchronously.
func (c *RFSClient) flushBlockSync(p *sim.Proc, n *node, blk int64) error {
	key := c.key(n.h.Ino, blk)
	cb, ok := c.cache.Lookup(key)
	if !ok || !cb.Dirty {
		return nil
	}
	off := blk * int64(c.cfg.BlockSize)
	attr, err := c.writeRPC(p, n.h, off, cb.Data[:cb.Len])
	if err != nil {
		return err
	}
	c.cache.MarkClean(key)
	c.setAttr(n, attr, p.Now())
	return nil
}

// pushBlockAsync hands a completed block to a biod, NFS-style.
func (c *RFSClient) pushBlockAsync(p *sim.Proc, n *node, blk int64) error {
	key := c.key(n.h.Ino, blk)
	cb, ok := c.cache.Lookup(key)
	if !ok || !cb.Dirty {
		return nil
	}
	if c.biods.TryAcquire() {
		n.pending.Add(1)
		data := make([]byte, cb.Len)
		copy(data, cb.Data[:cb.Len])
		c.cache.MarkClean(key)
		off := blk * int64(c.cfg.BlockSize)
		c.k.Go("rfs-biod-w", func(wp *sim.Proc) {
			defer c.biods.Release()
			defer n.pending.Done()
			attr, err := c.writeRPC(wp, n.h, off, data)
			if err != nil {
				n.werr = err
				return
			}
			c.setAttr(n, attr, wp.Now())
		})
		return nil
	}
	return c.flushBlockSync(p, n, blk)
}

// rfsFile is an open RFS file.
type rfsFile struct {
	c      *RFSClient
	n      *node
	write  bool
	closed bool
}

// ReadAt implements vfs.File: cached reads, no probes — the server's
// invalidations keep the cache honest. After an invalidation the
// attributes (hence the size bound for reads) are refetched once.
func (f *rfsFile) ReadAt(p *sim.Proc, off int64, count int) ([]byte, error) {
	if !f.n.attrInit {
		attr, err := f.c.getattrRPC(p, f.n.h)
		if err != nil {
			return nil, err
		}
		f.c.setAttr(f.n, attr, p.Now())
	}
	return f.c.assembleRead(p, f.n, off, count, f.c.cfg.ReadAhead)
}

// WriteAt implements vfs.File: strict write-through — every write is
// pushed promptly (§2.5: "clients write-through to the server, so the
// only possible inconsistency is between the server and readers"). Full
// blocks go via the biods; the partial tail follows synchronously rather
// than lingering, because the server's invalidate-on-write depends on
// writes actually arriving.
func (f *rfsFile) WriteAt(p *sim.Proc, off int64, data []byte) (int, error) {
	touched, err := f.c.writeToCache(p, f.n, off, data, true)
	if err != nil {
		return 0, err
	}
	for _, blk := range touched {
		cb, ok := f.c.cache.Lookup(f.c.key(f.n.h.Ino, blk))
		if !ok || !cb.Dirty {
			continue
		}
		if cb.Len == f.c.cfg.BlockSize {
			if err := f.c.pushBlockAsync(p, f.n, blk); err != nil {
				return 0, err
			}
		} else if err := f.c.flushBlockSync(p, f.n, blk); err != nil {
			return 0, err
		}
	}
	return len(data), nil
}

// Close implements vfs.File: flush pending writes synchronously (the NFS
// policy), then report the close; the read cache is retained.
func (f *rfsFile) Close(p *sim.Proc) error {
	if f.closed {
		return nil
	}
	f.closed = true
	var err error
	for _, blk := range f.c.cache.DirtyBlocks(f.c.cfg.Root.FSID, f.n.h.Ino) {
		if e := f.c.flushBlockSync(p, f.n, blk.Key.Block); e != nil && err == nil {
			err = e
		}
	}
	f.n.pending.Wait(p)
	if f.n.werr != nil && err == nil {
		err = f.n.werr
		f.n.werr = nil
	}
	f.n.opens--
	f.n.rec.Close(f.write)
	if cerr := f.c.closeRPC(p, f.n.h, f.write); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Sync implements vfs.File.
func (f *rfsFile) Sync(p *sim.Proc) error {
	for _, blk := range f.c.cache.DirtyBlocks(f.c.cfg.Root.FSID, f.n.h.Ino) {
		if err := f.c.flushBlockSync(p, f.n, blk.Key.Block); err != nil {
			return err
		}
	}
	f.n.pending.Wait(p)
	return nil
}

// Attr implements vfs.File: cached attributes, refreshed when an
// invalidation clears them.
func (f *rfsFile) Attr(p *sim.Proc) (proto.Fattr, error) {
	if !f.n.attrInit {
		attr, err := f.c.getattrRPC(p, f.n.h)
		if err != nil {
			return proto.Fattr{}, err
		}
		f.c.setAttr(f.n, attr, p.Now())
	}
	a := f.n.attr
	if f.n.size > a.Size {
		a.Size = f.n.size
	}
	return a, nil
}
