package client_test

import (
	"bytes"
	"testing"

	"spritelynfs/internal/client"
	"spritelynfs/internal/server"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

func TestNFSAdaptiveProbeInterval(t *testing.T) {
	// A recently modified file is re-probed quickly; an old file's
	// attributes rest longer (3..150 s adaptive interval).
	w := newWorld(1, false, 4, server.SNFSOptions{})
	c := w.addNFS("clientA", client.NFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", fill(4096, 'p'))
		f, err := c.Open(p, "f.dat", vfs.ReadOnly, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close(p)
		f.ReadAt(p, 0, 4096)
		base := c.Ops().Get("getattr")
		// Within the minimum interval: no probe.
		p.Sleep(2 * sim.Second)
		f.ReadAt(p, 0, 4096)
		if got := c.Ops().Get("getattr") - base; got != 0 {
			t.Errorf("probed %d times within 2s of a fresh file", got)
		}
		// Just past the minimum interval: the young file is probed.
		p.Sleep(2 * sim.Second)
		f.ReadAt(p, 0, 4096)
		if got := c.Ops().Get("getattr") - base; got != 1 {
			t.Errorf("probes after 4s = %d, want 1", got)
		}
		// Much later, an old, unmodified file rests longer: reads a
		// minute apart need not probe every time.
		p.Sleep(30 * sim.Minute)
		f.ReadAt(p, 0, 4096) // one probe re-arms the clock
		mid := c.Ops().Get("getattr")
		p.Sleep(60 * sim.Second)
		f.ReadAt(p, 0, 4096)
		if got := c.Ops().Get("getattr") - mid; got != 0 {
			t.Errorf("old file probed %d times after only 60s (timeout should have grown)", got)
		}
	})
}

func TestDirCacheSavesIntermediateLookups(t *testing.T) {
	w := newWorld(1, false, 4, server.SNFSOptions{})
	c := w.addNFS("clientA", client.NFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		c.Mkdir(p, "a", 0o755)
		c.Mkdir(p, "a/b", 0o755)
		writeThrough(t, p, c, "a/b/f1", fill(10, '1'))
		writeThrough(t, p, c, "a/b/f2", fill(10, '2'))
		base := c.Ops().Get("lookup")
		// Both files share the cached cwd: only the final component
		// resolves per access.
		c.Stat(p, "a/b/f1")
		c.Stat(p, "a/b/f2")
		if got := c.Ops().Get("lookup") - base; got != 2 {
			t.Errorf("%d lookups for 2 stats in a cached dir, want 2", got)
		}
		// A different directory re-walks.
		c.Mkdir(p, "other", 0o755)
		base = c.Ops().Get("lookup")
		writeThrough(t, p, c, "other/g", fill(10, 'g'))
		c.Stat(p, "other/g")
		if got := c.Ops().Get("lookup") - base; got < 2 {
			t.Errorf("suspiciously few lookups (%d) after changing directory", got)
		}
	})
}

func TestDirCacheRecoversFromStaleDir(t *testing.T) {
	// Client B removes the directory client A has cached; A's next walk
	// through the cached handle gets ESTALE and must recover.
	w := newWorld(1, false, 4, server.SNFSOptions{})
	a := w.addNFS("clientA", client.NFSOptions{})
	b := w.addNFS("clientB", client.NFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		a.Mkdir(p, "d", 0o755)
		writeThrough(t, p, a, "d/f", fill(10, 'f'))
		a.Stat(p, "d/f") // warm A's cwd cache with d's handle
		// B removes and recreates the directory (new handle).
		if err := b.Remove(p, "d/f"); err != nil {
			t.Fatal(err)
		}
		if err := b.Rmdir(p, "d"); err != nil {
			t.Fatal(err)
		}
		b.Mkdir(p, "d", 0o755)
		writeThrough(t, p, b, "d/f", fill(10, 'g'))
		// A's stat through the stale cached handle must still succeed.
		attr, err := a.Stat(p, "d/f")
		if err != nil {
			t.Fatalf("stat after dir replacement: %v", err)
		}
		if attr.Size != 10 {
			t.Errorf("attr %+v", attr)
		}
	})
}

func TestReadModifyWriteFetchesPartialBlock(t *testing.T) {
	// An unaligned overwrite in the middle of existing content must
	// fetch the block first (read-modify-write) so no bytes are lost.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "f.dat", fill(8192, 'o'))
		c.SyncPass(p)
		c.Cache().InvalidateAll() // force the RMW to fetch

		f, err := c.Open(p, "f.dat", vfs.ReadWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		patch := []byte("PATCH")
		if _, err := f.WriteAt(p, 100, patch); err != nil {
			t.Fatal(err)
		}
		if c.Ops().Get("read") == 0 {
			t.Error("partial overwrite of cold block did not read-modify-write")
		}
		got, _ := f.ReadAt(p, 0, 8192)
		want := fill(8192, 'o')
		copy(want[100:], patch)
		if !bytes.Equal(got, want) {
			t.Error("read-modify-write corrupted surrounding bytes")
		}
		f.Close(p)
	})
}

func TestAppendingWritesNeedNoRMW(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		f, err := c.Open(p, "f.dat", vfs.WriteOnly|vfs.Create, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		// Sequential appends in odd-sized chunks.
		var off int64
		for i := 0; i < 10; i++ {
			chunk := fill(1000, byte('a'+i))
			if _, err := f.WriteAt(p, off, chunk); err != nil {
				t.Fatal(err)
			}
			off += 1000
		}
		f.Close(p)
		if got := c.Ops().Get("read"); got != 0 {
			t.Errorf("append-only writes issued %d reads", got)
		}
		got := readBack(t, p, c, "f.dat", 10000)
		for i := 0; i < 10; i++ {
			if got[i*1000] != byte('a'+i) {
				t.Fatalf("chunk %d corrupted", i)
			}
		}
	})
}

func TestCacheEvictionWritesBackDirtyBlocks(t *testing.T) {
	// A tiny cache forces dirty delayed-write blocks out; the data must
	// reach the server rather than vanish.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	ep, cfg := w.clientConfig("clientA")
	cfg.CacheBytes = 8 * 4096 // eight blocks
	c := client.NewSNFS(w.k, ep, cfg, client.SNFSOptions{})
	want := fill(64*1024, 'e') // 16 blocks: must evict
	run(t, w.k, func(p *sim.Proc) {
		writeThrough(t, p, c, "big.dat", want)
		if c.Ops().Get("write") == 0 {
			t.Fatal("eviction never wrote back")
		}
		// Every byte must be recoverable: flush the rest and compare
		// at the server.
		c.SyncPass(p)
		st := w.media.Store()
		a, err := st.Lookup(st.Root(), "big.dat")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := st.ReadAt(a.Ino, 0, len(want))
		if !bytes.Equal(data, want) {
			t.Error("evicted data corrupted at server")
		}
	})
}

func TestNFSBiodsOverlapWrites(t *testing.T) {
	// Full-block writes return before the server write completes; the
	// close pays the wait.
	w := newWorld(1, false, 4, server.SNFSOptions{})
	c := w.addNFS("clientA", client.NFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		f, err := c.Open(p, "f.dat", vfs.WriteOnly|vfs.Create, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if _, err := f.WriteAt(p, 0, fill(4096, 'b')); err != nil {
			t.Fatal(err)
		}
		writeReturned := p.Now().Sub(start)
		start = p.Now()
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
		closeTook := p.Now().Sub(start)
		if writeReturned >= closeTook {
			t.Errorf("write blocked %v but close only %v; biod overlap missing", writeReturned, closeTook)
		}
	})
}

func TestSNFSReaddirListsEntries(t *testing.T) {
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		c.Mkdir(p, "d", 0o755)
		for _, name := range []string{"x", "y", "z"} {
			writeThrough(t, p, c, "d/"+name, fill(10, name[0]))
		}
		ents, err := c.Readdir(p, "d")
		if err != nil || len(ents) != 3 {
			t.Fatalf("readdir: %v, %v", ents, err)
		}
		// Directory opens balance with closes at the server.
		tab := w.snfs.Table()
		r, wr := tab.OpenCounts(w.root)
		_ = wr
		if r != 0 {
			t.Errorf("root has %d leftover read opens after readdir", r)
		}
	})
}

func TestConcurrentReadersShareInFlightFetch(t *testing.T) {
	// Two processes on one client reading the same cold block must
	// issue one read RPC, not two.
	w := newWorld(1, true, 4, server.SNFSOptions{})
	c := w.addSNFS("clientA", client.SNFSOptions{})
	run(t, w.k, func(p *sim.Proc) {
		// Exactly one block (the test world uses 4 KB blocks).
		writeThrough(t, p, c, "f.dat", fill(4096, 's'))
		c.SyncPass(p)
		c.Cache().InvalidateAll()
		base := c.Ops().Get("read")
		wg := sim.NewWaitGroup(w.k, 2)
		for i := 0; i < 2; i++ {
			w.k.Go("reader", func(rp *sim.Proc) {
				defer wg.Done()
				readBack(t, rp, c, "f.dat", 4096)
			})
		}
		wg.Wait(p)
		if got := c.Ops().Get("read") - base; got != 1 {
			t.Errorf("%d read RPCs for one cold block read twice concurrently, want 1", got)
		}
	})
}
