package client

import (
	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/span"
)

// attrPolicy selects how the attribute cache decides freshness.
type attrPolicy int

const (
	// attrPolicyProbe is the NFS rule (§2.1): attributes are trusted for
	// an adaptive window after the last server fetch — one tenth of the
	// file's age, clamped to [ProbeMin, ProbeMax] — then re-probed.
	attrPolicyProbe attrPolicy = iota
	// attrPolicyProtocol is the Spritely rule: the consistency protocol
	// keeps cached attributes valid exactly while caching is enabled for
	// the file; no timer is involved.
	attrPolicyProtocol
)

// AttrCacheStats counts attribute-cache outcomes (snfscli stats and the
// client metrics gauges report these).
type AttrCacheStats struct {
	// Hits are attribute reads served from the cache without an RPC.
	Hits int64
	// Misses are attribute reads that went to the server.
	Misses int64
	// Expiries are misses where cached attributes existed but could no
	// longer be trusted (probe window elapsed, or the protocol lease —
	// caching permission — was gone).
	Expiries int64
	// Ingests counts piggybacked attributes accepted into the cache.
	Ingests int64
	// SharedDrops counts attributes discarded because the file was
	// WRITE-SHARED: the paper's §4.3 rule — a concurrent writer moves
	// the attributes at any time, so they must never be cached.
	SharedDrops int64
}

// attrCache is the unified attribute layer: every getattr the client
// issues, every freshness decision, and every piggybacked attribute
// record flows through here. It owns the NFS adaptive probe interval,
// the SNFS protocol-driven validity rule, and the never-cache-when-
// write-shared rule both protocols share.
type attrCache struct {
	b        *Base
	policy   attrPolicy
	probeMin sim.Duration
	probeMax sim.Duration
	stats    AttrCacheStats
}

func newAttrCache(b *Base) *attrCache {
	return &attrCache{b: b, probeMin: 3 * sim.Second, probeMax: 150 * sim.Second}
}

// writeShared reports whether the file is open and uncachable — the
// server disabled caching because of concurrent write sharing. A node
// that is not in use has a zero record and is never write-shared; the
// NFS client never sets the record at all, so the rule is inert there.
func (ac *attrCache) writeShared(n *node) bool {
	return n.rec.InUse() && !n.rec.Caching
}

// probeTimeout returns the adaptive attribute-cache residence time:
// files modified recently are re-checked sooner.
func (ac *attrCache) probeTimeout(n *node) sim.Duration {
	age := ac.b.k.Now().Sub(sim.Time(n.attr.Mtime))
	t := age / 10
	if t < ac.probeMin {
		t = ac.probeMin
	}
	if t > ac.probeMax {
		t = ac.probeMax
	}
	return t
}

// fresh reports whether n's cached attributes may be served without a
// server round trip.
func (ac *attrCache) fresh(n *node, now sim.Time) bool {
	if !n.attrInit || ac.writeShared(n) {
		return false
	}
	if ac.policy == attrPolicyProtocol {
		return n.rec.Caching
	}
	return now.Sub(n.attrTime) <= ac.probeTimeout(n)
}

// get returns attributes for n, serving from the cache when fresh and
// fetching from the server (and recording the result) otherwise. force
// skips the freshness check — the NFS open-time consistency check.
// fromCache reports whether the attributes came from the cache.
func (ac *attrCache) get(p *sim.Proc, n *node, force bool) (proto.Fattr, bool, error) {
	now := p.Now()
	if !force && ac.fresh(n, now) {
		ac.stats.Hits++
		return n.attr, true, nil
	}
	if !force && n.attrInit {
		ac.stats.Expiries++
	}
	ac.stats.Misses++
	sp := ac.b.span(p, span.Attr, "getattr")
	a, err := ac.b.getattrRPC(p, n.h)
	sp.End()
	if err != nil {
		return proto.Fattr{}, false, err
	}
	ac.store(n, a, now, false)
	return a, false, nil
}

// ingest is the single entry point for attributes piggybacked on RPC
// replies the client did not write through (lookup, read, wcc,
// readdir-with-attrs): they are third-party observations, so under the
// probe policy a moved mtime invalidates the cached data, exactly as
// the open-time getattr check would.
func (ac *attrCache) ingest(n *node, a proto.Fattr, now sim.Time) {
	if ac.store(n, a, now, false) {
		ac.stats.Ingests++
	}
}

// ingestOwn records attributes piggybacked on the client's own
// write/create/truncate replies: the mtime motion is this client's
// doing, so it must not invalidate the data just written.
func (ac *attrCache) ingestOwn(n *node, a proto.Fattr, now sim.Time) {
	if ac.store(n, a, now, true) {
		ac.stats.Ingests++
	}
}

// store applies the shared caching rules and installs the attributes.
// It returns false when the write-shared rule discarded them.
func (ac *attrCache) store(n *node, a proto.Fattr, now sim.Time, ownWrite bool) bool {
	if ac.writeShared(n) {
		ac.stats.SharedDrops++
		return false
	}
	if !ownWrite {
		ac.observedChange(n, a)
	}
	ac.b.setAttr(n, a, now)
	return true
}

// observedChange applies the NFS data-cache rule to a server-fresh
// observation: a moved mtime means another client changed the file, so
// cached blocks are stale — unless the motion is explained by our own
// in-flight write-throughs. Under the protocol policy this is a no-op:
// invalidation is callback- and version-driven, and a Spritely client's
// delayed writes legitimately run ahead of the server's mtime.
func (ac *attrCache) observedChange(n *node, a proto.Fattr) {
	if ac.policy != attrPolicyProbe || !n.attrInit || a.Mtime == n.attr.Mtime {
		return
	}
	hasPending := len(ac.b.cache.DirtyBlocks(ac.b.cfg.Root.FSID, n.h.Ino)) > 0 ||
		n.pending.Pending() > 0
	if !hasPending {
		ac.b.cache.InvalidateFile(ac.b.cfg.Root.FSID, n.h.Ino)
	}
}

// Stats returns a copy of the attribute-cache counters.
func (ac *attrCache) Stats() AttrCacheStats { return ac.stats }

// AttrCacheStats exposes the attribute-cache counters (tests, snfscli).
func (b *Base) AttrCacheStats() AttrCacheStats { return b.attrs.Stats() }
