package client

import (
	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
	"spritelynfs/internal/span"
	"spritelynfs/internal/trace"
	"spritelynfs/internal/vfs"
	"spritelynfs/internal/xdr"
)

// SNFSOptions tunes the Spritely client.
type SNFSOptions struct {
	// UpdateInterval is the period of the update daemon that flushes
	// delayed writes (the /etc/update analogue, §4.2.3). Zero disables
	// it entirely — the "infinite write-delay" configuration of
	// Table 5-5.
	UpdateInterval sim.Duration
	// AgeBased selects the Sprite policy (flush blocks older than the
	// interval) instead of the traditional Unix flush-everything sync.
	AgeBased bool
	// DelayedClose enables the §6.2 extension: the final local close
	// is withheld in anticipation of a prompt reopen.
	DelayedClose bool
	// DelayedCloseIdle is how long a delayed-close file may sit before
	// the client spontaneously sends the owed close (0 = 3 minutes).
	DelayedCloseIdle sim.Duration
	// KeepaliveInterval, when nonzero, starts a process that pings the
	// server and triggers state recovery when its epoch changes.
	KeepaliveInterval sim.Duration
	// GraceRetry is the delay before retrying an open refused with
	// ErrGrace (0 = 200 ms).
	GraceRetry sim.Duration
	// RecoverRetries is how many extra attempts state recovery gives a
	// failed re-registration RPC before abandoning that file (0 = 3).
	// After a crash or failover every client recovers at once, so these
	// retries back off instead of re-entering the vintage RPC schedule
	// in lockstep.
	RecoverRetries int
	// RecoverBackoff is the delay before the first recovery retry
	// (0 = 200 ms), doubled per attempt up to RecoverMaxBackoff.
	RecoverBackoff sim.Duration
	// RecoverMaxBackoff caps the doubling (0 = 2 s).
	RecoverMaxBackoff sim.Duration
	// RecoverJitter, when positive, perturbs each recovery retry delay
	// by a uniform draw in ±(jitter × delay), desynchronizing the
	// post-promotion reconnect stampede. Zero keeps recovery timing
	// deterministic.
	RecoverJitter float64
	// NameCache enables the §7 extension: name translations are cached
	// under the consistency protocol. The client holds a read-open
	// "lease" on each directory whose entries it caches; the server
	// (which must run with NameCacheProtocol) invalidates the lease
	// when another client changes the directory.
	NameCache bool
}

func (o *SNFSOptions) fill() {
	if o.DelayedCloseIdle == 0 {
		o.DelayedCloseIdle = 3 * sim.Minute
	}
	if o.GraceRetry == 0 {
		o.GraceRetry = 200 * sim.Millisecond
	}
	if o.RecoverRetries == 0 {
		o.RecoverRetries = 3
	}
	if o.RecoverBackoff == 0 {
		o.RecoverBackoff = 200 * sim.Millisecond
	}
	if o.RecoverMaxBackoff == 0 {
		o.RecoverMaxBackoff = 2 * sim.Second
	}
}

// SNFSClient is the Spritely NFS client file system.
type SNFSClient struct {
	*Base
	opts SNFSOptions
	// epoch is the last server incarnation seen by the keepalive.
	epoch uint64
	// names is the protocol-protected directory-entry cache (§7
	// extension), keyed by directory handle.
	names map[proto.Handle]*dirNames
	// Inconsistencies counts opens that returned the §3.2 warning.
	Inconsistencies int64
	// CallbacksServed counts callbacks handled.
	CallbacksServed int64
	// LocalReopens counts opens satisfied by delayed-close reuse.
	LocalReopens int64
	// NameCacheHits counts lookups served from the name cache.
	NameCacheHits int64
}

// dirNames is the cached translation set for one directory.
type dirNames struct {
	entries map[string]proto.Handle
	// leased is true while the server counts us as a reader of the
	// directory, which is what entitles us to trust the entries.
	leased bool
	// oweClose counts lease registrations revoked by callback whose
	// balancing close RPC is still owed to the server. The close must
	// not be sent from inside the callback handler (the server holds
	// the directory's entry lock while delivering it); the update
	// daemon settles the debt.
	oweClose int
}

// NewSNFS creates a Spritely client talking to cfg.Server through ep. It
// registers the callback service (the client must provide RPC service,
// §3.2) and starts the update and keepalive daemons per opts.
func NewSNFS(k *sim.Kernel, ep *rpc.Endpoint, cfg Config, opts SNFSOptions) *SNFSClient {
	opts.fill()
	c := &SNFSClient{
		Base:  newBase(k, ep, cfg),
		opts:  opts,
		names: make(map[proto.Handle]*dirNames),
	}
	c.attrs.policy = attrPolicyProtocol
	ep.Register(proto.ProgCallback, c.serveCallback)
	if opts.NameCache {
		c.nameGet = c.nameCacheGet
		c.namePut = c.nameCachePut
	}
	if opts.UpdateInterval > 0 {
		k.Go(string(ep.Addr())+"/update", c.updateDaemon)
	}
	if opts.KeepaliveInterval > 0 {
		k.Go(string(ep.Addr())+"/keepalive", c.keepaliveDaemon)
	}
	return c
}

// serveCallback handles server-to-client consistency requests (§4.2.2).
func (c *SNFSClient) serveCallback(p *sim.Proc, from simnet.Addr, proc uint32, args []byte) ([]byte, rpc.Status) {
	if proc == proto.CbProcNull {
		return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
	}
	if proc != proto.CbProcCallback {
		return nil, rpc.StatusProcUnavail
	}
	a := proto.DecodeCallbackArgs(xdr.NewDecoder(args))
	c.CallbacksServed++
	c.Tracer().RecordOp(c.host(), trace.Callback, p.Op(), "<- %s writeback=%v invalidate=%v release=%v",
		a.Handle, a.WriteBack, a.Invalidate, a.Release)
	n, ok := c.nodes[a.Handle.Ino]
	if !ok || n.h != a.Handle {
		if a.Invalidate {
			c.revokeLease(a.Handle)
		}
		// Nothing else cached for that file: success.
		return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
	}
	if a.WriteBack {
		// The callback must not return until the dirty blocks are
		// back at the server (§3.2).
		if err := c.flushFile(p, n); err != nil {
			return proto.Marshal(&proto.StatusReply{Status: proto.ErrIO}), rpc.StatusOK
		}
	}
	writeBack, invalidate := n.rec.ApplyCallback(a)
	_ = writeBack
	if invalidate {
		n := c.cache.InvalidateFile(c.cfg.Root.FSID, n.h.Ino)
		c.Tracer().Record(c.host(), trace.Cache, "invalidated %d blocks of %s", n, a.Handle)
	}
	if invalidate {
		// A directory lease ends when the server invalidates it
		// (another client changed the directory, §7 extension).
		c.revokeLease(a.Handle)
	}
	if a.Release && n.rec.DelayedClose {
		n.rec.DelayedClose = false
		c.closeRPC(p, n.h, n.rec.DelayedWriteMode)
	}
	return proto.Marshal(&proto.StatusReply{Status: proto.OK}), rpc.StatusOK
}

// nameCacheGet serves a translation from the protocol-protected name
// cache; only leased directories are trusted.
func (c *SNFSClient) nameCacheGet(dir proto.Handle, name string) (proto.Handle, bool) {
	dn, ok := c.names[dir]
	if !ok || !dn.leased {
		return proto.Handle{}, false
	}
	h, ok := dn.entries[name]
	if ok {
		c.NameCacheHits++
	}
	return h, ok
}

// nameCachePut records a translation, acquiring the directory lease (a
// read-open registered at the server) on first use.
func (c *SNFSClient) nameCachePut(p *sim.Proc, dir proto.Handle, name string, h proto.Handle) {
	dn, ok := c.names[dir]
	if !ok {
		dn = &dirNames{entries: make(map[string]proto.Handle)}
		c.names[dir] = dn
	}
	if !dn.leased {
		// Settle any close owed from a revoked lease before taking a
		// new one, so server-side reader counts stay balanced.
		for dn.oweClose > 0 {
			if err := c.closeRPC(p, dir, false); err != nil {
				return
			}
			dn.oweClose--
		}
		body, err := c.call(p, proto.ProcOpen, &proto.OpenArgs{Handle: dir})
		if err != nil {
			return
		}
		r := proto.DecodeOpenReply(xdr.NewDecoder(body))
		if r.Status != proto.OK || !r.CacheEnabled {
			return // can't cache this directory right now
		}
		dn.leased = true
	}
	dn.entries[name] = h
}

// nameCacheUpdate applies a local namespace mutation to our own cache
// (the server's invalidation excludes the mutating client).
func (c *SNFSClient) nameCacheUpdate(dir proto.Handle, name string, h proto.Handle, remove bool) {
	dn, ok := c.names[dir]
	if !ok || !dn.leased {
		return
	}
	if remove {
		delete(dn.entries, name)
	} else {
		dn.entries[name] = h
	}
}

// revokeLease ends a directory lease, remembering the owed close.
func (c *SNFSClient) revokeLease(dir proto.Handle) {
	dn, ok := c.names[dir]
	if !ok {
		return
	}
	if dn.leased {
		dn.oweClose++
	}
	dn.leased = false
	dn.entries = make(map[string]proto.Handle)
}

// settleLeases sends the balancing closes for revoked leases.
func (c *SNFSClient) settleLeases(p *sim.Proc) {
	for dir, dn := range c.names {
		for dn.oweClose > 0 {
			if err := c.closeRPC(p, dir, false); err != nil {
				break
			}
			dn.oweClose--
		}
		if !dn.leased && dn.oweClose == 0 && len(dn.entries) == 0 {
			delete(c.names, dir)
		}
	}
}

// dropNameCache forgets everything (server reboot, lease loss; the
// server's state died with it, so no closes are owed).
func (c *SNFSClient) dropNameCache() {
	c.names = make(map[proto.Handle]*dirNames)
}

// flushFile writes every dirty block of n back synchronously. Each block
// is re-validated immediately before its write: an invalidation callback
// (or a delete) arriving while an earlier block's RPC was in flight
// cancels the rest, and flushing from a stale snapshot would resurrect
// dead data.
func (c *SNFSClient) flushFile(p *sim.Proc, n *node) error {
	for _, blk := range c.cache.DirtyBlocks(c.cfg.Root.FSID, n.h.Ino) {
		cur, ok := c.cache.Lookup(blk.Key)
		if !ok || !cur.Dirty {
			continue
		}
		off := blk.Key.Block * int64(c.cfg.BlockSize)
		if _, err := c.writeBack(p, n, off, cur.Data[:cur.Len]); err != nil {
			return err
		}
		c.cache.MarkClean(blk.Key)
	}
	// One COMMIT settles the whole write-back: the server lands the
	// blocks in gathered arm operations instead of one per block.
	return c.commit(p, n)
}

// updateDaemon periodically writes delayed blocks back (§4.2.3) and
// settles long-idle delayed closes.
func (c *SNFSClient) updateDaemon(p *sim.Proc) {
	for {
		p.Sleep(c.opts.UpdateInterval)
		c.SyncPass(p)
	}
}

// SyncPass performs one update-daemon pass: flush delayed writes (all of
// them under the traditional policy, only old ones under the Sprite
// age-based policy) and spontaneously close idle delayed-close files.
func (c *SNFSClient) SyncPass(p *sim.Proc) {
	p.BeginOp() // one causal chain per daemon pass
	sp := c.span(p, span.Daemon, "sync-pass")
	defer sp.End()
	cutoff := p.Now()
	if c.opts.AgeBased {
		cutoff = cutoff.Add(-c.opts.UpdateInterval)
	}
	var flushed []*node
	seen := make(map[uint64]bool)
	for _, blk := range c.cache.DirtyOlderThan(cutoff) {
		// Re-validate: a callback or delete during an earlier write
		// may have cancelled this block.
		cur, ok := c.cache.Lookup(blk.Key)
		if !ok || !cur.Dirty {
			continue
		}
		n, ok := c.nodes[blk.Key.Ino]
		if !ok {
			c.cache.MarkClean(blk.Key)
			continue
		}
		off := blk.Key.Block * int64(c.cfg.BlockSize)
		if _, err := c.writeBack(p, n, off, cur.Data[:cur.Len]); err != nil {
			continue
		}
		if !seen[blk.Key.Ino] {
			seen[blk.Key.Ino] = true
			flushed = append(flushed, n)
		}
		c.cache.MarkClean(blk.Key)
	}
	// One COMMIT per file the pass touched makes the aged delayed
	// writes durable (the update daemon's contract).
	for _, n := range flushed {
		c.commit(p, n)
	}
	if c.opts.DelayedClose {
		for _, n := range c.nodes {
			if n.rec.DelayedClose && p.Now().Sub(sim.Time(n.rec.ClosedAt)) > c.opts.DelayedCloseIdle {
				n.rec.DelayedClose = false
				c.closeRPC(p, n.h, n.rec.DelayedWriteMode)
			}
		}
	}
	if c.opts.NameCache {
		c.settleLeases(p)
	}
}

// keepaliveDaemon pings the server and triggers recovery when it reboots.
func (c *SNFSClient) keepaliveDaemon(p *sim.Proc) {
	for {
		p.Sleep(c.opts.KeepaliveInterval)
		body, err := c.ep.Call(p, c.cfg.Server, proto.ProgNFS, proto.VersNFS, proto.ProcServerInfo, nil)
		if err != nil {
			continue // server unreachable; keep probing
		}
		r := proto.DecodeServerInfoReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			continue
		}
		if c.epoch != 0 && r.Epoch != c.epoch {
			c.recover(p)
		}
		c.epoch = r.Epoch
	}
}

// recover re-registers this client's open and dirty state with a rebooted
// server (§2.4): the clients together know who caches what.
func (c *SNFSClient) recover(p *sim.Proc) {
	p.BeginOp() // the recovery pass is one causal chain
	sp := c.span(p, span.Daemon, "recover")
	defer sp.End()
	// Directory leases died with the server's state; start cold.
	c.dropNameCache()
	for _, n := range c.nodes {
		if len(n.unstable) > 0 {
			// Unstable writes acked by the dead incarnation: this
			// COMMIT sees the new verifier and redrives them.
			c.commit(p, n)
		}
		dirty := len(c.cache.DirtyBlocks(c.cfg.Root.FSID, n.h.Ino)) > 0
		readers, writers := n.rec.Readers, n.rec.Writers
		if n.rec.DelayedClose {
			// The server believed this file open; re-register it
			// that way so the delayed close stays valid.
			if n.rec.DelayedWriteMode {
				writers++
			} else {
				readers++
			}
		}
		if readers == 0 && writers == 0 && !dirty {
			continue
		}
		args := &proto.ReopenArgs{
			Handle:   n.h,
			Readers:  uint32(readers),
			Writers:  uint32(writers),
			Version:  n.rec.Version,
			HasDirty: dirty,
		}
		r, ok := c.reopenWithRetry(p, args)
		if !ok || r.Status != proto.OK {
			continue
		}
		if !r.CacheEnabled && (readers > 0 || writers > 0) {
			// Recovery discovered write sharing.
			c.flushFile(p, n)
			c.cache.InvalidateFile(c.cfg.Root.FSID, n.h.Ino)
			n.rec.Caching = false
		}
	}
}

// reopenWithRetry issues one recovery Reopen under the capped, jittered
// recovery backoff. A whole cluster's clients recover at once after a
// crash or a backup promotion; retrying on the raw RPC schedule would
// have them all retransmitting in lockstep against the busiest moment of
// the new server's life.
func (c *SNFSClient) reopenWithRetry(p *sim.Proc, args *proto.ReopenArgs) (proto.OpenReply, bool) {
	delay := c.opts.RecoverBackoff
	for attempt := 0; attempt <= c.opts.RecoverRetries; attempt++ {
		if attempt > 0 {
			d := delay
			if j := c.opts.RecoverJitter; j > 0 {
				d += sim.Duration(j * (2*c.k.Rand().Float64() - 1) * float64(delay))
			}
			p.Sleep(d)
			delay *= 2
			if delay > c.opts.RecoverMaxBackoff {
				delay = c.opts.RecoverMaxBackoff
			}
		}
		body, err := c.call(p, proto.ProcReopen, args)
		if err != nil {
			continue
		}
		r := proto.DecodeOpenReply(xdr.NewDecoder(body))
		switch r.Status {
		case proto.ErrGrace, proto.ErrNotHome:
			// Transient during a reboot or failover window; back off and
			// re-register again.
			continue
		}
		return r, true
	}
	return proto.OpenReply{}, false
}

// openRPC performs the SNFS open with grace-period retry and reconciles
// the reply with the local record and cache.
func (c *SNFSClient) openRPC(p *sim.Proc, n *node, write bool) error {
	var reply proto.OpenReply
	for attempt := 0; ; attempt++ {
		body, err := c.call(p, proto.ProcOpen, &proto.OpenArgs{Handle: n.h, WriteMode: write})
		if err != nil {
			return err
		}
		reply = proto.DecodeOpenReply(xdr.NewDecoder(body))
		if reply.Status == proto.ErrGrace {
			if attempt > 100 {
				return reply.Status.Err()
			}
			p.Sleep(c.opts.GraceRetry)
			continue
		}
		break
	}
	switch reply.Status {
	case proto.OK:
	case proto.ErrInconsistent:
		// The file's last writer died with dirty blocks; usable but
		// possibly stale (§3.2).
		c.Inconsistencies++
	default:
		return reply.Status.Err()
	}
	cacheValid := n.rec.Open(reply, write)
	if !cacheValid {
		c.cache.InvalidateFile(c.cfg.Root.FSID, n.h.Ino)
	}
	if !reply.CacheEnabled {
		// Should be clean already (any transition into write sharing
		// called us back), but never discard dirty data silently.
		c.flushFile(p, n)
		c.cache.InvalidateFile(c.cfg.Root.FSID, n.h.Ino)
	}
	c.attrs.ingest(n, reply.Attr, p.Now())
	if cacheValid && reply.CacheEnabled {
		// Our cached view (including delayed writes) remains
		// authoritative for the file length.
		if n.size < reply.Attr.Size {
			n.size = reply.Attr.Size
		}
	} else {
		n.size = reply.Attr.Size
	}
	return nil
}

func (c *SNFSClient) closeRPC(p *sim.Proc, h proto.Handle, write bool) error {
	body, err := c.call(p, proto.ProcClose, &proto.CloseArgs{
		Handle: h, WriteMode: write, WantAttr: c.cfg.AttrPiggyback,
	})
	if err != nil {
		return err
	}
	return c.decodeWcc(p, body).Err()
}

// Open implements vfs.FS.
func (c *SNFSClient) Open(p *sim.Proc, rel string, flags vfs.Flags, mode uint32) (vfs.File, error) {
	p.BeginOp()
	write := flags.Writing()
	var n *node
	if flags&vfs.Create != 0 {
		dir, name, err := c.walkParent(p, rel)
		if err != nil {
			return nil, err
		}
		body, err := c.call(p, proto.ProcCreate, &proto.CreateArgs{Dir: dir, Name: name, Mode: mode})
		if err != nil {
			return nil, err
		}
		r := proto.DecodeHandleReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			return nil, r.Status.Err()
		}
		n = c.getNode(r.Handle)
		// Truncating create: cancel any delayed writes for the old
		// contents.
		c.cache.CancelDirty(c.cfg.Root.FSID, r.Handle.Ino)
		c.cache.InvalidateFile(c.cfg.Root.FSID, r.Handle.Ino)
		c.attrs.ingestOwn(n, r.Attr, p.Now())
		n.size = 0
		c.nameCacheUpdate(dir, name, r.Handle, false)
	} else {
		h, err := c.walkNoAttr(p, rel)
		if err != nil {
			return nil, err
		}
		n = c.getNode(h)
	}

	// Delayed-close reuse (§6.2): a read open of a file we still hold
	// open at the server needs no RPC at all.
	if c.opts.DelayedClose && n.rec.DelayedClose && !write && n.rec.Caching {
		n.rec.DelayedClose = false
		n.rec.Readers++
		c.LocalReopens++
		n.opens++
		return &snfsFile{c: c, n: n, write: false}, nil
	}
	if n.rec.DelayedClose {
		// Settle the owed close before re-opening differently.
		n.rec.DelayedClose = false
		if err := c.closeRPC(p, n.h, n.rec.DelayedWriteMode); err != nil {
			return nil, err
		}
	}
	if err := c.openRPC(p, n, write); err != nil {
		return nil, err
	}
	if flags&vfs.Truncate != 0 && flags&vfs.Create == 0 {
		body, err := c.call(p, proto.ProcSetattr, &proto.SetattrArgs{Handle: n.h, SetSize: true, Size: 0})
		if err != nil {
			return nil, err
		}
		r := proto.DecodeAttrReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			return nil, r.Status.Err()
		}
		c.cache.CancelDirty(c.cfg.Root.FSID, n.h.Ino)
		c.cache.InvalidateFile(c.cfg.Root.FSID, n.h.Ino)
		c.attrs.ingestOwn(n, r.Attr, p.Now())
		n.size = 0
	}
	n.opens++
	return &snfsFile{c: c, n: n, write: write}, nil
}

// Mkdir implements vfs.FS.
func (c *SNFSClient) Mkdir(p *sim.Proc, rel string, mode uint32) error {
	p.BeginOp()
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcMkdir, &proto.CreateArgs{Dir: dir, Name: name, Mode: mode})
	if err != nil {
		return err
	}
	r := proto.DecodeHandleReply(xdr.NewDecoder(body))
	if r.Status == proto.OK {
		c.nameCacheUpdate(dir, name, r.Handle, false)
	}
	return r.Status.Err()
}

// Remove implements vfs.FS. Deleting a file cancels its delayed writes
// (§4.2.3): data that never reached the server never will, which is the
// temp-file optimization the sort benchmark turns on.
func (c *SNFSClient) Remove(p *sim.Proc, rel string) error {
	p.BeginOp()
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	// The final component is looked up without following symlinks
	// (unlink removes the name, not the target) and with attributes,
	// because a hard-linked inode (nlink > 1) survives the unlink and
	// its delayed writes must NOT be cancelled.
	h, attr, err := c.lookupRPC(p, dir, name)
	if err != nil {
		return err
	}
	lastLink := attr.Nlink <= 1
	if lastLink {
		// Cancel before the remove RPC so a racing update-daemon
		// pass cannot resurrect the writes.
		c.cache.CancelDirty(c.cfg.Root.FSID, h.Ino)
		c.cache.InvalidateFile(c.cfg.Root.FSID, h.Ino)
	}
	body, err := c.call(p, proto.ProcRemove, &proto.DirOpArgs{
		Dir: dir, Name: name, WantAttr: c.cfg.AttrPiggyback,
	})
	if err != nil {
		return err
	}
	if st := c.decodeWcc(p, body); st != proto.OK {
		return st.Err()
	}
	c.nameCacheUpdate(dir, name, proto.Handle{}, true)
	if lastLink {
		delete(c.nodes, h.Ino)
		delete(c.names, h) // in case it was a cached directory handle
	}
	return nil
}

// Rmdir implements vfs.FS.
func (c *SNFSClient) Rmdir(p *sim.Proc, rel string) error {
	p.BeginOp()
	dir, name, err := c.walkParent(p, rel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcRmdir, &proto.DirOpArgs{Dir: dir, Name: name})
	if err != nil {
		return err
	}
	c.invalidateDirCache()
	st := proto.DecodeStatusReply(xdr.NewDecoder(body)).Status
	if st == proto.OK {
		c.nameCacheUpdate(dir, name, proto.Handle{}, true)
	}
	return st.Err()
}

// Rename implements vfs.FS.
func (c *SNFSClient) Rename(p *sim.Proc, oldrel, newrel string) error {
	p.BeginOp()
	sdir, sname, err := c.walkParent(p, oldrel)
	if err != nil {
		return err
	}
	ddir, dname, err := c.walkParent(p, newrel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcRename, &proto.RenameArgs{
		SrcDir: sdir, SrcName: sname, DstDir: ddir, DstName: dname,
		WantAttr: c.cfg.AttrPiggyback,
	})
	if err != nil {
		return err
	}
	c.invalidateDirCache()
	st := c.decodeWcc(p, body)
	if st == proto.OK {
		// Conservative: forget both directories' translations rather
		// than compute the moved handle.
		delete(c.names, sdir)
		delete(c.names, ddir)
	}
	return st.Err()
}

// Stat implements vfs.FS.
func (c *SNFSClient) Stat(p *sim.Proc, rel string) (proto.Fattr, error) {
	p.BeginOp()
	_, attr, err := c.walk(p, rel)
	return attr, err
}

// Readdir implements vfs.FS: the GFS layer opens directories like files,
// so SNFS sends open and close RPCs around the listing — the source of
// its small ScanDir handicap in Table 5-1.
func (c *SNFSClient) Readdir(p *sim.Proc, rel string) ([]proto.DirEntry, error) {
	p.BeginOp()
	h, err := c.walkNoAttr(p, rel)
	if err != nil {
		return nil, err
	}
	n := c.getNode(h)
	if err := c.openRPC(p, n, false); err != nil {
		return nil, err
	}
	var entries []proto.DirEntry
	if c.cfg.AttrPiggyback {
		entries, err = c.readdirAttrs(p, h)
	} else {
		var body []byte
		body, err = c.call(p, proto.ProcReaddir, &proto.HandleArgs{Handle: h})
		if err == nil {
			r := proto.DecodeReaddirReply(xdr.NewDecoder(body))
			if r.Status != proto.OK {
				err = r.Status.Err()
			} else {
				entries = r.Entries
			}
		}
	}
	n.rec.Close(false)
	if cerr := c.closeRPC(p, n.h, false); cerr != nil && err == nil {
		err = cerr
	}
	return entries, err
}

// SyncAll implements vfs.FS (one explicit update pass): all dirty
// blocks stream to the server, then one COMMIT per touched file lands
// them in gathered arm operations.
func (c *SNFSClient) SyncAll(p *sim.Proc) {
	p.BeginOp()
	var flushed []*node
	seen := make(map[uint64]bool)
	for _, blk := range c.cache.AllDirty() {
		cur, ok := c.cache.Lookup(blk.Key)
		if !ok || !cur.Dirty {
			continue
		}
		n, ok := c.nodes[blk.Key.Ino]
		if !ok {
			c.cache.MarkClean(blk.Key)
			continue
		}
		off := blk.Key.Block * int64(c.cfg.BlockSize)
		if _, err := c.writeBack(p, n, off, cur.Data[:cur.Len]); err != nil {
			continue
		}
		if !seen[blk.Key.Ino] {
			seen[blk.Key.Ino] = true
			flushed = append(flushed, n)
		}
		c.cache.MarkClean(blk.Key)
	}
	for _, n := range flushed {
		c.commit(p, n)
	}
}

// snfsFile is an open SNFS file.
type snfsFile struct {
	c      *SNFSClient
	n      *node
	write  bool
	closed bool
}

// Handle exposes the protocol-level handle (audit.Handled).
func (f *snfsFile) Handle() proto.Handle { return f.n.h }

// ReadAt implements vfs.File. Cachable files read through the block
// cache with read-ahead; uncachable (write-shared) files go straight to
// the server with read-ahead disabled (§4.2.1).
func (f *snfsFile) ReadAt(p *sim.Proc, off int64, count int) ([]byte, error) {
	p.BeginOp()
	if f.n.rec.Caching {
		return f.c.assembleRead(p, f.n, off, count, f.c.cfg.ReadAhead)
	}
	data, attr, err := f.c.readRPC(p, f.n.h, off, count)
	if err != nil {
		return nil, err
	}
	f.c.attrs.ingest(f.n, attr, p.Now())
	f.n.size = attr.Size
	return data, nil
}

// WriteAt implements vfs.File. Cachable files use pure delayed write —
// no RPC at all; a single-writer client might never write to the server
// during the file's lifetime (§2.2). Uncachable files write through
// synchronously.
func (f *snfsFile) WriteAt(p *sim.Proc, off int64, data []byte) (int, error) {
	p.BeginOp()
	if f.n.rec.Caching {
		if _, err := f.c.writeToCache(p, f.n, off, data, true); err != nil {
			return 0, err
		}
		return len(data), nil
	}
	attr, err := f.c.writeRPC(p, f.n.h, off, data)
	if err != nil {
		return 0, err
	}
	f.c.attrs.ingestOwn(f.n, attr, p.Now())
	f.n.size = attr.Size
	return len(data), nil
}

// Close implements vfs.File: report the close to the server (or defer it
// under delayed-close); dirty blocks deliberately stay behind in the
// cache.
func (f *snfsFile) Close(p *sim.Proc) error {
	p.BeginOp()
	if f.closed {
		return nil
	}
	f.closed = true
	f.n.opens--
	final := f.n.rec.Close(f.write)
	if f.c.opts.DelayedClose && final && f.n.rec.Caching && !f.write {
		f.n.rec.DelayedClose = true
		f.n.rec.DelayedWriteMode = false
		f.n.rec.ClosedAt = int64(p.Now())
		return nil
	}
	return f.c.closeRPC(p, f.n.h, f.write)
}

// Sync implements vfs.File: explicit flush for applications that value
// reliability over performance (§2.2).
func (f *snfsFile) Sync(p *sim.Proc) error {
	p.BeginOp()
	return f.c.flushFile(p, f.n)
}

// Attr implements vfs.File: served by the attribute cache while
// cachable; always fetched from the server for write-shared files
// (§4.2.1 — the cache's policy enforces this).
func (f *snfsFile) Attr(p *sim.Proc) (proto.Fattr, error) {
	p.BeginOp()
	a, cached, err := f.c.attrs.get(p, f.n, false)
	if err != nil {
		return proto.Fattr{}, err
	}
	if cached && f.n.size > a.Size {
		// Our cached view (delayed writes) is ahead of the last
		// attributes the server sent.
		a.Size = f.n.size
	}
	return a, nil
}

// Epoch returns the last server epoch observed by the keepalive daemon.
func (c *SNFSClient) Epoch() uint64 { return c.epoch }

// ForceRecover runs a recovery pass immediately (tests drive this instead
// of waiting for the keepalive period).
func (c *SNFSClient) ForceRecover(p *sim.Proc) { c.recover(p) }

// Lock acquires an advisory whole-file lock on rel (the §2.2 mechanism
// for serializing write-shared access), polling with backoff until
// granted. Exclusive locks conflict with everything; shared locks
// conflict with exclusive ones.
func (c *SNFSClient) Lock(p *sim.Proc, rel string, exclusive bool) error {
	p.BeginOp()
	h, err := c.walkNoAttr(p, rel)
	if err != nil {
		return err
	}
	backoff := 10 * sim.Millisecond
	for {
		body, err := c.call(p, proto.ProcLock, &proto.LockArgs{Handle: h, Exclusive: exclusive})
		if err != nil {
			return err
		}
		r := proto.DecodeLockReply(xdr.NewDecoder(body))
		if r.Status != proto.OK {
			return r.Status.Err()
		}
		if r.Granted {
			return nil
		}
		p.Sleep(backoff)
		if backoff < 200*sim.Millisecond {
			backoff *= 2
		}
	}
}

// Unlock releases one advisory lock on rel.
func (c *SNFSClient) Unlock(p *sim.Proc, rel string) error {
	p.BeginOp()
	h, err := c.walkNoAttr(p, rel)
	if err != nil {
		return err
	}
	body, err := c.call(p, proto.ProcUnlock, &proto.LockArgs{Handle: h})
	if err != nil {
		return err
	}
	return proto.DecodeLockReply(xdr.NewDecoder(body)).Status.Err()
}
