package client

import (
	"testing"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/rpc"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/simnet"
)

// TestRecoverBackoffExactElapsed pins the recovery retry schedule to the
// tick. With jitter off the timing is fully deterministic: each Reopen
// attempt against an unreachable server burns the full RPC retransmit
// budget (1+2+4+8+16 s = 31 s with the default endpoint options), and
// between attempts the recovery path sleeps its own capped, doubling
// backoff — here 100 ms then 150 ms (200 ms capped). Three attempts:
//
//	31 s + 100 ms + 31 s + 150 ms + 31 s = 93.25 s
func TestRecoverBackoffExactElapsed(t *testing.T) {
	k := sim.NewKernel(1)
	net := simnet.New(k, simnet.Config{PropDelay: 0, BytesPerSec: 0})
	ep := rpc.NewEndpoint(k, net, "c0", rpc.Options{Workers: 1})
	cfg := Config{
		// No one listens at this address: every call times out after
		// the whole retransmit schedule.
		Server:    "deadserver",
		Root:      proto.Handle{FSID: 1, Ino: 1, Gen: 1},
		BlockSize: 4096,
	}
	c := NewSNFS(k, ep, cfg, SNFSOptions{
		RecoverRetries:    2,
		RecoverBackoff:    100 * sim.Millisecond,
		RecoverMaxBackoff: 150 * sim.Millisecond,
	})

	// One file the server believed open: recovery must re-register it.
	h := proto.Handle{FSID: 1, Ino: 2, Gen: 1}
	n := c.getNode(h)
	n.rec.Readers = 1

	var elapsed sim.Duration
	k.Go("test-main", func(p *sim.Proc) {
		defer k.Stop()
		start := p.Now()
		c.recover(p)
		elapsed = p.Now().Sub(start)
	})
	k.Run()

	want := 93*sim.Second + 250*sim.Millisecond
	if elapsed != want {
		t.Fatalf("recovery against a dead server took %v, want exactly %v", elapsed, want)
	}
}

// TestRecoverBackoffJitterPerturbs verifies the jitter knob actually
// moves the schedule (and stays within the ± bound of each delay).
func TestRecoverBackoffJitterPerturbs(t *testing.T) {
	elapsedWith := func(jitter float64) sim.Duration {
		k := sim.NewKernel(7)
		net := simnet.New(k, simnet.Config{})
		ep := rpc.NewEndpoint(k, net, "c0", rpc.Options{Workers: 1})
		c := NewSNFS(k, ep, Config{
			Server: "deadserver", Root: proto.Handle{FSID: 1, Ino: 1, Gen: 1}, BlockSize: 4096,
		}, SNFSOptions{
			RecoverRetries:    2,
			RecoverBackoff:    100 * sim.Millisecond,
			RecoverMaxBackoff: 150 * sim.Millisecond,
			RecoverJitter:     jitter,
		})
		n := c.getNode(proto.Handle{FSID: 1, Ino: 2, Gen: 1})
		n.rec.Readers = 1
		var elapsed sim.Duration
		k.Go("test-main", func(p *sim.Proc) {
			defer k.Stop()
			start := p.Now()
			c.recover(p)
			elapsed = p.Now().Sub(start)
		})
		k.Run()
		return elapsed
	}

	base := elapsedWith(0)
	jittered := elapsedWith(0.5)
	if jittered == base {
		t.Fatal("jitter did not perturb the recovery schedule")
	}
	// Both sleeps can move by at most half their nominal length.
	bound := (100 + 150) * sim.Millisecond / 2
	diff := jittered - base
	if diff < 0 {
		diff = -diff
	}
	if diff > bound {
		t.Fatalf("jitter moved the schedule by %v, beyond the ±%v bound", diff, bound)
	}
}
