// Package cache implements the file-block buffer cache used on every host
// in the reproduction — the analogue of the Ultrix GFS buffer pool the
// paper's clients cache file data in (§4.2.1). Blocks are identified by
// (filesystem, inode, block number), kept in LRU order under a capacity
// limit, and carry dirty state with the time they were dirtied, which is
// what the delayed-write policies (30-second sync, age-based write-back,
// infinite delay) and the delete-before-writeback optimization operate on.
//
// The cache is a passive data structure: eviction returns any displaced
// dirty blocks to the caller, which decides how (and in which simulated
// process) to write them back.
package cache

import (
	"container/list"

	"spritelynfs/internal/sim"
)

// Key names a cached block.
type Key struct {
	FS    uint32 // filesystem / mount identifier
	Ino   uint64 // file identifier within the filesystem
	Block int64  // block number within the file
}

// Block is a cached file block. Data may be nil when the cache is used
// only for residency modeling (the server read cache and the local-disk
// configuration keep file contents in their stores; remote client caches
// keep the bytes here).
type Block struct {
	Key     Key
	Data    []byte
	Dirty   bool
	DirtyAt sim.Time // when the block was first dirtied since last clean
	// Len is the number of valid bytes (blocks at end-of-file may be
	// partial; the write policy for partial blocks differs from full
	// ones in the NFS client).
	Len int
}

// Stats counts cache activity.
type Stats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	DirtyEvict  int64 // evictions that forced a write-back
	Cancelled   int64 // dirty blocks dropped by delete-before-writeback
	Invalidated int64 // blocks dropped by invalidation (callbacks, opens)
}

// Cache is a fixed-capacity LRU block cache.
type Cache struct {
	capacity int // maximum resident blocks; <=0 means unbounded
	blocks   map[Key]*list.Element
	lru      *list.List // front = most recent
	perFile  map[fileKey]map[int64]*list.Element
	ndirty   int
	stats    Stats
}

type fileKey struct {
	fs  uint32
	ino uint64
}

// New returns a cache holding at most capacity blocks (unbounded if
// capacity <= 0).
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		blocks:   make(map[Key]*list.Element),
		lru:      list.New(),
		perFile:  make(map[fileKey]map[int64]*list.Element),
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len reports the number of resident blocks.
func (c *Cache) Len() int { return c.lru.Len() }

// DirtyCount reports the number of dirty resident blocks.
func (c *Cache) DirtyCount() int { return c.ndirty }

// Lookup returns the block for key if resident, updating recency and the
// hit/miss counters.
func (c *Cache) Lookup(key Key) (*Block, bool) {
	el, ok := c.blocks[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	return el.Value.(*Block), true
}

// Contains reports residency without touching recency or counters.
func (c *Cache) Contains(key Key) bool {
	_, ok := c.blocks[key]
	return ok
}

// Insert adds or replaces the block for key and returns any blocks evicted
// to make room; evicted dirty blocks must be written back by the caller.
// The returned block pointer is the resident block, whose fields (Dirty,
// Data) the caller may update in place.
func (c *Cache) Insert(key Key, data []byte, length int) (*Block, []*Block) {
	if el, ok := c.blocks[key]; ok {
		b := el.Value.(*Block)
		b.Data = data
		if length > b.Len {
			b.Len = length
		}
		c.lru.MoveToFront(el)
		return b, nil
	}
	b := &Block{Key: key, Data: data, Len: length}
	el := c.lru.PushFront(b)
	c.blocks[key] = el
	fk := fileKey{key.FS, key.Ino}
	m := c.perFile[fk]
	if m == nil {
		m = make(map[int64]*list.Element)
		c.perFile[fk] = m
	}
	m[key.Block] = el

	var evicted []*Block
	for c.capacity > 0 && c.lru.Len() > c.capacity {
		back := c.lru.Back()
		if back == el {
			break // never evict the block just inserted
		}
		vb := back.Value.(*Block)
		c.remove(back)
		c.stats.Evictions++
		if vb.Dirty {
			c.stats.DirtyEvict++
		}
		evicted = append(evicted, vb)
	}
	return b, evicted
}

// MarkDirty marks the resident block dirty, recording now as its dirty
// time if it was clean. It reports whether the block was resident.
func (c *Cache) MarkDirty(key Key, now sim.Time) bool {
	el, ok := c.blocks[key]
	if !ok {
		return false
	}
	b := el.Value.(*Block)
	if !b.Dirty {
		b.Dirty = true
		b.DirtyAt = now
		c.ndirty++
	}
	return true
}

// MarkClean clears the dirty bit after a successful write-back.
func (c *Cache) MarkClean(key Key) {
	if el, ok := c.blocks[key]; ok {
		b := el.Value.(*Block)
		if b.Dirty {
			b.Dirty = false
			c.ndirty--
		}
	}
}

// remove unlinks el from every index. It does not touch stats.
func (c *Cache) remove(el *list.Element) {
	b := el.Value.(*Block)
	c.lru.Remove(el)
	delete(c.blocks, b.Key)
	fk := fileKey{b.Key.FS, b.Key.Ino}
	if m, ok := c.perFile[fk]; ok {
		delete(m, b.Key.Block)
		if len(m) == 0 {
			delete(c.perFile, fk)
		}
	}
	if b.Dirty {
		c.ndirty--
	}
}

// FileBlocks returns the resident blocks of one file in ascending block
// order.
func (c *Cache) FileBlocks(fs uint32, ino uint64) []*Block {
	m := c.perFile[fileKey{fs, ino}]
	if len(m) == 0 {
		return nil
	}
	out := make([]*Block, 0, len(m))
	for _, el := range m {
		out = append(out, el.Value.(*Block))
	}
	sortBlocks(out)
	return out
}

// DirtyBlocks returns the dirty resident blocks of one file in ascending
// block order.
func (c *Cache) DirtyBlocks(fs uint32, ino uint64) []*Block {
	var out []*Block
	for _, b := range c.FileBlocks(fs, ino) {
		if b.Dirty {
			out = append(out, b)
		}
	}
	return out
}

// DirtyOlderThan returns every dirty block whose DirtyAt is at or before
// cutoff, across all files, in ascending (fs, ino, block) order.
func (c *Cache) DirtyOlderThan(cutoff sim.Time) []*Block {
	var out []*Block
	for el := c.lru.Front(); el != nil; el = el.Next() {
		b := el.Value.(*Block)
		if b.Dirty && b.DirtyAt <= cutoff {
			out = append(out, b)
		}
	}
	sortBlocksFull(out)
	return out
}

// AllDirty returns every dirty block in ascending order.
func (c *Cache) AllDirty() []*Block {
	var out []*Block
	for el := c.lru.Front(); el != nil; el = el.Next() {
		b := el.Value.(*Block)
		if b.Dirty {
			out = append(out, b)
		}
	}
	sortBlocksFull(out)
	return out
}

// InvalidateFile drops every resident block of the file, dirty or not,
// and returns how many blocks were dropped. Dirty blocks are counted as
// cancelled (the delete-before-writeback path) — callers that must not
// lose data should write dirty blocks back first.
func (c *Cache) InvalidateFile(fs uint32, ino uint64) int {
	m := c.perFile[fileKey{fs, ino}]
	n := 0
	for _, el := range m {
		b := el.Value.(*Block)
		if b.Dirty {
			c.stats.Cancelled++
		}
		c.remove(el)
		n++
	}
	c.stats.Invalidated += int64(n)
	return n
}

// CancelDirty drops the dirty blocks of the file without writing them
// back (delete-before-writeback, §4.2.3) and returns how many were
// cancelled. Clean blocks stay resident.
func (c *Cache) CancelDirty(fs uint32, ino uint64) int {
	n := 0
	for _, b := range c.DirtyBlocks(fs, ino) {
		c.stats.Cancelled++
		c.remove(c.blocks[b.Key])
		n++
	}
	return n
}

// InvalidateAll empties the cache (client crash simulation), returning the
// number of dropped blocks.
func (c *Cache) InvalidateAll() int {
	n := c.lru.Len()
	for _, el := range c.blocks {
		if el.Value.(*Block).Dirty {
			c.stats.Cancelled++
		}
	}
	c.blocks = make(map[Key]*list.Element)
	c.perFile = make(map[fileKey]map[int64]*list.Element)
	c.lru.Init()
	c.ndirty = 0
	c.stats.Invalidated += int64(n)
	return n
}

func sortBlocks(bs []*Block) {
	// Insertion sort: per-file block lists are short-lived and small.
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Key.Block < bs[j-1].Key.Block; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

func sortBlocksFull(bs []*Block) {
	less := func(a, b *Block) bool {
		if a.Key.FS != b.Key.FS {
			return a.Key.FS < b.Key.FS
		}
		if a.Key.Ino != b.Key.Ino {
			return a.Key.Ino < b.Key.Ino
		}
		return a.Key.Block < b.Key.Block
	}
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && less(bs[j], bs[j-1]); j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}
