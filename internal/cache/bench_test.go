package cache

import "testing"

func BenchmarkLookupHit(b *testing.B) {
	c := New(4096)
	for i := int64(0); i < 1024; i++ {
		c.Insert(Key{FS: 1, Ino: 1, Block: i}, nil, 4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(Key{FS: 1, Ino: 1, Block: int64(i) % 1024})
	}
}

func BenchmarkInsertWithEviction(b *testing.B) {
	c := New(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(Key{FS: 1, Ino: 1, Block: int64(i)}, nil, 4096)
	}
}

func BenchmarkDirtyBlocksScan(b *testing.B) {
	c := New(0)
	for i := int64(0); i < 512; i++ {
		k := Key{FS: 1, Ino: uint64(i % 8), Block: i}
		c.Insert(k, nil, 4096)
		if i%3 == 0 {
			c.MarkDirty(k, 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DirtyBlocks(1, uint64(i%8))
	}
}
