package cache

import (
	"testing"
	"testing/quick"

	"spritelynfs/internal/sim"
)

func key(ino uint64, blk int64) Key { return Key{FS: 1, Ino: ino, Block: blk} }

func TestInsertLookup(t *testing.T) {
	c := New(10)
	c.Insert(key(1, 0), []byte("data"), 4)
	b, ok := c.Lookup(key(1, 0))
	if !ok || string(b.Data) != "data" || b.Len != 4 {
		t.Fatalf("lookup = %+v, %v", b, ok)
	}
	if _, ok := c.Lookup(key(1, 1)); ok {
		t.Error("phantom block")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := int64(0); i < 3; i++ {
		c.Insert(key(1, i), nil, 0)
	}
	c.Lookup(key(1, 0)) // touch block 0; block 1 is now LRU
	_, evicted := c.Insert(key(1, 3), nil, 0)
	if len(evicted) != 1 || evicted[0].Key.Block != 1 {
		t.Fatalf("evicted %v, want block 1", evicted)
	}
	if !c.Contains(key(1, 0)) || !c.Contains(key(1, 2)) || !c.Contains(key(1, 3)) {
		t.Error("wrong residents after eviction")
	}
}

func TestEvictionReturnsDirtyBlocks(t *testing.T) {
	c := New(2)
	c.Insert(key(1, 0), nil, 0)
	c.MarkDirty(key(1, 0), 100)
	c.Insert(key(1, 1), nil, 0)
	_, evicted := c.Insert(key(1, 2), nil, 0)
	if len(evicted) != 1 || !evicted[0].Dirty {
		t.Fatalf("evicted %+v, want the dirty block", evicted)
	}
	if c.Stats().DirtyEvict != 1 {
		t.Errorf("DirtyEvict = %d", c.Stats().DirtyEvict)
	}
	if c.DirtyCount() != 0 {
		t.Errorf("dirty count %d after dirty eviction", c.DirtyCount())
	}
}

func TestDirtyTracking(t *testing.T) {
	c := New(0)
	c.Insert(key(1, 0), nil, 0)
	c.Insert(key(1, 1), nil, 0)
	if !c.MarkDirty(key(1, 0), sim.Time(5*sim.Second)) {
		t.Fatal("MarkDirty on resident block failed")
	}
	if c.MarkDirty(key(9, 9), 0) {
		t.Error("MarkDirty on absent block succeeded")
	}
	// Re-dirtying must not reset DirtyAt.
	c.MarkDirty(key(1, 0), sim.Time(50*sim.Second))
	dirty := c.AllDirty()
	if len(dirty) != 1 || dirty[0].DirtyAt != sim.Time(5*sim.Second) {
		t.Errorf("AllDirty = %+v", dirty)
	}
	c.MarkClean(key(1, 0))
	if c.DirtyCount() != 0 || len(c.AllDirty()) != 0 {
		t.Error("MarkClean did not clean")
	}
}

func TestDirtyOlderThan(t *testing.T) {
	c := New(0)
	for i := int64(0); i < 4; i++ {
		c.Insert(key(1, i), nil, 0)
		c.MarkDirty(key(1, i), sim.Time(sim.Duration(i)*sim.Second))
	}
	old := c.DirtyOlderThan(sim.Time(2 * sim.Second))
	if len(old) != 3 {
		t.Fatalf("got %d old blocks, want 3", len(old))
	}
	for i, b := range old {
		if b.Key.Block != int64(i) {
			t.Errorf("old[%d] = block %d, want sorted ascending", i, b.Key.Block)
		}
	}
}

func TestCancelDirtyLeavesCleanBlocks(t *testing.T) {
	c := New(0)
	c.Insert(key(7, 0), nil, 0)
	c.Insert(key(7, 1), nil, 0)
	c.Insert(key(7, 2), nil, 0)
	c.MarkDirty(key(7, 0), 1)
	c.MarkDirty(key(7, 2), 1)
	n := c.CancelDirty(1, 7)
	if n != 2 {
		t.Fatalf("cancelled %d, want 2", n)
	}
	if !c.Contains(key(7, 1)) || c.Contains(key(7, 0)) || c.Contains(key(7, 2)) {
		t.Error("wrong residents after cancel")
	}
	if c.Stats().Cancelled != 2 {
		t.Errorf("Cancelled = %d", c.Stats().Cancelled)
	}
}

func TestInvalidateFile(t *testing.T) {
	c := New(0)
	c.Insert(key(1, 0), nil, 0)
	c.Insert(key(1, 1), nil, 0)
	c.Insert(key(2, 0), nil, 0)
	if n := c.InvalidateFile(1, 1); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if c.Len() != 1 || !c.Contains(key(2, 0)) {
		t.Error("other file's blocks disturbed")
	}
}

func TestFileBlocksSorted(t *testing.T) {
	c := New(0)
	for _, blk := range []int64{5, 1, 3, 0, 4, 2} {
		c.Insert(key(1, blk), nil, 0)
	}
	bs := c.FileBlocks(1, 1)
	if len(bs) != 6 {
		t.Fatalf("len %d", len(bs))
	}
	for i, b := range bs {
		if b.Key.Block != int64(i) {
			t.Fatalf("blocks out of order: %d at %d", b.Key.Block, i)
		}
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	c := New(2)
	b1, _ := c.Insert(key(1, 0), []byte("old"), 3)
	b2, evicted := c.Insert(key(1, 0), []byte("newer"), 5)
	if b1 != b2 {
		t.Error("reinsert allocated a new block")
	}
	if evicted != nil {
		t.Error("reinsert evicted")
	}
	if string(b2.Data) != "newer" || b2.Len != 5 {
		t.Errorf("block %+v", b2)
	}
	if c.Len() != 1 {
		t.Errorf("len %d", c.Len())
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(0)
	c.Insert(key(1, 0), nil, 0)
	c.Insert(key(2, 0), nil, 0)
	c.MarkDirty(key(1, 0), 1)
	if n := c.InvalidateAll(); n != 2 {
		t.Fatalf("dropped %d, want 2", n)
	}
	if c.Len() != 0 || c.DirtyCount() != 0 {
		t.Error("cache not empty")
	}
	if c.Stats().Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", c.Stats().Cancelled)
	}
}

// Property: the dirty count always equals the number of blocks reporting
// Dirty, and residency never exceeds capacity, across random operation
// sequences.
func TestQuickInvariants(t *testing.T) {
	type op struct {
		Kind byte
		Ino  uint8
		Blk  uint8
	}
	f := func(ops []op) bool {
		c := New(8)
		for i, o := range ops {
			k := Key{FS: 1, Ino: uint64(o.Ino % 4), Block: int64(o.Blk % 8)}
			switch o.Kind % 5 {
			case 0:
				c.Insert(k, nil, 0)
			case 1:
				c.MarkDirty(k, sim.Time(i))
			case 2:
				c.MarkClean(k)
			case 3:
				c.CancelDirty(k.FS, k.Ino)
			case 4:
				c.Lookup(k)
			}
			if c.capacity > 0 && c.Len() > c.capacity {
				return false
			}
			n := 0
			for _, ino := range []uint64{0, 1, 2, 3} {
				n += len(c.DirtyBlocks(1, ino))
			}
			if n != c.DirtyCount() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
