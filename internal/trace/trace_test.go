package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"spritelynfs/internal/sim"
	opspan "spritelynfs/internal/span"
)

func fixedClock(t sim.Time) func() sim.Time {
	return func() sim.Time { return t }
}

func TestRecordAndEvents(t *testing.T) {
	now := sim.Time(0)
	tr := New(func() sim.Time { return now }, 10)
	tr.Record("client", RPCCall, "call %d", 1)
	now = sim.Time(sim.Second)
	tr.Record("server", RPCServe, "serve %d", 1)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Host != "client" || evs[0].Kind != RPCCall || evs[0].Detail != "call 1" {
		t.Errorf("event 0: %+v", evs[0])
	}
	if evs[1].At != sim.Time(sim.Second) {
		t.Errorf("event 1 at %v", evs[1].At)
	}
	if tr.Total() != 2 {
		t.Errorf("total %d", tr.Total())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(fixedClock(0), 3)
	for i := 0; i < 7; i++ {
		tr.Record("h", Note, "e%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("%d retained", len(evs))
	}
	// Oldest retained first.
	want := []string{"e4", "e5", "e6"}
	for i, e := range evs {
		if e.Detail != want[i] {
			t.Errorf("retained[%d] = %q, want %q", i, e.Detail, want[i])
		}
	}
	if tr.Total() != 7 {
		t.Errorf("total %d", tr.Total())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("h", Note, "ignored")
	if tr.Events() != nil || tr.Total() != 0 {
		t.Error("nil tracer not inert")
	}
	var b strings.Builder
	tr.Dump(&b)
	if b.Len() != 0 {
		t.Error("nil dump wrote output")
	}
}

func TestFilterAndGrep(t *testing.T) {
	tr := New(fixedClock(0), 10)
	tr.Record("client", RPCCall, "open fh(1:5.1)")
	tr.Record("server", State, "ONE-WRITER")
	tr.Record("server", Callback, "writeback fh(1:5.1)")
	if got := tr.Filter(State); len(got) != 1 || got[0].Kind != State {
		t.Errorf("Filter(State) = %v", got)
	}
	if got := tr.Filter(RPCCall, Callback); len(got) != 2 {
		t.Errorf("Filter(two kinds) = %d events", len(got))
	}
	if got := tr.Grep("fh(1:5.1)"); len(got) != 2 {
		t.Errorf("Grep = %d events", len(got))
	}
	if got := tr.Grep("server"); len(got) != 2 {
		t.Errorf("Grep(host) = %d events", len(got))
	}
}

func TestDumpFormat(t *testing.T) {
	tr := New(fixedClock(sim.Time(1500*sim.Millisecond)), 2)
	tr.Record("client", RPCCall, "one")
	tr.Record("client", RPCCall, "two")
	tr.Record("client", RPCCall, "three") // evicts "one"
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "(1 earlier events dropped)") {
		t.Errorf("missing drop notice:\n%s", out)
	}
	if !strings.Contains(out, "1.500000s") || !strings.Contains(out, "rpc-call") {
		t.Errorf("bad format:\n%s", out)
	}
	if strings.Contains(out, "one") {
		t.Errorf("evicted event printed:\n%s", out)
	}
}

// TestDroppedAtCapacityBoundaries pins the wrap-around accounting at the
// exact-capacity edges: N records drop nothing, N+1 drops exactly one,
// and a full second lap drops a full ring's worth.
func TestDroppedAtCapacityBoundaries(t *testing.T) {
	const capacity = 4
	tr := New(fixedClock(0), capacity)
	for i := 0; i < capacity; i++ {
		tr.Record("h", Note, "e%d", i)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped at exact capacity = %d, want 0", got)
	}
	if evs := tr.Events(); len(evs) != capacity || evs[0].Seq != 0 {
		t.Fatalf("full ring: %d events, first seq %d", len(evs), evs[0].Seq)
	}

	tr.Record("h", Note, "e%d", capacity)
	if got := tr.Dropped(); got != 1 {
		t.Fatalf("Dropped at capacity+1 = %d, want 1", got)
	}
	evs := tr.Events()
	if len(evs) != capacity || evs[0].Seq != 1 || evs[len(evs)-1].Seq != capacity {
		t.Fatalf("one past capacity: %d events, seqs %d..%d",
			len(evs), evs[0].Seq, evs[len(evs)-1].Seq)
	}

	for i := capacity + 1; i < 2*capacity; i++ {
		tr.Record("h", Note, "e%d", i)
	}
	if got := tr.Dropped(); got != capacity {
		t.Fatalf("Dropped at 2×capacity = %d, want %d", got, capacity)
	}
	if evs := tr.Events(); evs[0].Seq != capacity {
		t.Fatalf("second lap: first retained seq %d, want %d", evs[0].Seq, capacity)
	}

	// Dump's drop notice agrees with the accessor.
	var b strings.Builder
	tr.Dump(&b)
	if !strings.Contains(b.String(), "(4 earlier events dropped)") {
		t.Errorf("dump notice disagrees with Dropped():\n%s", b.String())
	}

	var nilTr *Tracer
	if nilTr.Dropped() != 0 {
		t.Error("nil tracer Dropped != 0")
	}
}

func TestWriteChrome(t *testing.T) {
	now := sim.Time(0)
	tr := New(func() sim.Time { return now }, 100)
	tr.Record("client", RPCCall, "-> server read xid=7 (40B)")
	now = 100
	tr.Record("server", RPCServe, "<- client read xid=7 (40B)")
	now = 350
	tr.Record("server", RPCReply, "-> client read xid=7")
	now = 400
	tr.Record("server", State, "fh(1:5.1) CLOSED -> ONE-READER")

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	var span, meta, instant int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			span++
			if e.Name != "read" || e.Ts != 100 || e.Dur != 250 {
				t.Errorf("bad span: %+v", e)
			}
		case "M":
			meta++
		case "i":
			instant++
		}
	}
	if span != 1 {
		t.Errorf("%d spans, want 1 (serve..reply pair)", span)
	}
	if meta != 2 {
		t.Errorf("%d process_name records, want 2 (client, server)", meta)
	}
	if instant != 2 { // the rpc-call and the state transition
		t.Errorf("%d instants, want 2", instant)
	}

	// Nil tracer writes a loadable empty trace.
	var nilTr *Tracer
	var nb strings.Builder
	if err := nilTr.WriteChrome(&nb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nb.String(), "traceEvents") {
		t.Errorf("nil chrome trace: %s", nb.String())
	}
}

// TestChromeOverlappingServes checks lane assignment: two serve spans
// overlapping in time on one host get distinct tids.
func TestChromeOverlappingServes(t *testing.T) {
	now := sim.Time(0)
	tr := New(func() sim.Time { return now }, 100)
	tr.Record("server", RPCServe, "<- a read xid=1 (4B)")
	now = 50
	tr.Record("server", RPCServe, "<- b write xid=2 (4B)")
	now = 200
	tr.Record("server", RPCReply, "-> a read xid=1")
	now = 300
	tr.Record("server", RPCReply, "-> b write xid=2")

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatal(err)
	}
	tids := map[int]int{}
	for _, e := range out.TraceEvents {
		if e.Ph == "X" {
			tids[e.Tid]++
		}
	}
	if len(tids) != 2 {
		t.Errorf("overlapping spans share a lane: %v", tids)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{RPCCall, RPCRetry, RPCServe, RPCReply, State, Callback, Cache, Crash, Note}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
}

// TestGrepMatchesHost pins the documented contract: Grep matches the
// host field as well as the detail text, and a miss in both excludes
// the event.
func TestGrepMatchesHost(t *testing.T) {
	tr := New(fixedClock(0), 10)
	tr.Record("client3", RPCCall, "open /a")
	tr.Record("server", RPCServe, "<- client3 open")
	tr.Record("server", Note, "idle")
	if got := tr.Grep("client3"); len(got) != 2 {
		t.Errorf("Grep(host substr) = %d events, want 2 (host match + detail match)", len(got))
	}
	if got := tr.Grep("nowhere"); len(got) != 0 {
		t.Errorf("Grep(miss) = %d events, want 0", len(got))
	}
}

// TestWriteChromeSpans renders a captured span tree and checks the rows
// land on depth lanes under a per-op process track.
func TestWriteChromeSpans(t *testing.T) {
	ops := []opspan.SlowOp{{
		Op: 17, Name: "open", Host: "client", Kind: "syscall",
		StartUS: 1000, DurUS: 5000,
		Spans: []opspan.Span{
			{ID: 0, Parent: -1, Depth: 0, Kind: "syscall", Name: "open", Host: "client", StartUS: 1000, EndUS: 6000},
			{ID: 1, Parent: 0, Depth: 1, Kind: "rpc", Name: "open", Host: "server", StartUS: 2000, EndUS: 5000},
			{ID: 2, Parent: 1, Depth: 2, Kind: "disk-arm", Name: "read", Host: "d0", StartUS: 3000, EndUS: 4000},
		},
	}}
	var b strings.Builder
	if err := WriteChromeSpans(&b, ops); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 { // process_name + 3 spans
		t.Fatalf("%d events, want 4:\n%s", len(doc.TraceEvents), b.String())
	}
	byName := map[string]map[string]any{}
	for _, e := range doc.TraceEvents {
		byName[e["name"].(string)] = e
	}
	if e := byName["disk-arm read"]; e == nil || e["tid"].(float64) != 3 || e["dur"].(float64) != 1000 {
		t.Errorf("disk span = %v, want tid 3 (depth 2) dur 1000", e)
	}
	if e := byName["syscall open"]; e == nil || e["tid"].(float64) != 1 {
		t.Errorf("root span = %v, want tid 1", e)
	}
	meta := byName["process_name"]
	if meta == nil || !strings.Contains(meta["args"].(map[string]any)["name"].(string), "op 17") {
		t.Errorf("process metadata = %v", meta)
	}
}

// BenchmarkFilter measures the per-dump kind filter over a full ring
// (the fixed kind array replaced a map rebuilt on every call).
func BenchmarkFilter(b *testing.B) {
	tr := New(fixedClock(0), 4096)
	kinds := []Kind{RPCCall, RPCServe, RPCReply, State, Callback, Cache}
	for i := 0; i < 4096; i++ {
		tr.Record("h", kinds[i%len(kinds)], "event %d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.Filter(State, Callback); len(got) == 0 {
			b.Fatal("empty filter result")
		}
	}
}
