package trace

import (
	"strings"
	"testing"

	"spritelynfs/internal/sim"
)

func fixedClock(t sim.Time) func() sim.Time {
	return func() sim.Time { return t }
}

func TestRecordAndEvents(t *testing.T) {
	now := sim.Time(0)
	tr := New(func() sim.Time { return now }, 10)
	tr.Record("client", RPCCall, "call %d", 1)
	now = sim.Time(sim.Second)
	tr.Record("server", RPCServe, "serve %d", 1)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Host != "client" || evs[0].Kind != RPCCall || evs[0].Detail != "call 1" {
		t.Errorf("event 0: %+v", evs[0])
	}
	if evs[1].At != sim.Time(sim.Second) {
		t.Errorf("event 1 at %v", evs[1].At)
	}
	if tr.Total() != 2 {
		t.Errorf("total %d", tr.Total())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(fixedClock(0), 3)
	for i := 0; i < 7; i++ {
		tr.Record("h", Note, "e%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("%d retained", len(evs))
	}
	// Oldest retained first.
	want := []string{"e4", "e5", "e6"}
	for i, e := range evs {
		if e.Detail != want[i] {
			t.Errorf("retained[%d] = %q, want %q", i, e.Detail, want[i])
		}
	}
	if tr.Total() != 7 {
		t.Errorf("total %d", tr.Total())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("h", Note, "ignored")
	if tr.Events() != nil || tr.Total() != 0 {
		t.Error("nil tracer not inert")
	}
	var b strings.Builder
	tr.Dump(&b)
	if b.Len() != 0 {
		t.Error("nil dump wrote output")
	}
}

func TestFilterAndGrep(t *testing.T) {
	tr := New(fixedClock(0), 10)
	tr.Record("client", RPCCall, "open fh(1:5.1)")
	tr.Record("server", State, "ONE-WRITER")
	tr.Record("server", Callback, "writeback fh(1:5.1)")
	if got := tr.Filter(State); len(got) != 1 || got[0].Kind != State {
		t.Errorf("Filter(State) = %v", got)
	}
	if got := tr.Filter(RPCCall, Callback); len(got) != 2 {
		t.Errorf("Filter(two kinds) = %d events", len(got))
	}
	if got := tr.Grep("fh(1:5.1)"); len(got) != 2 {
		t.Errorf("Grep = %d events", len(got))
	}
	if got := tr.Grep("server"); len(got) != 2 {
		t.Errorf("Grep(host) = %d events", len(got))
	}
}

func TestDumpFormat(t *testing.T) {
	tr := New(fixedClock(sim.Time(1500*sim.Millisecond)), 2)
	tr.Record("client", RPCCall, "one")
	tr.Record("client", RPCCall, "two")
	tr.Record("client", RPCCall, "three") // evicts "one"
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "(1 earlier events dropped)") {
		t.Errorf("missing drop notice:\n%s", out)
	}
	if !strings.Contains(out, "1.500000s") || !strings.Contains(out, "rpc-call") {
		t.Errorf("bad format:\n%s", out)
	}
	if strings.Contains(out, "one") {
		t.Errorf("evicted event printed:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{RPCCall, RPCRetry, RPCServe, RPCReply, State, Callback, Cache, Crash, Note}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
}
