// Package trace is a lightweight structured event trace for the protocol
// stack: RPC traffic, consistency-state transitions, callbacks, and cache
// events are recorded into a bounded ring, timestamped with simulated
// time, and can be dumped chronologically — the tool you want when a
// callback deadlock or a stale-cache bug needs a timeline.
//
// Tracers are optional everywhere: a nil *Tracer is safe to record to, so
// instrumented code pays one nil check when tracing is off.
package trace

import (
	"fmt"
	"io"
	"strings"

	"spritelynfs/internal/sim"
)

// Kind classifies events.
type Kind uint8

// Event kinds.
const (
	RPCCall  Kind = iota // client sent a call
	RPCRetry             // client retransmitted
	RPCServe             // server worker started a call
	RPCReply             // server sent a reply
	State                // state-table transition
	Callback             // callback issued or served
	Cache                // client cache event (invalidate, writeback)
	Crash                // crash/reboot/recovery milestones
	Note                 // anything else
)

func (k Kind) String() string {
	switch k {
	case RPCCall:
		return "rpc-call"
	case RPCRetry:
		return "rpc-retry"
	case RPCServe:
		return "rpc-serve"
	case RPCReply:
		return "rpc-reply"
	case State:
		return "state"
	case Callback:
		return "callback"
	case Cache:
		return "cache"
	case Crash:
		return "crash"
	case Note:
		return "note"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record. Op, when nonzero, is the causal operation ID
// of the syscall the event belongs to (see sim.Proc.BeginOp); events that
// share an Op form one causal chain across hosts.
type Event struct {
	Seq    int64
	At     sim.Time
	Host   string
	Kind   Kind
	Op     uint64
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%12.6fs %-10s %-9s %s", e.At.Seconds(), e.Host, e.Kind, e.Detail)
}

// Tracer records events into a bounded ring buffer. The zero value is not
// usable; create with New. A nil Tracer discards records.
type Tracer struct {
	clock func() sim.Time
	ring  []Event
	next  int
	total int64
}

// New returns a tracer holding the most recent capacity events (default
// 4096 if capacity <= 0), timestamping with clock.
func New(clock func() sim.Time, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{clock: clock, ring: make([]Event, 0, capacity)}
}

// Record appends an event; safe on a nil tracer.
func (t *Tracer) Record(host string, kind Kind, format string, args ...any) {
	t.RecordOp(host, kind, 0, format, args...)
}

// RecordOp is Record with an explicit causal operation ID.
func (t *Tracer) RecordOp(host string, kind Kind, op uint64, format string, args ...any) {
	if t == nil {
		return
	}
	e := Event{
		Seq:    t.total,
		At:     t.clock(),
		Host:   host,
		Kind:   kind,
		Op:     op,
		Detail: fmt.Sprintf(format, args...),
	}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
}

// Total reports how many events were ever recorded (including evicted
// ones).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped reports how many early events the ring has evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.total - int64(len(t.ring))
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Filter returns retained events of the given kinds (all if none given).
func (t *Tracer) Filter(kinds ...Kind) []Event {
	if len(kinds) == 0 {
		return t.Events()
	}
	// Kind is a uint8, so a fixed array covers every possible value with
	// no per-call allocation (Filter runs per Dump over the whole ring).
	var want [256]bool
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range t.Events() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the retained events to w, optionally filtered by kind.
func (t *Tracer) Dump(w io.Writer, kinds ...Kind) {
	if t == nil {
		return
	}
	evs := t.Filter(kinds...)
	if dropped := t.Dropped(); dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", dropped)
	}
	for _, e := range evs {
		fmt.Fprintln(w, e)
	}
}

// Grep returns retained events whose detail — or host, so a host name
// pulls that machine's whole timeline — contains substr.
func (t *Tracer) Grep(substr string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if strings.Contains(e.Detail, substr) || strings.Contains(e.Host, substr) {
			out = append(out, e)
		}
	}
	return out
}
