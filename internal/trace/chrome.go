// Chrome trace-event export: the retained ring becomes a JSON file that
// loads in chrome://tracing or Perfetto (ui.perfetto.dev). Each host gets
// its own process track; RPC serve intervals (an RPCServe event paired
// with the RPCReply carrying the same xid on the same host) become
// duration spans, laid out on as many lanes as overlap requires, and every
// other event becomes an instant marker.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"spritelynfs/internal/sim"
	opspan "spritelynfs/internal/span"
)

// chromeEvent is one record of the Trace Event Format (JSON array form).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// span is one matched serve interval awaiting lane assignment.
type span struct {
	host       string
	name       string
	start, end sim.Time
	op         uint64
	detail     string
}

// WriteChrome writes the retained events as Chrome trace-event JSON.
// Safe on a nil tracer (writes an empty trace).
func (t *Tracer) WriteChrome(w io.Writer) error {
	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	pids := map[string]int{}
	pidOf := func(host string) int {
		if id, ok := pids[host]; ok {
			return id
		}
		id := len(pids) + 1
		pids[host] = id
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: id,
			Args: map[string]any{"name": host},
		})
		return id
	}

	type spanKey struct {
		host string
		xid  uint64
	}
	pending := map[spanKey]*span{}
	var spans []span
	var instants []chromeEvent

	for _, e := range t.Events() {
		pid := pidOf(e.Host)
		switch e.Kind {
		case RPCServe:
			if xid, ok := parseXID(e.Detail); ok {
				// A reused xid with the old serve still unmatched
				// (dropped reply): flush the stale one as an instant.
				key := spanKey{e.Host, xid}
				if old, dup := pending[key]; dup {
					instants = append(instants, instantFor(e.Host, pid, RPCServe, old.detail, old.start))
				}
				pending[key] = &span{
					host: e.Host, name: serveName(e.Detail),
					start: e.At, op: e.Op, detail: e.Detail,
				}
				continue
			}
			instants = append(instants, instantFor(e.Host, pid, e.Kind, e.Detail, e.At))
		case RPCReply:
			if xid, ok := parseXID(e.Detail); ok {
				key := spanKey{e.Host, xid}
				if sp, open := pending[key]; open {
					sp.end = e.At
					spans = append(spans, *sp)
					delete(pending, key)
					continue
				}
			}
			instants = append(instants, instantFor(e.Host, pid, e.Kind, e.Detail, e.At))
		default:
			instants = append(instants, instantFor(e.Host, pid, e.Kind, e.Detail, e.At))
		}
	}
	// Serves still open when the trace ended (handler running at dump
	// time) surface as instants so they are not silently lost.
	for _, sp := range pending {
		instants = append(instants, instantFor(sp.host, pids[sp.host], RPCServe, sp.detail, sp.start))
	}

	// Greedy interval partitioning per host: each span takes the lowest
	// lane that is free at its start, so overlapping serves (concurrent
	// workers) render side by side instead of falsely nesting.
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	lanes := map[string][]sim.Time{} // per host: end time of last span per lane
	type flowRef struct {
		pid, tid int
		ts       sim.Time
	}
	flows := map[uint64][]flowRef{} // causal op ID → spans carrying it
	for _, sp := range spans {
		hostLanes := lanes[sp.host]
		lane := -1
		for i, end := range hostLanes {
			if end <= sp.start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(hostLanes)
			hostLanes = append(hostLanes, 0)
		}
		hostLanes[lane] = sp.end
		lanes[sp.host] = hostLanes
		args := map[string]any{"detail": sp.detail}
		if sp.op != 0 {
			args["op"] = sp.op
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.name, Ph: "X",
			Ts: float64(sp.start), Dur: float64(sp.end - sp.start),
			Pid: pids[sp.host], Tid: lane + 1,
			Args: args,
		})
		if sp.op != 0 {
			flows[sp.op] = append(flows[sp.op], flowRef{pid: pids[sp.host], tid: lane + 1, ts: sp.start})
		}
	}
	// Flow events chain the spans that share a causal op ID — an open's
	// serve, the callback it fans out, and the write-back that callback
	// forces render as one arrow-linked chain instead of unrelated boxes.
	for op, refs := range flows {
		if len(refs) < 2 {
			continue
		}
		for i, ref := range refs {
			ph := "t"
			switch i {
			case 0:
				ph = "s"
			case len(refs) - 1:
				ph = "f"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "op", Cat: "op", Ph: ph, ID: op,
				Ts: float64(ref.ts), Pid: ref.pid, Tid: ref.tid,
				BP: "e",
			})
		}
	}
	out.TraceEvents = append(out.TraceEvents, instants...)

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeSpans writes captured span trees (the slow-op winners of a
// span.Recorder) as Chrome trace-event JSON: one process track per
// captured operation, one row per tree depth, so the causal nesting of a
// slow operation — syscall over RPC over server queue over disk arm —
// reads as a flame-style layout in chrome://tracing or Perfetto.
func WriteChromeSpans(w io.Writer, ops []opspan.SlowOp) error {
	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i, so := range ops {
		pid := i + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("op %d %s/%s %.3fms",
				so.Op, so.Host, so.Name, float64(so.DurUS)/1000)},
		})
		for _, sp := range so.Spans {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sp.Kind + " " + sp.Name, Ph: "X",
				Ts: float64(sp.StartUS), Dur: float64(sp.EndUS - sp.StartUS),
				Pid: pid, Tid: sp.Depth + 1,
				Args: map[string]any{"host": sp.Host, "parent": sp.Parent},
			})
		}
	}
	return json.NewEncoder(w).Encode(out)
}

func instantFor(host string, pid int, k Kind, detail string, at sim.Time) chromeEvent {
	return chromeEvent{
		Name: k.String(), Ph: "i", S: "t",
		Ts: float64(at), Pid: pid, Tid: 0,
		Args: map[string]any{"detail": detail},
	}
}

// parseXID extracts the xid=N field the RPC layer puts in serve and reply
// details.
func parseXID(detail string) (uint64, bool) {
	i := strings.Index(detail, "xid=")
	if i < 0 {
		return 0, false
	}
	var v uint64
	ok := false
	for _, c := range detail[i+4:] {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + uint64(c-'0')
		ok = true
	}
	return v, ok
}

// serveName pulls the procedure name out of a serve detail line
// ("<- client read xid=7 (132B)" → "read").
func serveName(detail string) string {
	f := strings.Fields(detail)
	if len(f) >= 3 && f[0] == "<-" {
		return f[2]
	}
	return "rpc-serve"
}
