package sim

import (
	"fmt"
	"testing"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Second)
		woke = p.Now()
	})
	end := k.Run()
	if woke != Time(5*Second) {
		t.Errorf("woke at %v, want 5s", woke)
	}
	if end != Time(5*Second) {
		t.Errorf("simulation ended at %v, want 5s", end)
	}
}

func TestEventOrderingIsDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var order []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			d := Duration(i%3) * Millisecond
			k.Go(name, func(p *Proc) {
				p.Sleep(d)
				order = append(order, name)
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("got %d completions, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order: %v vs %v", a, b)
		}
	}
	// Same sleep => FIFO by creation order; shorter sleeps first.
	want := []string{"p0", "p3", "p1", "p4", "p2"}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("order %v, want %v", a, want)
		}
	}
}

func TestQueueBlocksAndWakes(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(Millisecond)
			q.Put(i * 10)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("got %v, want [10 20 30]", got)
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var order []int
	for i := 0; i < 3; i++ {
		id := i
		k.Go("w", func(p *Proc) {
			p.Sleep(Duration(id) * Microsecond) // stagger arrival
			v := q.Get(p)
			order = append(order, id*100+v)
		})
	}
	k.Go("put", func(p *Proc) {
		p.Sleep(Millisecond)
		q.Put(1)
		q.Put(2)
		q.Put(3)
	})
	k.Run()
	if len(order) != 3 {
		t.Fatalf("only %d waiters served: %v", len(order), order)
	}
	// Waiters are served in arrival order.
	want := []int{1, 102, 203}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	woken := 0
	for i := 0; i < 4; i++ {
		k.Go("w", func(p *Proc) {
			v := s.Wait(p)
			if v.(string) != "go" {
				t.Errorf("signal value %v", v)
			}
			woken++
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(Second)
		s.Fire("go")
	})
	k.Run()
	if woken != 4 {
		t.Errorf("woke %d waiters, want 4", woken)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	var ok1, ok2 bool
	k.Go("w1", func(p *Proc) {
		_, ok1 = s.WaitTimeout(p, 100*Millisecond)
	})
	k.Go("w2", func(p *Proc) {
		_, ok2 = s.WaitTimeout(p, 3*Second)
	})
	k.Go("firer", func(p *Proc) {
		p.Sleep(Second)
		s.Fire(nil)
	})
	k.Run()
	if ok1 {
		t.Error("w1 should have timed out before the 1s fire")
	}
	if !ok2 {
		t.Error("w2 should have seen the fire")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := NewKernel(1)
	m := NewMutex(k)
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		k.Go("locker", func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(Millisecond) // hold across a blocking op
			inside--
			m.Unlock()
		})
	}
	k.Run()
	if maxInside != 1 {
		t.Errorf("max concurrent holders %d, want 1", maxInside)
	}
}

func TestMutexUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m := NewMutex(NewKernel(1))
	m.Unlock()
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		k.Go("user", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(Millisecond)
			inside--
			sem.Release()
		})
	}
	k.Run()
	if maxInside != 2 {
		t.Errorf("max concurrency %d, want 2", maxInside)
	}
}

func TestResourceFIFOQueueing(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "disk")
	var done []Time
	for i := 0; i < 3; i++ {
		k.Go("u", func(p *Proc) {
			r.Use(p, 10*Millisecond)
			done = append(done, p.Now())
		})
	}
	k.Run()
	want := []Time{Time(10 * Millisecond), Time(20 * Millisecond), Time(30 * Millisecond)}
	if len(done) != 3 {
		t.Fatalf("%d completions", len(done))
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
	if r.BusyTime() != 30*Millisecond {
		t.Errorf("busy time %v, want 30ms", r.BusyTime())
	}
	if u := r.Utilization(); u < 0.999 || u > 1.001 {
		t.Errorf("utilization %f, want ~1", u)
	}
}

func TestResourceUseAsyncOverlapsCaller(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "disk")
	var callerDone, asyncDone Time
	k.Go("u", func(p *Proc) {
		r.UseAsync(20*Millisecond, func() { asyncDone = k.Now() })
		p.Sleep(Millisecond)
		callerDone = p.Now()
	})
	k.Run()
	if callerDone != Time(Millisecond) {
		t.Errorf("caller blocked until %v", callerDone)
	}
	if asyncDone != Time(20*Millisecond) {
		t.Errorf("async completion at %v, want 20ms", asyncDone)
	}
}

func TestStopKillsBlockedProcesses(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	cleanedUp := false
	k.Go("daemon", func(p *Proc) {
		defer func() { cleanedUp = true }()
		for {
			q.Get(p) // blocks forever
		}
	})
	k.Go("main", func(p *Proc) {
		p.Sleep(Second)
		k.Stop()
	})
	k.Run()
	if !cleanedUp {
		t.Error("blocked daemon was not unwound")
	}
}

func TestRunUntilPausesAndResumes(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Second)
			ticks++
		}
	})
	k.RunUntil(Time(3500 * Millisecond))
	if ticks != 3 {
		t.Errorf("ticks at 3.5s = %d, want 3", ticks)
	}
	if k.Now() != Time(3500*Millisecond) {
		t.Errorf("now %v, want 3.5s", k.Now())
	}
	k.Run()
	if ticks != 10 {
		t.Errorf("final ticks %d, want 10", ticks)
	}
}

func TestAfterRunsEvent(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.After(7*Second, func() { at = k.Now() })
	k.Run()
	if at != Time(7*Second) {
		t.Errorf("event at %v, want 7s", at)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(1)
	wg := NewWaitGroup(k, 3)
	var joined Time
	for i := 1; i <= 3; i++ {
		d := Duration(i) * Second
		k.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Go("joiner", func(p *Proc) {
		wg.Wait(p)
		joined = p.Now()
	})
	k.Run()
	if joined != Time(3*Second) {
		t.Errorf("joined at %v, want 3s", joined)
	}
}

func TestNestedSpawn(t *testing.T) {
	k := NewKernel(1)
	var childRan bool
	k.Go("parent", func(p *Proc) {
		p.Spawn("child", func(c *Proc) {
			c.Sleep(Millisecond)
			childRan = true
		})
		p.Sleep(2 * Millisecond)
	})
	k.Run()
	if !childRan {
		t.Error("child never ran")
	}
}

func TestTimeArithmetic(t *testing.T) {
	tt := Time(0).Add(1500 * Millisecond)
	if tt.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v", tt.Seconds())
	}
	if tt.Sub(Time(Second)) != 500*Millisecond {
		t.Errorf("Sub wrong")
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Errorf("FromSeconds wrong")
	}
	if (30 * Second).Milliseconds() != 30000 {
		t.Errorf("Milliseconds wrong")
	}
}

func TestRealCtxMonotonic(t *testing.T) {
	c := NewRealCtx()
	a := c.Now()
	c.Sleep(Millisecond)
	b := c.Now()
	if b < a {
		t.Errorf("real clock went backwards: %v -> %v", a, b)
	}
}
