package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// An event is a closure that the kernel runs at a virtual instant. Events
// run in the scheduler goroutine and must not block; to run blocking code,
// an event resumes a process (see switchTo).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Kernel is a discrete-event simulation scheduler. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	parked  chan struct{} // a process signals here when it blocks or exits
	procs   map[*Proc]bool
	stopped bool
	running *Proc // process currently executing, nil when scheduler runs
	rng     *rand.Rand
	nextID  int
	opSeq   uint64 // causal operation ID counter (see Proc.BeginOp)

	// Realtime-mode injection (see Inject / RunRealtime).
	injectMu sync.Mutex
	injected []func()
	injectCh chan struct{}
}

// popEvent removes and returns the earliest event.
func (k *Kernel) popEvent() event {
	return k.events.pop()
}

// NewKernel returns a kernel whose deterministic random stream is seeded
// with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		parked:   make(chan struct{}),
		procs:    make(map[*Proc]bool),
		rng:      rand.New(rand.NewSource(seed)),
		injectCh: make(chan struct{}, 1),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random stream. It must only be
// used from simulation processes or events, never concurrently from outside
// the simulation.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// NewOpID mints the next causal operation ID. IDs start at 1 so that 0
// always means "no operation".
func (k *Kernel) NewOpID() uint64 {
	k.opSeq++
	return k.opSeq
}

// CurrentOp returns the causal operation ID of the currently running
// process, or 0 when the scheduler (or an untagged process) is in
// control. Code that observes protocol events from inside the simulation
// — the state-table observer, for example — uses this to attribute the
// event to the syscall that caused it.
func (k *Kernel) CurrentOp() uint64 {
	if k.running == nil {
		return 0
	}
	return k.running.op
}

// schedule enqueues fn to run at time at. It may be called from the
// scheduler goroutine or from the currently running process.
func (k *Kernel) schedule(at Time, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	k.events.push(event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now in scheduler context. fn must not
// block; to start blocking work, use Go.
func (k *Kernel) After(d Duration, fn func()) {
	k.schedule(k.now.Add(d), fn)
}

// Go creates a new process named name and schedules it to start
// immediately. The process function runs in its own goroutine but under
// cooperative scheduling: it only executes while no other process does.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	return k.GoAt(k.now, name, fn)
}

// GoAt is Go with an explicit start time.
func (k *Kernel) GoAt(at Time, name string, fn func(p *Proc)) *Proc {
	k.nextID++
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   fmt.Sprintf("%s#%d", name, k.nextID),
		resume: make(chan struct{}),
	}
	k.procs[p] = true
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && r != errKilled {
				panic(r)
			}
			delete(k.procs, p)
			p.dead = true
			k.running = nil
			k.parked <- struct{}{}
		}()
		if !p.killed {
			fn(p)
		}
	}()
	k.schedule(at, func() { k.switchTo(p) })
	return p
}

// switchTo transfers control to p and waits until p blocks or exits. It
// must be called from scheduler context (inside an event).
func (k *Kernel) switchTo(p *Proc) {
	if p.dead {
		return
	}
	k.running = p
	p.resume <- struct{}{}
	<-k.parked
}

// wake schedules p to resume at the current instant.
func (k *Kernel) wake(p *Proc) {
	k.schedule(k.now, func() { k.switchTo(p) })
}

// Run drives the simulation until no events remain or Stop is called.
// It returns the final virtual time. Any processes still blocked when the
// event queue drains are killed (their goroutines unwound) so a kernel
// never leaks goroutines.
func (k *Kernel) Run() Time {
	for len(k.events) > 0 && !k.stopped {
		e := k.events.pop()
		k.now = e.at
		e.fn()
	}
	k.killAll()
	return k.now
}

// RunUntil drives the simulation until virtual time t, no events remain,
// or Stop is called. Unlike Run it does not kill blocked processes, so the
// simulation can be resumed with further Run/RunUntil calls.
func (k *Kernel) RunUntil(t Time) Time {
	for len(k.events) > 0 && !k.stopped {
		if k.events[0].at > t {
			k.now = t
			return k.now
		}
		e := k.events.pop()
		k.now = e.at
		e.fn()
	}
	if k.now < t {
		k.now = t
	}
	return k.now
}

// Stop requests that the simulation end. It may be called from a process
// or an event; the kernel finishes the current step and Run returns after
// unwinding all remaining processes.
func (k *Kernel) Stop() { k.stopped = true }

// killAll unwinds every live process, in creation order. Called with
// scheduler in control. The order matters for determinism: unwinding
// runs each victim's deferred functions, and map iteration order would
// make any observable teardown effect (final flushes, log lines, trace
// events) vary run to run even under a fixed seed.
func (k *Kernel) killAll() {
	for len(k.procs) > 0 {
		victims := make([]*Proc, 0, len(k.procs))
		for p := range k.procs {
			if p != k.running {
				victims = append(victims, p)
			}
		}
		if len(victims) == 0 {
			return
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
		for _, victim := range victims {
			if victim.dead {
				continue
			}
			victim.killed = true
			// A process is either parked inside block() waiting on
			// p.resume, or has been scheduled to start but never ran. In
			// both cases resuming it lets the kill sentinel propagate.
			k.switchTo(victim)
		}
		// Unwinding may have spawned fresh processes; sweep again.
	}
}

// errKilled is the sentinel panic value used to unwind killed processes.
var errKilled = fmt.Errorf("sim: process killed")
