package sim

// eventHeap is a typed 4-ary min-heap of events ordered by (at, seq).
// It replaces container/heap on the kernel's hottest path: the interface
// methods forced every Push to box an event into an `any` (one heap
// allocation per scheduled event) and every comparison through dynamic
// dispatch. The comparator is a total order — seq is unique per kernel —
// so the pop sequence is identical to the old binary heap's and event
// ordering stays bit-for-bit deterministic; only the internal layout
// differs. A 4-ary shape halves the tree depth, trading a few extra
// comparisons per sift-down for fewer cache-missing levels, which wins
// on event queues that grow to thousands of entries under fleet-scale
// worlds.
type eventHeap []event

// before is the (at, seq) total order.
func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push adds e, restoring the heap property by sifting up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !a.before(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // release the closure for GC
	a = a[:n]
	*h = a
	// Sift down: promote the smallest of up to four children.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if a.before(c, min) {
				min = c
			}
		}
		if !a.before(min, i) {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}
