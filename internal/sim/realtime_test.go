package sim

import (
	"testing"
	"time"
)

func TestRunRealtimeStops(t *testing.T) {
	k := NewKernel(1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		k.RunRealtime(stop)
		close(done)
	}()
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunRealtime did not stop")
	}
}

func TestRunRealtimeRunsInjectedWork(t *testing.T) {
	k := NewKernel(1)
	stop := make(chan struct{})
	go k.RunRealtime(stop)
	defer close(stop)

	ran := make(chan struct{})
	k.Inject(func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("injected work never ran")
	}
}

func TestRunRealtimeTimersFire(t *testing.T) {
	k := NewKernel(1)
	stop := make(chan struct{})
	go k.RunRealtime(stop)
	defer close(stop)

	fired := make(chan Time, 1)
	start := time.Now()
	k.Inject(func() {
		k.Go("timer", func(p *Proc) {
			p.Sleep(20 * Millisecond)
			fired <- p.Now()
		})
	})
	select {
	case <-fired:
		if wall := time.Since(start); wall < 15*time.Millisecond {
			t.Errorf("virtual 20ms sleep took %v wall time; realtime pacing broken", wall)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestRunRealtimeProcessesInteract(t *testing.T) {
	k := NewKernel(1)
	stop := make(chan struct{})
	go k.RunRealtime(stop)
	defer close(stop)

	result := make(chan int, 1)
	k.Inject(func() {
		q := NewQueue[int](k)
		k.Go("producer", func(p *Proc) {
			p.Sleep(Millisecond)
			q.Put(42)
		})
		k.Go("consumer", func(p *Proc) {
			result <- q.Get(p)
		})
	})
	select {
	case v := <-result:
		if v != 42 {
			t.Errorf("got %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("processes never rendezvoused")
	}
}
