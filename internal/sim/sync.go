package sim

// Queue is an unbounded FIFO queue connecting simulation processes.
// Put never blocks; Get blocks the calling process until an item is
// available. Put may be called from scheduler context (inside an event,
// e.g. a network delivery) or from a running process.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes one waiting process, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.wake(p)
	}
}

// Get removes and returns the head item, blocking p until one exists.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.block()
	}
	v := q.items[0]
	q.items = q.items[1:]
	// If items remain and other processes are waiting, keep the chain of
	// wake-ups going (a Put wakes only one waiter).
	if len(q.items) > 0 && len(q.waiters) > 0 {
		next := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.wake(next)
	}
	return v
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Signal is a one-shot broadcast event: processes wait until it fires.
// Firing an already-fired signal is a no-op. A fired Signal can carry an
// arbitrary value for rendezvous-style use (e.g. an RPC reply).
type Signal struct {
	k       *Kernel
	fired   bool
	value   any
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to kernel k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired with value v and wakes all waiters.
func (s *Signal) Fire(v any) {
	if s.fired {
		return
	}
	s.fired = true
	s.value = v
	for _, p := range s.waiters {
		s.k.wake(p)
	}
	s.waiters = nil
}

// Wait blocks p until the signal fires, then returns the fired value.
func (s *Signal) Wait(p *Proc) any {
	for !s.fired {
		s.waiters = append(s.waiters, p)
		p.block()
	}
	return s.value
}

// WaitTimeout blocks p until the signal fires or d elapses. It reports
// whether the signal fired.
func (s *Signal) WaitTimeout(p *Proc, d Duration) (any, bool) {
	if s.fired {
		return s.value, true
	}
	deadline := s.k.now.Add(d)
	timedOut := false
	s.k.schedule(deadline, func() {
		if !s.fired {
			timedOut = true
			// Wake p if it is still on our waiter list.
			for i, w := range s.waiters {
				if w == p {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					s.k.wake(p)
					break
				}
			}
		}
	})
	for !s.fired && !timedOut {
		s.waiters = append(s.waiters, p)
		p.block()
	}
	if s.fired {
		return s.value, true
	}
	return nil, false
}

// Mutex is a mutual-exclusion lock for simulation processes. Unlike
// sync.Mutex it may be held across blocking operations (sleeps, RPCs);
// contending processes queue FIFO.
type Mutex struct {
	k       *Kernel
	holder  *Proc
	waiters []*Proc
}

// NewMutex returns an unlocked mutex bound to kernel k.
func NewMutex(k *Kernel) *Mutex { return &Mutex{k: k} }

// Lock acquires the mutex, blocking p until it is free.
func (m *Mutex) Lock(p *Proc) {
	for m.holder != nil {
		m.waiters = append(m.waiters, p)
		p.block()
	}
	m.holder = p
}

// Unlock releases the mutex and wakes the next waiter. It panics if the
// mutex is not held.
func (m *Mutex) Unlock() {
	if m.holder == nil {
		panic("sim: unlock of unlocked mutex")
	}
	m.holder = nil
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.k.wake(p)
	}
}

// Semaphore is a counting semaphore for simulation processes.
type Semaphore struct {
	k       *Kernel
	cap     int
	count   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	return &Semaphore{k: k, cap: n, count: n}
}

// InUse reports how many permits are currently held.
func (s *Semaphore) InUse() int { return s.cap - s.count }

// Acquire takes one permit, blocking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.waiters = append(s.waiters, p)
		p.block()
	}
	s.count--
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Release returns one permit and wakes a waiter.
func (s *Semaphore) Release() {
	s.count++
	if len(s.waiters) > 0 {
		p := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.k.wake(p)
	}
}

// WaitGroup tracks a set of processes and lets another process wait for
// all of them to call Done.
type WaitGroup struct {
	k       *Kernel
	n       int
	waiters []*Proc
}

// NewWaitGroup returns a wait group with an initial count of n.
func NewWaitGroup(k *Kernel, n int) *WaitGroup {
	return &WaitGroup{k: k, n: n}
}

// Add increases the pending count by delta.
func (w *WaitGroup) Add(delta int) { w.n += delta }

// Done decrements the pending count, waking waiters when it reaches zero.
func (w *WaitGroup) Done() {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if w.n == 0 {
		for _, p := range w.waiters {
			w.k.wake(p)
		}
		w.waiters = nil
	}
}

// Pending reports the current count.
func (w *WaitGroup) Pending() int { return w.n }

// Wait blocks p until the pending count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.waiters = append(w.waiters, p)
		p.block()
	}
}
