// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel schedules cooperative processes (each backed by a goroutine,
// but with exactly one runnable at any instant) against a virtual clock.
// Processes block by sleeping, by waiting on queues, signals and mutexes,
// or by using a Resource; the kernel advances virtual time only when every
// process is blocked. Event ordering is fully deterministic: events fire in
// (time, creation-sequence) order, so a simulation with a fixed seed always
// produces the same trace.
//
// This kernel is the substrate on which the Spritely NFS reproduction runs
// its clients, servers, disks and network: the protocol code is ordinary Go
// code, and only the *cost* of primitives (network transit, disk access,
// CPU service) is simulated.
package sim

import "fmt"

// Time is an instant of virtual time, in microseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e3 }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * 1e6) }

func (t Time) String() string     { return fmt.Sprintf("%.6fs", t.Seconds()) }
func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }
