package sim

import "time"

// Inject schedules fn to run inside the simulation at the current virtual
// instant. Unlike every other Kernel method it is safe to call from any
// goroutine; it is the bridge by which external inputs (TCP connections
// in the standalone daemon) enter a kernel driven by RunRealtime.
func (k *Kernel) Inject(fn func()) {
	k.injectMu.Lock()
	k.injected = append(k.injected, fn)
	k.injectMu.Unlock()
	select {
	case k.injectCh <- struct{}{}:
	default:
	}
}

// RunRealtime drives the simulation paced to the wall clock: an event
// scheduled at virtual time T runs no earlier than T after the call
// began, and injected work runs as soon as it arrives. It returns when
// stop is closed. Virtual durations are interpreted 1:1 as wall time, so
// a daemon built on zero-cost resources services requests at native
// speed while timers (retransmission, sync intervals) behave like real
// timers.
func (k *Kernel) RunRealtime(stop <-chan struct{}) {
	if k.injectCh == nil {
		k.injectCh = make(chan struct{}, 1)
	}
	start := time.Now()
	for {
		// Fold in externally injected work.
		k.injectMu.Lock()
		pending := k.injected
		k.injected = nil
		k.injectMu.Unlock()
		wallNow := Time(time.Since(start).Microseconds())
		if wallNow > k.now {
			k.now = wallNow
		}
		for _, fn := range pending {
			fn()
		}
		// Run everything that is due.
		ran := false
		for len(k.events) > 0 && k.events[0].at <= k.now {
			e := k.popEvent()
			if e.at > k.now {
				k.now = e.at
			}
			e.fn()
			ran = true
		}
		if ran {
			continue // new injections may have arrived meanwhile
		}
		// Sleep until the next event, an injection, or stop.
		var timer <-chan time.Time
		if len(k.events) > 0 {
			delay := time.Duration(int64(k.events[0].at-k.now)) * time.Microsecond
			timer = time.After(delay)
		}
		select {
		case <-stop:
			return
		case <-k.injectCh:
		case <-timer:
		}
	}
}
