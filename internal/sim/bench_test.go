package sim

import "testing"

// BenchmarkContextSwitch measures one process wake/park round trip — the
// simulation's fundamental cost.
func BenchmarkContextSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
		k.Stop()
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkQueueHandoff measures a producer/consumer rendezvous.
func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Sleep(0)
		}
	})
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
		k.Stop()
	})
	b.ResetTimer()
	k.Run()
}
