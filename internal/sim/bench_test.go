package sim

import "testing"

// BenchmarkKernelEvents measures the bare event-heap path: schedule one
// closure, pop it, run it — no process involved. This is the floor every
// simulated action pays; the typed 4-ary heap keeps it allocation-free
// beyond the closure itself (container/heap boxed every event into an
// `any` on push).
func BenchmarkKernelEvents(b *testing.B) {
	k := NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Microsecond, tick)
		}
	}
	k.After(Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcSwitch measures one full process block/resume cycle (two
// channel handoffs plus the scheduling event) — what every blocking
// operation of a Proc-based client costs and what the Task/Executor
// path exists to avoid for idle clients.
func BenchmarkProcSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Go("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
		k.Stop()
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkTaskStep measures one state-machine step of a Task client:
// a scheduled callback that submits a trivial closure to an Executor
// and reschedules itself from the completion callback.
func BenchmarkTaskStep(b *testing.B) {
	k := NewKernel(1)
	ex := NewExecutor(k, "bench")
	n := 0
	var step func()
	step = func() {
		ex.Submit(0, func(p *Proc) {}, func() {
			n++
			if n < b.N {
				k.After(Microsecond, step)
			}
		})
	}
	k.After(Microsecond, step)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkContextSwitch measures one process wake/park round trip — the
// simulation's fundamental cost.
func BenchmarkContextSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
		k.Stop()
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkQueueHandoff measures a producer/consumer rendezvous.
func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Sleep(0)
		}
	})
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
		k.Stop()
	})
	b.ResetTimer()
	k.Run()
}
