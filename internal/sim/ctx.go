package sim

import "time"

// Ctx abstracts the execution context of protocol code so the same client
// and server implementations run both under the simulation kernel (where a
// *Proc is the context) and in real time (where RealCtx is). Code that
// needs simulation-only facilities (queues, resources) type-asserts the
// Ctx to *Proc.
type Ctx interface {
	// Now returns the current time in microseconds.
	Now() Time
	// Sleep suspends the caller for d.
	Sleep(d Duration)
}

// RealCtx is a Ctx backed by the wall clock, for running the protocol code
// outside the simulator (the standalone snfsd daemon and snfscli client).
type RealCtx struct {
	start time.Time
}

// NewRealCtx returns a wall-clock context whose Now starts near zero.
func NewRealCtx() *RealCtx { return &RealCtx{start: time.Now()} }

// Now returns microseconds elapsed since the context was created.
func (c *RealCtx) Now() Time { return Time(time.Since(c.start).Microseconds()) }

// Sleep suspends the calling goroutine for d of wall-clock time.
func (c *RealCtx) Sleep(d Duration) { time.Sleep(time.Duration(d) * time.Microsecond) }
