package sim

import "fmt"

// Task is the lightweight sibling of Proc: a state-machine thread of
// control that lives entirely on the kernel's event heap and never parks
// a goroutine. A Proc costs a goroutine (stack, resume channel, two
// channel handoffs per block); a Task costs one struct, so a world can
// hold thousands of concurrent clients whose idle time — think time
// between requests, backoff, polling intervals — is just a scheduled
// callback. When a task must run blocking protocol code (a file op that
// sleeps through RPCs and disk), it borrows a pooled process from an
// Executor for exactly the blocking section.
//
// Task callbacks run in scheduler context: they must not block, exactly
// like events scheduled with Kernel.After.
type Task struct {
	k    *Kernel
	name string
	op   uint64
}

// NewTask returns a task handle named name. Creating a task schedules
// nothing; it is purely an identity for attribution and scheduling.
func (k *Kernel) NewTask(name string) *Task {
	return &Task{k: k, name: name}
}

// Name returns the task's name, for tracing.
func (t *Task) Name() string { return t.name }

// Kernel returns the owning kernel.
func (t *Task) Kernel() *Kernel { return t.k }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.k.now }

// Op returns the task's current causal operation ID (0 = none).
func (t *Task) Op() uint64 { return t.op }

// BeginOp mints a fresh causal operation ID at a logical operation
// boundary, mirroring Proc.BeginOp. Work the task hands to an Executor
// inherits the ID.
func (t *Task) BeginOp() uint64 {
	t.op = t.k.NewOpID()
	return t.op
}

// After schedules fn to run d from now. fn runs in scheduler context and
// must not block; blocking work goes through an Executor.
func (t *Task) After(d Duration, fn func()) {
	t.k.After(d, fn)
}

// Executor runs blocking closures on a pool of reusable simulation
// processes. It is the bridge between state-machine tasks and the
// blocking protocol stack: a task submits a closure, the executor wakes
// an idle pooled process (or spawns one if none is idle) at the current
// virtual instant, and when the closure returns the process parks back
// on the free list and the task's completion callback runs.
//
// The pool never queues work, so submission adds no modeled latency:
// the goroutine count is bounded by the maximum number of *concurrently
// blocked* closures, not by the number of tasks — the quantity that
// stays small when think time dominates. The free list is LIFO and all
// hand-offs go through the event heap, so scheduling is deterministic.
type Executor struct {
	k       *Kernel
	name    string
	idle    []*execWorker
	spawned int // workers ever created (the goroutine high-water mark)
	active  int // closures currently running or blocked
	peak    int // high-water mark of active
	jobs    int64
}

type execWorker struct {
	p    *Proc
	job  func(p *Proc)
	done func()
	op   uint64
}

// NewExecutor returns an empty pool on kernel k. name prefixes the pooled
// processes' trace names.
func NewExecutor(k *Kernel, name string) *Executor {
	return &Executor{k: k, name: name}
}

// Spawned reports how many pooled processes exist — the executor's
// goroutine footprint, equal to the peak concurrency ever reached.
func (ex *Executor) Spawned() int { return ex.spawned }

// Peak reports the high-water mark of concurrently active closures.
func (ex *Executor) Peak() int { return ex.peak }

// Active reports the closures currently running or blocked.
func (ex *Executor) Active() int { return ex.active }

// Jobs reports the total closures ever submitted.
func (ex *Executor) Jobs() int64 { return ex.jobs }

// Submit runs job on a pooled process at the current virtual instant,
// tagged with causal operation ID op (0 for none). When job returns,
// done (if non-nil) runs in the completing process's context at the
// completion instant; it must not block — it is where a state-machine
// task schedules its next step. Submit may be called from scheduler
// context (an event or task callback) or from a running process.
func (ex *Executor) Submit(op uint64, job func(p *Proc), done func()) {
	ex.jobs++
	ex.active++
	if ex.active > ex.peak {
		ex.peak = ex.active
	}
	if n := len(ex.idle); n > 0 {
		w := ex.idle[n-1]
		ex.idle = ex.idle[:n-1]
		w.job, w.done, w.op = job, done, op
		ex.k.wake(w.p)
		return
	}
	ex.spawned++
	w := &execWorker{job: job, done: done, op: op}
	ex.k.Go(fmt.Sprintf("%s-exec%d", ex.name, ex.spawned), func(p *Proc) {
		w.p = p
		w.run(ex)
	})
}

// run is the pooled process's service loop: run the assigned closure,
// fire the completion callback, park on the free list until the next
// Submit. Parked workers are reclaimed by the kernel's normal teardown.
func (w *execWorker) run(ex *Executor) {
	p := w.p
	for {
		p.SetOp(w.op)
		w.job(p)
		p.SetOp(0)
		w.job = nil
		done := w.done
		w.done = nil
		ex.active--
		// Park on the free list before firing the completion callback,
		// so a done() that immediately submits again reuses this worker
		// (the wake arrives after the block below — hand-offs stay on
		// the event heap).
		ex.idle = append(ex.idle, w)
		if done != nil {
			done()
		}
		p.block()
	}
}
