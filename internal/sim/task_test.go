package sim

import (
	"fmt"
	"testing"
)

// TestKillAllCreationOrder pins teardown determinism: processes still
// blocked when the event queue drains are unwound in creation order, not
// map-iteration order.
func TestKillAllCreationOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		k := NewKernel(1)
		var order []int
		for i := 0; i < 16; i++ {
			i := i
			k.Go(fmt.Sprintf("blocked%d", i), func(p *Proc) {
				defer func() { order = append(order, i) }()
				NewSignal(k).Wait(p) // never fires
			})
		}
		k.Run()
		if len(order) != 16 {
			t.Fatalf("trial %d: unwound %d of 16 procs", trial, len(order))
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("trial %d: teardown order %v, want creation order", trial, order)
			}
		}
	}
}

// TestKillAllSpawnsDuringTeardown: a defer that spawns a new process
// while unwinding must not leak it — the sweep repeats until quiescent.
func TestKillAllSpawnsDuringTeardown(t *testing.T) {
	k := NewKernel(1)
	respawned := false
	k.Go("original", func(p *Proc) {
		defer func() {
			if !respawned {
				respawned = true
				k.Go("respawn", func(p2 *Proc) {
					NewSignal(k).Wait(p2)
				})
			}
		}()
		NewSignal(k).Wait(p)
	})
	k.Run()
	if len(k.procs) != 0 {
		t.Fatalf("teardown left %d live procs", len(k.procs))
	}
}

// TestExecutorRunsAndCompletes: a submitted closure runs with blocking
// allowed, and the completion callback fires at the closure's finish
// instant.
func TestExecutorRunsAndCompletes(t *testing.T) {
	k := NewKernel(1)
	ex := NewExecutor(k, "t")
	var doneAt Time
	ran := false
	ex.Submit(0, func(p *Proc) {
		p.Sleep(5 * Millisecond)
		ran = true
	}, func() { doneAt = k.Now() })
	k.Run()
	if !ran {
		t.Fatal("closure never ran")
	}
	if doneAt != Time(5*Millisecond) {
		t.Fatalf("done at %v, want 5ms", doneAt)
	}
}

// TestExecutorReusesWorkers: sequential submissions share one pooled
// process; only true concurrency spawns more.
func TestExecutorReusesWorkers(t *testing.T) {
	k := NewKernel(1)
	ex := NewExecutor(k, "t")
	n := 0
	var next func()
	next = func() {
		if n >= 10 {
			return
		}
		n++
		ex.Submit(0, func(p *Proc) { p.Sleep(Millisecond) }, next)
	}
	next()
	k.Run()
	if n != 10 {
		t.Fatalf("ran %d jobs, want 10", n)
	}
	if ex.Spawned() != 1 {
		t.Fatalf("sequential chain spawned %d workers, want 1", ex.Spawned())
	}

	// Ten concurrent jobs need ten workers.
	k2 := NewKernel(1)
	ex2 := NewExecutor(k2, "t")
	for i := 0; i < 10; i++ {
		ex2.Submit(0, func(p *Proc) { p.Sleep(Millisecond) }, nil)
	}
	k2.Run()
	if ex2.Spawned() != 10 || ex2.Peak() != 10 {
		t.Fatalf("concurrent burst: spawned %d peak %d, want 10/10", ex2.Spawned(), ex2.Peak())
	}
}

// TestExecutorOpAttribution: the pooled process carries the submitted
// causal op ID for the duration of the closure and drops it after.
func TestExecutorOpAttribution(t *testing.T) {
	k := NewKernel(1)
	ex := NewExecutor(k, "t")
	task := k.NewTask("client")
	op := task.BeginOp()
	var seen uint64
	ex.Submit(op, func(p *Proc) {
		seen = p.Op()
		p.Sleep(Millisecond)
	}, nil)
	k.Run()
	if seen != op {
		t.Fatalf("closure saw op %d, want %d", seen, op)
	}
}

// TestTaskDeterministicInterleave: two kernels running the same mix of
// task callbacks and executor jobs produce identical event interleavings
// (observed through a log of (time, label) pairs).
func TestTaskDeterministicInterleave(t *testing.T) {
	run := func() []string {
		k := NewKernel(7)
		ex := NewExecutor(k, "t")
		var log []string
		for c := 0; c < 8; c++ {
			c := c
			steps := 0
			var step func()
			step = func() {
				think := Duration(k.Rand().Int63n(int64(10 * Millisecond)))
				k.After(think, func() {
					ex.Submit(0, func(p *Proc) {
						p.Sleep(Duration(1+c) * Millisecond)
					}, func() {
						log = append(log, fmt.Sprintf("%d:%d@%d", c, steps, k.Now()))
						steps++
						if steps < 4 {
							step()
						}
					})
				})
			}
			step()
		}
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 32 {
		t.Fatalf("log lengths %d vs %d, want 32", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestHeapOrdering: the typed 4-ary heap pops in exact (time, seq) order
// across a large randomized fill/drain mix.
func TestHeapOrdering(t *testing.T) {
	k := NewKernel(3)
	var h eventHeap
	seq := uint64(0)
	for i := 0; i < 5000; i++ {
		seq++
		h.push(event{at: Time(k.rng.Int63n(1000)), seq: seq})
		if i%3 == 2 {
			h.pop()
		}
	}
	var prev event
	first := true
	for len(h) > 0 {
		e := h.pop()
		if !first {
			if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
				t.Fatalf("pop order violated: (%d,%d) after (%d,%d)", e.at, e.seq, prev.at, prev.seq)
			}
		}
		prev, first = e, false
	}
}
