package sim

// Resource models a single FIFO server (a CPU, a disk arm) with tracked
// utilization. A process that calls Use queues behind earlier requests,
// occupies the resource for the given service time, and resumes when its
// service completes. Because requests are served in arrival order and the
// resource is work-conserving, queueing delay emerges naturally.
//
// Utilization is recorded as total busy time and, optionally, via a
// per-interval hook so callers can build time series (as the paper does
// for server CPU load in Figures 5-1 and 5-2).
type Resource struct {
	k      *Kernel
	name   string
	freeAt Time // instant the resource finishes its current backlog

	// Busy accounting.
	busy     Duration
	services int64

	// OnBusy, if set, is invoked once per service with the interval
	// during which the resource was occupied by that request.
	OnBusy func(start, end Time)
}

// NewResource returns an idle resource named name.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Use occupies the resource for service time d, blocking p through any
// queueing delay plus the service itself. It returns the queueing delay
// experienced.
func (r *Resource) Use(p *Proc, d Duration) Duration {
	if d < 0 {
		d = 0
	}
	now := r.k.now
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start.Add(d)
	r.freeAt = end
	r.busy += d
	r.services++
	if r.OnBusy != nil && d > 0 {
		r.OnBusy(start, end)
	}
	p.Sleep(end.Sub(now))
	return start.Sub(now)
}

// UseAsync occupies the resource for service time d without blocking any
// process; it models work (such as a queued disk write) whose initiator
// does not wait. The completion instant is returned, and fn (if non-nil)
// runs at that instant.
func (r *Resource) UseAsync(d Duration, fn func()) Time {
	if d < 0 {
		d = 0
	}
	start := r.k.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start.Add(d)
	r.freeAt = end
	r.busy += d
	r.services++
	if r.OnBusy != nil && d > 0 {
		r.OnBusy(start, end)
	}
	if fn != nil {
		r.k.schedule(end, fn)
	}
	return end
}

// BusyTime returns the cumulative busy time.
func (r *Resource) BusyTime() Duration { return r.busy }

// Services returns the number of service completions started.
func (r *Resource) Services() int64 { return r.services }

// Utilization returns busy time as a fraction of the elapsed time since
// simulation start (zero if no time has passed).
func (r *Resource) Utilization() float64 {
	if r.k.now == 0 {
		return 0
	}
	return float64(r.busy) / float64(r.k.now)
}

// Backlog returns how far in the future the resource's current queue
// extends (zero if idle).
func (r *Resource) Backlog() Duration {
	if r.freeAt <= r.k.now {
		return 0
	}
	return r.freeAt.Sub(r.k.now)
}
