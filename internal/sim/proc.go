package sim

// Proc is a simulation process: a cooperative thread of control scheduled
// by a Kernel. A Proc also satisfies the Ctx interface used by protocol
// code that runs both under simulation and in real time.
type Proc struct {
	k      *Kernel
	id     int // creation sequence (drives deterministic teardown order)
	name   string
	resume chan struct{}
	killed bool
	dead   bool
	op     uint64 // causal operation ID (0 = none)
}

// Name returns the process's unique name, for tracing.
func (p *Proc) Name() string { return p.name }

// Op returns the causal operation ID the process is currently working on
// behalf of, or 0 if none has been assigned.
func (p *Proc) Op() uint64 { return p.op }

// SetOp tags the process with an existing causal operation ID — used when
// a server worker or callback handler picks up a request that carries an
// op minted elsewhere.
func (p *Proc) SetOp(op uint64) { p.op = op }

// BeginOp mints a fresh causal operation ID at a syscall boundary and
// tags the process with it. Everything the process does until the next
// BeginOp — RPCs, server work, callback fan-out, flushes those callbacks
// trigger — inherits the ID, so one logical operation renders as a single
// causal chain in traces and the audit journal.
func (p *Proc) BeginOp() uint64 {
	p.op = p.k.NewOpID()
	return p.op
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// block parks the process until the kernel resumes it. The caller must
// have arranged for a wake-up (a scheduled event or registration on a wait
// list) before calling block.
func (p *Proc) block() {
	p.k.running = nil
	p.k.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now.Add(d), func() { p.k.switchTo(p) })
	p.block()
}

// SleepUntil suspends the process until virtual instant t (a no-op if t is
// in the past).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.Sleep(t.Sub(p.k.now))
}

// Spawn starts a new process from within this one.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.k.Go(name, fn)
}
