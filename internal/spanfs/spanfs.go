// Package spanfs is the syscall-boundary attachment of the span layer:
// a vfs wrapper that roots one span per operation. It lives outside
// package span so the low-level packages (disk, rpc) can import span
// without dragging in the vfs/proto surface.
package spanfs

import (
	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/span"
	"spritelynfs/internal/vfs"
)

// WrapFS interposes the recorder at a client's syscall boundary: every
// vfs operation (and every operation on the files it opens) becomes a
// root span. Wrap outside the audit wrapper, before mounting, so the
// root covers the whole syscall. With a nil recorder the inner FS is
// returned unwrapped, keeping the off configuration zero-cost.
func WrapFS(r *span.Recorder, host string, inner vfs.FS) vfs.FS {
	if r == nil {
		return inner
	}
	return &spanFS{r: r, host: host, inner: inner}
}

type spanFS struct {
	r     *span.Recorder
	host  string
	inner vfs.FS
}

func (w *spanFS) root(p *sim.Proc, name string) span.Handle {
	return w.r.Begin(p, w.host, span.Syscall, name)
}

func (w *spanFS) Open(p *sim.Proc, path string, flags vfs.Flags, mode uint32) (vfs.File, error) {
	sp := w.root(p, "open")
	f, err := w.inner.Open(p, path, flags, mode)
	sp.End()
	if err != nil {
		return nil, err
	}
	return &spanFile{r: w.r, host: w.host, inner: f}, nil
}

func (w *spanFS) Mkdir(p *sim.Proc, path string, mode uint32) error {
	sp := w.root(p, "mkdir")
	defer sp.End()
	return w.inner.Mkdir(p, path, mode)
}

func (w *spanFS) Remove(p *sim.Proc, path string) error {
	sp := w.root(p, "remove")
	defer sp.End()
	return w.inner.Remove(p, path)
}

func (w *spanFS) Rmdir(p *sim.Proc, path string) error {
	sp := w.root(p, "rmdir")
	defer sp.End()
	return w.inner.Rmdir(p, path)
}

func (w *spanFS) Rename(p *sim.Proc, oldpath, newpath string) error {
	sp := w.root(p, "rename")
	defer sp.End()
	return w.inner.Rename(p, oldpath, newpath)
}

func (w *spanFS) Stat(p *sim.Proc, path string) (proto.Fattr, error) {
	sp := w.root(p, "stat")
	defer sp.End()
	return w.inner.Stat(p, path)
}

func (w *spanFS) Readdir(p *sim.Proc, path string) ([]proto.DirEntry, error) {
	sp := w.root(p, "readdir")
	defer sp.End()
	return w.inner.Readdir(p, path)
}

func (w *spanFS) Link(p *sim.Proc, oldpath, newpath string) error {
	sp := w.root(p, "link")
	defer sp.End()
	return w.inner.Link(p, oldpath, newpath)
}

func (w *spanFS) Symlink(p *sim.Proc, target, linkpath string) error {
	sp := w.root(p, "symlink")
	defer sp.End()
	return w.inner.Symlink(p, target, linkpath)
}

func (w *spanFS) Readlink(p *sim.Proc, path string) (string, error) {
	sp := w.root(p, "readlink")
	defer sp.End()
	return w.inner.Readlink(p, path)
}

func (w *spanFS) SyncAll(p *sim.Proc) {
	sp := w.root(p, "syncall")
	defer sp.End()
	w.inner.SyncAll(p)
}

type spanFile struct {
	r     *span.Recorder
	host  string
	inner vfs.File
}

// Handle lets stacked wrappers (the auditor's, tests) reach the
// protocol handle through this one.
func (f *spanFile) Handle() proto.Handle {
	if hf, ok := f.inner.(interface{ Handle() proto.Handle }); ok {
		return hf.Handle()
	}
	return proto.Handle{}
}

func (f *spanFile) ReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	sp := f.r.Begin(p, f.host, span.Syscall, "read")
	defer sp.End()
	return f.inner.ReadAt(p, off, n)
}

func (f *spanFile) WriteAt(p *sim.Proc, off int64, data []byte) (int, error) {
	sp := f.r.Begin(p, f.host, span.Syscall, "write")
	defer sp.End()
	return f.inner.WriteAt(p, off, data)
}

func (f *spanFile) Close(p *sim.Proc) error {
	sp := f.r.Begin(p, f.host, span.Syscall, "close")
	defer sp.End()
	return f.inner.Close(p)
}

func (f *spanFile) Sync(p *sim.Proc) error {
	sp := f.r.Begin(p, f.host, span.Syscall, "sync")
	defer sp.End()
	return f.inner.Sync(p)
}

func (f *spanFile) Attr(p *sim.Proc) (proto.Fattr, error) {
	sp := f.r.Begin(p, f.host, span.Syscall, "attr")
	defer sp.End()
	return f.inner.Attr(p)
}
