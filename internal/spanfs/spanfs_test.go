package spanfs

import (
	"testing"

	"spritelynfs/internal/proto"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/span"
	"spritelynfs/internal/vfs"
)

// stubFS is a minimal vfs.FS: every call burns a fixed slice of
// simulated time (so root spans have nonzero duration) and succeeds.
type stubFS struct{ k *sim.Kernel }

func (s *stubFS) tick(p *sim.Proc) { p.Sleep(2 * sim.Millisecond) }

func (s *stubFS) Open(p *sim.Proc, path string, flags vfs.Flags, mode uint32) (vfs.File, error) {
	s.tick(p)
	return &stubFile{s}, nil
}
func (s *stubFS) Mkdir(p *sim.Proc, path string, mode uint32) error { s.tick(p); return nil }
func (s *stubFS) Remove(p *sim.Proc, path string) error             { s.tick(p); return nil }
func (s *stubFS) Rmdir(p *sim.Proc, path string) error              { s.tick(p); return nil }
func (s *stubFS) Rename(p *sim.Proc, oldpath, newpath string) error { s.tick(p); return nil }
func (s *stubFS) Stat(p *sim.Proc, path string) (proto.Fattr, error) {
	s.tick(p)
	return proto.Fattr{}, nil
}
func (s *stubFS) Readdir(p *sim.Proc, path string) ([]proto.DirEntry, error) {
	s.tick(p)
	return nil, nil
}
func (s *stubFS) Link(p *sim.Proc, oldpath, newpath string) error    { s.tick(p); return nil }
func (s *stubFS) Symlink(p *sim.Proc, target, linkpath string) error { s.tick(p); return nil }
func (s *stubFS) Readlink(p *sim.Proc, path string) (string, error)  { s.tick(p); return "", nil }
func (s *stubFS) SyncAll(p *sim.Proc)                                { s.tick(p) }

type stubFile struct{ fs *stubFS }

func (f *stubFile) ReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	f.fs.tick(p)
	return nil, nil
}
func (f *stubFile) WriteAt(p *sim.Proc, off int64, data []byte) (int, error) {
	f.fs.tick(p)
	return len(data), nil
}
func (f *stubFile) Close(p *sim.Proc) error { f.fs.tick(p); return nil }
func (f *stubFile) Sync(p *sim.Proc) error  { f.fs.tick(p); return nil }
func (f *stubFile) Attr(p *sim.Proc) (proto.Fattr, error) {
	f.fs.tick(p)
	return proto.Fattr{}, nil
}

// TestWrapNilRecorder: the off configuration returns the inner FS
// itself, not a wrapper — zero cost, not just nil-check cost.
func TestWrapNilRecorder(t *testing.T) {
	inner := &stubFS{}
	if got := WrapFS(nil, "client", inner); got != vfs.FS(inner) {
		t.Fatalf("WrapFS(nil) = %T, want the inner FS unchanged", got)
	}
}

// TestRootSpansPerSyscall drives each wrapped operation once and checks
// one Syscall-rooted trace per call, named and timed.
func TestRootSpansPerSyscall(t *testing.T) {
	k := sim.NewKernel(1)
	r := span.NewRecorder(k.Now, 64)
	fs := WrapFS(r, "clientX", &stubFS{k: k})
	k.Go("client", func(p *sim.Proc) {
		if err := fs.Mkdir(p, "/d", 0o755); err != nil {
			t.Error(err)
		}
		f, err := fs.Open(p, "/d/f", vfs.Flags(0), 0o644)
		if err != nil {
			t.Error(err)
		}
		if _, err := f.WriteAt(p, 0, []byte("x")); err != nil {
			t.Error(err)
		}
		if _, err := f.ReadAt(p, 0, 1); err != nil {
			t.Error(err)
		}
		if err := f.Close(p); err != nil {
			t.Error(err)
		}
		if _, err := fs.Stat(p, "/d/f"); err != nil {
			t.Error(err)
		}
	})
	k.Run()

	agg := r.Breakdown()
	if agg.Ops != 6 {
		t.Fatalf("ops = %d, want 6 (mkdir, open, write, read, close, stat)", agg.Ops)
	}
	if want := 6 * 2 * sim.Millisecond; agg.RootTime != want {
		t.Errorf("root time = %v, want %v", agg.RootTime, want)
	}
	// All time is Syscall self time: the stub has no instrumented layers.
	if agg.Cats[span.Syscall] != agg.RootTime {
		t.Errorf("syscall cat = %v, want all of %v", agg.Cats[span.Syscall], agg.RootTime)
	}
	names := map[string]bool{}
	for _, so := range r.SlowOps() {
		if so.Host != "clientX" {
			t.Errorf("host = %q, want clientX", so.Host)
		}
		names[so.Name] = true
	}
	for _, want := range []string{"mkdir", "open", "write", "read", "close", "stat"} {
		if !names[want] {
			t.Errorf("no captured op named %q (got %v)", want, names)
		}
	}
}
