package workload

import (
	"testing"

	"spritelynfs/internal/disk"
	"spritelynfs/internal/localfs"
	"spritelynfs/internal/localmount"
	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// localWorld builds a purely local namespace for workload mechanics
// tests (cheap and protocol-independent).
func localWorld(k *sim.Kernel) *vfs.Namespace {
	st := localfs.NewStore(k.Now, 4096)
	media := localfs.NewMedia(st, disk.New(k, "d", disk.Params{}), 1, 0)
	fs := localmount.New(k, media)
	ns := &vfs.Namespace{}
	ns.Mount("/", fs)
	return ns
}

func run(t *testing.T, fn func(k *sim.Kernel, ns *vfs.Namespace, p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel(1)
	ns := localWorld(k)
	k.Go("t", func(p *sim.Proc) {
		defer k.Stop()
		if err := ns.Mkdir(p, "/data", 0o755); err != nil {
			t.Errorf("mkdir /data: %v", err)
			return
		}
		if err := ns.Mkdir(p, "/tmp", 0o755); err != nil {
			t.Errorf("mkdir /tmp: %v", err)
			return
		}
		if err := ns.Mkdir(p, "/usr", 0o755); err != nil {
			t.Errorf("mkdir /usr: %v", err)
			return
		}
		if err := ns.Mkdir(p, "/usr/tmp", 0o755); err != nil {
			t.Errorf("mkdir /usr/tmp: %v", err)
			return
		}
		fn(k, ns, p)
	})
	k.Run()
}

func smallAndrew() AndrewConfig {
	cfg := DefaultAndrew()
	cfg.Dirs = 2
	cfg.FilesPerDir = 3
	return cfg
}

func TestAndrewRunsAllPhases(t *testing.T) {
	run(t, func(k *sim.Kernel, ns *vfs.Namespace, p *sim.Proc) {
		cfg := smallAndrew()
		if err := SetupAndrew(p, ns, cfg); err != nil {
			t.Fatalf("setup: %v", err)
		}
		res, err := RunAndrew(p, ns, cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		var sum sim.Duration
		for i, d := range res.Phase {
			if d < 0 {
				t.Errorf("phase %s negative: %v", AndrewPhases[i], d)
			}
			sum += d
		}
		if res.Total != sum {
			t.Errorf("total %v != sum of phases %v", res.Total, sum)
		}
		if res.Phase[4] < res.Phase[0] {
			t.Error("Make should dominate MakeDir")
		}
		// The target subtree exists and matches the source structure.
		ents, err := ns.Readdir(p, cfg.DstDir)
		if err != nil || len(ents) != cfg.Dirs+1 { // dirs + a.out
			t.Errorf("target tree: %d entries, %v", len(ents), err)
		}
		// Temporaries were cleaned up.
		tmps, err := ns.Readdir(p, cfg.TmpDir)
		if err != nil || len(tmps) != 0 {
			t.Errorf("leftover temps: %v, %v", tmps, err)
		}
		// Objects exist next to sources.
		if _, err := ns.Stat(p, cfg.DstDir+"/dir00/f00.o"); err != nil {
			t.Errorf("missing object file: %v", err)
		}
	})
}

func TestAndrewFileSizesDeterministicAndBounded(t *testing.T) {
	cfg := DefaultAndrew()
	for d := 0; d < cfg.Dirs; d++ {
		for f := 0; f < cfg.FilesPerDir; f++ {
			s1, s2 := cfg.fileSize(d, f), cfg.fileSize(d, f)
			if s1 != s2 {
				t.Fatal("fileSize not deterministic")
			}
			if s1 < cfg.MinFileSize || s1 > cfg.MaxFileSize {
				t.Fatalf("fileSize(%d,%d) = %d out of bounds", d, f, s1)
			}
		}
	}
	if cfg.TotalSourceBytes() <= 0 {
		t.Error("TotalSourceBytes")
	}
}

func TestSortProducesOutputAndCleansTemps(t *testing.T) {
	run(t, func(k *sim.Kernel, ns *vfs.Namespace, p *sim.Proc) {
		cfg := DefaultSort(300 * 1024)
		if err := SetupSort(p, ns, cfg); err != nil {
			t.Fatalf("setup: %v", err)
		}
		res, err := RunSort(p, ns, cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		attr, err := ns.Stat(p, cfg.OutputPath)
		if err != nil || attr.Size != int64(cfg.InputSize) {
			t.Errorf("output size %d, want %d (%v)", attr.Size, cfg.InputSize, err)
		}
		tmps, err := ns.Readdir(p, cfg.TmpDir)
		if err != nil || len(tmps) != 0 {
			t.Errorf("leftover temps: %v", tmps)
		}
		wantRuns := (cfg.InputSize + cfg.MemBuffer - 1) / cfg.MemBuffer
		if res.Runs != wantRuns {
			t.Errorf("runs %d, want %d", res.Runs, wantRuns)
		}
		if res.TempBytes < int64(cfg.InputSize) {
			t.Errorf("temp bytes %d below input size", res.TempBytes)
		}
	})
}

func TestSortTempGrowsFasterThanInput(t *testing.T) {
	// The paper's Table 5-3 property: temp storage grows faster than
	// the input because larger inputs need more merge passes.
	var ratios []float64
	for _, size := range []int{281 * 1024, 1408 * 1024, 2816 * 1024} {
		run(t, func(k *sim.Kernel, ns *vfs.Namespace, p *sim.Proc) {
			cfg := DefaultSort(size)
			if err := SetupSort(p, ns, cfg); err != nil {
				t.Fatal(err)
			}
			res, err := RunSort(p, ns, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ratios = append(ratios, float64(res.TempBytes)/float64(size))
		})
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] < ratios[i-1] {
			t.Errorf("temp/input ratios not nondecreasing: %v", ratios)
		}
	}
	if ratios[len(ratios)-1] < 2 {
		t.Errorf("largest input ratio %.2f, want >= 2 (multiple merge passes)", ratios[len(ratios)-1])
	}
}

func TestSortSingleRunInput(t *testing.T) {
	// Input smaller than the buffer: one run, copied to output.
	run(t, func(k *sim.Kernel, ns *vfs.Namespace, p *sim.Proc) {
		cfg := DefaultSort(50 * 1024)
		if err := SetupSort(p, ns, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := RunSort(p, ns, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Runs != 1 || res.MergePasses != 0 {
			t.Errorf("runs=%d passes=%d", res.Runs, res.MergePasses)
		}
		attr, err := ns.Stat(p, cfg.OutputPath)
		if err != nil || attr.Size != int64(cfg.InputSize) {
			t.Errorf("output %d, %v", attr.Size, err)
		}
	})
}

func TestMicroPatternsRun(t *testing.T) {
	run(t, func(k *sim.Kernel, ns *vfs.Namespace, p *sim.Proc) {
		if err := ns.WriteFile(p, "/data/f", 16*1024, 8192); err != nil {
			t.Fatal(err)
		}
		if err := ReadQuickly(p, ns, "/data/f", 8192); err != nil {
			t.Errorf("ReadQuickly: %v", err)
		}
		if err := ReadSlowly(p, ns, "/data/f", 8192, 10*sim.Second, 5); err != nil {
			t.Errorf("ReadSlowly: %v", err)
		}
		if err := TempFileChurn(p, ns, "/usr/tmp", 3, 8192, 8192); err != nil {
			t.Errorf("TempFileChurn: %v", err)
		}
		if err := PopularHeader(p, ns, "/data/f", 3, 8192, sim.Second); err != nil {
			t.Errorf("PopularHeader: %v", err)
		}
		// Temp churn cleaned up after itself.
		ents, _ := ns.Readdir(p, "/usr/tmp")
		if len(ents) != 0 {
			t.Errorf("temp churn left %v", ents)
		}
	})
}
