package workload

import (
	"fmt"
	"math/rand"

	"spritelynfs/internal/sim"
)

// OpKind classifies one generated file operation. Each op is a whole
// open→transfer→close cycle (the unit both client protocols account
// consistency against).
type OpKind uint8

// The generated op kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

func (k OpKind) String() string {
	if k == OpWrite {
		return "write"
	}
	return "read"
}

// Op is one generated operation: think for Think, then run Kind against
// the target file. Shared targets index the scenario's common Zipf-
// ranked population; private targets index the generating client's own
// file serials (never contended).
type Op struct {
	Kind   OpKind
	Shared bool
	File   int
	Think  sim.Duration
}

// String renders the op for byte-comparable trace files.
func (o Op) String() string {
	t := "priv"
	if o.Shared {
		t = "shared"
	}
	return fmt.Sprintf("%s %s/%d think=%d", o.Kind, t, o.File, int64(o.Think))
}

// GenConfig parameterizes one client's operation stream.
type GenConfig struct {
	// SharedFiles is the size of the common file population.
	SharedFiles int
	// ZipfS and ZipfV shape file popularity over the shared population
	// (rank-frequency exponent s > 1, offset v ≥ 1): a handful of hot
	// files take most of the accesses, the defining property of web-
	// asset and shared-header traffic.
	ZipfS, ZipfV float64
	// ReadFrac is the probability an op is a read; the rest are writes.
	ReadFrac float64
	// SharedWriteFrac is the probability a write targets the shared
	// population (write-sharing, the case that forces SNFS files
	// uncachable) rather than the client's private files.
	SharedWriteFrac float64
	// ThinkMean is the mean of the exponential think-time distribution
	// separating a client's consecutive ops — the paper's users don't
	// issue back-to-back syscalls forever.
	ThinkMean sim.Duration
}

func (c *GenConfig) fill() {
	if c.SharedFiles == 0 {
		c.SharedFiles = 1
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.1
	}
	if c.ZipfV < 1 {
		c.ZipfV = 1
	}
}

// Gen produces one client's deterministic operation stream. Each client
// owns an independent RNG stream derived from (run seed, client index),
// so a 4,000-client scenario is reproducible op-for-op regardless of
// how the engine interleaves clients, and adding clients never perturbs
// the streams of existing ones.
type Gen struct {
	cfg     GenConfig
	rng     *rand.Rand
	zipf    *rand.Zipf
	private int // next private file serial
}

// NewGen returns client client's stream for run seed seed.
func NewGen(seed int64, client int, cfg GenConfig) *Gen {
	cfg.fill()
	// SplitMix64-style derivation: decorrelates per-client streams even
	// for adjacent client indices and small seeds.
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(client+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 27
	rng := rand.New(rand.NewSource(int64(z)))
	return &Gen{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.SharedFiles-1)),
	}
}

// Next draws the client's next operation.
func (g *Gen) Next() Op {
	var op Op
	if g.cfg.ThinkMean > 0 {
		op.Think = sim.Duration(g.rng.ExpFloat64() * float64(g.cfg.ThinkMean))
	}
	if g.rng.Float64() < g.cfg.ReadFrac {
		op.Kind, op.Shared = OpRead, true
		op.File = int(g.zipf.Uint64())
		return op
	}
	op.Kind = OpWrite
	if g.rng.Float64() < g.cfg.SharedWriteFrac {
		op.Shared = true
		op.File = int(g.zipf.Uint64())
		return op
	}
	// Private write: cycle through a small per-client working set so
	// rewrites (cache hits, version bumps) happen too.
	op.File = g.private % 4
	g.private++
	return op
}
