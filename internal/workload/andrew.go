// Package workload implements the benchmark programs of the paper's
// evaluation: the (modified, Ousterhout-portable) Andrew benchmark of
// §5.2, the external-sort benchmark of §5.3, and the §5.1 micro-patterns
// (read-quickly, read-slowly, temp-file churn, popular-header reread).
//
// Workloads run against a vfs.Namespace, so the same code measures the
// local-disk, NFS, and SNFS configurations; application computation is
// modelled as simulated CPU time (the portable compiler always generates
// code for a fixed target architecture, so its cost is configuration-
// independent, exactly the property Ousterhout's variant was built for).
package workload

import (
	"fmt"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// AndrewConfig parameterizes the benchmark tree and the modelled
// compiler.
type AndrewConfig struct {
	// SrcDir is the read-only source subtree (on the data mount).
	SrcDir string
	// DstDir is the target subtree the benchmark constructs.
	DstDir string
	// TmpDir holds compiler intermediates (local or remote /tmp —
	// the configuration axis of Table 5-1).
	TmpDir string

	// Dirs and FilesPerDir shape the subtree (the original input is
	// about 70 files in a handful of directories, ~200 kbytes).
	Dirs        int
	FilesPerDir int
	// MinFileSize/MaxFileSize bound the deterministic pseudo-random
	// source file sizes.
	MinFileSize int
	MaxFileSize int
	// Headers is the number of shared include files; every compile
	// reads HeadersPerFile of them (header 0 is the popular one).
	Headers        int
	HeaderSize     int
	HeadersPerFile int

	// BinSizes are the compiler pass binaries (cpp, ccom, as), which
	// live on the data file system ("the 'compiler' programs were on
	// the same file system as the data", §5.2) and are read at each
	// exec; LinkerSize is the ld binary read once per link.
	BinSizes   []int
	LinkerSize int

	// CPU, when set, is the client's (single) processor: compute time
	// is serialized through it, so concurrent compiles contend — the
	// §5.1 parallel-make regime. When nil, compute is a pure delay
	// (equivalent for a single process).
	CPU *sim.Resource

	// CompileCPUPerKB is compute time per kilobyte of source compiled.
	CompileCPUPerKB sim.Duration
	// LinkCPUPerKB is compute time per kilobyte linked.
	LinkCPUPerKB sim.Duration
	// TmpFactor and ObjFactor size the intermediate and object files
	// relative to the source.
	TmpFactor float64
	ObjFactor float64
	// ChunkSize is the application I/O unit.
	ChunkSize int
}

// DefaultAndrew returns the calibrated configuration.
func DefaultAndrew() AndrewConfig {
	return AndrewConfig{
		SrcDir:          "/data/src",
		DstDir:          "/data/target",
		TmpDir:          "/tmp",
		Dirs:            5,
		FilesPerDir:     14,
		MinFileSize:     1 * 1024,
		MaxFileSize:     6 * 1024,
		Headers:         8,
		HeaderSize:      4 * 1024,
		HeadersPerFile:  4,
		BinSizes:        []int{24 * 1024, 48 * 1024, 24 * 1024},
		LinkerSize:      32 * 1024,
		CompileCPUPerKB: 350 * sim.Millisecond,
		LinkCPUPerKB:    40 * sim.Millisecond,
		TmpFactor:       4.0,
		ObjFactor:       1.0,
		ChunkSize:       8 * 1024,
	}
}

// AndrewPhases names the five phases.
var AndrewPhases = [5]string{"MakeDir", "Copy", "ScanDir", "ReadAll", "Make"}

// AndrewResult reports per-phase and total elapsed simulated time.
type AndrewResult struct {
	Phase [5]sim.Duration
	Total sim.Duration
}

// fileSize returns the deterministic size of file f in dir d.
func (cfg *AndrewConfig) fileSize(d, f int) int {
	span := cfg.MaxFileSize - cfg.MinFileSize + 1
	// A fixed mixing function: reproducible across runs and protocols.
	h := (d*2654435761 + f*40503) % span
	if h < 0 {
		h += span
	}
	return cfg.MinFileSize + h
}

func (cfg *AndrewConfig) dirName(root string, d int) string {
	return fmt.Sprintf("%s/dir%02d", root, d)
}

func (cfg *AndrewConfig) fileName(root string, d, f int) string {
	return fmt.Sprintf("%s/dir%02d/f%02d.c", root, d, f)
}

func (cfg *AndrewConfig) headerName(h int) string {
	return fmt.Sprintf("%s/include/h%02d.h", cfg.SrcDir, h)
}

func (cfg *AndrewConfig) binName(i int) string {
	return fmt.Sprintf("%s/bin/pass%d", cfg.SrcDir, i)
}

func (cfg *AndrewConfig) linkerName() string {
	return cfg.SrcDir + "/bin/ld"
}

// SetupAndrew builds the source subtree (not part of the timed run).
func SetupAndrew(p *sim.Proc, ns *vfs.Namespace, cfg AndrewConfig) error {
	if err := ns.Mkdir(p, cfg.SrcDir, 0o755); err != nil {
		return err
	}
	if err := ns.Mkdir(p, cfg.SrcDir+"/include", 0o755); err != nil {
		return err
	}
	for h := 0; h < cfg.Headers; h++ {
		if err := ns.WriteFile(p, cfg.headerName(h), cfg.HeaderSize, cfg.ChunkSize); err != nil {
			return err
		}
	}
	if err := ns.Mkdir(p, cfg.SrcDir+"/bin", 0o755); err != nil {
		return err
	}
	for i, size := range cfg.BinSizes {
		if err := ns.WriteFile(p, cfg.binName(i), size, cfg.ChunkSize); err != nil {
			return err
		}
	}
	if err := ns.WriteFile(p, cfg.linkerName(), cfg.LinkerSize, cfg.ChunkSize); err != nil {
		return err
	}
	for d := 0; d < cfg.Dirs; d++ {
		if err := ns.Mkdir(p, cfg.dirName(cfg.SrcDir, d), 0o755); err != nil {
			return err
		}
		for f := 0; f < cfg.FilesPerDir; f++ {
			if err := ns.WriteFile(p, cfg.fileName(cfg.SrcDir, d, f), cfg.fileSize(d, f), cfg.ChunkSize); err != nil {
				return err
			}
		}
	}
	// Let pending delayed writes from setup drain so the timed phases
	// start clean.
	ns.SyncAll(p)
	return nil
}

// RunAndrew executes the five phases against ns and returns their
// elapsed times.
func RunAndrew(p *sim.Proc, ns *vfs.Namespace, cfg AndrewConfig) (AndrewResult, error) {
	var res AndrewResult
	start := p.Now()
	mark := start

	phase := func(i int, fn func() error) error {
		if err := fn(); err != nil {
			return fmt.Errorf("andrew %s: %w", AndrewPhases[i], err)
		}
		now := p.Now()
		res.Phase[i] = now.Sub(mark)
		mark = now
		return nil
	}

	// Phase 1 — MakeDir: construct a target subtree identical in
	// structure to the source subtree.
	err := phase(0, func() error {
		if err := ns.Mkdir(p, cfg.DstDir, 0o755); err != nil {
			return err
		}
		for d := 0; d < cfg.Dirs; d++ {
			if err := ns.Mkdir(p, cfg.dirName(cfg.DstDir, d), 0o755); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	// Phase 2 — Copy: every file from source to target.
	err = phase(1, func() error {
		for d := 0; d < cfg.Dirs; d++ {
			for f := 0; f < cfg.FilesPerDir; f++ {
				src := cfg.fileName(cfg.SrcDir, d, f)
				dst := cfg.fileName(cfg.DstDir, d, f)
				if _, err := ns.CopyFile(p, src, dst, cfg.ChunkSize); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	// Phase 3 — ScanDir: recursively traverse the target subtree and
	// examine the status of every file without reading contents.
	err = phase(2, func() error {
		if _, err := ns.Readdir(p, cfg.DstDir); err != nil {
			return err
		}
		for d := 0; d < cfg.Dirs; d++ {
			dir := cfg.dirName(cfg.DstDir, d)
			ents, err := ns.Readdir(p, dir)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if _, err := ns.Stat(p, dir+"/"+e.Name); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	// Phase 4 — ReadAll: scan every byte of every file once.
	err = phase(3, func() error {
		for d := 0; d < cfg.Dirs; d++ {
			for f := 0; f < cfg.FilesPerDir; f++ {
				if _, err := ns.ReadFile(p, cfg.fileName(cfg.DstDir, d, f), cfg.ChunkSize); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	// Phase 5 — Make: compile and link everything. The modelled
	// portable compiler is the classic Unix pipeline: cpp reads the
	// source and its headers and writes a preprocessed .i into /tmp;
	// ccom reads the .i and writes assembly (.s, TmpFactor × source)
	// into /tmp; as reads the .s and writes the object next to the
	// source. Both temporaries are deleted as soon as they are
	// consumed — the short-lived /tmp traffic the write policies
	// differ most on. The final link reads every object and writes one
	// executable.
	err = phase(4, func() error {
		objTotal := 0
		for d := 0; d < cfg.Dirs; d++ {
			for f := 0; f < cfg.FilesPerDir; f++ {
				objSize, err := cfg.CompileOne(p, ns, d, f)
				if err != nil {
					return err
				}
				objTotal += objSize
			}
		}
		// Link: exec ld, read every object, compute, write the
		// executable.
		if _, err := ns.ReadFile(p, cfg.linkerName(), cfg.ChunkSize); err != nil {
			return err
		}
		for d := 0; d < cfg.Dirs; d++ {
			for f := 0; f < cfg.FilesPerDir; f++ {
				obj := fmt.Sprintf("%s/dir%02d/f%02d.o", cfg.DstDir, d, f)
				if _, err := ns.ReadFile(p, obj, cfg.ChunkSize); err != nil {
					return err
				}
			}
		}
		p.Sleep(sim.Duration(int64(cfg.LinkCPUPerKB) * int64(objTotal) / 1024))
		return ns.WriteFile(p, cfg.DstDir+"/a.out", objTotal, cfg.ChunkSize)
	})
	if err != nil {
		return res, err
	}

	res.Total = p.Now().Sub(start)
	return res, nil
}

// TotalSourceBytes reports the source subtree's data volume.
func (cfg *AndrewConfig) TotalSourceBytes() int {
	total := cfg.Headers * cfg.HeaderSize
	for d := 0; d < cfg.Dirs; d++ {
		for f := 0; f < cfg.FilesPerDir; f++ {
			total += cfg.fileSize(d, f)
		}
	}
	return total
}

// CompileOne runs the modelled compiler pipeline for one source file
// (cpp: source+headers -> /tmp .i; ccom: .i -> /tmp .s; as: .s -> .o)
// and returns the object size. It is the unit the parallel-make
// experiment fans out.
func (cfg *AndrewConfig) CompileOne(p *sim.Proc, ns *vfs.Namespace, d, f int) (int, error) {
	size := cfg.fileSize(d, f)
	cpu := func(frac float64) {
		d := sim.Duration(frac * float64(cfg.CompileCPUPerKB) * float64(size) / 1024)
		if cfg.CPU != nil {
			cfg.CPU.Use(p, d)
		} else {
			p.Sleep(d)
		}
	}
	exec := func(pass int) error {
		if pass >= len(cfg.BinSizes) {
			return nil
		}
		_, err := ns.ReadFile(p, cfg.binName(pass), cfg.ChunkSize)
		return err
	}
	// cpp: exec the pass, read source + headers, write the .i.
	if err := exec(0); err != nil {
		return 0, err
	}
	if _, err := ns.ReadFile(p, cfg.fileName(cfg.DstDir, d, f), cfg.ChunkSize); err != nil {
		return 0, err
	}
	headerBytes := 0
	for i := 0; i < cfg.HeadersPerFile; i++ {
		h := 0 // header 0 is read by every compile
		if i > 0 {
			h = (d*cfg.FilesPerDir + f*i) % cfg.Headers
		}
		if _, err := ns.ReadFile(p, cfg.headerName(h), cfg.ChunkSize); err != nil {
			return 0, err
		}
		headerBytes += cfg.HeaderSize
	}
	cpu(0.2)
	tmpI := fmt.Sprintf("%s/cpp%02d%02d.i", cfg.TmpDir, d, f)
	if err := ns.WriteFile(p, tmpI, size+headerBytes, cfg.ChunkSize); err != nil {
		return 0, err
	}
	// ccom: exec, read the .i, compute, write the .s.
	if err := exec(1); err != nil {
		return 0, err
	}
	if _, err := ns.ReadFile(p, tmpI, cfg.ChunkSize); err != nil {
		return 0, err
	}
	cpu(0.6)
	tmpS := fmt.Sprintf("%s/ccom%02d%02d.s", cfg.TmpDir, d, f)
	if err := ns.WriteFile(p, tmpS, int(float64(size)*cfg.TmpFactor), cfg.ChunkSize); err != nil {
		return 0, err
	}
	if err := ns.Remove(p, tmpI); err != nil {
		return 0, err
	}
	// as: exec, read the .s, write the .o.
	if err := exec(2); err != nil {
		return 0, err
	}
	if _, err := ns.ReadFile(p, tmpS, cfg.ChunkSize); err != nil {
		return 0, err
	}
	cpu(0.2)
	objSize := int(float64(size) * cfg.ObjFactor)
	obj := fmt.Sprintf("%s/dir%02d/f%02d.o", cfg.DstDir, d, f)
	if err := ns.WriteFile(p, obj, objSize, cfg.ChunkSize); err != nil {
		return 0, err
	}
	if err := ns.Remove(p, tmpS); err != nil {
		return 0, err
	}
	return objSize, nil
}

// ParallelMake runs the Make phase's compiles with nprocs concurrent
// processes on the client ("make -j"), exploring §5.1's observation that
// SNFS gains most when a single job alternates computation with I/O and
// "less such I/O parallelism is available if many applications are
// running in parallel on the client". The target tree and /tmp files must
// exist (run RunAndrew through at least Copy, or SetupAndrew + MakeDir +
// Copy). It returns the elapsed time of the compile fan-out (the link is
// omitted: it is inherently serial).
func ParallelMake(p *sim.Proc, ns *vfs.Namespace, cfg AndrewConfig, nprocs int) (sim.Duration, error) {
	if nprocs < 1 {
		nprocs = 1
	}
	type job struct{ d, f int }
	jobs := make([]job, 0, cfg.Dirs*cfg.FilesPerDir)
	for d := 0; d < cfg.Dirs; d++ {
		for f := 0; f < cfg.FilesPerDir; f++ {
			jobs = append(jobs, job{d, f})
		}
	}
	k := p.Kernel()
	queue := sim.NewQueue[job](k)
	for _, j := range jobs {
		queue.Put(j)
	}
	start := p.Now()
	wg := sim.NewWaitGroup(k, nprocs)
	errs := make([]error, nprocs)
	for i := 0; i < nprocs; i++ {
		i := i
		k.Go(fmt.Sprintf("make-j%d", i), func(wp *sim.Proc) {
			defer wg.Done()
			for {
				j, ok := queue.TryGet()
				if !ok {
					return
				}
				if _, err := cfg.CompileOne(wp, ns, j.d, j.f); err != nil {
					errs[i] = err
					return
				}
			}
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return p.Now().Sub(start), nil
}
