package workload

import (
	"fmt"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// ReadQuickly opens a file, reads it straight through, and closes — the
// §5.1 pattern where NFS needs one fewer RPC than SNFS.
func ReadQuickly(p *sim.Proc, ns *vfs.Namespace, path string, chunk int) error {
	_, err := ns.ReadFile(p, path, chunk)
	return err
}

// ReadSlowly holds the file open and reads it over the course of total
// simulated time (text-editor style) — the pattern where NFS's periodic
// consistency probes erase its advantage.
func ReadSlowly(p *sim.Proc, ns *vfs.Namespace, path string, chunk int, total sim.Duration, steps int) error {
	f, err := ns.Open(p, path, vfs.ReadOnly, 0)
	if err != nil {
		return err
	}
	defer f.Close(p)
	if steps < 1 {
		steps = 1
	}
	pause := total / sim.Duration(steps)
	var off int64
	for i := 0; i < steps; i++ {
		data, err := f.ReadAt(p, off, chunk)
		if err != nil {
			return err
		}
		off += int64(len(data))
		if len(data) < chunk {
			off = 0 // wrap: editors re-read
		}
		p.Sleep(pause)
	}
	return nil
}

// TempFileChurn creates, writes, reads, and deletes n short-lived
// temporary files — the behaviour delayed write-back turns into zero
// server writes (§4.2.3).
func TempFileChurn(p *sim.Proc, ns *vfs.Namespace, dir string, n, size, chunk int) error {
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("%s/t%04d", dir, i)
		if err := ns.WriteFile(p, path, size, chunk); err != nil {
			return err
		}
		if _, err := ns.ReadFile(p, path, chunk); err != nil {
			return err
		}
		if err := ns.Remove(p, path); err != nil {
			return err
		}
	}
	return nil
}

// PopularHeader re-opens and re-reads one file n times over a stretch of
// time — the pattern §6.2's delayed close converts to local reopens.
func PopularHeader(p *sim.Proc, ns *vfs.Namespace, path string, n, chunk int, pause sim.Duration) error {
	for i := 0; i < n; i++ {
		if _, err := ns.ReadFile(p, path, chunk); err != nil {
			return err
		}
		p.Sleep(pause)
	}
	return nil
}
