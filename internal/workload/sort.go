package workload

import (
	"fmt"

	"spritelynfs/internal/sim"
	"spritelynfs/internal/vfs"
)

// SortConfig parameterizes the external-sort benchmark of §5.3: the Unix
// sort program sorting an input file through temporary run files in
// /usr/tmp, whose total volume grows faster than the input (Table 5-3's
// temp-storage column).
type SortConfig struct {
	// InputPath is the file to sort (on the data mount).
	InputPath string
	// TmpDir holds the run files (the mount under test).
	TmpDir string
	// OutputPath receives the sorted result.
	OutputPath string
	// InputSize is the input volume in bytes.
	InputSize int
	// MemBuffer is the in-core sort buffer: the initial run size.
	MemBuffer int
	// MergeOrder is the merge fan-in.
	MergeOrder int
	// CPUPerKB is comparison/copy compute per kilobyte processed in
	// each pass.
	CPUPerKB sim.Duration
	// ChunkSize is the application I/O unit.
	ChunkSize int
}

// DefaultSort returns the calibrated configuration for one input size.
func DefaultSort(inputSize int) SortConfig {
	return SortConfig{
		InputPath:  "/data/input.dat",
		TmpDir:     "/usr/tmp",
		OutputPath: "/data/output.dat",
		InputSize:  inputSize,
		MemBuffer:  128 * 1024,
		MergeOrder: 4,
		CPUPerKB:   3 * sim.Millisecond,
		ChunkSize:  8 * 1024,
	}
}

// SortResult reports the benchmark outcome.
type SortResult struct {
	Elapsed sim.Duration
	// ComputeTime is the client CPU time spent sorting/merging; the
	// paper observes that client CPU utilization (ComputeTime/Elapsed)
	// is higher under SNFS — I/O latency is NFS's bottleneck.
	ComputeTime sim.Duration
	// TempBytes is the total volume written to temporary files across
	// all passes (the paper's "temp storage" metric grows with it).
	TempBytes int64
	// Runs is the number of initial runs formed.
	Runs int
	// MergePasses counts merge levels performed.
	MergePasses int
}

// SetupSort writes the input file (not timed).
func SetupSort(p *sim.Proc, ns *vfs.Namespace, cfg SortConfig) error {
	if err := ns.WriteFile(p, cfg.InputPath, cfg.InputSize, cfg.ChunkSize); err != nil {
		return err
	}
	ns.SyncAll(p)
	return nil
}

// RunSort performs the external merge sort.
func RunSort(p *sim.Proc, ns *vfs.Namespace, cfg SortConfig) (SortResult, error) {
	var res SortResult
	start := p.Now()
	compute := func(bytes int) {
		d := sim.Duration(int64(cfg.CPUPerKB) * int64(bytes) / 1024)
		res.ComputeTime += d
		p.Sleep(d)
	}

	// Pass 0 — run formation: read the input a buffer at a time, sort
	// in core, write each run to a temp file.
	in, err := ns.Open(p, cfg.InputPath, vfs.ReadOnly, 0)
	if err != nil {
		return res, err
	}
	var runs []string
	var runSizes []int
	off := int64(0)
	seq := 0
	for remaining := cfg.InputSize; remaining > 0; {
		n := cfg.MemBuffer
		if remaining < n {
			n = remaining
		}
		// Read one buffer.
		for got := 0; got < n; {
			c := cfg.ChunkSize
			if n-got < c {
				c = n - got
			}
			data, err := in.ReadAt(p, off, c)
			if err != nil {
				in.Close(p)
				return res, err
			}
			if len(data) == 0 {
				break
			}
			got += len(data)
			off += int64(len(data))
		}
		compute(n)
		name := fmt.Sprintf("%s/st%04d", cfg.TmpDir, seq)
		seq++
		if err := ns.WriteFile(p, name, n, cfg.ChunkSize); err != nil {
			in.Close(p)
			return res, err
		}
		res.TempBytes += int64(n)
		runs = append(runs, name)
		runSizes = append(runSizes, n)
		remaining -= n
	}
	if err := in.Close(p); err != nil {
		return res, err
	}
	res.Runs = len(runs)

	// Merge passes: combine MergeOrder runs at a time until one
	// remains; the final merge writes the output file directly.
	for len(runs) > 1 {
		res.MergePasses++
		var nextRuns []string
		var nextSizes []int
		for i := 0; i < len(runs); i += cfg.MergeOrder {
			j := i + cfg.MergeOrder
			if j > len(runs) {
				j = len(runs)
			}
			group := runs[i:j]
			sizes := runSizes[i:j]
			total := 0
			for _, s := range sizes {
				total += s
			}
			final := len(runs) <= cfg.MergeOrder
			var outPath string
			if final {
				outPath = cfg.OutputPath
			} else {
				outPath = fmt.Sprintf("%s/st%04d", cfg.TmpDir, seq)
				seq++
			}
			if err := mergeGroup(p, ns, cfg, group, sizes, outPath, compute); err != nil {
				return res, err
			}
			if !final {
				res.TempBytes += int64(total)
			}
			// Merged inputs are deleted as soon as they are
			// consumed — the delayed-write cancellation shot.
			for _, r := range group {
				if err := ns.Remove(p, r); err != nil {
					return res, err
				}
			}
			nextRuns = append(nextRuns, outPath)
			nextSizes = append(nextSizes, total)
		}
		runs = nextRuns
		runSizes = nextSizes
		if len(runs) == 1 {
			break
		}
	}
	if len(runs) == 1 && runs[0] != cfg.OutputPath {
		// Single initial run: copy it to the output.
		if _, err := ns.CopyFile(p, runs[0], cfg.OutputPath, cfg.ChunkSize); err != nil {
			return res, err
		}
		if err := ns.Remove(p, runs[0]); err != nil {
			return res, err
		}
	}
	res.Elapsed = p.Now().Sub(start)
	return res, nil
}

// mergeGroup reads the group's runs round-robin a chunk at a time and
// writes the merged stream to outPath.
func mergeGroup(p *sim.Proc, ns *vfs.Namespace, cfg SortConfig, group []string, sizes []int, outPath string, compute func(int)) error {
	files := make([]vfs.File, len(group))
	offsets := make([]int64, len(group))
	for i, name := range group {
		f, err := ns.Open(p, name, vfs.ReadOnly, 0)
		if err != nil {
			return err
		}
		files[i] = f
	}
	out, err := ns.Open(p, outPath, vfs.WriteOnly|vfs.Create|vfs.Truncate, 0o644)
	if err != nil {
		for _, f := range files {
			f.Close(p)
		}
		return err
	}
	outOff := int64(0)
	remaining := make([]int, len(group))
	copy(remaining, sizes)
	active := len(group)
	buf := make([]byte, cfg.ChunkSize)
	for active > 0 {
		for i := range files {
			if remaining[i] <= 0 {
				continue
			}
			c := cfg.ChunkSize
			if remaining[i] < c {
				c = remaining[i]
			}
			data, err := files[i].ReadAt(p, offsets[i], c)
			if err != nil {
				closeAll(p, files, out)
				return err
			}
			n := len(data)
			if n == 0 {
				n = c // sparse temp files read as zeros
			}
			offsets[i] += int64(n)
			remaining[i] -= n
			if remaining[i] <= 0 {
				active--
			}
			compute(n)
			if _, err := out.WriteAt(p, outOff, buf[:n]); err != nil {
				closeAll(p, files, out)
				return err
			}
			outOff += int64(n)
		}
	}
	return closeAll(p, files, out)
}

func closeAll(p *sim.Proc, files []vfs.File, out vfs.File) error {
	var err error
	for _, f := range files {
		if e := f.Close(p); e != nil && err == nil {
			err = e
		}
	}
	if e := out.Close(p); e != nil && err == nil {
		err = e
	}
	return err
}
