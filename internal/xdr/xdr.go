// Package xdr implements External Data Representation encoding as used by
// ONC RPC and NFS (RFC 1014 subset): big-endian 4-byte alignment, with
// integers, booleans, fixed and variable-length opaque data, and strings.
//
// The NFS heritage of Spritely NFS makes XDR the natural wire format: the
// paper's protocol extensions (open, close, callback) are new procedures in
// the same RPC framework, so they marshal through this package exactly as
// the original NFS procedures do.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the decoder.
var (
	ErrShortBuffer = errors.New("xdr: short buffer")
	ErrTooLong     = errors.New("xdr: variable-length item exceeds limit")
)

// MaxItem bounds variable-length items so a corrupt length field cannot
// cause a huge allocation. The TCP transport's record-marking limit is
// the same constant: no legal record can carry an item the decoder would
// reject, and no legal item can need a record the framer would refuse.
const MaxItem = 1 << 24

// maxItem is the historical private name for MaxItem.
const maxItem = MaxItem

// Encoder appends XDR-encoded values to a byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with an empty buffer.
func NewEncoder() *Encoder { return &Encoder{} }

// maxPooledBuf caps the capacity an encoder may carry back into the
// pool, so one giant message doesn't pin its buffer forever.
const maxPooledBuf = 1 << 20

var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a reset encoder from the package pool. Steady-state
// callers pay no allocation: the buffer capacity of prior uses is
// retained (up to a cap). Pair with Release.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.Reset()
	return e
}

// Release returns e to the pool. The caller must not touch e, or any
// buffer obtained from Bytes, after Release — copy first (CopyBytes) if
// the encoded message outlives the encoder.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	encPool.Put(e)
}

// Bytes returns the encoded buffer. The slice aliases the encoder's
// internal storage: it is valid until the next Reset, SetBuffer, or
// Release.
func (e *Encoder) Bytes() []byte { return e.buf }

// CopyBytes returns the encoded message in a fresh, exactly-sized
// allocation the caller owns — the explicit copy point for encoded
// messages that outlive a pooled encoder (e.g. handed to the simulated
// network, which retains payloads until delivery).
func (e *Encoder) CopyBytes() []byte {
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out
}

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// SetBuffer directs subsequent encoding to append into buf (starting at
// length zero, reusing its capacity) — append-into-caller-buffer
// encoding for callers that manage their own storage. Bytes returns the
// possibly-regrown buffer.
func (e *Encoder) SetBuffer(buf []byte) { e.buf = buf[:0] }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR hyper).
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 encodes a 64-bit signed integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool encodes a boolean as 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// pad appends zero bytes up to 4-byte alignment.
func (e *Encoder) pad(n int) {
	for n%4 != 0 {
		e.buf = append(e.buf, 0)
		n++
	}
}

// Opaque encodes variable-length opaque data (length-prefixed, padded).
func (e *Encoder) Opaque(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	e.pad(len(b))
}

// FixedOpaque encodes fixed-length opaque data (no length prefix, padded).
func (e *Encoder) FixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	e.pad(len(b))
}

// String encodes a string as variable-length opaque data.
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Raw appends b with no length prefix and no padding. It is only valid
// for the final, trailing component of a message (an embedded body whose
// length is implied by the message boundary).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder consumes XDR-encoded values from a byte slice. Decoding methods
// record the first error; callers may check Err once after a batch of
// reads rather than after every field.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset points d at buf and clears its offset and error, so a decoder
// value (typically stack-allocated) can be reused without allocation:
//
//	var d xdr.Decoder
//	d.Reset(wire)
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.off = 0
	d.err = nil
}

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrShortBuffer, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) skipPad(n int) {
	if pad := (4 - n%4) % 4; pad > 0 {
		d.take(pad)
	}
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool decodes a boolean.
func (d *Decoder) Bool() bool { return d.Uint32() != 0 }

// Opaque decodes variable-length opaque data. The returned slice is a
// copy, safe to retain.
func (d *Decoder) Opaque() []byte {
	b := d.OpaqueRef()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// OpaqueRef decodes variable-length opaque data without copying: the
// returned slice is a view into the decoder's buffer. Zero-copy is only
// sound while the underlying buffer lives and is not mutated or reused —
// a caller that retains the data past the buffer's lifetime (pooled
// transport buffers, mutable caches) must copy it. See DESIGN.md §13 for
// the ownership rules.
func (d *Decoder) OpaqueRef() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxItem {
		d.err = fmt.Errorf("%w: %d bytes", ErrTooLong, n)
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	d.skipPad(int(n))
	return b
}

// FixedOpaque decodes n bytes of fixed-length opaque data (plus padding).
func (d *Decoder) FixedOpaque(n int) []byte {
	b := d.FixedOpaqueRef(n)
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// FixedOpaqueRef is FixedOpaque without the copy: the returned slice is
// a view into the decoder's buffer (see OpaqueRef for the aliasing
// rules).
func (d *Decoder) FixedOpaqueRef(n int) []byte {
	b := d.take(n)
	if b == nil {
		return nil
	}
	d.skipPad(n)
	return b
}

// String decodes a string (one copy: the string conversion).
func (d *Decoder) String() string { return string(d.OpaqueRef()) }

// Raw consumes and returns all remaining bytes, unpadded (the counterpart
// of Encoder.Raw for trailing message bodies). The returned slice is a
// copy.
func (d *Decoder) Raw() []byte {
	b := d.RawRef()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// RawRef is Raw without the copy: the returned slice is a view into the
// decoder's buffer (see OpaqueRef for the aliasing rules).
func (d *Decoder) RawRef() []byte {
	return d.take(d.Remaining())
}
