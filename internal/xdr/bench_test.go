package xdr

import "testing"

func BenchmarkEncodeMessage(b *testing.B) {
	payload := make([]byte, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		e.Uint32(42)
		e.Uint64(1 << 40)
		e.String("/data/dir00/file07.c")
		e.Opaque(payload)
		_ = e.Bytes()
	}
}

func BenchmarkDecodeMessage(b *testing.B) {
	e := NewEncoder()
	e.Uint32(42)
	e.Uint64(1 << 40)
	e.String("/data/dir00/file07.c")
	e.Opaque(make([]byte, 8192))
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		d.Uint32()
		d.Uint64()
		_ = d.String()
		d.Opaque()
	}
}
