package xdr

import "testing"

func BenchmarkEncodeMessage(b *testing.B) {
	payload := make([]byte, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		e.Uint32(42)
		e.Uint64(1 << 40)
		e.String("/data/dir00/file07.c")
		e.Opaque(payload)
		_ = e.Bytes()
	}
}

// BenchmarkEncodeMessagePooled is the same message through the encoder
// pool: steady state pays zero allocations.
func BenchmarkEncodeMessagePooled(b *testing.B) {
	payload := make([]byte, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		e.Uint32(42)
		e.Uint64(1 << 40)
		e.String("/data/dir00/file07.c")
		e.Opaque(payload)
		_ = e.Bytes()
		e.Release()
	}
}

func BenchmarkDecodeMessage(b *testing.B) {
	e := NewEncoder()
	e.Uint32(42)
	e.Uint64(1 << 40)
	e.String("/data/dir00/file07.c")
	e.Opaque(make([]byte, 8192))
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		d.Uint32()
		d.Uint64()
		_ = d.String()
		d.Opaque()
	}
}

// BenchmarkDecodeMessageZeroCopy decodes the same message with a reused
// stack decoder and OpaqueRef views: the 8 KiB payload is never copied.
// The one remaining allocation is the string field (retained, so it must
// copy).
func BenchmarkDecodeMessageZeroCopy(b *testing.B) {
	e := NewEncoder()
	e.Uint32(42)
	e.Uint64(1 << 40)
	e.String("/data/dir00/file07.c")
	e.Opaque(make([]byte, 8192))
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	var d Decoder
	for i := 0; i < b.N; i++ {
		d.Reset(buf)
		d.Uint32()
		d.Uint64()
		_ = d.String()
		_ = d.OpaqueRef()
	}
}
