package xdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder()
	e.Uint32(0xdeadbeef)
	e.Int32(-42)
	e.Uint64(math.MaxUint64)
	e.Int64(math.MinInt64)
	e.Bool(true)
	e.Bool(false)

	d := NewDecoder(e.Bytes())
	if v := d.Uint32(); v != 0xdeadbeef {
		t.Errorf("Uint32 = %x", v)
	}
	if v := d.Int32(); v != -42 {
		t.Errorf("Int32 = %d", v)
	}
	if v := d.Uint64(); v != math.MaxUint64 {
		t.Errorf("Uint64 = %x", v)
	}
	if v := d.Int64(); v != math.MinInt64 {
		t.Errorf("Int64 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool mismatch")
	}
	if d.Err() != nil {
		t.Errorf("err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("%d bytes left over", d.Remaining())
	}
}

func TestOpaquePaddingAlignment(t *testing.T) {
	for n := 0; n <= 9; n++ {
		e := NewEncoder()
		data := bytes.Repeat([]byte{0xab}, n)
		e.Opaque(data)
		if e.Len()%4 != 0 {
			t.Errorf("n=%d: encoded length %d not 4-aligned", n, e.Len())
		}
		e.Uint32(7) // sentinel after padding
		d := NewDecoder(e.Bytes())
		got := d.Opaque()
		if !bytes.Equal(got, data) {
			t.Errorf("n=%d: roundtrip mismatch", n)
		}
		if v := d.Uint32(); v != 7 {
			t.Errorf("n=%d: sentinel %d, padding misaligned", n, v)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "abc", "/usr/tmp/st01234", "日本語 filename"} {
		e := NewEncoder()
		e.String(s)
		d := NewDecoder(e.Bytes())
		if got := d.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestFixedOpaque(t *testing.T) {
	e := NewEncoder()
	e.FixedOpaque([]byte{1, 2, 3, 4, 5})
	e.Uint32(9)
	d := NewDecoder(e.Bytes())
	if got := d.FixedOpaque(5); !bytes.Equal(got, []byte{1, 2, 3, 4, 5}) {
		t.Errorf("fixed opaque = %v", got)
	}
	if d.Uint32() != 9 {
		t.Error("alignment after fixed opaque wrong")
	}
}

func TestShortBufferError(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	d.Uint32()
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Errorf("err = %v, want ErrShortBuffer", d.Err())
	}
	// Error is sticky: further reads return zero values, same error.
	if d.Uint64() != 0 {
		t.Error("read after error returned nonzero")
	}
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Error("error not sticky")
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	e := NewEncoder()
	e.Uint32(0xffffffff) // absurd opaque length
	d := NewDecoder(e.Bytes())
	if d.Opaque() != nil {
		t.Error("decoded opaque with absurd length")
	}
	if !errors.Is(d.Err(), ErrTooLong) {
		t.Errorf("err = %v, want ErrTooLong", d.Err())
	}
}

func TestOpaqueReturnedSliceIsCopy(t *testing.T) {
	e := NewEncoder()
	e.Opaque([]byte{1, 2, 3, 4})
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.Opaque()
	buf[4] = 99 // mutate underlying buffer after decode
	if got[0] != 1 {
		t.Error("decoded slice aliases the input buffer")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder()
	e.Uint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Error("reset did not clear buffer")
	}
	e.Uint32(2)
	d := NewDecoder(e.Bytes())
	if d.Uint32() != 2 {
		t.Error("encode after reset wrong")
	}
}

func TestQuickRoundTripMixed(t *testing.T) {
	f := func(a uint32, b int64, s string, blob []byte, flag bool) bool {
		e := NewEncoder()
		e.Uint32(a)
		e.Int64(b)
		e.String(s)
		e.Opaque(blob)
		e.Bool(flag)
		d := NewDecoder(e.Bytes())
		if d.Uint32() != a || d.Int64() != b || d.String() != s {
			return false
		}
		got := d.Opaque()
		if len(got) != len(blob) || (len(blob) > 0 && !bytes.Equal(got, blob)) {
			return false
		}
		return d.Bool() == flag && d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecoderNeverPanicsOnGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		d := NewDecoder(garbage)
		// A fixed schedule of reads over arbitrary bytes must never
		// panic; errors are the acceptable outcome.
		d.Uint32()
		d.Opaque()
		_ = d.String()
		d.Uint64()
		d.Bool()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestZeroCopyRefsAliasBuffer(t *testing.T) {
	e := NewEncoder()
	e.Opaque([]byte{1, 2, 3, 4})
	e.FixedOpaque([]byte{5, 6, 7, 8})
	e.Raw([]byte{9, 10})
	buf := e.Bytes()

	var d Decoder
	d.Reset(buf)
	op := d.OpaqueRef()
	fo := d.FixedOpaqueRef(4)
	raw := d.RawRef()
	if d.Err() != nil {
		t.Fatalf("err = %v", d.Err())
	}
	buf[4] = 99  // first opaque byte
	buf[8] = 98  // first fixed byte
	buf[12] = 97 // first raw byte
	if op[0] != 99 || fo[0] != 98 || raw[0] != 97 {
		t.Error("refs did not alias the input buffer (copied?)")
	}
}

func TestDecoderReset(t *testing.T) {
	e := NewEncoder()
	e.Uint32(7)
	var d Decoder
	d.Reset([]byte{0}) // short read poisons the decoder
	d.Uint32()
	if d.Err() == nil {
		t.Fatal("expected short-buffer error")
	}
	d.Reset(e.Bytes())
	if d.Err() != nil || d.Uint32() != 7 || d.Remaining() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestSetBufferAppendsIntoCallerBuffer(t *testing.T) {
	scratch := make([]byte, 0, 64)
	e := NewEncoder()
	e.SetBuffer(scratch)
	e.Uint32(42)
	e.Opaque([]byte("abc"))
	if &e.Bytes()[0] != &scratch[:1][0] {
		t.Error("encoding did not reuse the caller's buffer")
	}
	d := NewDecoder(e.Bytes())
	if d.Uint32() != 42 || string(d.Opaque()) != "abc" || d.Err() != nil {
		t.Error("round trip through caller buffer failed")
	}
}

func TestPooledEncoderRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		e := GetEncoder()
		if e.Len() != 0 {
			t.Fatal("pooled encoder not reset")
		}
		e.Uint32(uint32(i))
		wire := e.CopyBytes()
		e.Release()
		d := NewDecoder(wire)
		if d.Uint32() != uint32(i) {
			t.Fatalf("iteration %d: pooled round trip corrupt", i)
		}
	}
}

func TestCopyBytesSurvivesRelease(t *testing.T) {
	e := GetEncoder()
	e.String("survives")
	cp := e.CopyBytes()
	alias := e.Bytes()
	e.Release()
	// Stomp the pooled buffer through a fresh encoder.
	f := GetEncoder()
	f.FixedOpaque(bytes.Repeat([]byte{0xee}, len(alias)+8))
	defer f.Release()
	d := NewDecoder(cp)
	if got := d.String(); got != "survives" {
		t.Errorf("copy mutated after Release: %q", got)
	}
}

func TestMaxItemSharedLimit(t *testing.T) {
	if MaxItem != maxItem {
		t.Fatal("exported and private limits diverge")
	}
	e := NewEncoder()
	e.Uint32(MaxItem + 1)
	d := NewDecoder(e.Bytes())
	if d.OpaqueRef() != nil || !errors.Is(d.Err(), ErrTooLong) {
		t.Error("OpaqueRef accepted an item above MaxItem")
	}
}
