package xdr

import (
	"bytes"
	"testing"
)

// FuzzXDRRoundTrip drives the full encode → decode → re-encode cycle
// over fuzzer-chosen field values, checking three properties at once:
// values survive the round trip, the zero-copy decode path (Decoder
// reused via Reset, OpaqueRef/FixedOpaqueRef/RawRef views) agrees byte
// for byte with the copying path, and re-encoding the decoded values
// reproduces the original wire image. Aliasing bugs in the zero-copy
// path — views with the wrong bounds, padding miscounted, state leaking
// across Reset — surface as mismatches here.
func FuzzXDRRoundTrip(f *testing.F) {
	f.Add(uint32(42), int64(-7), "name.c", []byte{1, 2, 3}, []byte{9, 8, 7, 6}, true)
	f.Add(uint32(0), int64(0), "", []byte{}, []byte{}, false)
	f.Add(uint32(0xffffffff), int64(1<<62), "日本語", bytes.Repeat([]byte{0xab}, 8192), []byte{0}, true)
	f.Fuzz(func(t *testing.T, a uint32, b int64, s string, blob, tail []byte, flag bool) {
		e := NewEncoder()
		e.Uint32(a)
		e.Int64(b)
		e.String(s)
		e.Opaque(blob)
		e.Bool(flag)
		e.FixedOpaque(tail)
		e.Raw(tail)
		wire := e.Bytes()

		// Copying decode.
		d := NewDecoder(wire)
		ga, gb, gs := d.Uint32(), d.Int64(), d.String()
		gblob := d.Opaque()
		gflag := d.Bool()
		gfixed := d.FixedOpaque(len(tail))
		graw := d.Raw()
		if d.Err() != nil {
			t.Fatalf("decode error on self-encoded message: %v", d.Err())
		}
		if ga != a || gb != b || gs != s || !bytes.Equal(gblob, blob) || gflag != flag ||
			!bytes.Equal(gfixed, tail) || !bytes.Equal(graw, tail) {
			t.Fatal("copying decode round trip mismatch")
		}

		// Zero-copy decode must see identical bytes.
		var z Decoder
		z.Reset(wire)
		if z.Uint32() != a || z.Int64() != b || z.String() != s {
			t.Fatal("zero-copy scalar mismatch")
		}
		if !bytes.Equal(z.OpaqueRef(), blob) {
			t.Fatal("OpaqueRef view mismatch")
		}
		if z.Bool() != flag {
			t.Fatal("zero-copy bool mismatch")
		}
		if !bytes.Equal(z.FixedOpaqueRef(len(tail)), tail) {
			t.Fatal("FixedOpaqueRef view mismatch")
		}
		if !bytes.Equal(z.RawRef(), tail) {
			t.Fatal("RawRef view mismatch")
		}
		if z.Err() != nil || z.Remaining() != 0 {
			t.Fatalf("zero-copy decode err=%v remaining=%d", z.Err(), z.Remaining())
		}

		// Re-encode from the decoded values: byte-identical wire.
		r := GetEncoder()
		defer r.Release()
		r.Uint32(ga)
		r.Int64(gb)
		r.String(gs)
		r.Opaque(gblob)
		r.Bool(gflag)
		r.FixedOpaque(gfixed)
		r.Raw(graw)
		if !bytes.Equal(r.Bytes(), wire) {
			t.Fatal("re-encode differs from original wire image")
		}
	})
}

// FuzzDecodeGarbage feeds arbitrary bytes to a fixed decode schedule:
// no input may panic or read out of bounds, in either the copying or the
// zero-copy path.
func FuzzDecodeGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	e := NewEncoder()
	e.Uint32(3)
	e.Opaque([]byte("abc"))
	f.Add(e.Bytes())
	f.Fuzz(func(t *testing.T, garbage []byte) {
		d := NewDecoder(garbage)
		d.Uint32()
		d.Opaque()
		_ = d.String()
		d.Uint64()
		d.Bool()

		var z Decoder
		z.Reset(garbage)
		z.Uint32()
		if v := z.OpaqueRef(); len(v) > len(garbage) {
			t.Fatal("OpaqueRef view larger than input")
		}
		_ = z.String()
		z.FixedOpaqueRef(7)
		z.RawRef()
		if z.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
